//===- examples/gnome_callback.cpp - Figure 1: GNOME bug 576111 ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful port of the paper's running example (Figure 1, GNOME
/// Bugzilla 576111): Java_Callback_bind registers an event callback whose
/// C struct captures the `receiver` *local* reference; when the event
/// fires, the callback passes the now-dangling reference to
/// CallStaticVoidMethodA. Run under Jinn, the Use transition drives the
/// local-reference machine into Error: Dangling (Figure 2) and the tool
/// throws at line 15's call.
///
//===----------------------------------------------------------------------===//

#include "jinn/JinnAgent.h"
#include "jni/JniRuntime.h"
#include "jvm/Vm.h"
#include "jvmti/Jvmti.h"

#include <cstdio>
#include <memory>

using namespace jinn;

namespace {

// The C heap state of Figure 1: an event callback registration.
struct EventCallBack {
  jclass Receiver = nullptr;   // cb->receiver (a captured local reference!)
  jmethodID Method = nullptr;  // cb->mid
};

EventCallBack TheCallback; // registered callback (Figure 1 line 8)

// Figure 1, lines 1-10: JNIEXPORT void JNICALL Java_Callback_bind(...)
jvalue Java_Callback_bind(JNIEnv *Env, jobject, const jvalue *Args) {
  jclass Receiver = static_cast<jclass>(Args[0].l);
  jstring Name = static_cast<jstring>(Args[1].l);
  jstring Desc = static_cast<jstring>(Args[2].l);

  TheCallback.Receiver = Receiver; // line 6: receiver escapes (BUG)
  const char *NameC = Env->functions->GetStringUTFChars(Env, Name, nullptr);
  const char *DescC = Env->functions->GetStringUTFChars(Env, Desc, nullptr);
  TheCallback.Method =
      Env->functions->GetStaticMethodID(Env, Receiver, NameC, DescC);
  Env->functions->ReleaseStringUTFChars(Env, Name, NameC);
  Env->functions->ReleaseStringUTFChars(Env, Desc, DescC);
  jvalue R;
  R.j = 0;
  return R;
} // line 10: receiver is a dead reference from here on

// Figure 1, lines 11-17: static void callback(EventCallBack* cb, ...)
jvalue Java_Callback_fire(JNIEnv *Env, jobject, const jvalue *) {
  // line 15: BUG: dereference of now-invalid cb->receiver.
  Env->functions->CallStaticVoidMethodA(Env, TheCallback.Receiver,
                                        TheCallback.Method, nullptr);
  jvalue R;
  R.j = 0;
  return R;
}

void buildProgram(jvm::Vm &Vm, jni::JniRuntime &Rt) {
  jvm::ClassDef Listener;
  Listener.Name = "gnome/Listener";
  Listener.method(
      "onEvent", "()V",
      [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
         const std::vector<jvm::Value> &) {
        std::printf("  Listener.onEvent() ran\n");
        return jvm::Value::makeVoid();
      },
      /*IsStatic=*/true, "Listener.java:21");
  Vm.defineClass(Listener);

  jvm::ClassDef Callback;
  Callback.Name = "gnome/Callback";
  Callback.nativeMethod(
      "bind", "(Ljava/lang/Class;Ljava/lang/String;Ljava/lang/String;)V",
      /*IsStatic=*/true, "Callback.java:3");
  Callback.nativeMethod("fire", "()V", /*IsStatic=*/true, "Callback.java:9");
  Vm.defineClass(Callback);

  Rt.registerNative(Vm.findClass("gnome/Callback"), "bind",
                    "(Ljava/lang/Class;Ljava/lang/String;Ljava/lang/String;)V",
                    Java_Callback_bind);
  Rt.registerNative(Vm.findClass("gnome/Callback"), "fire", "()V",
                    Java_Callback_fire);
}

void runProgram(jvm::Vm &Vm) {
  jvm::JThread &Main = Vm.mainThread();
  jvm::Vm::TempRoots Scope(Main);
  jvm::ObjectId Name = Vm.newString("onEvent");
  Scope.add(Name);
  jvm::ObjectId Desc = Vm.newString("()V");
  Scope.add(Desc);
  jvm::Klass *Listener = Vm.findClass("gnome/Listener");

  // Callback.bind(Listener.class, "onEvent", "()V");
  Vm.invokeByName(Main, "gnome/Callback", "bind",
                  "(Ljava/lang/Class;Ljava/lang/String;Ljava/lang/String;)V",
                  jvm::Value::makeNull(),
                  {jvm::Value::makeRef(Listener->Mirror),
                   jvm::Value::makeRef(Name), jvm::Value::makeRef(Desc)});
  // ... later, the event fires:
  Vm.invokeByName(Main, "gnome/Callback", "fire", "()V",
                  jvm::Value::makeNull(), {});
}

} // namespace

int main() {
  std::printf("== GNOME bug 576111 (paper Figure 1) on a production "
              "J9-like VM ==\n");
  {
    jvm::VmOptions Options;
    Options.Flavor = jvm::VmFlavor::J9Like;
    jvm::Vm Vm(Options);
    jni::JniRuntime Rt(Vm);
    TheCallback = EventCallBack();
    buildProgram(Vm, Rt);
    runProgram(Vm);
    for (const Incident &I : Vm.diags().incidents())
      std::printf("  [%s] %s\n", incidentKindName(I.Kind),
                  I.Message.c_str());
  }

  std::printf("\n== The same program under Jinn ==\n");
  {
    jvm::Vm Vm;
    jni::JniRuntime Rt(Vm);
    jvmti::AgentHost Host(Rt);
    auto &Jinn = static_cast<agent::JinnAgent &>(
        Host.load(std::make_unique<agent::JinnAgent>()));
    TheCallback = EventCallBack();
    buildProgram(Vm, Rt);
    runProgram(Vm);
    if (!Vm.mainThread().Pending.isNull())
      std::printf("Exception in thread \"main\" %s",
                  Vm.describeThrowable(Vm.mainThread().Pending).c_str());
    for (const agent::JinnReport &Report : Jinn.reporter().reports())
      std::printf("\n[jinn] \"%s\" machine: %s\n", Report.Machine.c_str(),
                  Report.Message.c_str());
  }
  return 0;
}
