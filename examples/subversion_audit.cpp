//===- examples/subversion_audit.cpp - §6.4.1 Subversion case study ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Subversion audit (§6.4.1): the local-reference
/// overflow in Outputer.cpp (with the time series of Figure 10) and the
/// JNIStringHolder destructor that releases through a dangling local
/// reference — benign on production VMs that ignore the object parameter
/// (a "time bomb"), reported by Jinn.
///
//===----------------------------------------------------------------------===//

#include "scenarios/CaseStudies.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::scenarios;

int main() {
  std::printf("== Subversion audit (paper §6.4.1) ==\n\n");

  std::printf("1) Local-reference overflow (Outputer.cpp:99)\n");
  std::vector<size_t> Buggy = subversionLocalRefSeries(/*Fixed=*/false, 24);
  std::vector<size_t> Fixed = subversionLocalRefSeries(/*Fixed=*/true, 24);
  size_t PeakBuggy = 0, PeakFixed = 0;
  for (size_t V : Buggy)
    PeakBuggy = std::max(PeakBuggy, V);
  for (size_t V : Fixed)
    PeakFixed = std::max(PeakFixed, V);
  std::printf("   original: live local references climb to %zu (capacity "
              "16) -> Jinn reports overflow\n",
              PeakBuggy);
  std::printf("   fixed:    after inserting env->DeleteLocalRef("
              "jreportUUID), peak is %zu -> passes under Jinn\n\n",
              PeakFixed);

  std::printf("2) Dangling local reference in ~JNIStringHolder "
              "(CopySources.cpp)\n");
  {
    WorldConfig Config; // production HotSpot-like: the time bomb is benign
    ScenarioWorld World(Config);
    runSubversionDestructorBug(World);
    World.shutdown();
    std::printf("   production VM: outcome \"%s\" — ReleaseStringUTFChars "
                "ignores its object\n   parameter (as in Jikes RVM), so "
                "the bug stays hidden\n",
                outcomeName(classify(World)));
  }
  {
    WorldConfig Config;
    Config.Checker = CheckerKind::Jinn;
    ScenarioWorld World(Config);
    runSubversionDestructorBug(World);
    World.shutdown();
    std::printf("   under Jinn:    outcome \"%s\"\n",
                outcomeName(classify(World)));
    for (const agent::JinnReport &Report : World.Jinn->reporter().reports())
      std::printf("     [%s] %s\n", Report.Machine.c_str(),
                  Report.Message.c_str());
  }

  std::printf("\n3) Java-gnome nullness bug (§6.4.2, also found by "
              "Blink)\n");
  {
    WorldConfig Config;
    Config.Checker = CheckerKind::Jinn;
    ScenarioWorld World(Config);
    runJavaGnomeNullness(World);
    World.shutdown();
    std::printf("   under Jinn: outcome \"%s\"\n",
                outcomeName(classify(World)));
    for (const agent::JinnReport &Report : World.Jinn->reporter().reports())
      std::printf("     [%s] %s\n", Report.Machine.c_str(),
                  Report.Message.c_str());
  }
  return 0;
}
