//===- examples/python_dangling.cpp - Figure 11: Python/C dangle_bug -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §7 generalization, end to end: Figure 11's dangle_bug on
/// the miniature Python/C substrate — silent corruption in production,
/// reported at the faulting call by the synthesized checker (which was
/// built from a specification of which functions return new vs. borrowed
/// references).
///
//===----------------------------------------------------------------------===//

#include "pyjinn/PyChecker.h"
#include "scenarios/PythonScenarios.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::pyc;
using namespace jinn::pyjinn;

int main() {
  std::printf("== Figure 11: static PyObject* dangle_bug(...) ==\n\n");

  std::printf("production interpreter:\n");
  {
    PyInterp I;
    auto Printed = scenarios::runPyDangleBug(I);
    std::printf("  1. first = %s.\n", Printed.first.c_str());
    std::printf("  2. first = %s.   <- the borrowed reference now aliases "
                "freed/reused memory\n\n",
                Printed.second.c_str());
  }

  std::printf("with the synthesized Python/C checker:\n");
  {
    PyInterp I;
    PyChecker Checker(I);
    auto Printed = scenarios::runPyDangleBug(I);
    std::printf("  1. first = %s.\n", Printed.first.c_str());
    for (const PyViolation &V : Checker.violations())
      std::printf("  pyjinn error: [%s] %s (in %s)\n", V.Machine.c_str(),
                  V.Message.c_str(), V.Function.c_str());
    std::printf("  pending Python exception: %s: %s\n",
                I.PendingType ? I.PendingType->StrVal.c_str() : "(none)",
                I.PendingMessage.c_str());
  }

  std::printf("\nreference specification driving the checker (excerpt):\n");
  for (const char *Fn : {"PyList_GetItem", "Py_BuildValue",
                         "PyList_SetItem", "PyErr_Clear"}) {
    const PyFnSpec *Spec = pyFnSpec(Fn);
    const char *Ret = Spec->Return == RefReturn::New        ? "new ref"
                      : Spec->Return == RefReturn::Borrowed ? "BORROWED ref"
                                                            : "no ref";
    std::printf("  %-18s returns %-13s%s%s\n", Fn, Ret,
                Spec->StealsParam >= 0 ? ", steals an argument" : "",
                Spec->ExceptionOblivious ? ", exception-oblivious" : "");
  }
  return 0;
}
