//===- examples/quickstart.cpp - Five-minute tour of the library ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: bring up the miniature JVM, define a class with a native
/// method, attach the Jinn agent, trigger a JNI mistake, and watch Jinn
/// throw jinn.JNIAssertionFailure at the exact faulting call — while the
/// same program on a production VM silently corrupts or crashes.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "jinn/JinnAgent.h"
#include "jni/JniRuntime.h"
#include "jvm/Vm.h"
#include "jvmti/Jvmti.h"

#include <cstdio>
#include <memory>

using namespace jinn;

int main() {
  // 1. A VM and its JNI runtime.
  jvm::Vm Vm;
  jni::JniRuntime Rt(Vm);

  // 2. Load Jinn, exactly like "-agentlib:jinn" (paper §4).
  jvmti::AgentHost Host(Rt);
  auto &Jinn = static_cast<agent::JinnAgent &>(
      Host.load(std::make_unique<agent::JinnAgent>()));
  std::printf("Jinn loaded: %zu state machines, %zu synthesized "
              "instrumentation points\n\n",
              Jinn.stats().MachineCount,
              Jinn.stats().instrumentationPoints());

  // 3. A Java class with a native method...
  jvm::ClassDef Def;
  Def.Name = "demo/Greeter";
  Def.nativeMethod("greet", "(Ljava/lang/String;)I", /*IsStatic=*/true,
                   "Greeter.java:7");
  Vm.defineClass(Def);

  // 4. ...whose C implementation contains a classic mistake: it releases
  // a local reference and then keeps using it.
  Rt.registerNative(
      Vm.findClass("demo/Greeter"), "greet", "(Ljava/lang/String;)I",
      [](JNIEnv *Env, jobject, const jvalue *Args) -> jvalue {
        jstring Name = static_cast<jstring>(Args[0].l);
        jsize Len = Env->functions->GetStringUTFLength(Env, Name);
        Env->functions->DeleteLocalRef(Env, Name);
        // BUG: Name is dead now.
        Len += Env->functions->GetStringUTFLength(Env, Name);
        jvalue R;
        R.i = Len;
        return R;
      });

  // 5. Call it from "Java".
  jvm::JThread &Main = Vm.mainThread();
  jvm::ObjectId Arg = Vm.newString("world");
  Vm.invokeByName(Main, "demo/Greeter", "greet", "(Ljava/lang/String;)I",
                  jvm::Value::makeNull(), {jvm::Value::makeRef(Arg)});

  // 6. Jinn threw at the faulting call; the program sees a Java exception.
  if (!Main.Pending.isNull()) {
    std::printf("Exception in thread \"main\" %s",
                Vm.describeThrowable(Main.Pending).c_str());
  }
  for (const agent::JinnReport &Report : Jinn.reporter().reports())
    std::printf("\n[jinn] machine \"%s\" flagged %s\n",
                Report.Machine.c_str(), Report.Function.c_str());

  std::printf("\nSame program, production VM, no checker:\n");
  jvm::VmOptions Options;
  Options.Flavor = jvm::VmFlavor::J9Like;
  jvm::Vm Plain(Options);
  jni::JniRuntime PlainRt(Plain);
  Plain.defineClass(Def);
  PlainRt.registerNative(
      Plain.findClass("demo/Greeter"), "greet", "(Ljava/lang/String;)I",
      [](JNIEnv *Env, jobject, const jvalue *Args) -> jvalue {
        jstring Name = static_cast<jstring>(Args[0].l);
        Env->functions->DeleteLocalRef(Env, Name);
        Env->functions->GetStringUTFLength(Env, Name); // BUG
        jvalue R;
        R.i = 0;
        return R;
      });
  jvm::ObjectId Arg2 = Plain.newString("world");
  Plain.invokeByName(Plain.mainThread(), "demo/Greeter", "greet",
                     "(Ljava/lang/String;)I", jvm::Value::makeNull(),
                     {jvm::Value::makeRef(Arg2)});
  for (const Incident &I : Plain.diags().incidents())
    std::printf("  [%s] %s\n", incidentKindName(I.Kind), I.Message.c_str());
  return 0;
}
