//===- examples/eclipse_swt.cpp - §6.4.3 Eclipse/SWT case study ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Eclipse 3.4 / SWT callback.c bug (paper §6.4.3): a
/// CallStatic<T>Method whose class argument does not *declare* the static
/// method — it merely inherits it from a superclass. Production JVMs may
/// never use the class value, so the bug "survived multiple revisions";
/// Jinn's entity-specific typing machine reports it the first time it
/// runs.
///
//===----------------------------------------------------------------------===//

#include "scenarios/CaseStudies.h"

#include <cstdio>

using namespace jinn;
using namespace jinn::scenarios;

int main() {
  std::printf("== Eclipse/SWT entity-typing bug (paper §6.4.3) ==\n\n");
  std::printf("  result = (*env)->CallStaticSWT_PTRMethodV(env, object, "
              "mid, vl);\n");
  std::printf("  // `object` only INHERITS the static method named by "
              "`mid`\n\n");

  for (CheckerKind Checker : {CheckerKind::None, CheckerKind::Xcheck,
                              CheckerKind::Jinn}) {
    WorldConfig Config;
    Config.Checker = Checker;
    ScenarioWorld World(Config);
    runEclipseSwtBug(World);
    World.shutdown();
    const char *Label = Checker == CheckerKind::None     ? "production"
                        : Checker == CheckerKind::Xcheck ? "-Xcheck:jni"
                                                         : "Jinn";
    std::printf("  %-12s -> %s\n", Label,
                outcomeName(classify(World)));
    if (World.Jinn)
      for (const agent::JinnReport &Report :
           World.Jinn->reporter().reports())
        std::printf("     [%s] %s\n", Report.Machine.c_str(),
                    Report.Message.c_str());
  }
  std::printf("\nProduction and -Xcheck:jni both run to completion — the "
              "bug is invisible\nuntil a JVM actually uses the class "
              "argument. Jinn reports it deterministically.\n");
  return 0;
}
