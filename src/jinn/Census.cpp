//===- jinn/Census.cpp - Table 2: constraint classification census -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/Census.h"

#include "jni/JniTraits.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::FnTraits;
using jinn::jni::RefConstraint;
using jinn::jni::ResourceRole;

std::vector<CensusRow> jinn::agent::computeConstraintCensus() {
  const auto &All = jni::allFnTraits();

  size_t EnvState = All.size();
  size_t ExceptionSensitive = 0;
  size_t CriticalSensitive = 0;
  size_t FixedTyping = 0;
  size_t EntityTyping = 0;
  size_t AccessControl = 0;
  size_t Nullness = 0;
  size_t Pinned = 0;
  size_t Monitor = 0;
  size_t GlobalRef = 0;
  size_t LocalRef = 0;

  for (const FnTraits &T : All) {
    if (!T.ExceptionOblivious)
      ++ExceptionSensitive;
    if (!T.CriticalAllowed)
      ++CriticalSensitive;
    if (T.IsFieldSet)
      ++AccessControl;
    if (T.Resource == ResourceRole::PinAcquire)
      ++Pinned;
    if (T.Resource == ResourceRole::MonitorEnter)
      ++Monitor;

    bool HasRefParam = false;
    for (int I = 0; I < T.NumParams; ++I) {
      const jni::ParamTraits &P = T.Params[I];
      if (P.Cls == ArgClass::Ref) {
        HasRefParam = true;
        if (P.Constraint != RefConstraint::None)
          ++FixedTyping;
      }
      if (P.NonNull &&
          (P.Cls == ArgClass::Ref || P.Cls == ArgClass::CString ||
           P.Cls == ArgClass::MethodId || P.Cls == ArgClass::FieldId))
        ++Nullness;
    }

    if ((T.hasParam(ArgClass::MethodId) || T.hasParam(ArgClass::FieldId)) &&
        !T.ProducesMethodId && !T.ProducesFieldId)
      ++EntityTyping;

    // Global/weak references: every use site (a reference parameter may
    // carry a global reference) plus the explicit acquire/release sites.
    if (HasRefParam)
      ++GlobalRef;
    if (T.Resource == ResourceRole::GlobalAcquire ||
        T.Resource == ResourceRole::GlobalRelease ||
        T.Resource == ResourceRole::WeakAcquire ||
        T.Resource == ResourceRole::WeakRelease)
      ++GlobalRef;

    // Local references: use sites, acquire sites (reference-returning
    // functions), and the explicit management functions.
    if (HasRefParam)
      ++LocalRef;
    if (T.ReturnsRef)
      ++LocalRef;
    if (T.Resource == ResourceRole::LocalDelete ||
        T.Resource == ResourceRole::PushFrame ||
        T.Resource == ResourceRole::PopFrame ||
        T.Resource == ResourceRole::EnsureCapacity ||
        T.Resource == ResourceRole::LocalAcquire)
      ++LocalRef;
  }

  return {
      {"JVM state", "JNIEnv* state", EnvState, 229,
       "Current thread matches JNIEnv* thread"},
      {"JVM state", "Exception state", ExceptionSensitive, 209,
       "No exception pending for sensitive call"},
      {"JVM state", "Critical-section state", CriticalSensitive, 225,
       "No critical section"},
      {"Type", "Fixed typing", FixedTyping, 157,
       "Parameter matches API function signature"},
      {"Type", "Entity-specific typing", EntityTyping, 131,
       "Parameter matches Java entity signature"},
      {"Type", "Access control", AccessControl, 18,
       "Written field is non-final"},
      {"Type", "Nullness", Nullness, 416, "Parameter is not null"},
      {"Resource", "Pinned or copied", Pinned, 12,
       "No leak or double-free string or array"},
      {"Resource", "Monitor", Monitor, 1, "No leak"},
      {"Resource", "Global or weak global reference", GlobalRef, 247,
       "No leak or dangling reference"},
      {"Resource", "Local reference", LocalRef, 284,
       "No overflow or dangling reference"},
  };
}
