//===- jinn/Machines.h - The eleven JNI constraint state machines --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of the eleven state machines of paper §5 — three
/// constraint classes covering the 1,500+ JNI rules:
///
///   JVM state:  JNIEnv* state, exception state, critical-section state
///   Types:      fixed typing, entity-specific typing, access control,
///               nullness
///   Resources:  pinned/copied string-or-array, monitor, global/weak
///               global reference, local reference
///
/// Each machine's constructor builds its StateMachineSpec: states, state
/// transitions, the mapping to language transitions, and actions bound to
/// the machine's mutable encoding. The definitions (one .cpp per machine
/// under machines/) are the handwritten "state machine and mapping code"
/// whose line count the synthesis experiment compares against the
/// generated wrappers.
///
/// Checks never call JNI functions; they inspect the VM through the
/// policy-free JVMTI peek interface. (The paper's Jinn calls functions like
/// GetObjectType/IsAssignableFrom from inside wrappers; the observable
/// checks are the same, without re-entering the wrapped table.)
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_MACHINES_H
#define JINN_JINN_MACHINES_H

#include "spec/StateMachine.h"

#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jinn::agent {

//===----------------------------------------------------------------------===
// JVM state constraints (paper Figure 6)
//===----------------------------------------------------------------------===

/// JNIEnv* state: the JNIEnv passed to every JNI function must belong to
/// the executing thread. Error: JNIEnv* mismatch (pitfall 14).
class JniEnvStateMachine : public spec::MachineBase {
public:
  JniEnvStateMachine();
  void onThreadStart(const spec::ThreadStartInfo &Info) override;

private:
  mutable std::mutex Mu;             ///< guards ExpectedEnv
  std::vector<uint64_t> ExpectedEnv; ///< env identity, indexed by thread id
};

/// Exception state: no exception-sensitive JNI call while an exception is
/// pending. Error: unhandled Java exception (pitfall 1).
class ExceptionStateMachine : public spec::MachineBase {
public:
  ExceptionStateMachine();
};

/// Critical-section state: between Get*Critical and Release*Critical only
/// the four critical functions are legal. Errors: critical-section
/// violation, unmatched release (pitfall 16).
class CriticalStateMachine : public spec::MachineBase {
public:
  CriticalStateMachine();

  /// Shadow nesting depth for \p ThreadId (0 when not in a section).
  int depthOf(uint32_t ThreadId) const;

private:
  /// Callers must hold Mu.
  int &depthSlot(uint32_t ThreadId) {
    if (ThreadId >= Depth.size())
      Depth.resize(ThreadId + 1, 0);
    return Depth[ThreadId];
  }

  mutable std::mutex Mu; ///< guards Depth and Held
  std::vector<int> Depth;                           ///< indexed by thread id
  std::map<std::pair<uint32_t, uint64_t>, int> Held; ///< (thread, obj)->count
};

//===----------------------------------------------------------------------===
// Type constraints (paper Figure 7)
//===----------------------------------------------------------------------===

/// Fixed typing: actuals must conform to the Java types fixed by the JNI
/// signature itself (jclass -> java.lang.Class, jstring -> String, typed
/// arrays). Suppressed for the four critical functions, mirroring the
/// paper's critical-section limitation (§6.5 category 1).
class FixedTypingMachine : public spec::MachineBase {
public:
  explicit FixedTypingMachine(const CriticalStateMachine &Critical);

private:
  const CriticalStateMachine &Critical;
};

/// Entity-specific typing: method/field IDs constrain receivers, argument
/// types, and staticness (the Eclipse SWT bug of §6.4.3).
class EntityTypingMachine : public spec::MachineBase {
public:
  EntityTypingMachine();

private:
  /// IDs observed at producer returns (GetMethodID etc.).
  mutable std::mutex Mu; ///< guards both sets
  std::unordered_set<const void *> SeenMethodIds;
  std::unordered_set<const void *> SeenFieldIds;
};

/// Access control: no assignment to final fields through the 18 Set
/// functions (pitfall 9).
class AccessControlMachine : public spec::MachineBase {
public:
  AccessControlMachine();

private:
  mutable std::mutex Mu; ///< guards RecordedFinal
  std::unordered_map<const void *, bool> RecordedFinal; ///< field id -> isFinal
};

/// Nullness: the experimentally-determined non-null parameters (pitfall 2).
class NullnessMachine : public spec::MachineBase {
public:
  NullnessMachine();
};

//===----------------------------------------------------------------------===
// Resource constraints (paper Figure 8)
//===----------------------------------------------------------------------===

/// Pinned or copied string or array: acquire/release must pair; leaks are
/// reported at termination; double-free is an error (pitfall 11).
class PinnedResourceMachine : public spec::MachineBase {
public:
  PinnedResourceMachine();
  void onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) override;

private:
  /// (object identity, pin family) -> outstanding acquisitions.
  mutable std::mutex Mu; ///< guards Outstanding
  std::map<std::pair<uint64_t, int>, int> Outstanding;
};

/// Monitor: MonitorEnter/MonitorExit must pair by program termination.
class MonitorMachine : public spec::MachineBase {
public:
  MonitorMachine();
  void onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) override;

private:
  mutable std::mutex Mu;        ///< guards Held
  std::map<uint64_t, int> Held; ///< object identity -> entry count
};

/// Global / weak-global references: explicit acquire/release; use after
/// release is dangling; unreleased references leak.
class GlobalRefMachine : public spec::MachineBase {
public:
  GlobalRefMachine();
  void onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) override;

private:
  mutable std::mutex Mu;             ///< guards Live
  std::unordered_set<uint64_t> Live; ///< live global/weak handle words
};

/// Local references: the machine of paper Figure 2/Figure 8 — acquire on
/// native entry and JNI returns, release on delete/pop/native return, use
/// on JNI calls and native returns. Errors: overflow, leak (frames),
/// dangling, double-free, wrong thread, and ID/reference confusion.
class LocalRefMachine : public spec::MachineBase {
public:
  LocalRefMachine();
  void onThreadStart(const spec::ThreadStartInfo &Info) override;

  /// Live local references currently tracked for \p ThreadId.
  size_t liveCount(uint32_t ThreadId) const;
  /// Capacity of the top shadow frame of \p ThreadId.
  uint32_t topCapacity(uint32_t ThreadId) const;

  /// Observation hook for experiments (Figure 10's time series): called
  /// after every acquire/release with the new live count.
  std::function<void(uint32_t ThreadId, size_t Live)> OnCountChange;

private:
  struct ShadowFrame {
    uint32_t Capacity = 16;
    bool Explicit = false;
    std::unordered_set<uint64_t> Live;
  };
  struct ThreadShadow {
    std::vector<ShadowFrame> Frames;
    std::vector<size_t> EntryDepths; ///< frame depth at each native entry
  };
  /// ShadowsMu guards only the map structure (insertion of new per-thread
  /// entries); unordered_map node stability makes the returned ThreadShadow&
  /// immune to rehashing. The *contents* of a ThreadShadow are only touched
  /// by its owner thread (machine transitions run on the thread making the
  /// JNI call), so the hot path stays lock-free on the owner.
  mutable std::shared_mutex ShadowsMu;
  std::unordered_map<uint32_t, ThreadShadow> Shadows;

  ThreadShadow &shadowOf(uint32_t ThreadId);
  void acquire(spec::TransitionContext &Ctx, uint64_t Word);
  void useCheck(spec::TransitionContext &Ctx, uint64_t Word,
                const char *What);
  void countChanged(uint32_t ThreadId);
};

/// Convenience: constructs all eleven machines in paper order.
struct MachineSet {
  JniEnvStateMachine EnvState;
  ExceptionStateMachine ExceptionState;
  CriticalStateMachine CriticalState;
  FixedTypingMachine FixedTyping{CriticalState};
  EntityTypingMachine EntityTyping;
  AccessControlMachine AccessControl;
  NullnessMachine Nullness;
  PinnedResourceMachine PinnedResource;
  MonitorMachine Monitor;
  GlobalRefMachine GlobalRef;
  LocalRefMachine LocalRef;

  /// All machines, in paper order.
  std::vector<spec::MachineBase *> all();
};

} // namespace jinn::agent

#endif // JINN_JINN_MACHINES_H
