//===- jinn/Machines.h - The JNI constraint state machines ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of the fourteen state machines — the paper §5 eleven plus
/// three pushdown constraints (ROADMAP item 3) — grouped as three
/// constraint classes covering the 1,500+ JNI rules:
///
///   JVM state:  JNIEnv* state, exception state, critical-section state
///   Types:      fixed typing, entity-specific typing, access control,
///               nullness
///   Resources:  pinned/copied string-or-array, monitor, global/weak
///               global reference, local reference
///
/// Each machine's constructor builds its StateMachineSpec: states, state
/// transitions, the mapping to language transitions, and actions bound to
/// the machine's mutable encoding. The definitions (one .cpp per machine
/// under machines/) are the handwritten "state machine and mapping code"
/// whose line count the synthesis experiment compares against the
/// generated wrappers.
///
/// Shadow-state layout (DESIGN.md §10): thread-confined encodings (local
/// references, expected JNIEnv, critical depth) live in per-thread tables
/// or wait-free atomic arrays; the genuinely-global tables (global refs,
/// monitors, pins, entity IDs) are lock-striped so concurrent crossings
/// contend only when they hash to the same shard. Every machine exposes
/// lockAcquires() as a contention proxy for the scaling bench.
///
/// Checks never call JNI functions; they inspect the VM through the
/// policy-free JVMTI peek interface. (The paper's Jinn calls functions like
/// GetObjectType/IsAssignableFrom from inside wrappers; the observable
/// checks are the same, without re-entering the wrapped table.)
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_MACHINES_H
#define JINN_JINN_MACHINES_H

#include "jinn/ShardedState.h"
#include "spec/StateMachine.h"

#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jinn::agent {

/// Concurrency-layout knobs shared by the machines (JinnOptions carries
/// the user-facing copies and MachineSet forwards them here).
struct MachineTuning {
  /// Lock stripes per global shadow table (rounded to a power of two).
  unsigned ShardCount = DefaultShardCount;
};

//===----------------------------------------------------------------------===
// JVM state constraints (paper Figure 6)
//===----------------------------------------------------------------------===

/// JNIEnv* state: the JNIEnv passed to every JNI function must belong to
/// the executing thread. Error: JNIEnv* mismatch (pitfall 14). The
/// expected-env table is read on every JNI call, so it is an
/// AtomicWordArray: the hot read path is wait-free.
class JniEnvStateMachine : public spec::MachineBase {
public:
  JniEnvStateMachine();
  void onThreadStart(const spec::ThreadStartInfo &Info) override;
  uint64_t lockAcquires() const { return 0; } ///< lock-free encoding

private:
  AtomicWordArray ExpectedEnv; ///< env identity, indexed by thread id
};

/// Exception state: no exception-sensitive JNI call while an exception is
/// pending. Error: unhandled Java exception (pitfall 1).
class ExceptionStateMachine : public spec::MachineBase {
public:
  ExceptionStateMachine();
  uint64_t lockAcquires() const { return 0; } ///< stateless
};

/// Critical-section state: between Get*Critical and Release*Critical only
/// the four critical functions are legal. Errors: critical-section
/// violation, unmatched release (pitfall 16). The per-thread depth tally
/// is read on every critical-sensitive call (nearly every JNI function),
/// so it lives in an AtomicWordArray; only the per-resource held map —
/// touched exclusively by the rare critical acquire/release — still takes
/// the mutex.
class CriticalStateMachine : public spec::MachineBase {
public:
  CriticalStateMachine();

  /// Shadow nesting depth for \p ThreadId (0 when not in a section).
  /// Wait-free; safe to call from any thread.
  int depthOf(uint32_t ThreadId) const {
    return static_cast<int>(static_cast<int64_t>(Depth.load(ThreadId)));
  }

  uint64_t lockAcquires() const {
    return HeldAcquires.load(std::memory_order_relaxed);
  }

private:
  AtomicWordArray Depth; ///< per-thread nesting depth (single-writer)
  mutable std::mutex Mu; ///< guards Held (critical acquire/release only)
  mutable std::atomic<uint64_t> HeldAcquires{0};
  std::map<std::pair<uint32_t, uint64_t>, int> Held; ///< (thread, obj)->count
};

//===----------------------------------------------------------------------===
// Type constraints (paper Figure 7)
//===----------------------------------------------------------------------===

/// Fixed typing: actuals must conform to the Java types fixed by the JNI
/// signature itself (jclass -> java.lang.Class, jstring -> String, typed
/// arrays). Suppressed for the four critical functions, mirroring the
/// paper's critical-section limitation (§6.5 category 1).
class FixedTypingMachine : public spec::MachineBase {
public:
  explicit FixedTypingMachine(const CriticalStateMachine &Critical);
  uint64_t lockAcquires() const { return 0; } ///< stateless

private:
  const CriticalStateMachine &Critical;
};

/// Entity-specific typing: method/field IDs constrain receivers, argument
/// types, and staticness (the Eclipse SWT bug of §6.4.3). The observed-ID
/// sets are striped by ID identity.
class EntityTypingMachine : public spec::MachineBase {
public:
  explicit EntityTypingMachine(const MachineTuning &Tuning = {});
  uint64_t lockAcquires() const {
    return SeenMethodIds.lockAcquires() + SeenFieldIds.lockAcquires();
  }

private:
  /// IDs observed at producer returns (GetMethodID etc.), keyed by the
  /// ID's pointer identity; the value is unused (set semantics).
  StripedTable<uint8_t> SeenMethodIds;
  StripedTable<uint8_t> SeenFieldIds;
};

/// Access control: no assignment to final fields through the 18 Set
/// functions (pitfall 9). Recording is rare (ID production); checking is
/// the hot path, so lookups take the lock shared.
class AccessControlMachine : public spec::MachineBase {
public:
  AccessControlMachine();
  uint64_t lockAcquires() const {
    return Acquires.load(std::memory_order_relaxed);
  }

private:
  mutable std::shared_mutex Mu; ///< guards RecordedFinal
  mutable std::atomic<uint64_t> Acquires{0};
  std::unordered_map<const void *, bool> RecordedFinal; ///< field id -> isFinal
};

/// Nullness: the experimentally-determined non-null parameters (pitfall 2).
class NullnessMachine : public spec::MachineBase {
public:
  NullnessMachine();
  uint64_t lockAcquires() const { return 0; } ///< stateless
};

//===----------------------------------------------------------------------===
// Resource constraints (paper Figure 8)
//===----------------------------------------------------------------------===

/// Pinned or copied string or array: acquire/release must pair; leaks are
/// reported at termination; double-free is an error (pitfall 11). The
/// outstanding-acquisition table is striped by resource identity; each
/// entry tallies acquisitions per pin family.
class PinnedResourceMachine : public spec::MachineBase {
public:
  explicit PinnedResourceMachine(const MachineTuning &Tuning = {});
  void onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) override;
  uint64_t lockAcquires() const { return Outstanding.lockAcquires(); }

private:
  /// Outstanding acquisitions per pin family, one slot per resource.
  struct PinCounts {
    int32_t ByFamily[6] = {0, 0, 0, 0, 0, 0}; ///< indexed by PinFamily
    bool empty() const {
      for (int32_t N : ByFamily)
        if (N != 0)
          return false;
      return true;
    }
  };
  StripedTable<PinCounts> Outstanding; ///< resource identity -> counts
};

/// Monitor: MonitorEnter/MonitorExit must pair by program termination.
/// The held set is striped by object identity; read-only held lookups
/// (heldEntryCount, the VM-death sweep) take shard locks shared.
class MonitorMachine : public spec::MachineBase {
public:
  explicit MonitorMachine(const MachineTuning &Tuning = {});
  void onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) override;

  /// Outstanding JNI entry count for object identity \p Obj (read-only,
  /// shared shard lock).
  int64_t heldEntryCount(uint64_t Obj) const;
  /// Number of distinct monitors currently held through JNI.
  size_t heldMonitorCount() const { return Held.size(); }

  uint64_t lockAcquires() const { return Held.lockAcquires(); }

private:
  StripedTable<int64_t> Held; ///< object identity -> entry count
};

/// Global / weak-global references: explicit acquire/release; use after
/// release is dangling; unreleased references leak. The live set is
/// striped by handle word; the use-site membership test — the hot path —
/// takes its shard lock shared.
class GlobalRefMachine : public spec::MachineBase {
public:
  explicit GlobalRefMachine(const MachineTuning &Tuning = {});
  void onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) override;
  uint64_t lockAcquires() const { return Live.lockAcquires(); }

private:
  StripedTable<uint8_t> Live; ///< live global/weak handle words (set)
};

/// Local references: the machine of paper Figure 2/Figure 8 — acquire on
/// native entry and JNI returns, release on delete/pop/native return, use
/// on JNI calls and native returns. Errors: overflow, leak (frames),
/// dangling, double-free, wrong thread, and ID/reference confusion.
///
/// JNI local references are thread-confined by specification, so the
/// shadow tables are too: each VM thread owns a ThreadShadow reached
/// through a thread-local cache — no lock on the hot path. Cross-thread
/// *use* of a local reference is a detected violation (the wrong-thread
/// check in useCheck), not a supported access pattern. The registry that
/// backs the cache is only locked on first touch per (machine, thread)
/// and for the cross-thread observation queries below, which callers must
/// only invoke once the owning thread has quiesced.
class LocalRefMachine : public spec::MachineBase {
public:
  LocalRefMachine();
  ~LocalRefMachine() override;
  void onThreadStart(const spec::ThreadStartInfo &Info) override;

  /// Live local references currently tracked for \p ThreadId.
  size_t liveCount(uint32_t ThreadId) const;
  /// Capacity of the top shadow frame of \p ThreadId.
  uint32_t topCapacity(uint32_t ThreadId) const;

  /// Observation hook for experiments (Figure 10's time series): called
  /// after every acquire/release with the new live count.
  std::function<void(uint32_t ThreadId, size_t Live)> OnCountChange;

  uint64_t lockAcquires() const {
    return RegistryAcquires.load(std::memory_order_relaxed);
  }

private:
  struct ShadowFrame {
    uint32_t Capacity = 16;
    bool Explicit = false;
    std::unordered_set<uint64_t> Live;
  };
  struct ThreadShadow {
    uint32_t ThreadId = 0;
    std::vector<ShadowFrame> Frames;
    std::vector<size_t> EntryDepths; ///< frame depth at each native entry
  };

  /// RegistryMu guards only the map structure (insertion of new per-thread
  /// entries). The *contents* of a ThreadShadow are only touched by the
  /// thread whose transitions they shadow (machine transitions run on the
  /// thread making the JNI call; offline replay runs every logical thread
  /// on one OS thread), so the hot path is a two-word thread-local cache
  /// compare and no lock.
  mutable std::mutex RegistryMu;
  mutable std::atomic<uint64_t> RegistryAcquires{0};
  std::unordered_map<uint32_t, std::unique_ptr<ThreadShadow>> Shadows;
  const uint64_t InstanceId; ///< keys the thread-local cache

  ThreadShadow &shadowOf(uint32_t ThreadId);
  /// shadowOf with the lookup hoisted to once per crossing: at JNI sites
  /// the resolved shadow is memoized on the CapturedCall, so a crossing
  /// that runs several of this machine's actions (or one action with many
  /// reference arguments) pays the thread-local cache compare once.
  ThreadShadow &shadowAt(spec::TransitionContext &Ctx);
  ThreadShadow *findShadow(uint32_t ThreadId) const;
  void acquire(spec::TransitionContext &Ctx, uint64_t Word);
  void useCheck(spec::TransitionContext &Ctx, uint64_t Word,
                const char *What);
  void countChanged(uint32_t ThreadId, const ThreadShadow &Shadow);
};

//===----------------------------------------------------------------------===
// Pushdown constraints (ROADMAP item 3, beyond the paper's 11 machines)
//===----------------------------------------------------------------------===
//
// Three rules are stack-shaped and need the spec language's bounded
// counter facility (spec::CounterSpec): a finite state set cannot count
// how many frames/monitors/criticals are outstanding. Each machine keeps
// one wait-free per-thread depth word; every transition declares its
// CounterOp so speclint and the static verifier (analysis/verify) can
// interpret the counter abstractly. Error ownership is disjoint from the
// regular machines: LocalRef keeps frame *leaks*, Monitor keeps monitor
// *leaks*, CriticalState keeps unmatched *releases* and in-critical calls;
// the pushdown machines own the underflow/nesting violations.

/// Local-frame nesting: every PopLocalFrame must match an earlier
/// PushLocalFrame on the same thread. Error: unmatched pop. (Frame leaks
/// at native return stay with the local-reference machine.)
class LocalFrameNestingMachine : public spec::MachineBase {
public:
  LocalFrameNestingMachine();
  /// Shadow nesting depth for \p ThreadId. Wait-free.
  int depthOf(uint32_t ThreadId) const {
    return static_cast<int>(static_cast<int64_t>(Depth.load(ThreadId)));
  }
  uint64_t lockAcquires() const { return 0; } ///< lock-free encoding

private:
  AtomicWordArray Depth; ///< per-thread explicit-frame depth (single-writer)
};

/// Monitor balance: every JNI MonitorExit must match an earlier JNI
/// MonitorEnter on the same thread. Error: unmatched exit. (Monitors still
/// held at termination stay with the monitor machine's leak check.)
class MonitorBalanceMachine : public spec::MachineBase {
public:
  MonitorBalanceMachine();
  /// Outstanding JNI monitor entries for \p ThreadId. Wait-free.
  int depthOf(uint32_t ThreadId) const {
    return static_cast<int>(static_cast<int64_t>(Depth.load(ThreadId)));
  }
  uint64_t lockAcquires() const { return 0; } ///< lock-free encoding

private:
  AtomicWordArray Depth; ///< per-thread JNI entry count (single-writer)
};

/// Critical-section nesting: a thread must not open a second critical
/// section (Get*Critical) before releasing the first — the JNI spec allows
/// no JNI call at all inside a critical region, including the critical
/// functions themselves. Error: nested critical sections. (Unmatched
/// releases and non-critical calls inside a region stay with the
/// critical-section state machine.)
class CriticalNestingMachine : public spec::MachineBase {
public:
  CriticalNestingMachine();
  /// Shadow critical depth for \p ThreadId. Wait-free.
  int depthOf(uint32_t ThreadId) const {
    return static_cast<int>(static_cast<int64_t>(Depth.load(ThreadId)));
  }
  uint64_t lockAcquires() const { return 0; } ///< lock-free encoding

private:
  AtomicWordArray Depth; ///< per-thread critical depth (single-writer)
};

/// Convenience: constructs all fourteen machines — the paper's eleven in
/// paper order, then the three pushdown machines.
struct MachineSet {
  MachineSet() : MachineSet(MachineTuning{}) {}
  explicit MachineSet(const MachineTuning &Tuning)
      : EntityTyping(Tuning), PinnedResource(Tuning), Monitor(Tuning),
        GlobalRef(Tuning) {}

  JniEnvStateMachine EnvState;
  ExceptionStateMachine ExceptionState;
  CriticalStateMachine CriticalState;
  FixedTypingMachine FixedTyping{CriticalState};
  EntityTypingMachine EntityTyping;
  AccessControlMachine AccessControl;
  NullnessMachine Nullness;
  PinnedResourceMachine PinnedResource;
  MonitorMachine Monitor;
  GlobalRefMachine GlobalRef;
  LocalRefMachine LocalRef;
  LocalFrameNestingMachine LocalFrameNesting;
  MonitorBalanceMachine MonitorBalance;
  CriticalNestingMachine CriticalNesting;

  /// All machines: paper order, then the pushdown machines.
  std::vector<spec::MachineBase *> all();

  /// (machine name, lock acquisitions) per machine — the contention proxy
  /// surfaced through the Diagnostics counters and bench_mt_scaling.
  std::vector<std::pair<const char *, uint64_t>> lockAcquireCounts() const;
};

} // namespace jinn::agent

#endif // JINN_JINN_MACHINES_H
