//===- jinn/Report.h - Jinn's exception-based error reporting ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Jinn reports violations by throwing a custom Java exception,
/// jinn.JNIAssertionFailure, at the point of failure (paper §2.3, §4,
/// Figure 9c). If an exception was already pending (the exception-state
/// machine's case), it becomes the cause of the new failure, producing the
/// "Caused by:" chain of Figure 9c. The faulting call is suppressed.
///
/// Report *recording* is buffered per thread so the reporter never takes a
/// global lock on the violation path: each OS thread appends to its own
/// buffer and flushes under the global lock only at buffer-full, thread
/// detach, or snapshot. The merged list is ordered by the deterministic
/// (TimeNs, ThreadId, Seq) key the trace subsystem already uses — per-OS-
/// thread stamps are strictly monotonic, so any single-OS-thread run (all
/// deterministic scenarios, offline replay) merges to exact program order
/// and the list stays byte-identical to the unbuffered reporter's output.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_REPORT_H
#define JINN_JINN_REPORT_H

#include "spec/StateMachine.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jinn::agent {

/// The internal class name of Jinn's custom exception.
inline constexpr const char *JinnExceptionClass = "jinn/JNIAssertionFailure";

/// One recorded violation (for harnesses; the program sees the exception).
struct JinnReport {
  std::string Machine;  ///< state machine that fired
  std::string Function; ///< faulting JNI function or native method
  std::string Message;  ///< full message as thrown
  bool EndOfRun = false; ///< leak report at VM death
};

/// Reporter that throws jinn.JNIAssertionFailure.
class JinnReporter : public spec::Reporter {
public:
  explicit JinnReporter(jvm::Vm &Vm, size_t BufferCapacity = 64);
  ~JinnReporter() override;

  void violation(spec::TransitionContext &Ctx,
                 const spec::StateMachineSpec &Machine,
                 const std::string &Message) override;

  void endOfRun(const spec::StateMachineSpec &Machine,
                const std::string &Message) override;

  /// Direct access to the merged report list. Callers must quiesce mutator
  /// threads first (harness/termination use); concurrent reporting would
  /// invalidate the reference. Drains every per-thread buffer and merges
  /// by (TimeNs, ThreadId, Seq).
  const std::vector<JinnReport> &reports() const;
  void clearReports();

  /// Flushes the calling OS thread's buffer into the merged list. Invoked
  /// from the agent's ThreadEnd callback so reports cannot outlive their
  /// thread unmerged.
  void flushLocal();

  /// Flushes and *retires* the calling OS thread's buffer: its contents
  /// merge into the drained list and the buffer itself is destroyed, so a
  /// server that churns through thousands of short-lived request threads
  /// does not accumulate one buffer per request. The next report from this
  /// OS thread (a later request reusing the worker) allocates afresh.
  void retireLocal();

  /// Number of per-thread buffers currently alive (monitoring/tests).
  size_t liveThreadBuffers() const;

  /// Thread-safe snapshot of the merged report count (unlike reports(),
  /// callable while mutator threads are still reporting).
  size_t reportCount() const;

  /// Thread-safe per-machine report counts, for monitor snapshots.
  std::map<std::string, uint64_t> reportCountsByMachine() const;

  /// Debugger integration (paper §2.3): invoked at each violation, at the
  /// point of failure, before the exception unwinds — the hook a debugger
  /// like Blink or jdb uses to stop the program with full state.
  std::function<void(const JinnReport &)> OnViolation;

  /// Number of reports from machine \p MachineName.
  size_t countFor(std::string_view MachineName) const;

private:
  /// A report plus its deterministic merge key.
  struct StampedReport {
    JinnReport Report;
    uint64_t TimeNs = 0;  ///< strictly monotonic per OS thread
    uint32_t ThreadId = 0; ///< logical (VM) thread of the transition
    uint64_t Seq = 0;      ///< per-buffer sequence, final tiebreak
  };
  /// One OS thread's append buffer. Only its owner thread appends; the
  /// reporter drains it under Mu at flush points.
  struct ThreadBuffer;

  ThreadBuffer &localBuffer();
  void append(StampedReport Stamped);
  void drainAllLocked() const;

  jvm::Vm &Vm;
  const size_t BufferCapacity;
  const uint64_t InstanceId; ///< keys the thread-local buffer cache
  mutable std::mutex Mu;     ///< guards Buffers, Drained, Reports
  mutable std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  mutable std::vector<StampedReport> Drained;
  mutable std::vector<JinnReport> Reports; ///< merged view of Drained
};

} // namespace jinn::agent

#endif // JINN_JINN_REPORT_H
