//===- jinn/Report.h - Jinn's exception-based error reporting ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Jinn reports violations by throwing a custom Java exception,
/// jinn.JNIAssertionFailure, at the point of failure (paper §2.3, §4,
/// Figure 9c). If an exception was already pending (the exception-state
/// machine's case), it becomes the cause of the new failure, producing the
/// "Caused by:" chain of Figure 9c. The faulting call is suppressed.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_REPORT_H
#define JINN_JINN_REPORT_H

#include "spec/StateMachine.h"

#include <mutex>
#include <string>
#include <vector>

namespace jinn::agent {

/// The internal class name of Jinn's custom exception.
inline constexpr const char *JinnExceptionClass = "jinn/JNIAssertionFailure";

/// One recorded violation (for harnesses; the program sees the exception).
struct JinnReport {
  std::string Machine;  ///< state machine that fired
  std::string Function; ///< faulting JNI function or native method
  std::string Message;  ///< full message as thrown
  bool EndOfRun = false; ///< leak report at VM death
};

/// Reporter that throws jinn.JNIAssertionFailure.
class JinnReporter : public spec::Reporter {
public:
  explicit JinnReporter(jvm::Vm &Vm) : Vm(Vm) {}

  void violation(spec::TransitionContext &Ctx,
                 const spec::StateMachineSpec &Machine,
                 const std::string &Message) override;

  void endOfRun(const spec::StateMachineSpec &Machine,
                const std::string &Message) override;

  /// Direct access to the report list. Callers must quiesce mutator
  /// threads first (harness/termination use); concurrent reporting would
  /// invalidate the reference.
  const std::vector<JinnReport> &reports() const { return Reports; }
  void clearReports() {
    std::lock_guard<std::mutex> Lock(Mu);
    Reports.clear();
  }

  /// Debugger integration (paper §2.3): invoked at each violation, at the
  /// point of failure, before the exception unwinds — the hook a debugger
  /// like Blink or jdb uses to stop the program with full state.
  std::function<void(const JinnReport &)> OnViolation;

  /// Number of reports from machine \p MachineName.
  size_t countFor(std::string_view MachineName) const;

private:
  jvm::Vm &Vm;
  mutable std::mutex Mu; ///< guards Reports
  std::vector<JinnReport> Reports;
};

} // namespace jinn::agent

#endif // JINN_JINN_REPORT_H
