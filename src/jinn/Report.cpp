//===- jinn/Report.cpp - Jinn's exception-based error reporting ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/Report.h"

#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace jinn;
using namespace jinn::agent;

namespace {

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One-entry thread-local cache from reporter instance to its buffer for
/// this OS thread (the TraceRecorder::localBuffer idiom). Instance ids are
/// never reused, so a stale entry can never alias a live reporter.
struct BufferCacheEntry {
  uint64_t Instance = 0;
  void *Buffer = nullptr;
};
thread_local BufferCacheEntry LocalReportCache;

std::atomic<uint64_t> NextReporterInstanceId{1};

} // namespace

/// Appends happen under the buffer's own (uncontended) mutex, never under
/// the reporter-wide Mu; drains take Mu first, then BufMu, so the lock
/// order is always Mu -> BufMu.
struct JinnReporter::ThreadBuffer {
  std::mutex BufMu;
  std::thread::id Owner;
  std::vector<StampedReport> Items;
  uint64_t LastTimeNs = 0;
  uint64_t NextSeq = 0;
};

JinnReporter::JinnReporter(jvm::Vm &Vm, size_t BufferCapacity)
    : Vm(Vm), BufferCapacity(BufferCapacity ? BufferCapacity : 1),
      InstanceId(
          NextReporterInstanceId.fetch_add(1, std::memory_order_relaxed)) {}

JinnReporter::~JinnReporter() = default;

JinnReporter::ThreadBuffer &JinnReporter::localBuffer() {
  BufferCacheEntry &Cache = LocalReportCache;
  if (Cache.Instance == InstanceId)
    return *static_cast<ThreadBuffer *>(Cache.Buffer);
  std::lock_guard<std::mutex> Lock(Mu);
  // The cache is one entry per OS thread, so interleaving two reporters on
  // one thread misses here — find this thread's existing buffer by owner
  // before creating a fresh one.
  ThreadBuffer *Buffer = nullptr;
  for (const auto &Candidate : Buffers)
    if (Candidate->Owner == std::this_thread::get_id()) {
      Buffer = Candidate.get();
      break;
    }
  if (!Buffer) {
    Buffers.push_back(std::make_unique<ThreadBuffer>());
    Buffer = Buffers.back().get();
    Buffer->Owner = std::this_thread::get_id();
  }
  Cache = {InstanceId, Buffer};
  return *Buffer;
}

void JinnReporter::append(StampedReport Stamped) {
  ThreadBuffer &Buffer = localBuffer();
  bool Full;
  {
    std::lock_guard<std::mutex> Lock(Buffer.BufMu);
    // Strictly monotonic per OS thread: a single-OS-thread run (every
    // deterministic scenario, offline replay) therefore merges to exact
    // program order under the (TimeNs, ThreadId, Seq) sort.
    uint64_t Now = monotonicNowNs();
    if (Now <= Buffer.LastTimeNs)
      Now = Buffer.LastTimeNs + 1;
    Buffer.LastTimeNs = Now;
    Stamped.TimeNs = Now;
    Stamped.Seq = Buffer.NextSeq++;
    Buffer.Items.push_back(std::move(Stamped));
    Full = Buffer.Items.size() >= BufferCapacity;
  }
  if (Full) {
    std::lock_guard<std::mutex> Lock(Mu);
    std::lock_guard<std::mutex> BufLock(Buffer.BufMu);
    for (StampedReport &Item : Buffer.Items)
      Drained.push_back(std::move(Item));
    Buffer.Items.clear();
  }
}

void JinnReporter::drainAllLocked() const {
  for (const auto &Buffer : Buffers) {
    std::lock_guard<std::mutex> BufLock(Buffer->BufMu);
    for (StampedReport &Item : Buffer->Items)
      Drained.push_back(std::move(Item));
    Buffer->Items.clear();
  }
  std::stable_sort(Drained.begin(), Drained.end(),
                   [](const StampedReport &A, const StampedReport &B) {
                     if (A.TimeNs != B.TimeNs)
                       return A.TimeNs < B.TimeNs;
                     if (A.ThreadId != B.ThreadId)
                       return A.ThreadId < B.ThreadId;
                     return A.Seq < B.Seq;
                   });
  Reports.clear();
  Reports.reserve(Drained.size());
  for (const StampedReport &Item : Drained)
    Reports.push_back(Item.Report);
}

const std::vector<JinnReport> &JinnReporter::reports() const {
  std::lock_guard<std::mutex> Lock(Mu);
  drainAllLocked();
  return Reports;
}

void JinnReporter::clearReports() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &Buffer : Buffers) {
    std::lock_guard<std::mutex> BufLock(Buffer->BufMu);
    Buffer->Items.clear();
  }
  Drained.clear();
  Reports.clear();
}

void JinnReporter::flushLocal() {
  BufferCacheEntry &Cache = LocalReportCache;
  if (Cache.Instance != InstanceId)
    return; // this OS thread never buffered a report for this reporter
  auto *Buffer = static_cast<ThreadBuffer *>(Cache.Buffer);
  std::lock_guard<std::mutex> Lock(Mu);
  std::lock_guard<std::mutex> BufLock(Buffer->BufMu);
  for (StampedReport &Item : Buffer->Items)
    Drained.push_back(std::move(Item));
  Buffer->Items.clear();
}

void JinnReporter::retireLocal() {
  std::unique_ptr<ThreadBuffer> Owned;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    // Find by owner, not via the cache: the cache may belong to another
    // reporter instance while this thread still owns a buffer here.
    for (auto It = Buffers.begin(); It != Buffers.end(); ++It)
      if ((*It)->Owner == std::this_thread::get_id()) {
        Owned = std::move(*It);
        Buffers.erase(It);
        break;
      }
    if (!Owned)
      return;
    std::lock_guard<std::mutex> BufLock(Owned->BufMu);
    for (StampedReport &Item : Owned->Items)
      Drained.push_back(std::move(Item));
    Owned->Items.clear();
  }
  // Only the owner thread runs retireLocal (the agent's ThreadEnd callback
  // fires on the detaching thread), so clearing its own cache is safe.
  BufferCacheEntry &Cache = LocalReportCache;
  if (Cache.Instance == InstanceId)
    Cache = {};
}

size_t JinnReporter::liveThreadBuffers() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Buffers.size();
}

size_t JinnReporter::reportCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = Drained.size();
  for (const auto &Buffer : Buffers) {
    std::lock_guard<std::mutex> BufLock(Buffer->BufMu);
    N += Buffer->Items.size();
  }
  return N;
}

std::map<std::string, uint64_t> JinnReporter::reportCountsByMachine() const {
  std::map<std::string, uint64_t> Counts;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const StampedReport &Item : Drained)
    ++Counts[Item.Report.Machine];
  for (const auto &Buffer : Buffers) {
    std::lock_guard<std::mutex> BufLock(Buffer->BufMu);
    for (const StampedReport &Item : Buffer->Items)
      ++Counts[Item.Report.Machine];
  }
  return Counts;
}

void JinnReporter::violation(spec::TransitionContext &Ctx,
                             const spec::StateMachineSpec &Machine,
                             const std::string &Message) {
  jvm::JThread &Thread = Ctx.thread();
  std::string Full =
      formatString("%s in %s.", Message.c_str(), Ctx.siteName().c_str());

  JinnReport Report{Machine.Name, Ctx.siteName(), Full, false};
  StampedReport Stamped;
  Stamped.Report = Report;
  Stamped.ThreadId = Ctx.threadId();
  append(std::move(Stamped));
  Vm.diags().report(IncidentKind::Note, "jinn",
                    formatString("[%s] %s", Machine.Name.c_str(),
                                 Full.c_str()));
  if (OnViolation)
    OnViolation(Report);

  // Wrap any pending exception as the cause (Figure 9c's chain), add the
  // synthetic assertFail frame, throw, and suppress the faulting call.
  jvm::ObjectId Cause = Thread.Pending;
  Thread.Pending = jvm::ObjectId();
  Thread.Stack.push_back({false, "jinn.JNIAssertionFailure.assertFail"});
  jvm::ObjectId Failure =
      Vm.makeThrowable(Thread, JinnExceptionClass, Full, Cause);
  Thread.Stack.pop_back();
  Thread.Pending = Failure;
  Ctx.abortCall();
}

void JinnReporter::endOfRun(const spec::StateMachineSpec &Machine,
                            const std::string &Message) {
  StampedReport Stamped;
  Stamped.Report = {Machine.Name, "<program termination>", Message, true};
  append(std::move(Stamped));
  Vm.diags().report(IncidentKind::LeakReport, "jinn",
                    formatString("[%s] %s", Machine.Name.c_str(),
                                 Message.c_str()));
}

size_t JinnReporter::countFor(std::string_view MachineName) const {
  std::lock_guard<std::mutex> Lock(Mu);
  drainAllLocked();
  size_t N = 0;
  for (const JinnReport &Report : Reports)
    if (Report.Machine == MachineName)
      ++N;
  return N;
}
