//===- jinn/Report.cpp - Jinn's exception-based error reporting ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/Report.h"

#include "support/Format.h"

using namespace jinn;
using namespace jinn::agent;

void JinnReporter::violation(spec::TransitionContext &Ctx,
                             const spec::StateMachineSpec &Machine,
                             const std::string &Message) {
  jvm::JThread &Thread = Ctx.thread();
  std::string Full =
      formatString("%s in %s.", Message.c_str(), Ctx.siteName().c_str());

  JinnReport Report{Machine.Name, Ctx.siteName(), Full, false};
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Reports.push_back(Report);
  }
  Vm.diags().report(IncidentKind::Note, "jinn",
                    formatString("[%s] %s", Machine.Name.c_str(),
                                 Full.c_str()));
  if (OnViolation)
    OnViolation(Report);

  // Wrap any pending exception as the cause (Figure 9c's chain), add the
  // synthetic assertFail frame, throw, and suppress the faulting call.
  jvm::ObjectId Cause = Thread.Pending;
  Thread.Pending = jvm::ObjectId();
  Thread.Stack.push_back({false, "jinn.JNIAssertionFailure.assertFail"});
  jvm::ObjectId Failure =
      Vm.makeThrowable(Thread, JinnExceptionClass, Full, Cause);
  Thread.Stack.pop_back();
  Thread.Pending = Failure;
  Ctx.abortCall();
}

void JinnReporter::endOfRun(const spec::StateMachineSpec &Machine,
                            const std::string &Message) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Reports.push_back({Machine.Name, "<program termination>", Message, true});
  }
  Vm.diags().report(IncidentKind::LeakReport, "jinn",
                    formatString("[%s] %s", Machine.Name.c_str(),
                                 Message.c_str()));
}

size_t JinnReporter::countFor(std::string_view MachineName) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const JinnReport &Report : Reports)
    if (Report.Machine == MachineName)
      ++N;
  return N;
}
