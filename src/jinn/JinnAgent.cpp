//===- jinn/JinnAgent.cpp - The Jinn dynamic bug detector -----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/JinnAgent.h"

#include "jvm/JThread.h"
#include "support/Rng.h"
#include "synth/FusedChecks.h"

using namespace jinn;
using namespace jinn::agent;

namespace {

/// FNV-1a over the thread name: the sampling stream key. Name-keyed so the
/// sampled set is identical across runs even when attach order (and thus
/// id assignment) races; a server that names request threads
/// deterministically gets a deterministic sampled set.
uint64_t threadStreamKey(uint32_t Id, const std::string &Name) {
  if (Name.empty())
    return 0x811c9dc5ULL ^ Id;
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (char C : Name) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

} // namespace

bool JinnAgent::sampledThread(uint32_t Id, const std::string &Name) const {
  if (Options.SampleRate <= 1)
    return true;
  SplitMix64 Stream =
      SplitMix64(Options.SampleSeed).split(threadStreamKey(Id, Name));
  return Stream.chance(1, Options.SampleRate);
}

const char *jinn::agent::traceModeName(TraceMode Mode) {
  switch (Mode) {
  case TraceMode::InlineCheck:
    return "inline-check";
  case TraceMode::RecordOnly:
    return "record-only";
  case TraceMode::RecordAndReplay:
    return "record+replay";
  }
  return "unknown";
}

JinnAgent::JinnAgent() = default;
JinnAgent::JinnAgent(JinnOptions Options) : Options(std::move(Options)) {}
JinnAgent::~JinnAgent() = default;

void JinnAgent::onLoad(JavaVM *JavaVm, jvmti::JvmtiEnv &Jvmti) {
  jvm::Vm &Vm = *JavaVm->vm;
  // Sampling without a trace would leave unsampled crossings uncheckable
  // forever; promote to record+replay so every crossing stays replayable
  // and any sampled report can be reproduced offline from the trace.
  if (Options.SampleRate > 1 && Options.Mode == TraceMode::InlineCheck)
    Options.Mode = TraceMode::RecordAndReplay;
  const bool Checking = Options.Mode != TraceMode::RecordOnly;
  const bool Recording = Options.Mode != TraceMode::InlineCheck;

  // The custom exception the synthesizer is parameterized with (Figure 5).
  if (!Vm.findClass(JinnExceptionClass)) {
    jvm::ClassDef Def;
    Def.Name = JinnExceptionClass;
    Def.Super = "java/lang/RuntimeException";
    Vm.defineClass(Def);
  }

  Reporter = std::make_unique<JinnReporter>(Vm, Options.ReportBufferSize);
  MachineTuning Tuning;
  Tuning.ShardCount = Options.ShardCount;
  Machines = std::make_unique<MachineSet>(Tuning);
  Active.clear();
  for (spec::MachineBase *Machine : Machines->all()) {
    bool Enabled = Options.EnabledMachines.empty();
    for (const std::string &Name : Options.EnabledMachines)
      Enabled |= Machine->spec().Name == Name;
    if (Enabled)
      Active.push_back(Machine);
  }
  Synth = std::make_unique<synth::Synthesizer>(Active, *Reporter);

  // Static check elision (sparse dispatch). Safe even when recording: the
  // recorder's all-function hooks defeat elision for every function.
  Jvmti.dispatcher().setElisionEnabled(Options.SparseDispatch);

  // The recorder's all-function hooks go first: the dispatcher runs them
  // before per-function machine hooks, so each event freezes the state the
  // machines were about to observe.
  if (Recording) {
    Recorder = std::make_unique<trace::TraceRecorder>(Vm, Options.Recorder);
    Recorder->installJniHooks(Jvmti.dispatcher());
    Synth->setBoundaryObserver(Recorder.get());
  }

  // Algorithm 1: synthesize the dynamic analysis into the dispatcher.
  // Under record-only no machine hook is installed — the boundary carries
  // only the recorder, and checking happens offline via replay.
  Stats = Checking ? Synth->installInto(Jvmti.dispatcher())
                   : synth::SynthesisStats{};

  // Sampled mode: the dispatcher (and the synthesized native wrapper)
  // consult this per-thread predicate before running ANY boundary hook —
  // recorder and machines alike. An unsampled thread costs one cached
  // predicate lookup per crossing and nothing else; a sampled thread is
  // fully recorded and fully checked, so each of its inline reports is
  // byte-replayable from the retained trace.
  if (Options.SampleRate > 1)
    Jvmti.dispatcher().setSampler([this](jvm::JThread &Thread) {
      return sampledThread(Thread.id(), Thread.name());
    });

  // Fused (tier-1) dispatch: with nothing but synthesized machine checks
  // on the boundary, compile the per-FnId straight-line check programs and
  // install them. This must come after everything above — any later
  // dynamic mutation of the dispatcher demotes the fused table, so install
  // order is what proves the table covers exactly the dynamic surface.
  FusedInstalled = false;
  FusedRefusal.clear();
  if (!Options.FusedDispatch) {
    FusedRefusal = "disabled by options";
  } else if (Recording || Options.SampleRate > 1) {
    FusedRefusal = "recording/sampling modes stay on the dynamic tier";
  } else {
    synth::FusedCompileResult Fused =
        synth::compileFusedChecks(Active, *Reporter);
    if (!Fused.Table) {
      FusedRefusal = Fused.Error;
    } else if (!Jvmti.dispatcher().installFused(Fused.Table)) {
      FusedRefusal = "dispatcher already carries non-machine hooks";
    } else {
      FusedInstalled = true;
    }
  }

  const uint32_t FrameCapacity = Vm.options().NativeFrameCapacity;
  auto InfoFor = [FrameCapacity](const jvm::JThread &Thread) {
    spec::ThreadStartInfo Info;
    Info.Id = Thread.id();
    Info.Name = Thread.name();
    Info.EnvWord =
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Thread.EnvPtr));
    Info.FrameCapacity = FrameCapacity;
    return Info;
  };

  jvmti::EventCallbacks Callbacks;
  auto BindHandler = Synth->makeNativeBindHandler();
  Callbacks.NativeMethodBind = [this, BindHandler](
                                   jvm::MethodInfo &Method,
                                   jni::JniNativeStdFn &Bound) {
    if (Recorder)
      Recorder->recordNativeBind(Method);
    BindHandler(Method, Bound);
  };
  Callbacks.ThreadStart = [this, Checking, InfoFor](jvm::JThread &Thread) {
    // Unsampled threads never reach a boundary hook, so skip their trace
    // lifecycle events and shadow setup too — under heavy attach/detach
    // churn that is most of the per-thread cost an agent would otherwise
    // pay, and it keeps the trace the exact event set of sampled threads.
    const bool Sampled = sampledThread(Thread.id(), Thread.name());
    if (Recorder && Sampled)
      Recorder->recordThreadAttach(Thread);
    if (Checking && Sampled)
      for (spec::MachineBase *Machine : Active)
        Machine->onThreadStart(InfoFor(Thread));
  };
  Callbacks.ThreadEnd = [this](jvm::JThread &Thread) {
    if (Recorder) {
      if (sampledThread(Thread.id(), Thread.name()))
        Recorder->recordThreadDetach(Thread);
      // ThreadEnd runs on the detaching thread: seal its partial ring into
      // the recorder-level queue and recycle the buffer, so short-lived
      // request threads leave no per-thread state behind. A no-op for
      // unsampled threads, which never allocate a buffer.
      Recorder->retireLocalBuffer();
    }
    // Merge and retire this thread's report buffer so none outlives its
    // thread unmerged (and the buffer itself is reclaimed).
    Reporter->retireLocal();
  };
  Callbacks.GcFinish = [this] {
    if (Recorder)
      Recorder->recordGcEpoch();
  };
  Callbacks.VmDeath = [this, Checking, &Vm] {
    if (Recorder)
      Recorder->recordVmDeath();
    if (Checking)
      for (spec::MachineBase *Machine : Active)
        Machine->onVmDeath(*Reporter, Vm);
    // Publish the contention proxy: lock acquisitions per machine.
    for (const auto &[Name, Count] : Machines->lockAcquireCounts())
      Vm.diags().setCounter(std::string("jinn.lock_acquires.") + Name,
                            Count);
  };
  Jvmti.setEventCallbacks(std::move(Callbacks));

  // Threads attached before the agent loaded (at least "main").
  for (const auto &Thread : Vm.threads()) {
    const bool Sampled = sampledThread(Thread->id(), Thread->name());
    if (Recorder && Sampled)
      Recorder->recordThreadAttach(*Thread);
    if (Checking && Sampled)
      for (spec::MachineBase *Machine : Active)
        Machine->onThreadStart(InfoFor(*Thread));
  }
}
