//===- jinn/JinnAgent.cpp - The Jinn dynamic bug detector -----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/JinnAgent.h"

#include "jvm/JThread.h"

using namespace jinn;
using namespace jinn::agent;

const char *jinn::agent::traceModeName(TraceMode Mode) {
  switch (Mode) {
  case TraceMode::InlineCheck:
    return "inline-check";
  case TraceMode::RecordOnly:
    return "record-only";
  case TraceMode::RecordAndReplay:
    return "record+replay";
  }
  return "unknown";
}

JinnAgent::JinnAgent() = default;
JinnAgent::JinnAgent(JinnOptions Options) : Options(std::move(Options)) {}
JinnAgent::~JinnAgent() = default;

void JinnAgent::onLoad(JavaVM *JavaVm, jvmti::JvmtiEnv &Jvmti) {
  jvm::Vm &Vm = *JavaVm->vm;
  const bool Checking = Options.Mode != TraceMode::RecordOnly;
  const bool Recording = Options.Mode != TraceMode::InlineCheck;

  // The custom exception the synthesizer is parameterized with (Figure 5).
  if (!Vm.findClass(JinnExceptionClass)) {
    jvm::ClassDef Def;
    Def.Name = JinnExceptionClass;
    Def.Super = "java/lang/RuntimeException";
    Vm.defineClass(Def);
  }

  Reporter = std::make_unique<JinnReporter>(Vm, Options.ReportBufferSize);
  MachineTuning Tuning;
  Tuning.ShardCount = Options.ShardCount;
  Machines = std::make_unique<MachineSet>(Tuning);
  Active.clear();
  for (spec::MachineBase *Machine : Machines->all()) {
    bool Enabled = Options.EnabledMachines.empty();
    for (const std::string &Name : Options.EnabledMachines)
      Enabled |= Machine->spec().Name == Name;
    if (Enabled)
      Active.push_back(Machine);
  }
  Synth = std::make_unique<synth::Synthesizer>(Active, *Reporter);

  // Static check elision (sparse dispatch). Safe even when recording: the
  // recorder's all-function hooks defeat elision for every function.
  Jvmti.dispatcher().setElisionEnabled(Options.SparseDispatch);

  // The recorder's all-function hooks go first: the dispatcher runs them
  // before per-function machine hooks, so each event freezes the state the
  // machines were about to observe.
  if (Recording) {
    Recorder = std::make_unique<trace::TraceRecorder>(Vm, Options.Recorder);
    Recorder->installJniHooks(Jvmti.dispatcher());
    Synth->setBoundaryObserver(Recorder.get());
  }

  // Algorithm 1: synthesize the dynamic analysis into the dispatcher.
  // Under record-only no machine hook is installed — the boundary carries
  // only the recorder, and checking happens offline via replay.
  Stats = Checking ? Synth->installInto(Jvmti.dispatcher())
                   : synth::SynthesisStats{};

  const uint32_t FrameCapacity = Vm.options().NativeFrameCapacity;
  auto InfoFor = [FrameCapacity](const jvm::JThread &Thread) {
    spec::ThreadStartInfo Info;
    Info.Id = Thread.id();
    Info.Name = Thread.name();
    Info.EnvWord =
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Thread.EnvPtr));
    Info.FrameCapacity = FrameCapacity;
    return Info;
  };

  jvmti::EventCallbacks Callbacks;
  auto BindHandler = Synth->makeNativeBindHandler();
  Callbacks.NativeMethodBind = [this, BindHandler](
                                   jvm::MethodInfo &Method,
                                   jni::JniNativeStdFn &Bound) {
    if (Recorder)
      Recorder->recordNativeBind(Method);
    BindHandler(Method, Bound);
  };
  Callbacks.ThreadStart = [this, Checking, InfoFor](jvm::JThread &Thread) {
    if (Recorder)
      Recorder->recordThreadAttach(Thread);
    if (Checking)
      for (spec::MachineBase *Machine : Active)
        Machine->onThreadStart(InfoFor(Thread));
  };
  Callbacks.ThreadEnd = [this](jvm::JThread &Thread) {
    if (Recorder)
      Recorder->recordThreadDetach(Thread);
    // Merge this thread's buffered reports so none outlives its thread
    // unmerged.
    Reporter->flushLocal();
  };
  Callbacks.GcFinish = [this] {
    if (Recorder)
      Recorder->recordGcEpoch();
  };
  Callbacks.VmDeath = [this, Checking, &Vm] {
    if (Recorder)
      Recorder->recordVmDeath();
    if (Checking)
      for (spec::MachineBase *Machine : Active)
        Machine->onVmDeath(*Reporter, Vm);
    // Publish the contention proxy: lock acquisitions per machine.
    for (const auto &[Name, Count] : Machines->lockAcquireCounts())
      Vm.diags().setCounter(std::string("jinn.lock_acquires.") + Name,
                            Count);
  };
  Jvmti.setEventCallbacks(std::move(Callbacks));

  // Threads attached before the agent loaded (at least "main").
  for (const auto &Thread : Vm.threads()) {
    if (Recorder)
      Recorder->recordThreadAttach(*Thread);
    if (Checking)
      for (spec::MachineBase *Machine : Active)
        Machine->onThreadStart(InfoFor(*Thread));
  }
}
