//===- jinn/JinnAgent.cpp - The Jinn dynamic bug detector -----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/JinnAgent.h"

using namespace jinn;
using namespace jinn::agent;

JinnAgent::JinnAgent() = default;
JinnAgent::JinnAgent(JinnOptions Options) : Options(std::move(Options)) {}
JinnAgent::~JinnAgent() = default;

void JinnAgent::onLoad(JavaVM *JavaVm, jvmti::JvmtiEnv &Jvmti) {
  jvm::Vm &Vm = *JavaVm->vm;

  // The custom exception the synthesizer is parameterized with (Figure 5).
  if (!Vm.findClass(JinnExceptionClass)) {
    jvm::ClassDef Def;
    Def.Name = JinnExceptionClass;
    Def.Super = "java/lang/RuntimeException";
    Vm.defineClass(Def);
  }

  Reporter = std::make_unique<JinnReporter>(Vm);
  Machines = std::make_unique<MachineSet>();
  Active.clear();
  for (spec::MachineBase *Machine : Machines->all()) {
    bool Enabled = Options.EnabledMachines.empty();
    for (const std::string &Name : Options.EnabledMachines)
      Enabled |= Machine->spec().Name == Name;
    if (Enabled)
      Active.push_back(Machine);
  }
  Synth = std::make_unique<synth::Synthesizer>(Active, *Reporter);

  // Algorithm 1: synthesize the dynamic analysis into the dispatcher.
  Stats = Synth->installInto(Jvmti.dispatcher());

  jvmti::EventCallbacks Callbacks;
  Callbacks.NativeMethodBind = Synth->makeNativeBindHandler();
  Callbacks.ThreadStart = [this](jvm::JThread &Thread) {
    for (spec::MachineBase *Machine : Active)
      Machine->onThreadStart(Thread);
  };
  Callbacks.VmDeath = [this, &Vm] {
    for (spec::MachineBase *Machine : Active)
      Machine->onVmDeath(*Reporter, Vm);
  };
  Jvmti.setEventCallbacks(std::move(Callbacks));

  // Threads attached before the agent loaded (at least "main").
  for (const auto &Thread : Vm.threads())
    for (spec::MachineBase *Machine : Active)
      Machine->onThreadStart(*Thread);
}
