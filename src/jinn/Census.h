//===- jinn/Census.h - Table 2: constraint classification census ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recomputes the paper's Table 2 — the classification of JNI constraints
/// and how many times the interposition agent checks each — from the trait
/// table. The paper's numbers are carried alongside for comparison.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_CENSUS_H
#define JINN_JINN_CENSUS_H

#include <cstddef>
#include <string>
#include <vector>

namespace jinn::agent {

/// One row of Table 2.
struct CensusRow {
  std::string ConstraintClass; ///< "JVM state" / "Type" / "Resource"
  std::string Name;            ///< "Exception state", "Nullness", ...
  size_t Count = 0;            ///< measured from the trait table
  size_t PaperCount = 0;       ///< the value printed in the paper
  std::string Description;
};

/// Computes all eleven rows.
std::vector<CensusRow> computeConstraintCensus();

} // namespace jinn::agent

#endif // JINN_JINN_CENSUS_H
