//===- jinn/JinnAgent.h - The Jinn dynamic bug detector -------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Jinn: the synthesized JNI bug detector (paper §4, Figure 5). At load it
/// defines the custom exception class, instantiates the fourteen machine
/// specifications, runs the synthesizer (Algorithm 1) to install the
/// context-specific checks, and registers the JVMTI callbacks — native
/// method wrapping via NativeMethodBind, per-thread machine setup, and the
/// end-of-run leak checks at VM death.
///
/// Usage (the "-agentlib:jinn" analogue):
/// \code
///   jvm::Vm Vm;
///   jni::JniRuntime Rt(Vm);
///   jvmti::AgentHost Host(Rt);
///   auto &Jinn = static_cast<agent::JinnAgent &>(
///       Host.load(std::make_unique<agent::JinnAgent>()));
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_JINNAGENT_H
#define JINN_JINN_JINNAGENT_H

#include "jinn/Machines.h"
#include "jinn/Report.h"
#include "jvmti/Jvmti.h"
#include "synth/Synthesizer.h"
#include "trace/Recorder.h"

#include <memory>

namespace jinn::agent {

/// How the agent treats each boundary crossing.
enum class TraceMode : uint8_t {
  /// Machines check at the boundary; nothing is recorded (the paper's
  /// deployment, and the default).
  InlineCheck,
  /// Only the trace recorder runs at the boundary; no machine is
  /// installed. Checking happens later, offline, via trace::replayTrace.
  RecordOnly,
  /// Machines check inline *and* every crossing is recorded. Replaying
  /// such a trace reproduces the inline report list byte-for-byte.
  RecordAndReplay,
};

const char *traceModeName(TraceMode Mode);

/// Agent options (the "-agentlib:jinn=..." string of a real deployment).
struct JinnOptions {
  /// When non-empty, only machines whose names appear here are synthesized
  /// — the ablation knob used by bench_ablation_machines.
  std::vector<std::string> EnabledMachines;
  TraceMode Mode = TraceMode::InlineCheck;
  /// Recorder tuning; only consulted when Mode records.
  trace::TraceRecorderOptions Recorder;
  /// Static check elision: let the interpose dispatcher's sparse hook
  /// table skip capture for functions no synthesized check observes (and
  /// skip post dispatch for functions with pre hooks only). Proven
  /// report-preserving by the analyzer's relevance matrix; recording modes
  /// install all-function hooks and are never elided.
  bool SparseDispatch = true;
  /// Fused (tier-1) dispatch: compile one straight-line check program per
  /// JNI function from the machine specs (synth/FusedChecks) and install
  /// it on the dispatcher, replacing the dynamic hook walk entirely for
  /// pure inline checking. Only engages when nothing but synthesized
  /// machines observe the boundary — recording modes and sampling stay
  /// dynamic, and any later dynamic mutation (a recorder, a monitor, a
  /// hand-registered hook) atomically demotes back to the dynamic tier.
  bool FusedDispatch = true;
  /// Lock stripes per global shadow table (GlobalRef/Monitor/Pinned/
  /// EntityTyping); rounded to a power of two in [1, 256].
  unsigned ShardCount = DefaultShardCount;
  /// Per-thread report buffer capacity: reports are merged under the
  /// global reporter lock only when a buffer fills, a thread detaches, or
  /// a snapshot is taken.
  size_t ReportBufferSize = 64;
  /// Deterministic sampled checking (production monitoring mode): 1 checks
  /// every crossing; N > 1 records and checks roughly 1-in-N crossings by
  /// giving each *thread* (request) a seeded SplitMix64 stream keyed on
  /// its identity and running boundary hooks — recorder and machines
  /// alike — only on threads whose stream draws 1/N. The whole-thread
  /// granularity is what keeps stateful machines sound: a sampled
  /// thread's machines observe every one of its transitions, and its
  /// complete event stream is in the trace, so each of its reports is
  /// byte-replayable from the retained segments. Unsampled threads cost
  /// one cached predicate lookup per crossing. Sampling forces a
  /// recording mode (InlineCheck is promoted to RecordAndReplay).
  uint32_t SampleRate = 1;
  /// Root seed of the per-thread sampling streams.
  uint64_t SampleSeed = 0x6a696e6e5eedULL;
};

class JinnAgent : public jvmti::Agent {
public:
  JinnAgent();
  explicit JinnAgent(JinnOptions Options);
  ~JinnAgent() override;

  const char *name() const override { return "jinn"; }
  void onLoad(JavaVM *Vm, jvmti::JvmtiEnv &Jvmti) override;

  /// The machines that were actually synthesized (after filtering).
  const std::vector<spec::MachineBase *> &activeMachines() const {
    return Active;
  }

  JinnReporter &reporter() { return *Reporter; }
  MachineSet &machines() { return *Machines; }
  const synth::SynthesisStats &stats() const { return Stats; }
  synth::Synthesizer &synthesizer() { return *Synth; }

  TraceMode mode() const { return Options.Mode; }
  /// The recorder, when mode() records (nullptr under InlineCheck).
  trace::TraceRecorder *recorder() { return Recorder.get(); }

  /// Whether the fused (tier-1) dispatch table was compiled and installed
  /// at load. The dispatcher may have since demoted to dynamic.
  bool fusedInstalled() const { return FusedInstalled; }
  /// Why fused dispatch did not engage ("" when it did).
  const std::string &fusedRefusal() const { return FusedRefusal; }

  uint32_t sampleRate() const { return Options.SampleRate; }
  /// The pure per-thread sampling decision: a seeded SplitMix64 stream
  /// keyed on the thread name (stable across runs regardless of attach
  /// order; falls back to the id for unnamed threads) draws 1-in-N.
  /// Deterministic, so harnesses can re-derive which requests were
  /// checked.
  bool sampledThread(uint32_t Id, const std::string &Name) const;

private:
  JinnOptions Options;
  std::unique_ptr<JinnReporter> Reporter;
  std::unique_ptr<MachineSet> Machines;
  std::unique_ptr<synth::Synthesizer> Synth;
  std::unique_ptr<trace::TraceRecorder> Recorder;
  std::vector<spec::MachineBase *> Active;
  synth::SynthesisStats Stats;
  bool FusedInstalled = false;
  std::string FusedRefusal;
};

} // namespace jinn::agent

#endif // JINN_JINN_JINNAGENT_H
