//===- jinn/ShardedState.h - Concurrency-scalable shadow-state layouts ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared-state layouts that let the fourteen machines scale with cores
/// instead of serializing every boundary crossing on one mutex per
/// machine (DESIGN.md §10):
///
///   StripedTable   lock-striped shards for the genuinely-global shadow
///                  tables (global refs, monitors, pinned resources,
///                  entity IDs). Each shard pairs a shared_mutex with a
///                  small open-addressed map whose entries live in one
///                  flat slab — inserts and erases never malloc except on
///                  the amortized slab doubling, so shard critical
///                  sections stay allocation-free and short.
///
///   AtomicWordArray  a grow-only, chunked array of atomic words indexed
///                  by thread id, for the read-dominated per-thread
///                  encodings (expected JNIEnv, critical depth). Readers
///                  are wait-free (two relaxed-ish atomic loads); writers
///                  take a mutex only to install a missing chunk. Chunks
///                  never move, so no reader ever observes a relocated
///                  slot.
///
/// Every lock acquisition on a striped shard is counted (relaxed,
/// per-shard to avoid the counter itself becoming a contended line) so
/// bench_mt_scaling can report a contention proxy per machine through the
/// Diagnostics counters.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_SHARDEDSTATE_H
#define JINN_JINN_SHARDEDSTATE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace jinn::agent {

/// Default shard count for the striped machines (JinnOptions::ShardCount).
inline constexpr unsigned DefaultShardCount = 16;

/// splitmix64 finalizer: spreads handle words (whose low bits carry the
/// RefKind/thread fields) uniformly across shards and probe sequences.
inline uint64_t mixBits(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Open-addressed hash map from nonzero uint64 keys to small trivially
/// copyable values. Linear probing over a power-of-two slab with
/// tombstoned erase; the slab is the arena — no per-entry allocation.
/// Not thread-safe by itself; a StripedTable shard provides the lock.
template <typename ValueT> class OpenMap {
public:
  ValueT *find(uint64_t Key) {
    if (Slots.empty())
      return nullptr;
    size_t I = probeStart(Key);
    for (size_t N = 0; N < Slots.size(); ++N, I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.State == SlotState::Empty)
        return nullptr;
      if (S.State == SlotState::Full && S.Key == Key)
        return &S.Value;
    }
    return nullptr;
  }
  const ValueT *find(uint64_t Key) const {
    return const_cast<OpenMap *>(this)->find(Key);
  }

  /// Returns the value for \p Key, inserting \p Init first when absent.
  ValueT &findOrEmplace(uint64_t Key, const ValueT &Init = ValueT()) {
    if (Slots.empty() || (Live + Tombs + 1) * 4 > Slots.size() * 3)
      grow();
    size_t I = probeStart(Key);
    size_t FirstTomb = SIZE_MAX;
    for (;; I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.State == SlotState::Full && S.Key == Key)
        return S.Value;
      if (S.State == SlotState::Tomb && FirstTomb == SIZE_MAX)
        FirstTomb = I;
      if (S.State == SlotState::Empty)
        break;
    }
    if (FirstTomb != SIZE_MAX) {
      I = FirstTomb;
      --Tombs;
    }
    Slot &S = Slots[I];
    S.State = SlotState::Full;
    S.Key = Key;
    S.Value = Init;
    ++Live;
    return S.Value;
  }

  bool erase(uint64_t Key) {
    if (Slots.empty())
      return false;
    size_t I = probeStart(Key);
    for (size_t N = 0; N < Slots.size(); ++N, I = (I + 1) & Mask) {
      Slot &S = Slots[I];
      if (S.State == SlotState::Empty)
        return false;
      if (S.State == SlotState::Full && S.Key == Key) {
        S.State = SlotState::Tomb;
        S.Value = ValueT();
        --Live;
        ++Tombs;
        return true;
      }
    }
    return false;
  }

  size_t size() const { return Live; }

  template <typename Fn> void forEach(Fn &&Visit) const {
    for (const Slot &S : Slots)
      if (S.State == SlotState::Full)
        Visit(S.Key, S.Value);
  }

private:
  enum class SlotState : uint8_t { Empty = 0, Full, Tomb };
  struct Slot {
    uint64_t Key = 0;
    ValueT Value{};
    SlotState State = SlotState::Empty;
  };

  size_t probeStart(uint64_t Key) const { return mixBits(Key) & Mask; }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    // Double when genuinely full; rehash in place when the load is mostly
    // tombstones (acquire/release churn), so cycling entries cannot grow
    // the slab without bound.
    size_t NewCap = Old.empty()
                        ? 16
                        : (Live * 4 >= Old.size() ? Old.size() * 2
                                                  : Old.size());
    Slots.assign(NewCap, Slot{});
    Mask = NewCap - 1;
    Live = Tombs = 0;
    for (Slot &S : Old)
      if (S.State == SlotState::Full)
        findOrEmplace(S.Key, S.Value);
  }

  std::vector<Slot> Slots;
  size_t Mask = 0;
  size_t Live = 0;
  size_t Tombs = 0;
};

/// Lock-striped table: N shards, each an independently locked OpenMap.
/// Handles hash to a shard with mixBits, so concurrent threads touching
/// different entities contend only 1/N of the time. Reads that dominate a
/// machine's hot path (GlobalRef use checks, Monitor held lookups) take
/// the shard lock shared; mutations take it exclusive.
template <typename ValueT> class StripedTable {
public:
  explicit StripedTable(unsigned ShardCount = DefaultShardCount) {
    unsigned N = 1;
    while (N < ShardCount && N < 256)
      N <<= 1; // clamp to a power of two in [1, 256]
    Count = N;
    Mask = N - 1;
    Shards = std::make_unique<Shard[]>(N);
  }

  struct Shard {
    mutable std::shared_mutex Mu;
    OpenMap<ValueT> Map;
    /// Lock acquires on this shard (shared and exclusive), a contention
    /// proxy. Relaxed and shard-local: the counter shares the shard's
    /// cache neighborhood, not a global line.
    mutable std::atomic<uint64_t> Acquires{0};
    // Pad each shard out of its neighbors' cache lines.
    char Pad[64];
  };

  Shard &shardFor(uint64_t Key) { return Shards[mixBits(Key) & Mask]; }
  const Shard &shardFor(uint64_t Key) const {
    return Shards[mixBits(Key) & Mask];
  }

  /// RAII shard guards that bump the acquire counter.
  static std::unique_lock<std::shared_mutex> exclusive(Shard &S) {
    S.Acquires.fetch_add(1, std::memory_order_relaxed);
    return std::unique_lock<std::shared_mutex>(S.Mu);
  }
  static std::shared_lock<std::shared_mutex> shared(const Shard &S) {
    S.Acquires.fetch_add(1, std::memory_order_relaxed);
    return std::shared_lock<std::shared_mutex>(S.Mu);
  }

  unsigned shardCount() const { return Count; }

  /// Total entries across shards (locks each shard in turn).
  size_t size() const {
    size_t N = 0;
    for (unsigned I = 0; I < Count; ++I) {
      auto Lock = shared(Shards[I]);
      N += Shards[I].Map.size();
    }
    return N;
  }

  /// Visits every entry, one shard lock at a time.
  template <typename Fn> void forEach(Fn &&Visit) const {
    for (unsigned I = 0; I < Count; ++I) {
      auto Lock = shared(Shards[I]);
      Shards[I].Map.forEach(Visit);
    }
  }

  /// Total lock acquisitions so far (the contention proxy).
  uint64_t lockAcquires() const {
    uint64_t N = 0;
    for (unsigned I = 0; I < Count; ++I)
      N += Shards[I].Acquires.load(std::memory_order_relaxed);
    return N;
  }

private:
  std::unique_ptr<Shard[]> Shards;
  unsigned Count = 1;
  uint64_t Mask = 0;
};

/// Grow-only chunked array of atomic 64-bit words indexed by thread id.
/// The wait-free read path is what makes the read-dominated machines
/// (JNIEnv* state, critical depth) scale: every JNI call reads its
/// thread's slot without any lock or RMW. Slots are single-writer in
/// practice (a thread only updates its own entry), so relaxed ordering
/// suffices for the checks built on top.
class AtomicWordArray {
public:
  static constexpr uint32_t ChunkBits = 10; // 1024 slots per chunk
  static constexpr uint32_t NumChunks = 64; // 65536 thread ids

  AtomicWordArray() {
    for (auto &C : Chunks)
      C.store(nullptr, std::memory_order_relaxed);
  }
  ~AtomicWordArray() {
    for (auto &C : Chunks)
      delete[] C.load(std::memory_order_relaxed);
  }
  AtomicWordArray(const AtomicWordArray &) = delete;
  AtomicWordArray &operator=(const AtomicWordArray &) = delete;

  /// Wait-free: 0 when the slot was never written.
  uint64_t load(uint32_t Index) const {
    const std::atomic<uint64_t> *Chunk =
        Chunks[chunkOf(Index)].load(std::memory_order_acquire);
    if (!Chunk)
      return 0;
    return Chunk[slotOf(Index)].load(std::memory_order_relaxed);
  }

  void store(uint32_t Index, uint64_t Value) {
    slot(Index).store(Value, std::memory_order_relaxed);
  }

  /// Signed add on the slot (used for the critical-section depth tally).
  int64_t fetchAdd(uint32_t Index, int64_t Delta) {
    return static_cast<int64_t>(
        slot(Index).fetch_add(static_cast<uint64_t>(Delta),
                              std::memory_order_relaxed));
  }

private:
  static uint32_t chunkOf(uint32_t Index) {
    // Ids beyond the addressable range alias the last chunk's last slot;
    // thread ids are 12-bit in the handle encoding, so this is a
    // never-taken guard rather than a real sharing concern.
    uint32_t C = Index >> ChunkBits;
    return C < NumChunks ? C : NumChunks - 1;
  }
  static uint32_t slotOf(uint32_t Index) {
    return (Index >> ChunkBits) < NumChunks ? (Index & ((1u << ChunkBits) - 1))
                                            : (1u << ChunkBits) - 1;
  }

  std::atomic<uint64_t> &slot(uint32_t Index) {
    uint32_t C = chunkOf(Index);
    std::atomic<uint64_t> *Chunk = Chunks[C].load(std::memory_order_acquire);
    if (!Chunk) {
      std::lock_guard<std::mutex> Lock(GrowMu);
      Chunk = Chunks[C].load(std::memory_order_relaxed);
      if (!Chunk) {
        Chunk = new std::atomic<uint64_t>[1u << ChunkBits];
        for (uint32_t I = 0; I < (1u << ChunkBits); ++I)
          Chunk[I].store(0, std::memory_order_relaxed);
        Chunks[C].store(Chunk, std::memory_order_release);
      }
    }
    return Chunk[slotOf(Index)];
  }

  std::atomic<std::atomic<uint64_t> *> Chunks[NumChunks];
  std::mutex GrowMu;
};

} // namespace jinn::agent

#endif // JINN_JINN_SHARDEDSTATE_H
