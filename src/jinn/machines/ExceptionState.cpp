//===- jinn/machines/ExceptionState.cpp - Exception state machine --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 6, "Exception state": after a JNI call leaves an exception
/// pending, C code must consume or propagate it; only the 20
/// exception-oblivious clean-up functions may run first (pitfall 1).
///
/// As in the paper, the Cleared->Pending and Pending->Cleared transitions
/// need no interposition: the machine encoding *is* the JVM-internal
/// pending-exception state, which the check reads directly. They are
/// declared with empty language-transition mappings for documentation and
/// the emitter.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;

ExceptionStateMachine::ExceptionStateMachine() {
  Spec.Name = "Exception state";
  Spec.ObservedEntity = "A thread";
  Spec.Errors = "Unhandled Java exception";
  Spec.Encoding = "Internal JVM structures";
  Spec.States = {"Cleared", "Pending", "Error: unhandled"};

  // Bookkeeping transitions carried by the JVM itself (no interposition).
  Spec.Transitions.push_back(
      makeTransition("Cleared", "Pending", {}, nullptr));
  Spec.Transitions.push_back(
      makeTransition("Pending", "Cleared", {}, nullptr));

  // The checked transition: an exception-sensitive call while pending.
  Spec.Transitions.push_back(makeTransition(
      "Pending", "Error: unhandled",
      {{FunctionSelector::matching(
            "any exception-sensitive JNI function",
            [](const jni::FnTraits &Traits) {
              return !Traits.ExceptionOblivious;
            }),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        if (mutate::active(mutate::M::SpecExceptionCheckDropped))
          return; // mutant: the pending-exception check never runs
        if (!Ctx.exceptionPending())
          return;
        Ctx.reporter().violation(Ctx, Spec, "An exception is pending");
      }));
}
