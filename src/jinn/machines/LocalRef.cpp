//===- jinn/machines/LocalRef.cpp - Local reference machine --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figures 2 and 8, "Local reference": the machine behind the GNOME
/// bug of Figure 1. JNI manages local references semi-automatically —
/// acquired implicitly when a native method receives references or a JNI
/// function returns one, released implicitly when the native method
/// returns (or explicitly via DeleteLocalRef/PopLocalFrame). The shadow
/// encoding is, per thread, a stack of frames, each with a capacity and the
/// set of live reference words. Detected errors: overflow (more than the
/// ensured capacity, default 16), dangling use, double free, cross-thread
/// use, leaked explicit frames, and ID/reference confusion (pitfall 6).
///
/// Concurrency: local references are thread-confined by the JNI spec, and
/// so is the shadow. Each thread's ThreadShadow is reached through a
/// thread-local cache keyed by (machine instance, logical thread id) — the
/// logical id matters because offline trace replay runs every recorded
/// thread on one OS thread. The hot path is a two-word compare and no
/// lock; RegistryMu is taken only on the first touch per (machine, thread)
/// and by the cross-thread observation queries (liveCount/topCapacity),
/// which callers must only invoke once the owning thread has quiesced.
/// Cross-thread *use* of a local reference is a reported violation (the
/// wrong-thread check below fires before any shadow access), not a
/// supported access pattern.
///
/// Note on ordering: the Use transitions are listed before the Release
/// transitions so that, at a native-method return, a returned reference is
/// validated *before* the frame pop invalidates the shadow set.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::FnTraits;
using jinn::jni::ResourceRole;
using jinn::jvm::RefKind;

namespace {

bool isLocalUseFunction(const FnTraits &Traits) {
  // DeleteLocalRef / PopLocalFrame are Release sites, not Use sites.
  return Traits.hasParam(ArgClass::Ref) &&
         Traits.Resource != ResourceRole::LocalDelete &&
         Traits.Resource != ResourceRole::PopFrame;
}

/// The thread-local fast path: one entry per OS thread, keyed by machine
/// instance and logical thread id. Pointers cached here stay valid because
/// shadows are heap-allocated (unique_ptr) and never destroyed before the
/// machine itself; instance ids are never reused, so an entry from a
/// destroyed machine can never match a live one.
struct ShadowCacheEntry {
  uint64_t Instance = 0;
  uint32_t Tid = 0;
  void *Shadow = nullptr;
};
thread_local ShadowCacheEntry LocalShadowCache;

std::atomic<uint64_t> NextLocalRefInstanceId{1};

} // namespace

LocalRefMachine::~LocalRefMachine() = default;

LocalRefMachine::ThreadShadow &LocalRefMachine::shadowOf(uint32_t ThreadId) {
  ShadowCacheEntry &Cache = LocalShadowCache;
  if (Cache.Instance == InstanceId && Cache.Tid == ThreadId)
    return *static_cast<ThreadShadow *>(Cache.Shadow);
  RegistryAcquires.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(RegistryMu);
  std::unique_ptr<ThreadShadow> &Slot = Shadows[ThreadId];
  if (!Slot) {
    Slot = std::make_unique<ThreadShadow>();
    Slot->ThreadId = ThreadId;
  }
  if (Slot->Frames.empty())
    Slot->Frames.emplace_back(); // base frame for detached-style use
  Cache = {InstanceId, ThreadId, Slot.get()};
  return *Slot;
}

LocalRefMachine::ThreadShadow &
LocalRefMachine::shadowAt(TransitionContext &Ctx) {
  if (Ctx.isJniSite()) {
    jvmti::CapturedCall &Call = Ctx.call();
    if (void *Memo = Call.memo(this))
      return *static_cast<ThreadShadow *>(Memo);
    ThreadShadow &Shadow = shadowOf(Ctx.threadId());
    Call.setMemo(this, &Shadow);
    return Shadow;
  }
  return shadowOf(Ctx.threadId());
}

LocalRefMachine::ThreadShadow *
LocalRefMachine::findShadow(uint32_t ThreadId) const {
  RegistryAcquires.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(RegistryMu);
  auto It = Shadows.find(ThreadId);
  return It != Shadows.end() ? It->second.get() : nullptr;
}

void LocalRefMachine::onThreadStart(const spec::ThreadStartInfo &Info) {
  RegistryAcquires.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(RegistryMu);
  std::unique_ptr<ThreadShadow> &Slot = Shadows[Info.Id];
  if (!Slot) {
    Slot = std::make_unique<ThreadShadow>();
    Slot->ThreadId = Info.Id;
  }
  if (Slot->Frames.empty()) {
    ShadowFrame Base;
    Base.Capacity = Info.FrameCapacity;
    Slot->Frames.push_back(std::move(Base));
  }
}

size_t LocalRefMachine::liveCount(uint32_t ThreadId) const {
  const ThreadShadow *Shadow = findShadow(ThreadId);
  if (!Shadow)
    return 0;
  size_t N = 0;
  for (const ShadowFrame &Frame : Shadow->Frames)
    N += Frame.Live.size();
  return N;
}

uint32_t LocalRefMachine::topCapacity(uint32_t ThreadId) const {
  const ThreadShadow *Shadow = findShadow(ThreadId);
  if (!Shadow || Shadow->Frames.empty())
    return 0;
  return Shadow->Frames.back().Capacity;
}

void LocalRefMachine::countChanged(uint32_t ThreadId,
                                   const ThreadShadow &Shadow) {
  if (!OnCountChange)
    return;
  // Tally straight from the shadow we already own — no registry lock.
  size_t N = 0;
  for (const ShadowFrame &Frame : Shadow.Frames)
    N += Frame.Live.size();
  OnCountChange(ThreadId, N);
}

void LocalRefMachine::acquire(TransitionContext &Ctx, uint64_t Word) {
  if (!Word)
    return;
  std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(Word);
  if (!Bits || Bits->Kind != RefKind::Local)
    return; // only local references are tracked here
  ThreadShadow &Shadow = shadowAt(Ctx);
  ShadowFrame &Top = Shadow.Frames.back();
  Top.Live.insert(Word);
  countChanged(Ctx.threadId(), Shadow);
  uint32_t Limit = Top.Capacity;
  if (mutate::active(mutate::M::SpecLocalRefOverflowOffByOne))
    Limit += 1;
  if (Top.Live.size() > Limit)
    Ctx.reporter().violation(
        Ctx, Spec,
        formatString("local reference overflow: %zu live references exceed "
                     "the ensured capacity of %u",
                     Top.Live.size(), Top.Capacity));
}

void LocalRefMachine::useCheck(TransitionContext &Ctx, uint64_t Word,
                               const char *What) {
  if (!Word)
    return;
  std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(Word);
  if (!Bits) {
    Ctx.reporter().violation(
        Ctx, Spec,
        formatString("%s is not a JNI reference (a method or field ID, or "
                     "a stray pointer?)",
                     What));
    return;
  }
  if (Bits->Kind != RefKind::Local)
    return; // globals belong to the global-reference machine
  uint32_t Tid = Ctx.threadId();
  if (Bits->Thread != Tid) {
    // Thread confinement: never touch the owning thread's shadow from
    // here — report and stop.
    Ctx.reporter().violation(
        Ctx, Spec,
        formatString("%s is a local reference that belongs to thread %u, "
                     "not to the current thread %u",
                     What, Bits->Thread, Tid));
    return;
  }
  ThreadShadow &Shadow = shadowAt(Ctx);
  for (const ShadowFrame &Frame : Shadow.Frames)
    if (Frame.Live.count(Word))
      return; // tracked and live
  // Untracked: adopt pre-agent references; report dead ones.
  jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
  if (Peek.S == jvm::Vm::PeekResult::Status::Live) {
    Shadow.Frames.back().Live.insert(Word);
    return;
  }
  Ctx.reporter().violation(
      Ctx, Spec,
      formatString("%s is a dangling local reference (its frame was popped "
                   "or it was deleted)",
                   What));
}

LocalRefMachine::LocalRefMachine()
    : InstanceId(NextLocalRefInstanceId.fetch_add(1,
                                                  std::memory_order_relaxed)) {
  Spec.Name = "Local reference";
  Spec.ObservedEntity = "A local JNI reference";
  Spec.Errors = "Overflow, leak, dangling, and double-free";
  Spec.Encoding = "For each thread, a stack of frames. Each frame has a "
                  "capacity and a list of local references";
  Spec.States = {"Before acquire", "Acquired", "Released",
                 "Error: dangling", "Error: overflow"};

  // Acquire at Call:Java->C: a native method receives its receiver and
  // reference arguments in a fresh frame (capacity 16 unless ensured).
  Spec.Transitions.push_back(makeTransition(
      "Before acquire", "Acquired",
      {{FunctionSelector::nativeMethods("native method taking reference"),
        Direction::CallJavaToC}},
      [this](TransitionContext &Ctx) {
        ThreadShadow &Shadow = shadowOf(Ctx.threadId());
        Shadow.EntryDepths.push_back(Shadow.Frames.size());
        ShadowFrame Frame;
        Frame.Capacity = Ctx.nativeFrameCapacity();
        Shadow.Frames.push_back(std::move(Frame));
        acquire(Ctx, jni::handleWord(Ctx.self()));
        const jvm::MethodDesc &Sig = Ctx.method().Sig;
        for (size_t I = 0; I < Sig.Params.size(); ++I)
          if (Sig.Params[I].isReference() && Ctx.args())
            acquire(Ctx, jni::handleWord(Ctx.args()[I].l));
      }));

  // Acquire at Return:Java->C: a JNI function returned a reference.
  Spec.Transitions.push_back(makeTransition(
      "Before acquire", "Acquired",
      {{FunctionSelector::matching(
            "any JNI function returning a reference",
            [](const FnTraits &Traits) { return Traits.ReturnsRef; }),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (Ctx.call().returnIsRef())
          acquire(Ctx, Ctx.call().returnWord());
      }));

  // Frame management: PushLocalFrame / EnsureLocalCapacity extend the
  // capacity the overflow check enforces.
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Acquired",
      {{FunctionSelector::one(jni::FnId::PushLocalFrame),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        ShadowFrame Frame;
        Frame.Capacity = static_cast<uint32_t>(Ctx.call().arg(0).Word);
        Frame.Explicit = true;
        shadowAt(Ctx).Frames.push_back(std::move(Frame));
      }));
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Acquired",
      {{FunctionSelector::one(jni::FnId::EnsureLocalCapacity),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        ShadowFrame &Top = shadowAt(Ctx).Frames.back();
        uint32_t Wanted = static_cast<uint32_t>(Ctx.call().arg(0).Word);
        if (Top.Capacity < Wanted)
          Top.Capacity = Wanted;
      }));

  // Use at Call:C->Java: any JNI function taking a reference.
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Error: dangling",
      {{FunctionSelector::matching("any JNI function taking a reference, "
                                   "except DeleteLocalRef and PopLocalFrame",
                                   isLocalUseFunction),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        const FnTraits &Traits = Ctx.call().traits();
        for (int I = 0; I < Traits.NumParams && !Ctx.aborted(); ++I)
          if (Traits.Params[I].Cls == ArgClass::Ref)
            useCheck(Ctx, Ctx.call().refWord(I),
                     formatString("argument %d", I + 1).c_str());
      }));

  // Use at Return:C->Java: a native method returning a reference. Listed
  // before the Release transition (see file comment).
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Error: dangling",
      {{FunctionSelector::nativeMethods("native method returning reference"),
        Direction::ReturnCToJava}},
      [this](TransitionContext &Ctx) {
        if (!Ctx.ret() || !Ctx.method().Sig.Ret.isReference())
          return;
        useCheck(Ctx, jni::handleWord(Ctx.ret()->l),
                 "the native method's return value");
      }));

  // Release at Call:C->Java of DeleteLocalRef.
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Released",
      {{FunctionSelector::one(jni::FnId::DeleteLocalRef),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        uint64_t Word = Ctx.call().refWord(0);
        if (!Word)
          return;
        ThreadShadow &Shadow = shadowAt(Ctx);
        for (auto It = Shadow.Frames.rbegin(); It != Shadow.Frames.rend();
             ++It)
          if (It->Live.erase(Word)) {
            countChanged(Ctx.threadId(), Shadow);
            return;
          }
        jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
        if (Peek.S == jvm::Vm::PeekResult::Status::Live)
          return; // pre-agent reference; the delete is legitimate
        Ctx.reporter().violation(
            Ctx, Spec,
            "DeleteLocalRef of a dead local reference (double free)");
      }));

  // Release at Call:C->Java of PopLocalFrame. The *underflow* (a pop with
  // no explicit frame to match) is owned by the local-frame nesting
  // machine — a pushdown rule this machine's finite frame shadow cannot
  // express in general — so on underflow the shadow simply declines to pop
  // the base frame and leaves the reporting to that machine, which aborts
  // the call.
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Released",
      {{FunctionSelector::one(jni::FnId::PopLocalFrame),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        ThreadShadow &Shadow = shadowAt(Ctx);
        if (Shadow.Frames.empty() || !Shadow.Frames.back().Explicit)
          return;
        Shadow.Frames.pop_back();
        countChanged(Ctx.threadId(), Shadow);
      }));

  // Release at Return:C->Java: the VM frees the native frame; explicit
  // frames that were never popped leak.
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Released",
      {{FunctionSelector::nativeMethods("return from any native method"),
        Direction::ReturnCToJava}},
      [this](TransitionContext &Ctx) {
        ThreadShadow &Shadow = shadowOf(Ctx.threadId());
        if (Shadow.EntryDepths.empty())
          return;
        size_t Depth = Shadow.EntryDepths.back();
        Shadow.EntryDepths.pop_back();
        size_t ExplicitLeaks = 0;
        while (Shadow.Frames.size() > Depth) {
          if (Shadow.Frames.back().Explicit)
            ++ExplicitLeaks;
          Shadow.Frames.pop_back();
        }
        countChanged(Ctx.threadId(), Shadow);
        if (ExplicitLeaks > 0)
          Ctx.reporter().violation(
              Ctx, Spec,
              formatString("%zu local reference frame(s) pushed with "
                           "PushLocalFrame were never popped (leak)",
                           ExplicitLeaks));
      }));
}
