//===- jinn/machines/Monitor.cpp - Monitor machine ------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 8, "Monitor": MonitorEnter/MonitorExit acquisitions must be
/// balanced by program termination; an unreleased monitor is reported as a
/// deadlock risk. Overflow and double-free need no checking here because
/// the JVM already throws (IllegalMonitorStateException), as the paper
/// notes.
///
/// The held set is striped by object identity; read-only queries
/// (heldEntryCount, the VM-death sweep) take shard locks shared.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;

MonitorMachine::MonitorMachine(const MachineTuning &Tuning)
    : Held(Tuning.ShardCount) {
  Spec.Name = "Monitor";
  Spec.ObservedEntity = "A monitor";
  Spec.Errors = "Leak";
  Spec.Encoding = "A set of monitors currently held by JNI and, for each "
                  "monitor, the current entry count";
  Spec.States = {"Released", "Held"};

  Spec.Transitions.push_back(makeTransition(
      "Released", "Held",
      {{FunctionSelector::one(jni::FnId::MonitorEnter),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        uint64_t Word = Ctx.call().refWord(0);
        if (mutate::active(mutate::M::SpecMonitorIdentitySwapped))
          Word = Ctx.call().returnWord(); // mutant: wrong entity (JNI_OK)
        uint64_t Obj = identityOf(Ctx, Word);
        if (Obj) {
          auto &Shard = Held.shardFor(Obj);
          auto Lock = StripedTable<int64_t>::exclusive(Shard);
          Shard.Map.findOrEmplace(Obj, 0) += 1;
        }
      }));

  Spec.Transitions.push_back(makeTransition(
      "Held", "Released",
      {{FunctionSelector::one(jni::FnId::MonitorExit),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        uint64_t Obj = identityOf(Ctx, Ctx.call().refWord(0));
        auto &Shard = Held.shardFor(Obj);
        auto Lock = StripedTable<int64_t>::exclusive(Shard);
        int64_t *Count = Shard.Map.find(Obj);
        if (!Count)
          return; // the JVM already threw for unbalanced exits
        if (--*Count == 0)
          Shard.Map.erase(Obj);
      }));
}

int64_t MonitorMachine::heldEntryCount(uint64_t Obj) const {
  const auto &Shard = Held.shardFor(Obj);
  auto Lock = StripedTable<int64_t>::shared(Shard);
  const int64_t *Count = Shard.Map.find(Obj);
  return Count ? *Count : 0;
}

void MonitorMachine::onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) {
  (void)Vm;
  size_t HeldCount = Held.size();
  if (HeldCount > 0)
    Rep.endOfRun(Spec,
                 formatString("%zu monitor(s) still held through JNI at "
                              "program termination (deadlock risk)",
                              HeldCount));
}
