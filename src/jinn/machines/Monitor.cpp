//===- jinn/machines/Monitor.cpp - Monitor machine ------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 8, "Monitor": MonitorEnter/MonitorExit acquisitions must be
/// balanced by program termination; an unreleased monitor is reported as a
/// deadlock risk. Overflow and double-free need no checking here because
/// the JVM already throws (IllegalMonitorStateException), as the paper
/// notes.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"

using namespace jinn;
using namespace jinn::agent;

MonitorMachine::MonitorMachine() {
  Spec.Name = "Monitor";
  Spec.ObservedEntity = "A monitor";
  Spec.Errors = "Leak";
  Spec.Encoding = "A set of monitors currently held by JNI and, for each "
                  "monitor, the current entry count";
  Spec.States = {"Released", "Held"};

  Spec.Transitions.push_back(makeTransition(
      "Released", "Held",
      {{FunctionSelector::one(jni::FnId::MonitorEnter),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        uint64_t Obj = identityOf(Ctx, Ctx.call().refWord(0));
        if (Obj) {
          std::lock_guard<std::mutex> Lock(Mu);
          Held[Obj] += 1;
        }
      }));

  Spec.Transitions.push_back(makeTransition(
      "Held", "Released",
      {{FunctionSelector::one(jni::FnId::MonitorExit),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        uint64_t Obj = identityOf(Ctx, Ctx.call().refWord(0));
        std::lock_guard<std::mutex> Lock(Mu);
        auto It = Held.find(Obj);
        if (It == Held.end())
          return; // the JVM already threw for unbalanced exits
        if (--It->second == 0)
          Held.erase(It);
      }));
}

void MonitorMachine::onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) {
  (void)Vm;
  size_t HeldCount;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    HeldCount = Held.size();
  }
  if (HeldCount > 0)
    Rep.endOfRun(Spec,
                 formatString("%zu monitor(s) still held through JNI at "
                              "program termination (deadlock risk)",
                              HeldCount));
}
