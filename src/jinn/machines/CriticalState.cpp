//===- jinn/machines/CriticalState.cpp - Critical-section state machine --===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 6, "Critical-section state": between
/// Get{String,PrimitiveArray}Critical and the matching release, C code may
/// only call the four critical functions; anything else risks deadlock
/// because the JVM may have disabled GC (pitfall 16). The encoding tallies,
/// per thread, how many times each critical resource was acquired.
///
/// The Inside->Error transition matches almost every JNI function, so its
/// guard — "is this thread's depth nonzero?" — runs on nearly every
/// crossing. The per-thread depth therefore lives in a wait-free
/// AtomicWordArray; only the per-resource Held map, touched exclusively by
/// the rare critical acquire/release pair, still takes the mutex.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::FnTraits;
using jinn::jni::PinFamily;
using jinn::jni::ResourceRole;

CriticalStateMachine::CriticalStateMachine() {
  Spec.Name = "Critical-section state";
  Spec.ObservedEntity = "A thread";
  Spec.Errors = "Critical section violation";
  Spec.Encoding = "Map from a critical resource to the number of times a "
                  "given thread has acquired it";
  Spec.States = {"Outside", "Inside", "Error: violation"};

  // Acquire: Return:Java->C of GetStringCritical/GetPrimitiveArrayCritical.
  Spec.Transitions.push_back(makeTransition(
      "Outside", "Inside",
      {{FunctionSelector::matching(
            "GetStringCritical or GetPrimitiveArrayCritical",
            [](const FnTraits &Traits) {
              return Traits.Resource == ResourceRole::PinAcquire &&
                     (Traits.Pin == PinFamily::CriticalArray ||
                      Traits.Pin == PinFamily::CriticalString);
            }),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (!Ctx.call().returnPtr())
          return; // acquisition failed; no state change
        uint64_t Resource = identityOf(Ctx, Ctx.call().refWord(0));
        uint32_t Tid = Ctx.threadId();
        Depth.fetchAdd(Tid, 1);
        HeldAcquires.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> Lock(Mu);
        Held[{Tid, Resource}] += 1;
      }));

  // Release: Return:Java->C of the matching release functions. The
  // resource is identified by the buffer pointer C hands back, because
  // inspecting the object argument would itself require JNI calls that are
  // illegal in a critical region (paper §5.1).
  Spec.Transitions.push_back(makeTransition(
      "Inside", "Outside",
      {{FunctionSelector::matching(
            "ReleaseStringCritical or ReleasePrimitiveArrayCritical",
            [](const FnTraits &Traits) {
              return Traits.Resource == ResourceRole::PinRelease &&
                     (Traits.Pin == PinFamily::CriticalArray ||
                      Traits.Pin == PinFamily::CriticalString);
            }),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        uint32_t Tid = Ctx.threadId();
        int BufIndex = Ctx.call().traits().firstParam(ArgClass::OutPtr);
        const void *Buf =
            BufIndex >= 0 ? Ctx.call().arg(BufIndex).Ptr : nullptr;
        uint64_t BufTarget = 0;
        bool Found = Buf && Ctx.releasedBuffer(Buf, BufTarget);
        // Decide under the lock, report after releasing it: violation()
        // may allocate a throwable and thereby trigger a collection, which
        // must not happen while a machine mutex is held. The depth word is
        // only ever written by its own thread, so reading it outside the
        // Held lock cannot race.
        const char *Error = nullptr;
        if (!Found || depthOf(Tid) <= 0) {
          Error = "An unmatched critical-section release was issued";
        } else {
          uint64_t Resource = BufTarget;
          HeldAcquires.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> Lock(Mu);
          auto It = Held.find({Tid, Resource});
          if (It == Held.end() || It->second <= 0) {
            Error = "A critical resource was released that this thread "
                    "does not hold";
          } else {
            if (--It->second == 0)
              Held.erase(It);
            Depth.fetchAdd(Tid, -1);
          }
        }
        if (Error)
          Ctx.reporter().violation(Ctx, Spec, Error);
      }));

  // Error: any critical-section-sensitive call while inside.
  Spec.Transitions.push_back(makeTransition(
      "Inside", "Error: violation",
      {{FunctionSelector::matching(
            "any critical-section-sensitive JNI function",
            [](const FnTraits &Traits) { return !Traits.CriticalAllowed; }),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        if (depthOf(Ctx.threadId()) <= 0)
          return;
        Ctx.reporter().violation(
            Ctx, Spec,
            "A JNI call was made inside a JNI critical section");
      }));
}
