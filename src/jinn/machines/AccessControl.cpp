//===- jinn/machines/AccessControl.cpp - Access control machine ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 7, "Access control": JNI in practice ignores visibility
/// (consistent with reflection after setAccessible(true)) but honors
/// `final`; Jinn raises an error when any of the 18 Set<T>Field /
/// SetStatic<T>Field functions writes a final field (pitfall 9). Field
/// modifiers are recorded when field IDs are produced.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::FnTraits;

AccessControlMachine::AccessControlMachine() {
  Spec.Name = "Access control";
  Spec.ObservedEntity = "A field ID";
  Spec.Errors = "Assignment to final field";
  Spec.Encoding = "Map from field IDs to their modifiers";
  Spec.States = {"Recorded", "Checked"};

  // Record modifiers when field IDs are produced.
  Spec.Transitions.push_back(makeTransition(
      "Recorded", "Recorded",
      {{FunctionSelector::matching(
            "GetFieldID/GetStaticFieldID/FromReflectedField",
            [](const FnTraits &Traits) { return Traits.ProducesFieldId; }),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        const void *Id = Ctx.call().returnPtr();
        if (!Id || !Ctx.call().returnFieldIdValid())
          return;
        const auto *F = static_cast<const jvm::FieldInfo *>(Id);
        Acquires.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::shared_mutex> Lock(Mu);
        RecordedFinal[Id] = F->IsFinal;
      }));

  // Check: the 18 field-writing functions.
  Spec.Transitions.push_back(makeTransition(
      "Recorded", "Checked",
      {{FunctionSelector::matching(
            "Set<Type>Field or SetStatic<Type>Field",
            [](const FnTraits &Traits) { return Traits.IsFieldSet; }),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        jvm::FieldInfo *F = Ctx.call().fieldArg();
        if (!F)
          return; // invalid IDs belong to the entity-typing machine
        bool IsFinal;
        {
          // Read-mostly: recording only happens at ID production, so the
          // per-write check takes the lock shared.
          Acquires.fetch_add(1, std::memory_order_relaxed);
          std::shared_lock<std::shared_mutex> Lock(Mu);
          auto It = RecordedFinal.find(F);
          IsFinal = It != RecordedFinal.end() ? It->second : F->IsFinal;
        }
        if (IsFinal)
          Ctx.reporter().violation(
              Ctx, Spec,
              formatString("assignment to final field %s",
                           F->qualifiedName().c_str()));
      }));
}
