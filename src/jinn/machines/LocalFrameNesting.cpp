//===- jinn/machines/LocalFrameNesting.cpp - Local-frame nesting ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first pushdown machine (ROADMAP item 3): PushLocalFrame and
/// PopLocalFrame must nest per thread. A finite state set cannot express
/// "as many pops as pushes", so the machine declares a counter
/// (spec::CounterSpec) and its transitions declare push/pop moves; the one
/// live state just says "balanced so far". The dynamic encoding is a
/// wait-free per-thread depth word.
///
/// Error ownership: this machine owns the *underflow* (PopLocalFrame
/// without a matching push) — transferred here from the local-reference
/// machine, whose frame shadow now pops silently on underflow. Frame
/// *leaks* (pushed frames never popped by native return) remain with the
/// local-reference machine.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;
using spec::CounterOp;

static const char UnmatchedPopMsg[] =
    "PopLocalFrame without a matching PushLocalFrame";

LocalFrameNestingMachine::LocalFrameNestingMachine() {
  Spec.Name = "Local-frame nesting";
  Spec.ObservedEntity = "A thread's stack of explicitly pushed local frames";
  Spec.Errors = "Unmatched pop";
  Spec.Encoding = "A wait-free per-thread count of outstanding "
                  "PushLocalFrame frames";
  Spec.States = {"Balanced", "Error: unmatched pop"};
  uint32_t Bound = 64;
  if (mutate::active(mutate::M::SpecLocalFrameBound65))
    Bound = 65; // mutant: wrong static widening cap
  Spec.Counter = {"local-frame depth", Bound};

  // Push: a successful PushLocalFrame deepens the nesting.
  Spec.Transitions.push_back(makeTransition(
      "Balanced", "Balanced",
      {{FunctionSelector::one(jni::FnId::PushLocalFrame),
        Direction::ReturnJavaToC}},
      CounterOp::Push, [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        Depth.fetchAdd(Ctx.threadId(), 1);
      }));

  // Pop above zero: the matching PopLocalFrame. The decrement runs at the
  // *return* so it cannot race the underflow check below — an underflowing
  // pop is aborted at the call and never reaches this hook.
  Spec.Transitions.push_back(makeTransition(
      "Balanced", "Balanced",
      {{FunctionSelector::one(jni::FnId::PopLocalFrame),
        Direction::ReturnJavaToC}},
      CounterOp::Pop, [this](TransitionContext &Ctx) {
        uint32_t Tid = Ctx.threadId();
        if (static_cast<int64_t>(Depth.load(Tid)) > 0)
          Depth.fetchAdd(Tid, -1);
      }));

  // Pop at zero: underflow — there is no frame this pop could match.
  if (!mutate::active(mutate::M::SpecLocalFrameUnderflowDropped)) {
    Spec.Transitions.push_back(makeTransition(
        "Balanced", "Error: unmatched pop",
        {{FunctionSelector::one(jni::FnId::PopLocalFrame),
          Direction::CallCToJava}},
        CounterOp::Pop, [this](TransitionContext &Ctx) {
          if (static_cast<int64_t>(Depth.load(Ctx.threadId())) > 0)
            return;
          Ctx.reporter().violation(Ctx, Spec, UnmatchedPopMsg);
        }));
    Spec.Transitions.back().Violation = UnmatchedPopMsg;
  }
}
