//===- jinn/machines/EntityTyping.cpp - Entity-specific typing machine ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 7, "Entity-specific typing": a method or field ID
/// constrains the other parameters of the 131 functions that consume it —
/// staticness, the receiver's class, argument conformance, and the
/// Call<T>/Get<T>/Set<T> return kind. Signatures are recorded when the
/// producer functions return IDs; the consumers are checked against them.
/// This machine catches the Eclipse/SWT bug of §6.4.3 (a static call
/// through a class that merely *inherits* the method) and pitfall 6 when a
/// garbage value is used as an ID.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::CallKind;
using jinn::jni::FnTraits;
using jinn::jvm::JType;

namespace {

bool consumesEntityId(const FnTraits &Traits) {
  return (Traits.hasParam(ArgClass::MethodId) ||
          Traits.hasParam(ArgClass::FieldId)) &&
         !Traits.ProducesMethodId && !Traits.ProducesFieldId;
}

/// True when the live object named by \p Word conforms to reference type
/// \p Formal (unknown classes conform conservatively).
bool conformsTo(TransitionContext &Ctx, uint64_t Word,
                const jvm::TypeDesc &Formal) {
  if (!Word)
    return true; // null conforms to any reference type
  jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
  if (Peek.S != jvm::Vm::PeekResult::Status::Live)
    return true; // liveness errors belong to the reference machines
  jvm::Klass *Have = Ctx.vm().klassOf(Peek.Target);
  if (!Have)
    return true;
  if (Formal.isArray())
    return Have->name() == Formal.ClassName;
  jvm::Klass *Want = Ctx.vm().findClass(Formal.ClassName);
  return !Want || Have->isSubclassOf(Want);
}

} // namespace

EntityTypingMachine::EntityTypingMachine(const MachineTuning &Tuning)
    : SeenMethodIds(Tuning.ShardCount), SeenFieldIds(Tuning.ShardCount) {
  Spec.Name = "Entity-specific typing";
  Spec.ObservedEntity = "A pair of ID parameters";
  Spec.Errors = "Type mismatch for Java field assignment or between actual "
                "and formal of a Java method";
  Spec.Encoding = "Map from entity IDs to their signatures";
  Spec.States = {"Recorded", "Checked"};

  // Record: Return:Java->C of the ID-producing functions.
  Spec.Transitions.push_back(makeTransition(
      "Recorded", "Recorded",
      {{FunctionSelector::matching(
            "GetMethodID/GetStaticMethodID/GetFieldID/GetStaticFieldID/"
            "FromReflectedMethod/FromReflectedField",
            [](const FnTraits &Traits) {
              return Traits.ProducesMethodId || Traits.ProducesFieldId;
            }),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        const void *Id = Ctx.call().returnPtr();
        if (!Id)
          return;
        uint64_t Key = reinterpret_cast<uint64_t>(Id);
        StripedTable<uint8_t> &Table = Ctx.call().traits().ProducesMethodId
                                           ? SeenMethodIds
                                           : SeenFieldIds;
        auto &Shard = Table.shardFor(Key);
        auto Lock = StripedTable<uint8_t>::exclusive(Shard);
        Shard.Map.findOrEmplace(Key, 1);
      }));

  // Check: Call:C->Java of the 131 consuming functions.
  Spec.Transitions.push_back(makeTransition(
      "Recorded", "Checked",
      {{FunctionSelector::matching(
            "any JNI function consuming a method or field ID",
            consumesEntityId),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        const FnTraits &Traits = Ctx.call().traits();
        jvm::Vm &Vm = Ctx.vm();

        if (Traits.hasParam(ArgClass::MethodId)) {
          jvm::MethodInfo *M = Ctx.call().methodArg();
          if (!M) {
            if (Ctx.call().methodArgWord())
              Ctx.reporter().violation(
                  Ctx, Spec, "The method ID is not a valid jmethodID");
            return; // null IDs belong to the nullness machine
          }
          // Staticness must agree with the call family.
          if (Traits.Call == CallKind::Static && !M->IsStatic) {
            Ctx.reporter().violation(
                Ctx, Spec,
                formatString("%s is not static but was called through "
                             "CallStatic*",
                             M->qualifiedName().c_str()));
            return;
          }
          if ((Traits.Call == CallKind::Virtual ||
               Traits.Call == CallKind::Nonvirtual) &&
              M->IsStatic) {
            Ctx.reporter().violation(
                Ctx, Spec,
                formatString("%s is static but was called through an "
                             "instance-call function",
                             M->qualifiedName().c_str()));
            return;
          }
          if (Traits.Call == CallKind::Ctor && M->Name != "<init>") {
            Ctx.reporter().violation(
                Ctx, Spec, "NewObject requires a constructor method ID");
            return;
          }

          // Receiver conformance.
          uint64_t Recv = Ctx.call().refWord(0);
          if (Traits.Call == CallKind::Virtual ||
              Traits.Call == CallKind::Nonvirtual) {
            jvm::Vm::PeekResult Peek = peekRef(Ctx, Recv);
            if (Peek.S == jvm::Vm::PeekResult::Status::Live) {
              jvm::Klass *Have = Vm.klassOf(Peek.Target);
              if (Have && !Have->isSubclassOf(M->Owner)) {
                Ctx.reporter().violation(
                    Ctx, Spec,
                    formatString("the receiver is not an instance of %s",
                                 M->Owner->name().c_str()));
                return;
              }
            }
          } else if (Traits.Call == CallKind::Static ||
                     Traits.Call == CallKind::Ctor) {
            jvm::Vm::PeekResult Peek = peekRef(Ctx, Recv);
            if (Peek.S == jvm::Vm::PeekResult::Status::Live) {
              if (jvm::Klass *Kl = Vm.klassFromMirror(Peek.Target)) {
                if (Traits.Call == CallKind::Static &&
                    !Kl->findDeclaredMethod(M->Name, M->Desc, true)) {
                  // The Eclipse/SWT case: the class only inherits it.
                  Ctx.reporter().violation(
                      Ctx, Spec,
                      formatString("class %s does not declare the static "
                                   "method %s%s",
                                   Kl->name().c_str(), M->Name.c_str(),
                                   M->Desc.c_str()));
                  return;
                }
                if (Traits.Call == CallKind::Ctor && Kl != M->Owner) {
                  Ctx.reporter().violation(
                      Ctx, Spec,
                      "the constructor belongs to a different class");
                  return;
                }
              }
            }
          }

          // Return kind of the Call<T> family must match the signature.
          if (Traits.Call != CallKind::NotACall &&
              Traits.Call != CallKind::Ctor &&
              Traits.CallRet != M->Sig.Ret.Kind) {
            Ctx.reporter().violation(
                Ctx, Spec,
                formatString("%s returns %s but was called through a "
                             "Call<%s> function",
                             M->qualifiedName().c_str(),
                             jvm::typeName(M->Sig.Ret.Kind),
                             jvm::typeName(Traits.CallRet)));
            return;
          }

          // Reference-argument conformance (A forms carry jvalue arrays).
          if (Ctx.call().materializeCallArgs()) {
            const std::vector<jvalue> &Args = Ctx.call().callArgs();
            for (size_t K = 0; K < M->Sig.Params.size(); ++K) {
              const jvm::TypeDesc &Formal = M->Sig.Params[K];
              if (!Formal.isReference())
                continue;
              if (!conformsTo(Ctx, jni::handleWord(Args[K].l), Formal)) {
                Ctx.reporter().violation(
                    Ctx, Spec,
                    formatString("actual argument %zu does not conform to "
                                 "formal type %s",
                                 K + 1, Formal.toDescriptor().c_str()));
                return;
              }
            }
          }
          return;
        }

        // Field-ID consumers.
        jvm::FieldInfo *F = Ctx.call().fieldArg();
        if (!F) {
          if (Ctx.call().fieldArgWord())
            Ctx.reporter().violation(Ctx, Spec,
                                     "The field ID is not a valid jfieldID");
          return;
        }
        if (!Traits.IsFieldGet && !Traits.IsFieldSet)
          return; // ToReflectedField: validity only
        if (F->IsStatic != Traits.IsStaticFieldOp) {
          Ctx.reporter().violation(
              Ctx, Spec,
              formatString("%s %s static but the accessor is for %s fields",
                           F->qualifiedName().c_str(),
                           F->IsStatic ? "is" : "is not",
                           Traits.IsStaticFieldOp ? "static" : "instance"));
          return;
        }
        if (F->Type.Kind != Traits.FieldKind) {
          Ctx.reporter().violation(
              Ctx, Spec,
              formatString("%s has type %s but was accessed as %s",
                           F->qualifiedName().c_str(),
                           jvm::typeName(F->Type.Kind),
                           jvm::typeName(Traits.FieldKind)));
          return;
        }
        uint64_t Recv = Ctx.call().refWord(0);
        jvm::Vm::PeekResult Peek = peekRef(Ctx, Recv);
        if (Peek.S == jvm::Vm::PeekResult::Status::Live) {
          if (!Traits.IsStaticFieldOp) {
            jvm::Klass *Have = Ctx.vm().klassOf(Peek.Target);
            if (Have && !Have->isSubclassOf(F->Owner)) {
              Ctx.reporter().violation(
                  Ctx, Spec,
                  formatString("the receiver is not an instance of %s",
                               F->Owner->name().c_str()));
              return;
            }
          } else if (jvm::Klass *Kl = Ctx.vm().klassFromMirror(Peek.Target)) {
            if (!Kl->isSubclassOf(F->Owner)) {
              Ctx.reporter().violation(
                  Ctx, Spec,
                  formatString("class %s does not have the field %s",
                               Kl->name().c_str(), F->Name.c_str()));
              return;
            }
          }
        }
        // Object-field assignment conformance.
        if (Traits.IsFieldSet && Traits.FieldKind == JType::Object) {
          uint64_t Val = Ctx.call().refWord(2);
          if (!conformsTo(Ctx, Val, F->Type))
            Ctx.reporter().violation(
                Ctx, Spec,
                formatString("the assigned value does not conform to the "
                             "field type %s",
                             F->Type.toDescriptor().c_str()));
        }
      }));
}
