//===- jinn/machines/MonitorBalance.cpp - Monitor balance -----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second pushdown machine (ROADMAP item 3): every JNI MonitorExit
/// must match an earlier JNI MonitorEnter on the same thread. The monitor
/// machine of paper Figure 8 owns the *leak* (monitors still held at
/// termination); this machine owns the *underflow* — a MonitorExit with no
/// outstanding JNI entry, which the JVM only punishes with an
/// IllegalMonitorStateException long after the balance bug was introduced.
/// The per-thread entry tally is the declared counter; the dynamic
/// encoding is a wait-free per-thread depth word.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;
using spec::CounterOp;

static const char UnmatchedExitMsg[] =
    "MonitorExit without a matching JNI MonitorEnter";

MonitorBalanceMachine::MonitorBalanceMachine() {
  Spec.Name = "Monitor balance";
  Spec.ObservedEntity = "A thread's stack of JNI monitor entries";
  Spec.Errors = "Unmatched exit";
  Spec.Encoding = "A wait-free per-thread count of outstanding JNI "
                  "MonitorEnter acquisitions";
  Spec.States = {"Balanced", "Error: unmatched exit"};
  Spec.Counter = {"monitor-entry depth", 64};

  // Push: a successful MonitorEnter deepens the entry stack.
  Spec.Transitions.push_back(makeTransition(
      "Balanced", "Balanced",
      {{FunctionSelector::one(jni::FnId::MonitorEnter),
        Direction::ReturnJavaToC}},
      CounterOp::Push, [this](TransitionContext &Ctx) {
        if (static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        Depth.fetchAdd(Ctx.threadId(), 1);
      }));

  // Pop above zero: the matching MonitorExit. Decrements at the return
  // (an underflowing exit is aborted at the call and never gets here, and
  // an exit the VM rejected must not unbalance the shadow).
  Spec.Transitions.push_back(makeTransition(
      "Balanced", "Balanced",
      {{FunctionSelector::one(jni::FnId::MonitorExit),
        Direction::ReturnJavaToC}},
      CounterOp::Pop, [this](TransitionContext &Ctx) {
        if (!mutate::active(mutate::M::SpecMonitorExitGateDropped) &&
            static_cast<jint>(Ctx.call().returnWord()) != JNI_OK)
          return;
        uint32_t Tid = Ctx.threadId();
        if (static_cast<int64_t>(Depth.load(Tid)) > 0)
          Depth.fetchAdd(Tid, -1);
      }));

  // Pop at zero: underflow — this thread holds no JNI monitor entry.
  const char *UnderflowTo = "Error: unmatched exit";
  if (mutate::active(mutate::M::SpecMonitorErrorStateSwapped))
    UnderflowTo = "Balanced"; // mutant: the error state is bypassed
  Spec.Transitions.push_back(makeTransition(
      "Balanced", UnderflowTo,
      {{FunctionSelector::one(jni::FnId::MonitorExit),
        Direction::CallCToJava}},
      CounterOp::Pop, [this](TransitionContext &Ctx) {
        if (static_cast<int64_t>(Depth.load(Ctx.threadId())) > 0)
          return;
        Ctx.reporter().violation(Ctx, Spec, UnmatchedExitMsg);
      }));
  Spec.Transitions.back().Violation = UnmatchedExitMsg;
}
