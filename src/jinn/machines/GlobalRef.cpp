//===- jinn/machines/GlobalRef.cpp - Global/weak-global ref machine ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 8, "Global reference or weak global reference": explicitly
/// managed cross-call references. Use after deletion is a dangling
/// reference error (deleting twice is its special case); unreleased
/// references are reported as leaks at program termination.
///
/// References created before the agent attached are adopted on first use
/// instead of being reported — Jinn has no false positives (paper §2.2).
///
/// The live set is striped by handle word: acquire/release take one
/// shard's lock exclusive, and the hot use-site membership test takes it
/// shared, so threads touching different references rarely contend.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::FnTraits;
using jinn::jni::ResourceRole;
using jinn::jvm::RefKind;

namespace {

/// Use sites: reference-taking functions, excluding the explicit release
/// functions (those are Release transitions, handled above — running the
/// Use transition there would re-adopt the reference being deleted).
bool takesRefParam(const FnTraits &Traits) {
  return Traits.hasParam(ArgClass::Ref) &&
         Traits.Resource != ResourceRole::GlobalRelease &&
         Traits.Resource != ResourceRole::WeakRelease &&
         Traits.Resource != ResourceRole::LocalDelete &&
         Traits.Resource != ResourceRole::PopFrame;
}

} // namespace

GlobalRefMachine::GlobalRefMachine(const MachineTuning &Tuning)
    : Live(Tuning.ShardCount) {
  Spec.Name = "Global or weak global reference";
  Spec.ObservedEntity = "A global or weak global JNI reference";
  Spec.Errors = "Leak and dangling reference";
  Spec.Encoding = "A list of acquired global references";
  Spec.States = {"Before acquire", "Acquired", "Released",
                 "Error: dangling"};

  // Acquire: Return:Java->C of NewGlobalRef / NewWeakGlobalRef.
  Spec.Transitions.push_back(makeTransition(
      "Before acquire", "Acquired",
      {{FunctionSelector::matching(
            "NewGlobalRef and NewWeakGlobalRef",
            [](const FnTraits &Traits) {
              return Traits.Resource == ResourceRole::GlobalAcquire ||
                     Traits.Resource == ResourceRole::WeakAcquire;
            }),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        uint64_t Word = Ctx.call().returnWord();
        if (Word) {
          auto &Shard = Live.shardFor(Word);
          auto Lock = StripedTable<uint8_t>::exclusive(Shard);
          Shard.Map.findOrEmplace(Word, 1);
        }
      }));

  // Release: DeleteGlobalRef / DeleteWeakGlobalRef.
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Released",
      {{FunctionSelector::matching(
            "DeleteGlobalRef and DeleteWeakGlobalRef",
            [](const FnTraits &Traits) {
              return Traits.Resource == ResourceRole::GlobalRelease ||
                     Traits.Resource == ResourceRole::WeakRelease;
            }),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        if (mutate::active(mutate::M::SpecGlobalRefReleaseUntracked))
          return; // mutant: the delete never leaves the shadow
        uint64_t Word = Ctx.call().refWord(0);
        if (!Word)
          return;
        {
          auto &Shard = Live.shardFor(Word);
          auto Lock = StripedTable<uint8_t>::exclusive(Shard);
          if (Shard.Map.erase(Word))
            return;
        }
        jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
        if (Peek.S == jvm::Vm::PeekResult::Status::Live ||
            Peek.S == jvm::Vm::PeekResult::Status::ClearedWeak)
          return; // created before the agent attached; adopt the delete
        Ctx.reporter().violation(
            Ctx, Spec,
            "a global reference was deleted twice (double free / dangling)");
      }));

  // Use: Call:C->Java with a global-kind reference argument.
  Spec.Transitions.push_back(makeTransition(
      "Released", "Error: dangling",
      {{FunctionSelector::matching("any JNI function taking a reference, "
                                   "except the release functions",
                                   takesRefParam),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        const FnTraits &Traits = Ctx.call().traits();
        for (int I = 0; I < Traits.NumParams; ++I) {
          if (Traits.Params[I].Cls != ArgClass::Ref)
            continue;
          uint64_t Word = Ctx.call().refWord(I);
          if (!Word)
            continue;
          std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(Word);
          if (!Bits || (Bits->Kind != RefKind::Global &&
                        Bits->Kind != RefKind::WeakGlobal))
            continue; // locals belong to the local-reference machine
          {
            const auto &Shard = Live.shardFor(Word);
            auto Lock = StripedTable<uint8_t>::shared(Shard);
            if (Shard.Map.find(Word))
              continue;
          }
          jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
          if (Peek.S == jvm::Vm::PeekResult::Status::Live ||
              Peek.S == jvm::Vm::PeekResult::Status::ClearedWeak) {
            auto &Shard = Live.shardFor(Word);
            auto Lock = StripedTable<uint8_t>::exclusive(Shard);
            Shard.Map.findOrEmplace(Word, 1); // pre-agent ref: adopt it
            continue;
          }
          Ctx.reporter().violation(
              Ctx, Spec,
              formatString("argument %d is a dangling %s reference "
                           "(deleted earlier)",
                           I + 1,
                           Bits->Kind == RefKind::WeakGlobal ? "weak global"
                                                             : "global"));
          return;
        }
      }));

  // Use: Return:C->Java — a native method returning a global-kind ref.
  Spec.Transitions.push_back(makeTransition(
      "Released", "Error: dangling",
      {{FunctionSelector::nativeMethods("native method returning reference"),
        Direction::ReturnCToJava}},
      [this](TransitionContext &Ctx) {
        if (!Ctx.ret() || !Ctx.method().Sig.Ret.isReference())
          return;
        uint64_t Word = jni::handleWord(Ctx.ret()->l);
        if (!Word)
          return;
        std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(Word);
        if (!Bits || (Bits->Kind != RefKind::Global &&
                      Bits->Kind != RefKind::WeakGlobal))
          return;
        {
          const auto &Shard = Live.shardFor(Word);
          auto Lock = StripedTable<uint8_t>::shared(Shard);
          if (Shard.Map.find(Word))
            return;
        }
        jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
        if (Peek.S == jvm::Vm::PeekResult::Status::Live ||
            Peek.S == jvm::Vm::PeekResult::Status::ClearedWeak) {
          auto &Shard = Live.shardFor(Word);
          auto Lock = StripedTable<uint8_t>::exclusive(Shard);
          Shard.Map.findOrEmplace(Word, 1);
          return;
        }
        Ctx.reporter().violation(
            Ctx, Spec,
            "a native method returned a dangling global reference");
      }));
}

void GlobalRefMachine::onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) {
  (void)Vm;
  size_t LiveCount = Live.size();
  if (LiveCount > 0)
    Rep.endOfRun(Spec,
                 formatString("%zu global or weak global reference(s) were "
                              "never deleted (leak)",
                              LiveCount));
}
