//===- jinn/machines/EnvState.cpp - JNIEnv* state machine ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 6, "JNIEnv* state": every call from C into the JVM must
/// pass the JNIEnv belonging to the executing thread (pitfall 14). The
/// encoding maps thread ids to expected JNIEnv pointers, learned at thread
/// start through JVMTI.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"

using namespace jinn;
using namespace jinn::agent;

JniEnvStateMachine::JniEnvStateMachine() {
  Spec.Name = "JNIEnv* state";
  Spec.ObservedEntity = "A thread";
  Spec.Errors = "JNIEnv* mismatch";
  Spec.Encoding = "Map from thread IDs to their expected JNIEnv* pointers";
  Spec.States = {"Attached"};

  Spec.Transitions.push_back(makeTransition(
      "Attached", "Attached",
      {{FunctionSelector::all("any JNI function"), Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        JNIEnv *Env = Ctx.env();
        jvm::JThread *Current = Ctx.call().runtime().currentThread();
        if (Current && Current != Env->thread) {
          Ctx.reporter().violation(
              Ctx, Spec,
              formatString("The JNIEnv of thread \"%s\" was used while "
                           "executing on thread \"%s\"",
                           Env->thread->name().c_str(),
                           Current->name().c_str()));
          return;
        }
        uint32_t Tid = Env->thread->id();
        void *Expected = nullptr;
        {
          std::lock_guard<std::mutex> Lock(Mu);
          if (Tid < ExpectedEnv.size())
            Expected = ExpectedEnv[Tid];
        }
        if (Expected && Expected != Env)
          Ctx.reporter().violation(
              Ctx, Spec, "A stale JNIEnv pointer was used for this thread");
      }));
}

void JniEnvStateMachine::onThreadStart(jvm::JThread &Thread) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Thread.id() >= ExpectedEnv.size())
    ExpectedEnv.resize(Thread.id() + 1, nullptr);
  ExpectedEnv[Thread.id()] = Thread.EnvPtr;
}
