//===- jinn/machines/EnvState.cpp - JNIEnv* state machine ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 6, "JNIEnv* state": every call from C into the JVM must
/// pass the JNIEnv belonging to the executing thread (pitfall 14). The
/// encoding maps thread ids to expected JNIEnv pointers, learned at thread
/// start through JVMTI.
///
/// This machine fires on *every* JNI function, so its read path is the
/// single hottest shadow lookup in the checker: the expected-env table is
/// an AtomicWordArray and the check is two wait-free atomic loads.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;

JniEnvStateMachine::JniEnvStateMachine() {
  Spec.Name = "JNIEnv* state";
  Spec.ObservedEntity = "A thread";
  Spec.Errors = "JNIEnv* mismatch";
  Spec.Encoding = "Map from thread IDs to their expected JNIEnv* pointers";
  Spec.States = {"Attached"};

  Spec.Transitions.push_back(makeTransition(
      "Attached", "Attached",
      {{FunctionSelector::all("any JNI function"), Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        uint32_t Current = Ctx.currentThreadId();
        if (mutate::active(mutate::M::SpecEnvIdentitySwapped))
          Current = Ctx.threadId(); // mutant: x != x, never fires
        if (Current && Current != Ctx.threadId()) {
          Ctx.reporter().violation(
              Ctx, Spec,
              formatString("The JNIEnv of thread \"%s\" was used while "
                           "executing on thread \"%s\"",
                           Ctx.threadName().c_str(),
                           Ctx.currentThreadName().c_str()));
          return;
        }
        uint64_t Expected = ExpectedEnv.load(Ctx.threadId());
        if (Expected && Expected != Ctx.envWord())
          Ctx.reporter().violation(
              Ctx, Spec, "A stale JNIEnv pointer was used for this thread");
      }));
}

void JniEnvStateMachine::onThreadStart(const spec::ThreadStartInfo &Info) {
  ExpectedEnv.store(Info.Id, Info.EnvWord);
}
