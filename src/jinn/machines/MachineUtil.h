//===- jinn/machines/MachineUtil.h - Shared helpers for the machines -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small shared helpers for the machine definitions. Everything here is
/// read-only inspection through the policy-free peek interface.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JINN_MACHINES_MACHINEUTIL_H
#define JINN_JINN_MACHINES_MACHINEUTIL_H

#include "jinn/Machines.h"
#include "support/Format.h"

namespace jinn::agent {

using spec::Direction;
using spec::FunctionSelector;
using spec::LanguageTransition;
using spec::StateTransition;
using spec::TransitionContext;

/// Peek at a handle from the context thread's perspective (snapshot-backed
/// under replay).
inline jvm::Vm::PeekResult peekRef(TransitionContext &Ctx, uint64_t Word) {
  return Ctx.peek(Word);
}

/// Canonical identity (ObjectId raw) of a live handle, or 0.
inline uint64_t identityOf(TransitionContext &Ctx, uint64_t Word) {
  jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
  if (Peek.S != jvm::Vm::PeekResult::Status::Live)
    return 0;
  return Peek.Target.raw();
}

/// Builds a state transition in one expression.
inline StateTransition makeTransition(std::string From, std::string To,
                                      std::vector<LanguageTransition> At,
                                      spec::TransitionAction Action) {
  StateTransition Out;
  Out.From = std::move(From);
  Out.To = std::move(To);
  Out.At = std::move(At);
  Out.Action = std::move(Action);
  return Out;
}

/// Same, for a transition of a counter-carrying (pushdown) machine: \p Op
/// declares how the transition moves the machine's counter so the static
/// passes can interpret it; the action still implements the dynamic
/// semantics against the machine's own depth encoding.
inline StateTransition makeTransition(std::string From, std::string To,
                                      std::vector<LanguageTransition> At,
                                      spec::CounterOp Op,
                                      spec::TransitionAction Action) {
  StateTransition Out = makeTransition(std::move(From), std::move(To),
                                       std::move(At), std::move(Action));
  Out.Counter = Op;
  return Out;
}

} // namespace jinn::agent

#endif // JINN_JINN_MACHINES_MACHINEUTIL_H
