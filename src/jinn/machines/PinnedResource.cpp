//===- jinn/machines/PinnedResource.cpp - Pinned string/array machine ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 8, "Pinned or copied string or array": C code temporarily
/// obtains direct access to string/array contents; the JVM pins or copies.
/// Acquire/release must pair: an unpaired acquire is a leak (reported at
/// program termination), a second release is a double free (pitfall 11).
/// Dangling buffer *contents* cannot be checked at the language boundary
/// (paper §6.5, category 3) — only the acquire/release protocol is.
///
/// The outstanding-acquisition table is striped by resource identity; each
/// shard entry tallies acquisitions per pin family, so the shard critical
/// sections stay allocation-free.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::FnTraits;
using jinn::jni::ResourceRole;

PinnedResourceMachine::PinnedResourceMachine(const MachineTuning &Tuning)
    : Outstanding(Tuning.ShardCount) {
  Spec.Name = "Pinned or copied string or array";
  Spec.ObservedEntity = "A Java string or array that is pinned or copied";
  Spec.Errors = "Leak and double-free";
  Spec.Encoding = "A list of acquired JVM resources";
  Spec.States = {"Before acquire", "Acquired", "Released",
                 "Error: double free"};

  // Acquire: Return:Java->C of the 12 getter functions.
  Spec.Transitions.push_back(makeTransition(
      "Before acquire", "Acquired",
      {{FunctionSelector::matching(
            "Get<Type>ArrayElements and similar getter functions",
            [](const FnTraits &Traits) {
              return Traits.Resource == ResourceRole::PinAcquire;
            }),
        Direction::ReturnJavaToC}},
      [this](TransitionContext &Ctx) {
        if (!Ctx.call().returnPtr())
          return; // the acquisition failed
        uint64_t Resource = identityOf(Ctx, Ctx.call().refWord(0));
        if (!Resource)
          return;
        int Family = static_cast<int>(Ctx.call().traits().Pin);
        auto &Shard = Outstanding.shardFor(Resource);
        auto Lock = StripedTable<PinCounts>::exclusive(Shard);
        Shard.Map.findOrEmplace(Resource).ByFamily[Family] += 1;
      }));

  // Release: Return:Java->C of the matching release functions. The
  // resource is identified by the buffer pointer the program hands back.
  Spec.Transitions.push_back(makeTransition(
      "Acquired", "Released",
      {{FunctionSelector::matching(
            "Release<Type>ArrayElements and similar release functions",
            [](const FnTraits &Traits) {
              return Traits.Resource == ResourceRole::PinRelease;
            }),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        if (mutate::active(mutate::M::SpecPinnedReleaseUntracked))
          return; // mutant: releases never balance the shadow
        const FnTraits &Traits = Ctx.call().traits();
        // The buffer parameter: T* for array elements, const char* for
        // UTF chars (which the trait table classifies as a C string).
        int BufIndex = Traits.firstParam(ArgClass::OutPtr);
        if (BufIndex < 0)
          BufIndex = Traits.firstParam(ArgClass::CString);
        const void *Buf =
            BufIndex >= 0 ? Ctx.call().arg(BufIndex).Ptr : nullptr;
        uint64_t BufTarget = 0;
        bool Found = Buf && Ctx.releasedBuffer(Buf, BufTarget);
        if (!Found) {
          Ctx.reporter().violation(
              Ctx, Spec,
              "a pinned string/array buffer was released twice (double "
              "free) or was never acquired");
          return;
        }
        // A JNI_COMMIT release copies back without freeing.
        int ModeIndex = -1;
        for (int I = Traits.NumParams - 1; I >= 0; --I)
          if (Traits.Params[I].Cls == ArgClass::Scalar) {
            ModeIndex = I;
            break;
          }
        if (ModeIndex >= 0 &&
            static_cast<jint>(Ctx.call().arg(ModeIndex).Word) == JNI_COMMIT)
          return;
        int Family = static_cast<int>(Traits.Pin);
        // Decide under the lock, report outside it (violation() may GC).
        bool DoubleFree = false;
        {
          auto &Shard = Outstanding.shardFor(BufTarget);
          auto Lock = StripedTable<PinCounts>::exclusive(Shard);
          PinCounts *Counts = Shard.Map.find(BufTarget);
          if (!Counts || Counts->ByFamily[Family] <= 0) {
            DoubleFree = true;
          } else if (--Counts->ByFamily[Family] == 0 && Counts->empty()) {
            Shard.Map.erase(BufTarget);
          }
        }
        if (DoubleFree)
          Ctx.reporter().violation(
              Ctx, Spec,
              "a pinned string/array resource was released that was not "
              "acquired (double free)");
      }));
}

void PinnedResourceMachine::onVmDeath(spec::Reporter &Rep, jvm::Vm &Vm) {
  (void)Vm;
  size_t Leaked = 0;
  Outstanding.forEach([&](uint64_t, const PinCounts &Counts) {
    for (int32_t N : Counts.ByFamily)
      Leaked += static_cast<size_t>(N);
  });
  if (Leaked > 0)
    Rep.endOfRun(Spec,
                 formatString("%zu pinned string/array resource(s) were "
                              "never released (leak)",
                              Leaked));
}
