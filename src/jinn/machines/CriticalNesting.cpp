//===- jinn/machines/CriticalNesting.cpp - Critical-section nesting -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third pushdown machine (ROADMAP item 3): a thread must not open a
/// second critical section before releasing the first. The JNI spec
/// forbids *any* JNI call inside a critical region; the critical-section
/// state machine deliberately exempts the four critical functions
/// (CriticalAllowed) so that the matching release is expressible, which
/// leaves nested Get*Critical calls unchecked — this machine closes that
/// gap. Its counter bound is 1: the push *at* the bound is the violation.
///
/// Error ownership: unmatched releases and non-critical calls inside a
/// region stay with the critical-section state machine.
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::FnTraits;
using jinn::jni::PinFamily;
using jinn::jni::ResourceRole;
using spec::CounterOp;

namespace {

bool isCriticalAcquire(const FnTraits &Traits) {
  return Traits.Resource == ResourceRole::PinAcquire &&
         (Traits.Pin == PinFamily::CriticalArray ||
          Traits.Pin == PinFamily::CriticalString);
}

bool isCriticalRelease(const FnTraits &Traits) {
  return Traits.Resource == ResourceRole::PinRelease &&
         (Traits.Pin == PinFamily::CriticalArray ||
          Traits.Pin == PinFamily::CriticalString);
}

const char NestedCriticalMsg[] =
    "A critical section was opened inside an open critical section";

} // namespace

CriticalNestingMachine::CriticalNestingMachine() {
  Spec.Name = "Critical-section nesting";
  Spec.ObservedEntity = "A thread's stack of open critical sections";
  Spec.Errors = "Nested critical sections";
  Spec.Encoding = "A wait-free per-thread count of open critical sections";
  Spec.States = {"Outside", "Error: nested critical sections"};
  Spec.Counter = {"critical depth", 1};

  // Push below the bound: a successful critical acquire.
  Spec.Transitions.push_back(makeTransition(
      "Outside", "Outside",
      {{FunctionSelector::matching(
            "GetStringCritical or GetPrimitiveArrayCritical",
            isCriticalAcquire),
        Direction::ReturnJavaToC}},
      CounterOp::Push, [this](TransitionContext &Ctx) {
        if (!Ctx.call().returnPtr())
          return; // acquisition failed; no section was opened
        Depth.fetchAdd(Ctx.threadId(), 1);
      }));

  // Pop: the matching release. Decrements at the return, so a release the
  // critical-section state machine aborted (unmatched release) does not
  // unbalance this shadow.
  Spec.Transitions.push_back(makeTransition(
      "Outside", "Outside",
      {{FunctionSelector::matching(
            "ReleaseStringCritical or ReleasePrimitiveArrayCritical",
            isCriticalRelease),
        Direction::ReturnJavaToC}},
      CounterOp::Pop, [this](TransitionContext &Ctx) {
        uint32_t Tid = Ctx.threadId();
        if (mutate::active(mutate::M::SpecCriticalPopGuardDropped) ||
            static_cast<int64_t>(Depth.load(Tid)) > 0)
          Depth.fetchAdd(Tid, -1);
      }));

  // Push at the bound: a second acquire inside an open section. Aborting
  // the call keeps the nested acquisition out of every other machine's
  // shadow (no pin is created, so no spurious leak report).
  Spec.Transitions.push_back(makeTransition(
      "Outside", "Error: nested critical sections",
      {{FunctionSelector::matching(
            "GetStringCritical or GetPrimitiveArrayCritical",
            isCriticalAcquire),
        Direction::CallCToJava}},
      CounterOp::Push, [this](TransitionContext &Ctx) {
        int64_t Bound =
            mutate::active(mutate::M::SpecCriticalGuardWeakened) ? 2 : 1;
        if (static_cast<int64_t>(Depth.load(Ctx.threadId())) < Bound)
          return;
        Ctx.reporter().violation(Ctx, Spec, NestedCriticalMsg);
      }));
  Spec.Transitions.back().Violation = NestedCriticalMsg;
}
