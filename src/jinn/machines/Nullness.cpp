//===- jinn/machines/Nullness.cpp - Nullness machine ---------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 7, "Nullness": some JNI parameters must not be null and the
/// specification is not always explicit about which (the paper determined
/// them experimentally; this reproduction encodes them in the trait table).
/// Covers references, C strings, and entity IDs (pitfall 2).
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"
#include "mutate/Mutation.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::FnTraits;

namespace {

bool isNullCheckable(ArgClass Cls) {
  return Cls == ArgClass::Ref || Cls == ArgClass::CString ||
         Cls == ArgClass::MethodId || Cls == ArgClass::FieldId;
}

bool hasNonNullParam(const FnTraits &Traits) {
  for (int I = 0; I < Traits.NumParams; ++I)
    if (Traits.Params[I].NonNull && isNullCheckable(Traits.Params[I].Cls))
      return true;
  return false;
}

} // namespace

NullnessMachine::NullnessMachine() {
  Spec.Name = "Nullness";
  Spec.ObservedEntity = "A reference parameter";
  Spec.Errors = "Unexpected null value passed to JNI function";
  Spec.Encoding = "None";
  Spec.States = {"Checked"};

  Spec.Transitions.push_back(makeTransition(
      "Checked", "Checked",
      {{FunctionSelector::matching(
            "any JNI function with a non-null parameter", hasNonNullParam),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        const FnTraits &Traits = Ctx.call().traits();
        for (int I = 0; I < Traits.NumParams; ++I) {
          const jni::ParamTraits &Param = Traits.Params[I];
          if (!Param.NonNull || !isNullCheckable(Param.Cls))
            continue;
          const jvmti::CapturedArg &Arg = Ctx.call().arg(I);
          bool IsNull = Param.Cls == ArgClass::Ref ? Arg.Word == 0
                                                   : Arg.Ptr == nullptr;
          if (mutate::active(mutate::M::SpecNullnessInverted))
            IsNull = !IsNull;
          if (IsNull) {
            Ctx.reporter().violation(
                Ctx, Spec,
                formatString("parameter %d must not be null", I + 1));
            return;
          }
        }
      }));
}
