//===- jinn/machines/FixedTyping.cpp - Fixed typing machine --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 7, "Fixed typing": for many JNI functions the parameter's
/// Java type is fixed by the function itself (the clazz of CallStatic* must
/// be a java.lang.Class, a jstring must be a String, jintArray an int[]).
/// The constraints were extracted from the signature registry, mirroring
/// the paper's scan of jni.h (pitfall 3 "confusing jclass with jobject").
///
/// Checks are suppressed for the four critical functions because verifying
/// a type inside a critical region would itself require an illegal JNI
/// call — the same limitation the paper reports (§6.5, category 1).
///
//===----------------------------------------------------------------------===//

#include "jinn/machines/MachineUtil.h"

using namespace jinn;
using namespace jinn::agent;
using jinn::jni::ArgClass;
using jinn::jni::FnTraits;
using jinn::jni::RefConstraint;
using jinn::jvm::JType;

namespace {

bool hasFixedTypedParam(const FnTraits &Traits) {
  for (int I = 0; I < Traits.NumParams; ++I)
    if (Traits.Params[I].Cls == ArgClass::Ref &&
        Traits.Params[I].Constraint != RefConstraint::None)
      return true;
  return false;
}

/// Whether the live object \p Target satisfies \p Constraint.
bool satisfies(jvm::Vm &Vm, jvm::ObjectId Target, RefConstraint Constraint) {
  jvm::HeapObject *HO = Vm.heap().resolve(Target);
  if (!HO)
    return true; // not observable; other machines own liveness errors
  switch (Constraint) {
  case RefConstraint::None:
    return true;
  case RefConstraint::Class:
    return Vm.klassFromMirror(Target) != nullptr;
  case RefConstraint::String:
    return HO->Shape == jvm::ObjShape::Str;
  case RefConstraint::Throwable:
    return HO->Kl && HO->Kl->isSubclassOf(Vm.throwableClass());
  case RefConstraint::AnyArray:
    return HO->Shape == jvm::ObjShape::PrimArray ||
           HO->Shape == jvm::ObjShape::ObjArray;
  case RefConstraint::ObjectArray:
    return HO->Shape == jvm::ObjShape::ObjArray;
  case RefConstraint::BooleanArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Boolean;
  case RefConstraint::ByteArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Byte;
  case RefConstraint::CharArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Char;
  case RefConstraint::ShortArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Short;
  case RefConstraint::IntArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Int;
  case RefConstraint::LongArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Long;
  case RefConstraint::FloatArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Float;
  case RefConstraint::DoubleArray:
    return HO->Shape == jvm::ObjShape::PrimArray &&
           HO->ElemKind == JType::Double;
  }
  return true;
}

} // namespace

FixedTypingMachine::FixedTypingMachine(const CriticalStateMachine &Critical)
    : Critical(Critical) {
  Spec.Name = "Fixed typing";
  Spec.ObservedEntity = "A reference parameter";
  Spec.Errors =
      "Type mismatch between actual and formal parameter to JNI function";
  Spec.Encoding = "Map from entity IDs to their signatures";
  Spec.States = {"Checked"};

  Spec.Transitions.push_back(makeTransition(
      "Checked", "Checked",
      {{FunctionSelector::matching(
            "any JNI function with a parameter of fixed Java type",
            [](const FnTraits &Traits) {
              return hasFixedTypedParam(Traits) && !Traits.CriticalAllowed;
            }),
        Direction::CallCToJava}},
      [this](TransitionContext &Ctx) {
        if (this->Critical.depthOf(Ctx.threadId()) > 0)
          return; // cannot type-check inside a critical region
        const FnTraits &Traits = Ctx.call().traits();
        for (int I = 0; I < Traits.NumParams; ++I) {
          const jni::ParamTraits &Param = Traits.Params[I];
          if (Param.Cls != ArgClass::Ref ||
              Param.Constraint == RefConstraint::None)
            continue;
          uint64_t Word = Ctx.call().refWord(I);
          if (!Word)
            continue; // nullness machine owns null errors
          jvm::Vm::PeekResult Peek = peekRef(Ctx, Word);
          if (Peek.S != jvm::Vm::PeekResult::Status::Live)
            continue; // reference machines own liveness errors
          if (!satisfies(Ctx.vm(), Peek.Target, Param.Constraint)) {
            Ctx.reporter().violation(
                Ctx, Spec,
                formatString("argument %d is not assignable to the "
                             "expected type %s",
                             I + 1,
                             jni::refConstraintClassName(Param.Constraint)));
            return;
          }
        }
      }));
}
