//===- jinn/Machines.cpp - MachineSet assembly ----------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/Machines.h"

using namespace jinn::agent;

std::vector<jinn::spec::MachineBase *> MachineSet::all() {
  return {&EnvState,         &ExceptionState, &CriticalState,
          &FixedTyping,      &EntityTyping,   &AccessControl,
          &Nullness,         &PinnedResource, &Monitor,
          &GlobalRef,        &LocalRef,       &LocalFrameNesting,
          &MonitorBalance,   &CriticalNesting};
}

std::vector<std::pair<const char *, uint64_t>>
MachineSet::lockAcquireCounts() const {
  return {{"env-state", EnvState.lockAcquires()},
          {"exception-state", ExceptionState.lockAcquires()},
          {"critical-state", CriticalState.lockAcquires()},
          {"fixed-typing", FixedTyping.lockAcquires()},
          {"entity-typing", EntityTyping.lockAcquires()},
          {"access-control", AccessControl.lockAcquires()},
          {"nullness", Nullness.lockAcquires()},
          {"pinned-resource", PinnedResource.lockAcquires()},
          {"monitor", Monitor.lockAcquires()},
          {"global-ref", GlobalRef.lockAcquires()},
          {"local-ref", LocalRef.lockAcquires()},
          {"local-frame-nesting", LocalFrameNesting.lockAcquires()},
          {"monitor-balance", MonitorBalance.lockAcquires()},
          {"critical-nesting", CriticalNesting.lockAcquires()}};
}
