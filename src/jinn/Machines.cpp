//===- jinn/Machines.cpp - MachineSet assembly ----------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jinn/Machines.h"

using namespace jinn::agent;

std::vector<jinn::spec::MachineBase *> MachineSet::all() {
  return {&EnvState,      &ExceptionState, &CriticalState, &FixedTyping,
          &EntityTyping,  &AccessControl,  &Nullness,      &PinnedResource,
          &Monitor,       &GlobalRef,      &LocalRef};
}
