//===- synth/Emitter.cpp - Generated-wrapper source emitter --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Emitter.h"

#include "support/Format.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jinn;
using namespace jinn::synth;
using jinn::jni::FnId;
using jinn::jni::NumJniFunctions;
using jinn::spec::Direction;

namespace {

/// Stringified signatures straight from the registry.
struct FnSigText {
  const char *Ret;
  const char *Params;
  const char *Args;
};

const FnSigText SigText[NumJniFunctions] = {
#define JNI_FN(Name, Ret, Params, Args) {#Ret, #Params, #Args},
#include "jni/JniFunctions.def"
#undef JNI_FN
};

std::string sanitize(std::string S) {
  for (char &C : S)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

} // namespace

std::string CodeEmitter::emit() const {
  Stats = EmitStats();
  std::ostringstream Out;
  Out << "//===- jinn_generated_wrappers.cpp - SYNTHESIZED, do not edit "
         "---------===//\n"
      << "//\n"
      << "// Dynamic FFI analysis synthesized from "
      << Machines.size() << " state machine specifications\n"
      << "// (Algorithm 1: cross product of state transitions and FFI "
         "functions).\n"
      << "//\n"
      << "//===-------------------------------------------------------------"
         "---===//\n\n"
      << "#include \"jinn_runtime.h\"\n\n";

  // Per (function, machine, transition) check functions, then wrappers.
  for (size_t I = 0; I < NumJniFunctions; ++I) {
    FnId Id = static_cast<FnId>(I);
    const char *Name = jni::fnName(Id);

    struct Attached {
      const spec::MachineBase *Machine;
      const spec::StateTransition *Transition;
      bool Pre;
    };
    std::vector<Attached> Checks;
    for (const spec::MachineBase *Machine : Machines)
      for (const spec::StateTransition &Transition :
           Machine->spec().Transitions)
        for (const spec::LanguageTransition &Lang : Transition.At) {
          if (Lang.Dir != Direction::CallCToJava &&
              Lang.Dir != Direction::ReturnJavaToC)
            continue;
          if (!Lang.Fns.matches(Id))
            continue;
          Checks.push_back(
              {Machine, &Transition, Lang.Dir == Direction::CallCToJava});
        }
    if (Checks.empty())
      continue;

    // Emit one check function per attached (machine, transition).
    std::vector<std::string> PreCalls, PostCalls;
    for (const Attached &Check : Checks) {
      std::string Fn = formatString(
          "check_%s_%s_%s_to_%s", Name,
          sanitize(Check.Machine->spec().Name).c_str(),
          sanitize(Check.Transition->From).c_str(),
          sanitize(Check.Transition->To).c_str());
      Out << "/// Machine \"" << Check.Machine->spec().Name
          << "\": transition " << Check.Transition->From << " -> "
          << Check.Transition->To << "\n"
          << "/// Observed entity: " << Check.Machine->spec().ObservedEntity
          << "\n"
          << "static void " << Fn << "(jinn_call_context *ctx) {\n"
          << "  if (!jinn_transition_enabled(ctx, \""
          << Check.Machine->spec().Name << "\"))\n"
          << "    return;\n"
          << "  if (jinn_in_state(ctx, \"" << Check.Transition->From
          << "\")) {\n"
          << "    jinn_record_transition(ctx, \"" << Check.Transition->From
          << "\", \"" << Check.Transition->To << "\");\n"
          << "    if (jinn_is_error_state(\"" << Check.Transition->To
          << "\"))\n"
          << "      jinn_throw_JNIException(ctx->env, \""
          << Check.Machine->spec().Errors << "\");\n"
          << "  }\n"
          << "}\n\n";
      ++Stats.CheckFunctions;
      (Check.Pre ? PreCalls : PostCalls).push_back(Fn);
    }

    // Emit the wrapper.
    const FnSigText &Sig = SigText[I];
    bool IsVoid = std::string_view(Sig.Ret) == "void";
    Out << Sig.Ret << " wrapped_" << Name << Sig.Params << " {\n"
        << "  jinn_call_context ctx = jinn_enter(env, JINN_FN_" << Name
        << ");\n";
    for (const std::string &Fn : PreCalls)
      Out << "  " << Fn << "(&ctx);\n";
    Out << "  if (jinn_call_aborted(&ctx))\n"
        << "    return" << (IsVoid ? "" : " 0") << ";\n  ";
    if (!IsVoid)
      Out << Sig.Ret << " result = ";
    Out << "jinn_real_table()->" << Name << Sig.Args << ";\n";
    for (const std::string &Fn : PostCalls)
      Out << "  " << Fn << "(&ctx);\n";
    if (!IsVoid)
      Out << "  return result;\n";
    Out << "}\n\n";
    ++Stats.WrapperFunctions;
  }

  // The generic native-method wrapper (paper Figure 3): entry and exit
  // instrumentation for every machine transition mapped to Call:Java->C /
  // Return:C->Java.
  std::vector<std::string> EntryCalls, ExitCalls;
  for (const spec::MachineBase *Machine : Machines)
    for (const spec::StateTransition &Transition :
         Machine->spec().Transitions)
      for (const spec::LanguageTransition &Lang : Transition.At) {
        if (Lang.Dir != Direction::CallJavaToC &&
            Lang.Dir != Direction::ReturnCToJava)
          continue;
        std::string Fn = formatString(
            "native_%s_%s_%s_to_%s",
            Lang.Dir == Direction::CallJavaToC ? "entry" : "exit",
            sanitize(Machine->spec().Name).c_str(),
            sanitize(Transition.From).c_str(),
            sanitize(Transition.To).c_str());
        Out << "/// Machine \"" << Machine->spec().Name << "\": transition "
            << Transition.From << " -> " << Transition.To << " at "
            << spec::directionName(Lang.Dir) << " (" << Lang.Fns.Description
            << ")\n"
            << "static void " << Fn << "(jinn_native_context *ctx) {\n"
            << "  jinn_record_transition(ctx, \"" << Transition.From
            << "\", \"" << Transition.To << "\");\n"
            << "}\n\n";
        ++Stats.CheckFunctions;
        (Lang.Dir == Direction::CallJavaToC ? EntryCalls : ExitCalls)
            .push_back(Fn);
      }
  Out << "jvalue wrapped_native_method(jinn_native_context *ctx,\n"
      << "    JNIEnv *env, jobject self, const jvalue *args) {\n";
  for (const std::string &Fn : EntryCalls)
    Out << "  " << Fn << "(ctx);\n";
  Out << "  jvalue result;\n"
      << "  result.j = 0;\n"
      << "  if (!jinn_native_aborted(ctx))\n"
      << "    result = ctx->original(env, self, args);\n";
  for (const std::string &Fn : ExitCalls)
    Out << "  " << Fn << "(ctx);\n";
  Out << "  return result;\n}\n\n";

  // The analysis driver (the synthesizer's third input in Figure 5):
  // installs the wrapped table and the JVMTI callbacks at agent load.
  Out << "JNIEXPORT jint JNICALL Agent_OnLoad(JavaVM *vm, char *options,\n"
      << "                                    void *reserved) {\n"
      << "  jinn_init_encodings();\n"
      << "  jinn_define_exception_class(vm, \"jinn/JNIAssertionFailure\");\n"
      << "  jinn_install_function_table(vm, &jinn_wrapped_table);\n"
      << "  jinn_register_native_bind_hook(vm, &wrapped_native_method);\n"
      << "  jinn_register_vm_death_hook(vm, &jinn_end_of_run_checks);\n"
      << "  return JNI_OK;\n}\n";

  std::string Text = Out.str();
  Stats.TotalLines = static_cast<size_t>(
      std::count(Text.begin(), Text.end(), '\n'));
  return Text;
}

size_t jinn::synth::countSourceLines(const std::vector<std::string> &Paths) {
  size_t Lines = 0;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line)) {
      size_t First = Line.find_first_not_of(" \t");
      if (First == std::string::npos)
        continue; // blank
      std::string_view Rest(Line.data() + First, Line.size() - First);
      if (Rest.substr(0, 2) == "//")
        continue; // comment-only
      ++Lines;
    }
  }
  return Lines;
}

std::vector<std::string> jinn::synth::sourceFilesUnder(
    const std::string &Dir) {
  std::vector<std::string> Out;
  std::error_code Ec;
  for (std::filesystem::recursive_directory_iterator
           It(Dir, Ec),
       End;
       !Ec && It != End; It.increment(Ec)) {
    if (!It->is_regular_file())
      continue;
    std::string Ext = It->path().extension().string();
    if (Ext == ".h" || Ext == ".cpp")
      Out.push_back(It->path().string());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}
