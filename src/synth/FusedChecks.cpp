//===- synth/FusedChecks.cpp - Fused per-FnId check compilation ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/FusedChecks.h"

#include "jni/JniTraits.h"
#include "jvmti/Interpose.h"

#include <array>

using namespace jinn;
using namespace jinn::synth;
using jinn::jni::FnId;
using jinn::spec::Direction;
using jinn::spec::TransitionContext;

//===----------------------------------------------------------------------===
// The checked-in plan
//===----------------------------------------------------------------------===

#include "FusedPlan.inc"

const std::vector<std::string> &jinn::synth::fusedPlanMachineNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> V;
    V.reserve(FusedPlanMachineCount);
    for (size_t I = 0; I < FusedPlanMachineCount; ++I)
      V.push_back(FusedPlanMachineNameData[I]);
    return V;
  }();
  return Names;
}

const std::vector<FusedPlanRow> &jinn::synth::fusedPlanRows() {
  static const std::vector<FusedPlanRow> Rows = [] {
    std::vector<FusedPlanRow> V;
    V.reserve(FusedPlanRowCount);
    for (size_t I = 0; I < FusedPlanRowCount; ++I)
      V.push_back(FusedPlanRowData[I]);
    return V;
  }();
  return Rows;
}

//===----------------------------------------------------------------------===
// The Algorithm-1 walk (shared by plan derivation and compilation)
//===----------------------------------------------------------------------===

namespace {

/// Visits every (machine, transition, phase, fn) instrumentation point in
/// exact installInto order. The single walker is what guarantees the
/// derived plan, the compiled slot programs, and the dynamic hook lists
/// can never disagree on ordering.
template <typename Visitor>
void walkJniPlan(const std::vector<spec::MachineBase *> &Machines,
                 Visitor &&Visit) {
  for (size_t M = 0; M < Machines.size(); ++M) {
    const spec::StateMachineSpec &Spec = Machines[M]->spec();
    for (size_t T = 0; T < Spec.Transitions.size(); ++T) {
      const spec::StateTransition &Transition = Spec.Transitions[T];
      for (const spec::LanguageTransition &Lang : Transition.At) {
        if (Lang.Dir != Direction::CallCToJava &&
            Lang.Dir != Direction::ReturnJavaToC)
          continue;
        bool IsPost = Lang.Dir == Direction::ReturnJavaToC;
        for (FnId Id : spec::matchedFunctions(Lang.Fns))
          Visit(M, T, IsPost, Id, Transition);
      }
    }
  }
}

} // namespace

DerivedFusedPlan
jinn::synth::deriveFusedPlan(const std::vector<spec::MachineBase *> &Machines) {
  DerivedFusedPlan Plan;
  for (const spec::MachineBase *Machine : Machines)
    Plan.MachineNames.push_back(Machine->spec().Name);
  walkJniPlan(Machines, [&](size_t M, size_t T, bool IsPost, FnId Id,
                            const spec::StateTransition &) {
    Plan.Rows.push_back({static_cast<uint16_t>(Id), static_cast<uint8_t>(M),
                         static_cast<uint16_t>(T),
                         static_cast<uint8_t>(IsPost)});
  });
  return Plan;
}

bool jinn::synth::checkAgainstFusedPlan(
    const std::vector<spec::MachineBase *> &Machines, std::string &Error) {
  DerivedFusedPlan Derived = deriveFusedPlan(Machines);
  const std::vector<std::string> &PlanNames = fusedPlanMachineNames();

  // Map checked-in machine indices to derived ones (or -1 when the machine
  // is ablated out of this run).
  std::vector<int> PlanToDerived(PlanNames.size(), -1);
  for (size_t D = 0; D < Derived.MachineNames.size(); ++D) {
    bool Found = false;
    for (size_t P = 0; P < PlanNames.size(); ++P) {
      if (PlanNames[P] == Derived.MachineNames[D]) {
        if (PlanToDerived[P] != -1) {
          Error = "machine '" + Derived.MachineNames[D] +
                  "' appears twice in the live machine list";
          return false;
        }
        PlanToDerived[P] = static_cast<int>(D);
        Found = true;
        break;
      }
    }
    if (!Found) {
      Error = "machine '" + Derived.MachineNames[D] +
              "' is not in the checked-in fused plan; regenerate "
              "src/synth/FusedPlan.inc (tools/gen_fused_checks.py)";
      return false;
    }
  }

  // The expected row sequence: the checked-in plan restricted to the live
  // machines, remapped to derived indices.
  std::vector<FusedPlanRow> Expected;
  for (const FusedPlanRow &Row : fusedPlanRows()) {
    int D = PlanToDerived[Row.Machine];
    if (D < 0)
      continue;
    Expected.push_back(
        {Row.Fn, static_cast<uint8_t>(D), Row.Transition, Row.Post});
  }

  if (Expected.size() != Derived.Rows.size()) {
    Error = "fused plan drift: checked-in plan has " +
            std::to_string(Expected.size()) + " rows for this machine set, "
            "live specs derive " + std::to_string(Derived.Rows.size()) +
            "; regenerate src/synth/FusedPlan.inc";
    return false;
  }
  for (size_t I = 0; I < Expected.size(); ++I) {
    if (Expected[I] == Derived.Rows[I])
      continue;
    const FusedPlanRow &E = Expected[I];
    const FusedPlanRow &G = Derived.Rows[I];
    Error = "fused plan drift at row " + std::to_string(I) + ": plan has (" +
            jni::fnName(static_cast<FnId>(E.Fn)) + ", " +
            Derived.MachineNames[E.Machine] + ", transition " +
            std::to_string(E.Transition) + (E.Post ? ", post)" : ", pre)") +
            ", live specs derive (" + jni::fnName(static_cast<FnId>(G.Fn)) +
            ", " + Derived.MachineNames[G.Machine] + ", transition " +
            std::to_string(G.Transition) + (G.Post ? ", post)" : ", pre)") +
            "; regenerate src/synth/FusedPlan.inc";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===
// Compilation
//===----------------------------------------------------------------------===

namespace {

/// One fused check: the transition action as a raw indirect call.
struct FusedSlot {
  spec::TransitionAction::RawFn Invoke;
  void *Obj;
};

/// The compiled program: the flat slot arena the per-FnId records index
/// into, plus ownership of the action callables the slots point at.
struct FusedProgram {
  spec::Reporter *Rep = nullptr;
  std::vector<FusedSlot> Arena;
  std::vector<spec::TransitionAction> Retained;
};

/// The table together with its program (the FusedTable the dispatcher sees
/// holds only an opaque pointer; this keeps both alive as one allocation).
struct CompiledFused : jvmti::FusedTable {
  FusedProgram Prog;
};

/// The tier-1 phase runner: one TransitionContext per phase (the context
/// is a stateless view over the CapturedCall, so sharing it across a
/// phase's slots is observably identical to the dynamic tier's
/// per-hook construction), then plain indirect calls over the slot range.
void runFusedPhase(const void *ProgramOpaque,
                   const jvmti::FusedTable::FnRec &Rec,
                   jvmti::CapturedCall &Call, bool IsPost) {
  const auto *Prog = static_cast<const FusedProgram *>(ProgramOpaque);
  TransitionContext Ctx = TransitionContext::jniSite(
      IsPost ? TransitionContext::Site::JniPost
             : TransitionContext::Site::JniPre,
      Call, *Prog->Rep);
  const FusedSlot *Slot = Prog->Arena.data() + (IsPost ? Rec.PostBegin
                                                       : Rec.PreBegin);
  const FusedSlot *End = Slot + (IsPost ? Rec.PostCount : Rec.PreCount);
  if (IsPost) {
    for (; Slot != End; ++Slot)
      Slot->Invoke(Slot->Obj, Ctx);
    return;
  }
  for (; Slot != End; ++Slot) {
    Slot->Invoke(Slot->Obj, Ctx);
    if (Call.aborted())
      return;
  }
}

} // namespace

FusedCompileResult jinn::synth::compileFusedChecks(
    const std::vector<spec::MachineBase *> &Machines, spec::Reporter &Rep) {
  FusedCompileResult Result;
  if (!checkAgainstFusedPlan(Machines, Result.Error))
    return Result;

  // Gather per-function slot lists in walk order.
  std::array<std::vector<FusedSlot>, jni::NumJniFunctions> PreSlots;
  std::array<std::vector<FusedSlot>, jni::NumJniFunctions> PostSlots;
  auto Owner = std::make_shared<CompiledFused>();
  bool MissingAction = false;
  walkJniPlan(Machines, [&](size_t, size_t, bool IsPost, FnId Id,
                            const spec::StateTransition &Transition) {
    if (!Transition.Action) {
      MissingAction = true;
      return;
    }
    FusedSlot Slot{Transition.Action.rawInvoke(),
                   Transition.Action.rawObject()};
    (IsPost ? PostSlots : PreSlots)[static_cast<size_t>(Id)].push_back(Slot);
    Owner->Prog.Retained.push_back(Transition.Action);
  });
  if (MissingAction) {
    Result.Error = "a matched transition has no action; refusing to "
                   "compile fused checks";
    return Result;
  }

  // Flatten into the arena and fill the per-function records, hoisting the
  // FnId -> traits lookup into each record.
  Owner->Prog.Rep = &Rep;
  for (size_t I = 0; I < jni::NumJniFunctions; ++I) {
    jvmti::FusedTable::FnRec &Rec = Owner->Fns[I];
    Rec.PreBegin = static_cast<uint32_t>(Owner->Prog.Arena.size());
    Rec.PreCount = static_cast<uint16_t>(PreSlots[I].size());
    Owner->Prog.Arena.insert(Owner->Prog.Arena.end(), PreSlots[I].begin(),
                             PreSlots[I].end());
    Rec.PostBegin = static_cast<uint32_t>(Owner->Prog.Arena.size());
    Rec.PostCount = static_cast<uint16_t>(PostSlots[I].size());
    Owner->Prog.Arena.insert(Owner->Prog.Arena.end(), PostSlots[I].begin(),
                             PostSlots[I].end());
    Rec.Traits = &jni::fnTraits(static_cast<FnId>(I));
    if (Rec.PreCount || Rec.PostCount)
      ++Result.CheckedFunctions;
  }
  Owner->Program = &Owner->Prog;
  Owner->Run = &runFusedPhase;
  Result.SlotCount = Owner->Prog.Arena.size();
  Result.Table = std::shared_ptr<const jvmti::FusedTable>(
      Owner, static_cast<const jvmti::FusedTable *>(Owner.get()));
  return Result;
}
