//===- synth/Synthesizer.cpp - Algorithm 1 --------------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "jni/EnvImplDetail.h"
#include "jvmti/Interpose.h"

using namespace jinn;
using namespace jinn::synth;
using jinn::jni::FnId;
using jinn::spec::Direction;
using jinn::spec::TransitionContext;

SynthesisStats Synthesizer::installInto(
    jvmti::InterposeDispatcher &Dispatcher) {
  SynthesisStats Stats;
  Stats.MachineCount = Machines.size();

  // Algorithm 1 (paper Figure 5):
  // 1: for each state machine specification Mi
  for (spec::MachineBase *Machine : Machines) {
    // 2: for each state transition sa -> sb
    for (const spec::StateTransition &Transition :
         Machine->spec().Transitions) {
      ++Stats.StateTransitionCount;
      // 3: let L = Mi.languageTransitionsFor(sa -> sb)
      // 4: for each language transition e in L
      for (const spec::LanguageTransition &Lang : Transition.At) {
        switch (Lang.Dir) {
        case Direction::CallCToJava:
        case Direction::ReturnJavaToC: {
          // 5-6: add the synthesized code to the start or end of the
          // wrapper for e.function, by direction. The match set is
          // resolved once through spec::matchedFunctions — the same
          // resolution the static analyzer uses to build the relevance
          // matrix, so synthesized hooks and the matrix cannot disagree.
          bool IsPre = Lang.Dir == Direction::CallCToJava;
          for (FnId Id : spec::matchedFunctions(Lang.Fns)) {
            spec::TransitionAction Action = Transition.Action;
            spec::Reporter *Reporter = &Rep;
            const spec::StateMachineSpec *Owner = &Machine->spec();
            auto Hook = [this, Action, Reporter, Owner,
                         IsPre](jvmti::CapturedCall &Call) {
              TransitionContext Ctx = TransitionContext::jniSite(
                  IsPre ? TransitionContext::Site::JniPre
                        : TransitionContext::Site::JniPost,
                  Call, *Reporter);
              if (OnActionRun)
                OnActionRun(*Owner);
              Action(Ctx);
            };
            if (IsPre) {
              Dispatcher.addPre(Id, std::move(Hook));
              ++Stats.JniPreHooks;
            } else {
              Dispatcher.addPost(Id, std::move(Hook));
              ++Stats.JniPostHooks;
            }
          }
          break;
        }
        case Direction::CallJavaToC:
          EntryActions.push_back({&Machine->spec(), Transition.Action});
          ++Stats.NativeEntryActions;
          break;
        case Direction::ReturnCToJava:
          ExitActions.push_back({&Machine->spec(), Transition.Action});
          ++Stats.NativeExitActions;
          break;
        }
      }
    }
  }
  return Stats;
}

std::function<void(jvm::MethodInfo &, jni::JniNativeStdFn &)>
Synthesizer::makeNativeBindHandler() {
  return [this](jvm::MethodInfo &Method, jni::JniNativeStdFn &Bound) {
    if (EntryActions.empty() && ExitActions.empty() && !BoundaryObserver)
      return;
    jni::JniNativeStdFn Original = std::move(Bound);
    // The synthesized native-method wrapper (paper Figure 3): entry
    // instrumentation, the original native code, exit instrumentation.
    Bound = [this, &Method, Original = std::move(Original)](
                JNIEnv *Env, jobject Self, const jvalue *Args) -> jvalue {
      // Sampled checking mirrors the JNI direction: an unsampled thread's
      // native crossings are neither recorded nor checked, so the retained
      // trace holds the complete stream of every sampled thread and
      // nothing else.
      auto *Dispatcher = static_cast<jvmti::InterposeDispatcher *>(
          Env->runtime->Dispatcher);
      bool Checked = !Dispatcher || Dispatcher->checksThread(*Env->thread);
      if (BoundaryObserver && Checked)
        BoundaryObserver->onNativeEntry(Method, Env, Self, Args);
      TransitionContext Entry = TransitionContext::nativeSite(
          TransitionContext::Site::NativeEntry, Method, Env, Self, Args,
          nullptr, Rep);
      if (Checked)
        for (const MachineAction &Action : EntryActions) {
          if (OnActionRun)
            OnActionRun(*Action.first);
          Action.second(Entry);
          if (Entry.aborted())
            break;
        }
      jvalue Result;
      Result.j = 0;
      if (!Entry.aborted())
        Result = Original(Env, Self, Args);
      if (BoundaryObserver && Checked)
        BoundaryObserver->onNativeExit(Method, Env, Self, Args, &Result,
                                       Entry.aborted());
      if (Checked) {
        TransitionContext Exit = TransitionContext::nativeSite(
            TransitionContext::Site::NativeExit, Method, Env, Self, Args,
            &Result, Rep);
        for (const MachineAction &Action : ExitActions) {
          if (OnActionRun)
            OnActionRun(*Action.first);
          Action.second(Exit);
        }
      }
      return Result;
    };
  };
}
