//===- synth/Emitter.h - Generated-wrapper source emitter ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the synthesized dynamic analysis as C++ source text: one wrapper
/// per instrumented JNI function plus one check function per
/// (function, machine, state transition) instance of the cross product.
/// This is the paper's "generated Jinn code is 22,000+ lines, whereas we
/// wrote only 1,400 lines of state machine and mapping code" artifact —
/// bench_synthesis_loc regenerates the comparison.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SYNTH_EMITTER_H
#define JINN_SYNTH_EMITTER_H

#include "spec/StateMachine.h"

#include <string>
#include <vector>

namespace jinn::synth {

/// Summary of an emission.
struct EmitStats {
  size_t TotalLines = 0;
  size_t WrapperFunctions = 0;
  size_t CheckFunctions = 0;
};

/// Emits compilable-looking C++ for the synthesized wrappers.
class CodeEmitter {
public:
  explicit CodeEmitter(std::vector<const spec::MachineBase *> Machines)
      : Machines(std::move(Machines)) {}

  /// Generates the full wrapper source.
  std::string emit() const;

  /// Stats for the most recent emit() (filled as a side effect).
  const EmitStats &stats() const { return Stats; }

private:
  std::vector<const spec::MachineBase *> Machines;
  mutable EmitStats Stats;
};

/// Counts the non-blank, non-comment source lines of \p Paths — the measure
/// used for the handwritten-spec side of the comparison.
size_t countSourceLines(const std::vector<std::string> &Paths);

/// All files under \p Dir with an extension in {.h, .cpp}, recursively.
std::vector<std::string> sourceFilesUnder(const std::string &Dir);

} // namespace jinn::synth

#endif // JINN_SYNTH_EMITTER_H
