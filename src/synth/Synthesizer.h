//===- synth/Synthesizer.h - Algorithm 1: checks from state machines -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1: for each state machine specification, for each
/// state transition, look up the language transitions it may occur at, and
/// add the synthesized check to the start (Call) or end (Return) of the
/// wrapper for each affected FFI function. Wrappers for JNI functions are
/// the interposed-table hooks; wrappers for native methods are installed
/// through the JVMTI NativeMethodBind event (paper Figures 3 and 4).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SYNTH_SYNTHESIZER_H
#define JINN_SYNTH_SYNTHESIZER_H

#include "spec/StateMachine.h"

#include <functional>
#include <vector>

namespace jinn::synth {

/// What Algorithm 1 produced.
struct SynthesisStats {
  size_t MachineCount = 0;
  size_t StateTransitionCount = 0;
  size_t JniPreHooks = 0;
  size_t JniPostHooks = 0;
  size_t NativeEntryActions = 0;
  size_t NativeExitActions = 0;

  size_t instrumentationPoints() const {
    return JniPreHooks + JniPostHooks + NativeEntryActions +
           NativeExitActions;
  }
};

/// Synthesizes a dynamic analysis from state machine specifications.
/// Non-owning: machines and reporter must outlive the synthesized analysis.
class Synthesizer {
public:
  Synthesizer(std::vector<spec::MachineBase *> Machines,
              spec::Reporter &Rep)
      : Machines(std::move(Machines)), Rep(Rep) {}

  /// Algorithm 1. Installs per-JNI-function hooks into \p Dispatcher and
  /// accumulates native-boundary actions for makeNativeBindHandler().
  SynthesisStats installInto(jvmti::InterposeDispatcher &Dispatcher);

  /// Handler for NativeMethodBind events: wraps each bound native method
  /// with the synthesized entry/exit instrumentation. When a boundary
  /// observer is set, methods are wrapped even if no machine instruments
  /// the native boundary, so the observer sees every crossing.
  std::function<void(jvm::MethodInfo &, jni::JniNativeStdFn &)>
  makeNativeBindHandler();

  /// Observer of native entry/exit crossings (the trace recorder). Fired
  /// before entry actions and before exit actions, so recorded state is
  /// what the machines were about to observe.
  void setBoundaryObserver(jvmti::NativeBoundaryObserver *Observer) {
    BoundaryObserver = Observer;
  }

  /// Called (when set) each time a synthesized action runs, with the spec
  /// of the machine it belongs to. Used for per-machine transition counts.
  std::function<void(const spec::StateMachineSpec &)> OnActionRun;

  /// One synthesized native-boundary action with its owning machine.
  using MachineAction =
      std::pair<const spec::StateMachineSpec *, spec::TransitionAction>;
  const std::vector<MachineAction> &entryActions() const {
    return EntryActions;
  }
  const std::vector<MachineAction> &exitActions() const { return ExitActions; }

  const std::vector<spec::MachineBase *> &machines() const {
    return Machines;
  }
  spec::Reporter &reporter() { return Rep; }

private:
  std::vector<spec::MachineBase *> Machines;
  spec::Reporter &Rep;
  jvmti::NativeBoundaryObserver *BoundaryObserver = nullptr;
  std::vector<MachineAction> EntryActions;
  std::vector<MachineAction> ExitActions;
};

} // namespace jinn::synth

#endif // JINN_SYNTH_SYNTHESIZER_H
