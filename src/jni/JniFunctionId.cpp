//===- jni/JniFunctionId.cpp - Dense ids for the 229 JNI functions -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jni/JniFunctionId.h"

#include <array>

using namespace jinn::jni;

namespace {

constexpr std::array<const char *, NumJniFunctions> Names = {
#define JNI_FN(Name, Ret, Params, Args) #Name,
#include "jni/JniFunctions.def"
#undef JNI_FN
};

} // namespace

const char *jinn::jni::fnName(FnId Id) {
  size_t Index = static_cast<size_t>(Id);
  return Index < Names.size() ? Names[Index] : "<invalid>";
}

FnId jinn::jni::fnIdByName(std::string_view Name) {
  for (size_t I = 0; I < Names.size(); ++I)
    if (Name == Names[I])
      return static_cast<FnId>(I);
  return FnId::Count;
}
