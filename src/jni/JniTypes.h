//===- jni/JniTypes.h - jni.h-compatible type definitions ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JNI type surface, mirroring a real jni.h in C++ mode: an opaque
/// reference hierarchy (_jobject and friends), primitive typedefs, the
/// jvalue union, and ID types. Reference values are *encoded handles*
/// (jvm/Handle.h) cast to these opaque pointer types — exactly the paper's
/// premise that JNI hides JVM implementation details behind opaque words.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JNI_JNITYPES_H
#define JINN_JNI_JNITYPES_H

#include <cstdarg>
#include <cstdint>

// The opaque reference hierarchy (as in jni.h when compiled as C++).
class _jobject {};
class _jclass : public _jobject {};
class _jthrowable : public _jobject {};
class _jstring : public _jobject {};
class _jarray : public _jobject {};
class _jbooleanArray : public _jarray {};
class _jbyteArray : public _jarray {};
class _jcharArray : public _jarray {};
class _jshortArray : public _jarray {};
class _jintArray : public _jarray {};
class _jlongArray : public _jarray {};
class _jfloatArray : public _jarray {};
class _jdoubleArray : public _jarray {};
class _jobjectArray : public _jarray {};

using jobject = _jobject *;
using jclass = _jclass *;
using jthrowable = _jthrowable *;
using jstring = _jstring *;
using jarray = _jarray *;
using jbooleanArray = _jbooleanArray *;
using jbyteArray = _jbyteArray *;
using jcharArray = _jcharArray *;
using jshortArray = _jshortArray *;
using jintArray = _jintArray *;
using jlongArray = _jlongArray *;
using jfloatArray = _jfloatArray *;
using jdoubleArray = _jdoubleArray *;
using jobjectArray = _jobjectArray *;
using jweak = jobject;

using jboolean = uint8_t;
using jbyte = int8_t;
using jchar = uint16_t;
using jshort = int16_t;
using jint = int32_t;
using jlong = int64_t;
using jfloat = float;
using jdouble = double;
using jsize = jint;

union jvalue {
  jboolean z;
  jbyte b;
  jchar c;
  jshort s;
  jint i;
  jlong j;
  jfloat f;
  jdouble d;
  jobject l;
};

// Method and field IDs are raw pointers to VM metadata — deliberately NOT
// references (pitfall 6 "confusing IDs with references" arises because C's
// type system lets programs mix them up anyway).
struct _jmethodID {};
using jmethodID = _jmethodID *;
struct _jfieldID {};
using jfieldID = _jfieldID *;

enum jobjectRefType {
  JNIInvalidRefType = 0,
  JNILocalRefType = 1,
  JNIGlobalRefType = 2,
  JNIWeakGlobalRefType = 3,
};

struct JNINativeMethod {
  const char *name;
  const char *signature;
  void *fnPtr;
};

constexpr jboolean JNI_FALSE = 0;
constexpr jboolean JNI_TRUE = 1;

constexpr jint JNI_OK = 0;
constexpr jint JNI_ERR = -1;
constexpr jint JNI_EDETACHED = -2;
constexpr jint JNI_EVERSION = -3;

constexpr jint JNI_COMMIT = 1;
constexpr jint JNI_ABORT = 2;

constexpr jint JNI_VERSION_1_1 = 0x00010001;
constexpr jint JNI_VERSION_1_2 = 0x00010002;
constexpr jint JNI_VERSION_1_4 = 0x00010004;
constexpr jint JNI_VERSION_1_6 = 0x00010006;

#endif // JINN_JNI_JNITYPES_H
