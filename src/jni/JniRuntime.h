//===- jni/JniRuntime.h - Per-VM JNI runtime ------------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JniRuntime owns everything JNI adds on top of the VM: per-thread
/// JNIEnv structures, the active function table (the interposition point),
/// native-method binding with JVMTI-style bind events, the registry of
/// pinned buffers handed to C code, and the notion of which VM thread is
/// "current" on the executing OS thread (pitfall 14 revolves around it).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JNI_JNIRUNTIME_H
#define JINN_JNI_JNIRUNTIME_H

#include "jni/JniEnv.h"
#include "jvm/Vm.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace jinn::jni {

/// Bound implementation of a native method at the JNI level: a uniform
/// (env, receiver-or-class, args) signature.
///
/// Substitution note: a real JVM binds native methods to per-signature C
/// symbols; the paper's synthesizer emits a wrapper per signature. This
/// reproduction uses one uniform signature so wrappers compose as closures;
/// the wrapping *points* (bind-time, around the call) are identical.
using JniNativeStdFn =
    std::function<jvalue(JNIEnv *Env, jobject SelfOrClass, const jvalue *Args)>;

/// Observer of native-method binding (JVMTI NativeMethodBind). The observer
/// may replace \p Bound with a wrapper — this is how Jinn instruments
/// Call:Java->C and Return:C->Java transitions (paper Figure 3).
class NativeBindObserver {
public:
  virtual ~NativeBindObserver();
  virtual void onNativeMethodBind(jvm::MethodInfo &Method,
                                  JniNativeStdFn &Bound) = 0;
};

/// A buffer handed to C code by Get<T>ArrayElements / GetString*Chars /
/// Get*Critical. The runtime tracks it until the matching release.
struct BufferRecord {
  jvm::ObjectId Target;
  jvm::PinKind Kind = jvm::PinKind::ArrayElements;
  jvm::JType Elem = jvm::JType::Void;
  size_t Len = 0;
  std::unique_ptr<char[]> Storage;
  size_t Bytes = 0;
};

class JniRuntime : public jvm::VmEventObserver {
public:
  explicit JniRuntime(jvm::Vm &Vm);
  ~JniRuntime() override;
  JniRuntime(const JniRuntime &) = delete;
  JniRuntime &operator=(const JniRuntime &) = delete;

  jvm::Vm &vm() { return TheVm; }
  JavaVM *javaVm() { return &TheJavaVm; }

  /// The env of \p Thread (created on demand).
  JNIEnv *envFor(jvm::JThread &Thread);
  JNIEnv *mainEnv() { return envFor(TheVm.mainThread()); }

  //===--------------------------------------------------------------------===
  // Function table interposition
  //===--------------------------------------------------------------------===

  const JNINativeInterface_ *defaultTable() const;
  const JNINativeInterface_ *activeTable() const { return Active; }
  /// Installs \p Table on every env (nullptr restores the default table).
  void setActiveTable(const JNINativeInterface_ *Table);

  /// Opaque dispatcher used by the interposed table (created by the JVMTI
  /// layer; see jvmti/Interpose.h). DispatcherOwner keeps it alive for the
  /// runtime's lifetime without this header knowing its type.
  void *Dispatcher = nullptr;
  std::shared_ptr<void> DispatcherOwner;

  //===--------------------------------------------------------------------===
  // Current thread (which VM thread the executing OS thread stands for)
  //===--------------------------------------------------------------------===

  /// The VM thread the *calling OS thread* stands for in this runtime, or
  /// null when the OS thread is detached. Backed by thread-local storage,
  /// so distinct OS threads each see their own binding (true multi-threaded
  /// execution); an epoch check guards against a destroyed runtime's
  /// address being reused.
  jvm::JThread *currentThread() const;
  void setCurrentThread(jvm::JThread *Thread);

  /// RAII current-thread switch used around native dispatch.
  class ScopedCurrent {
  public:
    ScopedCurrent(JniRuntime &Rt, jvm::JThread *Thread)
        : Rt(Rt), Saved(Rt.currentThread()) {
      Rt.setCurrentThread(Thread);
    }
    ~ScopedCurrent() { Rt.setCurrentThread(Saved); }

  private:
    JniRuntime &Rt;
    jvm::JThread *Saved;
  };

  //===--------------------------------------------------------------------===
  // Native-method binding
  //===--------------------------------------------------------------------===

  /// Binds \p Fn as the implementation of Klass.Name(Sig). Fires bind
  /// events (agents may wrap). Returns false when no such native method.
  bool registerNative(jvm::Klass *Kl, std::string_view Name,
                      std::string_view Sig, JniNativeStdFn Fn);
  /// Unbinds all natives of \p Kl.
  bool unregisterNatives(jvm::Klass *Kl);

  void addBindObserver(NativeBindObserver *Observer);
  void removeBindObserver(NativeBindObserver *Observer);

  //===--------------------------------------------------------------------===
  // Pinned buffers
  //===--------------------------------------------------------------------===

  /// Allocates and tracks a buffer of \p Bytes for \p Target.
  void *newBuffer(jvm::ObjectId Target, jvm::PinKind Kind, jvm::JType Elem,
                  size_t Len, size_t Bytes);
  /// Looks up a tracked buffer by its data pointer.
  const BufferRecord *findBuffer(const void *Data) const;
  /// Removes a tracked buffer, returning it (empty when unknown).
  std::unique_ptr<BufferRecord> takeBuffer(const void *Data);
  /// Re-inserts a buffer taken with takeBuffer (JNI_COMMIT keeps it live).
  void restoreBuffer(std::unique_ptr<BufferRecord> Record);
  size_t outstandingBuffers() const {
    std::lock_guard<std::mutex> Lock(BuffersMutex);
    return Buffers.size();
  }

  //===--------------------------------------------------------------------===
  // Handle helpers shared by the env implementation
  //===--------------------------------------------------------------------===

  /// Creates a local reference to \p Target in \p Thread's top frame.
  jobject makeLocal(jvm::JThread &Thread, jvm::ObjectId Target);

  /// Resolves \p Ref on behalf of \p Env's thread, applying the
  /// undefined-behavior policy on invalid handles.
  jvm::ObjectId deref(JNIEnv *Env, jobject Ref);

  // VmEventObserver: env lifecycle follows thread lifecycle.
  void onThreadStart(jvm::JThread &Thread) override;
  void onThreadEnd(jvm::JThread &Thread) override;

private:
  std::vector<NativeBindObserver *> bindObserversSnapshot() const;

  jvm::Vm &TheVm;
  JavaVM_ TheJavaVm;
  /// Unique id of this runtime instance for the thread-local current-thread
  /// registry (never reused, unlike `this`).
  const uint64_t RtEpoch;

  mutable std::mutex EnvsMutex; ///< Envs, JThread::EnvPtr publication
  std::vector<std::unique_ptr<JNIEnv_>> Envs;
  /// The active function table. Written by setActiveTable, which must run
  /// before worker threads start issuing JNI calls (the same discipline a
  /// real JVMTI agent install requires).
  const JNINativeInterface_ *Active = nullptr;

  mutable std::mutex BindObserversMutex; ///< BindObservers
  std::vector<NativeBindObserver *> BindObservers;

  mutable std::mutex BuffersMutex; ///< Buffers
  std::map<const void *, std::unique_ptr<BufferRecord>> Buffers;
};

} // namespace jinn::jni

#endif // JINN_JNI_JNIRUNTIME_H
