//===- jni/JniEnvMembers.cpp - Default impls: member lookup and access ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GetMethodID/GetFieldID lookups and the shared cores behind the 93 call
/// functions and 36 field accessors (the per-type shims are generated into
/// JniEnvCalls.cpp by tools/gen_jni_calls.py).
///
//===----------------------------------------------------------------------===//

#include "jni/EnvImplDetail.h"

#include "support/Compiler.h"
#include "support/Format.h"

using namespace jinn;
using namespace jinn::jni;
using jinn::jvm::Klass;
using jinn::jvm::ObjectId;
using jinn::jvm::UndefinedOp;
using jinn::jvm::Value;

namespace {

jmethodID lookupMethod(JNIEnv *Env, FnId Id, jclass Cls, const char *Name,
                       const char *Sig, bool WantStatic) {
  EnvGuard G(Env, Id);
  if (!G.ok())
    return nullptr;
  Klass *Kl = classOf(Env, Cls);
  if (!Kl)
    return nullptr;
  if (!Name || !Sig) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "null method name or signature");
    return nullptr;
  }
  jvm::MethodInfo *M = Kl->findMethod(Name, Sig, WantStatic);
  if (!M) {
    G.vm().throwNew(G.thread(), "java/lang/NoSuchMethodError",
                    formatString("%s.%s%s", Kl->name().c_str(), Name, Sig));
    return nullptr;
  }
  return methodToId(M);
}

jfieldID lookupField(JNIEnv *Env, FnId Id, jclass Cls, const char *Name,
                     const char *Sig, bool WantStatic) {
  EnvGuard G(Env, Id);
  if (!G.ok())
    return nullptr;
  Klass *Kl = classOf(Env, Cls);
  if (!Kl)
    return nullptr;
  if (!Name || !Sig) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "null field name or signature");
    return nullptr;
  }
  jvm::FieldInfo *F = Kl->findField(Name, Sig, WantStatic);
  if (!F) {
    G.vm().throwNew(G.thread(), "java/lang/NoSuchFieldError",
                    formatString("%s.%s", Kl->name().c_str(), Name));
    return nullptr;
  }
  return fieldToId(F);
}

} // namespace

jmethodID jinn::jni::impl_GetMethodID(JNIEnv *Env, jclass Cls,
                                      const char *Name, const char *Sig) {
  return lookupMethod(Env, FnId::GetMethodID, Cls, Name, Sig,
                      /*WantStatic=*/false);
}

jmethodID jinn::jni::impl_GetStaticMethodID(JNIEnv *Env, jclass Cls,
                                            const char *Name,
                                            const char *Sig) {
  return lookupMethod(Env, FnId::GetStaticMethodID, Cls, Name, Sig,
                      /*WantStatic=*/true);
}

jfieldID jinn::jni::impl_GetFieldID(JNIEnv *Env, jclass Cls, const char *Name,
                                    const char *Sig) {
  return lookupField(Env, FnId::GetFieldID, Cls, Name, Sig,
                     /*WantStatic=*/false);
}

jfieldID jinn::jni::impl_GetStaticFieldID(JNIEnv *Env, jclass Cls,
                                          const char *Name, const char *Sig) {
  return lookupField(Env, FnId::GetStaticFieldID, Cls, Name, Sig,
                     /*WantStatic=*/true);
}

Value jinn::jni::callMethodCommon(JNIEnv *Env, CallKind Kind, jobject Receiver,
                                  jclass Cls, jmethodID MethodId,
                                  const jvalue *Args) {
  // The FnId only matters for diagnostics in the guard; the generated shims
  // pass structure through Kind. Use the A-form id of the family by kind.
  // (The guard semantics are identical for every member of a family.)
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  jvm::MethodInfo *M = methodOf(Env, MethodId);
  if (!M || T.Poisoned)
    return Value::makeVoid();

  std::vector<Value> Vals = jvaluesToValues(Env, M->Sig, Args);
  if (T.Poisoned)
    return Value::makeVoid();

  switch (Kind) {
  case CallKind::Virtual:
  case CallKind::Nonvirtual: {
    ObjectId Recv = rtOf(Env).deref(Env, Receiver);
    if (T.Poisoned)
      return Value::makeVoid();
    if (Recv.isNull()) {
      V.throwNew(T, "java/lang/NullPointerException", M->qualifiedName());
      return Value::makeVoid();
    }
    if (M->IsStatic) {
      V.undefined(T, UndefinedOp::InvalidArgument,
                  "static method called through an instance-call function");
      return Value::makeVoid();
    }
    return V.invoke(T, M, Value::makeRef(Recv), Vals,
                    /*VirtualDispatch=*/Kind == CallKind::Virtual);
  }
  case CallKind::Static: {
    Klass *Kl = classOf(Env, Cls);
    if (!Kl || T.Poisoned)
      return Value::makeVoid();
    if (!M->IsStatic) {
      V.undefined(T, UndefinedOp::InvalidArgument,
                  "instance method called through CallStatic*");
      return Value::makeVoid();
    }
    return V.invoke(T, M, Value::makeNull(), Vals, /*VirtualDispatch=*/false);
  }
  case CallKind::Ctor: {
    Klass *Kl = classOf(Env, Cls);
    if (!Kl || T.Poisoned)
      return Value::makeVoid();
    if (Kl->isArray()) {
      V.throwNew(T, "java/lang/InstantiationError", Kl->name());
      return Value::makeVoid();
    }
    ObjectId Obj = V.newObject(Kl);
    V.invoke(T, M, Value::makeRef(Obj), Vals, /*VirtualDispatch=*/false);
    if (!T.Pending.isNull())
      return Value::makeVoid();
    return Value::makeRef(Obj);
  }
  case CallKind::NotACall:
    break;
  }
  JINN_UNREACHABLE("invalid CallKind in callMethodCommon");
}

namespace jinn::jni {

/// Shared core of Get<T>Field / GetStatic<T>Field (generated shims convert).
Value getFieldCommon(JNIEnv *Env, FnId Id, jobject ObjOrCls, jfieldID FieldId,
                     bool Static) {
  EnvGuard G(Env, Id);
  if (!G.ok())
    return Value::makeVoid();
  jvm::FieldInfo *F = fieldOf(Env, FieldId);
  if (!F || G.thread().Poisoned)
    return Value::makeVoid();
  if (F->IsStatic != Static) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "field ID staticness does not match accessor");
    return Value::makeVoid();
  }
  if (Static) {
    classOf(Env, static_cast<jclass>(ObjOrCls));
    std::lock_guard<std::mutex> Lock(G.vm().staticFieldLock(F));
    return F->StaticValue;
  }
  ObjectId Obj = rtOf(Env).deref(Env, ObjOrCls);
  if (G.thread().Poisoned)
    return Value::makeVoid();
  if (Obj.isNull()) {
    G.vm().throwNew(G.thread(), "java/lang/NullPointerException",
                    F->qualifiedName());
    return Value::makeVoid();
  }
  jvm::HeapObject *HO = G.vm().heap().resolve(Obj);
  if (!HO || HO->Shape != jvm::ObjShape::Plain ||
      F->Slot >= HO->Fields.size()) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "field ID does not apply to this object");
    return Value::makeVoid();
  }
  return HO->Fields[F->Slot];
}

/// Shared core of Set<T>Field / SetStatic<T>Field.
void setFieldCommon(JNIEnv *Env, FnId Id, jobject ObjOrCls, jfieldID FieldId,
                    bool Static, Value NewValue) {
  EnvGuard G(Env, Id);
  if (!G.ok())
    return;
  jvm::FieldInfo *F = fieldOf(Env, FieldId);
  if (!F || G.thread().Poisoned)
    return;
  if (F->IsStatic != Static) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "field ID staticness does not match accessor");
    return;
  }
  if (F->IsFinal) {
    // Table 1 row 9: the production default surfaces as an NPE.
    G.vm().undefined(G.thread(), UndefinedOp::AccessControl,
                     formatString("write to final field %s",
                                  F->qualifiedName().c_str()));
    return;
  }
  if (Static) {
    classOf(Env, static_cast<jclass>(ObjOrCls));
    std::lock_guard<std::mutex> Lock(G.vm().staticFieldLock(F));
    F->StaticValue = NewValue;
    return;
  }
  ObjectId Obj = rtOf(Env).deref(Env, ObjOrCls);
  if (G.thread().Poisoned)
    return;
  if (Obj.isNull()) {
    G.vm().throwNew(G.thread(), "java/lang/NullPointerException",
                    F->qualifiedName());
    return;
  }
  jvm::HeapObject *HO = G.vm().heap().resolve(Obj);
  if (!HO || HO->Shape != jvm::ObjShape::Plain ||
      F->Slot >= HO->Fields.size()) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "field ID does not apply to this object");
    return;
  }
  HO->Fields[F->Slot] = NewValue;
  // Incremental-mark write barrier: re-scan this container at the next GC
  // pause if it was already traced (incremental-update marking).
  if (NewValue.isRef())
    G.vm().heap().recordRefStore(Obj);
}

} // namespace jinn::jni
