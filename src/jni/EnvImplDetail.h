//===- jni/EnvImplDetail.h - Private helpers for the env implementation --===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private header shared by the three JniEnv*.cpp implementation files.
/// Declares every impl_<Fn> function (from the registry) plus the common
/// production-mode prologue. The prologue is what a *production* JVM does —
/// not a checker: it consults the undefined-behavior policy when user code
/// calls a JNI function in a state the specification forbids (pending
/// exception, critical section, foreign JNIEnv), mirroring Table 1's
/// default-behavior columns.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JNI_ENVIMPLDETAIL_H
#define JINN_JNI_ENVIMPLDETAIL_H

#include "jni/JniEnv.h"
#include "jni/JniFunctionId.h"
#include "jni/JniRuntime.h"
#include "jni/JniTraits.h"
#include "jni/Marshal.h"
#include "jvm/Vm.h"

namespace jinn::jni {

// Declarations of every default implementation, in registry order.
#define JNI_FN(Name, Ret, Params, Args) Ret impl_##Name Params;
#include "jni/JniFunctions.def"
#undef JNI_FN

inline jvm::JThread &threadOf(JNIEnv *Env) { return *Env->thread; }
inline jvm::Vm &vmOf(JNIEnv *Env) { return *Env->vm; }
inline JniRuntime &rtOf(JNIEnv *Env) { return *Env->runtime; }

/// Production-mode prologue for every JNI function. ok() is false when the
/// call must not proceed (poisoned thread, shut-down VM, or a policy
/// decision that stops execution).
class EnvGuard {
public:
  EnvGuard(JNIEnv *Env, FnId Id);
  bool ok() const { return Ok; }
  jvm::JThread &thread() { return *Thread; }
  jvm::Vm &vm() { return *Vm; }

private:
  /// Declared first: the calling thread is an active mutator for the whole
  /// JNI call (nested calls just bump a thread-local depth), so a GC either
  /// waits for the call or parks the thread right here at the boundary.
  jvm::Vm::MutatorScope Mutator;
  jvm::JThread *Thread;
  jvm::Vm *Vm;
  bool Ok;
};

/// Resolves a jclass handle to VM class metadata. When the handle resolves
/// to an object that is not a java.lang.Class mirror, routes
/// ClassObjectConfusion through the policy (pitfall 3) and returns null.
jvm::Klass *classOf(JNIEnv *Env, jclass Cls);

/// Validates a jmethodID against the VM registry; invalid or null IDs route
/// InvalidArgument through the policy and return null.
jvm::MethodInfo *methodOf(JNIEnv *Env, jmethodID Id);
jvm::FieldInfo *fieldOf(JNIEnv *Env, jfieldID Id);

/// Makes a local reference in Env's thread (null target -> null).
jobject localRef(JNIEnv *Env, jvm::ObjectId Target);

/// Shared implementation of the Call<T>MethodA families. The generated
/// shims run the EnvGuard first; this performs ID validation, argument
/// marshalling, receiver checks, and the invocation.
jvm::Value callMethodCommon(JNIEnv *Env, CallKind Kind, jobject Receiver,
                            jclass Cls, jmethodID MethodId,
                            const jvalue *Args);

/// Shared cores of the 36 field accessors (shims generated).
jvm::Value getFieldCommon(JNIEnv *Env, FnId Id, jobject ObjOrCls,
                          jfieldID FieldId, bool Static);
void setFieldCommon(JNIEnv *Env, FnId Id, jobject ObjOrCls, jfieldID FieldId,
                    bool Static, jvm::Value NewValue);

/// Converts jvalue arguments to VM values per \p Sig (derefs references).
std::vector<jvm::Value> jvaluesToValues(JNIEnv *Env,
                                        const jvm::MethodDesc &Sig,
                                        const jvalue *Args);

} // namespace jinn::jni

#endif // JINN_JNI_ENVIMPLDETAIL_H
