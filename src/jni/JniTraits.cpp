//===- jni/JniTraits.cpp - Per-function JNI constraint traits ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jni/JniTraits.h"

// std::decay_t<va_list> drops GCC's array attributes; harmless here.
#pragma GCC diagnostic ignored "-Wignored-attributes"
#pragma GCC diagnostic ignored "-Wattributes"

#include "jni/JniEnv.h"
#include "support/Compiler.h"

#include <cstring>
#include <string_view>
#include <type_traits>

using namespace jinn;
using namespace jinn::jni;
using jinn::jvm::JType;

const char *jinn::jni::refConstraintClassName(RefConstraint C) {
  switch (C) {
  case RefConstraint::None:
    return nullptr;
  case RefConstraint::Class:
    return "java/lang/Class";
  case RefConstraint::String:
    return "java/lang/String";
  case RefConstraint::Throwable:
    return "java/lang/Throwable";
  case RefConstraint::AnyArray:
    return "[*";
  case RefConstraint::BooleanArray:
    return "[Z";
  case RefConstraint::ByteArray:
    return "[B";
  case RefConstraint::CharArray:
    return "[C";
  case RefConstraint::ShortArray:
    return "[S";
  case RefConstraint::IntArray:
    return "[I";
  case RefConstraint::LongArray:
    return "[J";
  case RefConstraint::FloatArray:
    return "[F";
  case RefConstraint::DoubleArray:
    return "[D";
  case RefConstraint::ObjectArray:
    return "[Ljava/lang/Object;";
  }
  JINN_UNREACHABLE("invalid RefConstraint");
}

int FnTraits::firstParam(ArgClass Cls) const {
  for (int I = 0; I < NumParams; ++I)
    if (Params[I].Cls == Cls)
      return I;
  return -1;
}

int FnTraits::countParams(ArgClass Cls) const {
  int N = 0;
  for (int I = 0; I < NumParams; ++I)
    if (Params[I].Cls == Cls)
      ++N;
  return N;
}

namespace {

//===----------------------------------------------------------------------===
// Static classification of C++ parameter types (the "header scan")
//===----------------------------------------------------------------------===

template <typename T> constexpr ParamTraits classifyArg() {
  ParamTraits Out;
  using U = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<U, jmethodID>) {
    Out.Cls = ArgClass::MethodId;
    Out.NonNull = true;
  } else if constexpr (std::is_same_v<U, jfieldID>) {
    Out.Cls = ArgClass::FieldId;
    Out.NonNull = true;
  } else if constexpr (std::is_same_v<U, const char *>) {
    Out.Cls = ArgClass::CString;
    Out.NonNull = true;
  } else if constexpr (std::is_same_v<U, const jvalue *>) {
    Out.Cls = ArgClass::JvalueArray;
  } else if constexpr (std::is_same_v<U, std::decay_t<va_list>>) {
    Out.Cls = ArgClass::VaList;
  } else if constexpr (std::is_pointer_v<U> &&
                       std::is_base_of_v<_jobject,
                                         std::remove_pointer_t<U>>) {
    Out.Cls = ArgClass::Ref;
    Out.NonNull = true; // refined by name rules below
    using P = std::remove_pointer_t<U>;
    if constexpr (std::is_same_v<P, _jclass>)
      Out.Constraint = RefConstraint::Class;
    else if constexpr (std::is_same_v<P, _jstring>)
      Out.Constraint = RefConstraint::String;
    else if constexpr (std::is_same_v<P, _jthrowable>)
      Out.Constraint = RefConstraint::Throwable;
    else if constexpr (std::is_same_v<P, _jbooleanArray>)
      Out.Constraint = RefConstraint::BooleanArray;
    else if constexpr (std::is_same_v<P, _jbyteArray>)
      Out.Constraint = RefConstraint::ByteArray;
    else if constexpr (std::is_same_v<P, _jcharArray>)
      Out.Constraint = RefConstraint::CharArray;
    else if constexpr (std::is_same_v<P, _jshortArray>)
      Out.Constraint = RefConstraint::ShortArray;
    else if constexpr (std::is_same_v<P, _jintArray>)
      Out.Constraint = RefConstraint::IntArray;
    else if constexpr (std::is_same_v<P, _jlongArray>)
      Out.Constraint = RefConstraint::LongArray;
    else if constexpr (std::is_same_v<P, _jfloatArray>)
      Out.Constraint = RefConstraint::FloatArray;
    else if constexpr (std::is_same_v<P, _jdoubleArray>)
      Out.Constraint = RefConstraint::DoubleArray;
    else if constexpr (std::is_same_v<P, _jobjectArray>)
      Out.Constraint = RefConstraint::ObjectArray;
    else if constexpr (std::is_same_v<P, _jarray>)
      Out.Constraint = RefConstraint::AnyArray;
  } else if constexpr (std::is_pointer_v<U>) {
    Out.Cls = ArgClass::OutPtr;
  } else {
    Out.Cls = ArgClass::Scalar;
  }
  return Out;
}

template <typename T> constexpr bool classifyReturnIsRef() {
  using U = std::remove_cv_t<T>;
  if constexpr (std::is_pointer_v<U>)
    return std::is_base_of_v<_jobject, std::remove_pointer_t<U>>;
  else
    return false;
}

template <typename T> constexpr RefConstraint classifyReturnConstraint() {
  if constexpr (classifyReturnIsRef<T>())
    return classifyArg<T>().Constraint;
  else
    return RefConstraint::None;
}

/// Extracts parameter traits from a function pointer type.
template <typename F> struct SigExtract;

template <typename R, typename... A> struct SigExtract<R (*)(JNIEnv *, A...)> {
  static void apply(FnTraits &T) {
    T.NumParams = sizeof...(A);
    size_t I = 0;
    ((T.Params[I++] = classifyArg<A>()), ...);
    T.ReturnsRef = classifyReturnIsRef<R>();
    T.ReturnConstraint = classifyReturnConstraint<R>();
  }
};

// Variadic ('...') forms: the trailing varargs do not appear as parameters.
template <typename R, typename... A>
struct SigExtract<R (*)(JNIEnv *, A..., ...)> {
  static void apply(FnTraits &T) {
    T.NumParams = sizeof...(A);
    size_t I = 0;
    ((T.Params[I++] = classifyArg<A>()), ...);
    T.ReturnsRef = classifyReturnIsRef<R>();
    T.ReturnConstraint = classifyReturnConstraint<R>();
  }
};

//===----------------------------------------------------------------------===
// Name-driven refinement
//===----------------------------------------------------------------------===

bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.substr(0, Prefix.size()) == Prefix;
}

bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

JType jtypeFromWord(std::string_view Word) {
  if (Word == "Object")
    return JType::Object;
  if (Word == "Boolean")
    return JType::Boolean;
  if (Word == "Byte")
    return JType::Byte;
  if (Word == "Char")
    return JType::Char;
  if (Word == "Short")
    return JType::Short;
  if (Word == "Int")
    return JType::Int;
  if (Word == "Long")
    return JType::Long;
  if (Word == "Float")
    return JType::Float;
  if (Word == "Double")
    return JType::Double;
  return JType::Void;
}

/// Parses "Call[Static|Nonvirtual]<T>Method[V|A]".
bool parseCallName(std::string_view Name, CallKind &Kind, JType &Ret,
                   CallForm &Form) {
  if (startsWith(Name, "NewObject")) {
    std::string_view Rest = Name.substr(strlen("NewObject"));
    if (!Rest.empty() && Rest != "V" && Rest != "A")
      return false; // NewObjectArray and friends
    Kind = CallKind::Ctor;
    Ret = JType::Object;
    Form = Rest == "V"   ? CallForm::VaListForm
           : Rest == "A" ? CallForm::ArrayForm
                         : CallForm::Variadic;
    return true;
  }
  if (!startsWith(Name, "Call"))
    return false;
  std::string_view Rest = Name.substr(4);
  Kind = CallKind::Virtual;
  if (startsWith(Rest, "Static")) {
    Kind = CallKind::Static;
    Rest = Rest.substr(6);
  } else if (startsWith(Rest, "Nonvirtual")) {
    Kind = CallKind::Nonvirtual;
    Rest = Rest.substr(10);
  }
  size_t MethodPos = Rest.find("Method");
  if (MethodPos == std::string_view::npos)
    return false;
  Ret = jtypeFromWord(Rest.substr(0, MethodPos));
  if (Ret == JType::Void && Rest.substr(0, MethodPos) != "Void")
    return false;
  std::string_view Tail = Rest.substr(MethodPos + 6);
  Form = Tail == "V"   ? CallForm::VaListForm
         : Tail == "A" ? CallForm::ArrayForm
         : Tail.empty() ? CallForm::Variadic
                        : CallForm::NotACall;
  return Form != CallForm::NotACall;
}

/// Parses "[Get|Set][Static]<T>Field".
bool parseFieldOpName(std::string_view Name, bool &IsSet, bool &IsStatic,
                      JType &Kind) {
  bool Get = startsWith(Name, "Get");
  bool Set = startsWith(Name, "Set");
  if (!Get && !Set)
    return false;
  std::string_view Rest = Name.substr(3);
  IsStatic = startsWith(Rest, "Static");
  if (IsStatic)
    Rest = Rest.substr(6);
  if (!endsWith(Rest, "Field"))
    return false;
  Kind = jtypeFromWord(Rest.substr(0, Rest.size() - 5));
  if (Kind == JType::Void)
    return false;
  IsSet = Set;
  return true;
}

void applyNameRules(FnTraits &T, std::string_view Name) {
  // Call families.
  CallKind CK;
  JType CRet;
  CallForm CF;
  if (parseCallName(Name, CK, CRet, CF)) {
    T.Call = CK;
    T.CallRet = CRet;
    T.Form = CF;
  }

  // Field operations.
  bool IsSet = false, IsStatic = false;
  JType FK;
  if (parseFieldOpName(Name, IsSet, IsStatic, FK)) {
    T.IsFieldGet = !IsSet;
    T.IsFieldSet = IsSet;
    T.IsStaticFieldOp = IsStatic;
    T.FieldKind = FK;
  }

  // ID producers.
  if (Name == "GetMethodID" || Name == "GetStaticMethodID" ||
      Name == "FromReflectedMethod")
    T.ProducesMethodId = true;
  if (Name == "GetFieldID" || Name == "GetStaticFieldID" ||
      Name == "FromReflectedField")
    T.ProducesFieldId = true;

  // Exception-oblivious set: exactly the 20 clean-up/query functions the
  // paper's exception state machine allows with an exception pending.
  static const char *const Oblivious[] = {
      "ExceptionOccurred",       "ExceptionDescribe",
      "ExceptionClear",          "ExceptionCheck",
      "ReleaseStringChars",      "ReleaseStringUTFChars",
      "ReleaseStringCritical",   "ReleaseBooleanArrayElements",
      "ReleaseByteArrayElements", "ReleaseCharArrayElements",
      "ReleaseShortArrayElements", "ReleaseIntArrayElements",
      "ReleaseLongArrayElements", "ReleaseFloatArrayElements",
      "ReleaseDoubleArrayElements", "ReleasePrimitiveArrayCritical",
      "DeleteLocalRef",          "DeleteGlobalRef",
      "DeleteWeakGlobalRef",     "MonitorExit",
  };
  for (const char *Ob : Oblivious)
    if (Name == Ob)
      T.ExceptionOblivious = true;

  // The four functions legal inside a critical section.
  if (Name == "GetStringCritical" || Name == "ReleaseStringCritical" ||
      Name == "GetPrimitiveArrayCritical" ||
      Name == "ReleasePrimitiveArrayCritical")
    T.CriticalAllowed = true;

  // Resource roles and pin families.
  if (startsWith(Name, "Get") && endsWith(Name, "ArrayElements")) {
    T.Resource = ResourceRole::PinAcquire;
    T.Pin = PinFamily::ArrayElements;
  } else if (startsWith(Name, "Release") && endsWith(Name, "ArrayElements")) {
    T.Resource = ResourceRole::PinRelease;
    T.Pin = PinFamily::ArrayElements;
  } else if (Name == "GetStringChars") {
    T.Resource = ResourceRole::PinAcquire;
    T.Pin = PinFamily::StringChars;
  } else if (Name == "ReleaseStringChars") {
    T.Resource = ResourceRole::PinRelease;
    T.Pin = PinFamily::StringChars;
  } else if (Name == "GetStringUTFChars") {
    T.Resource = ResourceRole::PinAcquire;
    T.Pin = PinFamily::StringUtfChars;
  } else if (Name == "ReleaseStringUTFChars") {
    T.Resource = ResourceRole::PinRelease;
    T.Pin = PinFamily::StringUtfChars;
  } else if (Name == "GetPrimitiveArrayCritical") {
    T.Resource = ResourceRole::PinAcquire;
    T.Pin = PinFamily::CriticalArray;
  } else if (Name == "ReleasePrimitiveArrayCritical") {
    T.Resource = ResourceRole::PinRelease;
    T.Pin = PinFamily::CriticalArray;
  } else if (Name == "GetStringCritical") {
    T.Resource = ResourceRole::PinAcquire;
    T.Pin = PinFamily::CriticalString;
  } else if (Name == "ReleaseStringCritical") {
    T.Resource = ResourceRole::PinRelease;
    T.Pin = PinFamily::CriticalString;
  } else if (Name == "NewGlobalRef") {
    T.Resource = ResourceRole::GlobalAcquire;
  } else if (Name == "DeleteGlobalRef") {
    T.Resource = ResourceRole::GlobalRelease;
  } else if (Name == "NewWeakGlobalRef") {
    T.Resource = ResourceRole::WeakAcquire;
  } else if (Name == "DeleteWeakGlobalRef") {
    T.Resource = ResourceRole::WeakRelease;
  } else if (Name == "NewLocalRef") {
    T.Resource = ResourceRole::LocalAcquire;
  } else if (Name == "DeleteLocalRef") {
    T.Resource = ResourceRole::LocalDelete;
  } else if (Name == "PushLocalFrame") {
    T.Resource = ResourceRole::PushFrame;
  } else if (Name == "PopLocalFrame") {
    T.Resource = ResourceRole::PopFrame;
  } else if (Name == "EnsureLocalCapacity") {
    T.Resource = ResourceRole::EnsureCapacity;
  } else if (Name == "MonitorEnter") {
    T.Resource = ResourceRole::MonitorEnter;
  } else if (Name == "MonitorExit") {
    T.Resource = ResourceRole::MonitorExit;
  } else if (Name == "ExceptionClear") {
    T.Resource = ResourceRole::ExceptionClearFn;
  }

  // Nullability refinements (the paper determined these experimentally;
  // these are the cases where JNI explicitly tolerates null).
  auto MarkNullable = [&T](int Index) {
    if (Index >= 0 && Index < T.NumParams)
      T.Params[Index].NonNull = false;
  };
  if (Name == "DefineClass")
    MarkNullable(1); // loader may be null (bootstrap loader)
  if (Name == "PopLocalFrame")
    MarkNullable(0); // result may be null
  if (Name == "IsSameObject") {
    MarkNullable(0);
    MarkNullable(1);
  }
  if (Name == "NewLocalRef" || Name == "NewGlobalRef" ||
      Name == "NewWeakGlobalRef")
    MarkNullable(0); // null in, null out is legal
  if (Name == "NewObjectArray")
    MarkNullable(2); // initialElement
  if (Name == "SetObjectArrayElement")
    MarkNullable(2); // storing null is legal
  if (Name == "SetObjectField" || Name == "SetStaticObjectField")
    MarkNullable(2); // assigning null is legal
  if (Name == "ExceptionDescribe" || Name == "GetObjectRefType")
    MarkNullable(0);
  if (Name == "GetObjectRefType")
    MarkNullable(0);
}

std::array<FnTraits, NumJniFunctions> buildTraits() {
  std::array<FnTraits, NumJniFunctions> Table;

  size_t Index = 0;
#define JNI_FN(Name, Ret, Params, Args)                                       \
  {                                                                           \
    FnTraits &T = Table[Index];                                               \
    T.Id = static_cast<FnId>(Index);                                          \
    SigExtract<Ret(*) Params>::apply(T);                                      \
    ++Index;                                                                  \
  }
#include "jni/JniFunctions.def"
#undef JNI_FN

  for (size_t I = 0; I < NumJniFunctions; ++I)
    applyNameRules(Table[I], fnName(static_cast<FnId>(I)));
  return Table;
}

} // namespace

const FnTraits &jinn::jni::fnTraits(FnId Id) {
  return allFnTraits()[static_cast<size_t>(Id)];
}

const std::array<FnTraits, NumJniFunctions> &jinn::jni::allFnTraits() {
  static const std::array<FnTraits, NumJniFunctions> Table = buildTraits();
  return Table;
}
