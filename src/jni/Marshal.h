//===- jni/Marshal.h - jvalue <-> VM value marshalling -------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conversions between the VM's tagged Value and JNI's jvalue union,
/// plus va_list decoding against a method signature (the paper's wrappers
/// for variadic functions delegate to non-variadic forms the same way,
/// §7.2).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JNI_MARSHAL_H
#define JINN_JNI_MARSHAL_H

#include "jni/JniTypes.h"
#include "jvm/Klass.h"
#include "jvm/Value.h"

#include <cstdarg>
#include <vector>

namespace jinn::jni {

/// Casts between the opaque jobject pointer and the encoded handle word.
inline uint64_t handleWord(jobject Ref) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Ref));
}
inline jobject wordToRef(uint64_t Word) {
  return reinterpret_cast<jobject>(static_cast<uintptr_t>(Word));
}

/// jmethodID/jfieldID <-> VM metadata pointers.
inline jmethodID methodToId(jvm::MethodInfo *Method) {
  return reinterpret_cast<jmethodID>(Method);
}
inline jvm::MethodInfo *idToMethod(jmethodID Id) {
  return reinterpret_cast<jvm::MethodInfo *>(Id);
}
inline jfieldID fieldToId(jvm::FieldInfo *Field) {
  return reinterpret_cast<jfieldID>(Field);
}
inline jvm::FieldInfo *idToField(jfieldID Id) {
  return reinterpret_cast<jvm::FieldInfo *>(Id);
}

/// Converts a *primitive* VM value to a jvalue (references are marshalled
/// separately because they need a local-reference handle).
jvalue scalarToJvalue(const jvm::Value &Value);

/// Converts a primitive jvalue of kind \p Kind to a VM value.
jvm::Value jvalueToScalar(jvm::JType Kind, jvalue Value);

/// Decodes the varargs of a call according to \p Sig (default argument
/// promotions applied, as in real JNI).
std::vector<jvalue> decodeVaList(const jvm::MethodDesc &Sig, va_list Args);

} // namespace jinn::jni

#endif // JINN_JNI_MARSHAL_H
