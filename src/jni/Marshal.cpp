//===- jni/Marshal.cpp - jvalue <-> VM value marshalling -----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jni/Marshal.h"

#include "support/Compiler.h"

using namespace jinn;
using namespace jinn::jni;
using jinn::jvm::JType;

jvalue jinn::jni::scalarToJvalue(const jvm::Value &Value) {
  jvalue Out;
  Out.j = 0;
  switch (Value.Kind) {
  case JType::Boolean:
    Out.z = static_cast<jboolean>(Value.I != 0);
    break;
  case JType::Byte:
    Out.b = static_cast<jbyte>(Value.I);
    break;
  case JType::Char:
    Out.c = static_cast<jchar>(Value.I);
    break;
  case JType::Short:
    Out.s = static_cast<jshort>(Value.I);
    break;
  case JType::Int:
    Out.i = static_cast<jint>(Value.I);
    break;
  case JType::Long:
    Out.j = Value.I;
    break;
  case JType::Float:
    Out.f = static_cast<jfloat>(Value.D);
    break;
  case JType::Double:
    Out.d = Value.D;
    break;
  case JType::Void:
    break;
  case JType::Object:
    JINN_UNREACHABLE("references are marshalled with a handle, not here");
  }
  return Out;
}

jvm::Value jinn::jni::jvalueToScalar(JType Kind, jvalue Value) {
  switch (Kind) {
  case JType::Boolean:
    return jvm::Value::makeBoolean(Value.z != 0);
  case JType::Byte:
    return jvm::Value::makeByte(Value.b);
  case JType::Char:
    return jvm::Value::makeChar(Value.c);
  case JType::Short:
    return jvm::Value::makeShort(Value.s);
  case JType::Int:
    return jvm::Value::makeInt(Value.i);
  case JType::Long:
    return jvm::Value::makeLong(Value.j);
  case JType::Float:
    return jvm::Value::makeFloat(Value.f);
  case JType::Double:
    return jvm::Value::makeDouble(Value.d);
  case JType::Void:
    return jvm::Value::makeVoid();
  case JType::Object:
    JINN_UNREACHABLE("references are unmarshalled with a handle, not here");
  }
  JINN_UNREACHABLE("invalid JType");
}

std::vector<jvalue> jinn::jni::decodeVaList(const jvm::MethodDesc &Sig,
                                            va_list Args) {
  std::vector<jvalue> Out;
  Out.reserve(Sig.Params.size());
  va_list Copy;
  va_copy(Copy, Args);
  for (const jvm::TypeDesc &Param : Sig.Params) {
    jvalue V;
    V.j = 0;
    switch (Param.Kind) {
    case JType::Boolean:
      V.z = static_cast<jboolean>(va_arg(Copy, jint));
      break;
    case JType::Byte:
      V.b = static_cast<jbyte>(va_arg(Copy, jint));
      break;
    case JType::Char:
      V.c = static_cast<jchar>(va_arg(Copy, jint));
      break;
    case JType::Short:
      V.s = static_cast<jshort>(va_arg(Copy, jint));
      break;
    case JType::Int:
      V.i = va_arg(Copy, jint);
      break;
    case JType::Long:
      V.j = va_arg(Copy, jlong);
      break;
    case JType::Float:
      V.f = static_cast<jfloat>(va_arg(Copy, jdouble));
      break;
    case JType::Double:
      V.d = va_arg(Copy, jdouble);
      break;
    case JType::Object:
      V.l = va_arg(Copy, jobject);
      break;
    case JType::Void:
      break;
    }
    Out.push_back(V);
  }
  va_end(Copy);
  return Out;
}
