//===- jni/JniTraits.h - Per-function JNI constraint traits --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-function trait table driving every checker. The paper extracted
/// fixed typing constraints "by scanning the JNI header file for C
/// parameters with well-defined corresponding Java types" and determined
/// nullness constraints experimentally (§5.2); this reproduction derives the
/// same information from the static C++ parameter types in
/// JniFunctions.def plus name-driven rules, once, into one table. The
/// Table 2 census (bench_table2_constraints) is computed from this table.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JNI_JNITRAITS_H
#define JINN_JNI_JNITRAITS_H

#include "jni/JniFunctionId.h"
#include "jvm/Descriptor.h"

#include <array>
#include <cstdint>

namespace jinn::jni {

/// Coarse classification of one parameter (derived from its C++ type).
enum class ArgClass : uint8_t {
  Scalar,      ///< jint, jsize, jboolean, jdouble, enum, ...
  Ref,         ///< any _jobject-derived pointer
  MethodId,    ///< jmethodID
  FieldId,     ///< jfieldID
  CString,     ///< const char *
  JvalueArray, ///< const jvalue *
  VaList,      ///< va_list
  OutPtr,      ///< other pointers (jboolean *isCopy, buffers, JavaVM **)
};

/// The Java type a reference parameter is statically constrained to by the
/// JNI signature itself ("fixed typing", paper §5.2).
enum class RefConstraint : uint8_t {
  None, ///< plain jobject: unconstrained
  Class,
  String,
  Throwable,
  AnyArray,
  BooleanArray,
  ByteArray,
  CharArray,
  ShortArray,
  IntArray,
  LongArray,
  FloatArray,
  DoubleArray,
  ObjectArray,
};

/// Internal class name (or array descriptor) for \p C; nullptr for None.
const char *refConstraintClassName(RefConstraint C);

/// One parameter's traits.
struct ParamTraits {
  ArgClass Cls = ArgClass::Scalar;
  RefConstraint Constraint = RefConstraint::None;
  bool NonNull = false; ///< null here is a constraint violation
};

/// Role in the resource state machines (paper Figure 8).
enum class ResourceRole : uint8_t {
  None,
  PinAcquire,    ///< Get<T>ArrayElements, GetString(UTF)Chars, criticals
  PinRelease,
  GlobalAcquire, ///< NewGlobalRef
  GlobalRelease,
  WeakAcquire,
  WeakRelease,
  LocalAcquire,  ///< NewLocalRef
  LocalDelete,   ///< DeleteLocalRef
  PushFrame,
  PopFrame,
  EnsureCapacity,
  MonitorEnter,
  MonitorExit,
  ExceptionClearFn,
};

/// Call family kind for Call*/NewObject functions.
enum class CallKind : uint8_t { NotACall, Virtual, Nonvirtual, Static, Ctor };

/// Which argument-passing form a call-family function uses.
enum class CallForm : uint8_t { NotACall, Variadic, VaListForm, ArrayForm };

/// Which critical/pin resource family a pin function manipulates.
enum class PinFamily : uint8_t {
  None,
  ArrayElements,
  StringChars,
  StringUtfChars,
  CriticalArray,
  CriticalString,
};

/// The complete trait record of one JNI function.
struct FnTraits {
  FnId Id = FnId::Count;
  uint8_t NumParams = 0; ///< excluding the JNIEnv parameter
  std::array<ParamTraits, 5> Params;

  bool ExceptionOblivious = false; ///< callable with an exception pending
  bool CriticalAllowed = false;    ///< callable inside a critical section
  bool ReturnsRef = false;         ///< returns a (new local) reference
  RefConstraint ReturnConstraint = RefConstraint::None;

  ResourceRole Resource = ResourceRole::None;
  PinFamily Pin = PinFamily::None;

  CallKind Call = CallKind::NotACall;
  CallForm Form = CallForm::NotACall;
  jvm::JType CallRet = jvm::JType::Void; ///< call family return kind

  bool IsFieldGet = false;
  bool IsFieldSet = false;  ///< one of the 18 access-control sites
  bool IsStaticFieldOp = false;
  jvm::JType FieldKind = jvm::JType::Void;

  bool ProducesMethodId = false; ///< GetMethodID / GetStaticMethodID / From*
  bool ProducesFieldId = false;

  /// Index of the first parameter of class \p Cls, or -1.
  int firstParam(ArgClass Cls) const;
  /// True if any parameter has class \p Cls.
  bool hasParam(ArgClass Cls) const { return firstParam(Cls) >= 0; }
  /// Number of parameters with class \p Cls.
  int countParams(ArgClass Cls) const;
};

/// Traits of function \p Id.
const FnTraits &fnTraits(FnId Id);

/// The whole table (for census walks).
const std::array<FnTraits, NumJniFunctions> &allFnTraits();

} // namespace jinn::jni

#endif // JINN_JNI_JNITRAITS_H
