//===- jni/JniEnvArrays.cpp - Default impls: strings and arrays ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String and array functions, including the pin/copy resource functions of
/// paper Figure 8. Two production quirks are reproduced deliberately:
///
///  - GetStringChars / GetStringCritical buffers are NOT NUL-terminated
///    (pitfall 8: "terminating Unicode strings").
///  - The Release* functions identify the resource by the buffer pointer and
///    ignore their object parameter, like Jikes RVM's ReleaseStringUTFChars;
///    this is what makes the Subversion destructor bug (§6.4.1) benign on
///    production VMs — a time bomb only a checker reports.
///
//===----------------------------------------------------------------------===//

#include "jni/EnvImplDetail.h"

#include "support/Format.h"

#include <cstring>

using namespace jinn;
using namespace jinn::jni;
using jinn::jvm::HeapObject;
using jinn::jvm::JType;
using jinn::jvm::Klass;
using jinn::jvm::ObjectId;
using jinn::jvm::ObjShape;
using jinn::jvm::PinKind;
using jinn::jvm::UndefinedOp;
using jinn::jvm::Value;

namespace {

/// Resolves a jstring to its heap object; non-strings flow through the
/// policy as invalid arguments.
HeapObject *stringOf(JNIEnv *Env, jstring Str, ObjectId *IdOut = nullptr) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  if (!Str) {
    V.undefined(T, UndefinedOp::InvalidArgument, "null jstring");
    return nullptr;
  }
  ObjectId Id = rtOf(Env).deref(Env, Str);
  if (T.Poisoned || Id.isNull())
    return nullptr;
  HeapObject *HO = V.heap().resolve(Id);
  if (!HO || HO->Shape != ObjShape::Str) {
    V.undefined(T, UndefinedOp::InvalidArgument,
                "object passed where java.lang.String expected");
    return nullptr;
  }
  if (IdOut)
    *IdOut = Id;
  return HO;
}

/// Resolves a primitive array handle; \p Expect == JType::Void accepts any
/// primitive element kind.
HeapObject *primArrayOf(JNIEnv *Env, jarray Array, JType Expect,
                        ObjectId *IdOut = nullptr) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  if (!Array) {
    V.undefined(T, UndefinedOp::InvalidArgument, "null array");
    return nullptr;
  }
  ObjectId Id = rtOf(Env).deref(Env, Array);
  if (T.Poisoned || Id.isNull())
    return nullptr;
  HeapObject *HO = V.heap().resolve(Id);
  if (!HO || HO->Shape != ObjShape::PrimArray ||
      (Expect != JType::Void && HO->ElemKind != Expect)) {
    V.undefined(T, UndefinedOp::InvalidArgument,
                "object is not a primitive array of the expected kind");
    return nullptr;
  }
  if (IdOut)
    *IdOut = Id;
  return HO;
}

size_t elemSize(JType Kind) {
  switch (Kind) {
  case JType::Boolean:
  case JType::Byte:
    return 1;
  case JType::Char:
  case JType::Short:
    return 2;
  case JType::Int:
  case JType::Float:
    return 4;
  case JType::Long:
  case JType::Double:
    return 8;
  default:
    return 0;
  }
}

/// Copies array payload (int64-backed) into a typed C buffer.
void copyElemsOut(const HeapObject &HO, void *Buf, size_t Start, size_t Len) {
  switch (HO.ElemKind) {
#define COPY_OUT(KIND, CT, EXPR)                                              \
  case JType::KIND: {                                                         \
    CT *Out = static_cast<CT *>(Buf);                                         \
    for (size_t I = 0; I < Len; ++I) {                                        \
      int64_t Raw = HO.PrimElems[Start + I];                                  \
      Out[I] = EXPR;                                                          \
    }                                                                         \
    break;                                                                    \
  }
    COPY_OUT(Boolean, jboolean, static_cast<jboolean>(Raw != 0))
    COPY_OUT(Byte, jbyte, static_cast<jbyte>(Raw))
    COPY_OUT(Char, jchar, static_cast<jchar>(Raw))
    COPY_OUT(Short, jshort, static_cast<jshort>(Raw))
    COPY_OUT(Int, jint, static_cast<jint>(Raw))
    COPY_OUT(Long, jlong, Raw)
    COPY_OUT(Float, jfloat, std::bit_cast<jfloat>(static_cast<uint32_t>(Raw)))
    COPY_OUT(Double, jdouble, std::bit_cast<jdouble>(Raw))
#undef COPY_OUT
  default:
    break;
  }
}

/// Copies a typed C buffer back into the array payload.
void copyElemsIn(HeapObject &HO, const void *Buf, size_t Start, size_t Len) {
  switch (HO.ElemKind) {
#define COPY_IN(KIND, CT, EXPR)                                               \
  case JType::KIND: {                                                         \
    const CT *In = static_cast<const CT *>(Buf);                              \
    for (size_t I = 0; I < Len; ++I) {                                        \
      CT V = In[I];                                                           \
      HO.PrimElems[Start + I] = EXPR;                                         \
    }                                                                         \
    break;                                                                    \
  }
    COPY_IN(Boolean, jboolean, V ? 1 : 0)
    COPY_IN(Byte, jbyte, V)
    COPY_IN(Char, jchar, V)
    COPY_IN(Short, jshort, V)
    COPY_IN(Int, jint, V)
    COPY_IN(Long, jlong, V)
    COPY_IN(Float, jfloat,
            static_cast<int64_t>(std::bit_cast<uint32_t>(V)))
    COPY_IN(Double, jdouble, std::bit_cast<int64_t>(V))
#undef COPY_IN
  default:
    break;
  }
}

/// Shared release path for Get<T>ArrayElements buffers.
void releaseElementsCommon(JNIEnv *Env, const void *Elems, jint Mode,
                           PinKind Kind, bool Critical) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  JniRuntime &Rt = rtOf(Env);
  std::unique_ptr<BufferRecord> Rec = Rt.takeBuffer(Elems);
  if (!Rec) {
    V.undefined(T, UndefinedOp::InvalidArgument,
                "release of an unknown or already-released buffer");
    return;
  }
  if (Mode != JNI_ABORT) {
    if (HeapObject *HO = V.heap().resolve(Rec->Target))
      if (HO->Shape == ObjShape::PrimArray &&
          HO->PrimElems.size() >= Rec->Len)
        copyElemsIn(*HO, Rec->Storage.get(), 0, Rec->Len);
  }
  if (Mode == JNI_COMMIT) {
    // Copy back without freeing: the buffer stays tracked and pinned.
    Rt.restoreBuffer(std::move(Rec));
    return;
  }
  V.unpinObject(T, Rec->Target, Kind);
  if (Critical && T.CriticalDepth > 0)
    T.CriticalDepth -= 1;
}

/// Shared release path for string char buffers.
void releaseStringCommon(JNIEnv *Env, const void *Chars, PinKind Kind,
                         bool Critical) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  std::unique_ptr<BufferRecord> Rec = rtOf(Env).takeBuffer(Chars);
  if (!Rec) {
    V.undefined(T, UndefinedOp::InvalidArgument,
                "release of an unknown or already-released string buffer");
    return;
  }
  V.unpinObject(T, Rec->Target, Kind);
  if (Critical && T.CriticalDepth > 0)
    T.CriticalDepth -= 1;
}

} // namespace

//===----------------------------------------------------------------------===
// Strings
//===----------------------------------------------------------------------===

jstring jinn::jni::impl_NewString(JNIEnv *Env, const jchar *UnicodeChars,
                                  jsize Len) {
  EnvGuard G(Env, FnId::NewString);
  if (!G.ok())
    return nullptr;
  if ((!UnicodeChars && Len > 0) || Len < 0) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "NewString with null chars or negative length");
    return nullptr;
  }
  std::u16string Chars(reinterpret_cast<const char16_t *>(UnicodeChars),
                       static_cast<size_t>(Len));
  return static_cast<jstring>(
      localRef(Env, G.vm().newStringUtf16(std::move(Chars))));
}

jsize jinn::jni::impl_GetStringLength(JNIEnv *Env, jstring Str) {
  EnvGuard G(Env, FnId::GetStringLength);
  if (!G.ok())
    return -1;
  HeapObject *HO = stringOf(Env, Str);
  return HO ? static_cast<jsize>(HO->Chars.size()) : -1;
}

const jchar *jinn::jni::impl_GetStringChars(JNIEnv *Env, jstring Str,
                                            jboolean *IsCopy) {
  EnvGuard G(Env, FnId::GetStringChars);
  if (!G.ok())
    return nullptr;
  ObjectId Id;
  HeapObject *HO = stringOf(Env, Str, &Id);
  if (!HO)
    return nullptr;
  size_t Len = HO->Chars.size();
  // Deliberately NOT NUL-terminated (pitfall 8).
  void *Buf = rtOf(Env).newBuffer(Id, PinKind::StringChars, JType::Char, Len,
                                  Len * sizeof(jchar));
  std::memcpy(Buf, HO->Chars.data(), Len * sizeof(jchar));
  G.vm().pinObject(G.thread(), Id, PinKind::StringChars);
  if (IsCopy)
    *IsCopy = JNI_TRUE;
  return static_cast<const jchar *>(Buf);
}

void jinn::jni::impl_ReleaseStringChars(JNIEnv *Env, jstring Str,
                                        const jchar *Chars) {
  EnvGuard G(Env, FnId::ReleaseStringChars);
  if (!G.ok())
    return;
  (void)Str; // Ignored, as in Jikes RVM (see file comment).
  releaseStringCommon(Env, Chars, PinKind::StringChars, /*Critical=*/false);
}

jstring jinn::jni::impl_NewStringUTF(JNIEnv *Env, const char *Bytes) {
  EnvGuard G(Env, FnId::NewStringUTF);
  if (!G.ok())
    return nullptr;
  if (!Bytes) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "NewStringUTF(null)");
    return nullptr;
  }
  return static_cast<jstring>(localRef(Env, G.vm().newString(Bytes)));
}

jsize jinn::jni::impl_GetStringUTFLength(JNIEnv *Env, jstring Str) {
  EnvGuard G(Env, FnId::GetStringUTFLength);
  if (!G.ok())
    return -1;
  HeapObject *HO = stringOf(Env, Str);
  if (!HO)
    return -1;
  return static_cast<jsize>(jvm::utf16ToUtf8(HO->Chars).size());
}

const char *jinn::jni::impl_GetStringUTFChars(JNIEnv *Env, jstring Str,
                                              jboolean *IsCopy) {
  EnvGuard G(Env, FnId::GetStringUTFChars);
  if (!G.ok())
    return nullptr;
  ObjectId Id;
  HeapObject *HO = stringOf(Env, Str, &Id);
  if (!HO)
    return nullptr;
  std::string Utf8 = jvm::utf16ToUtf8(HO->Chars);
  // UTF buffers ARE NUL-terminated, per the JNI specification.
  void *Buf = rtOf(Env).newBuffer(Id, PinKind::StringUtfChars, JType::Byte,
                                  Utf8.size(), Utf8.size() + 1);
  std::memcpy(Buf, Utf8.data(), Utf8.size());
  static_cast<char *>(Buf)[Utf8.size()] = '\0';
  G.vm().pinObject(G.thread(), Id, PinKind::StringUtfChars);
  if (IsCopy)
    *IsCopy = JNI_TRUE;
  return static_cast<const char *>(Buf);
}

void jinn::jni::impl_ReleaseStringUTFChars(JNIEnv *Env, jstring Str,
                                           const char *Utf) {
  EnvGuard G(Env, FnId::ReleaseStringUTFChars);
  if (!G.ok())
    return;
  (void)Str; // Ignored, as in Jikes RVM (see file comment).
  releaseStringCommon(Env, Utf, PinKind::StringUtfChars, /*Critical=*/false);
}

void jinn::jni::impl_GetStringRegion(JNIEnv *Env, jstring Str, jsize Start,
                                     jsize Len, jchar *Buf) {
  EnvGuard G(Env, FnId::GetStringRegion);
  if (!G.ok())
    return;
  HeapObject *HO = stringOf(Env, Str);
  if (!HO || !Buf)
    return;
  if (Start < 0 || Len < 0 ||
      static_cast<size_t>(Start) + static_cast<size_t>(Len) >
          HO->Chars.size()) {
    G.vm().throwNew(G.thread(), "java/lang/StringIndexOutOfBoundsException",
                    formatString("region [%d, %d) of string length %zu",
                                 Start, Start + Len, HO->Chars.size()));
    return;
  }
  std::memcpy(Buf, HO->Chars.data() + Start, Len * sizeof(jchar));
}

void jinn::jni::impl_GetStringUTFRegion(JNIEnv *Env, jstring Str, jsize Start,
                                        jsize Len, char *Buf) {
  EnvGuard G(Env, FnId::GetStringUTFRegion);
  if (!G.ok())
    return;
  HeapObject *HO = stringOf(Env, Str);
  if (!HO || !Buf)
    return;
  if (Start < 0 || Len < 0 ||
      static_cast<size_t>(Start) + static_cast<size_t>(Len) >
          HO->Chars.size()) {
    G.vm().throwNew(G.thread(), "java/lang/StringIndexOutOfBoundsException",
                    formatString("region [%d, %d) of string length %zu",
                                 Start, Start + Len, HO->Chars.size()));
    return;
  }
  std::string Utf8 = jvm::utf16ToUtf8(HO->Chars.substr(Start, Len));
  std::memcpy(Buf, Utf8.data(), Utf8.size());
}

const jchar *jinn::jni::impl_GetStringCritical(JNIEnv *Env, jstring Str,
                                               jboolean *IsCopy) {
  EnvGuard G(Env, FnId::GetStringCritical);
  if (!G.ok())
    return nullptr;
  ObjectId Id;
  HeapObject *HO = stringOf(Env, Str, &Id);
  if (!HO)
    return nullptr;
  size_t Len = HO->Chars.size();
  void *Buf = rtOf(Env).newBuffer(Id, PinKind::CriticalString, JType::Char,
                                  Len, Len * sizeof(jchar));
  std::memcpy(Buf, HO->Chars.data(), Len * sizeof(jchar));
  G.vm().pinObject(G.thread(), Id, PinKind::CriticalString);
  G.thread().CriticalDepth += 1;
  if (IsCopy)
    *IsCopy = JNI_TRUE;
  return static_cast<const jchar *>(Buf);
}

void jinn::jni::impl_ReleaseStringCritical(JNIEnv *Env, jstring Str,
                                           const jchar *Carray) {
  EnvGuard G(Env, FnId::ReleaseStringCritical);
  if (!G.ok())
    return;
  (void)Str;
  releaseStringCommon(Env, Carray, PinKind::CriticalString,
                      /*Critical=*/true);
}

//===----------------------------------------------------------------------===
// Object arrays and length
//===----------------------------------------------------------------------===

jsize jinn::jni::impl_GetArrayLength(JNIEnv *Env, jarray Array) {
  EnvGuard G(Env, FnId::GetArrayLength);
  if (!G.ok())
    return -1;
  if (!Array) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "GetArrayLength(null)");
    return -1;
  }
  ObjectId Id = rtOf(Env).deref(Env, Array);
  if (G.thread().Poisoned || Id.isNull())
    return -1;
  HeapObject *HO = G.vm().heap().resolve(Id);
  if (!HO)
    return -1;
  if (HO->Shape == ObjShape::PrimArray)
    return static_cast<jsize>(HO->PrimElems.size());
  if (HO->Shape == ObjShape::ObjArray)
    return static_cast<jsize>(HO->ObjElems.size());
  G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                   "GetArrayLength: object is not an array");
  return -1;
}

jobjectArray jinn::jni::impl_NewObjectArray(JNIEnv *Env, jsize Length,
                                            jclass ElementClass,
                                            jobject InitialElement) {
  EnvGuard G(Env, FnId::NewObjectArray);
  if (!G.ok())
    return nullptr;
  Klass *Elem = classOf(Env, ElementClass);
  if (!Elem)
    return nullptr;
  if (Length < 0) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "NewObjectArray with negative length");
    return nullptr;
  }
  ObjectId Arr = G.vm().newObjArray(Elem, static_cast<size_t>(Length));
  if (InitialElement) {
    ObjectId Init = rtOf(Env).deref(Env, InitialElement);
    HeapObject *HO = G.vm().heap().resolve(Arr);
    for (ObjectId &Slot : HO->ObjElems)
      Slot = Init;
  }
  return static_cast<jobjectArray>(localRef(Env, Arr));
}

namespace {

HeapObject *objArrayOf(JNIEnv *Env, jobjectArray Array,
                       ObjectId *IdOut = nullptr) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  if (!Array) {
    V.undefined(T, UndefinedOp::InvalidArgument, "null object array");
    return nullptr;
  }
  ObjectId Id = rtOf(Env).deref(Env, Array);
  if (T.Poisoned || Id.isNull())
    return nullptr;
  HeapObject *HO = V.heap().resolve(Id);
  if (!HO || HO->Shape != ObjShape::ObjArray) {
    V.undefined(T, UndefinedOp::InvalidArgument,
                "object is not an object array");
    return nullptr;
  }
  if (IdOut)
    *IdOut = Id;
  return HO;
}

} // namespace

jobject jinn::jni::impl_GetObjectArrayElement(JNIEnv *Env, jobjectArray Array,
                                              jsize Index) {
  EnvGuard G(Env, FnId::GetObjectArrayElement);
  if (!G.ok())
    return nullptr;
  HeapObject *HO = objArrayOf(Env, Array);
  if (!HO)
    return nullptr;
  if (Index < 0 || static_cast<size_t>(Index) >= HO->ObjElems.size()) {
    G.vm().throwNew(G.thread(), "java/lang/ArrayIndexOutOfBoundsException",
                    formatString("index %d of array length %zu", Index,
                                 HO->ObjElems.size()));
    return nullptr;
  }
  return localRef(Env, HO->ObjElems[Index]);
}

void jinn::jni::impl_SetObjectArrayElement(JNIEnv *Env, jobjectArray Array,
                                           jsize Index, jobject Val) {
  EnvGuard G(Env, FnId::SetObjectArrayElement);
  if (!G.ok())
    return;
  HeapObject *HO = objArrayOf(Env, Array);
  if (!HO)
    return;
  if (Index < 0 || static_cast<size_t>(Index) >= HO->ObjElems.size()) {
    G.vm().throwNew(G.thread(), "java/lang/ArrayIndexOutOfBoundsException",
                    formatString("index %d of array length %zu", Index,
                                 HO->ObjElems.size()));
    return;
  }
  ObjectId Elem = rtOf(Env).deref(Env, Val);
  if (G.thread().Poisoned)
    return;
  if (!Elem.isNull()) {
    // Array store check against the element type.
    const jvm::TypeDesc &ElemType = HO->Kl->elementType();
    if (ElemType.isReference() && !ElemType.isArray()) {
      Klass *Want = G.vm().findClass(ElemType.ClassName);
      Klass *Have = G.vm().klassOf(Elem);
      if (Want && Have && !Have->isSubclassOf(Want)) {
        G.vm().throwNew(G.thread(), "java/lang/ArrayStoreException",
                        Have->name());
        return;
      }
    }
  }
  HO->ObjElems[Index] = Elem;
  // Incremental-mark write barrier: the array may already be black.
  if (!Elem.isNull())
    G.vm().heap().recordRefStore(rtOf(Env).deref(Env, Array));
}

//===----------------------------------------------------------------------===
// Primitive arrays (eight families via one macro each)
//===----------------------------------------------------------------------===

#define DEF_PRIM_ARRAY(TName, LName, CType, KindEnum)                         \
  j##LName##Array jinn::jni::impl_New##TName##Array(JNIEnv *Env,              \
                                                    jsize Length) {           \
    EnvGuard G(Env, FnId::New##TName##Array);                                 \
    if (!G.ok())                                                              \
      return nullptr;                                                         \
    if (Length < 0) {                                                         \
      G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,              \
                       "negative array length");                              \
      return nullptr;                                                         \
    }                                                                         \
    ObjectId Arr =                                                            \
        G.vm().newPrimArray(KindEnum, static_cast<size_t>(Length));           \
    return static_cast<j##LName##Array>(localRef(Env, Arr));                  \
  }                                                                           \
                                                                              \
  CType *jinn::jni::impl_Get##TName##ArrayElements(                           \
      JNIEnv *Env, j##LName##Array Array, jboolean *IsCopy) {                 \
    EnvGuard G(Env, FnId::Get##TName##ArrayElements);                         \
    if (!G.ok())                                                              \
      return nullptr;                                                         \
    ObjectId Id;                                                              \
    HeapObject *HO = primArrayOf(Env, Array, KindEnum, &Id);                  \
    if (!HO)                                                                  \
      return nullptr;                                                         \
    size_t Len = HO->PrimElems.size();                                        \
    void *Buf = rtOf(Env).newBuffer(Id, PinKind::ArrayElements, KindEnum,     \
                                    Len, Len * sizeof(CType));                \
    copyElemsOut(*HO, Buf, 0, Len);                                           \
    G.vm().pinObject(G.thread(), Id, PinKind::ArrayElements);                 \
    if (IsCopy)                                                               \
      *IsCopy = JNI_TRUE;                                                     \
    return static_cast<CType *>(Buf);                                         \
  }                                                                           \
                                                                              \
  void jinn::jni::impl_Release##TName##ArrayElements(                         \
      JNIEnv *Env, j##LName##Array Array, CType *Elems, jint Mode) {          \
    EnvGuard G(Env, FnId::Release##TName##ArrayElements);                     \
    if (!G.ok())                                                              \
      return;                                                                 \
    (void)Array; /* ignored, as in Jikes RVM (see file comment) */            \
    releaseElementsCommon(Env, Elems, Mode, PinKind::ArrayElements,           \
                          /*Critical=*/false);                                \
  }                                                                           \
                                                                              \
  void jinn::jni::impl_Get##TName##ArrayRegion(                               \
      JNIEnv *Env, j##LName##Array Array, jsize Start, jsize Len,             \
      CType *Buf) {                                                           \
    EnvGuard G(Env, FnId::Get##TName##ArrayRegion);                           \
    if (!G.ok())                                                              \
      return;                                                                 \
    HeapObject *HO = primArrayOf(Env, Array, KindEnum);                       \
    if (!HO || !Buf)                                                          \
      return;                                                                 \
    if (Start < 0 || Len < 0 ||                                               \
        static_cast<size_t>(Start) + static_cast<size_t>(Len) >               \
            HO->PrimElems.size()) {                                           \
      G.vm().throwNew(G.thread(),                                             \
                      "java/lang/ArrayIndexOutOfBoundsException",             \
                      "array region out of bounds");                          \
      return;                                                                 \
    }                                                                         \
    copyElemsOut(*HO, Buf, static_cast<size_t>(Start),                        \
                 static_cast<size_t>(Len));                                   \
  }                                                                           \
                                                                              \
  void jinn::jni::impl_Set##TName##ArrayRegion(                               \
      JNIEnv *Env, j##LName##Array Array, jsize Start, jsize Len,             \
      const CType *Buf) {                                                     \
    EnvGuard G(Env, FnId::Set##TName##ArrayRegion);                           \
    if (!G.ok())                                                              \
      return;                                                                 \
    HeapObject *HO = primArrayOf(Env, Array, KindEnum);                       \
    if (!HO || !Buf)                                                          \
      return;                                                                 \
    if (Start < 0 || Len < 0 ||                                               \
        static_cast<size_t>(Start) + static_cast<size_t>(Len) >               \
            HO->PrimElems.size()) {                                           \
      G.vm().throwNew(G.thread(),                                             \
                      "java/lang/ArrayIndexOutOfBoundsException",             \
                      "array region out of bounds");                          \
      return;                                                                 \
    }                                                                         \
    copyElemsIn(*HO, Buf, static_cast<size_t>(Start),                         \
                static_cast<size_t>(Len));                                    \
  }

DEF_PRIM_ARRAY(Boolean, boolean, jboolean, JType::Boolean)
DEF_PRIM_ARRAY(Byte, byte, jbyte, JType::Byte)
DEF_PRIM_ARRAY(Char, char, jchar, JType::Char)
DEF_PRIM_ARRAY(Short, short, jshort, JType::Short)
DEF_PRIM_ARRAY(Int, int, jint, JType::Int)
DEF_PRIM_ARRAY(Long, long, jlong, JType::Long)
DEF_PRIM_ARRAY(Float, float, jfloat, JType::Float)
DEF_PRIM_ARRAY(Double, double, jdouble, JType::Double)

#undef DEF_PRIM_ARRAY

//===----------------------------------------------------------------------===
// Critical array access
//===----------------------------------------------------------------------===

void *jinn::jni::impl_GetPrimitiveArrayCritical(JNIEnv *Env, jarray Array,
                                                jboolean *IsCopy) {
  EnvGuard G(Env, FnId::GetPrimitiveArrayCritical);
  if (!G.ok())
    return nullptr;
  ObjectId Id;
  HeapObject *HO = primArrayOf(Env, Array, JType::Void, &Id);
  if (!HO)
    return nullptr;
  size_t Len = HO->PrimElems.size();
  size_t Bytes = Len * elemSize(HO->ElemKind);
  void *Buf = rtOf(Env).newBuffer(Id, PinKind::CriticalArray, HO->ElemKind,
                                  Len, Bytes);
  copyElemsOut(*HO, Buf, 0, Len);
  G.vm().pinObject(G.thread(), Id, PinKind::CriticalArray);
  G.thread().CriticalDepth += 1;
  if (IsCopy)
    *IsCopy = JNI_TRUE;
  return Buf;
}

void jinn::jni::impl_ReleasePrimitiveArrayCritical(JNIEnv *Env, jarray Array,
                                                   void *Carray, jint Mode) {
  EnvGuard G(Env, FnId::ReleasePrimitiveArrayCritical);
  if (!G.ok())
    return;
  (void)Array;
  releaseElementsCommon(Env, Carray, Mode, PinKind::CriticalArray,
                        /*Critical=*/true);
}
