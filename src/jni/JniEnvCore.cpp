//===- jni/JniEnvCore.cpp - Default impls: classes, refs, exceptions -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Default implementations of the class, reference, exception, monitor,
/// registration, and miscellaneous JNI functions. These model a *production*
/// JVM: no checker diagnostics, only the undefined-behavior policy of
/// Table 1's default columns when user code leaves the specification.
///
//===----------------------------------------------------------------------===//

#include "jni/EnvImplDetail.h"

#include "mutate/Mutation.h"

#include "support/Format.h"

using namespace jinn;
using namespace jinn::jni;
using jinn::jvm::JType;
using jinn::jvm::Klass;
using jinn::jvm::ObjectId;
using jinn::jvm::ProductionOutcome;
using jinn::jvm::UndefinedOp;
using jinn::jvm::Value;

//===----------------------------------------------------------------------===
// Shared helpers
//===----------------------------------------------------------------------===

EnvGuard::EnvGuard(JNIEnv *Env, FnId Id)
    : Mutator(*Env->vm), Thread(Env->thread), Vm(Env->vm), Ok(false) {
  if (Vm->isShutdown() || Thread->Poisoned)
    return;
  const FnTraits &Traits = fnTraits(Id);
  JniRuntime &Rt = rtOf(Env);

  if (jvm::JThread *Cur = Rt.currentThread(); Cur && Cur != Thread) {
    ProductionOutcome Out = Vm->undefined(
        *Cur, UndefinedOp::WrongThreadEnv,
        formatString("JNIEnv of thread %u used on thread %u in %s",
                     Thread->id(), Cur->id(), fnName(Id)));
    if (Out != ProductionOutcome::Ignore)
      return;
  }
  if (Thread->CriticalDepth > 0 && !Traits.CriticalAllowed) {
    // A production VM would likely deadlock here (GC disabled, pitfall 16).
    Vm->undefined(*Thread, UndefinedOp::CriticalRegionCall, fnName(Id));
    return;
  }
  if (!Thread->Pending.isNull() && !Traits.ExceptionOblivious) {
    ProductionOutcome Out = Vm->undefined(
        *Thread, UndefinedOp::PendingExceptionUse, fnName(Id));
    if (Out != ProductionOutcome::Ignore)
      return;
  }
  Ok = true;
}

Klass *jinn::jni::classOf(JNIEnv *Env, jclass Cls) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  if (!Cls) {
    V.undefined(T, UndefinedOp::InvalidArgument, "null jclass");
    return nullptr;
  }
  ObjectId Id = rtOf(Env).deref(Env, Cls);
  if (T.Poisoned || Id.isNull())
    return nullptr;
  Klass *Kl = V.klassFromMirror(Id);
  if (!Kl) {
    V.undefined(T, UndefinedOp::ClassObjectConfusion,
                "object passed where java.lang.Class expected");
    return nullptr;
  }
  return Kl;
}

jvm::MethodInfo *jinn::jni::methodOf(JNIEnv *Env, jmethodID Id) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  if (!Id) {
    V.undefined(T, UndefinedOp::InvalidArgument, "null jmethodID");
    return nullptr;
  }
  if (!V.isMethodId(Id)) {
    V.undefined(T, UndefinedOp::InvalidArgument,
                "value is not a valid jmethodID");
    return nullptr;
  }
  return idToMethod(Id);
}

jvm::FieldInfo *jinn::jni::fieldOf(JNIEnv *Env, jfieldID Id) {
  jvm::Vm &V = vmOf(Env);
  jvm::JThread &T = threadOf(Env);
  if (!Id) {
    V.undefined(T, UndefinedOp::InvalidArgument, "null jfieldID");
    return nullptr;
  }
  if (!V.isFieldId(Id)) {
    V.undefined(T, UndefinedOp::InvalidArgument,
                "value is not a valid jfieldID");
    return nullptr;
  }
  return idToField(Id);
}

jobject jinn::jni::localRef(JNIEnv *Env, ObjectId Target) {
  return rtOf(Env).makeLocal(threadOf(Env), Target);
}

std::vector<Value> jinn::jni::jvaluesToValues(JNIEnv *Env,
                                              const jvm::MethodDesc &Sig,
                                              const jvalue *Args) {
  std::vector<Value> Out;
  Out.reserve(Sig.Params.size());
  for (size_t I = 0; I < Sig.Params.size(); ++I) {
    const jvm::TypeDesc &Param = Sig.Params[I];
    if (!Args) {
      Out.push_back(jvm::defaultValueFor(Param.Kind));
      continue;
    }
    if (Param.isReference())
      Out.push_back(Value::makeRef(rtOf(Env).deref(Env, Args[I].l)));
    else
      Out.push_back(jvalueToScalar(Param.Kind, Args[I]));
  }
  return Out;
}

//===----------------------------------------------------------------------===
// Version, classes
//===----------------------------------------------------------------------===

jint jinn::jni::impl_GetVersion(JNIEnv *Env) {
  EnvGuard G(Env, FnId::GetVersion);
  return JNI_VERSION_1_6;
}

jclass jinn::jni::impl_DefineClass(JNIEnv *Env, const char *Name,
                                   jobject Loader, const jbyte *Buf,
                                   jsize BufLen) {
  EnvGuard G(Env, FnId::DefineClass);
  if (!G.ok())
    return nullptr;
  (void)Loader;
  (void)Buf;
  (void)BufLen;
  // The simulator has no bytecode parser; classes are defined via the VM's
  // declarative interface. DefineClass reports the class as unloadable.
  G.vm().throwNew(G.thread(), "java/lang/NoClassDefFoundError",
                  formatString("DefineClass unsupported by simulator: %s",
                               Name ? Name : "<null>"));
  return nullptr;
}

jclass jinn::jni::impl_FindClass(JNIEnv *Env, const char *Name) {
  EnvGuard G(Env, FnId::FindClass);
  if (!G.ok())
    return nullptr;
  if (!Name) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "FindClass(null)");
    return nullptr;
  }
  Klass *Kl = G.vm().findClass(Name);
  if (!Kl) {
    G.vm().throwNew(G.thread(), "java/lang/NoClassDefFoundError", Name);
    return nullptr;
  }
  return static_cast<jclass>(localRef(Env, Kl->Mirror));
}

jclass jinn::jni::impl_GetSuperclass(JNIEnv *Env, jclass Cls) {
  EnvGuard G(Env, FnId::GetSuperclass);
  if (!G.ok())
    return nullptr;
  Klass *Kl = classOf(Env, Cls);
  if (!Kl || !Kl->super())
    return nullptr;
  return static_cast<jclass>(localRef(Env, Kl->super()->Mirror));
}

jboolean jinn::jni::impl_IsAssignableFrom(JNIEnv *Env, jclass Sub,
                                          jclass Sup) {
  EnvGuard G(Env, FnId::IsAssignableFrom);
  if (!G.ok())
    return JNI_FALSE;
  Klass *SubK = classOf(Env, Sub);
  Klass *SupK = classOf(Env, Sup);
  if (!SubK || !SupK)
    return JNI_FALSE;
  return SubK->isSubclassOf(SupK) ? JNI_TRUE : JNI_FALSE;
}

//===----------------------------------------------------------------------===
// Reflection bridges
//===----------------------------------------------------------------------===

namespace {

/// Reads the hidden "ptr" long field of a reflect object.
int64_t reflectPtrOf(JNIEnv *Env, ObjectId Obj) {
  jvm::Vm &V = vmOf(Env);
  Klass *Kl = V.klassOf(Obj);
  if (!Kl)
    return 0;
  jvm::FieldInfo *F = Kl->findField("ptr", "J", false);
  if (!F)
    return 0;
  jvm::HeapObject *HO = V.heap().resolve(Obj);
  return HO->Fields[F->Slot].I;
}

ObjectId makeReflect(JNIEnv *Env, const char *ClassName, const void *Ptr) {
  jvm::Vm &V = vmOf(Env);
  Klass *Kl = V.findClass(ClassName);
  if (!Kl)
    return ObjectId();
  ObjectId Obj = V.newObject(Kl);
  jvm::FieldInfo *F = Kl->findField("ptr", "J", false);
  if (F)
    V.heap().resolve(Obj)->Fields[F->Slot] =
        Value::makeLong(static_cast<int64_t>(
            reinterpret_cast<uintptr_t>(Ptr)));
  return Obj;
}

} // namespace

jmethodID jinn::jni::impl_FromReflectedMethod(JNIEnv *Env, jobject Method) {
  EnvGuard G(Env, FnId::FromReflectedMethod);
  if (!G.ok())
    return nullptr;
  ObjectId Obj = rtOf(Env).deref(Env, Method);
  if (Obj.isNull())
    return nullptr;
  Klass *Kl = G.vm().klassOf(Obj);
  if (!Kl || (Kl->name() != "java/lang/reflect/Method" &&
              Kl->name() != "java/lang/reflect/Constructor")) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "FromReflectedMethod: not a Method/Constructor");
    return nullptr;
  }
  return reinterpret_cast<jmethodID>(
      static_cast<uintptr_t>(reflectPtrOf(Env, Obj)));
}

jfieldID jinn::jni::impl_FromReflectedField(JNIEnv *Env, jobject Field) {
  EnvGuard G(Env, FnId::FromReflectedField);
  if (!G.ok())
    return nullptr;
  ObjectId Obj = rtOf(Env).deref(Env, Field);
  if (Obj.isNull())
    return nullptr;
  Klass *Kl = G.vm().klassOf(Obj);
  if (!Kl || Kl->name() != "java/lang/reflect/Field") {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "FromReflectedField: not a Field");
    return nullptr;
  }
  return reinterpret_cast<jfieldID>(
      static_cast<uintptr_t>(reflectPtrOf(Env, Obj)));
}

jobject jinn::jni::impl_ToReflectedMethod(JNIEnv *Env, jclass Cls,
                                          jmethodID MethodId,
                                          jboolean IsStatic) {
  EnvGuard G(Env, FnId::ToReflectedMethod);
  if (!G.ok())
    return nullptr;
  (void)IsStatic;
  classOf(Env, Cls);
  jvm::MethodInfo *M = methodOf(Env, MethodId);
  if (!M)
    return nullptr;
  const char *ClassName = M->Name == "<init>"
                              ? "java/lang/reflect/Constructor"
                              : "java/lang/reflect/Method";
  return localRef(Env, makeReflect(Env, ClassName, M));
}

jobject jinn::jni::impl_ToReflectedField(JNIEnv *Env, jclass Cls,
                                         jfieldID FieldId,
                                         jboolean IsStatic) {
  EnvGuard G(Env, FnId::ToReflectedField);
  if (!G.ok())
    return nullptr;
  (void)IsStatic;
  classOf(Env, Cls);
  jvm::FieldInfo *F = fieldOf(Env, FieldId);
  if (!F)
    return nullptr;
  return localRef(Env, makeReflect(Env, "java/lang/reflect/Field", F));
}

//===----------------------------------------------------------------------===
// Exceptions
//===----------------------------------------------------------------------===

jint jinn::jni::impl_Throw(JNIEnv *Env, jthrowable Obj) {
  EnvGuard G(Env, FnId::Throw);
  if (!G.ok())
    return JNI_ERR;
  ObjectId Ex = rtOf(Env).deref(Env, Obj);
  if (Ex.isNull()) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument, "Throw(null)");
    return JNI_ERR;
  }
  Klass *Kl = G.vm().klassOf(Ex);
  if (!Kl || !Kl->isSubclassOf(G.vm().throwableClass())) {
    G.vm().undefined(G.thread(), UndefinedOp::ClassObjectConfusion,
                     "Throw: object is not a Throwable");
    return JNI_ERR;
  }
  G.thread().Pending = Ex;
  return JNI_OK;
}

jint jinn::jni::impl_ThrowNew(JNIEnv *Env, jclass Cls, const char *Message) {
  EnvGuard G(Env, FnId::ThrowNew);
  if (!G.ok())
    return JNI_ERR;
  Klass *Kl = classOf(Env, Cls);
  if (!Kl)
    return JNI_ERR;
  G.vm().throwNew(G.thread(), Kl->name().c_str(),
                  Message ? Message : "");
  return JNI_OK;
}

jthrowable jinn::jni::impl_ExceptionOccurred(JNIEnv *Env) {
  EnvGuard G(Env, FnId::ExceptionOccurred);
  if (!G.ok())
    return nullptr;
  if (G.thread().Pending.isNull())
    return nullptr;
  return static_cast<jthrowable>(localRef(Env, G.thread().Pending));
}

void jinn::jni::impl_ExceptionDescribe(JNIEnv *Env) {
  EnvGuard G(Env, FnId::ExceptionDescribe);
  if (!G.ok())
    return;
  if (G.thread().Pending.isNull())
    return;
  G.vm().diags().report(IncidentKind::Note, "jvm",
                        G.vm().describeThrowable(G.thread().Pending));
}

void jinn::jni::impl_ExceptionClear(JNIEnv *Env) {
  EnvGuard G(Env, FnId::ExceptionClear);
  if (!G.ok())
    return;
  G.thread().Pending = ObjectId();
}

jboolean jinn::jni::impl_ExceptionCheck(JNIEnv *Env) {
  EnvGuard G(Env, FnId::ExceptionCheck);
  if (!G.ok())
    return JNI_FALSE;
  return G.thread().Pending.isNull() ? JNI_FALSE : JNI_TRUE;
}

void jinn::jni::impl_FatalError(JNIEnv *Env, const char *Msg) {
  jvm::Vm &V = vmOf(Env);
  V.diags().report(IncidentKind::FatalError, "jvm",
                   formatString("FatalError: %s", Msg ? Msg : ""));
  threadOf(Env).Poisoned = true;
}

//===----------------------------------------------------------------------===
// Local/global reference management
//===----------------------------------------------------------------------===

jint jinn::jni::impl_PushLocalFrame(JNIEnv *Env, jint Capacity) {
  EnvGuard G(Env, FnId::PushLocalFrame);
  if (!G.ok())
    return JNI_ERR;
  if (Capacity < 0)
    Capacity = 0;
  G.thread().pushFrame(static_cast<uint32_t>(Capacity), /*Explicit=*/true);
  return JNI_OK;
}

jobject jinn::jni::impl_PopLocalFrame(JNIEnv *Env, jobject Result) {
  EnvGuard G(Env, FnId::PopLocalFrame);
  if (!G.ok())
    return nullptr;
  jvm::JThread &T = G.thread();
  // Resolve the escaping result before its frame dies.
  ObjectId Escapee = Result ? rtOf(Env).deref(Env, Result) : ObjectId();
  if (T.frameDepth() <= 1) {
    G.vm().undefined(T, UndefinedOp::InvalidArgument,
                     "PopLocalFrame with no frame to pop");
    return nullptr;
  }
  T.popFrame();
  return localRef(Env, Escapee);
}

jobject jinn::jni::impl_NewGlobalRef(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::NewGlobalRef);
  if (!G.ok())
    return nullptr;
  ObjectId Target = rtOf(Env).deref(Env, Obj);
  if (Target.isNull())
    return nullptr;
  return wordToRef(G.vm().newGlobalRef(Target, /*Weak=*/false));
}

void jinn::jni::impl_DeleteGlobalRef(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::DeleteGlobalRef);
  if (!G.ok() || !Obj)
    return;
  std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(handleWord(Obj));
  if (!Bits || Bits->Kind != jvm::RefKind::Global) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "DeleteGlobalRef: not a global reference");
    return;
  }
  if (!G.vm().deleteGlobalRef(*Bits))
    G.vm().undefined(G.thread(), UndefinedOp::DanglingGlobalRef,
                     "DeleteGlobalRef: already deleted");
}

void jinn::jni::impl_DeleteLocalRef(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::DeleteLocalRef);
  if (!G.ok() || !Obj)
    return;
  std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(handleWord(Obj));
  if (!Bits || Bits->Kind != jvm::RefKind::Local ||
      Bits->Thread != G.thread().id()) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "DeleteLocalRef: not a local reference of this thread");
    return;
  }
  if (!G.thread().deleteLocal(*Bits)) {
    if (mutate::active(mutate::M::JniDeleteDeadRefSilent))
      return; // mutant: the double delete goes unnoticed
    G.vm().undefined(G.thread(), UndefinedOp::DanglingLocalRef,
                     "DeleteLocalRef: reference already dead");
  }
}

jboolean jinn::jni::impl_IsSameObject(JNIEnv *Env, jobject Obj1,
                                      jobject Obj2) {
  EnvGuard G(Env, FnId::IsSameObject);
  if (!G.ok())
    return JNI_FALSE;
  ObjectId A = rtOf(Env).deref(Env, Obj1);
  ObjectId B = rtOf(Env).deref(Env, Obj2);
  return A == B ? JNI_TRUE : JNI_FALSE;
}

jobject jinn::jni::impl_NewLocalRef(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::NewLocalRef);
  if (!G.ok())
    return nullptr;
  return localRef(Env, rtOf(Env).deref(Env, Obj));
}

jint jinn::jni::impl_EnsureLocalCapacity(JNIEnv *Env, jint Capacity) {
  EnvGuard G(Env, FnId::EnsureLocalCapacity);
  if (!G.ok())
    return JNI_ERR;
  if (Capacity < 0)
    return mutate::active(mutate::M::JniEnsureNegativeAccepted) ? JNI_OK
                                                                : JNI_ERR;
  return G.thread().ensureLocalCapacity(static_cast<uint32_t>(Capacity))
             ? JNI_OK
             : JNI_ERR;
}

jobject jinn::jni::impl_NewWeakGlobalRef(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::NewWeakGlobalRef);
  if (!G.ok())
    return nullptr;
  ObjectId Target = rtOf(Env).deref(Env, Obj);
  if (Target.isNull())
    return nullptr;
  return wordToRef(G.vm().newGlobalRef(Target, /*Weak=*/true));
}

void jinn::jni::impl_DeleteWeakGlobalRef(JNIEnv *Env, jweak Obj) {
  EnvGuard G(Env, FnId::DeleteWeakGlobalRef);
  if (!G.ok() || !Obj)
    return;
  std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(handleWord(Obj));
  if (!Bits || Bits->Kind != jvm::RefKind::WeakGlobal) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "DeleteWeakGlobalRef: not a weak global reference");
    return;
  }
  if (!G.vm().deleteGlobalRef(*Bits))
    G.vm().undefined(G.thread(), UndefinedOp::DanglingGlobalRef,
                     "DeleteWeakGlobalRef: already deleted");
}

jobjectRefType jinn::jni::impl_GetObjectRefType(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::GetObjectRefType);
  if (!G.ok() || !Obj)
    return JNIInvalidRefType;
  std::optional<jvm::HandleBits> Bits = jvm::decodeHandle(handleWord(Obj));
  if (!Bits)
    return JNIInvalidRefType;
  switch (Bits->Kind) {
  case jvm::RefKind::Local: {
    jvm::JThread *Owner = G.vm().threadById(Bits->Thread);
    if (Owner &&
        Owner->localRefState(*Bits) == jvm::LocalRefState::Live)
      return JNILocalRefType;
    return JNIInvalidRefType;
  }
  case jvm::RefKind::Global:
    return G.vm().globalRefState(*Bits) == jvm::LocalRefState::Live
               ? JNIGlobalRefType
               : JNIInvalidRefType;
  case jvm::RefKind::WeakGlobal:
    return G.vm().globalRefState(*Bits) == jvm::LocalRefState::Live
               ? JNIWeakGlobalRefType
               : JNIInvalidRefType;
  case jvm::RefKind::Null:
    break;
  }
  return JNIInvalidRefType;
}

//===----------------------------------------------------------------------===
// Object basics
//===----------------------------------------------------------------------===

jobject jinn::jni::impl_AllocObject(JNIEnv *Env, jclass Cls) {
  EnvGuard G(Env, FnId::AllocObject);
  if (!G.ok())
    return nullptr;
  Klass *Kl = classOf(Env, Cls);
  if (!Kl)
    return nullptr;
  if (Kl->isArray()) {
    G.vm().throwNew(G.thread(), "java/lang/InstantiationError", Kl->name());
    return nullptr;
  }
  return localRef(Env, G.vm().newObject(Kl));
}

jclass jinn::jni::impl_GetObjectClass(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::GetObjectClass);
  if (!G.ok())
    return nullptr;
  ObjectId Id = rtOf(Env).deref(Env, Obj);
  if (Id.isNull()) {
    G.vm().undefined(G.thread(), UndefinedOp::InvalidArgument,
                     "GetObjectClass(null)");
    return nullptr;
  }
  Klass *Kl = G.vm().klassOf(Id);
  return Kl ? static_cast<jclass>(localRef(Env, Kl->Mirror)) : nullptr;
}

jboolean jinn::jni::impl_IsInstanceOf(JNIEnv *Env, jobject Obj, jclass Cls) {
  EnvGuard G(Env, FnId::IsInstanceOf);
  if (!G.ok())
    return JNI_FALSE;
  Klass *Want = classOf(Env, Cls);
  if (!Want)
    return JNI_FALSE;
  ObjectId Id = rtOf(Env).deref(Env, Obj);
  if (Id.isNull())
    return JNI_TRUE; // null is an instance of every class, as in JNI
  Klass *Have = G.vm().klassOf(Id);
  return Have && Have->isSubclassOf(Want) ? JNI_TRUE : JNI_FALSE;
}

//===----------------------------------------------------------------------===
// RegisterNatives, monitors, JavaVM
//===----------------------------------------------------------------------===

jint jinn::jni::impl_RegisterNatives(JNIEnv *Env, jclass Cls,
                                     const JNINativeMethod *Methods,
                                     jint NMethods) {
  EnvGuard G(Env, FnId::RegisterNatives);
  if (!G.ok())
    return JNI_ERR;
  Klass *Kl = classOf(Env, Cls);
  if (!Kl || !Methods)
    return JNI_ERR;
  for (jint I = 0; I < NMethods; ++I) {
    const JNINativeMethod &M = Methods[I];
    auto Raw = reinterpret_cast<jvalue (*)(JNIEnv *, jobject,
                                           const jvalue *)>(M.fnPtr);
    if (!rtOf(Env).registerNative(Kl, M.name, M.signature,
                                  JniNativeStdFn(Raw))) {
      G.vm().throwNew(G.thread(), "java/lang/NoSuchMethodError",
                      formatString("%s.%s%s", Kl->name().c_str(), M.name,
                                   M.signature));
      return JNI_ERR;
    }
  }
  return JNI_OK;
}

jint jinn::jni::impl_UnregisterNatives(JNIEnv *Env, jclass Cls) {
  EnvGuard G(Env, FnId::UnregisterNatives);
  if (!G.ok())
    return JNI_ERR;
  Klass *Kl = classOf(Env, Cls);
  return Kl && rtOf(Env).unregisterNatives(Kl) ? JNI_OK : JNI_ERR;
}

jint jinn::jni::impl_MonitorEnter(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::MonitorEnter);
  if (!G.ok())
    return JNI_ERR;
  ObjectId Id = rtOf(Env).deref(Env, Obj);
  if (Id.isNull()) {
    G.vm().throwNew(G.thread(), "java/lang/NullPointerException",
                    "MonitorEnter(null)");
    return JNI_ERR;
  }
  switch (G.vm().monitorEnter(G.thread(), Id)) {
  case jvm::MonitorResult::Ok:
    return JNI_OK;
  case jvm::MonitorResult::WouldBlock:
    // The simulator cannot block a logical thread; contention surfaces as
    // an error return plus the recorded contention note.
    return JNI_ERR;
  case jvm::MonitorResult::IllegalState:
    return JNI_ERR;
  }
  return JNI_ERR;
}

jint jinn::jni::impl_MonitorExit(JNIEnv *Env, jobject Obj) {
  EnvGuard G(Env, FnId::MonitorExit);
  if (!G.ok())
    return JNI_ERR;
  ObjectId Id = rtOf(Env).deref(Env, Obj);
  if (Id.isNull()) {
    G.vm().throwNew(G.thread(), "java/lang/NullPointerException",
                    "MonitorExit(null)");
    return JNI_ERR;
  }
  if (G.vm().monitorExit(G.thread(), Id) != jvm::MonitorResult::Ok) {
    if (mutate::active(mutate::M::JniMonitorExitFailureMasked))
      return JNI_OK; // mutant: the rejection is reported as success
    G.vm().throwNew(G.thread(), "java/lang/IllegalMonitorStateException",
                    "MonitorExit: monitor not owned by this thread");
    return JNI_ERR;
  }
  return JNI_OK;
}

jint jinn::jni::impl_GetJavaVM(JNIEnv *Env, JavaVM **OutVm) {
  EnvGuard G(Env, FnId::GetJavaVM);
  if (!G.ok() || !OutVm)
    return JNI_ERR;
  *OutVm = rtOf(Env).javaVm();
  return JNI_OK;
}

//===----------------------------------------------------------------------===
// Direct byte buffers
//===----------------------------------------------------------------------===

jobject jinn::jni::impl_NewDirectByteBuffer(JNIEnv *Env, void *Address,
                                            jlong Capacity) {
  EnvGuard G(Env, FnId::NewDirectByteBuffer);
  if (!G.ok())
    return nullptr;
  Klass *Kl = G.vm().findClass("java/nio/ByteBuffer");
  if (!Kl)
    return nullptr;
  ObjectId Obj = G.vm().newObject(Kl);
  jvm::HeapObject *HO = G.vm().heap().resolve(Obj);
  jvm::FieldInfo *AddrF = Kl->findField("address", "J", false);
  jvm::FieldInfo *CapF = Kl->findField("capacity", "J", false);
  if (AddrF)
    HO->Fields[AddrF->Slot] = Value::makeLong(
        static_cast<int64_t>(reinterpret_cast<uintptr_t>(Address)));
  if (CapF)
    HO->Fields[CapF->Slot] = Value::makeLong(Capacity);
  return localRef(Env, Obj);
}

void *jinn::jni::impl_GetDirectBufferAddress(JNIEnv *Env, jobject Buf) {
  EnvGuard G(Env, FnId::GetDirectBufferAddress);
  if (!G.ok())
    return nullptr;
  ObjectId Id = rtOf(Env).deref(Env, Buf);
  Klass *Kl = G.vm().klassOf(Id);
  if (!Kl || Kl->name() != "java/nio/ByteBuffer")
    return nullptr;
  jvm::FieldInfo *AddrF = Kl->findField("address", "J", false);
  if (!AddrF)
    return nullptr;
  jvm::HeapObject *HO = G.vm().heap().resolve(Id);
  return reinterpret_cast<void *>(
      static_cast<uintptr_t>(HO->Fields[AddrF->Slot].I));
}

jlong jinn::jni::impl_GetDirectBufferCapacity(JNIEnv *Env, jobject Buf) {
  EnvGuard G(Env, FnId::GetDirectBufferCapacity);
  if (!G.ok())
    return -1;
  ObjectId Id = rtOf(Env).deref(Env, Buf);
  Klass *Kl = G.vm().klassOf(Id);
  if (!Kl || Kl->name() != "java/nio/ByteBuffer")
    return -1;
  jvm::FieldInfo *CapF = Kl->findField("capacity", "J", false);
  if (!CapF)
    return -1;
  jvm::HeapObject *HO = G.vm().heap().resolve(Id);
  return HO->Fields[CapF->Slot].I;
}
