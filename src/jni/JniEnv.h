//===- jni/JniEnv.h - JNIEnv, the function table, and JavaVM -------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JNIEnv is a pointer to a per-thread structure whose first member is a
/// table of 229 function pointers, as in real JNI. Interposition — the
/// mechanism Jinn, and the -Xcheck:jni emulations, ride on — is a table
/// swap: agents install an alternative table whose entries wrap the default
/// implementations (paper §4, Figure 5).
///
/// Native code calls through the table in the classic style:
/// \code
///   jclass Cls = env->functions->FindClass(env, "java/util/List");
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JNI_JNIENV_H
#define JINN_JNI_JNIENV_H

#include "jni/JniTypes.h"

struct JNIEnv_;
using JNIEnv = JNIEnv_;
struct JavaVM_;
using JavaVM = JavaVM_;

namespace jinn::jvm {
class Vm;
class JThread;
} // namespace jinn::jvm

namespace jinn::jni {
class JniRuntime;
} // namespace jinn::jni

/// The JNI function table: one pointer per function, in JNI 1.6 order.
struct JNINativeInterface_ {
#define JNI_FN(Name, Ret, Params, Args) Ret(*Name) Params;
#include "jni/JniFunctions.def"
#undef JNI_FN
};

/// The per-thread JNI environment. User code must treat everything past
/// \c functions as opaque (the simulator's bookkeeping).
struct JNIEnv_ {
  const JNINativeInterface_ *functions;
  jinn::jvm::Vm *vm;
  jinn::jvm::JThread *thread;
  jinn::jni::JniRuntime *runtime;
};

/// The JNI invocation interface (JavaVM function table): thread
/// attachment and env retrieval, as in a real jni.h.
struct JNIInvokeInterface_ {
  jint (*DestroyJavaVM)(JavaVM *vm);
  jint (*AttachCurrentThread)(JavaVM *vm, JNIEnv **envOut, void *args);
  jint (*DetachCurrentThread)(JavaVM *vm);
  jint (*GetEnv)(JavaVM *vm, void **envOut, jint version);
};

/// The invocation interface instance handed to native code.
struct JavaVM_ {
  const JNIInvokeInterface_ *functions;
  jinn::jvm::Vm *vm;
  jinn::jni::JniRuntime *runtime;
};

#endif // JINN_JNI_JNIENV_H
