//===- jni/JniFunctionId.h - Dense ids for the 229 JNI functions ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FnId enumerates every JNI function in function-table order. Dense ids
/// key the trait table, the interposition dispatcher, and the Table 2
/// census.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JNI_JNIFUNCTIONID_H
#define JINN_JNI_JNIFUNCTIONID_H

#include <cstdint>
#include <string_view>

namespace jinn::jni {

enum class FnId : uint16_t {
#define JNI_FN(Name, Ret, Params, Args) Name,
#include "jni/JniFunctions.def"
#undef JNI_FN
  Count,
};

/// Number of JNI functions (229 in JNI 1.6, as in the paper).
constexpr size_t NumJniFunctions = static_cast<size_t>(FnId::Count);

/// The function's name ("CallStaticVoidMethodA").
const char *fnName(FnId Id);

/// Reverse lookup; FnId::Count when unknown.
FnId fnIdByName(std::string_view Name);

} // namespace jinn::jni

#endif // JINN_JNI_JNIFUNCTIONID_H
