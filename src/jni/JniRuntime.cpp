//===- jni/JniRuntime.cpp - Per-VM JNI runtime ----------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jni/JniRuntime.h"

#include "jni/EnvImplDetail.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace jinn;
using namespace jinn::jni;

NativeBindObserver::~NativeBindObserver() = default;

//===----------------------------------------------------------------------===
// Thread-local current-thread registry
//===----------------------------------------------------------------------===

namespace {

/// Which VM thread the calling OS thread stands for, per runtime. The epoch
/// (a never-reused runtime id) invalidates entries left behind by destroyed
/// runtimes whose heap address got recycled.
struct CurrentEntry {
  const JniRuntime *Rt = nullptr;
  uint64_t Epoch = 0;
  jvm::JThread *Thread = nullptr;
};

thread_local std::vector<CurrentEntry> CurrentEntries;

std::atomic<uint64_t> NextRuntimeEpoch{1};

/// Entries of destroyed runtimes cannot be purged eagerly (a runtime never
/// sees other threads' vectors), so the registry is kept as a small LRU:
/// hits migrate toward the front and the coldest entry is evicted once the
/// list is full. A long-lived thread that touches many short-lived
/// runtimes then keeps O(1) lookups instead of scanning every runtime it
/// ever served.
constexpr size_t MaxCurrentEntries = 16;

CurrentEntry *findCurrentEntry(const JniRuntime *Rt, uint64_t Epoch) {
  for (size_t I = 0; I < CurrentEntries.size(); ++I) {
    if (CurrentEntries[I].Rt == Rt && CurrentEntries[I].Epoch == Epoch) {
      if (I > 0)
        std::swap(CurrentEntries[I - 1], CurrentEntries[I]);
      return &CurrentEntries[I > 0 ? I - 1 : 0];
    }
  }
  return nullptr;
}

} // namespace

jvm::JThread *JniRuntime::currentThread() const {
  if (const CurrentEntry *Entry = findCurrentEntry(this, RtEpoch))
    return Entry->Thread;
  return nullptr;
}

void JniRuntime::setCurrentThread(jvm::JThread *Thread) {
  if (CurrentEntry *Entry = findCurrentEntry(this, RtEpoch)) {
    Entry->Thread = Thread;
    return;
  }
  if (CurrentEntries.size() >= MaxCurrentEntries)
    CurrentEntries.pop_back();
  CurrentEntries.insert(CurrentEntries.begin(), {this, RtEpoch, Thread});
}

//===----------------------------------------------------------------------===
// The default function table
//===----------------------------------------------------------------------===

namespace {

const JNINativeInterface_ DefaultTable = {
#define JNI_FN(Name, Ret, Params, Args) &jinn::jni::impl_##Name,
#include "jni/JniFunctions.def"
#undef JNI_FN
};

} // namespace

const JNINativeInterface_ *JniRuntime::defaultTable() const {
  return &DefaultTable;
}

//===----------------------------------------------------------------------===
// Construction, env lifecycle
//===----------------------------------------------------------------------===

//===----------------------------------------------------------------------===
// The invocation interface (JavaVM function table)
//===----------------------------------------------------------------------===

namespace {

jint invokeDestroyJavaVm(JavaVM *Vm) {
  Vm->vm->shutdown();
  return JNI_OK;
}

jint invokeAttachCurrentThread(JavaVM *Vm, JNIEnv **EnvOut, void *Args) {
  if (!EnvOut)
    return JNI_ERR;
  // Per the JNI spec, attaching an already-attached thread is a no-op that
  // returns the existing env (the name argument is ignored).
  if (jvm::JThread *Current = Vm->runtime->currentThread()) {
    *EnvOut = Vm->runtime->envFor(*Current);
    return JNI_OK;
  }
  const char *Name = static_cast<const char *>(Args);
  jvm::JThread &Thread =
      Vm->vm->attachThread(Name ? Name : "attached-thread");
  *EnvOut = Vm->runtime->envFor(Thread);
  Vm->runtime->setCurrentThread(&Thread);
  return JNI_OK;
}

jint invokeDetachCurrentThread(JavaVM *Vm) {
  jvm::JThread *Current = Vm->runtime->currentThread();
  if (!Current)
    return JNI_EDETACHED;
  Vm->vm->detachThread(*Current);
  Vm->runtime->setCurrentThread(nullptr);
  return JNI_OK;
}

jint invokeGetEnv(JavaVM *Vm, void **EnvOut, jint Version) {
  if (!EnvOut)
    return JNI_ERR;
  // Only the published interface versions are supported; anything else
  // (including negative/garbage values) is JNI_EVERSION, matching HotSpot.
  switch (Version) {
  case JNI_VERSION_1_1:
  case JNI_VERSION_1_2:
  case JNI_VERSION_1_4:
  case JNI_VERSION_1_6:
    break;
  default:
    *EnvOut = nullptr;
    return JNI_EVERSION;
  }
  jvm::JThread *Current = Vm->runtime->currentThread();
  if (!Current) {
    *EnvOut = nullptr;
    return JNI_EDETACHED;
  }
  *EnvOut = Vm->runtime->envFor(*Current);
  return JNI_OK;
}

const JNIInvokeInterface_ InvokeInterface = {
    invokeDestroyJavaVm,
    invokeAttachCurrentThread,
    invokeDetachCurrentThread,
    invokeGetEnv,
};

} // namespace

JniRuntime::JniRuntime(jvm::Vm &Vm)
    : TheVm(Vm),
      RtEpoch(NextRuntimeEpoch.fetch_add(1, std::memory_order_relaxed)) {
  TheJavaVm.functions = &InvokeInterface;
  TheJavaVm.vm = &Vm;
  TheJavaVm.runtime = this;
  Active = &DefaultTable;
  Vm.JniRuntimeHandle = this;
  Vm.addObserver(this);
  // Envs for threads attached before the runtime existed (main).
  for (const auto &Thread : Vm.threads())
    envFor(*Thread);
}

JniRuntime::~JniRuntime() {
  TheVm.removeObserver(this);
  TheVm.JniRuntimeHandle = nullptr;
}

JNIEnv *JniRuntime::envFor(jvm::JThread &Thread) {
  std::lock_guard<std::mutex> Lock(EnvsMutex);
  if (Thread.EnvPtr)
    return static_cast<JNIEnv *>(Thread.EnvPtr);
  auto Env = std::make_unique<JNIEnv_>();
  Env->functions = Active;
  Env->vm = &TheVm;
  Env->thread = &Thread;
  Env->runtime = this;
  Thread.EnvPtr = Env.get();
  Envs.push_back(std::move(Env));
  return static_cast<JNIEnv *>(Thread.EnvPtr);
}

void JniRuntime::onThreadStart(jvm::JThread &Thread) { envFor(Thread); }

void JniRuntime::onThreadEnd(jvm::JThread &Thread) {
  // The env structure stays alive (dangling env use is itself a studied
  // bug); it is merely disconnected from the thread.
  (void)Thread;
}

void JniRuntime::setActiveTable(const JNINativeInterface_ *Table) {
  std::lock_guard<std::mutex> Lock(EnvsMutex);
  Active = Table ? Table : &DefaultTable;
  for (const auto &Env : Envs)
    Env->functions = Active;
}

//===----------------------------------------------------------------------===
// Native binding
//===----------------------------------------------------------------------===

void JniRuntime::addBindObserver(NativeBindObserver *Observer) {
  std::lock_guard<std::mutex> Lock(BindObserversMutex);
  BindObservers.push_back(Observer);
}

void JniRuntime::removeBindObserver(NativeBindObserver *Observer) {
  std::lock_guard<std::mutex> Lock(BindObserversMutex);
  BindObservers.erase(
      std::remove(BindObservers.begin(), BindObservers.end(), Observer),
      BindObservers.end());
}

std::vector<NativeBindObserver *> JniRuntime::bindObserversSnapshot() const {
  std::lock_guard<std::mutex> Lock(BindObserversMutex);
  return BindObservers;
}

bool JniRuntime::registerNative(jvm::Klass *Kl, std::string_view Name,
                                std::string_view Sig, JniNativeStdFn Fn) {
  if (!Kl || !Fn)
    return false;
  jvm::MethodInfo *Method = nullptr;
  for (const auto &M : Kl->Methods)
    if (M->IsNative && M->Name == Name && M->Desc == Sig)
      Method = M.get();
  if (!Method)
    return false;

  // JVMTI NativeMethodBind: agents may wrap the bound function.
  JniNativeStdFn Bound = std::move(Fn);
  for (NativeBindObserver *Observer : bindObserversSnapshot())
    Observer->onNativeMethodBind(*Method, Bound);

  // The VM-level binding performs what a real JVM does around every native
  // call: push the implicit local frame, hand out local references for the
  // receiver and reference arguments, call the (possibly wrapped) native
  // code, convert the result back, and pop the frame.
  Method->NativeBound = [this, Method,
                         Bound = std::move(Bound)](jvm::JThread &Thread,
                                                   const jvm::Value &Self,
                                                   const std::vector<jvm::Value>
                                                       &Args) -> jvm::Value {
    // Arity mismatch between caller-supplied args and the signature would
    // read past Sig.Params below; flag it and marshal only what the
    // signature declares.
    if (Args.size() != Method->Sig.Params.size()) {
      TheVm.undefined(
          Thread, jvm::UndefinedOp::InvalidArgument,
          formatString("native %s called with %zu arguments, signature "
                       "declares %zu",
                       Method->qualifiedName().c_str(), Args.size(),
                       Method->Sig.Params.size()));
      if (Thread.Poisoned)
        return jvm::defaultValueFor(Method->Sig.Ret.Kind);
    }

    // The calling OS thread is a mutator for the duration of the native
    // call: collections wait for it, and it parks at this boundary while
    // another thread collects.
    jvm::Vm::MutatorScope Mutator(TheVm);

    JNIEnv *Env = envFor(Thread);
    size_t BaseDepth = Thread.frameDepth();
    Thread.pushFrame(TheVm.options().NativeFrameCapacity, /*Explicit=*/false);
    ScopedCurrent Scope(*this, &Thread);

    jobject SelfRef;
    if (Method->IsStatic)
      SelfRef = makeLocal(Thread, Method->Owner->Mirror);
    else
      SelfRef = makeLocal(Thread, Self.Obj);

    const size_t NumParams = std::min(Args.size(), Method->Sig.Params.size());
    std::vector<jvalue> JArgs;
    JArgs.reserve(NumParams);
    for (size_t I = 0; I < NumParams; ++I) {
      const jvm::TypeDesc &Param = Method->Sig.Params[I];
      if (Param.isReference()) {
        jvalue V;
        V.l = makeLocal(Thread, Args[I].Obj);
        JArgs.push_back(V);
      } else {
        JArgs.push_back(scalarToJvalue(Args[I]));
      }
    }

    jvalue Raw = Bound(Env, SelfRef, JArgs.data());

    jvm::Value Result;
    if (!Thread.Pending.isNull() || Thread.Poisoned) {
      // The native method completed exceptionally (possibly because a
      // checker threw); its return value must not be interpreted.
      Result = jvm::defaultValueFor(Method->Sig.Ret.Kind);
    } else if (Method->Sig.Ret.isReference()) {
      // "Native method returning reference" is a Use transition
      // (Return:C->Java); resolving it here surfaces dangling returns.
      Result = jvm::Value::makeRef(deref(Env, Raw.l));
    } else {
      Result = jvalueToScalar(Method->Sig.Ret.Kind, Raw);
    }
    // Pop the implicit frame AND any explicit frames the native code
    // pushed and never popped (the JVM reclaims them; a checker may have
    // flagged the leak).
    while (Thread.frameDepth() > BaseDepth) {
      if (Thread.topFrameExplicit())
        Thread.LeakedExplicitFrames += 1;
      Thread.popFrame();
    }
    return Result;
  };
  return true;
}

bool JniRuntime::unregisterNatives(jvm::Klass *Kl) {
  if (!Kl)
    return false;
  for (const auto &M : Kl->Methods)
    if (M->IsNative)
      M->NativeBound = nullptr;
  return true;
}

//===----------------------------------------------------------------------===
// Pinned buffers
//===----------------------------------------------------------------------===

void *JniRuntime::newBuffer(jvm::ObjectId Target, jvm::PinKind Kind,
                            jvm::JType Elem, size_t Len, size_t Bytes) {
  auto Record = std::make_unique<BufferRecord>();
  Record->Target = Target;
  Record->Kind = Kind;
  Record->Elem = Elem;
  Record->Len = Len;
  Record->Bytes = Bytes;
  Record->Storage = std::make_unique<char[]>(Bytes ? Bytes : 1);
  void *Data = Record->Storage.get();
  std::lock_guard<std::mutex> Lock(BuffersMutex);
  Buffers.emplace(Data, std::move(Record));
  return Data;
}

const BufferRecord *JniRuntime::findBuffer(const void *Data) const {
  std::lock_guard<std::mutex> Lock(BuffersMutex);
  auto It = Buffers.find(Data);
  return It == Buffers.end() ? nullptr : It->second.get();
}

std::unique_ptr<BufferRecord> JniRuntime::takeBuffer(const void *Data) {
  std::lock_guard<std::mutex> Lock(BuffersMutex);
  auto It = Buffers.find(Data);
  if (It == Buffers.end())
    return nullptr;
  std::unique_ptr<BufferRecord> Out = std::move(It->second);
  Buffers.erase(It);
  return Out;
}

void JniRuntime::restoreBuffer(std::unique_ptr<BufferRecord> Record) {
  if (!Record)
    return;
  void *Data = Record->Storage.get();
  std::lock_guard<std::mutex> Lock(BuffersMutex);
  Buffers.emplace(Data, std::move(Record));
}

//===----------------------------------------------------------------------===
// Handle helpers
//===----------------------------------------------------------------------===

jobject JniRuntime::makeLocal(jvm::JThread &Thread, jvm::ObjectId Target) {
  if (Target.isNull())
    return nullptr;
  return wordToRef(Thread.newLocalRef(Target));
}

jvm::ObjectId JniRuntime::deref(JNIEnv *Env, jobject Ref) {
  return TheVm.resolveHandle(*Env->thread, handleWord(Ref));
}
