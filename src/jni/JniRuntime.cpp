//===- jni/JniRuntime.cpp - Per-VM JNI runtime ----------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jni/JniRuntime.h"

#include "jni/EnvImplDetail.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace jinn;
using namespace jinn::jni;

NativeBindObserver::~NativeBindObserver() = default;

//===----------------------------------------------------------------------===
// The default function table
//===----------------------------------------------------------------------===

namespace {

const JNINativeInterface_ DefaultTable = {
#define JNI_FN(Name, Ret, Params, Args) &jinn::jni::impl_##Name,
#include "jni/JniFunctions.def"
#undef JNI_FN
};

} // namespace

const JNINativeInterface_ *JniRuntime::defaultTable() const {
  return &DefaultTable;
}

//===----------------------------------------------------------------------===
// Construction, env lifecycle
//===----------------------------------------------------------------------===

//===----------------------------------------------------------------------===
// The invocation interface (JavaVM function table)
//===----------------------------------------------------------------------===

namespace {

jint invokeDestroyJavaVm(JavaVM *Vm) {
  Vm->vm->shutdown();
  return JNI_OK;
}

jint invokeAttachCurrentThread(JavaVM *Vm, JNIEnv **EnvOut, void *Args) {
  if (!EnvOut)
    return JNI_ERR;
  const char *Name = static_cast<const char *>(Args);
  jvm::JThread &Thread =
      Vm->vm->attachThread(Name ? Name : "attached-thread");
  *EnvOut = Vm->runtime->envFor(Thread);
  Vm->runtime->setCurrentThread(&Thread);
  return JNI_OK;
}

jint invokeDetachCurrentThread(JavaVM *Vm) {
  jvm::JThread *Current = Vm->runtime->currentThread();
  if (!Current)
    return JNI_EDETACHED;
  Vm->vm->detachThread(*Current);
  Vm->runtime->setCurrentThread(nullptr);
  return JNI_OK;
}

jint invokeGetEnv(JavaVM *Vm, void **EnvOut, jint Version) {
  if (!EnvOut)
    return JNI_ERR;
  if (Version > JNI_VERSION_1_6) {
    *EnvOut = nullptr;
    return JNI_EVERSION;
  }
  jvm::JThread *Current = Vm->runtime->currentThread();
  if (!Current) {
    *EnvOut = nullptr;
    return JNI_EDETACHED;
  }
  *EnvOut = Vm->runtime->envFor(*Current);
  return JNI_OK;
}

const JNIInvokeInterface_ InvokeInterface = {
    invokeDestroyJavaVm,
    invokeAttachCurrentThread,
    invokeDetachCurrentThread,
    invokeGetEnv,
};

} // namespace

JniRuntime::JniRuntime(jvm::Vm &Vm) : TheVm(Vm) {
  TheJavaVm.functions = &InvokeInterface;
  TheJavaVm.vm = &Vm;
  TheJavaVm.runtime = this;
  Active = &DefaultTable;
  Vm.JniRuntimeHandle = this;
  Vm.addObserver(this);
  // Envs for threads attached before the runtime existed (main).
  for (const auto &Thread : Vm.threads())
    envFor(*Thread);
}

JniRuntime::~JniRuntime() {
  TheVm.removeObserver(this);
  TheVm.JniRuntimeHandle = nullptr;
}

JNIEnv *JniRuntime::envFor(jvm::JThread &Thread) {
  if (Thread.EnvPtr)
    return static_cast<JNIEnv *>(Thread.EnvPtr);
  auto Env = std::make_unique<JNIEnv_>();
  Env->functions = Active;
  Env->vm = &TheVm;
  Env->thread = &Thread;
  Env->runtime = this;
  Thread.EnvPtr = Env.get();
  Envs.push_back(std::move(Env));
  return static_cast<JNIEnv *>(Thread.EnvPtr);
}

void JniRuntime::onThreadStart(jvm::JThread &Thread) { envFor(Thread); }

void JniRuntime::onThreadEnd(jvm::JThread &Thread) {
  // The env structure stays alive (dangling env use is itself a studied
  // bug); it is merely disconnected from the thread.
  (void)Thread;
}

void JniRuntime::setActiveTable(const JNINativeInterface_ *Table) {
  Active = Table ? Table : &DefaultTable;
  for (const auto &Env : Envs)
    Env->functions = Active;
}

//===----------------------------------------------------------------------===
// Native binding
//===----------------------------------------------------------------------===

void JniRuntime::addBindObserver(NativeBindObserver *Observer) {
  BindObservers.push_back(Observer);
}

void JniRuntime::removeBindObserver(NativeBindObserver *Observer) {
  BindObservers.erase(
      std::remove(BindObservers.begin(), BindObservers.end(), Observer),
      BindObservers.end());
}

bool JniRuntime::registerNative(jvm::Klass *Kl, std::string_view Name,
                                std::string_view Sig, JniNativeStdFn Fn) {
  if (!Kl || !Fn)
    return false;
  jvm::MethodInfo *Method = nullptr;
  for (const auto &M : Kl->Methods)
    if (M->IsNative && M->Name == Name && M->Desc == Sig)
      Method = M.get();
  if (!Method)
    return false;

  // JVMTI NativeMethodBind: agents may wrap the bound function.
  JniNativeStdFn Bound = std::move(Fn);
  for (NativeBindObserver *Observer : BindObservers)
    Observer->onNativeMethodBind(*Method, Bound);

  // The VM-level binding performs what a real JVM does around every native
  // call: push the implicit local frame, hand out local references for the
  // receiver and reference arguments, call the (possibly wrapped) native
  // code, convert the result back, and pop the frame.
  Method->NativeBound = [this, Method,
                         Bound = std::move(Bound)](jvm::JThread &Thread,
                                                   const jvm::Value &Self,
                                                   const std::vector<jvm::Value>
                                                       &Args) -> jvm::Value {
    JNIEnv *Env = envFor(Thread);
    size_t BaseDepth = Thread.frameDepth();
    Thread.pushFrame(TheVm.options().NativeFrameCapacity, /*Explicit=*/false);
    ScopedCurrent Scope(*this, &Thread);

    jobject SelfRef;
    if (Method->IsStatic)
      SelfRef = makeLocal(Thread, Method->Owner->Mirror);
    else
      SelfRef = makeLocal(Thread, Self.Obj);

    std::vector<jvalue> JArgs;
    JArgs.reserve(Args.size());
    for (size_t I = 0; I < Args.size(); ++I) {
      const jvm::TypeDesc &Param = Method->Sig.Params[I];
      if (Param.isReference()) {
        jvalue V;
        V.l = makeLocal(Thread, Args[I].Obj);
        JArgs.push_back(V);
      } else {
        JArgs.push_back(scalarToJvalue(Args[I]));
      }
    }

    jvalue Raw = Bound(Env, SelfRef, JArgs.data());

    jvm::Value Result;
    if (!Thread.Pending.isNull() || Thread.Poisoned) {
      // The native method completed exceptionally (possibly because a
      // checker threw); its return value must not be interpreted.
      Result = jvm::defaultValueFor(Method->Sig.Ret.Kind);
    } else if (Method->Sig.Ret.isReference()) {
      // "Native method returning reference" is a Use transition
      // (Return:C->Java); resolving it here surfaces dangling returns.
      Result = jvm::Value::makeRef(deref(Env, Raw.l));
    } else {
      Result = jvalueToScalar(Method->Sig.Ret.Kind, Raw);
    }
    // Pop the implicit frame AND any explicit frames the native code
    // pushed and never popped (the JVM reclaims them; a checker may have
    // flagged the leak).
    while (Thread.frameDepth() > BaseDepth) {
      if (Thread.topFrameExplicit())
        Thread.LeakedExplicitFrames += 1;
      Thread.popFrame();
    }
    return Result;
  };
  return true;
}

bool JniRuntime::unregisterNatives(jvm::Klass *Kl) {
  if (!Kl)
    return false;
  for (const auto &M : Kl->Methods)
    if (M->IsNative)
      M->NativeBound = nullptr;
  return true;
}

//===----------------------------------------------------------------------===
// Pinned buffers
//===----------------------------------------------------------------------===

void *JniRuntime::newBuffer(jvm::ObjectId Target, jvm::PinKind Kind,
                            jvm::JType Elem, size_t Len, size_t Bytes) {
  auto Record = std::make_unique<BufferRecord>();
  Record->Target = Target;
  Record->Kind = Kind;
  Record->Elem = Elem;
  Record->Len = Len;
  Record->Bytes = Bytes;
  Record->Storage = std::make_unique<char[]>(Bytes ? Bytes : 1);
  void *Data = Record->Storage.get();
  Buffers.emplace(Data, std::move(Record));
  return Data;
}

const BufferRecord *JniRuntime::findBuffer(const void *Data) const {
  auto It = Buffers.find(Data);
  return It == Buffers.end() ? nullptr : It->second.get();
}

std::unique_ptr<BufferRecord> JniRuntime::takeBuffer(const void *Data) {
  auto It = Buffers.find(Data);
  if (It == Buffers.end())
    return nullptr;
  std::unique_ptr<BufferRecord> Out = std::move(It->second);
  Buffers.erase(It);
  return Out;
}

void JniRuntime::restoreBuffer(std::unique_ptr<BufferRecord> Record) {
  if (!Record)
    return;
  void *Data = Record->Storage.get();
  Buffers.emplace(Data, std::move(Record));
}

//===----------------------------------------------------------------------===
// Handle helpers
//===----------------------------------------------------------------------===

jobject JniRuntime::makeLocal(jvm::JThread &Thread, jvm::ObjectId Target) {
  if (Target.isNull())
    return nullptr;
  return wordToRef(Thread.newLocalRef(Target));
}

jvm::ObjectId JniRuntime::deref(JNIEnv *Env, jobject Ref) {
  return TheVm.resolveHandle(*Env->thread, handleWord(Ref));
}
