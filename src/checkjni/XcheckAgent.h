//===- checkjni/XcheckAgent.h - -Xcheck:jni baseline emulations -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emulations of the built-in dynamic JNI checkers of HotSpot and J9
/// (enabled by -Xcheck:jni), which the paper's Table 1 and §6.3 compare
/// Jinn against. The emulations run the same synthesized machines but
/// filter and style the reports per vendor: each vendor detects only the
/// documented subset (Table 1 columns 6-7), warns or aborts in its own
/// format (Figure 9a/9b), and stays silent — letting the production
/// undefined-behavior policy take over — where the real checker misses.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_CHECKJNI_XCHECKAGENT_H
#define JINN_CHECKJNI_XCHECKAGENT_H

#include "jvmti/Jvmti.h"
#include "spec/StateMachine.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jinn::checkjni {

/// Which vendor's checker is emulated.
enum class Vendor : uint8_t { HotSpot, J9 };

const char *vendorName(Vendor V);

/// How the emulated checker reacts to one detected condition.
enum class CheckerBehavior : uint8_t {
  Miss,    ///< not checked; production behavior applies
  Warning, ///< print diagnosis, continue
  Error,   ///< print diagnosis, abort the VM (simulated)
};

/// Table 1 columns 6-7: per-vendor reaction to a machine's finding.
CheckerBehavior behaviorFor(Vendor V, const std::string &MachineName,
                            const std::string &Message, bool EndOfRun);

/// One detection the emulated checker surfaced.
struct XcheckDetection {
  std::string Machine;
  CheckerBehavior Behavior;
  std::string FormattedText; ///< vendor-style console output (Figure 9a/9b)
};

/// Reporter that applies the vendor policy. \p NonFatal emulates J9's
/// "-Xcheck:jni:nonfatal" (mentioned in its own abort banner, Figure 9b):
/// errors are still diagnosed but execution continues.
class XcheckReporter : public spec::Reporter {
public:
  XcheckReporter(jvm::Vm &Vm, Vendor V, bool NonFatal = false)
      : Vm(Vm), V(V), NonFatal(NonFatal) {}

  void violation(spec::TransitionContext &Ctx,
                 const spec::StateMachineSpec &Machine,
                 const std::string &Message) override;
  void endOfRun(const spec::StateMachineSpec &Machine,
                const std::string &Message) override;

  /// Direct access to the detection list; callers quiesce mutators first.
  const std::vector<XcheckDetection> &detections() const {
    return Detections;
  }
  void clearDetections() {
    std::lock_guard<std::mutex> Lock(Mu);
    Detections.clear();
  }

private:
  jvm::Vm &Vm;
  Vendor V;
  bool NonFatal;
  mutable std::mutex Mu; ///< guards Detections
  std::vector<XcheckDetection> Detections;
};

/// The baseline agent ("-Xcheck:jni" analogue). Unlike Jinn's synthesized
/// machines, this checker is deliberately *ad-hoc* and bookkeeping-free
/// (paper §2.3: the built-in checks "are easy to implement, because they
/// require no preparatory bookkeeping"): one cheap pre-call hook validates
/// the env/exception/critical state and the reference handles, and the
/// resource-leak warnings read VM state once at VM death.
class XcheckAgent : public jvmti::Agent {
public:
  explicit XcheckAgent(Vendor V, bool NonFatal = false);
  ~XcheckAgent() override;

  const char *name() const override;
  void onLoad(JavaVM *Vm, jvmti::JvmtiEnv &Jvmti) override;

  XcheckReporter &reporter() { return *Reporter; }
  Vendor vendor() const { return V; }

private:
  void preCheck(jvmti::CapturedCall &Call);
  void deathChecks(jvm::Vm &Vm);

  Vendor V;
  bool NonFatalMode = false;
  std::string Name;
  std::unique_ptr<XcheckReporter> Reporter;

  // Lightweight specs carrying only the machine names behaviorFor keys on.
  spec::StateMachineSpec EnvSpec, ExcSpec, CritSpec, FixedSpec, PinSpec,
      MonSpec, GlobalSpec, LocalSpec;
};

} // namespace jinn::checkjni

#endif // JINN_CHECKJNI_XCHECKAGENT_H
