//===- checkjni/XcheckAgent.cpp - -Xcheck:jni baseline emulations ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checkjni/XcheckAgent.h"

#include "support/Format.h"

using namespace jinn;
using namespace jinn::checkjni;

const char *jinn::checkjni::vendorName(Vendor V) {
  return V == Vendor::HotSpot ? "hotspot" : "j9";
}

namespace {

bool contains(const std::string &Haystack, const char *Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

} // namespace

/// The encoded Table 1 columns 6-7, extended to every machine. Where the
/// table says "running"/"crash"/"NPE" the checker misses and the production
/// policy produces the listed outcome on its own.
CheckerBehavior jinn::checkjni::behaviorFor(Vendor V,
                                            const std::string &MachineName,
                                            const std::string &Message,
                                            bool EndOfRun) {
  bool HotSpot = V == Vendor::HotSpot;
  if (MachineName == "JNIEnv* state") // row 14: error / crash
    return HotSpot ? CheckerBehavior::Error : CheckerBehavior::Miss;
  if (MachineName == "Exception state") // row 1: warning / error
    return HotSpot ? CheckerBehavior::Warning : CheckerBehavior::Error;
  if (MachineName == "Critical-section state") // row 16: warning / error
    return HotSpot ? CheckerBehavior::Warning : CheckerBehavior::Error;
  if (MachineName == "Fixed typing") // row 3: error / error
    return CheckerBehavior::Error;
  if (MachineName == "Entity-specific typing") // row 2: running / crash
    return CheckerBehavior::Miss;
  if (MachineName == "Access control") // row 9: NPE / NPE
    return CheckerBehavior::Miss;
  if (MachineName == "Nullness") // row 2: running / crash
    return CheckerBehavior::Miss;
  if (MachineName == "Pinned or copied string or array") {
    if (EndOfRun) // row 11 leaks: running / warning
      return HotSpot ? CheckerBehavior::Miss : CheckerBehavior::Warning;
    return CheckerBehavior::Miss; // double free: row 2
  }
  if (MachineName == "Monitor") // row 11: running / warning
    return HotSpot ? CheckerBehavior::Miss : CheckerBehavior::Warning;
  if (MachineName == "Global or weak global reference") {
    if (EndOfRun) // leak: row 11
      return HotSpot ? CheckerBehavior::Miss : CheckerBehavior::Warning;
    return CheckerBehavior::Error; // dangling: row 13 / row 6
  }
  if (MachineName == "Local reference") {
    if (EndOfRun || contains(Message, "overflow") ||
        contains(Message, "never popped")) // rows 11/12: running / warning
      return HotSpot ? CheckerBehavior::Miss : CheckerBehavior::Warning;
    return CheckerBehavior::Error; // dangling/double free/IDs: rows 6, 13
  }
  return CheckerBehavior::Miss;
}

namespace {

/// Vendor-styled console text (Figure 9a / 9b).
std::string formatDetection(Vendor V, jvm::Vm &Vm, jvm::JThread *Thread,
                            const std::string &Site,
                            const std::string &Message,
                            CheckerBehavior Behavior) {
  if (V == Vendor::HotSpot) {
    std::string Out = formatString("WARNING in native method: JNI %s\n",
                                   Message.c_str());
    if (Thread)
      Out += Thread->renderStack();
    return Out;
  }
  std::string Out = formatString(
      "JVMJNCK028E JNI error in %s: %s\n", Site.c_str(), Message.c_str());
  if (Thread && !Thread->Stack.empty())
    Out += formatString("JVMJNCK077E Error detected in %s\n",
                        Thread->Stack.back().Display.c_str());
  if (Behavior == CheckerBehavior::Error) {
    Out += "JVMJNCK024E JNI error detected. Aborting.\n";
    Out += "JVMJNCK025I Use -Xcheck:jni:nonfatal to continue running when "
           "errors are detected.\n";
    Out += "Fatal error: JNI error\n";
  }
  (void)Vm;
  return Out;
}

} // namespace

void XcheckReporter::violation(spec::TransitionContext &Ctx,
                               const spec::StateMachineSpec &Machine,
                               const std::string &Message) {
  // A real J9 -Xcheck:jni aborts the VM at the first error; nothing further
  // is reported (Figure 9b shows only the first illegal call).
  if (Ctx.thread().Poisoned) {
    Ctx.abortCall();
    return;
  }
  CheckerBehavior Behavior =
      behaviorFor(V, Machine.Name, Message, /*EndOfRun=*/false);
  if (Behavior == CheckerBehavior::Miss)
    return; // the production policy will produce Table 1's default outcome

  // Vendor phrasing for the Figure 9 comparison.
  std::string VendorMessage = Message;
  if (Machine.Name == "Exception state")
    VendorMessage = V == Vendor::HotSpot
                        ? "call made with exception pending"
                        : "This function cannot be called when an "
                          "exception is pending";
  std::string Text = formatDetection(V, Vm, &Ctx.thread(), Ctx.siteName(),
                                     VendorMessage, Behavior);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Detections.push_back({Machine.Name, Behavior, Text});
  }

  std::string Channel = formatString("xcheck:%s", vendorName(V));
  if (Behavior == CheckerBehavior::Warning) {
    Vm.diags().report(IncidentKind::Warning, Channel, Text);
    return; // print and continue: the call still executes
  }
  // Error: print, abort the VM (simulated), and suppress the call —
  // unless running in nonfatal mode, which diagnoses and continues.
  if (NonFatal) {
    Vm.diags().report(IncidentKind::Warning, Channel, Text);
    return;
  }
  Vm.diags().report(IncidentKind::FatalError, Channel, Text);
  Ctx.thread().Poisoned = true;
  Ctx.abortCall();
}

void XcheckReporter::endOfRun(const spec::StateMachineSpec &Machine,
                              const std::string &Message) {
  CheckerBehavior Behavior =
      behaviorFor(V, Machine.Name, Message, /*EndOfRun=*/true);
  if (Behavior == CheckerBehavior::Miss)
    return;
  std::string Text = formatDetection(V, Vm, nullptr, "<program termination>",
                                     Message, CheckerBehavior::Warning);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Detections.push_back({Machine.Name, Behavior, Text});
  }
  Vm.diags().report(IncidentKind::Warning,
                    formatString("xcheck:%s", vendorName(V)), Text);
}

XcheckAgent::XcheckAgent(Vendor V, bool NonFatal) : V(V) {
  Name = formatString("xcheck:%s%s", vendorName(V),
                      NonFatal ? ":nonfatal" : "");
  NonFatalMode = NonFatal;
  EnvSpec.Name = "JNIEnv* state";
  ExcSpec.Name = "Exception state";
  CritSpec.Name = "Critical-section state";
  FixedSpec.Name = "Fixed typing";
  PinSpec.Name = "Pinned or copied string or array";
  MonSpec.Name = "Monitor";
  GlobalSpec.Name = "Global or weak global reference";
  LocalSpec.Name = "Local reference";
}

XcheckAgent::~XcheckAgent() = default;

const char *XcheckAgent::name() const { return Name.c_str(); }

void XcheckAgent::preCheck(jvmti::CapturedCall &Call) {
  jvm::JThread &Thread = Call.thread();
  jvm::Vm &Vm = Call.vm();
  const jni::FnTraits &Traits = Call.traits();
  spec::TransitionContext Ctx = spec::TransitionContext::jniSite(
      spec::TransitionContext::Site::JniPre, Call, *Reporter);

  // JNIEnv/thread mismatch (pitfall 14).
  if (jvm::JThread *Current = Call.runtime().currentThread();
      Current && Current != &Thread) {
    Reporter->violation(Ctx, EnvSpec,
                        "JNIEnv does not belong to the current thread");
    if (Ctx.aborted())
      return;
  }
  // Pending exception (pitfall 1).
  if (!Thread.Pending.isNull() && !Traits.ExceptionOblivious) {
    Reporter->violation(Ctx, ExcSpec, "An exception is pending");
    if (Ctx.aborted())
      return;
  }
  // Critical section (pitfall 16) — read straight from the VM thread.
  if (Thread.CriticalDepth > 0 && !Traits.CriticalAllowed) {
    Reporter->violation(Ctx, CritSpec,
                        "JNI call made inside a critical region");
    if (Ctx.aborted())
      return;
  }
  // Reference-handle validity and jclass checks (pitfalls 3, 6, 13).
  for (int I = 0; I < Traits.NumParams; ++I) {
    if (Traits.Params[I].Cls != jni::ArgClass::Ref)
      continue;
    uint64_t Word = Call.refWord(I);
    if (!Word)
      continue; // nullness is NOT checked (Table 1 row 2: running/crash)
    jvm::Vm::PeekResult Peek = Vm.peekHandle(Word, &Thread);
    switch (Peek.S) {
    case jvm::Vm::PeekResult::Status::NotARef:
      Reporter->violation(Ctx, LocalSpec,
                          formatString("argument %d is not a JNI reference",
                                       I + 1));
      return;
    case jvm::Vm::PeekResult::Status::Stale:
      Reporter->violation(
          Ctx,
          Peek.Kind == jvm::RefKind::Local ? LocalSpec : GlobalSpec,
          formatString("argument %d is a dangling reference", I + 1));
      return;
    case jvm::Vm::PeekResult::Status::WrongThreadLive:
      Reporter->violation(Ctx, LocalSpec,
                          formatString("argument %d is a local reference "
                                       "of another thread",
                                       I + 1));
      return;
    case jvm::Vm::PeekResult::Status::Live:
      if (Traits.Params[I].Constraint == jni::RefConstraint::Class &&
          !Vm.klassFromMirror(Peek.Target)) {
        Reporter->violation(
            Ctx, FixedSpec,
            formatString("argument %d is not a java.lang.Class", I + 1));
        return;
      }
      break;
    case jvm::Vm::PeekResult::Status::Null:
    case jvm::Vm::PeekResult::Status::ClearedWeak:
      break;
    }
    if (Ctx.aborted())
      return;
  }
}

void XcheckAgent::deathChecks(jvm::Vm &Vm) {
  if (!Vm.pins().empty())
    Reporter->endOfRun(PinSpec,
                       formatString("%zu pinned string/array resource(s) "
                                    "were never released (leak)",
                                    Vm.pins().size()));
  if (Vm.heldMonitorCount() > 0)
    Reporter->endOfRun(MonSpec,
                       formatString("%zu monitor(s) still held at exit",
                                    Vm.heldMonitorCount()));
  size_t Globals = Vm.liveGlobalCount(false) + Vm.liveGlobalCount(true);
  if (Globals > 0)
    Reporter->endOfRun(GlobalSpec,
                       formatString("%zu global reference(s) were never "
                                    "deleted (leak)",
                                    Globals));
  for (const auto &Thread : Vm.threads()) {
    if (Thread->everOverflowedCapacity())
      Reporter->endOfRun(LocalSpec,
                         formatString("thread %u exceeded the local "
                                      "reference capacity (overflow)",
                                      Thread->id()));
    if (Thread->LeakedExplicitFrames > 0)
      Reporter->endOfRun(LocalSpec,
                         formatString("%u local reference frame(s) were "
                                      "never popped",
                                      Thread->LeakedExplicitFrames));
  }
}

void XcheckAgent::onLoad(JavaVM *JavaVm, jvmti::JvmtiEnv &Jvmti) {
  jvm::Vm &Vm = *JavaVm->vm;
  Reporter = std::make_unique<XcheckReporter>(Vm, V, NonFatalMode);
  Jvmti.dispatcher().addPreAll(
      [this](jvmti::CapturedCall &Call) { preCheck(Call); });

  jvmti::EventCallbacks Callbacks;
  Callbacks.VmDeath = [this, &Vm] { deathChecks(Vm); };
  Jvmti.setEventCallbacks(std::move(Callbacks));
}
