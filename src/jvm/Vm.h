//===- jvm/Vm.h - The miniature Java virtual machine ---------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The miniature JVM the reproduction runs multilingual programs on. It
/// owns the class registry, heap, threads, global/weak reference tables,
/// monitors, pinned resources, and the undefined-behavior policy that makes
/// production runs behave like Table 1's "Default Behavior" columns.
///
/// The JNI layer (src/jni) builds the 229-function JNIEnv on top of this
/// class; the JVMTI layer (src/jvmti) observes it through VmEventObserver.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_VM_H
#define JINN_JVM_VM_H

#include "jvm/Concurrent.h"
#include "jvm/Handle.h"
#include "jvm/Heap.h"
#include "jvm/JThread.h"
#include "jvm/Klass.h"
#include "jvm/Policy.h"
#include "jvm/Value.h"
#include "support/Diagnostics.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jinn::jvm {

/// Construction-time options.
struct VmOptions {
  VmFlavor Flavor = VmFlavor::HotSpotLike;
  /// Capacity of the implicit local frame pushed around native calls. The
  /// JNI specification guarantees 16.
  uint32_t NativeFrameCapacity = 16;
  /// Whether collections relocate surviving objects (simulated motion).
  bool MoveOnGc = true;
  /// Automatic GC every N allocations (0 = manual only).
  uint32_t AutoGcPeriod = 0;
  /// Echo incidents to stderr as they are recorded.
  bool EchoDiagnostics = false;
  /// Split the mark phase across several short stop-the-world pauses with
  /// mutator windows between them (DESIGN.md §12). When false, the whole
  /// collection runs in one pause, as before.
  bool IncrementalMark = true;
  /// Objects traced per incremental mark pause.
  uint32_t GcMarkStepBudget = 2048;
  /// Slots reserved per thread-local allocation buffer refill.
  uint32_t TlabSlots = 64;
};

/// JVMTI-style event observer. The JVMTI layer adapts agent callbacks onto
/// this interface.
class VmEventObserver {
public:
  virtual ~VmEventObserver();
  virtual void onThreadStart(JThread &Thread) { (void)Thread; }
  virtual void onThreadEnd(JThread &Thread) { (void)Thread; }
  virtual void onVmDeath() {}
  virtual void onGcFinish() {}
};

/// Result of a monitor operation.
enum class MonitorResult : uint8_t { Ok, WouldBlock, IllegalState };

/// How a resource was pinned (paper Figure 8, "pinned or copied").
enum class PinKind : uint8_t { ArrayElements, StringChars, StringUtfChars,
                               CriticalArray, CriticalString };

/// An outstanding pin of a string or array.
struct PinRecord {
  ObjectId Target;
  PinKind Kind;
  uint32_t ThreadId;
  uint64_t Cookie; ///< unique id, doubles as the released-buffer key
};

class Vm {
public:
  explicit Vm(VmOptions Options = VmOptions());
  ~Vm();
  Vm(const Vm &) = delete;
  Vm &operator=(const Vm &) = delete;

  const VmOptions &options() const { return Options; }
  DiagnosticSink &diags() { return Diags; }
  Heap &heap() { return TheHeap; }

  //===--------------------------------------------------------------------===
  // Classes
  //===--------------------------------------------------------------------===

  /// Defines a class from \p Def. Returns null (and records an error) when
  /// the definition is malformed or the superclass is missing.
  Klass *defineClass(const ClassDef &Def);

  /// Looks up a class by internal name ("java/lang/String", "[I"). Array
  /// classes are materialized on demand. Returns null when absent.
  Klass *findClass(std::string_view Name);

  /// The class of \p Obj, or null for null/stale ids.
  Klass *klassOf(ObjectId Obj);

  /// Class a mirror object stands for (null when \p Mirror is not a mirror).
  Klass *klassFromMirror(ObjectId Mirror);

  /// All loaded classes, in definition order.
  const std::vector<Klass *> &loadedClasses() const { return ClassOrder; }

  /// True when \p Ptr is a method (field) metadata pointer this VM issued.
  /// JNI IDs are raw pointers; these registries let the simulator and the
  /// checkers recognize garbage IDs without dereferencing them. Lock-free.
  bool isMethodId(const void *Ptr) const {
    return Ptr && MethodIds.find(reinterpret_cast<uint64_t>(Ptr)) != nullptr;
  }
  bool isFieldId(const void *Ptr) const {
    return Ptr && FieldIds.find(reinterpret_cast<uint64_t>(Ptr)) != nullptr;
  }

  Klass *objectClass() const { return ObjectKlass; }
  Klass *classClass() const { return ClassKlass; }
  Klass *stringClass() const { return StringKlass; }
  Klass *throwableClass() const { return ThrowableKlass; }

  //===--------------------------------------------------------------------===
  // Threads
  //===--------------------------------------------------------------------===

  JThread &mainThread() { return *Threads.front(); }
  JThread &attachThread(std::string Name);
  void detachThread(JThread &Thread);
  JThread *threadById(uint32_t Id);
  const std::vector<std::unique_ptr<JThread>> &threads() const {
    return Threads;
  }

  //===--------------------------------------------------------------------===
  // Allocation and strings
  //===--------------------------------------------------------------------===

  ObjectId newObject(Klass *Kl);
  ObjectId newString(std::string_view Utf8);
  ObjectId newStringUtf16(std::u16string Chars);
  ObjectId newPrimArray(JType ElemKind, size_t Len);
  ObjectId newObjArray(Klass *ElemClass, size_t Len);

  /// UTF-8 contents of a string object ("" for non-strings).
  std::string utf8Of(ObjectId Str);

  //===--------------------------------------------------------------------===
  // Exceptions
  //===--------------------------------------------------------------------===

  /// Builds a throwable of class \p ClassName (which must extend
  /// java/lang/Throwable) carrying \p Message and \p Cause, and capturing
  /// \p Thread's current stack.
  ObjectId makeThrowable(JThread &Thread, const char *ClassName,
                         std::string Message, ObjectId Cause = ObjectId());

  /// makeThrowable + set pending on \p Thread.
  void throwNew(JThread &Thread, const char *ClassName, std::string Message);

  /// Renders "Exception in thread ... \n at ... \nCaused by: ..." text in
  /// the style of Figure 9(c).
  std::string describeThrowable(ObjectId Throwable);

  /// Accessors into throwable fields.
  std::string throwableMessage(ObjectId Throwable);
  ObjectId throwableCause(ObjectId Throwable);

  //===--------------------------------------------------------------------===
  // Invocation
  //===--------------------------------------------------------------------===

  /// Invokes \p Method. With \p VirtualDispatch, re-selects the
  /// implementation from the dynamic class of \p Self. Returns the result or
  /// the default value when an exception became pending.
  Value invoke(JThread &Thread, MethodInfo *Method, const Value &Self,
               const std::vector<Value> &Args, bool VirtualDispatch);

  /// Convenience: look up and invoke ClassName.MethodName(Desc) on \p Self.
  Value invokeByName(JThread &Thread, const char *ClassName,
                     const char *MethodName, const char *Desc,
                     const Value &Self, const std::vector<Value> &Args);

  //===--------------------------------------------------------------------===
  // Global / weak-global references
  //===--------------------------------------------------------------------===

  /// Creates a global (or weak-global) reference; returns the handle word.
  uint64_t newGlobalRef(ObjectId Target, bool Weak);

  /// Live/stale/never-issued classification mirroring LocalRefState.
  LocalRefState globalRefState(const HandleBits &Bits) const;

  /// Resolves a live global handle. A weak handle whose target was
  /// collected resolves to null (legal per JNI).
  ObjectId resolveGlobal(const HandleBits &Bits) const;

  bool deleteGlobalRef(const HandleBits &Bits);

  size_t liveGlobalCount(bool Weak) const;

  //===--------------------------------------------------------------------===
  // Central handle resolution (used by every JNI function)
  //===--------------------------------------------------------------------===

  /// Resolves \p Word as seen by \p Current. Invalid handles (wrong magic,
  /// stale, wrong thread) flow through the undefined-behavior policy with
  /// classification \p NullOpClass and resolve to null. \p WasUndefined is
  /// set when the policy ran.
  ObjectId resolveHandle(JThread &Current, uint64_t Word,
                         bool *WasUndefined = nullptr);

  /// Policy-free handle inspection for tools (JVMTI agents, checkers): never
  /// records incidents, never poisons threads. \p Perspective is the thread
  /// on whose behalf validity is judged (locals of other threads report
  /// WrongThreadLive).
  struct PeekResult {
    enum class Status {
      Null,
      Live,
      Stale,      ///< was valid once, no longer (deleted/popped/freed)
      NotARef,    ///< bit pattern is not a reference handle at all
      WrongThreadLive, ///< live local reference of a different thread
      ClearedWeak,     ///< live weak handle whose target was collected
    };
    Status S = Status::Null;
    ObjectId Target;
    RefKind Kind = RefKind::Null;
    uint32_t OwnerThread = 0;
  };
  PeekResult peekHandle(uint64_t Word, const JThread *Perspective);

  //===--------------------------------------------------------------------===
  // Monitors
  //===--------------------------------------------------------------------===

  MonitorResult monitorEnter(JThread &Thread, ObjectId Obj);
  MonitorResult monitorExit(JThread &Thread, ObjectId Obj);
  /// Number of distinct monitors currently held (any thread).
  size_t heldMonitorCount() const {
    std::lock_guard<std::mutex> Lock(MonitorsMutex);
    return Monitors.size();
  }

  //===--------------------------------------------------------------------===
  // Pinned resources
  //===--------------------------------------------------------------------===

  /// Pins \p Target; returns the pin cookie.
  uint64_t pinObject(JThread &Thread, ObjectId Target, PinKind Kind);
  /// Unpins by target+kind (JNI release calls identify resources this way).
  /// Returns false when no matching pin exists (double free).
  bool unpinObject(JThread &Thread, ObjectId Target, PinKind Kind);
  const std::vector<PinRecord> &pins() const { return Pins; }

  //===--------------------------------------------------------------------===
  // Undefined behavior, GC, lifecycle
  //===--------------------------------------------------------------------===

  /// Routes an undefined operation through the production policy: records
  /// an incident, possibly poisons \p Thread or raises an NPE.
  ProductionOutcome undefined(JThread &Thread, UndefinedOp Op,
                              std::string Detail);

  /// Forces a collection (skipped while any thread is in a critical region,
  /// mirroring the "JVM disables GC" drastic measure).
  void gc();

  /// Allocation hook driving AutoGcPeriod. \p Newborn is the object the
  /// caller just allocated but has not yet made reachable; it is kept as a
  /// GC root for the duration of any collection this hook triggers —
  /// including a collection run by another thread while this one is parked
  /// waiting its turn.
  void maybeAutoGc(ObjectId Newborn = ObjectId());

  /// True while any thread holds a JNI critical section.
  bool anyThreadInCritical() const;

  /// Fires VM death events exactly once. Called by the destructor if the
  /// embedder did not call it.
  void shutdown();
  bool isShutdown() const { return Shutdown.load(std::memory_order_acquire); }

  //===--------------------------------------------------------------------===
  // Stop-the-world mutator protocol
  //===--------------------------------------------------------------------===

  /// Marks the calling OS thread as an active mutator of this VM for the
  /// scope's lifetime. A collection cannot start while any mutator is
  /// active; conversely a mutator entering while a collection runs parks
  /// until it finishes. Reentrant: nested scopes on the same thread only
  /// touch a thread-local depth counter, so nested JNI calls stay lock-free.
  class MutatorScope {
  public:
    explicit MutatorScope(Vm &Owner) : Owner(Owner) { Owner.enterMutator(); }
    ~MutatorScope() { Owner.exitMutator(); }
    MutatorScope(const MutatorScope &) = delete;
    MutatorScope &operator=(const MutatorScope &) = delete;

  private:
    Vm &Owner;
  };

  void enterMutator();
  void exitMutator();

  /// Striped lock for static field storage (FieldInfo::StaticValue), hashed
  /// by field identity. The JNI layer takes this around static get/set.
  std::mutex &staticFieldLock(const void *Field) {
    return StaticFieldMutexes[(reinterpret_cast<uintptr_t>(Field) >> 4) %
                              StaticFieldMutexes.size()];
  }

  void addObserver(VmEventObserver *Observer);
  void removeObserver(VmEventObserver *Observer);

  /// Opaque backpointer to the JNI runtime built on this VM.
  void *JniRuntimeHandle = nullptr;

  /// RAII scope that keeps freshly allocated, not-yet-reachable objects
  /// alive across further allocations (they are GC roots until the scope
  /// closes). VM-internal construction sequences use this. Roots live on
  /// the owning thread's TempRootStack so concurrent scopes on different
  /// threads never truncate each other's entries.
  class TempRoots {
  public:
    explicit TempRoots(JThread &Thread)
        : Thread(Thread), Base(Thread.TempRootStack.size()) {}
    ~TempRoots() { Thread.TempRootStack.resize(Base); }
    TempRoots(const TempRoots &) = delete;
    TempRoots &operator=(const TempRoots &) = delete;
    void add(ObjectId Id) { Thread.TempRootStack.push_back(Id); }

  private:
    JThread &Thread;
    size_t Base;
  };

private:
  friend struct VmTlsCache;

  void bootstrapCoreClasses();
  Klass *defineClassLocked(const ClassDef &Def);
  Klass *defineArrayClassLocked(std::string_view Name);
  Klass *lookupClassLocked(std::string_view Name) const;
  void registerClassLocked(const std::string &Name, Klass *Kl);
  LocalRefState globalRefStateLocked(const HandleBits &Bits) const;
  void collectRoots(std::vector<ObjectId> &Roots);
  std::vector<VmEventObserver *> observersSnapshot() const;

  //===--------------------------------------------------------------------===
  // Safepoint protocol (DESIGN.md §12)
  //===--------------------------------------------------------------------===

  /// Per-OS-thread mutator record. `Active` is the thread's safepoint flag:
  /// 1 while it executes VM code that may touch the heap, 0 while it is
  /// outside the VM or parked at a safepoint. `Newborn` publishes the one
  /// object the thread allocated but has not yet made reachable while it
  /// drives (or parks behind) a collection in maybeAutoGc().
  struct MutatorSlot {
    std::atomic<int> Active{0};
    std::atomic<uint64_t> Newborn{0};
  };

  /// Thread-local view of a slot, cached per (thread, VM serial). Depth is
  /// the MutatorScope nesting count, owner-thread-only.
  struct MutatorTls {
    uint64_t Serial = 0;
    Vm *V = nullptr;
    MutatorSlot *Slot = nullptr;
    int Depth = 0;
  };

  MutatorTls &mutatorTlsForCurrentThread();
  static void returnMutatorSlotTrampoline(void *VmPtr, void *SlotPtr);
  void returnMutatorSlot(MutatorSlot *Slot);
  int activeMutatorCount();

  /// Collector-cycle bracket: takes the exclusive collector role (parking
  /// behind a running collection first, with the caller's own mutator slot
  /// deactivated while it waits — the self-mutator exemption).
  void beginCollector();
  void endCollector();
  /// One stop-the-world pause: raises StwRequested and waits until every
  /// mutator slot is inactive. resumeWorld() lowers the flag and wakes
  /// parked mutators. Pause bodies run without StwMutex held.
  void stopWorld();
  void resumeWorld();

  struct GlobalSlot {
    ObjectId Target;
    uint32_t Gen = 0;
    bool Live = false;
    bool Weak = false;
    bool Cleared = false; ///< weak target collected
  };

  struct MonitorState {
    uint32_t OwnerThread = 0;
    uint32_t Count = 0;
  };

  VmOptions Options;
  DiagnosticSink Diags;
  Heap TheHeap;

  //===--------------------------------------------------------------------===
  // Locks. Order (outermost first) when more than one must be held:
  //   StwMutex > ClassesMu > ThreadsMutex > GlobalsMutex > MonitorsMutex
  //   > PinsMutex > StaticFieldMutexes > Heap::Mu > ObserversMutex
  //   > DiagnosticSink::Mu
  // (the live-instance registry lock in Concurrent.cpp nests inside all of
  // these). Most paths take exactly one; the hot paths — mutator enter/exit,
  // allocation, handle resolution, class/thread lookup — take none at all:
  // they run on the safepoint flags, TLABs, SnapshotMaps, and the thread
  // table below. Observer callbacks and GC pause bodies run with no lock
  // held (the GC relies on stop-the-world instead).
  //===--------------------------------------------------------------------===

  /// Guards the collector role, StwRequested transitions, and the mutator
  /// slot pool. Taken by a thread's *first* entry into a VM (slot
  /// acquisition), by collections, and by mutators parking at a safepoint —
  /// never on the steady-state mutator enter/exit path.
  mutable std::mutex StwMutex;
  std::condition_variable StwCv;
  std::atomic<bool> StwRequested{false};
  bool CollectorActive = false;

  ChunkedVector<MutatorSlot> MutatorSlots; ///< grown under StwMutex
  std::vector<MutatorSlot *> FreeMutatorSlots;

  mutable std::mutex ClassesMu; ///< serializes definers: Classes, ClassOrder,
                                ///< and inserts into the SnapshotMaps below
  std::map<std::string, std::unique_ptr<Klass>, std::less<>> Classes;
  std::vector<Klass *> ClassOrder;
  Klass *ObjectKlass = nullptr;
  Klass *ClassKlass = nullptr;
  Klass *StringKlass = nullptr;
  Klass *ThrowableKlass = nullptr;

  /// Lock-free read side of the class/method/field registries. Keyed by
  /// name hash (collisions rejected via predicate), mirror id, and raw
  /// pointer value respectively.
  SnapshotMap<Klass *> ClassByName;
  SnapshotMap<Klass *> MirrorToKlass;
  SnapshotMap<const void *> MethodIds;
  SnapshotMap<const void *> FieldIds;

  mutable std::mutex ThreadsMutex; ///< Threads (ownership) and id assignment
  std::vector<std::unique_ptr<JThread>> Threads;
  std::atomic<uint32_t> NextThreadId{1};

  /// Lock-free thread lookup, indexed by thread id (15-bit handle field,
  /// sized for request-per-thread server workloads that never reuse ids).
  /// Threads are never unregistered before VM death, so entries are stable.
  std::array<std::atomic<JThread *>, MaxThreadIds> ThreadTable = {};

  mutable std::mutex GlobalsMutex; ///< Globals, FreeGlobalSlots
  std::vector<GlobalSlot> Globals;
  std::vector<uint32_t> FreeGlobalSlots;

  mutable std::mutex MonitorsMutex; ///< Monitors
  std::map<uint64_t, MonitorState> Monitors;

  mutable std::mutex PinsMutex; ///< Pins, NextPinCookie, pin-count updates
  std::vector<PinRecord> Pins;
  uint64_t NextPinCookie = 1;

  const uint64_t VmSerial; ///< live-instance registry key for TLS caches

  std::array<std::mutex, 16> StaticFieldMutexes;

  mutable std::mutex ObserversMutex; ///< Observers
  std::vector<VmEventObserver *> Observers;

  std::atomic<uint32_t> AllocsSinceGc{0};
  std::atomic<bool> Shutdown{false};
};

/// UTF conversion helpers (BMP only; adequate for the experiments).
std::u16string utf8ToUtf16(std::string_view Utf8);
std::string utf16ToUtf8(const std::u16string &Chars);

} // namespace jinn::jvm

#endif // JINN_JVM_VM_H
