//===- jvm/Value.h - Runtime values and object identities ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ObjectId names a heap object *generationally*: reclaiming a heap slot
/// bumps the slot generation, so a stale ObjectId never silently resolves to
/// a recycled object — the heap can distinguish "moved/reclaimed" from
/// "live", which is what makes dangling-reference bugs observable in this
/// reproduction. Value is the tagged runtime value used for fields, array
/// elements, arguments, and returns.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_VALUE_H
#define JINN_JVM_VALUE_H

#include "jvm/Descriptor.h"

#include <bit>
#include <cstdint>

namespace jinn::jvm {

/// Generational name of a heap object. A default-constructed ObjectId is the
/// null reference (generation 0 is never assigned to a live object).
struct ObjectId {
  uint32_t Index = 0;
  uint32_t Gen = 0;

  bool isNull() const { return Gen == 0; }
  friend bool operator==(const ObjectId &A, const ObjectId &B) {
    return A.Index == B.Index && A.Gen == B.Gen;
  }
  /// Packs into one word (map keys, tag values).
  uint64_t raw() const {
    return (static_cast<uint64_t>(Index) << 32) | Gen;
  }
  static ObjectId fromRaw(uint64_t Raw) {
    return {static_cast<uint32_t>(Raw >> 32), static_cast<uint32_t>(Raw)};
  }
};

/// A tagged runtime value. Integral primitives (boolean..long) live in I,
/// float/double in D, references in Obj.
struct Value {
  JType Kind = JType::Void;
  int64_t I = 0;
  double D = 0.0;
  ObjectId Obj;

  static Value makeVoid() { return Value(); }
  static Value makeBoolean(bool V) { return make(JType::Boolean, V ? 1 : 0); }
  static Value makeByte(int8_t V) { return make(JType::Byte, V); }
  static Value makeChar(uint16_t V) { return make(JType::Char, V); }
  static Value makeShort(int16_t V) { return make(JType::Short, V); }
  static Value makeInt(int32_t V) { return make(JType::Int, V); }
  static Value makeLong(int64_t V) { return make(JType::Long, V); }
  static Value makeFloat(float V) {
    Value Out;
    Out.Kind = JType::Float;
    Out.D = V;
    return Out;
  }
  static Value makeDouble(double V) {
    Value Out;
    Out.Kind = JType::Double;
    Out.D = V;
    return Out;
  }
  static Value makeRef(ObjectId Id) {
    Value Out;
    Out.Kind = JType::Object;
    Out.Obj = Id;
    return Out;
  }
  static Value makeNull() { return makeRef(ObjectId()); }

  bool isRef() const { return Kind == JType::Object; }
  bool isNullRef() const { return isRef() && Obj.isNull(); }

  /// Integral payload, asserting the kind is integral.
  int64_t asIntegral() const { return I; }
  double asFloating() const { return D; }

private:
  static Value make(JType Kind, int64_t I) {
    Value Out;
    Out.Kind = Kind;
    Out.I = I;
    return Out;
  }
};

/// Zero/null value of type \p Type (what a poisoned or aborted call returns).
inline Value defaultValueFor(JType Type) {
  switch (Type) {
  case JType::Void:
    return Value::makeVoid();
  case JType::Object:
    return Value::makeNull();
  case JType::Float:
    return Value::makeFloat(0.0f);
  case JType::Double:
    return Value::makeDouble(0.0);
  default: {
    Value Out;
    Out.Kind = Type;
    Out.I = 0;
    return Out;
  }
  }
}

} // namespace jinn::jvm

#endif // JINN_JVM_VALUE_H
