//===- jvm/Heap.h - Garbage-collected object heap ------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mark-sweep heap that *simulates* a moving collector: every surviving
/// object is assigned a fresh simulated address on a moving collection, and
/// reclaimed slots bump their generation before reuse. A stale ObjectId
/// therefore never resolves, which makes use-after-release bugs (the GNOME
/// bug of Figure 1, the Subversion destructor bug of §6.4.1) observable
/// instead of silently benign. Pinned objects (JNI critical sections,
/// Get<T>ArrayElements) are exempt from motion, as in a real JVM.
///
/// Concurrency model (DESIGN.md §12): allocation goes through per-thread
/// allocation buffers (TLABs) that reserve slot batches under the heap lock
/// and then allocate without it; id resolution is lock-free against a
/// per-slot atomic (generation, live) header; the mark phase can run
/// incrementally across several short stop-the-world pauses with a
/// dirty-container write barrier between them, and the sweep+move phase
/// runs in one final pause. The Vm's safepoint protocol provides the
/// pauses; the Heap itself never blocks a mutator except during TLAB
/// refill.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_HEAP_H
#define JINN_JVM_HEAP_H

#include "jvm/Concurrent.h"
#include "jvm/Value.h"

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace jinn::jvm {

class Klass;

/// Physical layout family of a heap object.
enum class ObjShape : uint8_t { Plain, PrimArray, ObjArray, Str };

/// One heap slot. Primitive array elements are stored as int64 payloads
/// (float/double bit-cast) to keep one storage path for all eight kinds.
///
/// `State` packs (Gen << 1 | Live) and is the only field read without
/// synchronization: the allocating thread publishes a slot by storing State
/// with release order *after* initializing the payload, and the collector
/// reclaims under stop-the-world. Everything else is written either by the
/// slot's owner before publication or by the collector during a pause.
struct HeapObject {
  std::atomic<uint64_t> State{0};
  Klass *Kl = nullptr;
  ObjShape Shape = ObjShape::Plain;
  bool Marked = false;
  uint32_t PinCount = 0;  ///< pinned by a JNI critical/elements acquisition
  uint64_t Address = 0;   ///< simulated address; changes on moving GC
  uint32_t MoveCount = 0; ///< times this object has been relocated

  std::vector<Value> Fields;      ///< Plain: instance fields by slot
  JType ElemKind = JType::Void;   ///< PrimArray element kind
  std::vector<int64_t> PrimElems; ///< PrimArray payload
  std::vector<ObjectId> ObjElems; ///< ObjArray payload
  std::u16string Chars;           ///< Str payload

  static uint64_t packState(uint32_t Gen, bool Live) {
    return (static_cast<uint64_t>(Gen) << 1) | (Live ? 1 : 0);
  }
  static uint32_t genOf(uint64_t State) {
    return static_cast<uint32_t>(State >> 1);
  }
  static bool liveOf(uint64_t State) { return State & 1; }

  uint32_t gen() const {
    return genOf(State.load(std::memory_order_acquire));
  }
  bool live() const { return liveOf(State.load(std::memory_order_acquire)); }
};

/// Heap statistics for tests and experiments. Allocation-side counters are
/// atomics bumped with relaxed order; collection-side counters are written
/// only under stop-the-world.
struct HeapStats {
  std::atomic<uint64_t> TotalAllocated{0};
  std::atomic<uint64_t> TotalCollected{0};
  std::atomic<uint64_t> GcCount{0};
  std::atomic<uint64_t> MovingGcCount{0};
  std::atomic<uint64_t> TlabRefills{0};
  std::atomic<uint64_t> MarkIncrements{0};
  std::atomic<uint64_t> DirtyRecords{0};
};

/// The object heap. Allocation runs on per-thread TLABs (slot batches
/// reserved under the heap lock, then consumed without it); resolve() and
/// isStale() are lock-free. The collection entry points rely on the Vm's
/// stop-the-world protocol: collect() runs the whole cycle in one pause,
/// while beginIncrementalMark()/incrementalMarkStep()/finishCollect() let
/// the Vm spread marking over several short pauses with mutator windows in
/// between (mutators must call recordRefStore() for reference stores into
/// heap objects while markInProgress()). Objects allocated while a mark is
/// in progress are born marked ("allocate black").
class Heap {
public:
  explicit Heap(unsigned TlabSlots = 64);
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Allocation. The calling thread must be protected from the collector
  /// (a Vm mutator scope, or a single-threaded owner), so a sweep can never
  /// run between slot reservation and publication.
  ObjectId allocPlain(Klass *Kl, uint32_t FieldSlots);
  ObjectId allocPrimArray(Klass *Kl, JType ElemKind, size_t Len);
  ObjectId allocObjArray(Klass *Kl, size_t Len);
  ObjectId allocString(Klass *Kl, std::u16string Chars);

  /// Resolves \p Id to its object, or nullptr when the id is null, out of
  /// range, reclaimed, or from a recycled slot (stale generation).
  /// Lock-free; slot addresses are stable, so the pointer stays valid
  /// across concurrent allocations.
  HeapObject *resolve(ObjectId Id);
  const HeapObject *resolve(ObjectId Id) const;

  /// True when \p Id once named an object that has since been reclaimed or
  /// whose slot was recycled — i.e. the id is dangling rather than null.
  /// Lock-free.
  bool isStale(ObjectId Id) const;

  /// Runs a full mark-sweep collection from \p Roots in one stop-the-world
  /// window. When \p Move is true, surviving unpinned objects receive fresh
  /// simulated addresses. \p BeforeSweep runs after marking and before
  /// reclamation so the owner can clear weak references (query with
  /// isMarked).
  void collect(const std::vector<ObjectId> &Roots, bool Move,
               const std::function<void()> &BeforeSweep = nullptr);

  //===--------------------------------------------------------------------===
  // Incremental mark (each entry point runs inside a stop-the-world pause;
  // mutators run between the pauses)
  //===--------------------------------------------------------------------===

  /// Pause 1: clears marks, activates the write barrier and allocate-black,
  /// and greys \p Roots.
  void beginIncrementalMark(const std::vector<ObjectId> &Roots);

  /// Later pauses: drains the dirty-container buffer and traces up to
  /// \p Budget objects. Returns true when the worklist is empty (marking
  /// may still need a finishCollect() remark for late mutations).
  bool incrementalMarkStep(size_t Budget);

  /// Final pause: re-greys \p Roots (freshly collected) and the dirty
  /// buffer, traces to a fixpoint, deactivates the barrier, runs
  /// \p BeforeSweep, then sweeps and (optionally) moves survivors.
  void finishCollect(const std::vector<ObjectId> &Roots, bool Move,
                     const std::function<void()> &BeforeSweep = nullptr);

  /// True between beginIncrementalMark() and the sweep in finishCollect().
  bool markInProgress() const {
    return MarkActive.load(std::memory_order_acquire);
  }

  /// Mutator write barrier: records that a reference was stored into
  /// \p Container, so an already-scanned container is re-scanned at the
  /// next pause (incremental-update marking). Near-free when no mark is in
  /// progress. Callers may invoke it before or after the store: the
  /// safepoint handshake orders both against the next pause.
  void recordRefStore(ObjectId Container) {
    if (!MarkActive.load(std::memory_order_acquire))
      return;
    recordRefStoreSlow(Container);
  }

  /// Valid during/after mark: whether \p Id was reached from the roots.
  bool isMarked(ObjectId Id) const;

  size_t liveCount() const {
    return LiveCount.load(std::memory_order_acquire);
  }
  const HeapStats &stats() const { return Stats; }

private:
  friend struct HeapTestAccess;
  friend struct HeapTlsCache; ///< TLS cache returns Tlabs on thread exit

  /// Per-thread allocation buffer: a batch of reserved slot indices plus a
  /// private block of simulated addresses. Owned by the heap (returned to
  /// FreeTlabs on OS-thread exit), cached per thread via TLS.
  struct Tlab {
    std::vector<uint32_t> Free; ///< reserved, unallocated slot indices
    uint64_t NextAddress = 0;   ///< private simulated-address cursor
    uint64_t AddressEnd = 0;
  };

  std::pair<ObjectId, HeapObject *> allocSlot();
  Tlab &tlabForCurrentThread();
  void refill(Tlab &T);
  static void returnTlabTrampoline(void *HeapPtr, void *TlabPtr);
  void returnTlab(Tlab *T);

  void clearMarks();
  void markFrom(ObjectId Root);
  void markRoots(const std::vector<ObjectId> &Roots);
  /// Traces up to \p Budget objects; returns true when the worklist is
  /// empty afterwards.
  bool traceWorklist(size_t Budget);
  void drainDirty();
  void recordRefStoreSlow(ObjectId Container);
  void sweep(bool Move);

  const unsigned TlabSlots;
  const uint64_t Serial; ///< live-instance registry key for TLS caches

  /// Slot storage: append-only, address-stable, lock-free indexing. First
  /// chunk 1024 slots, geometric growth.
  ChunkedVector<HeapObject, 10, 23> Slots;

  /// Guards FreeList, Tlabs/FreeTlabs, slot-range reservation, and the
  /// sweep's free-list refund. A leaf lock: taken on TLAB refill and during
  /// collection pauses only.
  mutable std::mutex Mu;
  std::vector<uint32_t> FreeList;
  std::vector<std::unique_ptr<Tlab>> Tlabs;
  std::vector<Tlab *> FreeTlabs;

  std::atomic<uint64_t> NextAddress{0x10000};
  std::atomic<size_t> LiveCount{0};

  /// Mark state. The worklist is touched only by the collecting thread
  /// (inside pauses); the dirty buffer is mutator-shared.
  std::atomic<bool> MarkActive{false};
  std::vector<uint32_t> MarkWorklist;
  std::mutex DirtyMu;
  std::vector<uint64_t> Dirty;

  HeapStats Stats;
};

} // namespace jinn::jvm

#endif // JINN_JVM_HEAP_H
