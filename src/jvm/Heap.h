//===- jvm/Heap.h - Garbage-collected object heap ------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mark-sweep heap that *simulates* a moving collector: every surviving
/// object is assigned a fresh simulated address on a moving collection, and
/// reclaimed slots bump their generation before reuse. A stale ObjectId
/// therefore never resolves, which makes use-after-release bugs (the GNOME
/// bug of Figure 1, the Subversion destructor bug of §6.4.1) observable
/// instead of silently benign. Pinned objects (JNI critical sections,
/// Get<T>ArrayElements) are exempt from motion, as in a real JVM.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_HEAP_H
#define JINN_JVM_HEAP_H

#include "jvm/Value.h"

#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace jinn::jvm {

class Klass;

/// Physical layout family of a heap object.
enum class ObjShape : uint8_t { Plain, PrimArray, ObjArray, Str };

/// One heap slot. Primitive array elements are stored as int64 payloads
/// (float/double bit-cast) to keep one storage path for all eight kinds.
struct HeapObject {
  Klass *Kl = nullptr;
  ObjShape Shape = ObjShape::Plain;
  uint32_t Gen = 0;
  bool Live = false;
  bool Marked = false;
  uint32_t PinCount = 0;  ///< pinned by a JNI critical/elements acquisition
  uint64_t Address = 0;   ///< simulated address; changes on moving GC
  uint32_t MoveCount = 0; ///< times this object has been relocated

  std::vector<Value> Fields;      ///< Plain: instance fields by slot
  JType ElemKind = JType::Void;   ///< PrimArray element kind
  std::vector<int64_t> PrimElems; ///< PrimArray payload
  std::vector<ObjectId> ObjElems; ///< ObjArray payload
  std::u16string Chars;           ///< Str payload
};

/// Heap statistics for tests and experiments.
struct HeapStats {
  uint64_t TotalAllocated = 0;
  uint64_t TotalCollected = 0;
  uint64_t GcCount = 0;
  uint64_t MovingGcCount = 0;
};

/// The object heap. Allocation and id resolution are thread-safe under a
/// reader/writer lock; collect() runs lock-free and relies on the Vm's
/// stop-the-world protocol to exclude every mutator (which also lets the
/// BeforeSweep callback call isMarked without self-deadlocking). Objects
/// live in a deque so resolved pointers stay valid across concurrent
/// allocations.
class Heap {
public:
  ObjectId allocPlain(Klass *Kl, uint32_t FieldSlots);
  ObjectId allocPrimArray(Klass *Kl, JType ElemKind, size_t Len);
  ObjectId allocObjArray(Klass *Kl, size_t Len);
  ObjectId allocString(Klass *Kl, std::u16string Chars);

  /// Resolves \p Id to its object, or nullptr when the id is null, out of
  /// range, reclaimed, or from a recycled slot (stale generation).
  HeapObject *resolve(ObjectId Id);
  const HeapObject *resolve(ObjectId Id) const;

  /// True when \p Id once named an object that has since been reclaimed or
  /// whose slot was recycled — i.e. the id is dangling rather than null.
  bool isStale(ObjectId Id) const;

  /// Runs a mark-sweep collection from \p Roots. When \p Move is true,
  /// surviving unpinned objects receive fresh simulated addresses.
  /// \p BeforeSweep runs after marking and before reclamation so the owner
  /// can clear weak references (query with isMarked).
  void collect(const std::vector<ObjectId> &Roots, bool Move,
               const std::function<void()> &BeforeSweep = nullptr);

  /// Valid during/after mark: whether \p Id was reached from the roots.
  bool isMarked(ObjectId Id) const;

  size_t liveCount() const {
    std::shared_lock<std::shared_mutex> Lock(Mu);
    return LiveCount;
  }
  const HeapStats &stats() const { return Stats; }

private:
  friend struct HeapTestAccess;

  std::pair<ObjectId, HeapObject *> allocSlot();
  void markFrom(ObjectId Root, std::vector<uint32_t> &Worklist);

  mutable std::shared_mutex Mu;
  std::deque<HeapObject> Slots;
  std::vector<uint32_t> FreeList;
  uint64_t NextAddress = 0x10000;
  size_t LiveCount = 0;
  HeapStats Stats;
};

} // namespace jinn::jvm

#endif // JINN_JVM_HEAP_H
