//===- jvm/Policy.cpp - Production-VM undefined-behavior policies --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Policy.h"

#include "support/Compiler.h"

using namespace jinn::jvm;

const char *jinn::jvm::vmFlavorName(VmFlavor Flavor) {
  return Flavor == VmFlavor::HotSpotLike ? "hotspot" : "j9";
}

const char *jinn::jvm::undefinedOpName(UndefinedOp Op) {
  switch (Op) {
  case UndefinedOp::PendingExceptionUse:
    return "JNI call with exception pending";
  case UndefinedOp::InvalidArgument:
    return "invalid argument to JNI function";
  case UndefinedOp::ClassObjectConfusion:
    return "jclass/jobject confusion";
  case UndefinedOp::IdReferenceConfusion:
    return "ID used as reference";
  case UndefinedOp::UnterminatedString:
    return "unterminated Unicode string";
  case UndefinedOp::AccessControl:
    return "access control violation";
  case UndefinedOp::DanglingLocalRef:
    return "dangling local reference";
  case UndefinedOp::WrongThreadEnv:
    return "JNIEnv used across threads";
  case UndefinedOp::CriticalRegionCall:
    return "JNI call inside critical region";
  case UndefinedOp::DanglingGlobalRef:
    return "dangling global reference";
  }
  JINN_UNREACHABLE("invalid UndefinedOp");
}

ProductionOutcome jinn::jvm::productionBehavior(VmFlavor Flavor,
                                                UndefinedOp Op) {
  bool HotSpot = Flavor == VmFlavor::HotSpotLike;
  switch (Op) {
  case UndefinedOp::PendingExceptionUse: // Table 1 row 1: running / crash
    return HotSpot ? ProductionOutcome::Ignore : ProductionOutcome::Crash;
  case UndefinedOp::InvalidArgument: // row 2: running / crash
    return HotSpot ? ProductionOutcome::Ignore : ProductionOutcome::Crash;
  case UndefinedOp::ClassObjectConfusion: // row 3: crash / crash
    return ProductionOutcome::Crash;
  case UndefinedOp::IdReferenceConfusion: // row 6: crash / crash
    return ProductionOutcome::Crash;
  case UndefinedOp::UnterminatedString: // row 8: running / NPE
    return HotSpot ? ProductionOutcome::Ignore : ProductionOutcome::ThrowNpe;
  case UndefinedOp::AccessControl: // row 9: NPE / NPE
    return ProductionOutcome::ThrowNpe;
  case UndefinedOp::DanglingLocalRef: // row 13: crash / crash
    return ProductionOutcome::Crash;
  case UndefinedOp::WrongThreadEnv: // row 14: running / crash
    return HotSpot ? ProductionOutcome::Ignore : ProductionOutcome::Crash;
  case UndefinedOp::CriticalRegionCall: // row 16: deadlock / deadlock
    return ProductionOutcome::Deadlock;
  case UndefinedOp::DanglingGlobalRef: // like a dangling local: crash
    return ProductionOutcome::Crash;
  }
  JINN_UNREACHABLE("invalid UndefinedOp");
}
