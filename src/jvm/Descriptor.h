//===- jvm/Descriptor.h - JVM type descriptors ---------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JVM field/method descriptor parsing ("(Ljava/lang/String;I[J)V"). JNI
/// expresses Java types as strings, which is precisely why its typing rules
/// escape static checking (paper §5.2); the dynamic checkers re-derive type
/// information from these descriptors at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_DESCRIPTOR_H
#define JINN_JVM_DESCRIPTOR_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jinn::jvm {

/// The ten JVM value kinds (nine value types plus void).
enum class JType : uint8_t {
  Void,
  Boolean,
  Byte,
  Char,
  Short,
  Int,
  Long,
  Float,
  Double,
  Object,
};

/// Returns the descriptor character for a primitive \p Type ('I', 'J', ...).
char typeDescriptorChar(JType Type);

/// Returns a readable name ("int", "object", ...).
const char *typeName(JType Type);

/// True for the eight primitive value types (not Object, not Void).
bool isPrimitive(JType Type);

/// A parsed field/parameter/return type.
struct TypeDesc {
  JType Kind = JType::Void;
  /// For Kind == Object: the internal class name ("java/lang/String") or
  /// array descriptor ("[I", "[Ljava/lang/String;"). Empty otherwise.
  std::string ClassName;

  bool isReference() const { return Kind == JType::Object; }
  bool isArray() const {
    return isReference() && !ClassName.empty() && ClassName[0] == '[';
  }

  /// Renders back to descriptor syntax ("I", "Ljava/lang/String;", "[J").
  std::string toDescriptor() const;
};

/// A parsed method descriptor.
struct MethodDesc {
  std::vector<TypeDesc> Params;
  TypeDesc Ret;
};

/// Parses a field descriptor; returns false on malformed input.
bool parseFieldDescriptor(std::string_view Desc, TypeDesc &Out);

/// Parses a method descriptor; returns false on malformed input.
bool parseMethodDescriptor(std::string_view Desc, MethodDesc &Out);

} // namespace jinn::jvm

#endif // JINN_JVM_DESCRIPTOR_H
