//===- jvm/JThread.h - VM threads and local reference frames -------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A VM thread owns the state every JNI pitfall in the paper revolves
/// around: a stack of local-reference frames (implicitly pushed around each
/// native method invocation, capacity 16 unless extended), the pending
/// exception, the critical-section depth, a simulated call stack for
/// Figure 9-style traces, and a "poisoned" flag that models a thread that
/// has (simulated-)crashed.
///
/// Local reference slots are generational: DeleteLocalRef or a frame pop
/// bumps the slot generation, so previously-issued handles become stale bit
/// patterns rather than aliases of future references.
///
/// Concurrency model (DESIGN.md §12): local-ref frames are thread-private
/// by construction, so push/pop/new/delete are owner-thread-only and take
/// no lock at all. The slot arena stores (generation, live) and the target
/// as per-slot atomics in an address-stable chunked array, which lets the
/// two legitimate cross-thread readers — WrongThreadRef probes and the GC
/// root scan — run lock-free against a seqlock-style re-check instead of
/// serializing every push/pop behind a mutex.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_JTHREAD_H
#define JINN_JVM_JTHREAD_H

#include "jvm/Concurrent.h"
#include "jvm/Handle.h"
#include "jvm/Value.h"

#include <atomic>
#include <string>
#include <vector>

namespace jinn::jvm {

class Vm;

/// One simulated stack frame for diagnostics.
struct StackEntry {
  bool IsNative = false;
  std::string Display; ///< e.g. "ExceptionState.main(ExceptionState.java:5)"
};

/// State of a local-reference handle relative to its owning thread.
enum class LocalRefState : uint8_t {
  Live,        ///< valid, usable
  Stale,       ///< existed once; slot deleted or frame popped
  NeverIssued, ///< no such slot/generation was ever handed out
};

/// A VM thread. Created via Vm::attachThread; the main thread exists from
/// VM construction.
///
/// Thread-safety contract: members below are split into three classes.
///  - *Owner-only*: frame push/pop, ref creation/deletion, and the plain
///    fields (Pending, TempRootStack, Stack, Poisoned). Only the OS thread
///    this JThread represents may touch them while it runs; the collector
///    reads them during stop-the-world pauses (the safepoint handshake
///    provides the happens-before edge).
///  - *Lock-free shared*: localRefState / resolveLocal / collectRoots /
///    everOverflowedCapacity read per-slot atomics and may be called from
///    any thread at any time.
///  - CriticalDepth is an atomic polled by the GC-initiating thread.
class JThread {
public:
  JThread(Vm &Owner, uint32_t Id, std::string Name);

  Vm &vm() { return Owner; }
  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }

  /// The JNIEnv* the JNI layer created for this thread (opaque here).
  void *EnvPtr = nullptr;

  //===--------------------------------------------------------------------===
  // Local reference frames (owner thread only unless noted)
  //===--------------------------------------------------------------------===

  /// Pushes a frame. The VM pushes an implicit frame (capacity
  /// \p Capacity, usually 16) around every native method invocation;
  /// user code pushes explicit frames via PushLocalFrame.
  void pushFrame(uint32_t Capacity, bool Explicit);

  /// Pops the top frame, invalidating every local reference created in it.
  /// Returns false when no frame is active.
  bool popFrame();

  /// Number of active frames.
  size_t frameDepth() const { return Frames.size(); }

  /// True when the current top frame was pushed explicitly.
  bool topFrameExplicit() const {
    return !Frames.empty() && Frames.back().Explicit;
  }

  /// Creates a local reference to \p Target in the top frame and returns the
  /// encoded handle word (0 when no frame is active or \p Target is null).
  /// The VM itself never rejects over-capacity creation — a production JVM
  /// with an unchecked bump pointer would not either — but it remembers that
  /// the capacity was exceeded (the "time bomb" of §6.4.1).
  uint64_t newLocalRef(ObjectId Target);

  /// Classifies \p Bits (which must have RefKind::Local and this thread id).
  /// Lock-free; callable from any thread.
  LocalRefState localRefState(const HandleBits &Bits) const;

  /// Resolves a live local handle to its target; null ObjectId otherwise.
  /// Lock-free; callable from any thread.
  ObjectId resolveLocal(const HandleBits &Bits) const;

  /// Deletes a local reference. Returns false when the handle was not live.
  bool deleteLocal(const HandleBits &Bits);

  /// Live locals across all frames (test support).
  size_t liveLocalCount() const;

  /// Live locals created in the top frame.
  size_t liveLocalsInTopFrame() const;

  /// Capacity of the top frame (0 when no frame).
  uint32_t topFrameCapacity() const {
    return Frames.empty() ? 0 : Frames.back().Capacity;
  }

  /// Grows the top frame capacity to at least \p Capacity.
  bool ensureLocalCapacity(uint32_t Capacity);

  /// Whether any frame ever exceeded its declared capacity. Callable from
  /// any thread (scenario agents read it after the run).
  bool everOverflowedCapacity() const {
    return OverflowedCapacity.load(std::memory_order_acquire);
  }

  /// Appends every live local reference target to \p Roots (GC support).
  /// Lock-free over the slot atomics; also reads Pending/TempRootStack,
  /// which is safe only from the collector during a pause or from the owner.
  void collectRoots(std::vector<ObjectId> &Roots) const;

  //===--------------------------------------------------------------------===
  // Exception, critical-section, call-stack, and poison state
  //===--------------------------------------------------------------------===

  /// The pending Java exception (null when none). Written only by the
  /// owning thread while it is a mutator; the collector reads it under
  /// stop-the-world.
  ObjectId Pending;

  /// Nesting depth of JNI critical sections entered by this thread.
  /// Atomic because Vm::anyThreadInCritical polls it from the GC-initiating
  /// thread.
  std::atomic<int> CriticalDepth{0};

  /// Temporary GC roots pinned by in-flight VM operations on this thread
  /// (see Vm::TempRoots). Per-thread so concurrent scopes never clobber
  /// each other; the collector reads it under stop-the-world.
  std::vector<ObjectId> TempRootStack;

  /// Simulated call stack (innermost last).
  std::vector<StackEntry> Stack;

  /// Set after a simulated crash/deadlock; all further VM work on this
  /// thread is suppressed.
  bool Poisoned = false;

  /// Explicit frames (PushLocalFrame) reclaimed by the VM because native
  /// code returned without popping them — a leak indicator.
  uint32_t LeakedExplicitFrames = 0;

  /// Renders the call stack in "\tat Frame" lines, innermost first.
  std::string renderStack() const;

private:
  /// One slot in the local-ref arena. `State` packs (Gen << 1 | Live);
  /// `Target` holds the raw ObjectId word. The owner publishes a new
  /// resident by storing Target first, then State with release order; it
  /// invalidates by bumping State first (release), then clearing Target.
  /// Cross-thread readers load State, then Target, then re-check State —
  /// a torn read is detected by the State change and reported as stale,
  /// never as a wrong target.
  struct LocalSlot {
    std::atomic<uint64_t> State{0};
    std::atomic<uint64_t> Target{0};

    static uint64_t packState(uint32_t Gen, bool Live) {
      return (static_cast<uint64_t>(Gen) << 1) | (Live ? 1 : 0);
    }
    static uint32_t genOf(uint64_t State) {
      return static_cast<uint32_t>(State >> 1);
    }
    static bool liveOf(uint64_t State) { return State & 1; }
  };

  struct LocalFrame {
    uint32_t Capacity = 0;
    bool Explicit = false;
    bool Overflowed = false;
    std::vector<uint32_t> OwnedSlots;
    uint32_t LiveCount = 0;
  };

  Vm &Owner;
  uint32_t Id;
  std::string Name;

  /// Slot arena: address-stable, indexed lock-free by cross-thread probes;
  /// grown only by the owner thread (the single writer).
  ChunkedVector<LocalSlot> Arena;

  /// Owner-confined: only the owning thread pushes/pops frames or recycles
  /// slots, so no synchronization is needed (the GC pause handshake covers
  /// collector reads of Frames metadata, which it does not do today).
  std::vector<uint32_t> FreeSlots;
  std::vector<LocalFrame> Frames;

  std::atomic<bool> OverflowedCapacity{false};

  void invalidateSlot(uint32_t Index);
};

} // namespace jinn::jvm

#endif // JINN_JVM_JTHREAD_H
