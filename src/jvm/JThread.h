//===- jvm/JThread.h - VM threads and local reference frames -------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A VM thread owns the state every JNI pitfall in the paper revolves
/// around: a stack of local-reference frames (implicitly pushed around each
/// native method invocation, capacity 16 unless extended), the pending
/// exception, the critical-section depth, a simulated call stack for
/// Figure 9-style traces, and a "poisoned" flag that models a thread that
/// has (simulated-)crashed.
///
/// Local reference slots are generational: DeleteLocalRef or a frame pop
/// bumps the slot generation, so previously-issued handles become stale bit
/// patterns rather than aliases of future references.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_JTHREAD_H
#define JINN_JVM_JTHREAD_H

#include "jvm/Handle.h"
#include "jvm/Value.h"

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace jinn::jvm {

class Vm;

/// One simulated stack frame for diagnostics.
struct StackEntry {
  bool IsNative = false;
  std::string Display; ///< e.g. "ExceptionState.main(ExceptionState.java:5)"
};

/// State of a local-reference handle relative to its owning thread.
enum class LocalRefState : uint8_t {
  Live,        ///< valid, usable
  Stale,       ///< existed once; slot deleted or frame popped
  NeverIssued, ///< no such slot/generation was ever handed out
};

/// A VM thread. Created via Vm::attachThread; the main thread exists from
/// VM construction.
class JThread {
public:
  JThread(Vm &Owner, uint32_t Id, std::string Name);

  Vm &vm() { return Owner; }
  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }

  /// The JNIEnv* the JNI layer created for this thread (opaque here).
  void *EnvPtr = nullptr;

  //===--------------------------------------------------------------------===
  // Local reference frames
  //===--------------------------------------------------------------------===

  /// Pushes a frame. The VM pushes an implicit frame (capacity
  /// \p Capacity, usually 16) around every native method invocation;
  /// user code pushes explicit frames via PushLocalFrame.
  void pushFrame(uint32_t Capacity, bool Explicit);

  /// Pops the top frame, invalidating every local reference created in it.
  /// Returns false when no frame is active.
  bool popFrame();

  /// Number of active frames.
  size_t frameDepth() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Frames.size();
  }

  /// True when the current top frame was pushed explicitly.
  bool topFrameExplicit() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return !Frames.empty() && Frames.back().Explicit;
  }

  /// Creates a local reference to \p Target in the top frame and returns the
  /// encoded handle word (0 when no frame is active or \p Target is null).
  /// The VM itself never rejects over-capacity creation — a production JVM
  /// with an unchecked bump pointer would not either — but it remembers that
  /// the capacity was exceeded (the "time bomb" of §6.4.1).
  uint64_t newLocalRef(ObjectId Target);

  /// Classifies \p Bits (which must have RefKind::Local and this thread id).
  LocalRefState localRefState(const HandleBits &Bits) const;

  /// Resolves a live local handle to its target; null ObjectId otherwise.
  ObjectId resolveLocal(const HandleBits &Bits) const;

  /// Deletes a local reference. Returns false when the handle was not live.
  bool deleteLocal(const HandleBits &Bits);

  /// Re-points a live local handle at a (possibly updated) target; used by
  /// nothing in production but available to tests.
  size_t liveLocalCount() const;

  /// Live locals created in the top frame.
  size_t liveLocalsInTopFrame() const;

  /// Capacity of the top frame (0 when no frame).
  uint32_t topFrameCapacity() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Frames.empty() ? 0 : Frames.back().Capacity;
  }

  /// Grows the top frame capacity to at least \p Capacity.
  bool ensureLocalCapacity(uint32_t Capacity);

  /// Whether any frame ever exceeded its declared capacity.
  bool everOverflowedCapacity() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return OverflowedCapacity;
  }

  /// Appends every live local reference target to \p Roots (GC support).
  void collectRoots(std::vector<ObjectId> &Roots) const;

  //===--------------------------------------------------------------------===
  // Exception, critical-section, call-stack, and poison state
  //===--------------------------------------------------------------------===

  /// The pending Java exception (null when none). Written only by the
  /// owning thread while it is a mutator; the collector reads it under
  /// stop-the-world.
  ObjectId Pending;

  /// Nesting depth of JNI critical sections entered by this thread.
  /// Atomic because Vm::anyThreadInCritical polls it from the GC-initiating
  /// thread.
  std::atomic<int> CriticalDepth{0};

  /// Temporary GC roots pinned by in-flight VM operations on this thread
  /// (see Vm::TempRoots). Per-thread so concurrent scopes never clobber
  /// each other; the collector reads it under stop-the-world.
  std::vector<ObjectId> TempRootStack;

  /// Simulated call stack (innermost last).
  std::vector<StackEntry> Stack;

  /// Set after a simulated crash/deadlock; all further VM work on this
  /// thread is suppressed.
  bool Poisoned = false;

  /// Explicit frames (PushLocalFrame) reclaimed by the VM because native
  /// code returned without popping them — a leak indicator.
  uint32_t LeakedExplicitFrames = 0;

  /// Renders the call stack in "\tat Frame" lines, innermost first.
  std::string renderStack() const;

private:
  struct LocalSlot {
    ObjectId Target;
    uint32_t Gen = 0;
    bool Live = false;
  };

  struct LocalFrame {
    uint32_t Capacity = 0;
    bool Explicit = false;
    bool Overflowed = false;
    std::vector<uint32_t> OwnedSlots;
    uint32_t LiveCount = 0;
  };

  Vm &Owner;
  uint32_t Id;
  std::string Name;

  /// Leaf lock over the local-ref arena and frame stack. The owning thread
  /// is the only frequent taker (so it is effectively uncontended); other
  /// threads take it only for deliberate cross-thread handle probes
  /// (WrongThreadRef checking) and for GC root collection.
  mutable std::mutex Mu;

  std::vector<LocalSlot> Arena;
  std::vector<uint32_t> FreeSlots;
  std::vector<LocalFrame> Frames;
  bool OverflowedCapacity = false;

  LocalRefState localRefStateLocked(const HandleBits &Bits) const;
  void invalidateSlot(uint32_t Index);
};

} // namespace jinn::jvm

#endif // JINN_JVM_JTHREAD_H
