//===- jvm/Descriptor.cpp - JVM type descriptor parsing ------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Descriptor.h"

#include "support/Compiler.h"

using namespace jinn;
using namespace jinn::jvm;

char jinn::jvm::typeDescriptorChar(JType Type) {
  switch (Type) {
  case JType::Void:
    return 'V';
  case JType::Boolean:
    return 'Z';
  case JType::Byte:
    return 'B';
  case JType::Char:
    return 'C';
  case JType::Short:
    return 'S';
  case JType::Int:
    return 'I';
  case JType::Long:
    return 'J';
  case JType::Float:
    return 'F';
  case JType::Double:
    return 'D';
  case JType::Object:
    return 'L';
  }
  JINN_UNREACHABLE("invalid JType");
}

const char *jinn::jvm::typeName(JType Type) {
  switch (Type) {
  case JType::Void:
    return "void";
  case JType::Boolean:
    return "boolean";
  case JType::Byte:
    return "byte";
  case JType::Char:
    return "char";
  case JType::Short:
    return "short";
  case JType::Int:
    return "int";
  case JType::Long:
    return "long";
  case JType::Float:
    return "float";
  case JType::Double:
    return "double";
  case JType::Object:
    return "object";
  }
  JINN_UNREACHABLE("invalid JType");
}

bool jinn::jvm::isPrimitive(JType Type) {
  return Type != JType::Void && Type != JType::Object;
}

std::string TypeDesc::toDescriptor() const {
  if (Kind != JType::Object)
    return std::string(1, typeDescriptorChar(Kind));
  if (isArray())
    return ClassName;
  return "L" + ClassName + ";";
}

namespace {

/// Consumes one type from the front of \p Rest; false on malformed input.
bool parseOne(std::string_view &Rest, TypeDesc &Out) {
  if (Rest.empty())
    return false;
  size_t Dims = 0;
  while (Dims < Rest.size() && Rest[Dims] == '[')
    ++Dims;
  if (Dims == Rest.size())
    return false;

  char C = Rest[Dims];
  size_t Consumed = Dims + 1;
  JType Kind;
  std::string Name;
  switch (C) {
  case 'V':
    Kind = JType::Void;
    break;
  case 'Z':
    Kind = JType::Boolean;
    break;
  case 'B':
    Kind = JType::Byte;
    break;
  case 'C':
    Kind = JType::Char;
    break;
  case 'S':
    Kind = JType::Short;
    break;
  case 'I':
    Kind = JType::Int;
    break;
  case 'J':
    Kind = JType::Long;
    break;
  case 'F':
    Kind = JType::Float;
    break;
  case 'D':
    Kind = JType::Double;
    break;
  case 'L': {
    size_t Semi = Rest.find(';', Dims + 1);
    if (Semi == std::string_view::npos || Semi == Dims + 1)
      return false;
    Kind = JType::Object;
    Name = std::string(Rest.substr(Dims + 1, Semi - Dims - 1));
    Consumed = Semi + 1;
    break;
  }
  default:
    return false;
  }

  if (Dims > 0) {
    // An array is an object whose class name is the full array descriptor.
    if (Kind == JType::Void)
      return false;
    std::string ArrayName(Rest.substr(0, Consumed));
    Out.Kind = JType::Object;
    Out.ClassName = std::move(ArrayName);
  } else {
    Out.Kind = Kind;
    Out.ClassName = std::move(Name);
  }
  Rest.remove_prefix(Consumed);
  return true;
}

} // namespace

bool jinn::jvm::parseFieldDescriptor(std::string_view Desc, TypeDesc &Out) {
  std::string_view Rest = Desc;
  if (!parseOne(Rest, Out) || !Rest.empty())
    return false;
  return Out.Kind != JType::Void;
}

bool jinn::jvm::parseMethodDescriptor(std::string_view Desc, MethodDesc &Out) {
  Out.Params.clear();
  if (Desc.empty() || Desc.front() != '(')
    return false;
  std::string_view Rest = Desc.substr(1);
  while (!Rest.empty() && Rest.front() != ')') {
    TypeDesc Param;
    if (!parseOne(Rest, Param) || Param.Kind == JType::Void)
      return false;
    Out.Params.push_back(std::move(Param));
  }
  if (Rest.empty() || Rest.front() != ')')
    return false;
  Rest.remove_prefix(1);
  return parseOne(Rest, Out.Ret) && Rest.empty();
}
