//===- jvm/JThread.cpp - VM threads and local reference frames -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/JThread.h"

#include <cassert>

using namespace jinn::jvm;

JThread::JThread(Vm &Owner, uint32_t Id, std::string Name)
    : Owner(Owner), Id(Id), Name(std::move(Name)) {}

void JThread::pushFrame(uint32_t Capacity, bool Explicit) {
  std::lock_guard<std::mutex> Lock(Mu);
  LocalFrame Frame;
  Frame.Capacity = Capacity;
  Frame.Explicit = Explicit;
  Frames.push_back(std::move(Frame));
}

void JThread::invalidateSlot(uint32_t Index) {
  LocalSlot &Slot = Arena[Index];
  if (!Slot.Live)
    return;
  Slot.Live = false;
  Slot.Target = ObjectId();
  // The generation advances so outstanding handles to this slot are stale.
  Slot.Gen += 1;
  FreeSlots.push_back(Index);
}

bool JThread::popFrame() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Frames.empty())
    return false;
  LocalFrame &Frame = Frames.back();
  for (uint32_t Index : Frame.OwnedSlots)
    invalidateSlot(Index);
  Frames.pop_back();
  return true;
}

uint64_t JThread::newLocalRef(ObjectId Target) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Frames.empty() || Target.isNull())
    return 0;
  uint32_t Index;
  if (!FreeSlots.empty()) {
    Index = FreeSlots.back();
    FreeSlots.pop_back();
  } else {
    Index = static_cast<uint32_t>(Arena.size());
    Arena.emplace_back();
  }
  LocalSlot &Slot = Arena[Index];
  Slot.Gen += 1;
  Slot.Live = true;
  Slot.Target = Target;

  LocalFrame &Frame = Frames.back();
  Frame.OwnedSlots.push_back(Index);
  Frame.LiveCount += 1;
  if (Frame.LiveCount > Frame.Capacity) {
    Frame.Overflowed = true;
    OverflowedCapacity = true;
  }

  HandleBits Bits;
  Bits.Kind = RefKind::Local;
  Bits.Thread = Id;
  Bits.Slot = Index;
  Bits.Gen = Slot.Gen;
  return encodeHandle(Bits);
}

LocalRefState JThread::localRefStateLocked(const HandleBits &Bits) const {
  assert(Bits.Kind == RefKind::Local && "expected a local handle");
  if (Bits.Slot >= Arena.size())
    return LocalRefState::NeverIssued;
  const LocalSlot &Slot = Arena[Bits.Slot];
  if (Bits.Gen > Slot.Gen)
    return LocalRefState::NeverIssued;
  if (!Slot.Live || Slot.Gen != Bits.Gen)
    return LocalRefState::Stale;
  return LocalRefState::Live;
}

LocalRefState JThread::localRefState(const HandleBits &Bits) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return localRefStateLocked(Bits);
}

ObjectId JThread::resolveLocal(const HandleBits &Bits) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (localRefStateLocked(Bits) != LocalRefState::Live)
    return ObjectId();
  return Arena[Bits.Slot].Target;
}

bool JThread::deleteLocal(const HandleBits &Bits) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (localRefStateLocked(Bits) != LocalRefState::Live)
    return false;
  // Account the deletion to the frame that owns the slot (usually the top).
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    for (uint32_t Index : It->OwnedSlots) {
      if (Index == Bits.Slot && Arena[Index].Live &&
          Arena[Index].Gen == Bits.Gen) {
        It->LiveCount -= 1;
        invalidateSlot(Index);
        return true;
      }
    }
  }
  return false;
}

size_t JThread::liveLocalCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const LocalSlot &Slot : Arena)
    if (Slot.Live)
      ++N;
  return N;
}

size_t JThread::liveLocalsInTopFrame() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Frames.empty() ? 0 : Frames.back().LiveCount;
}

bool JThread::ensureLocalCapacity(uint32_t Capacity) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Frames.empty())
    return false;
  if (Frames.back().Capacity < Capacity)
    Frames.back().Capacity = Capacity;
  return true;
}

void JThread::collectRoots(std::vector<ObjectId> &Roots) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const LocalSlot &Slot : Arena)
    if (Slot.Live && !Slot.Target.isNull())
      Roots.push_back(Slot.Target);
  if (!Pending.isNull())
    Roots.push_back(Pending);
  for (ObjectId Root : TempRootStack)
    if (!Root.isNull())
      Roots.push_back(Root);
}

std::string JThread::renderStack() const {
  std::string Out;
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    Out += "\tat ";
    Out += It->Display;
    Out += "\n";
  }
  return Out;
}
