//===- jvm/JThread.cpp - VM threads and local reference frames -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/JThread.h"

#include "mutate/Mutation.h"

#include <cassert>

using namespace jinn::jvm;

JThread::JThread(Vm &Owner, uint32_t Id, std::string Name)
    : Owner(Owner), Id(Id), Name(std::move(Name)) {}

void JThread::pushFrame(uint32_t Capacity, bool Explicit) {
  LocalFrame Frame;
  Frame.Capacity = Capacity;
  Frame.Explicit = Explicit;
  Frames.push_back(std::move(Frame));
}

void JThread::invalidateSlot(uint32_t Index) {
  LocalSlot &Slot = Arena[Index];
  uint64_t State = Slot.State.load(std::memory_order_relaxed);
  if (!LocalSlot::liveOf(State))
    return;
  // The generation advances so outstanding handles to this slot are stale.
  // State changes before Target clears: a concurrent reader that saw the
  // old live state re-checks State after loading Target and rejects.
  Slot.State.store(LocalSlot::packState(LocalSlot::genOf(State) + 1, false),
                   std::memory_order_release);
  Slot.Target.store(0, std::memory_order_relaxed);
  FreeSlots.push_back(Index);
}

bool JThread::popFrame() {
  if (Frames.empty())
    return false;
  LocalFrame &Frame = Frames.back();
  for (uint32_t Index : Frame.OwnedSlots)
    invalidateSlot(Index);
  Frames.pop_back();
  return true;
}

uint64_t JThread::newLocalRef(ObjectId Target) {
  if (Frames.empty() || Target.isNull())
    return 0;
  uint32_t Index;
  if (!FreeSlots.empty()) {
    Index = FreeSlots.back();
    FreeSlots.pop_back();
  } else {
    Index = static_cast<uint32_t>(Arena.grow(1));
  }
  LocalSlot &Slot = Arena[Index];
  uint32_t Gen = LocalSlot::genOf(Slot.State.load(std::memory_order_relaxed));
  Gen += 1;
  // Target first, then State with release: a reader that observes the live
  // state is guaranteed to read this target (or detect the State change).
  Slot.Target.store(Target.raw(), std::memory_order_relaxed);
  Slot.State.store(LocalSlot::packState(Gen, true), std::memory_order_release);

  LocalFrame &Frame = Frames.back();
  Frame.OwnedSlots.push_back(Index);
  Frame.LiveCount += 1;
  if (Frame.LiveCount > Frame.Capacity) {
    Frame.Overflowed = true;
    OverflowedCapacity.store(true, std::memory_order_release);
  }

  HandleBits Bits;
  Bits.Kind = RefKind::Local;
  Bits.Thread = Id;
  Bits.Slot = Index;
  Bits.Gen = Gen;
  return encodeHandle(Bits);
}

LocalRefState JThread::localRefState(const HandleBits &Bits) const {
  assert(Bits.Kind == RefKind::Local && "expected a local handle");
  if (Bits.Slot >= Arena.size())
    return LocalRefState::NeverIssued;
  uint64_t State = Arena[Bits.Slot].State.load(std::memory_order_acquire);
  if (Bits.Gen > LocalSlot::genOf(State))
    return LocalRefState::NeverIssued;
  if (!LocalSlot::liveOf(State) || LocalSlot::genOf(State) != Bits.Gen)
    return LocalRefState::Stale;
  return LocalRefState::Live;
}

ObjectId JThread::resolveLocal(const HandleBits &Bits) const {
  if (Bits.Slot >= Arena.size())
    return ObjectId();
  const LocalSlot &Slot = Arena[Bits.Slot];
  uint64_t Before = Slot.State.load(std::memory_order_acquire);
  if (!LocalSlot::liveOf(Before) || LocalSlot::genOf(Before) != Bits.Gen)
    return ObjectId();
  uint64_t Target = Slot.Target.load(std::memory_order_acquire);
  // Seqlock-style re-check: if the slot was recycled between the two State
  // loads, report stale (null) rather than another resident's target.
  if (Slot.State.load(std::memory_order_acquire) != Before)
    return ObjectId();
  return ObjectId::fromRaw(Target);
}

bool JThread::deleteLocal(const HandleBits &Bits) {
  if (localRefState(Bits) != LocalRefState::Live)
    return false;
  // Account the deletion to the frame that owns the slot (usually the top).
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    for (uint32_t Index : It->OwnedSlots) {
      if (Index != Bits.Slot)
        continue;
      uint64_t State = Arena[Index].State.load(std::memory_order_relaxed);
      if (LocalSlot::liveOf(State) && LocalSlot::genOf(State) == Bits.Gen) {
        It->LiveCount -= 1;
        invalidateSlot(Index);
        return true;
      }
    }
  }
  return false;
}

size_t JThread::liveLocalCount() const {
  size_t N = 0;
  size_t Size = Arena.size();
  for (size_t I = 0; I < Size; ++I)
    if (LocalSlot::liveOf(Arena[I].State.load(std::memory_order_acquire)))
      ++N;
  return N;
}

size_t JThread::liveLocalsInTopFrame() const {
  return Frames.empty() ? 0 : Frames.back().LiveCount;
}

bool JThread::ensureLocalCapacity(uint32_t Capacity) {
  if (Frames.empty())
    return false;
  if (mutate::active(mutate::M::JvmEnsureCapacityIgnored))
    return true; // mutant: success claimed, capacity never applied
  if (Frames.back().Capacity < Capacity)
    Frames.back().Capacity = Capacity;
  return true;
}

void JThread::collectRoots(std::vector<ObjectId> &Roots) const {
  size_t Size = Arena.size();
  for (size_t I = 0; I < Size; ++I) {
    const LocalSlot &Slot = Arena[I];
    if (!LocalSlot::liveOf(Slot.State.load(std::memory_order_acquire)))
      continue;
    ObjectId Target =
        ObjectId::fromRaw(Slot.Target.load(std::memory_order_acquire));
    if (!Target.isNull())
      Roots.push_back(Target);
  }
  if (!Pending.isNull())
    Roots.push_back(Pending);
  for (ObjectId Root : TempRootStack)
    if (!Root.isNull())
      Roots.push_back(Root);
}

std::string JThread::renderStack() const {
  std::string Out;
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    Out += "\tat ";
    Out += It->Display;
    Out += "\n";
  }
  return Out;
}
