//===- jvm/Klass.cpp - Classes, fields, and methods ----------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Klass.h"

using namespace jinn::jvm;

std::string FieldInfo::qualifiedName() const {
  return (Owner ? Owner->name() : "?") + "." + Name;
}

std::string MethodInfo::qualifiedName() const {
  return (Owner ? Owner->name() : "?") + "." + Name;
}

bool Klass::isSubclassOf(const Klass *Other) const {
  for (const Klass *K = this; K; K = K->super())
    if (K == Other)
      return true;
  return false;
}

MethodInfo *Klass::findDeclaredMethod(std::string_view Name,
                                      std::string_view Desc,
                                      bool WantStatic) const {
  for (const auto &M : Methods)
    if (M->IsStatic == WantStatic && M->Name == Name && M->Desc == Desc)
      return M.get();
  return nullptr;
}

MethodInfo *Klass::findMethod(std::string_view Name, std::string_view Desc,
                              bool WantStatic) const {
  for (const Klass *K = this; K; K = K->super())
    if (MethodInfo *M = K->findDeclaredMethod(Name, Desc, WantStatic))
      return M;
  return nullptr;
}

MethodInfo *Klass::findMethodAnyStatic(std::string_view Name,
                                       std::string_view Desc) const {
  for (const Klass *K = this; K; K = K->super())
    for (const auto &M : K->Methods)
      if (M->Name == Name && M->Desc == Desc)
        return M.get();
  return nullptr;
}

FieldInfo *Klass::findDeclaredField(std::string_view Name,
                                    std::string_view Desc,
                                    bool WantStatic) const {
  for (const auto &F : Fields)
    if (F->IsStatic == WantStatic && F->Name == Name && F->Desc == Desc)
      return F.get();
  return nullptr;
}

FieldInfo *Klass::findField(std::string_view Name, std::string_view Desc,
                            bool WantStatic) const {
  for (const Klass *K = this; K; K = K->super())
    if (FieldInfo *F = K->findDeclaredField(Name, Desc, WantStatic))
      return F;
  return nullptr;
}
