//===- jvm/Policy.h - Production-VM undefined-behavior policies ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JNI specification leaves the consequences of most misuse to the
/// vendor's implementation, and the paper's Table 1 shows HotSpot and J9
/// diverging on four pitfalls. This reproduction parameterizes the mini-JVM
/// with a VmFlavor and consults productionBehavior() whenever user code
/// performs an operation whose outcome the specification leaves undefined.
/// The encoded outcomes are exactly the Table 1 "Default Behavior" columns.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_POLICY_H
#define JINN_JVM_POLICY_H

#include <cstdint>

namespace jinn::jvm {

/// Which production JVM the simulator imitates when behavior is undefined.
enum class VmFlavor : uint8_t { HotSpotLike, J9Like };

/// Returns "hotspot" or "j9".
const char *vmFlavorName(VmFlavor Flavor);

/// The classes of undefined operations Table 1 distinguishes.
enum class UndefinedOp : uint8_t {
  PendingExceptionUse,  ///< JNI call with an exception pending (pitfall 1)
  InvalidArgument,      ///< malformed argument to a JNI function (pitfall 2)
  ClassObjectConfusion, ///< jclass where jobject expected or v.v. (pitfall 3)
  IdReferenceConfusion, ///< jmethodID/jfieldID used as reference (pitfall 6)
  UnterminatedString,   ///< reading past a non-terminated string (pitfall 8)
  AccessControl,        ///< visibility / final violation (pitfall 9)
  DanglingLocalRef,     ///< use of an invalid local reference (pitfall 13)
  WrongThreadEnv,       ///< JNIEnv used on the wrong thread (pitfall 14)
  CriticalRegionCall,   ///< sensitive JNI call inside a critical region (16)
  DanglingGlobalRef,    ///< use of a deleted global reference
};

/// What the (simulated) production VM does when the operation executes.
enum class ProductionOutcome : uint8_t {
  Ignore,   ///< keeps running in an undefined state ("running" in Table 1)
  Crash,    ///< simulated SIGSEGV: incident recorded, thread poisoned
  ThrowNpe, ///< raises java.lang.NullPointerException
  Deadlock, ///< simulated deadlock: incident recorded, thread poisoned
};

/// Table 1 "Default Behavior" columns, by flavor.
ProductionOutcome productionBehavior(VmFlavor Flavor, UndefinedOp Op);

/// Short diagnostic tag for \p Op.
const char *undefinedOpName(UndefinedOp Op);

} // namespace jinn::jvm

#endif // JINN_JVM_POLICY_H
