//===- jvm/Concurrent.h - Lock-free substrate building blocks ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared-memory building blocks for the concurrent substrate VM:
///
///  - ChunkedVector: an append-only, address-stable array whose elements can
///    be indexed lock-free by any thread while a single (externally
///    serialized) writer grows it. Chunks are geometric, so the directory is
///    a couple dozen atomic pointers rather than one per page.
///  - SnapshotMap: an open-addressed hash map with lock-free snapshot reads
///    (RCU-style: growth publishes a rebuilt table and retires the old one
///    until destruction). Writers must be externally serialized. Backs the
///    class/method/field registries, which are append-only by construction.
///  - A process-wide live-instance registry keyed by serial number, so
///    thread-local caches (TLABs, mutator slots) can be returned safely on
///    OS-thread exit even when the owning Heap/Vm died first — or when a new
///    instance was constructed at the same address.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_CONCURRENT_H
#define JINN_JVM_CONCURRENT_H

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace jinn::jvm {

/// Append-only chunked array. Element addresses are stable forever and
/// reads by index are lock-free; growth must be serialized by the caller
/// (a lock, or single-writer ownership). Chunk k holds BaseSize<<k
/// elements, so MaxChunks=26 with BaseSize=64 covers ~4.2G entries while
/// the directory stays one cache line of pointers.
template <typename T, unsigned BaseShift = 6, unsigned MaxChunks = 26>
class ChunkedVector {
public:
  static constexpr size_t BaseSize = size_t(1) << BaseShift;

  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector &) = delete;
  ChunkedVector &operator=(const ChunkedVector &) = delete;
  ~ChunkedVector() {
    for (auto &Chunk : Chunks)
      delete[] Chunk.load(std::memory_order_relaxed);
  }

  /// Entries in [0, size()) are safe to index from any thread.
  size_t size() const { return Count.load(std::memory_order_acquire); }

  T &operator[](size_t Index) {
    unsigned K = chunkOf(Index);
    return Chunks[K].load(std::memory_order_acquire)[Index - baseOf(K)];
  }
  const T &operator[](size_t Index) const {
    return (*const_cast<ChunkedVector *>(this))[Index];
  }

  /// Appends \p N default-constructed entries and returns the index of the
  /// first. Writer-side only (external serialization required); the new
  /// entries become visible to readers atomically via the size bump.
  size_t grow(size_t N) {
    size_t First = Count.load(std::memory_order_relaxed);
    size_t NewCount = First + N;
    unsigned LastChunk = NewCount ? chunkOf(NewCount - 1) : 0;
    assert(LastChunk < MaxChunks && "ChunkedVector capacity exhausted");
    for (unsigned K = 0; K <= LastChunk; ++K)
      if (!Chunks[K].load(std::memory_order_relaxed))
        Chunks[K].store(new T[BaseSize << K], std::memory_order_release);
    Count.store(NewCount, std::memory_order_release);
    return First;
  }

private:
  /// Index I lives in chunk floor(log2(I/BaseSize + 1)).
  static unsigned chunkOf(size_t Index) {
    size_t J = (Index >> BaseShift) + 1;
    unsigned K = 0;
    while (J >>= 1)
      ++K;
    return K;
  }
  static size_t baseOf(unsigned K) {
    return BaseSize * ((size_t(1) << K) - 1);
  }

  std::array<std::atomic<T *>, MaxChunks> Chunks = {};
  std::atomic<size_t> Count{0};
};

/// Open-addressed hash map from nonzero uint64 keys to values, with
/// lock-free reads and externally serialized inserts. Lookups take a
/// predicate over the value so callers using a *hash* as the key (e.g.
/// name-keyed registries) can reject collisions and keep probing; exact-key
/// callers pass a predicate that always accepts. Entries are never removed;
/// growth rebuilds into a fresh table, publishes it, and retires the old
/// snapshot until destruction so concurrent readers stay valid (RCU-style).
template <typename V> class SnapshotMap {
public:
  explicit SnapshotMap(size_t InitialPow2 = 64) {
    Root.store(makeTable(InitialPow2), std::memory_order_release);
  }
  SnapshotMap(const SnapshotMap &) = delete;
  SnapshotMap &operator=(const SnapshotMap &) = delete;
  ~SnapshotMap() {
    delete Root.load(std::memory_order_relaxed);
    for (Table *Old : Retired)
      delete Old;
  }

  /// Lock-free. Returns the first value whose entry key equals \p Key and
  /// for which \p Accept(value) holds; V() when absent.
  template <typename Pred> V find(uint64_t Key, Pred &&Accept) const {
    assert(Key != 0 && "key 0 is the empty sentinel");
    const Table *T = Root.load(std::memory_order_acquire);
    for (size_t I = Key & T->Mask;; I = (I + 1) & T->Mask) {
      uint64_t K = T->Entries[I].Key.load(std::memory_order_acquire);
      if (K == 0)
        return V();
      if (K == Key) {
        V Val = T->Entries[I].Val.load(std::memory_order_relaxed);
        if (Accept(Val))
          return Val;
      }
    }
  }
  V find(uint64_t Key) const {
    return find(Key, [](const V &) { return true; });
  }

  /// Writer-side only (external serialization required). Duplicate keys are
  /// allowed (hash-keyed callers disambiguate via the lookup predicate).
  void insert(uint64_t Key, V Val) {
    assert(Key != 0 && "key 0 is the empty sentinel");
    Table *T = Root.load(std::memory_order_relaxed);
    if ((Count + 1) * 10 >= (T->Mask + 1) * 7) {
      Table *Grown = makeTable((T->Mask + 1) * 2);
      for (size_t I = 0; I <= T->Mask; ++I) {
        uint64_t K = T->Entries[I].Key.load(std::memory_order_relaxed);
        if (K)
          place(*Grown, K, T->Entries[I].Val.load(std::memory_order_relaxed));
      }
      Retired.push_back(T);
      Root.store(Grown, std::memory_order_release);
      T = Grown;
    }
    place(*T, Key, Val);
    ++Count;
  }

private:
  struct Entry {
    std::atomic<uint64_t> Key{0};
    std::atomic<V> Val{V()};
  };
  struct Table {
    size_t Mask;
    std::unique_ptr<Entry[]> Entries;
  };

  static Table *makeTable(size_t Size) {
    Table *T = new Table;
    T->Mask = Size - 1;
    T->Entries = std::make_unique<Entry[]>(Size);
    return T;
  }

  /// Publishes value before key so a reader that sees the key sees the
  /// value (and, transitively, whatever the value points at).
  static void place(Table &T, uint64_t Key, V Val) {
    for (size_t I = Key & T.Mask;; I = (I + 1) & T.Mask) {
      if (T.Entries[I].Key.load(std::memory_order_relaxed) == 0) {
        T.Entries[I].Val.store(Val, std::memory_order_relaxed);
        T.Entries[I].Key.store(Key, std::memory_order_release);
        return;
      }
    }
  }

  std::atomic<Table *> Root{nullptr};
  std::vector<Table *> Retired; ///< old snapshots, freed at destruction
  size_t Count = 0;             ///< writer-side
};

/// FNV-1a, for name-keyed SnapshotMap users. Never returns 0.
inline uint64_t hashBytes(const void *Data, size_t Len) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H ? H : 1;
}

//===----------------------------------------------------------------------===
// Live-instance registry
//===----------------------------------------------------------------------===

/// Issues a process-unique serial for an instance that hands out pointers
/// to thread-local caches (Heap TLABs, Vm mutator slots).
uint64_t registerLiveInstance(void *Instance);

/// Unregisters at destruction; after this, lookups of the serial fail.
void unregisterLiveInstance(uint64_t Serial);

/// Runs \p Fn(instance, Ctx) under the registry lock when \p Serial is
/// still registered; no-op otherwise. Because unregisterLiveInstance takes
/// the same lock, an owner that unregisters in its destructor *before*
/// tearing down its pools is guaranteed \p Fn never runs against a
/// destroyed instance. Used by OS-thread-exit destructors to hand cached
/// resources (TLABs, mutator slots) back to their owner.
void withLiveInstance(uint64_t Serial, void (*Fn)(void *Instance, void *Ctx),
                      void *Ctx);

/// True while \p Serial is registered. Used to prune dead entries from
/// thread-local caches.
bool instanceIsLive(uint64_t Serial);

} // namespace jinn::jvm

#endif // JINN_JVM_CONCURRENT_H
