//===- jvm/Concurrent.cpp - Live-instance registry ------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Concurrent.h"

#include <mutex>
#include <unordered_map>

using namespace jinn::jvm;

namespace {
std::mutex &registryMutex() {
  static std::mutex Mu;
  return Mu;
}
std::unordered_map<uint64_t, void *> &registryMap() {
  static auto *Map = new std::unordered_map<uint64_t, void *>();
  return *Map; // leaked intentionally: outlives every static destructor
}
std::atomic<uint64_t> NextSerial{1};
} // namespace

uint64_t jinn::jvm::registerLiveInstance(void *Instance) {
  uint64_t Serial = NextSerial.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(registryMutex());
  registryMap()[Serial] = Instance;
  return Serial;
}

void jinn::jvm::unregisterLiveInstance(uint64_t Serial) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registryMap().erase(Serial);
}

void jinn::jvm::withLiveInstance(uint64_t Serial,
                                 void (*Fn)(void *Instance, void *Ctx),
                                 void *Ctx) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  auto It = registryMap().find(Serial);
  if (It != registryMap().end())
    Fn(It->second, Ctx);
}

bool jinn::jvm::instanceIsLive(uint64_t Serial) {
  std::lock_guard<std::mutex> Lock(registryMutex());
  return registryMap().count(Serial) != 0;
}
