//===- jvm/Handle.h - Opaque JNI reference handle encoding ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JNI hands native code *opaque references* (jobject) rather than raw
/// pointers so the collector can move objects (paper §3). This reproduction
/// encodes a reference handle into a single pointer-sized word:
///
///   bits 60..63  magic 0xA — distinguishes genuine handles from wild
///                pointers (jmethodID values, stack addresses, ...), which is
///                how pitfall 6 "confusing IDs with references" is detected
///   bits 37..59  generation of the table slot (23 bits)
///   bits 17..36  slot index within the owning table (20 bits)
///   bits  2..16  owning thread id for local refs, 0 for globals (15 bits)
///   bits  0..1   RefKind
///
/// The 15-bit thread field sizes the VM's thread-id space: a server
/// workload that attaches a short-lived thread per request can burn
/// through ~32k ids in one run (ids are never reused).
///
/// The generation bits make recycled slots produce *different* bit patterns,
/// so both the VM and the Jinn shadow bookkeeping can tell a dangling handle
/// from a live one without dereferencing anything.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_HANDLE_H
#define JINN_JVM_HANDLE_H

#include <cstdint>
#include <optional>

namespace jinn::jvm {

/// Which reference table a handle points into.
enum class RefKind : uint8_t {
  Null = 0,
  Local = 1,
  Global = 2,
  WeakGlobal = 3,
};

/// Decoded handle fields.
struct HandleBits {
  RefKind Kind = RefKind::Null;
  uint32_t Thread = 0; ///< owning thread id (locals only)
  uint32_t Slot = 0;
  uint32_t Gen = 0;
};

namespace handle_detail {
constexpr uint64_t MagicShift = 60;
constexpr uint64_t Magic = 0xAULL;
constexpr uint64_t GenShift = 37;
constexpr uint64_t GenMask = (1ULL << 23) - 1;
constexpr uint64_t SlotShift = 17;
constexpr uint64_t SlotMask = (1ULL << 20) - 1;
constexpr uint64_t ThreadShift = 2;
constexpr uint64_t ThreadMask = (1ULL << 15) - 1;
constexpr uint64_t KindMask = 0x3;
} // namespace handle_detail

/// One past the largest encodable thread id (sizes Vm::ThreadTable).
constexpr uint32_t MaxThreadIds =
    static_cast<uint32_t>(handle_detail::ThreadMask) + 1;

/// Encodes \p Bits into a pointer-sized word. Null kind encodes to 0.
inline uint64_t encodeHandle(const HandleBits &Bits) {
  namespace D = handle_detail;
  if (Bits.Kind == RefKind::Null)
    return 0;
  return (D::Magic << D::MagicShift) |
         ((static_cast<uint64_t>(Bits.Gen) & D::GenMask) << D::GenShift) |
         ((static_cast<uint64_t>(Bits.Slot) & D::SlotMask) << D::SlotShift) |
         ((static_cast<uint64_t>(Bits.Thread) & D::ThreadMask)
          << D::ThreadShift) |
         static_cast<uint64_t>(Bits.Kind);
}

/// Decodes \p Word. Returns std::nullopt when the word is not a plausible
/// handle (wrong magic or kind) — the signature of an ID/reference mixup or
/// a stray pointer. Zero decodes to the null handle.
inline std::optional<HandleBits> decodeHandle(uint64_t Word) {
  namespace D = handle_detail;
  if (Word == 0)
    return HandleBits{};
  if ((Word >> D::MagicShift) != D::Magic)
    return std::nullopt;
  HandleBits Bits;
  uint64_t Kind = Word & D::KindMask;
  if (Kind == 0)
    return std::nullopt;
  Bits.Kind = static_cast<RefKind>(Kind);
  Bits.Thread = static_cast<uint32_t>((Word >> D::ThreadShift) & D::ThreadMask);
  Bits.Slot = static_cast<uint32_t>((Word >> D::SlotShift) & D::SlotMask);
  Bits.Gen = static_cast<uint32_t>((Word >> D::GenShift) & D::GenMask);
  return Bits;
}

} // namespace jinn::jvm

#endif // JINN_JVM_HANDLE_H
