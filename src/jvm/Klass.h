//===- jvm/Klass.h - Classes, fields, and methods ------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The class model of the miniature JVM. Classes are defined declaratively
/// (ClassDef); Java method bodies are C++ closures; native methods dispatch
/// through a rebindable NativeRawFn installed by the JNI layer, which is the
/// hook JVMTI agents use to interpose on Java->C transitions.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVM_KLASS_H
#define JINN_JVM_KLASS_H

#include "jvm/Value.h"

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace jinn::jvm {

class Vm;
class JThread;
class Klass;

/// Body of a method implemented "in Java" (a C++ closure standing in for
/// bytecode). May set a pending exception on the thread instead of returning
/// normally.
using JavaBody = std::function<Value(Vm &Vm, JThread &Thread,
                                     const Value &Self,
                                     const std::vector<Value> &Args)>;

/// Bound implementation of a native method, installed by the JNI layer at
/// registration time. Agents wrap this via the NativeMethodBind event.
using NativeRawFn = std::function<Value(JThread &Thread, const Value &Self,
                                        const std::vector<Value> &Args)>;

/// Java member visibility.
enum class Visibility : uint8_t { Public, Protected, Package, Private };

/// One field (static or instance).
struct FieldInfo {
  Klass *Owner = nullptr;
  std::string Name;
  std::string Desc;
  TypeDesc Type;
  Visibility Vis = Visibility::Public;
  bool IsStatic = false;
  bool IsFinal = false;
  uint32_t Slot = 0;  ///< instance-field slot index (includes inherited)
  Value StaticValue;  ///< storage for static fields

  /// "java/lang/System.out" style display name.
  std::string qualifiedName() const;
};

/// One method (Java or native).
struct MethodInfo {
  Klass *Owner = nullptr;
  std::string Name;
  std::string Desc;
  MethodDesc Sig;
  Visibility Vis = Visibility::Public;
  bool IsStatic = false;
  bool IsNative = false;
  JavaBody Body;           ///< for non-native methods
  NativeRawFn NativeBound; ///< for native methods, set by RegisterNatives
  std::string DeclSite;    ///< "File.java:12" used in stack traces
  /// Precomputed stack-trace line ("Cls.method(File.java:12)"), built once
  /// at definition time so invoke() does not concatenate per call.
  std::string Display;

  std::string qualifiedName() const;
};

/// A loaded class. Single inheritance, no interfaces (the FFI constraints
/// under study never need them).
class Klass {
public:
  Klass(std::string Name, Klass *Super) : Name(std::move(Name)), Super(Super) {}

  const std::string &name() const { return Name; }
  Klass *super() const { return Super; }

  bool isArray() const { return !Name.empty() && Name[0] == '['; }
  /// Element type for array classes.
  const TypeDesc &elementType() const { return ElemType; }
  void setElementType(TypeDesc T) { ElemType = std::move(T); }

  /// True if this class equals \p Other or transitively extends it.
  bool isSubclassOf(const Klass *Other) const;

  /// Fields/methods declared by this class only.
  std::vector<std::unique_ptr<FieldInfo>> Fields;
  std::vector<std::unique_ptr<MethodInfo>> Methods;

  /// Number of instance-field slots including inherited fields.
  uint32_t InstanceSlots = 0;

  /// The java.lang.Class mirror object for this class.
  ObjectId Mirror;

  /// Finds a declared method (no superclass search).
  MethodInfo *findDeclaredMethod(std::string_view Name, std::string_view Desc,
                                 bool WantStatic) const;
  /// Finds a method here or in a superclass.
  MethodInfo *findMethod(std::string_view Name, std::string_view Desc,
                         bool WantStatic) const;
  /// Finds a method by name and descriptor regardless of staticness.
  MethodInfo *findMethodAnyStatic(std::string_view Name,
                                  std::string_view Desc) const;

  FieldInfo *findDeclaredField(std::string_view Name, std::string_view Desc,
                               bool WantStatic) const;
  FieldInfo *findField(std::string_view Name, std::string_view Desc,
                       bool WantStatic) const;

private:
  std::string Name;
  Klass *Super;
  TypeDesc ElemType;
};

/// Declarative class definition consumed by Vm::defineClass.
struct ClassDef {
  std::string Name;
  std::string Super = "java/lang/Object";

  struct FieldDef {
    std::string Name;
    std::string Desc;
    bool IsStatic = false;
    bool IsFinal = false;
    Visibility Vis = Visibility::Public;
  };

  struct MethodDef {
    std::string Name;
    std::string Desc;
    bool IsStatic = false;
    bool IsNative = false;
    Visibility Vis = Visibility::Public;
    JavaBody Body;        ///< ignored for native methods
    std::string DeclSite; ///< "File.java:12" for stack traces
  };

  std::vector<FieldDef> Fields;
  std::vector<MethodDef> Methods;

  ClassDef &field(std::string Name, std::string Desc, bool IsStatic = false,
                  bool IsFinal = false, Visibility Vis = Visibility::Public) {
    Fields.push_back({std::move(Name), std::move(Desc), IsStatic, IsFinal, Vis});
    return *this;
  }

  ClassDef &method(std::string Name, std::string Desc, JavaBody Body,
                   bool IsStatic = false, std::string DeclSite = "") {
    Methods.push_back({std::move(Name), std::move(Desc), IsStatic,
                       /*IsNative=*/false, Visibility::Public, std::move(Body),
                       std::move(DeclSite)});
    return *this;
  }

  ClassDef &nativeMethod(std::string Name, std::string Desc,
                         bool IsStatic = false, std::string DeclSite = "") {
    Methods.push_back({std::move(Name), std::move(Desc), IsStatic,
                       /*IsNative=*/true, Visibility::Public, nullptr,
                       std::move(DeclSite)});
    return *this;
  }
};

} // namespace jinn::jvm

#endif // JINN_JVM_KLASS_H
