//===- jvm/Heap.cpp - Garbage-collected object heap ----------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Heap.h"

#include "jvm/Klass.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>

using namespace jinn::jvm;

//===----------------------------------------------------------------------===
// TLAB cache (thread-local)
//===----------------------------------------------------------------------===

namespace jinn::jvm {

/// Per-OS-thread cache of (heap serial -> TLAB) bindings. Entry 0 is the
/// most recently used heap, so the common case — one live heap per process —
/// resolves with a single integer compare. The destructor runs at OS-thread
/// exit and hands every cached TLAB back to its heap through the
/// live-instance registry, which makes the handback safe even when the heap
/// died first or a new heap was constructed at the same address.
struct HeapTlsCache {
  struct Ref {
    uint64_t Serial;
    Heap *H;
    Heap::Tlab *T;
  };
  std::vector<Ref> Refs;

  ~HeapTlsCache() {
    for (Ref &R : Refs)
      withLiveInstance(R.Serial, &Heap::returnTlabTrampoline, R.T);
  }
};

} // namespace jinn::jvm

static thread_local HeapTlsCache HeapTls;

//===----------------------------------------------------------------------===
// Construction
//===----------------------------------------------------------------------===

Heap::Heap(unsigned TlabSlots)
    : TlabSlots(TlabSlots ? TlabSlots : 1), Serial(registerLiveInstance(this)) {
}

Heap::~Heap() {
  // Unregister before members die: after this returns, no thread-exit
  // destructor can reach this instance through the registry.
  unregisterLiveInstance(Serial);
}

//===----------------------------------------------------------------------===
// Allocation
//===----------------------------------------------------------------------===

Heap::Tlab &Heap::tlabForCurrentThread() {
  auto &Refs = HeapTls.Refs;
  if (!Refs.empty() && Refs.front().Serial == Serial)
    return *Refs.front().T;
  for (size_t I = 1; I < Refs.size(); ++I)
    if (Refs[I].Serial == Serial) {
      std::swap(Refs[0], Refs[I]); // move to front for the next allocation
      return *Refs.front().T;
    }

  // First allocation by this thread against this heap. Drop cache entries
  // whose heap has died (fuzzing constructs thousands of short-lived worlds)
  // and adopt a pooled TLAB, or mint a fresh one.
  Refs.erase(std::remove_if(Refs.begin(), Refs.end(),
                            [](const HeapTlsCache::Ref &R) {
                              return !instanceIsLive(R.Serial);
                            }),
             Refs.end());
  Tlab *T;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!FreeTlabs.empty()) {
      T = FreeTlabs.back();
      FreeTlabs.pop_back();
    } else {
      Tlabs.push_back(std::make_unique<Tlab>());
      T = Tlabs.back().get();
    }
  }
  Refs.insert(Refs.begin(), HeapTlsCache::Ref{Serial, this, T});
  return *T;
}

void Heap::refill(Tlab &T) {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats.TlabRefills.fetch_add(1, std::memory_order_relaxed);
  while (!FreeList.empty() && T.Free.size() < TlabSlots) {
    T.Free.push_back(FreeList.back());
    FreeList.pop_back();
  }
  if (!T.Free.empty())
    return;
  // No recycled slots available: reserve a fresh batch. The indices are
  // pushed high-to-low so allocation consumes them in ascending order.
  size_t First = Slots.grow(TlabSlots);
  for (unsigned I = 0; I < TlabSlots; ++I)
    T.Free.push_back(static_cast<uint32_t>(First + TlabSlots - 1 - I));
}

void Heap::returnTlabTrampoline(void *HeapPtr, void *TlabPtr) {
  static_cast<Heap *>(HeapPtr)->returnTlab(static_cast<Tlab *>(TlabPtr));
}

void Heap::returnTlab(Tlab *T) {
  std::lock_guard<std::mutex> Lock(Mu);
  FreeTlabs.push_back(T);
}

std::pair<ObjectId, HeapObject *> Heap::allocSlot() {
  Tlab &T = tlabForCurrentThread();
  if (T.Free.empty())
    refill(T);
  uint32_t Index = T.Free.back();
  T.Free.pop_back();

  HeapObject &Obj = Slots[Index];
  // Generation 0 is reserved for "null"; the first resident gets gen 1, and
  // a recycled slot whose generation counter wraps skips 0 so a long-stale
  // ObjectId can never alias the null generation.
  uint32_t Gen = HeapObject::genOf(Obj.State.load(std::memory_order_relaxed));
  Gen += 1;
  if (Gen == 0)
    Gen = 1;

  Obj.Kl = nullptr;
  Obj.Shape = ObjShape::Plain;
  // Allocate black: objects born during an incremental mark survive it.
  Obj.Marked = MarkActive.load(std::memory_order_acquire);
  Obj.PinCount = 0;
  Obj.MoveCount = 0;
  Obj.Fields.clear();
  Obj.PrimElems.clear();
  Obj.ObjElems.clear();
  Obj.Chars.clear();
  if (T.NextAddress == T.AddressEnd) {
    T.NextAddress =
        NextAddress.fetch_add(64ull * TlabSlots, std::memory_order_relaxed);
    T.AddressEnd = T.NextAddress + 64ull * TlabSlots;
  }
  Obj.Address = T.NextAddress;
  T.NextAddress += 64;

  LiveCount.fetch_add(1, std::memory_order_relaxed);
  Stats.TotalAllocated.fetch_add(1, std::memory_order_relaxed);
  // Publish. The caller is protected from the collector (mutator scope), so
  // the payload writes that follow in alloc* are ordered before any pause in
  // which the collector could scan this slot.
  Obj.State.store(HeapObject::packState(Gen, true), std::memory_order_release);
  return {ObjectId{Index, Gen}, &Obj};
}

ObjectId Heap::allocPlain(Klass *Kl, uint32_t FieldSlots) {
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::Plain;
  Obj->Fields.assign(FieldSlots, Value::makeNull());
  return Id;
}

ObjectId Heap::allocPrimArray(Klass *Kl, JType ElemKind, size_t Len) {
  assert(isPrimitive(ElemKind) && "array element must be primitive");
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::PrimArray;
  Obj->ElemKind = ElemKind;
  Obj->PrimElems.assign(Len, 0);
  return Id;
}

ObjectId Heap::allocObjArray(Klass *Kl, size_t Len) {
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::ObjArray;
  Obj->ObjElems.assign(Len, ObjectId());
  return Id;
}

ObjectId Heap::allocString(Klass *Kl, std::u16string Chars) {
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::Str;
  Obj->Chars = std::move(Chars);
  return Id;
}

//===----------------------------------------------------------------------===
// Resolution
//===----------------------------------------------------------------------===

HeapObject *Heap::resolve(ObjectId Id) {
  if (Id.isNull() || Id.Index >= Slots.size())
    return nullptr;
  // Chunked slots are address-stable, so the pointer stays valid after the
  // load; liveness can only change under stop-the-world, when the caller is
  // either the collector itself or parked.
  HeapObject &Obj = Slots[Id.Index];
  uint64_t State = Obj.State.load(std::memory_order_acquire);
  if (!HeapObject::liveOf(State) || HeapObject::genOf(State) != Id.Gen)
    return nullptr;
  return &Obj;
}

const HeapObject *Heap::resolve(ObjectId Id) const {
  return const_cast<Heap *>(this)->resolve(Id);
}

bool Heap::isStale(ObjectId Id) const {
  if (Id.isNull())
    return false;
  if (Id.Index >= Slots.size())
    return true;
  const HeapObject &Obj = Slots[Id.Index];
  uint64_t State = Obj.State.load(std::memory_order_acquire);
  return !HeapObject::liveOf(State) || HeapObject::genOf(State) != Id.Gen;
}

bool Heap::isMarked(ObjectId Id) const {
  const HeapObject *Obj = resolve(Id);
  return Obj && Obj->Marked;
}

//===----------------------------------------------------------------------===
// Collection. Every entry point below runs inside a stop-the-world pause
// provided by the owner (Vm safepoint protocol, or a single-threaded test).
//===----------------------------------------------------------------------===

void Heap::clearMarks() {
  size_t N = Slots.size();
  for (size_t I = 0; I < N; ++I)
    Slots[I].Marked = false;
}

void Heap::markFrom(ObjectId Root) {
  HeapObject *Obj = resolve(Root);
  if (!Obj || Obj->Marked)
    return;
  Obj->Marked = true;
  MarkWorklist.push_back(Root.Index);
}

void Heap::markRoots(const std::vector<ObjectId> &Roots) {
  for (ObjectId Root : Roots)
    markFrom(Root);
}

bool Heap::traceWorklist(size_t Budget) {
  while (!MarkWorklist.empty() && Budget) {
    --Budget;
    uint32_t Index = MarkWorklist.back();
    MarkWorklist.pop_back();
    HeapObject &Obj = Slots[Index];
    if (Obj.Shape == ObjShape::Plain) {
      for (const Value &Field : Obj.Fields)
        if (Field.isRef())
          markFrom(Field.Obj);
    } else if (Obj.Shape == ObjShape::ObjArray) {
      for (ObjectId Elem : Obj.ObjElems)
        markFrom(Elem);
    }
  }
  return MarkWorklist.empty();
}

void Heap::recordRefStoreSlow(ObjectId Container) {
  if (Container.isNull())
    return;
  std::lock_guard<std::mutex> Lock(DirtyMu);
  Dirty.push_back(Container.raw());
  Stats.DirtyRecords.fetch_add(1, std::memory_order_relaxed);
}

void Heap::drainDirty() {
  std::vector<uint64_t> Taken;
  {
    std::lock_guard<std::mutex> Lock(DirtyMu);
    Taken.swap(Dirty);
  }
  for (uint64_t Raw : Taken) {
    ObjectId Id = ObjectId::fromRaw(Raw);
    HeapObject *Obj = resolve(Id);
    // Only already-marked (black) containers need a re-scan: an unmarked one
    // is either unreachable or still grey-reachable through its parent.
    if (Obj && Obj->Marked)
      MarkWorklist.push_back(Id.Index);
  }
}

void Heap::beginIncrementalMark(const std::vector<ObjectId> &Roots) {
  clearMarks();
  {
    std::lock_guard<std::mutex> Lock(DirtyMu);
    Dirty.clear();
  }
  MarkWorklist.clear();
  MarkActive.store(true, std::memory_order_release);
  markRoots(Roots);
}

bool Heap::incrementalMarkStep(size_t Budget) {
  Stats.MarkIncrements.fetch_add(1, std::memory_order_relaxed);
  drainDirty();
  return traceWorklist(Budget);
}

void Heap::finishCollect(const std::vector<ObjectId> &Roots, bool Move,
                         const std::function<void()> &BeforeSweep) {
  assert(MarkActive.load(std::memory_order_relaxed) &&
         "finishCollect without beginIncrementalMark");
  // Remark: fresh roots plus every container dirtied since the last
  // increment, traced to a fixpoint. Incremental-update marking: a store of
  // ref R into black container C either leaves R reachable from a grey
  // object (traced normally) or was recorded by the barrier (C re-scanned
  // here); objects born during the mark were allocated black.
  drainDirty();
  markRoots(Roots);
  traceWorklist(SIZE_MAX);
  MarkActive.store(false, std::memory_order_release);

  if (BeforeSweep)
    BeforeSweep();
  sweep(Move);

  Stats.GcCount.fetch_add(1, std::memory_order_relaxed);
  if (Move)
    Stats.MovingGcCount.fetch_add(1, std::memory_order_relaxed);
}

void Heap::collect(const std::vector<ObjectId> &Roots, bool Move,
                   const std::function<void()> &BeforeSweep) {
  beginIncrementalMark(Roots);
  finishCollect(Roots, Move, BeforeSweep);
}

void Heap::sweep(bool Move) {
  // Mu guards the free-list refund against a concurrent TLAB refill; no
  // mutator allocates during the pause, but a detached thread's TLS
  // destructor may be returning a TLAB concurrently.
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = Slots.size();
  for (uint32_t Index = 0; Index < N; ++Index) {
    HeapObject &Obj = Slots[Index];
    uint64_t State = Obj.State.load(std::memory_order_relaxed);
    if (!HeapObject::liveOf(State))
      continue;
    if (!Obj.Marked) {
      // Reclaim: liveness drops but the generation is kept; the *next*
      // allocation of this slot advances it, so any surviving ObjectId for
      // this resident is permanently stale either way.
      Obj.Kl = nullptr;
      Obj.Fields.clear();
      Obj.PrimElems.clear();
      Obj.ObjElems.clear();
      Obj.Chars.clear();
      Obj.State.store(HeapObject::packState(HeapObject::genOf(State), false),
                      std::memory_order_release);
      FreeList.push_back(Index);
      LiveCount.fetch_sub(1, std::memory_order_relaxed);
      Stats.TotalCollected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (Move && Obj.PinCount == 0) {
      Obj.Address = NextAddress.fetch_add(64, std::memory_order_relaxed);
      ++Obj.MoveCount;
    }
  }
}
