//===- jvm/Heap.cpp - Garbage-collected object heap ----------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Heap.h"

#include "jvm/Klass.h"

#include <cassert>
#include <mutex>

using namespace jinn::jvm;

std::pair<ObjectId, HeapObject *> Heap::allocSlot() {
  std::unique_lock<std::shared_mutex> Lock(Mu);
  uint32_t Index;
  if (!FreeList.empty()) {
    Index = FreeList.back();
    FreeList.pop_back();
  } else {
    Index = static_cast<uint32_t>(Slots.size());
    Slots.emplace_back();
    Slots.back().Gen = 0;
  }
  HeapObject &Obj = Slots[Index];
  // Generation 0 is reserved for "null"; the first resident gets gen 1, and
  // a recycled slot whose generation counter wraps skips 0 so a long-stale
  // ObjectId can never alias the null generation.
  Obj.Gen += 1;
  if (Obj.Gen == 0)
    Obj.Gen = 1;
  Obj.Live = true;
  Obj.Marked = false;
  Obj.PinCount = 0;
  Obj.MoveCount = 0;
  Obj.Fields.clear();
  Obj.PrimElems.clear();
  Obj.ObjElems.clear();
  Obj.Chars.clear();
  Obj.Address = NextAddress;
  NextAddress += 64;
  ++LiveCount;
  ++Stats.TotalAllocated;
  return {ObjectId{Index, Obj.Gen}, &Obj};
}

ObjectId Heap::allocPlain(Klass *Kl, uint32_t FieldSlots) {
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::Plain;
  Obj->Fields.assign(FieldSlots, Value::makeNull());
  return Id;
}

ObjectId Heap::allocPrimArray(Klass *Kl, JType ElemKind, size_t Len) {
  assert(isPrimitive(ElemKind) && "array element must be primitive");
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::PrimArray;
  Obj->ElemKind = ElemKind;
  Obj->PrimElems.assign(Len, 0);
  return Id;
}

ObjectId Heap::allocObjArray(Klass *Kl, size_t Len) {
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::ObjArray;
  Obj->ObjElems.assign(Len, ObjectId());
  return Id;
}

ObjectId Heap::allocString(Klass *Kl, std::u16string Chars) {
  auto [Id, Obj] = allocSlot();
  Obj->Kl = Kl;
  Obj->Shape = ObjShape::Str;
  Obj->Chars = std::move(Chars);
  return Id;
}

HeapObject *Heap::resolve(ObjectId Id) {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  if (Id.isNull() || Id.Index >= Slots.size())
    return nullptr;
  // Deque slots are address-stable, so the pointer stays valid after the
  // lock drops; liveness can only change under stop-the-world, when the
  // caller is either the collector itself or parked.
  HeapObject &Obj = Slots[Id.Index];
  if (!Obj.Live || Obj.Gen != Id.Gen)
    return nullptr;
  return &Obj;
}

const HeapObject *Heap::resolve(ObjectId Id) const {
  return const_cast<Heap *>(this)->resolve(Id);
}

bool Heap::isStale(ObjectId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  if (Id.isNull())
    return false;
  if (Id.Index >= Slots.size())
    return true;
  const HeapObject &Obj = Slots[Id.Index];
  return !Obj.Live || Obj.Gen != Id.Gen;
}

bool Heap::isMarked(ObjectId Id) const {
  const HeapObject *Obj = resolve(Id);
  return Obj && Obj->Marked;
}

void Heap::markFrom(ObjectId Root, std::vector<uint32_t> &Worklist) {
  HeapObject *Obj = resolve(Root);
  if (!Obj || Obj->Marked)
    return;
  Obj->Marked = true;
  Worklist.push_back(Root.Index);
}

void Heap::collect(const std::vector<ObjectId> &Roots, bool Move,
                   const std::function<void()> &BeforeSweep) {
  for (HeapObject &Obj : Slots)
    Obj.Marked = false;

  std::vector<uint32_t> Worklist;
  for (ObjectId Root : Roots)
    markFrom(Root, Worklist);

  while (!Worklist.empty()) {
    uint32_t Index = Worklist.back();
    Worklist.pop_back();
    HeapObject &Obj = Slots[Index];
    if (Obj.Shape == ObjShape::Plain) {
      for (const Value &Field : Obj.Fields)
        if (Field.isRef())
          markFrom(Field.Obj, Worklist);
    } else if (Obj.Shape == ObjShape::ObjArray) {
      for (ObjectId Elem : Obj.ObjElems)
        markFrom(Elem, Worklist);
    }
  }

  if (BeforeSweep)
    BeforeSweep();

  for (uint32_t Index = 0; Index < Slots.size(); ++Index) {
    HeapObject &Obj = Slots[Index];
    if (!Obj.Live)
      continue;
    if (!Obj.Marked) {
      // Reclaim: the slot generation advances so any surviving ObjectId for
      // this resident becomes permanently stale, and the slot is reusable.
      Obj.Live = false;
      Obj.Kl = nullptr;
      Obj.Fields.clear();
      Obj.PrimElems.clear();
      Obj.ObjElems.clear();
      Obj.Chars.clear();
      FreeList.push_back(Index);
      --LiveCount;
      ++Stats.TotalCollected;
      continue;
    }
    if (Move && Obj.PinCount == 0) {
      Obj.Address = NextAddress;
      NextAddress += 64;
      ++Obj.MoveCount;
    }
  }

  ++Stats.GcCount;
  if (Move)
    ++Stats.MovingGcCount;
}
