//===- jvm/Vm.cpp - The miniature Java virtual machine -------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Vm.h"

#include "support/Compiler.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace jinn;
using namespace jinn::jvm;

VmEventObserver::~VmEventObserver() = default;

//===----------------------------------------------------------------------===
// Per-thread mutator depth
//===----------------------------------------------------------------------===

namespace {
/// How deeply the calling OS thread is nested in MutatorScopes of each VM.
/// Keyed by VM address; a handful of entries at most, so linear scan wins.
/// Entries whose depth returned to zero are harmless if a later VM reuses
/// the address.
thread_local std::vector<std::pair<const void *, int>> MutatorDepths;

int &mutatorDepthFor(const void *V) {
  for (auto &Entry : MutatorDepths)
    if (Entry.first == V)
      return Entry.second;
  MutatorDepths.emplace_back(V, 0);
  return MutatorDepths.back().second;
}
} // namespace

void Vm::enterMutator() {
  int &Depth = mutatorDepthFor(this);
  if (Depth++ > 0)
    return;
  std::unique_lock<std::mutex> Lock(StwMutex);
  StwCv.wait(Lock, [this] { return !GcInProgress; });
  ++ActiveMutators;
}

void Vm::exitMutator() {
  int &Depth = mutatorDepthFor(this);
  if (--Depth > 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(StwMutex);
    --ActiveMutators;
  }
  StwCv.notify_all();
}

//===----------------------------------------------------------------------===
// UTF helpers (BMP only)
//===----------------------------------------------------------------------===

std::u16string jinn::jvm::utf8ToUtf16(std::string_view Utf8) {
  std::u16string Out;
  Out.reserve(Utf8.size());
  for (size_t I = 0; I < Utf8.size();) {
    unsigned char C = Utf8[I];
    if (C < 0x80) {
      Out.push_back(C);
      I += 1;
    } else if ((C >> 5) == 0x6 && I + 1 < Utf8.size()) {
      Out.push_back(static_cast<char16_t>(((C & 0x1F) << 6) |
                                          (Utf8[I + 1] & 0x3F)));
      I += 2;
    } else if ((C >> 4) == 0xE && I + 2 < Utf8.size()) {
      Out.push_back(static_cast<char16_t>(((C & 0x0F) << 12) |
                                          ((Utf8[I + 1] & 0x3F) << 6) |
                                          (Utf8[I + 2] & 0x3F)));
      I += 3;
    } else {
      Out.push_back(0xFFFD);
      I += 1;
    }
  }
  return Out;
}

std::string jinn::jvm::utf16ToUtf8(const std::u16string &Chars) {
  std::string Out;
  Out.reserve(Chars.size());
  for (char16_t C : Chars) {
    if (C < 0x80) {
      Out.push_back(static_cast<char>(C));
    } else if (C < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (C >> 6)));
      Out.push_back(static_cast<char>(0x80 | (C & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xE0 | (C >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((C >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (C & 0x3F)));
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===
// Construction / bootstrap
//===----------------------------------------------------------------------===

Vm::Vm(VmOptions Options) : Options(Options) {
  Diags.setEcho(Options.EchoDiagnostics);
  bootstrapCoreClasses();
  attachThread("main");
}

Vm::~Vm() { shutdown(); }

void Vm::bootstrapCoreClasses() {
  // Object and Class must exist before mirrors can be created.
  auto MakeRaw = [&](const std::string &Name, Klass *Super) {
    auto Owned = std::make_unique<Klass>(Name, Super);
    Klass *Raw = Owned.get();
    Raw->InstanceSlots = Super ? Super->InstanceSlots : 0;
    Classes.emplace(Name, std::move(Owned));
    ClassOrder.push_back(Raw);
    return Raw;
  };

  ObjectKlass = MakeRaw("java/lang/Object", nullptr);
  ClassKlass = MakeRaw("java/lang/Class", ObjectKlass);

  auto MakeMirror = [&](Klass *Kl) {
    ObjectId Mirror = TheHeap.allocPlain(ClassKlass, ClassKlass->InstanceSlots);
    Kl->Mirror = Mirror;
    MirrorToKlass[Mirror.raw()] = Kl;
  };
  MakeMirror(ObjectKlass);
  MakeMirror(ClassKlass);

  ClassDef StringDef;
  StringDef.Name = "java/lang/String";
  StringKlass = defineClass(StringDef);

  ClassDef ThrowableDef;
  ThrowableDef.Name = "java/lang/Throwable";
  ThrowableDef.field("message", "Ljava/lang/String;")
      .field("cause", "Ljava/lang/Throwable;")
      .field("stack", "Ljava/lang/String;");
  ThrowableKlass = defineClass(ThrowableDef);

  const char *Chain[][2] = {
      {"java/lang/Exception", "java/lang/Throwable"},
      {"java/lang/RuntimeException", "java/lang/Exception"},
      {"java/lang/NullPointerException", "java/lang/RuntimeException"},
      {"java/lang/IllegalArgumentException", "java/lang/RuntimeException"},
      {"java/lang/IllegalMonitorStateException", "java/lang/RuntimeException"},
      {"java/lang/IllegalStateException", "java/lang/RuntimeException"},
      {"java/lang/ArrayIndexOutOfBoundsException",
       "java/lang/RuntimeException"},
      {"java/lang/StringIndexOutOfBoundsException",
       "java/lang/RuntimeException"},
      {"java/lang/ArrayStoreException", "java/lang/RuntimeException"},
      {"java/lang/ClassCastException", "java/lang/RuntimeException"},
      {"java/lang/Error", "java/lang/Throwable"},
      {"java/lang/OutOfMemoryError", "java/lang/Error"},
      {"java/lang/NoClassDefFoundError", "java/lang/Error"},
      {"java/lang/NoSuchMethodError", "java/lang/Error"},
      {"java/lang/NoSuchFieldError", "java/lang/Error"},
      {"java/lang/UnsatisfiedLinkError", "java/lang/Error"},
      {"java/lang/InstantiationError", "java/lang/Error"},
      {"java/lang/Thread", "java/lang/Object"},
  };
  for (auto &Pair : Chain) {
    ClassDef Def;
    Def.Name = Pair[0];
    Def.Super = Pair[1];
    defineClass(Def);
  }

  // Reflection carriers (ToReflectedMethod/Field bridges) and the direct
  // byte buffer class: each holds an opaque pointer-sized payload.
  for (const char *Name : {"java/lang/reflect/Method",
                           "java/lang/reflect/Constructor",
                           "java/lang/reflect/Field"}) {
    ClassDef Def;
    Def.Name = Name;
    Def.field("ptr", "J");
    defineClass(Def);
  }
  ClassDef BufDef;
  BufDef.Name = "java/nio/ByteBuffer";
  BufDef.field("address", "J").field("capacity", "J");
  defineClass(BufDef);
}

Klass *Vm::defineClass(const ClassDef &Def) {
  std::unique_lock<std::shared_mutex> Lock(ClassesMutex);
  return defineClassLocked(Def);
}

Klass *Vm::lookupClassLocked(std::string_view Name) const {
  auto It = Classes.find(Name);
  return It == Classes.end() ? nullptr : It->second.get();
}

Klass *Vm::defineClassLocked(const ClassDef &Def) {
  if (Classes.count(Def.Name)) {
    Diags.report(IncidentKind::Note, "jvm",
                 formatString("class %s redefined; keeping first definition",
                              Def.Name.c_str()));
    return lookupClassLocked(Def.Name);
  }
  Klass *Super = nullptr;
  if (Def.Name != "java/lang/Object") {
    Super = lookupClassLocked(Def.Super);
    if (!Super) {
      Diags.report(IncidentKind::FatalError, "jvm",
                   formatString("superclass %s of %s not found",
                                Def.Super.c_str(), Def.Name.c_str()));
      return nullptr;
    }
  }

  auto Owned = std::make_unique<Klass>(Def.Name, Super);
  Klass *Kl = Owned.get();
  uint32_t NextSlot = Super ? Super->InstanceSlots : 0;

  for (const ClassDef::FieldDef &FD : Def.Fields) {
    auto Field = std::make_unique<FieldInfo>();
    Field->Owner = Kl;
    Field->Name = FD.Name;
    Field->Desc = FD.Desc;
    Field->Vis = FD.Vis;
    Field->IsStatic = FD.IsStatic;
    Field->IsFinal = FD.IsFinal;
    if (!parseFieldDescriptor(FD.Desc, Field->Type)) {
      Diags.report(IncidentKind::FatalError, "jvm",
                   formatString("malformed field descriptor %s for %s.%s",
                                FD.Desc.c_str(), Def.Name.c_str(),
                                FD.Name.c_str()));
      return nullptr;
    }
    if (FD.IsStatic)
      Field->StaticValue = defaultValueFor(Field->Type.Kind);
    else
      Field->Slot = NextSlot++;
    FieldIdSet.insert(Field.get());
    Kl->Fields.push_back(std::move(Field));
  }
  Kl->InstanceSlots = NextSlot;

  for (const ClassDef::MethodDef &MD : Def.Methods) {
    auto Method = std::make_unique<MethodInfo>();
    Method->Owner = Kl;
    Method->Name = MD.Name;
    Method->Desc = MD.Desc;
    Method->Vis = MD.Vis;
    Method->IsStatic = MD.IsStatic;
    Method->IsNative = MD.IsNative;
    Method->Body = MD.Body;
    Method->DeclSite = MD.DeclSite;
    if (!parseMethodDescriptor(MD.Desc, Method->Sig)) {
      Diags.report(IncidentKind::FatalError, "jvm",
                   formatString("malformed method descriptor %s for %s.%s",
                                MD.Desc.c_str(), Def.Name.c_str(),
                                MD.Name.c_str()));
      return nullptr;
    }
    MethodIdSet.insert(Method.get());
    Kl->Methods.push_back(std::move(Method));
  }

  Classes.emplace(Def.Name, std::move(Owned));
  ClassOrder.push_back(Kl);

  ObjectId Mirror = TheHeap.allocPlain(ClassKlass, ClassKlass->InstanceSlots);
  Kl->Mirror = Mirror;
  MirrorToKlass[Mirror.raw()] = Kl;
  return Kl;
}

Klass *Vm::defineArrayClassLocked(std::string_view Name) {
  TypeDesc Elem;
  std::string_view ElemDesc = Name.substr(1);
  if (!parseFieldDescriptor(ElemDesc, Elem))
    return nullptr;
  // For object element types, require the element class to exist.
  if (Elem.isReference() && !Elem.isArray() &&
      !lookupClassLocked(Elem.ClassName))
    return nullptr;

  auto Owned = std::make_unique<Klass>(std::string(Name), ObjectKlass);
  Klass *Kl = Owned.get();
  Kl->setElementType(Elem);
  Classes.emplace(std::string(Name), std::move(Owned));
  ClassOrder.push_back(Kl);

  ObjectId Mirror = TheHeap.allocPlain(ClassKlass, ClassKlass->InstanceSlots);
  Kl->Mirror = Mirror;
  MirrorToKlass[Mirror.raw()] = Kl;
  return Kl;
}

Klass *Vm::findClass(std::string_view Name) {
  {
    std::shared_lock<std::shared_mutex> Lock(ClassesMutex);
    if (Klass *Kl = lookupClassLocked(Name))
      return Kl;
  }
  if (!Name.empty() && Name[0] == '[') {
    std::unique_lock<std::shared_mutex> Lock(ClassesMutex);
    // Re-check: another thread may have materialized it since the shared
    // probe (shared_mutex is not upgradable).
    if (Klass *Kl = lookupClassLocked(Name))
      return Kl;
    return defineArrayClassLocked(Name);
  }
  return nullptr;
}

Klass *Vm::klassOf(ObjectId Obj) {
  HeapObject *HO = TheHeap.resolve(Obj);
  return HO ? HO->Kl : nullptr;
}

Klass *Vm::klassFromMirror(ObjectId Mirror) {
  std::shared_lock<std::shared_mutex> Lock(ClassesMutex);
  auto It = MirrorToKlass.find(Mirror.raw());
  return It == MirrorToKlass.end() ? nullptr : It->second;
}

//===----------------------------------------------------------------------===
// Threads
//===----------------------------------------------------------------------===

JThread &Vm::attachThread(std::string Name) {
  JThread *Thread;
  {
    std::unique_lock<std::shared_mutex> Lock(ThreadsMutex);
    assert(NextThreadId < 4096 && "thread id space exhausted");
    auto Owned =
        std::make_unique<JThread>(*this, NextThreadId++, std::move(Name));
    Thread = Owned.get();
    Threads.push_back(std::move(Owned));
  }
  // Attached threads get a base local frame, as with AttachCurrentThread.
  Thread->pushFrame(Options.NativeFrameCapacity, /*Explicit=*/false);
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onThreadStart(*Thread);
  return *Thread;
}

void Vm::detachThread(JThread &Thread) {
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onThreadEnd(Thread);
  while (Thread.frameDepth() > 0)
    Thread.popFrame();
}

JThread *Vm::threadById(uint32_t Id) {
  std::shared_lock<std::shared_mutex> Lock(ThreadsMutex);
  for (const auto &Thread : Threads)
    if (Thread->id() == Id)
      return Thread.get();
  return nullptr;
}

//===----------------------------------------------------------------------===
// Allocation and strings
//===----------------------------------------------------------------------===

ObjectId Vm::newObject(Klass *Kl) {
  assert(Kl && !Kl->isArray() && "newObject needs a plain class");
  ObjectId Id = TheHeap.allocPlain(Kl, Kl->InstanceSlots);
  // Initialize every inherited field slot to its typed default.
  HeapObject *HO = TheHeap.resolve(Id);
  for (const Klass *K = Kl; K; K = K->super())
    for (const auto &Field : K->Fields)
      if (!Field->IsStatic)
        HO->Fields[Field->Slot] = defaultValueFor(Field->Type.Kind);
  maybeAutoGc(Id);
  return Id;
}

ObjectId Vm::newString(std::string_view Utf8) {
  return newStringUtf16(utf8ToUtf16(Utf8));
}

ObjectId Vm::newStringUtf16(std::u16string Chars) {
  ObjectId Id = TheHeap.allocString(StringKlass, std::move(Chars));
  maybeAutoGc(Id);
  return Id;
}

ObjectId Vm::newPrimArray(JType ElemKind, size_t Len) {
  std::string Name(1, '[');
  Name.push_back(typeDescriptorChar(ElemKind));
  ObjectId Id = TheHeap.allocPrimArray(findClass(Name), ElemKind, Len);
  maybeAutoGc(Id);
  return Id;
}

ObjectId Vm::newObjArray(Klass *ElemClass, size_t Len) {
  assert(ElemClass && "object array needs an element class");
  std::string Name;
  if (ElemClass->isArray())
    Name = "[" + ElemClass->name();
  else
    Name = "[L" + ElemClass->name() + ";";
  ObjectId Id = TheHeap.allocObjArray(findClass(Name), Len);
  maybeAutoGc(Id);
  return Id;
}

std::string Vm::utf8Of(ObjectId Str) {
  HeapObject *HO = TheHeap.resolve(Str);
  if (!HO || HO->Shape != ObjShape::Str)
    return std::string();
  return utf16ToUtf8(HO->Chars);
}

//===----------------------------------------------------------------------===
// Exceptions
//===----------------------------------------------------------------------===

ObjectId Vm::makeThrowable(JThread &Thread, const char *ClassName,
                           std::string Message, ObjectId Cause) {
  Klass *Kl = findClass(ClassName);
  if (!Kl || !Kl->isSubclassOf(ThrowableKlass)) {
    Diags.report(IncidentKind::FatalError, "jvm",
                 formatString("%s is not a throwable class", ClassName));
    Kl = ThrowableKlass;
  }
  // Allocate the payload strings before resolving the throwable: any
  // allocation may grow the heap's slot table and invalidate HeapObject
  // pointers. Temp-root them so an automatic GC cannot reclaim them.
  TempRoots Scope(Thread);
  ObjectId MsgStr = newString(Message);
  Scope.add(MsgStr);
  ObjectId StackStr = newString(Thread.renderStack());
  Scope.add(StackStr);
  ObjectId Ex = newObject(Kl);
  FieldInfo *MsgField = Kl->findField("message", "Ljava/lang/String;", false);
  FieldInfo *CauseField = Kl->findField("cause", "Ljava/lang/Throwable;",
                                        false);
  FieldInfo *StackField = Kl->findField("stack", "Ljava/lang/String;", false);
  HeapObject *HO = TheHeap.resolve(Ex);
  if (MsgField)
    HO->Fields[MsgField->Slot] = Value::makeRef(MsgStr);
  if (CauseField)
    HO->Fields[CauseField->Slot] = Value::makeRef(Cause);
  if (StackField)
    HO->Fields[StackField->Slot] = Value::makeRef(StackStr);
  return Ex;
}

void Vm::throwNew(JThread &Thread, const char *ClassName,
                  std::string Message) {
  Thread.Pending = makeThrowable(Thread, ClassName, std::move(Message));
}

std::string Vm::throwableMessage(ObjectId Throwable) {
  Klass *Kl = klassOf(Throwable);
  if (!Kl)
    return std::string();
  FieldInfo *MsgField = Kl->findField("message", "Ljava/lang/String;", false);
  if (!MsgField)
    return std::string();
  HeapObject *HO = TheHeap.resolve(Throwable);
  return utf8Of(HO->Fields[MsgField->Slot].Obj);
}

ObjectId Vm::throwableCause(ObjectId Throwable) {
  Klass *Kl = klassOf(Throwable);
  if (!Kl)
    return ObjectId();
  FieldInfo *CauseField = Kl->findField("cause", "Ljava/lang/Throwable;",
                                        false);
  if (!CauseField)
    return ObjectId();
  HeapObject *HO = TheHeap.resolve(Throwable);
  return HO->Fields[CauseField->Slot].Obj;
}

static std::string dottedName(const std::string &Internal) {
  std::string Out = Internal;
  std::replace(Out.begin(), Out.end(), '/', '.');
  return Out;
}

std::string Vm::describeThrowable(ObjectId Throwable) {
  std::string Out;
  bool First = true;
  size_t PreviousFrames = 0;
  for (ObjectId Ex = Throwable; !Ex.isNull(); Ex = throwableCause(Ex)) {
    Klass *Kl = klassOf(Ex);
    if (!Kl)
      break;
    std::string Header = dottedName(Kl->name());
    std::string Msg = throwableMessage(Ex);
    if (!Msg.empty())
      Header += ": " + Msg;

    FieldInfo *StackField = Kl->findField("stack", "Ljava/lang/String;",
                                          false);
    std::string Stack;
    if (StackField) {
      HeapObject *HO = TheHeap.resolve(Ex);
      Stack = utf8Of(HO->Fields[StackField->Slot].Obj);
    }
    size_t FrameCount =
        static_cast<size_t>(std::count(Stack.begin(), Stack.end(), '\n'));

    if (First) {
      Out += Header + "\n" + Stack;
      First = false;
    } else {
      Out += "Caused by: " + Header + "\n";
      // Figure 9(c) style: show the distinctive top frames, elide the rest.
      size_t Shown = 0;
      size_t Pos = 0;
      while (Shown < 2 && Pos < Stack.size()) {
        size_t End = Stack.find('\n', Pos);
        if (End == std::string::npos)
          break;
        Out += Stack.substr(Pos, End - Pos + 1);
        Pos = End + 1;
        ++Shown;
      }
      if (FrameCount > Shown)
        Out += formatString("\t... %zu more\n", FrameCount - Shown);
    }
    PreviousFrames = FrameCount;
  }
  (void)PreviousFrames;
  return Out;
}

//===----------------------------------------------------------------------===
// Invocation
//===----------------------------------------------------------------------===

Value Vm::invoke(JThread &Thread, MethodInfo *Method, const Value &Self,
                 const std::vector<Value> &Args, bool VirtualDispatch) {
  assert(Method && "invoke needs a method");
  if (Thread.Poisoned || Shutdown)
    return defaultValueFor(Method->Sig.Ret.Kind);

  // Every invocation makes the calling OS thread a mutator: host driver
  // threads entering Java this way park at this boundary during GC.
  MutatorScope Scope(*this);

  MethodInfo *Target = Method;
  if (VirtualDispatch && !Method->IsStatic && Self.isRef() &&
      !Self.Obj.isNull()) {
    if (Klass *Dynamic = klassOf(Self.Obj))
      if (MethodInfo *Found =
              Dynamic->findMethod(Method->Name, Method->Desc, false))
        Target = Found;
  }

  StackEntry Entry;
  Entry.IsNative = Target->IsNative;
  std::string Site = Target->IsNative
                         ? std::string("Native Method")
                         : (Target->DeclSite.empty() ? "Unknown Source"
                                                     : Target->DeclSite);
  Entry.Display =
      dottedName(Target->Owner->name()) + "." + Target->Name + "(" + Site +
      ")";
  Thread.Stack.push_back(std::move(Entry));

  Value Result = defaultValueFor(Target->Sig.Ret.Kind);
  if (Target->IsNative) {
    if (Target->NativeBound)
      Result = Target->NativeBound(Thread, Self, Args);
    else
      throwNew(Thread, "java/lang/UnsatisfiedLinkError",
               Target->qualifiedName());
  } else if (Target->Body) {
    Result = Target->Body(*this, Thread, Self, Args);
  } else {
    throwNew(Thread, "java/lang/InstantiationError",
             "method has no body: " + Target->qualifiedName());
  }

  if (!Thread.Stack.empty())
    Thread.Stack.pop_back();
  if (!Thread.Pending.isNull())
    return defaultValueFor(Target->Sig.Ret.Kind);
  return Result;
}

Value Vm::invokeByName(JThread &Thread, const char *ClassName,
                       const char *MethodName, const char *Desc,
                       const Value &Self, const std::vector<Value> &Args) {
  if (Thread.Poisoned || Shutdown)
    return Value::makeVoid();
  Klass *Kl = findClass(ClassName);
  if (!Kl) {
    throwNew(Thread, "java/lang/NoClassDefFoundError", ClassName);
    return Value::makeVoid();
  }
  MethodInfo *Method = Kl->findMethodAnyStatic(MethodName, Desc);
  if (!Method) {
    throwNew(Thread, "java/lang/NoSuchMethodError",
             std::string(ClassName) + "." + MethodName);
    return Value::makeVoid();
  }
  return invoke(Thread, Method, Self, Args, /*VirtualDispatch=*/true);
}

//===----------------------------------------------------------------------===
// Global references
//===----------------------------------------------------------------------===

uint64_t Vm::newGlobalRef(ObjectId Target, bool Weak) {
  if (Target.isNull())
    return 0;
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  uint32_t Index;
  if (!FreeGlobalSlots.empty()) {
    Index = FreeGlobalSlots.back();
    FreeGlobalSlots.pop_back();
  } else {
    Index = static_cast<uint32_t>(Globals.size());
    Globals.emplace_back();
  }
  GlobalSlot &Slot = Globals[Index];
  Slot.Gen += 1;
  Slot.Live = true;
  Slot.Weak = Weak;
  Slot.Cleared = false;
  Slot.Target = Target;

  HandleBits Bits;
  Bits.Kind = Weak ? RefKind::WeakGlobal : RefKind::Global;
  Bits.Thread = 0;
  Bits.Slot = Index;
  Bits.Gen = Slot.Gen;
  return encodeHandle(Bits);
}

LocalRefState Vm::globalRefStateLocked(const HandleBits &Bits) const {
  if (Bits.Slot >= Globals.size())
    return LocalRefState::NeverIssued;
  const GlobalSlot &Slot = Globals[Bits.Slot];
  if (Bits.Gen > Slot.Gen)
    return LocalRefState::NeverIssued;
  if (!Slot.Live || Slot.Gen != Bits.Gen)
    return LocalRefState::Stale;
  return LocalRefState::Live;
}

LocalRefState Vm::globalRefState(const HandleBits &Bits) const {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  return globalRefStateLocked(Bits);
}

ObjectId Vm::resolveGlobal(const HandleBits &Bits) const {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  if (globalRefStateLocked(Bits) != LocalRefState::Live)
    return ObjectId();
  const GlobalSlot &Slot = Globals[Bits.Slot];
  return Slot.Cleared ? ObjectId() : Slot.Target;
}

bool Vm::deleteGlobalRef(const HandleBits &Bits) {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  if (globalRefStateLocked(Bits) != LocalRefState::Live)
    return false;
  GlobalSlot &Slot = Globals[Bits.Slot];
  Slot.Live = false;
  Slot.Target = ObjectId();
  Slot.Gen += 1;
  FreeGlobalSlots.push_back(Bits.Slot);
  return true;
}

size_t Vm::liveGlobalCount(bool Weak) const {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  size_t N = 0;
  for (const GlobalSlot &Slot : Globals)
    if (Slot.Live && Slot.Weak == Weak)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===
// Central handle resolution
//===----------------------------------------------------------------------===

ObjectId Vm::resolveHandle(JThread &Current, uint64_t Word,
                           bool *WasUndefined) {
  if (WasUndefined)
    *WasUndefined = false;
  if (Word == 0)
    return ObjectId();
  if (Current.Poisoned)
    return ObjectId();

  std::optional<HandleBits> Bits = decodeHandle(Word);
  if (!Bits) {
    if (WasUndefined)
      *WasUndefined = true;
    undefined(Current, UndefinedOp::IdReferenceConfusion,
              formatString("value %#llx is not a JNI reference",
                           static_cast<unsigned long long>(Word)));
    return ObjectId();
  }
  if (Bits->Kind == RefKind::Null)
    return ObjectId();

  if (Bits->Kind == RefKind::Local) {
    JThread *Owner = threadById(Bits->Thread);
    if (!Owner) {
      if (WasUndefined)
        *WasUndefined = true;
      undefined(Current, UndefinedOp::DanglingLocalRef,
                "local reference from a dead thread");
      return ObjectId();
    }
    LocalRefState State = Owner->localRefState(*Bits);
    if (State != LocalRefState::Live) {
      if (WasUndefined)
        *WasUndefined = true;
      undefined(Current, UndefinedOp::DanglingLocalRef,
                formatString("local reference slot %u of thread %u is %s",
                             Bits->Slot, Bits->Thread,
                             State == LocalRefState::Stale ? "stale"
                                                           : "unknown"));
      return ObjectId();
    }
    if (Owner != &Current) {
      if (WasUndefined)
        *WasUndefined = true;
      ProductionOutcome Out =
          undefined(Current, UndefinedOp::InvalidArgument,
                    formatString("local reference of thread %u used on "
                                 "thread %u",
                                 Bits->Thread, Current.id()));
      // An "Ignore" VM keeps running with the (accidentally valid) target.
      if (Out == ProductionOutcome::Ignore)
        return Owner->resolveLocal(*Bits);
      return ObjectId();
    }
    ObjectId Target = Owner->resolveLocal(*Bits);
    if (TheHeap.isStale(Target)) {
      // The referenced object no longer exists (should not happen while the
      // slot is live and GC roots include locals, but guard anyway).
      return ObjectId();
    }
    return Target;
  }

  // Global / weak global.
  LocalRefState State = globalRefState(*Bits);
  if (State != LocalRefState::Live) {
    if (WasUndefined)
      *WasUndefined = true;
    undefined(Current, UndefinedOp::DanglingGlobalRef,
              formatString("%s reference slot %u is %s",
                           Bits->Kind == RefKind::WeakGlobal ? "weak global"
                                                             : "global",
                           Bits->Slot,
                           State == LocalRefState::Stale ? "stale"
                                                         : "unknown"));
    return ObjectId();
  }
  return resolveGlobal(*Bits);
}

Vm::PeekResult Vm::peekHandle(uint64_t Word, const JThread *Perspective) {
  PeekResult Out;
  if (Word == 0)
    return Out;
  std::optional<HandleBits> Bits = decodeHandle(Word);
  if (!Bits || Bits->Kind == RefKind::Null) {
    Out.S = PeekResult::Status::NotARef;
    return Out;
  }
  Out.Kind = Bits->Kind;
  if (Bits->Kind == RefKind::Local) {
    Out.OwnerThread = Bits->Thread;
    JThread *Owner = threadById(Bits->Thread);
    if (!Owner) {
      Out.S = PeekResult::Status::Stale;
      return Out;
    }
    LocalRefState State = Owner->localRefState(*Bits);
    if (State != LocalRefState::Live) {
      Out.S = PeekResult::Status::Stale;
      return Out;
    }
    Out.Target = Owner->resolveLocal(*Bits);
    Out.S = (Perspective && Owner->id() != Perspective->id())
                ? PeekResult::Status::WrongThreadLive
                : PeekResult::Status::Live;
    return Out;
  }
  LocalRefState State = globalRefState(*Bits);
  if (State != LocalRefState::Live) {
    Out.S = PeekResult::Status::Stale;
    return Out;
  }
  Out.Target = resolveGlobal(*Bits);
  Out.S = (Bits->Kind == RefKind::WeakGlobal && Out.Target.isNull())
              ? PeekResult::Status::ClearedWeak
              : PeekResult::Status::Live;
  return Out;
}

//===----------------------------------------------------------------------===
// Monitors
//===----------------------------------------------------------------------===

MonitorResult Vm::monitorEnter(JThread &Thread, ObjectId Obj) {
  std::lock_guard<std::mutex> Lock(MonitorsMutex);
  auto It = Monitors.find(Obj.raw());
  if (It == Monitors.end()) {
    Monitors[Obj.raw()] = {Thread.id(), 1};
    return MonitorResult::Ok;
  }
  if (It->second.OwnerThread == Thread.id()) {
    It->second.Count += 1;
    return MonitorResult::Ok;
  }
  Diags.report(IncidentKind::Note, "jvm",
               formatString("monitor contention: thread %u blocked on a "
                            "monitor owned by thread %u",
                            Thread.id(), It->second.OwnerThread));
  return MonitorResult::WouldBlock;
}

MonitorResult Vm::monitorExit(JThread &Thread, ObjectId Obj) {
  std::lock_guard<std::mutex> Lock(MonitorsMutex);
  auto It = Monitors.find(Obj.raw());
  if (It == Monitors.end() || It->second.OwnerThread != Thread.id())
    return MonitorResult::IllegalState;
  if (--It->second.Count == 0)
    Monitors.erase(It);
  return MonitorResult::Ok;
}

//===----------------------------------------------------------------------===
// Pinned resources
//===----------------------------------------------------------------------===

uint64_t Vm::pinObject(JThread &Thread, ObjectId Target, PinKind Kind) {
  std::lock_guard<std::mutex> Lock(PinsMutex);
  if (HeapObject *HO = TheHeap.resolve(Target))
    HO->PinCount += 1;
  uint64_t Cookie = NextPinCookie++;
  Pins.push_back({Target, Kind, Thread.id(), Cookie});
  return Cookie;
}

bool Vm::unpinObject(JThread &Thread, ObjectId Target, PinKind Kind) {
  (void)Thread;
  std::lock_guard<std::mutex> Lock(PinsMutex);
  for (auto It = Pins.rbegin(); It != Pins.rend(); ++It) {
    if (It->Target == Target && It->Kind == Kind) {
      if (HeapObject *HO = TheHeap.resolve(Target))
        if (HO->PinCount > 0)
          HO->PinCount -= 1;
      Pins.erase(std::next(It).base());
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===
// Undefined behavior, GC, lifecycle
//===----------------------------------------------------------------------===

ProductionOutcome Vm::undefined(JThread &Thread, UndefinedOp Op,
                                std::string Detail) {
  ProductionOutcome Out = productionBehavior(Options.Flavor, Op);
  std::string Msg =
      formatString("%s (%s)", undefinedOpName(Op), Detail.c_str());
  switch (Out) {
  case ProductionOutcome::Ignore:
    Diags.report(IncidentKind::UndefinedState, "jvm", std::move(Msg));
    break;
  case ProductionOutcome::Crash:
    Diags.report(IncidentKind::SimulatedCrash, "jvm", std::move(Msg));
    Thread.Poisoned = true;
    break;
  case ProductionOutcome::ThrowNpe:
    throwNew(Thread, "java/lang/NullPointerException", std::move(Msg));
    break;
  case ProductionOutcome::Deadlock:
    Diags.report(IncidentKind::PotentialDeadlock, "jvm", std::move(Msg));
    Thread.Poisoned = true;
    break;
  }
  return Out;
}

bool Vm::anyThreadInCritical() const {
  std::shared_lock<std::shared_mutex> Lock(ThreadsMutex);
  for (const auto &Thread : Threads)
    if (Thread->CriticalDepth.load(std::memory_order_acquire) > 0)
      return true;
  return false;
}

void Vm::collectRoots(std::vector<ObjectId> &Roots) {
  {
    std::shared_lock<std::shared_mutex> Lock(ClassesMutex);
    for (Klass *Kl : ClassOrder) {
      Roots.push_back(Kl->Mirror);
      for (const auto &Field : Kl->Fields)
        if (Field->IsStatic && Field->StaticValue.isRef())
          Roots.push_back(Field->StaticValue.Obj);
    }
  }
  {
    std::shared_lock<std::shared_mutex> Lock(ThreadsMutex);
    for (const auto &Thread : Threads)
      Thread->collectRoots(Roots);
  }
  {
    std::lock_guard<std::mutex> Lock(GlobalsMutex);
    for (const GlobalSlot &Slot : Globals)
      if (Slot.Live && !Slot.Weak && !Slot.Cleared)
        Roots.push_back(Slot.Target);
  }
  {
    std::lock_guard<std::mutex> Lock(PinsMutex);
    for (const PinRecord &Pin : Pins)
      Roots.push_back(Pin.Target);
  }
  {
    std::lock_guard<std::mutex> Lock(NewbornsMutex);
    for (ObjectId Id : Newborns)
      Roots.push_back(Id);
  }
}

void Vm::gc() {
  if (anyThreadInCritical()) {
    Diags.report(IncidentKind::Note, "jvm",
                 "GC request ignored: a thread holds a critical section");
    return;
  }

  // Stop the world. The caller may itself be inside a MutatorScope (e.g.
  // auto-GC from an allocation in a native call); it exempts its own
  // active-mutator slot while it collects. If another thread's collection
  // is already running, park like any mutator until it finishes, then run
  // our own (the request was explicit).
  const bool SelfMutator = mutatorDepthFor(this) > 0;
  std::unique_lock<std::mutex> Lock(StwMutex);
  while (GcInProgress) {
    if (SelfMutator) {
      --ActiveMutators;
      StwCv.notify_all();
    }
    StwCv.wait(Lock, [this] { return !GcInProgress; });
    if (SelfMutator)
      ++ActiveMutators;
  }
  GcInProgress = true;
  if (SelfMutator)
    --ActiveMutators;
  StwCv.wait(Lock, [this] { return ActiveMutators == 0; });

  // World stopped: every other mutator is parked (GcInProgress gates entry),
  // so the collection itself runs without the lock held.
  Lock.unlock();
  std::vector<ObjectId> Roots;
  collectRoots(Roots);
  TheHeap.collect(Roots, Options.MoveOnGc, [this] {
    std::lock_guard<std::mutex> GLock(GlobalsMutex);
    for (GlobalSlot &Slot : Globals) {
      if (Slot.Live && Slot.Weak && !Slot.Cleared &&
          !TheHeap.isMarked(Slot.Target)) {
        Slot.Cleared = true;
        Slot.Target = ObjectId();
      }
    }
  });
  AllocsSinceGc.store(0, std::memory_order_relaxed);

  // Resume the world, then notify observers outside all locks.
  Lock.lock();
  if (SelfMutator)
    ++ActiveMutators;
  GcInProgress = false;
  Lock.unlock();
  StwCv.notify_all();
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onGcFinish();
}

void Vm::maybeAutoGc(ObjectId Newborn) {
  if (Options.AutoGcPeriod == 0)
    return;
  if (AllocsSinceGc.fetch_add(1, std::memory_order_relaxed) + 1 <
      Options.AutoGcPeriod)
    return;
  // The caller has not yet stored Newborn anywhere a root scan can see.
  // Publish it before any collection can start: gc() may park this thread
  // (self-mutator exemption) while another thread's collection runs, and
  // that collection must not sweep the newborn either.
  if (!Newborn.isNull()) {
    std::lock_guard<std::mutex> Lock(NewbornsMutex);
    Newborns.push_back(Newborn);
  }
  gc();
  if (!Newborn.isNull()) {
    std::lock_guard<std::mutex> Lock(NewbornsMutex);
    Newborns.erase(std::find(Newborns.begin(), Newborns.end(), Newborn));
  }
}

void Vm::shutdown() {
  if (Shutdown.exchange(true, std::memory_order_acq_rel))
    return;
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onVmDeath();
}

std::vector<VmEventObserver *> Vm::observersSnapshot() const {
  std::lock_guard<std::mutex> Lock(ObserversMutex);
  return Observers;
}

void Vm::addObserver(VmEventObserver *Observer) {
  std::lock_guard<std::mutex> Lock(ObserversMutex);
  Observers.push_back(Observer);
}

void Vm::removeObserver(VmEventObserver *Observer) {
  std::lock_guard<std::mutex> Lock(ObserversMutex);
  Observers.erase(std::remove(Observers.begin(), Observers.end(), Observer),
                  Observers.end());
}
