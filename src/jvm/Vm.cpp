//===- jvm/Vm.cpp - The miniature Java virtual machine -------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvm/Vm.h"

#include "mutate/Mutation.h"

#include "support/Compiler.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace jinn;
using namespace jinn::jvm;

static std::string dottedName(const std::string &Internal);

VmEventObserver::~VmEventObserver() = default;

//===----------------------------------------------------------------------===
// Safepoint protocol (DESIGN.md §12)
//
// Every OS thread carries one MutatorSlot per VM it has entered, cached in
// TLS keyed by the VM's live-instance serial. The steady-state mutator
// enter/exit path is lock-free: it flips the slot's Active flag and checks
// StwRequested, both with seq_cst order, which forms the Dekker-style
// store/load pair against the collector (StwRequested store, then Active
// scan) — one side always observes the other. The release/acquire edges of
// the same flags are what make plain JThread fields (Pending, Stack,
// TempRootStack) safe to read from the collector during a pause.
//===----------------------------------------------------------------------===

namespace jinn::jvm {

/// Per-OS-thread cache of (VM serial -> mutator slot) bindings, MRU-first.
/// The destructor hands slots back through the live-instance registry on
/// OS-thread exit (safe even when the VM died first).
struct VmTlsCache {
  std::vector<Vm::MutatorTls> Refs;

  ~VmTlsCache() {
    for (Vm::MutatorTls &R : Refs)
      withLiveInstance(R.Serial, &Vm::returnMutatorSlotTrampoline, R.Slot);
  }
};

} // namespace jinn::jvm

static thread_local VmTlsCache VmTls;

Vm::MutatorTls &Vm::mutatorTlsForCurrentThread() {
  auto &Refs = VmTls.Refs;
  if (!Refs.empty() && Refs.front().Serial == VmSerial)
    return Refs.front();
  for (size_t I = 1; I < Refs.size(); ++I)
    if (Refs[I].Serial == VmSerial) {
      std::swap(Refs[0], Refs[I]);
      return Refs.front();
    }

  // First entry of this thread into this VM: prune entries of dead VMs and
  // adopt a pooled slot (or grow the slot table).
  Refs.erase(std::remove_if(
                 Refs.begin(), Refs.end(),
                 [](const MutatorTls &R) { return !instanceIsLive(R.Serial); }),
             Refs.end());
  MutatorSlot *Slot;
  {
    std::lock_guard<std::mutex> Lock(StwMutex);
    if (!FreeMutatorSlots.empty()) {
      Slot = FreeMutatorSlots.back();
      FreeMutatorSlots.pop_back();
    } else {
      Slot = &MutatorSlots[MutatorSlots.grow(1)];
    }
  }
  MutatorTls Entry;
  Entry.Serial = VmSerial;
  Entry.V = this;
  Entry.Slot = Slot;
  Refs.insert(Refs.begin(), Entry);
  return Refs.front();
}

void Vm::returnMutatorSlotTrampoline(void *VmPtr, void *SlotPtr) {
  static_cast<Vm *>(VmPtr)->returnMutatorSlot(
      static_cast<MutatorSlot *>(SlotPtr));
}

void Vm::returnMutatorSlot(MutatorSlot *Slot) {
  assert(Slot->Active.load(std::memory_order_relaxed) == 0 &&
         "thread exited inside a MutatorScope");
  std::lock_guard<std::mutex> Lock(StwMutex);
  FreeMutatorSlots.push_back(Slot);
}

void Vm::enterMutator() {
  MutatorTls &T = mutatorTlsForCurrentThread();
  if (T.Depth++ > 0)
    return;
  MutatorSlot &Slot = *T.Slot;
  Slot.Active.store(1, std::memory_order_seq_cst);
  if (!StwRequested.load(std::memory_order_seq_cst))
    return; // fast path: no pause pending
  // A pause is starting or in progress: stand down and park until it ends.
  std::unique_lock<std::mutex> Lock(StwMutex);
  for (;;) {
    Slot.Active.store(0, std::memory_order_seq_cst);
    StwCv.notify_all();
    StwCv.wait(Lock, [this] {
      return !StwRequested.load(std::memory_order_relaxed);
    });
    Slot.Active.store(1, std::memory_order_seq_cst);
    if (!StwRequested.load(std::memory_order_seq_cst))
      return;
  }
}

void Vm::exitMutator() {
  MutatorTls &T = mutatorTlsForCurrentThread();
  if (--T.Depth > 0)
    return;
  T.Slot->Active.store(0, std::memory_order_seq_cst);
  if (StwRequested.load(std::memory_order_seq_cst)) {
    // A collector is waiting for the mutator count to reach zero.
    std::lock_guard<std::mutex> Lock(StwMutex);
    StwCv.notify_all();
  }
}

int Vm::activeMutatorCount() {
  int N = 0;
  size_t Size = MutatorSlots.size();
  for (size_t I = 0; I < Size; ++I)
    if (MutatorSlots[I].Active.load(std::memory_order_seq_cst))
      ++N;
  return N;
}

void Vm::beginCollector() {
  MutatorTls &T = mutatorTlsForCurrentThread();
  const bool SelfMutator = T.Depth > 0;
  std::unique_lock<std::mutex> Lock(StwMutex);
  while (CollectorActive) {
    // Another thread is collecting. Park like any mutator (exempting our
    // own active slot so its pauses can proceed), then take the role.
    if (SelfMutator) {
      T.Slot->Active.store(0, std::memory_order_seq_cst);
      StwCv.notify_all();
    }
    StwCv.wait(Lock, [this] { return !CollectorActive; });
    if (SelfMutator)
      T.Slot->Active.store(1, std::memory_order_seq_cst);
  }
  CollectorActive = true;
  // Self-mutator exemption: our own slot stays inactive for the duration of
  // the cycle so stopWorld() does not wait for ourselves.
  if (SelfMutator)
    T.Slot->Active.store(0, std::memory_order_seq_cst);
}

void Vm::endCollector() {
  MutatorTls &T = mutatorTlsForCurrentThread();
  {
    std::lock_guard<std::mutex> Lock(StwMutex);
    if (T.Depth > 0)
      T.Slot->Active.store(1, std::memory_order_seq_cst);
    CollectorActive = false;
  }
  StwCv.notify_all();
}

void Vm::stopWorld() {
  std::unique_lock<std::mutex> Lock(StwMutex);
  StwRequested.store(true, std::memory_order_seq_cst);
  StwCv.wait(Lock, [this] { return activeMutatorCount() == 0; });
}

void Vm::resumeWorld() {
  {
    std::lock_guard<std::mutex> Lock(StwMutex);
    StwRequested.store(false, std::memory_order_seq_cst);
  }
  StwCv.notify_all();
}

//===----------------------------------------------------------------------===
// UTF helpers (BMP only)
//===----------------------------------------------------------------------===

std::u16string jinn::jvm::utf8ToUtf16(std::string_view Utf8) {
  std::u16string Out;
  Out.reserve(Utf8.size());
  for (size_t I = 0; I < Utf8.size();) {
    unsigned char C = Utf8[I];
    if (C < 0x80) {
      Out.push_back(C);
      I += 1;
    } else if ((C >> 5) == 0x6 && I + 1 < Utf8.size()) {
      Out.push_back(static_cast<char16_t>(((C & 0x1F) << 6) |
                                          (Utf8[I + 1] & 0x3F)));
      I += 2;
    } else if ((C >> 4) == 0xE && I + 2 < Utf8.size()) {
      Out.push_back(static_cast<char16_t>(((C & 0x0F) << 12) |
                                          ((Utf8[I + 1] & 0x3F) << 6) |
                                          (Utf8[I + 2] & 0x3F)));
      I += 3;
    } else {
      Out.push_back(0xFFFD);
      I += 1;
    }
  }
  return Out;
}

std::string jinn::jvm::utf16ToUtf8(const std::u16string &Chars) {
  std::string Out;
  Out.reserve(Chars.size());
  for (char16_t C : Chars) {
    if (C < 0x80) {
      Out.push_back(static_cast<char>(C));
    } else if (C < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (C >> 6)));
      Out.push_back(static_cast<char>(0x80 | (C & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xE0 | (C >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((C >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (C & 0x3F)));
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===
// Construction / bootstrap
//===----------------------------------------------------------------------===

namespace {

/// TLAB refill cadence; the slots-minus-one mutant is the campaign's
/// documented equivalent mutant (allocation results are unaffected).
size_t tlabSlotsFor(const VmOptions &Options) {
  size_t Slots = Options.TlabSlots ? Options.TlabSlots : 1;
  if (mutate::active(mutate::M::JvmTlabRefillMinusOne) && Slots > 1)
    Slots -= 1;
  return Slots;
}

} // namespace

Vm::Vm(VmOptions Options)
    : Options(Options), TheHeap(tlabSlotsFor(Options)),
      VmSerial(registerLiveInstance(this)) {
  Diags.setEcho(Options.EchoDiagnostics);
  bootstrapCoreClasses();
  attachThread("main");
}

Vm::~Vm() {
  shutdown();
  // After this, no OS-thread-exit destructor can hand a mutator slot back
  // through the registry; the slot storage dies with the members below.
  unregisterLiveInstance(VmSerial);
}

void Vm::bootstrapCoreClasses() {
  // Object and Class must exist before mirrors can be created.
  auto MakeRaw = [&](const std::string &Name, Klass *Super) {
    auto Owned = std::make_unique<Klass>(Name, Super);
    Klass *Raw = Owned.get();
    Raw->InstanceSlots = Super ? Super->InstanceSlots : 0;
    Classes.emplace(Name, std::move(Owned));
    registerClassLocked(Name, Raw);
    return Raw;
  };

  ObjectKlass = MakeRaw("java/lang/Object", nullptr);
  ClassKlass = MakeRaw("java/lang/Class", ObjectKlass);

  auto MakeMirror = [&](Klass *Kl) {
    ObjectId Mirror = TheHeap.allocPlain(ClassKlass, ClassKlass->InstanceSlots);
    Kl->Mirror = Mirror;
    MirrorToKlass.insert(Mirror.raw(), Kl);
  };
  MakeMirror(ObjectKlass);
  MakeMirror(ClassKlass);

  ClassDef StringDef;
  StringDef.Name = "java/lang/String";
  StringKlass = defineClass(StringDef);

  ClassDef ThrowableDef;
  ThrowableDef.Name = "java/lang/Throwable";
  ThrowableDef.field("message", "Ljava/lang/String;")
      .field("cause", "Ljava/lang/Throwable;")
      .field("stack", "Ljava/lang/String;");
  ThrowableKlass = defineClass(ThrowableDef);

  const char *Chain[][2] = {
      {"java/lang/Exception", "java/lang/Throwable"},
      {"java/lang/RuntimeException", "java/lang/Exception"},
      {"java/lang/NullPointerException", "java/lang/RuntimeException"},
      {"java/lang/IllegalArgumentException", "java/lang/RuntimeException"},
      {"java/lang/IllegalMonitorStateException", "java/lang/RuntimeException"},
      {"java/lang/IllegalStateException", "java/lang/RuntimeException"},
      {"java/lang/ArrayIndexOutOfBoundsException",
       "java/lang/RuntimeException"},
      {"java/lang/StringIndexOutOfBoundsException",
       "java/lang/RuntimeException"},
      {"java/lang/ArrayStoreException", "java/lang/RuntimeException"},
      {"java/lang/ClassCastException", "java/lang/RuntimeException"},
      {"java/lang/Error", "java/lang/Throwable"},
      {"java/lang/OutOfMemoryError", "java/lang/Error"},
      {"java/lang/NoClassDefFoundError", "java/lang/Error"},
      {"java/lang/NoSuchMethodError", "java/lang/Error"},
      {"java/lang/NoSuchFieldError", "java/lang/Error"},
      {"java/lang/UnsatisfiedLinkError", "java/lang/Error"},
      {"java/lang/InstantiationError", "java/lang/Error"},
      {"java/lang/Thread", "java/lang/Object"},
  };
  for (auto &Pair : Chain) {
    ClassDef Def;
    Def.Name = Pair[0];
    Def.Super = Pair[1];
    defineClass(Def);
  }

  // Reflection carriers (ToReflectedMethod/Field bridges) and the direct
  // byte buffer class: each holds an opaque pointer-sized payload.
  for (const char *Name : {"java/lang/reflect/Method",
                           "java/lang/reflect/Constructor",
                           "java/lang/reflect/Field"}) {
    ClassDef Def;
    Def.Name = Name;
    Def.field("ptr", "J");
    defineClass(Def);
  }
  ClassDef BufDef;
  BufDef.Name = "java/nio/ByteBuffer";
  BufDef.field("address", "J").field("capacity", "J");
  defineClass(BufDef);
}

Klass *Vm::defineClass(const ClassDef &Def) {
  // Definition allocates a mirror object, so the defining thread must be a
  // mutator (this also orders registry writes before any GC pause).
  MutatorScope Scope(*this);
  std::lock_guard<std::mutex> Lock(ClassesMu);
  return defineClassLocked(Def);
}

Klass *Vm::lookupClassLocked(std::string_view Name) const {
  auto It = Classes.find(Name);
  return It == Classes.end() ? nullptr : It->second.get();
}

void Vm::registerClassLocked(const std::string &Name, Klass *Kl) {
  ClassOrder.push_back(Kl);
  ClassByName.insert(hashBytes(Name.data(), Name.size()), Kl);
}

Klass *Vm::defineClassLocked(const ClassDef &Def) {
  if (Classes.count(Def.Name)) {
    Diags.report(IncidentKind::Note, "jvm",
                 formatString("class %s redefined; keeping first definition",
                              Def.Name.c_str()));
    return lookupClassLocked(Def.Name);
  }
  Klass *Super = nullptr;
  if (Def.Name != "java/lang/Object") {
    Super = lookupClassLocked(Def.Super);
    if (!Super) {
      Diags.report(IncidentKind::FatalError, "jvm",
                   formatString("superclass %s of %s not found",
                                Def.Super.c_str(), Def.Name.c_str()));
      return nullptr;
    }
  }

  auto Owned = std::make_unique<Klass>(Def.Name, Super);
  Klass *Kl = Owned.get();
  uint32_t NextSlot = Super ? Super->InstanceSlots : 0;

  for (const ClassDef::FieldDef &FD : Def.Fields) {
    auto Field = std::make_unique<FieldInfo>();
    Field->Owner = Kl;
    Field->Name = FD.Name;
    Field->Desc = FD.Desc;
    Field->Vis = FD.Vis;
    Field->IsStatic = FD.IsStatic;
    Field->IsFinal = FD.IsFinal;
    if (!parseFieldDescriptor(FD.Desc, Field->Type)) {
      Diags.report(IncidentKind::FatalError, "jvm",
                   formatString("malformed field descriptor %s for %s.%s",
                                FD.Desc.c_str(), Def.Name.c_str(),
                                FD.Name.c_str()));
      return nullptr;
    }
    if (FD.IsStatic)
      Field->StaticValue = defaultValueFor(Field->Type.Kind);
    else
      Field->Slot = NextSlot++;
    FieldIds.insert(reinterpret_cast<uint64_t>(Field.get()), Field.get());
    Kl->Fields.push_back(std::move(Field));
  }
  Kl->InstanceSlots = NextSlot;

  for (const ClassDef::MethodDef &MD : Def.Methods) {
    auto Method = std::make_unique<MethodInfo>();
    Method->Owner = Kl;
    Method->Name = MD.Name;
    Method->Desc = MD.Desc;
    Method->Vis = MD.Vis;
    Method->IsStatic = MD.IsStatic;
    Method->IsNative = MD.IsNative;
    Method->Body = MD.Body;
    Method->DeclSite = MD.DeclSite;
    if (!parseMethodDescriptor(MD.Desc, Method->Sig)) {
      Diags.report(IncidentKind::FatalError, "jvm",
                   formatString("malformed method descriptor %s for %s.%s",
                                MD.Desc.c_str(), Def.Name.c_str(),
                                MD.Name.c_str()));
      return nullptr;
    }
    std::string Site = Method->IsNative
                           ? std::string("Native Method")
                           : (Method->DeclSite.empty() ? "Unknown Source"
                                                       : Method->DeclSite);
    Method->Display =
        dottedName(Def.Name) + "." + Method->Name + "(" + Site + ")";
    MethodIds.insert(reinterpret_cast<uint64_t>(Method.get()), Method.get());
    Kl->Methods.push_back(std::move(Method));
  }

  Classes.emplace(Def.Name, std::move(Owned));
  registerClassLocked(Def.Name, Kl);

  ObjectId Mirror = TheHeap.allocPlain(ClassKlass, ClassKlass->InstanceSlots);
  Kl->Mirror = Mirror;
  MirrorToKlass.insert(Mirror.raw(), Kl);
  return Kl;
}

Klass *Vm::defineArrayClassLocked(std::string_view Name) {
  TypeDesc Elem;
  std::string_view ElemDesc = Name.substr(1);
  if (!parseFieldDescriptor(ElemDesc, Elem))
    return nullptr;
  // For object element types, require the element class to exist.
  if (Elem.isReference() && !Elem.isArray() &&
      !lookupClassLocked(Elem.ClassName))
    return nullptr;

  auto Owned = std::make_unique<Klass>(std::string(Name), ObjectKlass);
  Klass *Kl = Owned.get();
  Kl->setElementType(Elem);
  Classes.emplace(std::string(Name), std::move(Owned));
  registerClassLocked(Kl->name(), Kl);

  ObjectId Mirror = TheHeap.allocPlain(ClassKlass, ClassKlass->InstanceSlots);
  Kl->Mirror = Mirror;
  MirrorToKlass.insert(Mirror.raw(), Kl);
  return Kl;
}

Klass *Vm::findClass(std::string_view Name) {
  if (Name.empty())
    return nullptr;
  // Lock-free fast path against the snapshot index. The hash keys the
  // probe; the predicate rejects collisions by comparing the actual name.
  if (Klass *Kl = ClassByName.find(
          hashBytes(Name.data(), Name.size()),
          [&](Klass *Candidate) { return Candidate->name() == Name; }))
    return Kl;
  if (Name[0] == '[') {
    // Array classes materialize on demand; defining allocates a mirror, so
    // become a mutator first (lock order: StwMutex > ClassesMu).
    MutatorScope Scope(*this);
    std::lock_guard<std::mutex> Lock(ClassesMu);
    // Re-probe under the definer lock: another thread may have materialized
    // the class since the lock-free probe missed. Without this, both
    // threads would register duplicate Klass instances and handles minted
    // against one would not compare equal against the other.
    if (Klass *Kl = lookupClassLocked(Name))
      return Kl;
    return defineArrayClassLocked(Name);
  }
  return nullptr;
}

Klass *Vm::klassOf(ObjectId Obj) {
  HeapObject *HO = TheHeap.resolve(Obj);
  return HO ? HO->Kl : nullptr;
}

Klass *Vm::klassFromMirror(ObjectId Mirror) {
  if (Mirror.isNull())
    return nullptr;
  return MirrorToKlass.find(Mirror.raw());
}

//===----------------------------------------------------------------------===
// Threads
//===----------------------------------------------------------------------===

JThread &Vm::attachThread(std::string Name) {
  JThread *Thread;
  {
    std::lock_guard<std::mutex> Lock(ThreadsMutex);
    uint32_t Id = NextThreadId.fetch_add(1, std::memory_order_relaxed);
    // Ids are never reused, so a request-per-thread server eventually
    // exhausts the 15-bit handle field; fail loudly rather than alias
    // handle encodings in release builds.
    if (Id >= ThreadTable.size()) {
      std::fprintf(stderr,
                   "jinn: thread id space exhausted (%zu attaches)\n",
                   ThreadTable.size());
      std::abort();
    }
    auto Owned = std::make_unique<JThread>(*this, Id, std::move(Name));
    Thread = Owned.get();
    Threads.push_back(std::move(Owned));
    ThreadTable[Id].store(Thread, std::memory_order_release);
  }
  // Attached threads get a base local frame, as with AttachCurrentThread.
  uint32_t BaseCapacity = Options.NativeFrameCapacity;
  if (mutate::active(mutate::M::JvmFrameCapacityPlusOne))
    BaseCapacity += 1;
  Thread->pushFrame(BaseCapacity, /*Explicit=*/false);
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onThreadStart(*Thread);
  return *Thread;
}

void Vm::detachThread(JThread &Thread) {
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onThreadEnd(Thread);
  while (Thread.frameDepth() > 0)
    Thread.popFrame();
}

JThread *Vm::threadById(uint32_t Id) {
  if (Id == 0 || Id >= ThreadTable.size())
    return nullptr;
  return ThreadTable[Id].load(std::memory_order_acquire);
}

//===----------------------------------------------------------------------===
// Allocation and strings
//===----------------------------------------------------------------------===

// Every Vm::new* wraps allocation AND maybeAutoGc in one MutatorScope:
// no collection pause can interleave between heap-slot publication and the
// newborn-root publication in maybeAutoGc, so a newborn that is not yet
// reachable from any frame can never be swept (the gc() publication-ordering
// fix of this PR). The scope is reentrant and lock-free when the caller is
// already a mutator (the usual JNI case).

ObjectId Vm::newObject(Klass *Kl) {
  assert(Kl && !Kl->isArray() && "newObject needs a plain class");
  MutatorScope Scope(*this);
  ObjectId Id = TheHeap.allocPlain(Kl, Kl->InstanceSlots);
  // Initialize every inherited field slot to its typed default.
  HeapObject *HO = TheHeap.resolve(Id);
  for (const Klass *K = Kl; K; K = K->super())
    for (const auto &Field : K->Fields)
      if (!Field->IsStatic)
        HO->Fields[Field->Slot] = defaultValueFor(Field->Type.Kind);
  maybeAutoGc(Id);
  return Id;
}

ObjectId Vm::newString(std::string_view Utf8) {
  return newStringUtf16(utf8ToUtf16(Utf8));
}

ObjectId Vm::newStringUtf16(std::u16string Chars) {
  MutatorScope Scope(*this);
  ObjectId Id = TheHeap.allocString(StringKlass, std::move(Chars));
  maybeAutoGc(Id);
  return Id;
}

ObjectId Vm::newPrimArray(JType ElemKind, size_t Len) {
  std::string Name(1, '[');
  Name.push_back(typeDescriptorChar(ElemKind));
  MutatorScope Scope(*this);
  ObjectId Id = TheHeap.allocPrimArray(findClass(Name), ElemKind, Len);
  maybeAutoGc(Id);
  return Id;
}

ObjectId Vm::newObjArray(Klass *ElemClass, size_t Len) {
  assert(ElemClass && "object array needs an element class");
  std::string Name;
  if (ElemClass->isArray())
    Name = "[" + ElemClass->name();
  else
    Name = "[L" + ElemClass->name() + ";";
  MutatorScope Scope(*this);
  ObjectId Id = TheHeap.allocObjArray(findClass(Name), Len);
  maybeAutoGc(Id);
  return Id;
}

std::string Vm::utf8Of(ObjectId Str) {
  HeapObject *HO = TheHeap.resolve(Str);
  if (!HO || HO->Shape != ObjShape::Str)
    return std::string();
  return utf16ToUtf8(HO->Chars);
}

//===----------------------------------------------------------------------===
// Exceptions
//===----------------------------------------------------------------------===

ObjectId Vm::makeThrowable(JThread &Thread, const char *ClassName,
                           std::string Message, ObjectId Cause) {
  Klass *Kl = findClass(ClassName);
  if (!Kl || !Kl->isSubclassOf(ThrowableKlass)) {
    Diags.report(IncidentKind::FatalError, "jvm",
                 formatString("%s is not a throwable class", ClassName));
    Kl = ThrowableKlass;
  }
  // Allocate the payload strings before resolving the throwable: any
  // allocation may grow the heap's slot table and invalidate HeapObject
  // pointers. Temp-root them so an automatic GC cannot reclaim them.
  TempRoots Scope(Thread);
  ObjectId MsgStr = newString(Message);
  Scope.add(MsgStr);
  ObjectId StackStr = newString(Thread.renderStack());
  Scope.add(StackStr);
  ObjectId Ex = newObject(Kl);
  FieldInfo *MsgField = Kl->findField("message", "Ljava/lang/String;", false);
  FieldInfo *CauseField = Kl->findField("cause", "Ljava/lang/Throwable;",
                                        false);
  FieldInfo *StackField = Kl->findField("stack", "Ljava/lang/String;", false);
  HeapObject *HO = TheHeap.resolve(Ex);
  if (MsgField)
    HO->Fields[MsgField->Slot] = Value::makeRef(MsgStr);
  if (CauseField)
    HO->Fields[CauseField->Slot] = Value::makeRef(Cause);
  if (StackField)
    HO->Fields[StackField->Slot] = Value::makeRef(StackStr);
  // Incremental-mark write barrier: once the temp roots above go out of
  // scope, these strings are reachable only through Ex; if a mark is in
  // progress and Ex is already black, the remark must re-scan it.
  TheHeap.recordRefStore(Ex);
  return Ex;
}

void Vm::throwNew(JThread &Thread, const char *ClassName,
                  std::string Message) {
  Thread.Pending = makeThrowable(Thread, ClassName, std::move(Message));
}

std::string Vm::throwableMessage(ObjectId Throwable) {
  Klass *Kl = klassOf(Throwable);
  if (!Kl)
    return std::string();
  FieldInfo *MsgField = Kl->findField("message", "Ljava/lang/String;", false);
  if (!MsgField)
    return std::string();
  HeapObject *HO = TheHeap.resolve(Throwable);
  return utf8Of(HO->Fields[MsgField->Slot].Obj);
}

ObjectId Vm::throwableCause(ObjectId Throwable) {
  Klass *Kl = klassOf(Throwable);
  if (!Kl)
    return ObjectId();
  FieldInfo *CauseField = Kl->findField("cause", "Ljava/lang/Throwable;",
                                        false);
  if (!CauseField)
    return ObjectId();
  HeapObject *HO = TheHeap.resolve(Throwable);
  return HO->Fields[CauseField->Slot].Obj;
}

static std::string dottedName(const std::string &Internal) {
  std::string Out = Internal;
  std::replace(Out.begin(), Out.end(), '/', '.');
  return Out;
}

std::string Vm::describeThrowable(ObjectId Throwable) {
  std::string Out;
  bool First = true;
  size_t PreviousFrames = 0;
  for (ObjectId Ex = Throwable; !Ex.isNull(); Ex = throwableCause(Ex)) {
    Klass *Kl = klassOf(Ex);
    if (!Kl)
      break;
    std::string Header = dottedName(Kl->name());
    std::string Msg = throwableMessage(Ex);
    if (!Msg.empty())
      Header += ": " + Msg;

    FieldInfo *StackField = Kl->findField("stack", "Ljava/lang/String;",
                                          false);
    std::string Stack;
    if (StackField) {
      HeapObject *HO = TheHeap.resolve(Ex);
      Stack = utf8Of(HO->Fields[StackField->Slot].Obj);
    }
    size_t FrameCount =
        static_cast<size_t>(std::count(Stack.begin(), Stack.end(), '\n'));

    if (First) {
      Out += Header + "\n" + Stack;
      First = false;
    } else {
      Out += "Caused by: " + Header + "\n";
      // Figure 9(c) style: show the distinctive top frames, elide the rest.
      size_t Shown = 0;
      size_t Pos = 0;
      while (Shown < 2 && Pos < Stack.size()) {
        size_t End = Stack.find('\n', Pos);
        if (End == std::string::npos)
          break;
        Out += Stack.substr(Pos, End - Pos + 1);
        Pos = End + 1;
        ++Shown;
      }
      if (FrameCount > Shown)
        Out += formatString("\t... %zu more\n", FrameCount - Shown);
    }
    PreviousFrames = FrameCount;
  }
  (void)PreviousFrames;
  return Out;
}

//===----------------------------------------------------------------------===
// Invocation
//===----------------------------------------------------------------------===

Value Vm::invoke(JThread &Thread, MethodInfo *Method, const Value &Self,
                 const std::vector<Value> &Args, bool VirtualDispatch) {
  assert(Method && "invoke needs a method");
  if (Thread.Poisoned || Shutdown)
    return defaultValueFor(Method->Sig.Ret.Kind);

  // Every invocation makes the calling OS thread a mutator: host driver
  // threads entering Java this way park at this boundary during GC.
  MutatorScope Scope(*this);

  MethodInfo *Target = Method;
  if (VirtualDispatch && !Method->IsStatic && Self.isRef() &&
      !Self.Obj.isNull()) {
    if (Klass *Dynamic = klassOf(Self.Obj))
      if (MethodInfo *Found =
              Dynamic->findMethod(Method->Name, Method->Desc, false))
        Target = Found;
  }

  StackEntry Entry;
  Entry.IsNative = Target->IsNative;
  if (Target->Display.empty()) {
    // Methods minted outside defineClass (tests constructing MethodInfo by
    // hand) fall back to building the line here.
    std::string Site = Target->IsNative
                           ? std::string("Native Method")
                           : (Target->DeclSite.empty() ? "Unknown Source"
                                                       : Target->DeclSite);
    Entry.Display = dottedName(Target->Owner->name()) + "." + Target->Name +
                    "(" + Site + ")";
  } else {
    Entry.Display = Target->Display;
  }
  Thread.Stack.push_back(std::move(Entry));

  Value Result = defaultValueFor(Target->Sig.Ret.Kind);
  if (Target->IsNative) {
    if (Target->NativeBound)
      Result = Target->NativeBound(Thread, Self, Args);
    else
      throwNew(Thread, "java/lang/UnsatisfiedLinkError",
               Target->qualifiedName());
  } else if (Target->Body) {
    Result = Target->Body(*this, Thread, Self, Args);
  } else {
    throwNew(Thread, "java/lang/InstantiationError",
             "method has no body: " + Target->qualifiedName());
  }

  if (!Thread.Stack.empty())
    Thread.Stack.pop_back();
  if (!Thread.Pending.isNull())
    return defaultValueFor(Target->Sig.Ret.Kind);
  return Result;
}

Value Vm::invokeByName(JThread &Thread, const char *ClassName,
                       const char *MethodName, const char *Desc,
                       const Value &Self, const std::vector<Value> &Args) {
  if (Thread.Poisoned || Shutdown)
    return Value::makeVoid();
  Klass *Kl = findClass(ClassName);
  if (!Kl) {
    throwNew(Thread, "java/lang/NoClassDefFoundError", ClassName);
    return Value::makeVoid();
  }
  MethodInfo *Method = Kl->findMethodAnyStatic(MethodName, Desc);
  if (!Method) {
    throwNew(Thread, "java/lang/NoSuchMethodError",
             std::string(ClassName) + "." + MethodName);
    return Value::makeVoid();
  }
  return invoke(Thread, Method, Self, Args, /*VirtualDispatch=*/true);
}

//===----------------------------------------------------------------------===
// Global references
//===----------------------------------------------------------------------===

uint64_t Vm::newGlobalRef(ObjectId Target, bool Weak) {
  if (Target.isNull())
    return 0;
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  uint32_t Index;
  if (!FreeGlobalSlots.empty()) {
    Index = FreeGlobalSlots.back();
    FreeGlobalSlots.pop_back();
  } else {
    Index = static_cast<uint32_t>(Globals.size());
    Globals.emplace_back();
  }
  GlobalSlot &Slot = Globals[Index];
  Slot.Gen += 1;
  Slot.Live = true;
  Slot.Weak = Weak;
  Slot.Cleared = false;
  Slot.Target = Target;

  HandleBits Bits;
  Bits.Kind = Weak ? RefKind::WeakGlobal : RefKind::Global;
  Bits.Thread = 0;
  Bits.Slot = Index;
  Bits.Gen = Slot.Gen;
  return encodeHandle(Bits);
}

LocalRefState Vm::globalRefStateLocked(const HandleBits &Bits) const {
  if (Bits.Slot >= Globals.size())
    return LocalRefState::NeverIssued;
  const GlobalSlot &Slot = Globals[Bits.Slot];
  if (Bits.Gen > Slot.Gen)
    return LocalRefState::NeverIssued;
  if (!Slot.Live || Slot.Gen != Bits.Gen)
    return LocalRefState::Stale;
  return LocalRefState::Live;
}

LocalRefState Vm::globalRefState(const HandleBits &Bits) const {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  return globalRefStateLocked(Bits);
}

ObjectId Vm::resolveGlobal(const HandleBits &Bits) const {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  if (globalRefStateLocked(Bits) != LocalRefState::Live)
    return ObjectId();
  const GlobalSlot &Slot = Globals[Bits.Slot];
  return Slot.Cleared ? ObjectId() : Slot.Target;
}

bool Vm::deleteGlobalRef(const HandleBits &Bits) {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  if (globalRefStateLocked(Bits) != LocalRefState::Live)
    return false;
  GlobalSlot &Slot = Globals[Bits.Slot];
  Slot.Live = false;
  Slot.Target = ObjectId();
  Slot.Gen += 1;
  FreeGlobalSlots.push_back(Bits.Slot);
  return true;
}

size_t Vm::liveGlobalCount(bool Weak) const {
  std::lock_guard<std::mutex> Lock(GlobalsMutex);
  size_t N = 0;
  for (const GlobalSlot &Slot : Globals)
    if (Slot.Live && Slot.Weak == Weak)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===
// Central handle resolution
//===----------------------------------------------------------------------===

ObjectId Vm::resolveHandle(JThread &Current, uint64_t Word,
                           bool *WasUndefined) {
  if (WasUndefined)
    *WasUndefined = false;
  if (Word == 0)
    return ObjectId();
  if (Current.Poisoned)
    return ObjectId();

  std::optional<HandleBits> Bits = decodeHandle(Word);
  if (!Bits) {
    if (WasUndefined)
      *WasUndefined = true;
    undefined(Current, UndefinedOp::IdReferenceConfusion,
              formatString("value %#llx is not a JNI reference",
                           static_cast<unsigned long long>(Word)));
    return ObjectId();
  }
  if (Bits->Kind == RefKind::Null)
    return ObjectId();

  if (Bits->Kind == RefKind::Local) {
    JThread *Owner = threadById(Bits->Thread);
    if (!Owner) {
      if (WasUndefined)
        *WasUndefined = true;
      undefined(Current, UndefinedOp::DanglingLocalRef,
                "local reference from a dead thread");
      return ObjectId();
    }
    LocalRefState State = Owner->localRefState(*Bits);
    if (State != LocalRefState::Live) {
      if (WasUndefined)
        *WasUndefined = true;
      undefined(Current, UndefinedOp::DanglingLocalRef,
                formatString("local reference slot %u of thread %u is %s",
                             Bits->Slot, Bits->Thread,
                             State == LocalRefState::Stale ? "stale"
                                                           : "unknown"));
      return ObjectId();
    }
    if (Owner != &Current) {
      if (WasUndefined)
        *WasUndefined = true;
      ProductionOutcome Out =
          undefined(Current, UndefinedOp::InvalidArgument,
                    formatString("local reference of thread %u used on "
                                 "thread %u",
                                 Bits->Thread, Current.id()));
      // An "Ignore" VM keeps running with the (accidentally valid) target.
      if (Out == ProductionOutcome::Ignore)
        return Owner->resolveLocal(*Bits);
      return ObjectId();
    }
    ObjectId Target = Owner->resolveLocal(*Bits);
    if (TheHeap.isStale(Target)) {
      // The referenced object no longer exists (should not happen while the
      // slot is live and GC roots include locals, but guard anyway).
      return ObjectId();
    }
    return Target;
  }

  // Global / weak global.
  LocalRefState State = globalRefState(*Bits);
  if (State != LocalRefState::Live) {
    if (WasUndefined)
      *WasUndefined = true;
    undefined(Current, UndefinedOp::DanglingGlobalRef,
              formatString("%s reference slot %u is %s",
                           Bits->Kind == RefKind::WeakGlobal ? "weak global"
                                                             : "global",
                           Bits->Slot,
                           State == LocalRefState::Stale ? "stale"
                                                         : "unknown"));
    return ObjectId();
  }
  return resolveGlobal(*Bits);
}

Vm::PeekResult Vm::peekHandle(uint64_t Word, const JThread *Perspective) {
  PeekResult Out;
  if (Word == 0)
    return Out;
  std::optional<HandleBits> Bits = decodeHandle(Word);
  if (!Bits || Bits->Kind == RefKind::Null) {
    Out.S = PeekResult::Status::NotARef;
    return Out;
  }
  Out.Kind = Bits->Kind;
  if (Bits->Kind == RefKind::Local) {
    Out.OwnerThread = Bits->Thread;
    JThread *Owner = threadById(Bits->Thread);
    if (!Owner) {
      Out.S = PeekResult::Status::Stale;
      return Out;
    }
    LocalRefState State = Owner->localRefState(*Bits);
    if (State != LocalRefState::Live) {
      Out.S = PeekResult::Status::Stale;
      return Out;
    }
    Out.Target = Owner->resolveLocal(*Bits);
    Out.S = (Perspective && Owner->id() != Perspective->id())
                ? PeekResult::Status::WrongThreadLive
                : PeekResult::Status::Live;
    return Out;
  }
  LocalRefState State = globalRefState(*Bits);
  if (State != LocalRefState::Live) {
    Out.S = PeekResult::Status::Stale;
    return Out;
  }
  Out.Target = resolveGlobal(*Bits);
  Out.S = (Bits->Kind == RefKind::WeakGlobal && Out.Target.isNull())
              ? PeekResult::Status::ClearedWeak
              : PeekResult::Status::Live;
  return Out;
}

//===----------------------------------------------------------------------===
// Monitors
//===----------------------------------------------------------------------===

MonitorResult Vm::monitorEnter(JThread &Thread, ObjectId Obj) {
  std::lock_guard<std::mutex> Lock(MonitorsMutex);
  auto It = Monitors.find(Obj.raw());
  if (It == Monitors.end()) {
    Monitors[Obj.raw()] = {Thread.id(), 1};
    return MonitorResult::Ok;
  }
  if (It->second.OwnerThread == Thread.id()) {
    It->second.Count += 1;
    return MonitorResult::Ok;
  }
  Diags.report(IncidentKind::Note, "jvm",
               formatString("monitor contention: thread %u blocked on a "
                            "monitor owned by thread %u",
                            Thread.id(), It->second.OwnerThread));
  return MonitorResult::WouldBlock;
}

MonitorResult Vm::monitorExit(JThread &Thread, ObjectId Obj) {
  std::lock_guard<std::mutex> Lock(MonitorsMutex);
  auto It = Monitors.find(Obj.raw());
  if (It == Monitors.end() || It->second.OwnerThread != Thread.id())
    return MonitorResult::IllegalState;
  if (--It->second.Count == 0)
    Monitors.erase(It);
  return MonitorResult::Ok;
}

//===----------------------------------------------------------------------===
// Pinned resources
//===----------------------------------------------------------------------===

uint64_t Vm::pinObject(JThread &Thread, ObjectId Target, PinKind Kind) {
  std::lock_guard<std::mutex> Lock(PinsMutex);
  if (HeapObject *HO = TheHeap.resolve(Target))
    HO->PinCount += 1;
  uint64_t Cookie = NextPinCookie++;
  Pins.push_back({Target, Kind, Thread.id(), Cookie});
  return Cookie;
}

bool Vm::unpinObject(JThread &Thread, ObjectId Target, PinKind Kind) {
  (void)Thread;
  std::lock_guard<std::mutex> Lock(PinsMutex);
  for (auto It = Pins.rbegin(); It != Pins.rend(); ++It) {
    if (It->Target == Target && It->Kind == Kind) {
      if (HeapObject *HO = TheHeap.resolve(Target))
        if (HO->PinCount > 0)
          HO->PinCount -= 1;
      Pins.erase(std::next(It).base());
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===
// Undefined behavior, GC, lifecycle
//===----------------------------------------------------------------------===

ProductionOutcome Vm::undefined(JThread &Thread, UndefinedOp Op,
                                std::string Detail) {
  ProductionOutcome Out = productionBehavior(Options.Flavor, Op);
  std::string Msg =
      formatString("%s (%s)", undefinedOpName(Op), Detail.c_str());
  switch (Out) {
  case ProductionOutcome::Ignore:
    Diags.report(IncidentKind::UndefinedState, "jvm", std::move(Msg));
    break;
  case ProductionOutcome::Crash:
    Diags.report(IncidentKind::SimulatedCrash, "jvm", std::move(Msg));
    Thread.Poisoned = true;
    break;
  case ProductionOutcome::ThrowNpe:
    throwNew(Thread, "java/lang/NullPointerException", std::move(Msg));
    break;
  case ProductionOutcome::Deadlock:
    Diags.report(IncidentKind::PotentialDeadlock, "jvm", std::move(Msg));
    Thread.Poisoned = true;
    break;
  }
  return Out;
}

bool Vm::anyThreadInCritical() const {
  uint32_t Max = NextThreadId.load(std::memory_order_acquire);
  for (uint32_t Id = 1; Id < Max && Id < ThreadTable.size(); ++Id) {
    JThread *Thread = ThreadTable[Id].load(std::memory_order_acquire);
    if (Thread && Thread->CriticalDepth.load(std::memory_order_acquire) > 0)
      return true;
  }
  return false;
}

void Vm::collectRoots(std::vector<ObjectId> &Roots) {
  // Runs inside a stop-the-world pause: every mutator (class definers,
  // attachers, ref writers included) is parked, so the plain structures are
  // quiescent. The remaining locks are uncontended and guard against
  // non-mutator callers in single-threaded tests.
  {
    std::lock_guard<std::mutex> Lock(ClassesMu);
    for (Klass *Kl : ClassOrder) {
      Roots.push_back(Kl->Mirror);
      for (const auto &Field : Kl->Fields)
        if (Field->IsStatic && Field->StaticValue.isRef())
          Roots.push_back(Field->StaticValue.Obj);
    }
  }
  uint32_t Max = NextThreadId.load(std::memory_order_acquire);
  for (uint32_t Id = 1; Id < Max && Id < ThreadTable.size(); ++Id)
    if (JThread *Thread = ThreadTable[Id].load(std::memory_order_acquire))
      Thread->collectRoots(Roots);
  {
    std::lock_guard<std::mutex> Lock(GlobalsMutex);
    for (const GlobalSlot &Slot : Globals)
      if (Slot.Live && !Slot.Weak && !Slot.Cleared)
        Roots.push_back(Slot.Target);
  }
  {
    std::lock_guard<std::mutex> Lock(PinsMutex);
    for (const PinRecord &Pin : Pins)
      Roots.push_back(Pin.Target);
  }
  // Newborns: objects allocated but not yet reachable, published on the
  // allocating thread's mutator slot before it entered (or parked behind)
  // this collection.
  size_t Slots = MutatorSlots.size();
  for (size_t I = 0; I < Slots; ++I) {
    uint64_t Raw = MutatorSlots[I].Newborn.load(std::memory_order_acquire);
    if (Raw)
      Roots.push_back(ObjectId::fromRaw(Raw));
  }
}

void Vm::gc() {
  if (anyThreadInCritical()) {
    Diags.report(IncidentKind::Note, "jvm",
                 "GC request ignored: a thread holds a critical section");
    return;
  }

  // Take the collector role. A caller inside a MutatorScope (auto-GC from
  // an allocation in a native call) exempts its own slot while it collects;
  // if another thread's collection is already running, it parks like any
  // mutator until that finishes, then runs its own (the request was
  // explicit).
  beginCollector();

  auto ClearDeadWeakGlobals = [this] {
    std::lock_guard<std::mutex> GLock(GlobalsMutex);
    for (GlobalSlot &Slot : Globals) {
      if (Slot.Live && Slot.Weak && !Slot.Cleared &&
          !TheHeap.isMarked(Slot.Target)) {
        Slot.Cleared = true;
        Slot.Target = ObjectId();
      }
    }
  };

  std::vector<ObjectId> Roots;
  if (!Options.IncrementalMark) {
    // Classic single-pause collection.
    stopWorld();
    collectRoots(Roots);
    TheHeap.collect(Roots, Options.MoveOnGc, ClearDeadWeakGlobals);
    AllocsSinceGc.store(0, std::memory_order_relaxed);
    resumeWorld();
  } else {
    // Pause 1: snapshot roots, activate the write barrier, start tracing.
    stopWorld();
    collectRoots(Roots);
    TheHeap.beginIncrementalMark(Roots);
    bool Done = TheHeap.incrementalMarkStep(Options.GcMarkStepBudget);
    resumeWorld();
    // Mark increments, with mutator windows between the pauses.
    while (!Done) {
      stopWorld();
      Done = TheHeap.incrementalMarkStep(Options.GcMarkStepBudget);
      resumeWorld();
    }
    // Final pause: remark from fresh roots + dirty containers, then
    // sweep/move.
    stopWorld();
    Roots.clear();
    collectRoots(Roots);
    TheHeap.finishCollect(Roots, Options.MoveOnGc, ClearDeadWeakGlobals);
    AllocsSinceGc.store(0, std::memory_order_relaxed);
    resumeWorld();
  }

  endCollector();
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onGcFinish();
}

void Vm::maybeAutoGc(ObjectId Newborn) {
  if (Options.AutoGcPeriod == 0)
    return;
  if (AllocsSinceGc.fetch_add(1, std::memory_order_relaxed) + 1 <
      Options.AutoGcPeriod)
    return;
  // The caller has not yet stored Newborn anywhere a root scan can see.
  // Publish it on our mutator slot before any collection can start: gc()
  // may park this thread (self-mutator exemption) while another thread's
  // collection runs, and that collection must not sweep the newborn either.
  // The caller (Vm::new*) holds a MutatorScope across allocation and this
  // publication, so no pause can observe the slot between the two.
  MutatorTls &T = mutatorTlsForCurrentThread();
  assert(T.Depth > 0 && "maybeAutoGc outside a MutatorScope");
  if (!Newborn.isNull())
    T.Slot->Newborn.store(Newborn.raw(), std::memory_order_release);
  gc();
  if (!Newborn.isNull())
    T.Slot->Newborn.store(0, std::memory_order_release);
}

void Vm::shutdown() {
  if (Shutdown.exchange(true, std::memory_order_acq_rel))
    return;
  for (VmEventObserver *Observer : observersSnapshot())
    Observer->onVmDeath();
}

std::vector<VmEventObserver *> Vm::observersSnapshot() const {
  std::lock_guard<std::mutex> Lock(ObserversMutex);
  return Observers;
}

void Vm::addObserver(VmEventObserver *Observer) {
  std::lock_guard<std::mutex> Lock(ObserversMutex);
  Observers.push_back(Observer);
}

void Vm::removeObserver(VmEventObserver *Observer) {
  std::lock_guard<std::mutex> Lock(ObserversMutex);
  Observers.erase(std::remove(Observers.begin(), Observers.end(), Observer),
                  Observers.end());
}
