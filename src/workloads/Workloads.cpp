//===- workloads/Workloads.cpp - Table 3 workloads ------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/Format.h"
#include "support/Rng.h"

#include <thread>

using namespace jinn;
using namespace jinn::workloads;

const std::vector<WorkloadInfo> &jinn::workloads::allWorkloads() {
  // Transition counts and normalized times from the paper's Table 3.
  static const std::vector<WorkloadInfo> Workloads = {
      {"antlr", "DaCapo", 441789, 1.04, 0.98, 1.05},
      {"bloat", "DaCapo", 839930, 1.02, 1.19, 1.20},
      {"chart", "DaCapo", 1006933, 1.02, 1.08, 1.12},
      {"eclipse", "DaCapo", 8456840, 1.01, 1.17, 1.20},
      {"fop", "DaCapo", 1976384, 1.07, 1.14, 1.37},
      {"hsqldb", "DaCapo", 206829, 0.88, 1.04, 1.05},
      {"jython", "DaCapo", 56318101, 1.03, 1.10, 1.16},
      {"luindex", "DaCapo", 1339059, 1.03, 1.08, 1.13},
      {"lusearch", "DaCapo", 4080540, 1.04, 1.09, 1.21},
      {"pmd", "DaCapo", 967430, 1.04, 1.10, 1.13},
      {"xalan", "DaCapo", 1114000, 1.01, 1.17, 1.19},
      {"compress", "SPECjvm98", 14878, 0.98, 1.09, 1.08},
      {"jess", "SPECjvm98", 153118, 0.99, 1.22, 1.17},
      {"raytrace", "SPECjvm98", 29977, 1.04, 1.16, 1.14},
      {"db", "SPECjvm98", 133112, 0.99, 1.01, 1.02},
      {"javac", "SPECjvm98", 258553, 1.06, 1.16, 1.14},
      {"mpegaudio", "SPECjvm98", 46208, 1.00, 1.01, 1.04},
      {"mtrt", "SPECjvm98", 32231, 1.01, 1.11, 1.14},
      {"jack", "SPECjvm98", 1332678, 1.04, 1.10, 1.21},
  };
  return Workloads;
}

const WorkloadInfo *jinn::workloads::workloadByName(const std::string &Name) {
  for (const WorkloadInfo &Info : allWorkloads())
    if (Name == Info.Name)
      return &Info;
  return nullptr;
}

namespace {

/// Shared mutable state of one workload execution, reachable from the
/// native method bodies (the "C side" of the benchmark).
struct WorkloadState {
  uint64_t Checksum = 0;
  uint64_t JniCalls = 0;
  jfieldID CounterField = nullptr; ///< cached, as real JNI code does
  jmethodID AccumMethod = nullptr;
};

/// Thread-local so concurrent workers each accumulate into their own state
/// without synchronizing on every native transition.
WorkloadState *&currentState() {
  thread_local WorkloadState *State = nullptr;
  return State;
}

/// Table 3 transition budget after scaling, floored for measurability.
uint64_t scaledTransitions(const WorkloadInfo &Info, uint64_t ScaleDivisor) {
  uint64_t Transitions =
      Info.PaperTransitions / (ScaleDivisor ? ScaleDivisor : 1);
  return Transitions < 64 ? 64 : Transitions;
}

/// Invokes the native `unit` method \p Transitions times on \p Thread.
void driveTransitions(scenarios::ScenarioWorld &World, jvm::JThread &Thread,
                      uint64_t Transitions, uint64_t Seed) {
  jvm::Klass *Kl = World.Vm.findClass("bench/WorkUnit");
  jvm::MethodInfo *Unit = Kl->findMethod("unit", "(I)I", /*WantStatic=*/true);
  SplitMix64 Rng(Seed);
  for (uint64_t I = 0; I < Transitions; ++I) {
    std::vector<jvm::Value> Args = {
        jvm::Value::makeInt(static_cast<int32_t>(Rng.next() & 0x7fffffff))};
    World.Vm.invoke(Thread, Unit, jvm::Value::makeNull(), Args,
                    /*VirtualDispatch=*/false);
  }
}

} // namespace

void jinn::workloads::prepareWorkloadWorld(scenarios::ScenarioWorld &World) {
  if (World.Vm.findClass("bench/WorkUnit"))
    return;
  jvm::ClassDef Def;
  Def.Name = "bench/WorkUnit";
  Def.field("counter", "I", /*IsStatic=*/true);
  Def.method(
      "accum", "(I)I",
      [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
         const std::vector<jvm::Value> &Args) {
        return jvm::Value::makeInt(static_cast<int32_t>(Args[0].I * 31 + 7));
      },
      /*IsStatic=*/true, "WorkUnit.java:12");
  Def.nativeMethod("unit", "(I)I", /*IsStatic=*/true, "WorkUnit.java:20");
  World.Vm.defineClass(Def);

  World.Rt.registerNative(
      World.Vm.findClass("bench/WorkUnit"), "unit", "(I)I",
      [](JNIEnv *Env, jobject SelfClass, const jvalue *Args) -> jvalue {
        WorkloadState *State = currentState();
        jclass Cls = static_cast<jclass>(SelfClass);
        jint Seed = Args[0].i;
        const JNINativeInterface_ *Fns = Env->functions;

        // Application work between transitions: the real SPECjvm98/DaCapo
        // benchmarks compute (parse, raytrace, compress) and only
        // periodically cross the language boundary. Without this, the
        // normalized overheads measure pure boundary-crossing cost and are
        // far larger than the paper's.
        uint64_t Mix = static_cast<uint64_t>(Seed) | 1;
        for (int K = 0; K < 1800; ++K) {
          Mix ^= Mix << 13;
          Mix ^= Mix >> 7;
          Mix ^= Mix << 17;
        }
        State->Checksum += Mix & 0xff;

        // Representative operation mix, one flavor per call.
        switch (Seed & 3) {
        case 0: { // string marshalling (parsers, loggers)
          jstring Str = Fns->NewStringUTF(Env, "org/dacapo/TokenStream");
          State->Checksum += Fns->GetStringUTFLength(Env, Str);
          Fns->DeleteLocalRef(Env, Str);
          State->JniCalls += 3;
          break;
        }
        case 1: { // cached-ID field access (counters, flags)
          if (!State->CounterField)
            State->CounterField =
                Fns->GetStaticFieldID(Env, Cls, "counter", "I");
          jint V = Fns->GetStaticIntField(Env, Cls, State->CounterField);
          Fns->SetStaticIntField(Env, Cls, State->CounterField, V + 1);
          State->Checksum += static_cast<uint64_t>(V);
          State->JniCalls += 2;
          break;
        }
        case 2: { // array region traffic (codecs, I/O buffers)
          jintArray Arr = Fns->NewIntArray(Env, 16);
          jint Buf[16] = {Seed, Seed + 1, Seed + 2};
          Fns->SetIntArrayRegion(Env, Arr, 0, 16, Buf);
          Fns->GetIntArrayRegion(Env, Arr, 0, 16, Buf);
          State->Checksum += static_cast<uint64_t>(Buf[2]);
          Fns->DeleteLocalRef(Env, Arr);
          State->JniCalls += 4;
          break;
        }
        default: { // call-back into Java (event dispatch)
          if (!State->AccumMethod)
            State->AccumMethod =
                Fns->GetStaticMethodID(Env, Cls, "accum", "(I)I");
          jvalue CallArgs[1];
          CallArgs[0].i = Seed;
          State->Checksum += static_cast<uint64_t>(
              Fns->CallStaticIntMethodA(Env, Cls, State->AccumMethod,
                                        CallArgs));
          State->JniCalls += 1;
          break;
        }
        }
        jvalue R;
        R.i = static_cast<jint>(State->Checksum);
        return R;
      });
}

WorkloadRun jinn::workloads::runWorkload(const WorkloadInfo &Info,
                                         scenarios::ScenarioWorld &World,
                                         uint64_t ScaleDivisor) {
  prepareWorkloadWorld(World);

  WorkloadState State;
  currentState() = &State;

  uint64_t Transitions = scaledTransitions(Info, ScaleDivisor);
  driveTransitions(World, World.Vm.mainThread(), Transitions,
                   0x6a696e6eULL ^ Info.PaperTransitions);

  currentState() = nullptr;
  WorkloadRun Run;
  Run.NativeTransitions = Transitions;
  Run.JniCalls = State.JniCalls;
  Run.Checksum = State.Checksum;
  return Run;
}

WorkloadRun jinn::workloads::runWorkloadConcurrent(
    const WorkloadInfo &Info, scenarios::ScenarioWorld &World,
    uint64_t ScaleDivisor, unsigned NumThreads) {
  prepareWorkloadWorld(World);
  if (NumThreads == 0)
    NumThreads = 1;

  uint64_t Total = scaledTransitions(Info, ScaleDivisor);
  uint64_t PerThread = (Total + NumThreads - 1) / NumThreads;

  std::vector<WorkloadRun> Results(NumThreads);
  std::vector<std::thread> Workers;
  Workers.reserve(NumThreads);
  JavaVM *Jvm = World.Rt.javaVm();
  for (unsigned T = 0; T < NumThreads; ++T) {
    Workers.emplace_back([&, T] {
      std::string Name = formatString("workload-%u", T);
      JNIEnv *Env = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &Env, Name.data()) !=
          JNI_OK)
        return;
      WorkloadState State;
      currentState() = &State;
      driveTransitions(World, *Env->thread, PerThread,
                       0x6a696e6eULL ^ Info.PaperTransitions ^
                           (uint64_t(T + 1) * 0x9e3779b97f4a7c15ULL));
      currentState() = nullptr;
      Results[T] = {PerThread, State.JniCalls, State.Checksum};
      Jvm->functions->DetachCurrentThread(Jvm);
    });
  }
  for (std::thread &Worker : Workers)
    Worker.join();

  WorkloadRun Run;
  for (const WorkloadRun &Result : Results) {
    Run.NativeTransitions += Result.NativeTransitions;
    Run.JniCalls += Result.JniCalls;
    Run.Checksum += Result.Checksum;
  }
  return Run;
}
