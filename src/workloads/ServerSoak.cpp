//===- workloads/ServerSoak.cpp - Multi-tenant server soak harness -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/ServerSoak.h"

#include "support/Format.h"
#include "support/Resource.h"
#include "support/Rng.h"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>

using namespace jinn;
using namespace jinn::workloads;

namespace {

/// Shared "application" state of one soak world, reachable from the
/// registered native bodies. One slot per tenant.
struct TenantSlot {
  jobject Array = nullptr; ///< global ref: shared jintArray + lock object
};

struct SoakShared {
  std::vector<TenantSlot> Tenants;
  jclass ServerClass = nullptr;  ///< global ref
  jfieldID CounterField = nullptr;
  std::atomic<uint64_t> JniCalls{0};
  std::atomic<uint64_t> SeededBugs{0};
};

/// The native bodies capture a shared_ptr into this registry, keyed by VM
/// address. Worlds are stack-allocated and addresses recycle, but a fresh
/// world re-runs prepareSoakWorld (its class is undefined), which replaces
/// the entry — so a recycled address never sees stale state.
std::mutex RegistryMu;
std::map<jvm::Vm *, std::shared_ptr<SoakShared>> &registry() {
  static std::map<jvm::Vm *, std::shared_ptr<SoakShared>> Map;
  return Map;
}

std::shared_ptr<SoakShared> freshShared(jvm::Vm &Vm) {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  auto Shared = std::make_shared<SoakShared>();
  registry()[&Vm] = Shared;
  return Shared;
}

std::shared_ptr<SoakShared> sharedFor(jvm::Vm &Vm) {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  return registry()[&Vm];
}

/// One request body: OpsPerRequest iterations of the tenant operation mix,
/// optionally prefixed by the seeded pending-exception bug.
jvalue handleRequest(SoakShared &Shared, JNIEnv *Env, jclass Cls,
                     const jvalue *Args) {
  const JNINativeInterface_ *Fns = Env->functions;
  const uint32_t Tenant =
      static_cast<uint32_t>(Args[0].i) %
      static_cast<uint32_t>(Shared.Tenants.empty() ? 1 : Shared.Tenants.size());
  const int32_t Ops = Args[1].i;
  const uint32_t Seed = static_cast<uint32_t>(Args[2].i);
  const bool Buggy = Args[3].i != 0;
  TenantSlot &Slot = Shared.Tenants[Tenant];
  SplitMix64 Rng(0x736f616bULL ^ Seed);
  uint64_t Calls = 0;
  jint Acc = 0;

  if (Buggy) {
    // Seeded Table 1 pitfall 1: raise an exception in Java, ignore it,
    // call an exception-sensitive JNI function, then clean up. Raw
    // execution is harmless (the string is created and leaked to the
    // frame); a sampled thread's ExceptionState machine reports the
    // NewStringUTF and suppresses it.
    jmethodID Fault = Fns->GetStaticMethodID(Env, Cls, "fault", "()V");
    Fns->CallStaticVoidMethodA(Env, Cls, Fault, nullptr);
    jstring Oops = Fns->NewStringUTF(Env, "soak/after-fault");
    if (Oops)
      Fns->DeleteLocalRef(Env, Oops);
    Fns->ExceptionClear(Env);
    Calls += 5;
    Shared.SeededBugs.fetch_add(1, std::memory_order_relaxed);
  }

  for (int32_t Op = 0; Op < Ops; ++Op) {
    switch (Rng.next() & 3) {
    case 0: { // global-ref churn against the shared tenant object
      jobject Ref = Fns->NewGlobalRef(Env, Slot.Array);
      Acc += Fns->GetArrayLength(Env, static_cast<jarray>(Ref));
      Fns->DeleteGlobalRef(Env, Ref);
      Calls += 3;
      break;
    }
    case 1: { // monitor-guarded counter on the shared class
      // The simulated VM cannot block a contended MonitorEnter; it returns
      // JNI_ERR instead, so the guarded section must be skipped (exiting an
      // unowned monitor would raise IllegalMonitorStateException).
      if (Fns->MonitorEnter(Env, Slot.Array) == JNI_OK) {
        jint V = Fns->GetStaticIntField(Env, Cls, Shared.CounterField);
        Fns->SetStaticIntField(Env, Cls, Shared.CounterField, V + 1);
        Fns->MonitorExit(Env, Slot.Array);
        Acc += V;
        Calls += 4;
      } else {
        Calls += 1;
      }
      break;
    }
    case 2: { // pin the shared tenant array (read-only)
      jboolean IsCopy = JNI_FALSE;
      jintArray Arr = static_cast<jintArray>(Slot.Array);
      jint *Buf = Fns->GetIntArrayElements(Env, Arr, &IsCopy);
      if (Buf) {
        Acc += Buf[0];
        Fns->ReleaseIntArrayElements(Env, Arr, Buf, JNI_ABORT);
      }
      Calls += 2;
      break;
    }
    default: { // string marshalling
      jstring Str = Fns->NewStringUTF(Env, "soak/request-payload");
      Acc += static_cast<jint>(Fns->GetStringUTFLength(Env, Str));
      Fns->DeleteLocalRef(Env, Str);
      Calls += 3;
      break;
    }
    }
  }

  Shared.JniCalls.fetch_add(Calls, std::memory_order_relaxed);
  jvalue R;
  R.i = Acc;
  return R;
}

void atomicMax(std::atomic<uint64_t> &Slot, uint64_t Value) {
  uint64_t Cur = Slot.load(std::memory_order_relaxed);
  while (Cur < Value &&
         !Slot.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
}

} // namespace

void jinn::workloads::prepareSoakWorld(scenarios::ScenarioWorld &World) {
  if (World.Vm.findClass("soak/Server"))
    return;
  auto Shared = freshShared(World.Vm);

  jvm::ClassDef Def;
  Def.Name = "soak/Server";
  Def.field("counter", "I", /*IsStatic=*/true);
  Def.method(
      "fault", "()V",
      [](jvm::Vm &V, jvm::JThread &T, const jvm::Value &,
         const std::vector<jvm::Value> &) {
        V.throwNew(T, "java/lang/RuntimeException", "tenant fault");
        return jvm::Value::makeVoid();
      },
      /*IsStatic=*/true, "Server.java:9");
  // handle(tenant, ops, seed, buggy) -> checksum
  Def.nativeMethod("handle", "(IIII)I", /*IsStatic=*/true, "Server.java:17");
  World.Vm.defineClass(Def);

  World.Rt.registerNative(
      World.Vm.findClass("soak/Server"), "handle", "(IIII)I",
      [Shared](JNIEnv *Env, jobject SelfClass, const jvalue *Args) -> jvalue {
        return handleRequest(*Shared, Env, static_cast<jclass>(SelfClass),
                             Args);
      });
}

SoakStats jinn::workloads::runServerSoak(scenarios::ScenarioWorld &World,
                                         const SoakOptions &Opts) {
  prepareSoakWorld(World);
  std::shared_ptr<SoakShared> Shared = sharedFor(World.Vm);

  const unsigned Workers = Opts.Workers ? Opts.Workers : 1;
  const unsigned Tenants = Opts.Tenants ? Opts.Tenants : 1;

  // Per-tenant shared state, created on the main thread: a pinned-capable
  // int array that doubles as the tenant's lock object.
  JNIEnv *Env = World.env();
  const JNINativeInterface_ *Fns = Env->functions;
  jclass Local = Fns->FindClass(Env, "soak/Server");
  Shared->ServerClass = static_cast<jclass>(Fns->NewGlobalRef(Env, Local));
  Shared->CounterField =
      Fns->GetStaticFieldID(Env, Local, "counter", "I");
  Fns->DeleteLocalRef(Env, Local);
  Shared->Tenants.assign(Tenants, TenantSlot{});
  for (unsigned T = 0; T < Tenants; ++T) {
    jintArray Arr = Fns->NewIntArray(Env, 64);
    jint Seeded[4] = {static_cast<jint>(T + 1), 2, 3, 4};
    Fns->SetIntArrayRegion(Env, Arr, 0, 4, Seeded);
    Shared->Tenants[T].Array = Fns->NewGlobalRef(Env, Arr);
    Fns->DeleteLocalRef(Env, Arr);
  }
  Shared->JniCalls.store(0, std::memory_order_relaxed);
  Shared->SeededBugs.store(0, std::memory_order_relaxed);

  const uint64_t ReportsBefore =
      World.Jinn ? World.Jinn->reporter().reportCount() : 0;
  jvm::Klass *Kl = World.Vm.findClass("soak/Server");
  jvm::MethodInfo *Handle = Kl->findMethod("handle", "(IIII)I",
                                           /*WantStatic=*/true);

  const uint64_t Budget =
      std::min<uint64_t>(Opts.DurationMs ? Opts.MaxRequests : Opts.Requests,
                         Opts.MaxRequests);
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(Opts.DurationMs ? Opts.DurationMs : 0);

  std::atomic<uint64_t> Issued{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> PeakRss{currentRssBytes()};
  JavaVM *Jvm = World.Rt.javaVm();

  const auto StartTime = std::chrono::steady_clock::now();
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W) {
    Pool.emplace_back([&, W] {
      uint64_t K = 0;
      while (true) {
        uint64_t I = Issued.fetch_add(1, std::memory_order_relaxed);
        if (I >= Budget)
          break;
        if (Opts.DurationMs &&
            std::chrono::steady_clock::now() >= Deadline)
          break;
        // Request identity is (worker, k): the thread name — which keys
        // the sampling stream — the op-mix seed, and the bug placement
        // all derive from it, so a 1-worker run is fully deterministic.
        std::string Name = formatString("req-%u-%llu", W,
                                        static_cast<unsigned long long>(K));
        JNIEnv *ReqEnv = nullptr;
        if (Jvm->functions->AttachCurrentThread(Jvm, &ReqEnv, Name.data()) !=
            JNI_OK)
          break;
        uint32_t Seed32 = static_cast<uint32_t>(
            SplitMix64(Opts.Seed ^ (uint64_t(W) << 32) ^ K).next());
        bool Buggy = Opts.BugEveryNRequests != 0 &&
                     (K % Opts.BugEveryNRequests) == 0;
        std::vector<jvm::Value> Args = {
            jvm::Value::makeInt(static_cast<int32_t>((W + K) % Tenants)),
            jvm::Value::makeInt(static_cast<int32_t>(Opts.OpsPerRequest)),
            jvm::Value::makeInt(static_cast<int32_t>(Seed32 & 0x7fffffff)),
            jvm::Value::makeInt(Buggy ? 1 : 0)};
        World.Vm.invoke(*ReqEnv->thread, Handle, jvm::Value::makeNull(),
                        Args, /*VirtualDispatch=*/false);
        Jvm->functions->DetachCurrentThread(Jvm);
        Completed.fetch_add(1, std::memory_order_relaxed);
        if ((K & 63) == 0)
          atomicMax(PeakRss, currentRssBytes());
        ++K;
      }
    });
  }
  for (std::thread &Worker : Pool)
    Worker.join();
  const auto EndTime = std::chrono::steady_clock::now();
  atomicMax(PeakRss, currentRssBytes());

  // Tear down the tenant state on the main thread so a clean soak retains
  // no global refs at shutdown (the leak checks stay quiet).
  for (TenantSlot &Slot : Shared->Tenants) {
    if (Slot.Array)
      Fns->DeleteGlobalRef(Env, Slot.Array);
    Slot.Array = nullptr;
  }
  if (Shared->ServerClass) {
    Fns->DeleteGlobalRef(Env, Shared->ServerClass);
    Shared->ServerClass = nullptr;
  }

  SoakStats Stats;
  Stats.Requests = Completed.load(std::memory_order_relaxed);
  Stats.JniCalls = Shared->JniCalls.load(std::memory_order_relaxed);
  Stats.SeededBugs = Shared->SeededBugs.load(std::memory_order_relaxed);
  Stats.PeakRssBytes = PeakRss.load(std::memory_order_relaxed);
  Stats.Seconds =
      std::chrono::duration<double>(EndTime - StartTime).count();
  if (World.Jinn)
    Stats.Reports = World.Jinn->reporter().reportCount() - ReportsBefore;
  return Stats;
}
