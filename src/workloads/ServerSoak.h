//===- workloads/ServerSoak.h - Multi-tenant server soak harness ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-monitoring soak workload: a simulated multi-tenant
/// server in which a fixed pool of workers churns through thousands of
/// short-lived *request threads*. Each request attaches to the VM under a
/// deterministic name ("req-<worker>-<k>"), runs a JNI operation mix
/// against shared per-tenant state — global-ref churn, monitor-guarded
/// counters, pinned arrays, string marshalling — and detaches. This is the
/// attach/detach shape that exercises recorder-buffer retirement, report
/// retirement, and deterministic per-thread sampling.
///
/// A seeded-bug option makes every Nth request of each worker execute the
/// Table 1 pitfall-1 idiom (call a throwing Java method, ignore the
/// pending exception, call an exception-sensitive JNI function, then
/// clear): harmless when executed raw on unsampled threads, reported by
/// the ExceptionState machine on sampled ones, and always reproducible
/// offline by replaying the retained trace.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_WORKLOADS_SERVERSOAK_H
#define JINN_WORKLOADS_SERVERSOAK_H

#include "scenarios/Scenarios.h"

#include <cstdint>

namespace jinn::workloads {

struct SoakOptions {
  /// Concurrent worker loops (each runs one request thread at a time).
  unsigned Workers = 4;
  /// Total requests across all workers (ignored when DurationMs is set).
  uint64_t Requests = 2000;
  /// When nonzero, run under sustained load until the deadline instead of
  /// a fixed request count (still bounded by MaxRequests).
  uint64_t DurationMs = 0;
  /// JNI operation-mix iterations per request.
  uint64_t OpsPerRequest = 24;
  /// Distinct tenants sharing global state (>= 1).
  unsigned Tenants = 4;
  /// Seeded-bug tenant: every Nth request of each worker runs the
  /// pending-exception idiom. 0 disables.
  uint64_t BugEveryNRequests = 0;
  /// Hard request cap: each request burns one VM thread id and ids are
  /// never reused, so this stays under the 32k id space with headroom.
  uint64_t MaxRequests = 24000;
  /// Root seed for per-request operation mixes.
  uint64_t Seed = 0x736f616bULL;
};

struct SoakStats {
  uint64_t Requests = 0;   ///< requests completed
  uint64_t JniCalls = 0;   ///< JNI calls issued by request bodies
  uint64_t SeededBugs = 0; ///< buggy requests executed
  uint64_t Reports = 0;    ///< reporter delta over the soak (Jinn runs)
  uint64_t PeakRssBytes = 0;
  double Seconds = 0;
};

/// Defines the soak server class and natives in \p World. Idempotent;
/// runServerSoak calls it.
void prepareSoakWorld(scenarios::ScenarioWorld &World);

/// Runs the soak to completion and returns aggregate stats. Per-tenant
/// global state is created before and deleted after the request storm, so
/// a clean run leaks nothing. Deterministic for fixed options when
/// Workers == 1 (request names, op mixes, and bug placement are all
/// derived from (worker, k)).
SoakStats runServerSoak(scenarios::ScenarioWorld &World,
                        const SoakOptions &Opts);

} // namespace jinn::workloads

#endif // JINN_WORKLOADS_SERVERSOAK_H
