//===- workloads/Workloads.h - Table 3 workloads --------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for SPECjvm98 and DaCapo (paper Table 3). The
/// controlling variable of that experiment is the number of Java<->C
/// language transitions each benchmark performs; the table's second column
/// reports the measured transition counts, which this module replays
/// (scaled) with a representative JNI operation mix per transition:
/// string marshalling, cached-ID field access, array regions, and
/// call-backs into Java. Wall-clock ratios — production vs. -Xcheck:jni
/// vs. Jinn-interposing vs. Jinn-checking — are then measured on the same
/// code the checkers interpose on, reproducing the experiment's *shape*.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_WORKLOADS_WORKLOADS_H
#define JINN_WORKLOADS_WORKLOADS_H

#include "scenarios/Scenarios.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jinn::workloads {

/// One benchmark of Table 3.
struct WorkloadInfo {
  const char *Name;
  const char *Suite;               ///< "DaCapo" or "SPECjvm98"
  uint64_t PaperTransitions;       ///< Table 3 column 2 (HotSpot count)
  double PaperRuntimeChecking;     ///< column 3 (normalized time)
  double PaperJinnInterposing;     ///< column 4
  double PaperJinnChecking;        ///< column 5
};

/// All 19 benchmarks, in Table 3 order.
const std::vector<WorkloadInfo> &allWorkloads();
const WorkloadInfo *workloadByName(const std::string &Name);

/// Result of one workload execution.
struct WorkloadRun {
  uint64_t NativeTransitions = 0; ///< native method invocations performed
  uint64_t JniCalls = 0;          ///< JNI function calls performed
  uint64_t Checksum = 0;          ///< defeats dead-code elimination
};

/// Prepares the workload classes in \p World (idempotent).
void prepareWorkloadWorld(scenarios::ScenarioWorld &World);

/// Runs \p Info scaled down by \p ScaleDivisor in \p World. The world must
/// have been prepared. Correct JNI usage only: checkers must stay silent.
WorkloadRun runWorkload(const WorkloadInfo &Info,
                        scenarios::ScenarioWorld &World,
                        uint64_t ScaleDivisor);

/// Runs \p Info's transition budget split across \p NumThreads OS threads,
/// each attached through the JavaVM invocation interface and driving the
/// same native `unit` method concurrently. Returns the aggregate over all
/// workers. Correct JNI usage only: checkers must stay silent.
WorkloadRun runWorkloadConcurrent(const WorkloadInfo &Info,
                                  scenarios::ScenarioWorld &World,
                                  uint64_t ScaleDivisor,
                                  unsigned NumThreads);

} // namespace jinn::workloads

#endif // JINN_WORKLOADS_WORKLOADS_H
