//===- analysis/SpecModel.cpp - Analyzable model of machine specs --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecModel.h"

#include "jni/JniFunctionId.h"
#include "pyjinn/PyChecker.h"

#include <cstring>

using namespace jinn;
using namespace jinn::analysis;
using jinn::pyjinn::PyFnSpec;
using jinn::pyjinn::RefReturn;
using jinn::spec::Direction;
using jinn::spec::FunctionSelector;

const FunctionUniverse &jinn::analysis::jniUniverse() {
  static const FunctionUniverse Universe = [] {
    FunctionUniverse U;
    U.Name = "JNI";
    for (size_t I = 0; I < jni::NumJniFunctions; ++I)
      U.Functions.push_back(jni::fnName(static_cast<jni::FnId>(I)));
    return U;
  }();
  return Universe;
}

const FunctionUniverse &jinn::analysis::pythonUniverse() {
  static const FunctionUniverse Universe = [] {
    FunctionUniverse U;
    U.Name = "Python/C";
    for (const PyFnSpec &Spec : pyjinn::pyFnSpecs())
      U.Functions.push_back(Spec.Name);
    return U;
  }();
  return Universe;
}

MachineModel jinn::analysis::buildModel(const spec::StateMachineSpec &Spec) {
  MachineModel Model;
  Model.Name = Spec.Name;
  Model.Universe = &jniUniverse();
  Model.States = Spec.States;
  if (!Spec.States.empty())
    Model.StartState = Spec.States.front();
  Model.Counter = Spec.Counter;

  for (size_t I = 0; I < Spec.Transitions.size(); ++I) {
    const spec::StateTransition &Transition = Spec.Transitions[I];
    TransitionModel T;
    T.From = Transition.From;
    T.To = Transition.To;
    T.Index = I;
    T.HasAction = static_cast<bool>(Transition.Action);
    T.Epsilon = Transition.At.empty() && !T.HasAction;
    T.Counter = Transition.Counter;
    T.Violation = Transition.Violation;
    for (const spec::LanguageTransition &Lang : Transition.At) {
      TriggerModel Trigger;
      Trigger.Dir = Lang.Dir;
      Trigger.SelectorKind = Lang.Fns.K;
      Trigger.Description = Lang.Fns.Description;
      Trigger.NativeSide =
          Lang.Fns.K == FunctionSelector::Kind::AnyNativeMethod;
      Trigger.Matches = FnSet(jni::NumJniFunctions);
      if (!Trigger.NativeSide)
        for (jni::FnId Id : spec::matchedFunctions(Lang.Fns))
          Trigger.Matches.set(static_cast<size_t>(Id));
      T.Triggers.push_back(std::move(Trigger));
    }
    Model.Transitions.push_back(std::move(T));
  }
  return Model;
}

//===----------------------------------------------------------------------===
// Python checker models (§7): derived from the pyFnSpecs table
//===----------------------------------------------------------------------===

namespace {

FnSet pySetOf(bool (*Member)(const PyFnSpec &)) {
  const std::vector<PyFnSpec> &Specs = pyjinn::pyFnSpecs();
  FnSet Out(Specs.size());
  for (size_t I = 0; I < Specs.size(); ++I)
    if (Member(Specs[I]))
      Out.set(I);
  return Out;
}

bool pyReleasesRef(const PyFnSpec &S) {
  return S.StealsParam >= 0 || std::strcmp(S.Name, "Py_DecRef") == 0;
}

bool pyTakesObject(const PyFnSpec &S) {
  return S.Param0Typed || S.BorrowSourceParam >= 0 || S.StealsParam >= 0 ||
         std::strcmp(S.Name, "Py_IncRef") == 0 ||
         std::strcmp(S.Name, "Py_DecRef") == 0;
}

TriggerModel pyTrigger(Direction Dir, std::string Description, FnSet Set) {
  TriggerModel Trigger;
  Trigger.Dir = Dir;
  Trigger.SelectorKind = FunctionSelector::Kind::JniPredicate;
  Trigger.Description = std::move(Description);
  Trigger.Matches = std::move(Set);
  return Trigger;
}

TransitionModel pyTransition(std::string From, std::string To, size_t Index,
                             std::vector<TriggerModel> Triggers,
                             bool HasAction = true) {
  TransitionModel T;
  T.From = std::move(From);
  T.To = std::move(To);
  T.Index = Index;
  T.HasAction = HasAction;
  T.Epsilon = Triggers.empty() && !HasAction;
  T.Triggers = std::move(Triggers);
  return T;
}

} // namespace

std::vector<MachineModel> jinn::analysis::buildPythonModels() {
  std::vector<MachineModel> Models;

  // Reference ownership (Figure 11's dangle_bug class): acquisition at
  // returns of new/borrowed references, release by Py_DecRef and the
  // reference-stealing setters, use by any object-taking function.
  {
    MachineModel M;
    M.Name = "Reference ownership";
    M.Universe = &pythonUniverse();
    M.States = {"Before acquire", "Acquired", "Released", "Error: dangling"};
    M.StartState = M.States.front();
    M.Transitions.push_back(pyTransition(
        "Before acquire", "Acquired", 0,
        {pyTrigger(Direction::ReturnJavaToC,
                   "functions returning a new reference",
                   pySetOf([](const PyFnSpec &S) {
                     return S.Return == RefReturn::New;
                   }))}));
    M.Transitions.push_back(pyTransition(
        "Before acquire", "Acquired", 1,
        {pyTrigger(Direction::ReturnJavaToC,
                   "functions returning a borrowed reference",
                   pySetOf([](const PyFnSpec &S) {
                     return S.Return == RefReturn::Borrowed;
                   }))}));
    M.Transitions.push_back(pyTransition(
        "Acquired", "Released", 2,
        {pyTrigger(Direction::CallCToJava,
                   "Py_DecRef and the reference-stealing setters",
                   pySetOf(pyReleasesRef))}));
    M.Transitions.push_back(pyTransition(
        "Released", "Error: dangling", 3,
        {pyTrigger(Direction::CallCToJava,
                   "any API function taking an object reference",
                   pySetOf(pyTakesObject))}));
    Models.push_back(std::move(M));
  }

  // GIL state: extension code must hold the GIL around every API call;
  // the four GIL functions move between Held and Released.
  {
    MachineModel M;
    M.Name = "GIL state";
    M.Universe = &pythonUniverse();
    M.States = {"Held", "Released", "Error: GIL not held"};
    M.StartState = M.States.front();
    M.Transitions.push_back(pyTransition(
        "Held", "Released", 0,
        {pyTrigger(Direction::CallCToJava,
                   "PyGILState_Release and PyEval_SaveThread",
                   pySetOf([](const PyFnSpec &S) {
                     return S.GilFunction &&
                            (std::strcmp(S.Name, "PyGILState_Release") == 0 ||
                             std::strcmp(S.Name, "PyEval_SaveThread") == 0);
                   }))}));
    M.Transitions.push_back(pyTransition(
        "Released", "Held", 1,
        {pyTrigger(Direction::CallCToJava,
                   "PyGILState_Ensure and PyEval_RestoreThread",
                   pySetOf([](const PyFnSpec &S) {
                     return S.GilFunction &&
                            (std::strcmp(S.Name, "PyGILState_Ensure") == 0 ||
                             std::strcmp(S.Name, "PyEval_RestoreThread") ==
                                 0);
                   }))}));
    M.Transitions.push_back(pyTransition(
        "Released", "Error: GIL not held", 2,
        {pyTrigger(Direction::CallCToJava, "any non-GIL API function",
                   pySetOf([](const PyFnSpec &S) {
                     return !S.GilFunction;
                   }))}));
    Models.push_back(std::move(M));
  }

  // Exception state: mirror of the JNI machine — the pending flag lives in
  // the interpreter (epsilon bookkeeping), the check fires on any
  // exception-sensitive call.
  {
    MachineModel M;
    M.Name = "Exception state";
    M.Universe = &pythonUniverse();
    M.States = {"Cleared", "Pending", "Error: unhandled"};
    M.StartState = M.States.front();
    M.Transitions.push_back(pyTransition("Cleared", "Pending", 0, {},
                                         /*HasAction=*/false));
    M.Transitions.push_back(pyTransition("Pending", "Cleared", 1, {},
                                         /*HasAction=*/false));
    M.Transitions.push_back(pyTransition(
        "Pending", "Error: unhandled", 2,
        {pyTrigger(Direction::CallCToJava,
                   "any exception-sensitive API function",
                   pySetOf([](const PyFnSpec &S) {
                     return !S.ExceptionOblivious;
                   }))}));
    Models.push_back(std::move(M));
  }

  return Models;
}

//===----------------------------------------------------------------------===
// Relevance matrix
//===----------------------------------------------------------------------===

RelevanceMatrix jinn::analysis::buildRelevanceMatrix(
    const std::vector<MachineModel> &Models) {
  RelevanceMatrix Matrix;
  if (Models.empty())
    return Matrix;
  Matrix.Universe = Models.front().Universe;
  size_t N = Matrix.Universe->size();
  Matrix.AnyPre = FnSet(N);
  Matrix.AnyPost = FnSet(N);
  Matrix.Any = FnSet(N);
  Matrix.SpecificAny = FnSet(N);

  for (const MachineModel &Model : Models) {
    MachineRelevance Row;
    Row.Machine = Model.Name;
    Row.Pre = FnSet(N);
    Row.Post = FnSet(N);
    for (const TransitionModel &T : Model.Transitions) {
      ++Matrix.TotalTransitions;
      for (const TriggerModel &Trigger : T.Triggers) {
        switch (Trigger.Dir) {
        case Direction::CallCToJava:
          Row.Pre |= Trigger.Matches;
          Row.PreHooks += Trigger.Matches.count();
          break;
        case Direction::ReturnJavaToC:
          Row.Post |= Trigger.Matches;
          Row.PostHooks += Trigger.Matches.count();
          break;
        case Direction::CallJavaToC:
          ++Row.NativeEntryTriggers;
          break;
        case Direction::ReturnCToJava:
          ++Row.NativeExitTriggers;
          break;
        }
        if (Trigger.SelectorKind != FunctionSelector::Kind::AllJniFunctions)
          Matrix.SpecificAny |= Trigger.Matches;
      }
    }
    Matrix.AnyPre |= Row.Pre;
    Matrix.AnyPost |= Row.Post;
    Matrix.TotalPreHooks += Row.PreHooks;
    Matrix.TotalPostHooks += Row.PostHooks;
    Matrix.TotalNativeEntry += Row.NativeEntryTriggers;
    Matrix.TotalNativeExit += Row.NativeExitTriggers;
    Matrix.Machines.push_back(std::move(Row));
  }
  Matrix.Any |= Matrix.AnyPre;
  Matrix.Any |= Matrix.AnyPost;
  return Matrix;
}
