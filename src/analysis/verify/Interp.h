//===- analysis/verify/Interp.h - Abstract interpretation of crossings ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// jinn-verify's core: flow-sensitive abstract interpretation of a client
/// crossing program (Cfg.h) against the product of all SpecModel machines.
/// Each abstract configuration tracks, per machine, a set of possible FSM
/// states and an interval abstraction of the declared pushdown counter;
/// counter-guarded error transitions split configurations at their guards
/// (fire vs survive), branch joins merge configurations with equal report
/// sets, and loops run to fixpoint with interval widening to [0, Bound].
///
/// Verdicts classify every derivable report as *must* (present on every
/// path reaching program exit) or *may* (present on some path only), in
/// JinnReport format with the exact message text the dynamic checker
/// throws — `<Violation> in <function>.` — so static verdicts diff
/// byte-for-byte against dynamic oracles.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_ANALYSIS_VERIFY_INTERP_H
#define JINN_ANALYSIS_VERIFY_INTERP_H

#include "analysis/SpecModel.h"
#include "analysis/verify/Cfg.h"

#include <cstdint>
#include <vector>

namespace jinn::analysis::verify {

/// Interpreter instrumentation counters.
struct VerifyStats {
  uint64_t ConfigsExplored = 0;  ///< configurations pushed through events
  uint64_t BlockIterations = 0;  ///< block visits until fixpoint
  uint64_t Widenings = 0;        ///< intervals widened to [0, Bound]
  uint64_t MergedConfigs = 0;    ///< configurations absorbed at joins
  /// Counter-guard reports the interval domain derived on its own, and of
  /// those, how many a recorded execution also witnessed (cross-validation
  /// of the abstract derivation against the dynamic oracle).
  uint64_t AbstractReports = 0;
  uint64_t AbstractConfirmed = 0;
};

/// The verdict over one client program.
struct Verdict {
  /// Reports present on every path reaching program exit, in first-
  /// derivation (program) order. Byte-identical to dynamic reports.
  std::vector<agent::JinnReport> Must;
  /// Reports present on some but not all exit paths.
  std::vector<agent::JinnReport> May;
  VerifyStats Stats;

  bool flagged() const { return !Must.empty() || !May.empty(); }
};

/// Abstractly executes \p Cfg against \p Models (the product machine).
/// Models with more than 32 states are interpreted state-insensitively
/// (their reports can still flow through Witnessed hints); all fourteen
/// shipped machines are far below that.
Verdict verifyCfg(const ClientCfg &Cfg,
                  const std::vector<MachineModel> &Models);

/// Builds the full JNI machine-model set (all fourteen machines, through
/// the same agent::MachineSet the dynamic checker instantiates).
std::vector<MachineModel> verifierModels();

} // namespace jinn::analysis::verify

#endif // JINN_ANALYSIS_VERIFY_INTERP_H
