//===- analysis/verify/Examples.h - Branching/looping harness programs ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-built crossing programs exercising the parts of the abstract
/// domain straight-line lifted traces cannot: branch joins (may vs must
/// classification), loop fixpoints, and interval widening. Each example
/// declares the verdict it expects, so the CLI and tests drive the whole
/// set uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_ANALYSIS_VERIFY_EXAMPLES_H
#define JINN_ANALYSIS_VERIFY_EXAMPLES_H

#include "analysis/verify/Cfg.h"

#include <string>
#include <vector>

namespace jinn::analysis::verify {

/// One harness program with its expected classification.
struct VerifyExample {
  ClientCfg Cfg;
  /// Machine a report is expected from ("" = no report expected).
  std::string Machine;
  bool ExpectMust = false;
  bool ExpectMay = false;
  /// The example exists to exercise widening; the verdict must show it.
  bool ExpectWidening = false;
};

/// The example set (built once).
const std::vector<VerifyExample> &verifyExamples();

} // namespace jinn::analysis::verify

#endif // JINN_ANALYSIS_VERIFY_EXAMPLES_H
