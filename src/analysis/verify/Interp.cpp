//===- analysis/verify/Interp.cpp - Abstract interpretation of crossings -===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/verify/Interp.h"

#include "analysis/SpecLint.h"
#include "jinn/Machines.h"
#include "jni/JniFunctionId.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace jinn;
using namespace jinn::analysis;
using namespace jinn::analysis::verify;

namespace {

/// Interval top for counters declared unbounded (Bound == 0). Far above
/// any reachable depth; +1 never overflows because pushes clamp here.
constexpr uint32_t UnboundedTop = 1u << 20;

/// Block visit count after which joins widen counter intervals to
/// [0, Bound]. High enough that balanced loops converge exactly first.
constexpr uint32_t WidenAfterVisits = 4;

/// Config-count cap per block; beyond it same-report configs are hulled.
constexpr size_t MaxConfigsPerBlock = 64;

//===----------------------------------------------------------------------===
// Machine plans: the per-machine transfer tables, precomputed from models
//===----------------------------------------------------------------------===

/// One transition compiled against state indices and direction-split
/// trigger sets.
struct CompiledTransition {
  uint32_t From = 0, To = 0;
  bool ToError = false;
  spec::CounterOp Counter = spec::CounterOp::None;
  std::string Violation;
  FnSet Pre;  ///< CallCToJava trigger matches
  FnSet Post; ///< ReturnJavaToC trigger matches
};

struct MachinePlan {
  const MachineModel *Model = nullptr;
  uint32_t NumStates = 0;
  uint32_t Bound = 0; ///< interval top ([0, Bound] after widening)
  bool HasCounter = false;
  /// More than 32 states (none shipped): interpreted state-insensitively.
  bool Opaque = false;
  /// Counter-guarded error transitions with declared violation text —
  /// the spec-decidable checks the interval domain fires on its own.
  std::vector<CompiledTransition> PreChecks;
  /// Non-error transitions triggered at pre (state may-moves).
  std::vector<CompiledTransition> PreMoves;
  /// Non-error transitions triggered at post (state moves + counter ops).
  std::vector<CompiledTransition> PostMoves;
};

MachinePlan compilePlan(const MachineModel &Model) {
  MachinePlan Plan;
  Plan.Model = &Model;
  Plan.NumStates = static_cast<uint32_t>(Model.States.size());
  Plan.HasCounter = Model.hasCounter();
  Plan.Bound = Model.Counter.Bound ? Model.Counter.Bound : UnboundedTop;
  if (Plan.NumStates == 0 || Plan.NumStates > 32) {
    Plan.Opaque = true;
    return Plan;
  }

  auto StateIndex = [&Model](const std::string &Name) -> int {
    for (size_t I = 0; I < Model.States.size(); ++I)
      if (Model.States[I] == Name)
        return static_cast<int>(I);
    return -1;
  };

  for (const TransitionModel &T : Model.Transitions) {
    int From = StateIndex(T.From);
    int To = StateIndex(T.To);
    if (From < 0 || To < 0)
      continue; // malformed edge; speclint reports it
    CompiledTransition C;
    C.From = static_cast<uint32_t>(From);
    C.To = static_cast<uint32_t>(To);
    C.ToError = isErrorState(T.To);
    C.Counter = T.Counter;
    C.Violation = T.Violation;
    C.Pre = FnSet(jni::NumJniFunctions);
    C.Post = FnSet(jni::NumJniFunctions);
    for (const TriggerModel &Trigger : T.Triggers) {
      if (Trigger.NativeSide)
        continue; // native-boundary triggers: hint-only (see Interp.h)
      if (Trigger.Dir == spec::Direction::CallCToJava)
        C.Pre |= Trigger.Matches;
      else if (Trigger.Dir == spec::Direction::ReturnJavaToC)
        C.Post |= Trigger.Matches;
    }

    if (C.ToError) {
      // Only counter-guarded checks with declared violation text are
      // decidable from the crossing sequence; value-dependent error
      // transitions are taken through Witnessed hints alone.
      if (Plan.HasCounter && C.Counter != spec::CounterOp::None &&
          !C.Violation.empty() && !C.Pre.empty())
        Plan.PreChecks.push_back(std::move(C));
      continue;
    }
    if (!C.Pre.empty()) {
      CompiledTransition PreC = C;
      PreC.Post = FnSet(jni::NumJniFunctions);
      Plan.PreMoves.push_back(std::move(PreC));
    }
    if (!C.Post.empty()) {
      C.Pre = FnSet(jni::NumJniFunctions);
      Plan.PostMoves.push_back(std::move(C));
    }
  }
  return Plan;
}

//===----------------------------------------------------------------------===
// Abstract domain
//===----------------------------------------------------------------------===

/// Per-machine abstraction: a set of possible FSM states plus an interval
/// abstraction of the declared counter.
struct MachineAbs {
  uint32_t States = 1; ///< bitset over model states; start = bit 0
  uint32_t Lo = 0, Hi = 0;

  bool operator==(const MachineAbs &O) const {
    return States == O.States && Lo == O.Lo && Hi == O.Hi;
  }
  /// Containment: every concrete state this allows, \p O allows too.
  bool within(const MachineAbs &O) const {
    return (States & ~O.States) == 0 && Lo >= O.Lo && Hi <= O.Hi;
  }
};

/// One abstract configuration of the product machine.
struct Config {
  std::vector<MachineAbs> M;
  std::vector<uint32_t> Reports; ///< sorted unique report-table ids

  bool operator==(const Config &O) const {
    return Reports == O.Reports && M == O.M;
  }
};

bool subsumes(const Config &A, const Config &B) {
  if (A.Reports != B.Reports)
    return false;
  for (size_t I = 0; I < A.M.size(); ++I)
    if (!B.M[I].within(A.M[I]))
      return false;
  return true;
}

void addReport(Config &C, uint32_t Id) {
  auto It = std::lower_bound(C.Reports.begin(), C.Reports.end(), Id);
  if (It == C.Reports.end() || *It != Id)
    C.Reports.insert(It, Id);
}

//===----------------------------------------------------------------------===
// The interpreter
//===----------------------------------------------------------------------===

class Interpreter {
public:
  Interpreter(const ClientCfg &Cfg, const std::vector<MachineModel> &Models)
      : Cfg(Cfg) {
    for (const MachineModel &Model : Models)
      Plans.push_back(compilePlan(Model));
  }

  Verdict run();

private:
  const ClientCfg &Cfg;
  std::vector<MachinePlan> Plans;
  VerifyStats Stats;

  /// Report table; ids index it, insertion order is first-derivation
  /// (program) order. Identity is (crossing site, content): the abstract
  /// derivation and the witnessed hint of one crossing unify to a single
  /// report, while identical reports at different crossings stay distinct
  /// (a dynamic run repeats them, so the byte-for-byte diff must too).
  std::vector<agent::JinnReport> Table;
  std::vector<uint64_t> TableSites;
  std::set<uint32_t> AbstractIds;  ///< ids derived by the interval domain
  std::set<uint32_t> WitnessedIds; ///< ids carried by Witnessed hints

  uint32_t reportId(uint64_t Site, const agent::JinnReport &R) {
    for (size_t I = 0; I < Table.size(); ++I)
      if (TableSites[I] == Site && Table[I].Machine == R.Machine &&
          Table[I].Function == R.Function && Table[I].Message == R.Message &&
          Table[I].EndOfRun == R.EndOfRun)
        return static_cast<uint32_t>(I);
    Table.push_back(R);
    TableSites.push_back(Site);
    return static_cast<uint32_t>(Table.size() - 1);
  }

  Config entryConfig() const {
    Config C;
    // StartState is States[0] by the spec convention: bit 0 set, counter
    // interval [0, 0].
    C.M.assign(Plans.size(), MachineAbs{});
    return C;
  }

  void transferEvent(const Config &In, const CrossEvent &Ev, uint64_t Site,
                     std::vector<Config> &Out);
  void transferCall(const Config &In, const CrossEvent &Ev, uint64_t Site,
                    std::vector<Config> &Out);
  void applyWitnessed(Config &C, const CrossEvent &Ev, uint64_t Site);
  void applyPost(Config &C, jni::FnId Fn);

  void capConfigs(std::vector<Config> &Configs);
  bool joinInto(std::vector<Config> &Dst, Config C, bool Widen);
};

/// Pre-phase counter-guarded checks plus state moves for one machine, then
/// the caller advances to the next machine. A firing check aborts the call
/// (the dynamic reporter's suppression), so later machines' pre hooks and
/// every post hook are skipped on that branch.
void Interpreter::transferCall(const Config &In, const CrossEvent &Ev,
                               uint64_t Site, std::vector<Config> &Out) {
  size_t Fn = static_cast<size_t>(Ev.Fn);

  struct Branch {
    Config C;
    bool Aborted = false;
  };
  std::vector<Branch> Cur;
  Cur.push_back({In, false});

  for (size_t Mi = 0; Mi < Plans.size(); ++Mi) {
    const MachinePlan &Plan = Plans[Mi];
    if (Plan.Opaque)
      continue;
    std::vector<Branch> Nxt;
    for (Branch &B : Cur) {
      if (B.Aborted) {
        Nxt.push_back(std::move(B));
        continue;
      }
      MachineAbs &A = B.C.M[Mi];
      bool Dead = false; // check fired on every concrete path of B
      for (const CompiledTransition &T : Plan.PreChecks) {
        if (!T.Pre.test(Fn) || !(A.States >> T.From & 1u))
          continue;
        bool May, Must;
        if (T.Counter == spec::CounterOp::Pop) {
          May = A.Lo == 0;
          Must = A.Hi == 0;
        } else {
          May = A.Hi >= Plan.Bound;
          Must = A.Lo >= Plan.Bound;
        }
        Must = Must && A.States == (1u << T.From);
        if (!May)
          continue;

        agent::JinnReport R;
        R.Machine = Plan.Model->Name;
        R.Function = jni::fnName(Ev.Fn);
        R.Message = T.Violation + " in " + R.Function + ".";
        R.EndOfRun = false;
        uint32_t Id = reportId(Site, R);
        AbstractIds.insert(Id);

        Branch Fire;
        Fire.C = B.C;
        Fire.Aborted = true;
        MachineAbs &FA = Fire.C.M[Mi];
        FA.States = (A.States & ~(1u << T.From)) | (1u << T.To);
        if (T.Counter == spec::CounterOp::Pop)
          FA.Lo = FA.Hi = 0;
        else
          FA.Lo = FA.Hi = Plan.Bound;
        addReport(Fire.C, Id);
        Nxt.push_back(std::move(Fire));

        if (Must) {
          Dead = true;
          break;
        }
        // Survive branch: the guard did not hold.
        if (T.Counter == spec::CounterOp::Pop)
          A.Lo = std::max(A.Lo, 1u);
        else
          A.Hi = std::min(A.Hi, Plan.Bound - 1);
      }
      if (Dead)
        continue;
      uint32_t Add = 0;
      for (const CompiledTransition &T : Plan.PreMoves)
        if (T.Pre.test(Fn) && (A.States >> T.From & 1u))
          Add |= 1u << T.To;
      A.States |= Add;
      Nxt.push_back(std::move(B));
    }
    Cur = std::move(Nxt);
  }

  for (Branch &B : Cur) {
    if (!B.Aborted && Ev.Success)
      applyPost(B.C, Ev.Fn);
    applyWitnessed(B.C, Ev, Site);
    Out.push_back(std::move(B.C));
  }
}

void Interpreter::applyPost(Config &C, jni::FnId FnId) {
  size_t Fn = static_cast<size_t>(FnId);
  for (size_t Mi = 0; Mi < Plans.size(); ++Mi) {
    const MachinePlan &Plan = Plans[Mi];
    if (Plan.Opaque)
      continue;
    MachineAbs &A = C.M[Mi];
    uint32_t Add = 0;
    for (const CompiledTransition &T : Plan.PostMoves) {
      if (!T.Post.test(Fn) || !(A.States >> T.From & 1u))
        continue;
      Add |= 1u << T.To;
      // Counter moves mirror the dynamic actions exactly: pushes clamp at
      // the bound, pops are guarded at zero.
      if (T.Counter == spec::CounterOp::Push) {
        A.Lo = std::min(A.Lo + 1, Plan.Bound);
        A.Hi = std::min(A.Hi + 1, Plan.Bound);
      } else if (T.Counter == spec::CounterOp::Pop) {
        A.Lo = A.Lo ? A.Lo - 1 : 0;
        A.Hi = A.Hi ? A.Hi - 1 : 0;
      }
    }
    A.States |= Add;
  }
}

/// Witnessed reports join every configuration passing the event; the named
/// machine is additionally allowed into its error states (value-dependent
/// firings the crossing sequence cannot decide).
void Interpreter::applyWitnessed(Config &C, const CrossEvent &Ev,
                                 uint64_t Site) {
  for (const agent::JinnReport &W : Ev.Witnessed) {
    uint32_t Id = reportId(Site, W);
    WitnessedIds.insert(Id);
    addReport(C, Id);
    for (size_t Mi = 0; Mi < Plans.size(); ++Mi) {
      const MachinePlan &Plan = Plans[Mi];
      if (Plan.Opaque || Plan.Model->Name != W.Machine)
        continue;
      uint32_t ErrorMask = 0;
      for (size_t S = 0; S < Plan.Model->States.size(); ++S)
        if (isErrorState(Plan.Model->States[S]))
          ErrorMask |= 1u << S;
      C.M[Mi].States |= ErrorMask;
    }
  }
}

void Interpreter::transferEvent(const Config &In, const CrossEvent &Ev,
                                uint64_t Site, std::vector<Config> &Out) {
  ++Stats.ConfigsExplored;
  if (Ev.K == CrossEvent::Kind::Call && Ev.Fn != jni::FnId::Count) {
    transferCall(In, Ev, Site, Out);
    return;
  }
  // Native boundaries and program termination carry no abstract transfer
  // in this domain (a documented precision limit); their witnessed
  // reports still flow.
  Config C = In;
  applyWitnessed(C, Ev, Site);
  Out.push_back(std::move(C));
}

void Interpreter::capConfigs(std::vector<Config> &Configs) {
  if (Configs.size() <= MaxConfigsPerBlock)
    return;
  // Hull same-report configs pairwise until under the cap.
  std::vector<Config> Out;
  for (Config &C : Configs) {
    bool Absorbed = false;
    for (Config &D : Out) {
      if (D.Reports != C.Reports)
        continue;
      for (size_t I = 0; I < D.M.size(); ++I) {
        D.M[I].States |= C.M[I].States;
        D.M[I].Lo = std::min(D.M[I].Lo, C.M[I].Lo);
        D.M[I].Hi = std::max(D.M[I].Hi, C.M[I].Hi);
      }
      Absorbed = true;
      ++Stats.MergedConfigs;
      break;
    }
    if (!Absorbed)
      Out.push_back(std::move(C));
  }
  Configs = std::move(Out);
}

bool Interpreter::joinInto(std::vector<Config> &Dst, Config C, bool Widen) {
  if (Widen) {
    bool Widened = false;
    for (size_t Mi = 0; Mi < Plans.size(); ++Mi) {
      if (!Plans[Mi].HasCounter)
        continue;
      MachineAbs &A = C.M[Mi];
      if (A.Lo != 0 || A.Hi != Plans[Mi].Bound) {
        A.Lo = 0;
        A.Hi = Plans[Mi].Bound;
        Widened = true;
      }
    }
    if (Widened)
      ++Stats.Widenings;
  }
  for (const Config &D : Dst)
    if (subsumes(D, C))
      return false;
  Dst.erase(std::remove_if(Dst.begin(), Dst.end(),
                           [&](const Config &D) {
                             if (!subsumes(C, D))
                               return false;
                             ++Stats.MergedConfigs;
                             return true;
                           }),
            Dst.end());
  Dst.push_back(std::move(C));
  return true;
}

Verdict Interpreter::run() {
  Verdict V;
  if (Cfg.Blocks.empty())
    return V;

  std::vector<std::vector<Config>> In(Cfg.Blocks.size());
  std::vector<uint32_t> Visits(Cfg.Blocks.size(), 0);
  std::vector<Config> ExitConfigs;

  In[Cfg.Entry].push_back(entryConfig());
  std::vector<size_t> Worklist{Cfg.Entry};

  while (!Worklist.empty()) {
    size_t B = Worklist.back();
    Worklist.pop_back();
    ++Visits[B];
    ++Stats.BlockIterations;

    std::vector<Config> Cur = In[B];
    for (size_t EvIdx = 0; EvIdx < Cfg.Blocks[B].Events.size(); ++EvIdx) {
      const CrossEvent &Ev = Cfg.Blocks[B].Events[EvIdx];
      uint64_t Site = (static_cast<uint64_t>(B) << 32) | EvIdx;
      std::vector<Config> Nxt;
      for (const Config &C : Cur)
        transferEvent(C, Ev, Site, Nxt);
      Cur = std::move(Nxt);
      capConfigs(Cur);
    }

    if (Cfg.isExit(B)) {
      for (Config &C : Cur)
        joinInto(ExitConfigs, std::move(C), /*Widen=*/false);
      continue;
    }
    for (size_t S : Cfg.Blocks[B].Succs) {
      bool Widen = Visits[S] >= WidenAfterVisits;
      bool Changed = false;
      for (const Config &C : Cur)
        Changed |= joinInto(In[S], C, Widen);
      if (Changed &&
          std::find(Worklist.begin(), Worklist.end(), S) == Worklist.end())
        Worklist.push_back(S);
    }
  }

  // Must = on every exit path, May = on some path only — classified over
  // content-equivalence groups with multiplicity, because the same
  // violation reached through different branch arms fires at different
  // sites (still one inevitable report), while one path repeating a
  // report (local-overflow loops) repeats it in the dynamic list too.
  // Per group: must-count = min occurrences over exit configs, any-count
  // = max; output keeps report-table (first-derivation) order.
  std::vector<uint32_t> GroupOf(Table.size()), PosInGroup(Table.size());
  uint32_t NumGroups = 0;
  for (uint32_t Id = 0; Id < static_cast<uint32_t>(Table.size()); ++Id) {
    GroupOf[Id] = NumGroups;
    PosInGroup[Id] = 0;
    for (uint32_t Prev = 0; Prev < Id; ++Prev)
      if (Table[Prev].Machine == Table[Id].Machine &&
          Table[Prev].Function == Table[Id].Function &&
          Table[Prev].Message == Table[Id].Message &&
          Table[Prev].EndOfRun == Table[Id].EndOfRun) {
        GroupOf[Id] = GroupOf[Prev];
        ++PosInGroup[Id];
      }
    if (GroupOf[Id] == NumGroups)
      ++NumGroups;
  }
  std::vector<uint32_t> MustCount(NumGroups, 0), AnyCount(NumGroups, 0);
  bool First = true;
  for (const Config &C : ExitConfigs) {
    std::vector<uint32_t> Count(NumGroups, 0);
    for (uint32_t Id : C.Reports)
      ++Count[GroupOf[Id]];
    for (uint32_t G = 0; G < NumGroups; ++G) {
      MustCount[G] = First ? Count[G] : std::min(MustCount[G], Count[G]);
      AnyCount[G] = std::max(AnyCount[G], Count[G]);
    }
    First = false;
  }
  for (uint32_t Id = 0; Id < static_cast<uint32_t>(Table.size()); ++Id) {
    if (PosInGroup[Id] < MustCount[GroupOf[Id]])
      V.Must.push_back(Table[Id]);
    else if (PosInGroup[Id] < AnyCount[GroupOf[Id]])
      V.May.push_back(Table[Id]);
  }

  Stats.AbstractReports = AbstractIds.size();
  for (uint32_t Id : AbstractIds)
    if (WitnessedIds.count(Id))
      ++Stats.AbstractConfirmed;
  V.Stats = Stats;
  return V;
}

} // namespace

Verdict jinn::analysis::verify::verifyCfg(
    const ClientCfg &Cfg, const std::vector<MachineModel> &Models) {
  return Interpreter(Cfg, Models).run();
}

std::vector<MachineModel> jinn::analysis::verify::verifierModels() {
  agent::MachineSet Machines;
  std::vector<MachineModel> Models;
  for (spec::MachineBase *Machine : Machines.all())
    Models.push_back(buildModel(Machine->spec()));
  return Models;
}
