//===- analysis/verify/Lift.cpp - Lifting crossings into the CFG IR ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/verify/Lift.h"

#include "fuzz/Executor.h"
#include "jni/JniTraits.h"
#include "trace/Replay.h"

#include <map>
#include <utility>

using namespace jinn;
using namespace jinn::analysis::verify;

namespace {

/// Whether a recorded call's post hooks ran their resource moves — the
/// exact gating the dynamic counter actions apply to the return value.
/// Calls with no post event (checker-suppressed) never reach here.
bool callSucceeded(jni::FnId Fn, const trace::TraceEvent &Post) {
  switch (Fn) {
  case jni::FnId::PushLocalFrame:
  case jni::FnId::MonitorEnter:
  case jni::FnId::MonitorExit:
    // Status-returning balance functions: JNI_OK gates the counter move.
    return static_cast<int32_t>(Post.RetWord) == 0;
  default:
    break;
  }
  const jni::FnTraits &Traits = jni::fnTraits(Fn);
  if (Traits.Resource == jni::ResourceRole::PinAcquire)
    return Post.RetWord != 0 || Post.RetPtrWord != 0; // null = failed pin
  return true;
}

} // namespace

ClientCfg jinn::analysis::verify::liftTrace(const trace::Trace &T,
                                            jvm::Vm &Vm,
                                            const std::string &Name,
                                            bool PinWitnessed) {
  // Pass 1: replay the trace so every report the dynamic machines derive
  // is pinned to the trace event that fired it. Foreign traces skip this
  // (their entity words are another process's addresses).
  std::vector<std::pair<size_t, agent::JinnReport>> Pinned;
  if (PinWitnessed) {
    trace::ReplayOptions Opts;
    Opts.OnReport = [&Pinned](size_t EvIndex, const agent::JinnReport &R) {
      Pinned.emplace_back(EvIndex, R);
    };
    trace::replayTrace(T, Vm, Opts);
  }

  // Pass 2: fold the event stream into one straight-line block. A JniPost
  // closes the innermost open call of its thread with the same function
  // (calls nest strictly; opens skipped on the way down were suppressed
  // and correctly keep Success = false).
  ClientCfg Cfg;
  Cfg.Name = Name;
  Cfg.Blocks.emplace_back();
  std::vector<CrossEvent> &Events = Cfg.Blocks[0].Events;

  constexpr size_t None = static_cast<size_t>(-1);
  std::vector<size_t> EvMap(T.Events.size(), None);
  std::map<uint32_t, std::vector<size_t>> OpenCalls; // per-thread stacks

  for (size_t I = 0; I < T.Events.size(); ++I) {
    const trace::TraceEvent &Ev = T.Events[I];
    switch (Ev.Kind) {
    case trace::EventKind::JniPre: {
      CrossEvent C;
      C.K = CrossEvent::Kind::Call;
      C.Fn = static_cast<jni::FnId>(Ev.Fn);
      C.Success = false; // until a post event closes it
      EvMap[I] = Events.size();
      OpenCalls[Ev.ThreadId].push_back(Events.size());
      Events.push_back(std::move(C));
      break;
    }
    case trace::EventKind::JniPost: {
      std::vector<size_t> &Stack = OpenCalls[Ev.ThreadId];
      size_t Idx = None;
      while (!Stack.empty()) {
        size_t Top = Stack.back();
        Stack.pop_back();
        if (Events[Top].Fn == static_cast<jni::FnId>(Ev.Fn)) {
          Idx = Top;
          break;
        }
      }
      if (Idx != None) {
        Events[Idx].Success =
            callSucceeded(static_cast<jni::FnId>(Ev.Fn), Ev);
        EvMap[I] = Idx;
      }
      break;
    }
    case trace::EventKind::NativeEntry:
    case trace::EventKind::NativeExit: {
      CrossEvent C;
      C.K = Ev.Kind == trace::EventKind::NativeEntry
                ? CrossEvent::Kind::NativeEntry
                : CrossEvent::Kind::NativeExit;
      EvMap[I] = Events.size();
      Events.push_back(std::move(C));
      break;
    }
    case trace::EventKind::VmDeath: {
      CrossEvent C;
      C.K = CrossEvent::Kind::End;
      EvMap[I] = Events.size();
      Events.push_back(std::move(C));
      break;
    }
    case trace::EventKind::NativeBind:
    case trace::EventKind::ThreadAttach:
    case trace::EventKind::ThreadDetach:
    case trace::EventKind::GcEpoch:
      EvMap[I] = Events.empty() ? None : Events.size() - 1;
      break;
    }
  }

  // Pass 3: attach the pinned reports as Witnessed hints.
  for (std::pair<size_t, agent::JinnReport> &P : Pinned) {
    size_t Idx = P.first < EvMap.size() ? EvMap[P.first] : None;
    if (Idx == None)
      Idx = Events.empty() ? None : Events.size() - 1;
    if (Idx != None)
      Events[Idx].Witnessed.push_back(std::move(P.second));
  }
  return Cfg;
}

LiftedProgram jinn::analysis::verify::liftMicro(scenarios::MicroId Id) {
  scenarios::WorldConfig Config;
  Config.Checker = scenarios::CheckerKind::Jinn;
  Config.JinnMode = agent::TraceMode::RecordAndReplay;
  scenarios::ScenarioWorld World(Config);
  scenarios::runMicrobenchmark(Id, World);
  World.shutdown();

  LiftedProgram Out;
  trace::Trace Recorded = World.Jinn->recorder()->collect();
  Out.Cfg = liftTrace(Recorded, World.Vm, scenarios::microInfo(Id).ClassName);
  Out.Oracle = World.Jinn->reporter().reports();
  return Out;
}

LiftedProgram
jinn::analysis::verify::liftJniSequence(const fuzz::Sequence &Seq) {
  LiftedProgram Out;
  const fuzz::FuzzOp *Bug = Seq.bugOp();
  std::string Name =
      std::string("fuzz:") + (Bug ? Bug->Name : "clean");
  fuzz::runJniSequenceRecorded(
      Seq, [&Out, &Name](const trace::Trace &T, jvm::Vm &Vm,
                         const std::vector<agent::JinnReport> &Inline) {
        Out.Cfg = liftTrace(T, Vm, Name);
        Out.Oracle = Inline;
      });
  return Out;
}
