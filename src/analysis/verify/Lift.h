//===- analysis/verify/Lift.h - Lifting crossings into the CFG IR --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three program sources jinn-verify lifts into ClientCfg form:
///
///  1. Recorded .jtrace crossing streams (liftTrace): events become a
///     straight-line, one-block CFG; each report the offline replay
///     produces is pinned (through ReplayOptions::OnReport) to the
///     crossing that fired it and attached as a Witnessed hint.
///  2. Table-1 microbenchmarks (liftMicro): the scenario runs once under
///     the Jinn agent in record+replay mode; the recorded trace lifts as
///     above and the inline report list ships alongside as the dynamic
///     oracle the static verdict diffs against.
///  3. jinn-fuzz op-table sequences (liftJniSequence): same shape, driven
///     through fuzz::runJniSequenceRecorded.
///
/// Trace entity identities are process addresses, so lifting happens while
/// the recording world is alive; the resulting ClientCfg is self-contained
/// (function ids, success bits, report texts) and outlives it.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_ANALYSIS_VERIFY_LIFT_H
#define JINN_ANALYSIS_VERIFY_LIFT_H

#include "analysis/verify/Cfg.h"
#include "fuzz/Generator.h"
#include "scenarios/Scenarios.h"
#include "trace/TraceEvent.h"

#include <string>
#include <vector>

namespace jinn::analysis::verify {

/// A lifted program plus the dynamic oracle it must agree with.
struct LiftedProgram {
  ClientCfg Cfg;
  /// The inline checker's report list from the recording run.
  std::vector<agent::JinnReport> Oracle;
};

/// Lifts recorded trace \p T (replaying it against \p Vm to pin witnessed
/// reports). \p Vm must be the trace's own world, still alive. Pass
/// \p PinWitnessed = false for a foreign trace (read from a file written
/// by another process): its entity identities no longer resolve, so it
/// cannot be replayed at all — the lifted program then carries no hints
/// and the verdict covers the spec-decidable counter checks only.
ClientCfg liftTrace(const trace::Trace &T, jvm::Vm &Vm,
                    const std::string &Name, bool PinWitnessed = true);

/// Runs microbenchmark \p Id under the Jinn agent in record+replay mode
/// and lifts the recorded crossings.
LiftedProgram liftMicro(scenarios::MicroId Id);

/// Runs fuzz sequence \p Seq in a fresh recording world and lifts it.
LiftedProgram liftJniSequence(const fuzz::Sequence &Seq);

} // namespace jinn::analysis::verify

#endif // JINN_ANALYSIS_VERIFY_LIFT_H
