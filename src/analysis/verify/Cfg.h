//===- analysis/verify/Cfg.h - Client crossing-program CFG IR ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation jinn-verify interprets: a client program
/// reduced to its FFI crossings. Every JNI call, native-method boundary,
/// and program termination becomes a CrossEvent; basic blocks hold event
/// runs and successor edges model the client's branches and loops. Lifted
/// traces (Lift.h) are straight-line, one block; the example harnesses
/// (Examples.h) and tests build branching/looping CFGs by hand through
/// CfgBuilder.
///
/// Value-dependent checks (which reference is dangling, which field is
/// final) cannot be decided from the crossing sequence alone, so events
/// carry Witnessed reports: violations a recorded execution of this exact
/// program pinned to the crossing. The abstract interpreter takes
/// value-dependent error transitions only through these; the
/// counter-guarded pushdown checks it decides itself from the interval
/// domain, and the two derivations are cross-validated.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_ANALYSIS_VERIFY_CFG_H
#define JINN_ANALYSIS_VERIFY_CFG_H

#include "jinn/Report.h"
#include "jni/JniFunctionId.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jinn::analysis::verify {

/// One FFI crossing of the client program.
struct CrossEvent {
  enum class Kind : uint8_t {
    Call,        ///< a JNI function call (pre, then post iff Success)
    NativeEntry, ///< Java entered a native method
    NativeExit,  ///< a native method returned to Java
    End,         ///< program termination (end-of-run checks fire here)
  };

  Kind K = Kind::Call;
  jni::FnId Fn = jni::FnId::Count; ///< Call events only

  /// Whether the call completed and its post hooks ran: false for calls a
  /// checker suppressed (no post event in the trace) and for failed
  /// acquires (PushLocalFrame/MonitorEnter/MonitorExit returning an error
  /// status, Get*Critical returning null). Post-phase counter moves are
  /// gated on this, exactly as the dynamic actions gate on the return
  /// value.
  bool Success = true;

  /// Violations a recorded execution witnessed at this crossing (empty for
  /// hand-built harness CFGs). Full JinnReport records, byte-identical to
  /// the dynamic reporter's.
  std::vector<agent::JinnReport> Witnessed;
};

/// A run of crossings with no internal control flow.
struct BasicBlock {
  std::vector<CrossEvent> Events;
  std::vector<size_t> Succs; ///< indices into ClientCfg::Blocks; empty = exit
};

/// A whole client crossing program.
struct ClientCfg {
  std::string Name;
  std::vector<BasicBlock> Blocks;
  size_t Entry = 0;

  bool isExit(size_t Block) const { return Blocks[Block].Succs.empty(); }
};

/// Convenience builder for harness programs and tests.
class CfgBuilder {
public:
  explicit CfgBuilder(std::string Name) { Cfg.Name = std::move(Name); }

  /// Appends an empty block, returning its index.
  size_t block() {
    Cfg.Blocks.emplace_back();
    return Cfg.Blocks.size() - 1;
  }

  /// Appends a JNI call event to block \p B.
  CfgBuilder &call(size_t B, jni::FnId Fn, bool Success = true) {
    CrossEvent Ev;
    Ev.K = CrossEvent::Kind::Call;
    Ev.Fn = Fn;
    Ev.Success = Success;
    Cfg.Blocks[B].Events.push_back(std::move(Ev));
    return *this;
  }

  /// Appends a termination event to block \p B.
  CfgBuilder &end(size_t B) {
    CrossEvent Ev;
    Ev.K = CrossEvent::Kind::End;
    Cfg.Blocks[B].Events.push_back(std::move(Ev));
    return *this;
  }

  CfgBuilder &edge(size_t From, size_t To) {
    Cfg.Blocks[From].Succs.push_back(To);
    return *this;
  }

  ClientCfg take() { return std::move(Cfg); }

private:
  ClientCfg Cfg;
};

} // namespace jinn::analysis::verify

#endif // JINN_ANALYSIS_VERIFY_CFG_H
