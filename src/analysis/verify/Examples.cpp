//===- analysis/verify/Examples.cpp - Branching/looping harness programs -===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/verify/Examples.h"

using namespace jinn;
using namespace jinn::analysis::verify;
using jinn::jni::FnId;

namespace {

std::vector<VerifyExample> buildExamples() {
  std::vector<VerifyExample> Out;

  // Branch where only one arm over-pops the local-frame stack: the
  // violation is reachable but not inevitable -> may, not must.
  {
    VerifyExample E;
    CfgBuilder B("branch-may-pop");
    size_t Entry = B.block(), Buggy = B.block(), Clean = B.block(),
           Exit = B.block();
    B.call(Entry, FnId::PushLocalFrame)
        .edge(Entry, Buggy)
        .edge(Entry, Clean);
    B.call(Buggy, FnId::PopLocalFrame).call(Buggy, FnId::PopLocalFrame);
    B.call(Clean, FnId::PopLocalFrame);
    B.edge(Buggy, Exit).edge(Clean, Exit);
    E.Cfg = B.take();
    E.Machine = "Local-frame nesting";
    E.ExpectMay = true;
    Out.push_back(std::move(E));
  }

  // Both arms over-pop: every path reaches the violation -> must.
  {
    VerifyExample E;
    CfgBuilder B("branch-must-pop");
    size_t Entry = B.block(), Left = B.block(), Right = B.block(),
           Exit = B.block();
    B.call(Entry, FnId::PushLocalFrame)
        .edge(Entry, Left)
        .edge(Entry, Right);
    B.call(Left, FnId::PopLocalFrame).call(Left, FnId::PopLocalFrame);
    B.call(Right, FnId::PopLocalFrame).call(Right, FnId::PopLocalFrame);
    B.edge(Left, Exit).edge(Right, Exit);
    E.Cfg = B.take();
    E.Machine = "Local-frame nesting";
    E.ExpectMust = true;
    Out.push_back(std::move(E));
  }

  // A balanced push/pop loop: the fixpoint converges exactly (the
  // back-edge re-delivers the entry interval) and no report fires.
  {
    VerifyExample E;
    CfgBuilder B("loop-balanced-frames");
    size_t Entry = B.block(), Body = B.block(), Exit = B.block();
    B.edge(Entry, Body);
    B.call(Body, FnId::PushLocalFrame).call(Body, FnId::PopLocalFrame);
    B.edge(Body, Body).edge(Body, Exit);
    E.Cfg = B.take();
    Out.push_back(std::move(E));
  }

  // A loop that keeps pushing frames without popping: the interval grows
  // each iteration until widening jumps it to [0, Bound], after which the
  // fixpoint closes. The frame machine declares no push-side violation,
  // so no report may appear.
  {
    VerifyExample E;
    CfgBuilder B("loop-widen-frame-growth");
    size_t Entry = B.block(), Body = B.block(), Exit = B.block();
    B.edge(Entry, Body);
    B.call(Body, FnId::PushLocalFrame);
    B.edge(Body, Body).edge(Body, Exit);
    E.Cfg = B.take();
    E.ExpectWidening = true;
    Out.push_back(std::move(E));
  }

  // A critical-section acquire inside a loop: the second trip around
  // acquires inside the still-open section. Every path to exit passes the
  // loop body at least twice, so the nested acquire is a must-bug.
  {
    VerifyExample E;
    CfgBuilder B("loop-nested-critical");
    size_t Entry = B.block(), Body = B.block(), Exit = B.block();
    B.call(Entry, FnId::GetPrimitiveArrayCritical).edge(Entry, Body);
    B.call(Body, FnId::GetPrimitiveArrayCritical);
    B.edge(Body, Body).edge(Body, Exit);
    E.Cfg = B.take();
    E.Machine = "Critical-section nesting";
    E.ExpectMust = true;
    Out.push_back(std::move(E));
  }

  // Monitor balance across a diamond: one arm exits the monitor twice.
  {
    VerifyExample E;
    CfgBuilder B("branch-may-monitor-exit");
    size_t Entry = B.block(), Buggy = B.block(), Clean = B.block(),
           Exit = B.block();
    B.call(Entry, FnId::MonitorEnter)
        .edge(Entry, Buggy)
        .edge(Entry, Clean);
    B.call(Buggy, FnId::MonitorExit).call(Buggy, FnId::MonitorExit);
    B.call(Clean, FnId::MonitorExit);
    B.edge(Buggy, Exit).edge(Clean, Exit);
    E.Cfg = B.take();
    E.Machine = "Monitor balance";
    E.ExpectMay = true;
    Out.push_back(std::move(E));
  }

  return Out;
}

} // namespace

const std::vector<VerifyExample> &
jinn::analysis::verify::verifyExamples() {
  static const std::vector<VerifyExample> Examples = buildExamples();
  return Examples;
}
