//===- analysis/SpecLint.h - Static checks over machine specifications ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spec-level static analyzer behind tools/jinn-speclint: a suite of
/// lint passes over MachineModels that catches malformed specifications
/// before synthesis ever runs —
///
///   reachability   states unreachable from the start state, transitions
///                  naming undeclared states, selectors matching zero
///                  functions, trigger-carrying transitions without an
///                  action (Algorithm 1 would install a hook around a null
///                  action)
///   determinism    two transitions out of one state enabled at the same
///                  language-transition point with different non-error
///                  targets (guarded checks into "Error: *" states are the
///                  specification idiom, not nondeterminism)
///   pushdown       counter sanity for machines with a declared
///                  CounterSpec: pops without reachable pushes (permanent
///                  underflow), pushes without pops (monotone growth),
///                  pops on epsilon transitions (no hook site guards
///                  zero), and unbounded counters
///   coverage       blind spots: functions no machine observes at all,
///                  and machines observing no function at all (inert in
///                  their universe)
///   consistency    selector Description strings reused for different
///                  match sets; SynthesisStats re-derived from the
///                  relevance matrix and compared to what Algorithm 1
///                  actually installed
///
/// Error-named states ("Error: ...") are treated as reachable whenever the
/// machine carries any checking action: every action may report a
/// violation, which is the implicit edge into its error states (the
/// local-reference machine's overflow state, for example, is entered from
/// inside the acquire action).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_ANALYSIS_SPECLINT_H
#define JINN_ANALYSIS_SPECLINT_H

#include "analysis/SpecModel.h"
#include "synth/Synthesizer.h"

#include <string>
#include <vector>

namespace jinn::analysis {

enum class Severity : uint8_t { Error, Warning, Info };

const char *severityName(Severity S);

/// One lint finding.
struct Finding {
  Severity S = Severity::Info;
  std::string Check;   ///< "reachability/unreachable-state", ...
  std::string Machine; ///< owning machine ("" for cross-machine findings)
  std::string Detail;
};

struct LintOptions {
  /// When set, the stats Algorithm 1 reported for these machines; the
  /// consistency pass re-derives every count from the relevance matrix and
  /// reports any disagreement as an error.
  const synth::SynthesisStats *Stats = nullptr;
  /// Emit INFO-class findings (coverage summaries). On for the CLI report,
  /// usually off in tests.
  bool IncludeInfo = true;
};

struct LintReport {
  std::vector<Finding> Findings;

  size_t count(Severity S) const {
    size_t N = 0;
    for (const Finding &F : Findings)
      N += F.S == S;
    return N;
  }
  bool hasErrors() const { return count(Severity::Error) > 0; }

  /// Findings of one check class (prefix match on the check name).
  std::vector<const Finding *> named(const std::string &CheckPrefix) const;
};

/// Runs every lint pass over \p Models (which must share one function
/// universe — lint JNI and Python models in separate calls).
LintReport lintMachines(const std::vector<MachineModel> &Models,
                        const LintOptions &Opts = {});

/// True when \p State follows the error-state naming convention.
bool isErrorState(const std::string &State);

} // namespace jinn::analysis

#endif // JINN_ANALYSIS_SPECLINT_H
