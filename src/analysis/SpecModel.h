//===- analysis/SpecModel.h - Analyzable model of machine specs ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads StateMachineSpec objects into an explicit, analyzable model: each
/// transition's FunctionSelector is resolved to the concrete set of FFI
/// functions it matches (through the same spec::matchedFunctions the
/// synthesizer uses), and the states/transitions become a plain graph the
/// lint passes (SpecLint.h) can walk. The same model form covers both the
/// JNI machines (a 229-function universe from JniFunctions.def) and the
/// Python checker's machines of §7 (a universe built from pyFnSpecs).
///
/// From the models the relevance matrix is derived: per machine, the set
/// of functions its synthesized pre (Call:C->Java) and post
/// (Return:Java->C) hooks observe. The matrix re-derives every
/// SynthesisStats count (the consistency lint) and feeds static check
/// elision — functions outside every machine's relevance set get no hook
/// and are skipped by the interpose dispatcher's sparse table.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_ANALYSIS_SPECMODEL_H
#define JINN_ANALYSIS_SPECMODEL_H

#include "spec/StateMachine.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace jinn::analysis {

/// The function universe a model is built over: a name plus the ordered
/// list of function names index positions refer to.
struct FunctionUniverse {
  std::string Name; ///< "JNI" / "Python/C"
  std::vector<std::string> Functions;
  size_t size() const { return Functions.size(); }
};

/// The 229 JNI functions of JniFunctions.def, in FnId order.
const FunctionUniverse &jniUniverse();
/// The Python/C API functions the §7 checker covers (pyFnSpecs order).
const FunctionUniverse &pythonUniverse();

/// A set of functions out of one universe (a dense bitset over indices).
class FnSet {
public:
  FnSet() = default;
  explicit FnSet(size_t Universe) : Bits(Universe, false) {}

  size_t universe() const { return Bits.size(); }
  void set(size_t Index) { Bits[Index] = true; }
  bool test(size_t Index) const { return Index < Bits.size() && Bits[Index]; }

  size_t count() const {
    size_t N = 0;
    for (bool B : Bits)
      N += B;
    return N;
  }
  bool empty() const { return count() == 0; }

  bool intersects(const FnSet &Other) const {
    size_t N = std::min(Bits.size(), Other.Bits.size());
    for (size_t I = 0; I < N; ++I)
      if (Bits[I] && Other.Bits[I])
        return true;
    return false;
  }

  FnSet &operator|=(const FnSet &Other) {
    if (Bits.size() < Other.Bits.size())
      Bits.resize(Other.Bits.size(), false);
    for (size_t I = 0; I < Other.Bits.size(); ++I)
      if (Other.Bits[I])
        Bits[I] = true;
    return *this;
  }

  bool operator==(const FnSet &Other) const { return Bits == Other.Bits; }
  bool operator!=(const FnSet &Other) const { return !(*this == Other); }

  std::vector<size_t> members() const {
    std::vector<size_t> Out;
    for (size_t I = 0; I < Bits.size(); ++I)
      if (Bits[I])
        Out.push_back(I);
    return Out;
  }

private:
  std::vector<bool> Bits;
};

/// One resolved language-transition trigger of a transition.
struct TriggerModel {
  spec::Direction Dir = spec::Direction::CallCToJava;
  spec::FunctionSelector::Kind SelectorKind =
      spec::FunctionSelector::Kind::AllJniFunctions;
  std::string Description;
  /// AnyNativeMethod selectors trigger at the native-method boundary and
  /// match no FFI function; Matches stays empty for them.
  bool NativeSide = false;
  FnSet Matches;
};

/// One state transition with resolved triggers.
struct TransitionModel {
  std::string From, To;
  size_t Index = 0; ///< position in the spec's transition list
  bool HasAction = false;
  /// No triggers and no action: VM-internal bookkeeping declared for
  /// documentation (the exception machine's Cleared<->Pending edges).
  bool Epsilon = false;
  /// Declared counter move (pushdown machines); None for plain FSM edges.
  spec::CounterOp Counter = spec::CounterOp::None;
  /// Declared violation text of a spec-decidable error transition; empty
  /// for value-dependent checks (analysis/verify synthesizes reports only
  /// from declared texts).
  std::string Violation;
  std::vector<TriggerModel> Triggers;
};

/// One machine loaded into the analyzable form.
struct MachineModel {
  std::string Name;
  const FunctionUniverse *Universe = nullptr;
  std::vector<std::string> States;
  std::string StartState; ///< States[0] by the spec convention
  std::vector<TransitionModel> Transitions;
  /// The machine's declared bounded counter (empty name = plain FSM).
  spec::CounterSpec Counter;

  bool hasCounter() const { return Counter.declared(); }
};

/// Loads one JNI machine spec (resolving selectors over jniUniverse()).
MachineModel buildModel(const spec::StateMachineSpec &Spec);

/// Models of the Python checker's three machines ("Reference ownership",
/// "GIL state", "Exception state"), derived from the pyFnSpecs table over
/// pythonUniverse().
std::vector<MachineModel> buildPythonModels();

/// Per-machine function relevance derived from a model.
struct MachineRelevance {
  std::string Machine;
  FnSet Pre;  ///< functions observed at Call:C->Java (pre hooks)
  FnSet Post; ///< functions observed at Return:Java->C (post hooks)
  size_t NativeEntryTriggers = 0; ///< Call:Java->C triggers
  size_t NativeExitTriggers = 0;  ///< Return:C->Java triggers
  /// Hook multiset counts exactly as Algorithm 1 installs them (a function
  /// matched by two triggers of one machine counts twice).
  size_t PreHooks = 0;
  size_t PostHooks = 0;
};

/// The full relevance matrix: per machine rows plus the unions the elision
/// and blind-spot analyses read.
struct RelevanceMatrix {
  const FunctionUniverse *Universe = nullptr;
  std::vector<MachineRelevance> Machines;
  FnSet AnyPre, AnyPost; ///< union of pre / post sets over all machines
  FnSet Any;             ///< AnyPre | AnyPost
  /// Union restricted to non-all selectors: what remains observed when the
  /// blanket all-function machines are discounted (blind-spot reporting).
  FnSet SpecificAny;
  size_t TotalTransitions = 0;
  size_t TotalPreHooks = 0;
  size_t TotalPostHooks = 0;
  size_t TotalNativeEntry = 0;
  size_t TotalNativeExit = 0;

  const MachineRelevance *rowFor(const std::string &Machine) const {
    for (const MachineRelevance &Row : Machines)
      if (Row.Machine == Machine)
        return &Row;
    return nullptr;
  }
};

/// Builds the matrix for models over one shared universe.
RelevanceMatrix buildRelevanceMatrix(const std::vector<MachineModel> &Models);

} // namespace jinn::analysis

#endif // JINN_ANALYSIS_SPECMODEL_H
