//===- analysis/SpecLint.cpp - Static checks over machine specs ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecLint.h"

#include "support/Format.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jinn;
using namespace jinn::analysis;
using jinn::spec::Direction;
using jinn::spec::FunctionSelector;

const char *jinn::analysis::severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "ERROR";
  case Severity::Warning:
    return "WARNING";
  case Severity::Info:
    return "INFO";
  }
  return "?";
}

bool jinn::analysis::isErrorState(const std::string &State) {
  return State.rfind("Error:", 0) == 0;
}

std::vector<const Finding *>
LintReport::named(const std::string &CheckPrefix) const {
  std::vector<const Finding *> Out;
  for (const Finding &F : Findings)
    if (F.Check.rfind(CheckPrefix, 0) == 0)
      Out.push_back(&F);
  return Out;
}

namespace {

class Linter {
public:
  Linter(const std::vector<MachineModel> &Models, const LintOptions &Opts)
      : Models(Models), Opts(Opts) {}

  LintReport run() {
    for (const MachineModel &Model : Models) {
      checkStates(Model);
      checkTransitions(Model);
      checkDeterminism(Model);
    }
    checkDescriptions();
    checkCoverage();
    checkStats();
    return std::move(Report);
  }

private:
  void add(Severity S, std::string Check, std::string Machine,
           std::string Detail) {
    if (S == Severity::Info && !Opts.IncludeInfo)
      return;
    Report.Findings.push_back(
        {S, std::move(Check), std::move(Machine), std::move(Detail)});
  }

  /// Reachability: flood from the start state along the transition edges
  /// (epsilon edges included — the exception machine's bookkeeping edges
  /// are how "Pending" becomes reachable). A state named "Error: ..." is
  /// additionally reachable through the implicit violation edge of any
  /// checking action. Transitions naming states missing from the declared
  /// list are reported separately.
  void checkStates(const MachineModel &Model) {
    std::set<std::string> Declared(Model.States.begin(), Model.States.end());
    bool AnyAction = false;
    for (const TransitionModel &T : Model.Transitions) {
      AnyAction |= T.HasAction;
      for (const std::string *State : {&T.From, &T.To})
        if (!Declared.count(*State))
          add(Severity::Error, "reachability/undeclared-state", Model.Name,
              formatString("transition #%zu (%s -> %s) names state \"%s\", "
                           "which is not in the declared state list",
                           T.Index, T.From.c_str(), T.To.c_str(),
                           State->c_str()));
    }

    std::set<std::string> Reached;
    if (!Model.StartState.empty()) {
      Reached.insert(Model.StartState);
      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (const TransitionModel &T : Model.Transitions)
          if (Reached.count(T.From) && Reached.insert(T.To).second)
            Changed = true;
      }
    }
    for (const std::string &State : Model.States) {
      if (Reached.count(State))
        continue;
      if (isErrorState(State) && AnyAction)
        continue; // reachable through any action's implicit violation edge
      add(Severity::Error, "reachability/unreachable-state", Model.Name,
          formatString("state \"%s\" is unreachable from the start state "
                       "\"%s\"",
                       State.c_str(), Model.StartState.c_str()));
    }
  }

  void checkTransitions(const MachineModel &Model) {
    for (const TransitionModel &T : Model.Transitions) {
      if (T.Epsilon)
        continue; // declared VM-internal bookkeeping
      if (!T.HasAction)
        add(Severity::Error, "transition/missing-action", Model.Name,
            formatString("transition #%zu (%s -> %s) has triggers but no "
                         "action; Algorithm 1 would install a hook around "
                         "a null action",
                         T.Index, T.From.c_str(), T.To.c_str()));
      if (T.Triggers.empty()) {
        add(Severity::Warning, "transition/dead-action", Model.Name,
            formatString("transition #%zu (%s -> %s) carries an action but "
                         "maps to no language transition; it can never fire",
                         T.Index, T.From.c_str(), T.To.c_str()));
        continue;
      }
      for (const TriggerModel &Trigger : T.Triggers)
        if (!Trigger.NativeSide && Trigger.Matches.empty())
          add(Severity::Error, "selector/zero-match", Model.Name,
              formatString("transition #%zu (%s -> %s): selector \"%s\" at "
                           "%s matches zero of the %zu %s functions",
                           T.Index, T.From.c_str(), T.To.c_str(),
                           Trigger.Description.c_str(),
                           spec::directionName(Trigger.Dir),
                           Model.Universe->size(),
                           Model.Universe->Name.c_str()));
    }
  }

  static bool triggersOverlap(const TriggerModel &A, const TriggerModel &B) {
    if (A.Dir != B.Dir)
      return false;
    if (A.NativeSide || B.NativeSide)
      return A.NativeSide && B.NativeSide;
    return A.Matches.intersects(B.Matches);
  }

  /// Determinism: two transitions out of one state, enabled at the same
  /// language-transition point, with *different* targets. Same-target
  /// pairs are the intended "both actions run" list semantics; guarded
  /// checks into error states are excluded — every use-check coexists with
  /// the regular transitions out of its state by design.
  void checkDeterminism(const MachineModel &Model) {
    for (size_t I = 0; I < Model.Transitions.size(); ++I) {
      const TransitionModel &A = Model.Transitions[I];
      if (isErrorState(A.To))
        continue;
      for (size_t J = I + 1; J < Model.Transitions.size(); ++J) {
        const TransitionModel &B = Model.Transitions[J];
        if (isErrorState(B.To) || A.From != B.From || A.To == B.To)
          continue;
        for (const TriggerModel &TrigA : A.Triggers)
          for (const TriggerModel &TrigB : B.Triggers)
            if (triggersOverlap(TrigA, TrigB)) {
              add(Severity::Error, "determinism/conflict", Model.Name,
                  formatString(
                      "transitions #%zu (%s -> %s) and #%zu (%s -> %s) are "
                      "both enabled at %s for overlapping function sets "
                      "(\"%s\" vs \"%s\")",
                      A.Index, A.From.c_str(), A.To.c_str(), B.Index,
                      B.From.c_str(), B.To.c_str(),
                      spec::directionName(TrigA.Dir),
                      TrigA.Description.c_str(), TrigB.Description.c_str()));
              goto nextPair; // one finding per transition pair
            }
      nextPair:;
      }
    }
  }

  /// Cross-machine description consistency: a Description reused for a
  /// different match set means the human-readable spec and the executable
  /// spec disagree somewhere. Also: one-function selectors whose
  /// description drifted from the function's name.
  void checkDescriptions() {
    struct FirstUse {
      const MachineModel *Model;
      const TransitionModel *Transition;
      const TriggerModel *Trigger;
    };
    std::map<std::string, FirstUse> Seen;
    std::set<std::string> Flagged;
    for (const MachineModel &Model : Models)
      for (const TransitionModel &T : Model.Transitions)
        for (const TriggerModel &Trigger : T.Triggers) {
          if (Trigger.NativeSide)
            continue;
          if (Trigger.SelectorKind == FunctionSelector::Kind::OneJniFunction) {
            std::vector<size_t> Members = Trigger.Matches.members();
            if (Members.size() == 1 &&
                Trigger.Description !=
                    Model.Universe->Functions[Members.front()])
              add(Severity::Warning, "consistency/one-selector-name",
                  Model.Name,
                  formatString("transition #%zu: one-function selector is "
                               "described as \"%s\" but matches %s",
                               T.Index, Trigger.Description.c_str(),
                               Model.Universe->Functions[Members.front()]
                                   .c_str()));
          }
          auto [It, Inserted] =
              Seen.insert({Trigger.Description, {&Model, &T, &Trigger}});
          if (Inserted || It->second.Trigger->Matches == Trigger.Matches)
            continue;
          if (!Flagged.insert(Trigger.Description).second)
            continue; // one finding per colliding description
          add(Severity::Warning, "consistency/description-collision",
              Model.Name,
              formatString("selector description \"%s\" matches %zu "
                           "function(s) here but %zu in machine \"%s\" — "
                           "the same words describe different sets",
                           Trigger.Description.c_str(),
                           Trigger.Matches.count(),
                           It->second.Trigger->Matches.count(),
                           It->second.Model->Name.c_str()));
        }
  }

  /// Coverage: blind spots among the universe's functions, reported both
  /// absolutely and with blanket all-function selectors discounted.
  void checkCoverage() {
    RelevanceMatrix Matrix = buildRelevanceMatrix(Models);
    if (!Matrix.Universe)
      return;
    size_t N = Matrix.Universe->size();
    std::vector<std::string> Blind;
    for (size_t I = 0; I < N; ++I)
      if (!Matrix.Any.test(I))
        Blind.push_back(Matrix.Universe->Functions[I]);
    if (!Blind.empty()) {
      std::string Names;
      for (size_t I = 0; I < Blind.size() && I < 8; ++I)
        Names += (I ? ", " : "") + Blind[I];
      if (Blind.size() > 8)
        Names += ", ...";
      add(Severity::Warning, "coverage/blind-spot", "",
          formatString("%zu of %zu %s functions are observed by no machine "
                       "at any language transition: %s",
                       Blind.size(), N, Matrix.Universe->Name.c_str(),
                       Names.c_str()));
    } else {
      add(Severity::Info, "coverage/blind-spot", "",
          formatString("all %zu %s functions are observed by at least one "
                       "machine (%zu by a function-specific selector)",
                       N, Matrix.Universe->Name.c_str(),
                       Matrix.SpecificAny.count()));
    }
  }

  /// Consistency with Algorithm 1: every SynthesisStats count re-derived
  /// from the relevance matrix must equal what the synthesizer installed.
  void checkStats() {
    if (!Opts.Stats)
      return;
    RelevanceMatrix Matrix = buildRelevanceMatrix(Models);
    const synth::SynthesisStats &S = *Opts.Stats;
    auto Expect = [&](const char *What, size_t Derived, size_t Actual) {
      if (Derived == Actual)
        return;
      add(Severity::Error, "consistency/stats-mismatch", "",
          formatString("%s: the relevance matrix derives %zu but Algorithm "
                       "1 reported %zu",
                       What, Derived, Actual));
    };
    Expect("machine count", Models.size(), S.MachineCount);
    Expect("state transitions", Matrix.TotalTransitions,
           S.StateTransitionCount);
    Expect("JNI pre hooks", Matrix.TotalPreHooks, S.JniPreHooks);
    Expect("JNI post hooks", Matrix.TotalPostHooks, S.JniPostHooks);
    Expect("native entry actions", Matrix.TotalNativeEntry,
           S.NativeEntryActions);
    Expect("native exit actions", Matrix.TotalNativeExit,
           S.NativeExitActions);
    if (Opts.IncludeInfo && !Report.hasErrors())
      add(Severity::Info, "consistency/stats-match", "",
          formatString("all %zu instrumentation points re-derived from the "
                       "relevance matrix match Algorithm 1's output",
                       S.instrumentationPoints()));
  }

  const std::vector<MachineModel> &Models;
  const LintOptions &Opts;
  LintReport Report;
};

} // namespace

LintReport jinn::analysis::lintMachines(
    const std::vector<MachineModel> &Models, const LintOptions &Opts) {
  return Linter(Models, Opts).run();
}
