//===- analysis/SpecLint.cpp - Static checks over machine specs ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SpecLint.h"

#include "support/Format.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jinn;
using namespace jinn::analysis;
using jinn::spec::Direction;
using jinn::spec::FunctionSelector;

const char *jinn::analysis::severityName(Severity S) {
  switch (S) {
  case Severity::Error:
    return "ERROR";
  case Severity::Warning:
    return "WARNING";
  case Severity::Info:
    return "INFO";
  }
  return "?";
}

bool jinn::analysis::isErrorState(const std::string &State) {
  return State.rfind("Error:", 0) == 0;
}

std::vector<const Finding *>
LintReport::named(const std::string &CheckPrefix) const {
  std::vector<const Finding *> Out;
  for (const Finding &F : Findings)
    if (F.Check.rfind(CheckPrefix, 0) == 0)
      Out.push_back(&F);
  return Out;
}

namespace {

class Linter {
public:
  Linter(const std::vector<MachineModel> &Models, const LintOptions &Opts)
      : Models(Models), Opts(Opts) {}

  LintReport run() {
    for (const MachineModel &Model : Models) {
      checkStates(Model);
      checkTransitions(Model);
      checkDeterminism(Model);
      checkPushdown(Model);
    }
    checkDescriptions();
    checkCoverage();
    checkStats();
    return std::move(Report);
  }

private:
  void add(Severity S, std::string Check, std::string Machine,
           std::string Detail) {
    if (S == Severity::Info && !Opts.IncludeInfo)
      return;
    Report.Findings.push_back(
        {S, std::move(Check), std::move(Machine), std::move(Detail)});
  }

  /// Reachability: flood from the start state along the transition edges
  /// (epsilon edges included — the exception machine's bookkeeping edges
  /// are how "Pending" becomes reachable). A state named "Error: ..." is
  /// additionally reachable through the implicit violation edge of any
  /// checking action. Transitions naming states missing from the declared
  /// list are reported separately.
  void checkStates(const MachineModel &Model) {
    std::set<std::string> Declared(Model.States.begin(), Model.States.end());
    bool AnyAction = false;
    for (const TransitionModel &T : Model.Transitions) {
      AnyAction |= T.HasAction;
      for (const std::string *State : {&T.From, &T.To})
        if (!Declared.count(*State))
          add(Severity::Error, "reachability/undeclared-state", Model.Name,
              formatString("transition #%zu (%s -> %s) names state \"%s\", "
                           "which is not in the declared state list",
                           T.Index, T.From.c_str(), T.To.c_str(),
                           State->c_str()));
    }

    std::set<std::string> Reached = reachableStates(Model);
    for (const std::string &State : Model.States) {
      if (Reached.count(State))
        continue;
      if (isErrorState(State) && AnyAction)
        continue; // reachable through any action's implicit violation edge
      add(Severity::Error, "reachability/unreachable-state", Model.Name,
          formatString("state \"%s\" is unreachable from the start state "
                       "\"%s\"",
                       State.c_str(), Model.StartState.c_str()));
    }
  }

  void checkTransitions(const MachineModel &Model) {
    for (const TransitionModel &T : Model.Transitions) {
      if (T.Epsilon)
        continue; // declared VM-internal bookkeeping
      if (!T.HasAction)
        add(Severity::Error, "transition/missing-action", Model.Name,
            formatString("transition #%zu (%s -> %s) has triggers but no "
                         "action; Algorithm 1 would install a hook around "
                         "a null action",
                         T.Index, T.From.c_str(), T.To.c_str()));
      // A declared violation text is a spec-decidable error report; the
      // static analyses synthesize it from the transition's target label.
      // A non-error target makes the report invisible to every consumer
      // of the FSM shape while the dynamic action still fires — exactly
      // the drift mutation testing showed no other oracle can see.
      if (!T.Violation.empty() && !isErrorState(T.To))
        add(Severity::Error, "transition/violation-without-error-target",
            Model.Name,
            formatString("transition #%zu (%s -> %s) declares the "
                         "violation text \"%s\" but does not target an "
                         "error state",
                         T.Index, T.From.c_str(), T.To.c_str(),
                         T.Violation.c_str()));
      if (T.Triggers.empty()) {
        add(Severity::Warning, "transition/dead-action", Model.Name,
            formatString("transition #%zu (%s -> %s) carries an action but "
                         "maps to no language transition; it can never fire",
                         T.Index, T.From.c_str(), T.To.c_str()));
        continue;
      }
      for (const TriggerModel &Trigger : T.Triggers)
        if (!Trigger.NativeSide && Trigger.Matches.empty())
          add(Severity::Error, "selector/zero-match", Model.Name,
              formatString("transition #%zu (%s -> %s): selector \"%s\" at "
                           "%s matches zero of the %zu %s functions",
                           T.Index, T.From.c_str(), T.To.c_str(),
                           Trigger.Description.c_str(),
                           spec::directionName(Trigger.Dir),
                           Model.Universe->size(),
                           Model.Universe->Name.c_str()));
    }
  }

  /// Pushdown facility checks. A machine with a declared CounterSpec is a
  /// one-counter pushdown system: Push/Pop-annotated transitions move the
  /// counter, targets named "Error: ..." carry the implicit guards
  /// (pop-at-zero, push-at-bound). The passes flag specs whose counter can
  /// never balance:
  ///
  ///   undeclared-counter     a Push/Pop on a machine without a CounterSpec
  ///   underflow-on-epsilon   a Pop on an epsilon transition: VM-internal
  ///                          bookkeeping would decrement with no hook site
  ///                          to guard zero
  ///   unmatched-pop          reachable pops but no reachable non-error
  ///                          push: the guarded pop can never fire and
  ///                          every pop underflows
  ///   unmatched-push         reachable non-error pushes but no non-error
  ///                          pop: the counter only grows
  ///   unbounded-counter      Bound == 0: the abstract domain cannot widen
  ///                          to a finite interval and the dynamic shadow
  ///                          has no overflow backstop
  void checkPushdown(const MachineModel &Model) {
    std::set<std::string> Reached = reachableStates(Model);
    size_t Pushes = 0, Pops = 0;
    size_t PushesToError = 0, PopsToError = 0;
    for (const TransitionModel &T : Model.Transitions) {
      if (T.Counter == spec::CounterOp::None)
        continue;
      if (!Model.hasCounter()) {
        add(Severity::Error, "pushdown/undeclared-counter", Model.Name,
            formatString("transition #%zu (%s -> %s) declares counter op "
                         "\"%s\" but the machine declares no counter",
                         T.Index, T.From.c_str(), T.To.c_str(),
                         spec::counterOpName(T.Counter)));
        continue;
      }
      if (T.Epsilon && T.Counter == spec::CounterOp::Pop) {
        add(Severity::Error, "pushdown/underflow-on-epsilon", Model.Name,
            formatString("transition #%zu (%s -> %s) pops counter \"%s\" on "
                         "an epsilon transition; there is no hook site to "
                         "guard against underflow",
                         T.Index, T.From.c_str(), T.To.c_str(),
                         Model.Counter.Name.c_str()));
        continue;
      }
      if (!Reached.count(T.From) && !isErrorState(T.From))
        continue; // unreachable moves are covered by the reachability pass
      bool ErrorTarget = isErrorState(T.To);
      if (T.Counter == spec::CounterOp::Push) {
        ++Pushes;
        PushesToError += ErrorTarget;
      } else {
        ++Pops;
        PopsToError += ErrorTarget;
      }
    }
    if (!Model.hasCounter())
      return;
    if (Pops > 0 && Pushes - PushesToError == 0)
      add(Severity::Error, "pushdown/unmatched-pop", Model.Name,
          formatString("counter \"%s\" is popped by %zu reachable "
                       "transition(s) but pushed by none: the guarded pop "
                       "can never fire and every pop underflows",
                       Model.Counter.Name.c_str(), Pops));
    if (Pushes - PushesToError > 0 && Pops - PopsToError == 0)
      add(Severity::Warning, "pushdown/unmatched-push", Model.Name,
          formatString("counter \"%s\" is pushed by %zu reachable "
                       "transition(s) but popped by none: the counter can "
                       "only grow",
                       Model.Counter.Name.c_str(),
                       Pushes - PushesToError));
    if (Pushes + Pops == 0)
      add(Severity::Warning, "pushdown/unused-counter", Model.Name,
          formatString("counter \"%s\" is declared but no reachable "
                       "transition moves it",
                       Model.Counter.Name.c_str()));
    if (Model.Counter.Bound == 0)
      add(Severity::Warning, "pushdown/unbounded-counter", Model.Name,
          formatString("counter \"%s\" declares no bound; the abstract "
                       "interpreter cannot widen it to a finite interval "
                       "and the dynamic shadow has no overflow backstop",
                       Model.Counter.Name.c_str()));
  }

  /// The flood fill checkStates() uses, shared with the pushdown pass.
  static std::set<std::string> reachableStates(const MachineModel &Model) {
    std::set<std::string> Reached;
    if (Model.StartState.empty())
      return Reached;
    Reached.insert(Model.StartState);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const TransitionModel &T : Model.Transitions)
        if (Reached.count(T.From) && Reached.insert(T.To).second)
          Changed = true;
    }
    return Reached;
  }

  static bool triggersOverlap(const TriggerModel &A, const TriggerModel &B) {
    if (A.Dir != B.Dir)
      return false;
    if (A.NativeSide || B.NativeSide)
      return A.NativeSide && B.NativeSide;
    return A.Matches.intersects(B.Matches);
  }

  /// Determinism: two transitions out of one state, enabled at the same
  /// language-transition point, with *different* targets. Same-target
  /// pairs are the intended "both actions run" list semantics; guarded
  /// checks into error states are excluded — every use-check coexists with
  /// the regular transitions out of its state by design.
  void checkDeterminism(const MachineModel &Model) {
    for (size_t I = 0; I < Model.Transitions.size(); ++I) {
      const TransitionModel &A = Model.Transitions[I];
      if (isErrorState(A.To))
        continue;
      for (size_t J = I + 1; J < Model.Transitions.size(); ++J) {
        const TransitionModel &B = Model.Transitions[J];
        if (isErrorState(B.To) || A.From != B.From || A.To == B.To)
          continue;
        for (const TriggerModel &TrigA : A.Triggers)
          for (const TriggerModel &TrigB : B.Triggers)
            if (triggersOverlap(TrigA, TrigB)) {
              add(Severity::Error, "determinism/conflict", Model.Name,
                  formatString(
                      "transitions #%zu (%s -> %s) and #%zu (%s -> %s) are "
                      "both enabled at %s for overlapping function sets "
                      "(\"%s\" vs \"%s\")",
                      A.Index, A.From.c_str(), A.To.c_str(), B.Index,
                      B.From.c_str(), B.To.c_str(),
                      spec::directionName(TrigA.Dir),
                      TrigA.Description.c_str(), TrigB.Description.c_str()));
              goto nextPair; // one finding per transition pair
            }
      nextPair:;
      }
    }
  }

  /// Cross-machine description consistency: a Description reused for a
  /// different match set means the human-readable spec and the executable
  /// spec disagree somewhere. Also: one-function selectors whose
  /// description drifted from the function's name.
  void checkDescriptions() {
    struct FirstUse {
      const MachineModel *Model;
      const TransitionModel *Transition;
      const TriggerModel *Trigger;
    };
    std::map<std::string, FirstUse> Seen;
    std::set<std::string> Flagged;
    for (const MachineModel &Model : Models)
      for (const TransitionModel &T : Model.Transitions)
        for (const TriggerModel &Trigger : T.Triggers) {
          if (Trigger.NativeSide)
            continue;
          if (Trigger.SelectorKind == FunctionSelector::Kind::OneJniFunction) {
            std::vector<size_t> Members = Trigger.Matches.members();
            if (Members.size() == 1 &&
                Trigger.Description !=
                    Model.Universe->Functions[Members.front()])
              add(Severity::Warning, "consistency/one-selector-name",
                  Model.Name,
                  formatString("transition #%zu: one-function selector is "
                               "described as \"%s\" but matches %s",
                               T.Index, Trigger.Description.c_str(),
                               Model.Universe->Functions[Members.front()]
                                   .c_str()));
          }
          auto [It, Inserted] =
              Seen.insert({Trigger.Description, {&Model, &T, &Trigger}});
          if (Inserted || It->second.Trigger->Matches == Trigger.Matches)
            continue;
          if (!Flagged.insert(Trigger.Description).second)
            continue; // one finding per colliding description
          add(Severity::Warning, "consistency/description-collision",
              Model.Name,
              formatString("selector description \"%s\" matches %zu "
                           "function(s) here but %zu in machine \"%s\" — "
                           "the same words describe different sets",
                           Trigger.Description.c_str(),
                           Trigger.Matches.count(),
                           It->second.Trigger->Matches.count(),
                           It->second.Model->Name.c_str()));
        }
  }

  /// Coverage: blind spots among the universe's functions, reported both
  /// absolutely and with blanket all-function selectors discounted.
  void checkCoverage() {
    RelevanceMatrix Matrix = buildRelevanceMatrix(Models);
    if (!Matrix.Universe)
      return;
    size_t N = Matrix.Universe->size();

    // Machine-level blind spot: a machine observing no function in this
    // universe at any site is silently inert — its checks can never fire.
    // Reported identically for the JNI and Python/C universes (epsilon
    // bookkeeping alone does not make a machine observable).
    for (size_t M = 0; M < Matrix.Machines.size(); ++M) {
      const MachineRelevance &Row = Matrix.Machines[M];
      if (!Row.Pre.empty() || !Row.Post.empty() ||
          Row.NativeEntryTriggers + Row.NativeExitTriggers > 0)
        continue;
      add(Severity::Error, "coverage/inert-machine", Row.Machine,
          formatString("machine matches zero of the %zu %s functions at "
                       "every language transition; none of its checks can "
                       "ever fire",
                       N, Matrix.Universe->Name.c_str()));
    }
    std::vector<std::string> Blind;
    for (size_t I = 0; I < N; ++I)
      if (!Matrix.Any.test(I))
        Blind.push_back(Matrix.Universe->Functions[I]);
    if (!Blind.empty()) {
      std::string Names;
      for (size_t I = 0; I < Blind.size() && I < 8; ++I)
        Names += (I ? ", " : "") + Blind[I];
      if (Blind.size() > 8)
        Names += ", ...";
      add(Severity::Warning, "coverage/blind-spot", "",
          formatString("%zu of %zu %s functions are observed by no machine "
                       "at any language transition: %s",
                       Blind.size(), N, Matrix.Universe->Name.c_str(),
                       Names.c_str()));
    } else {
      add(Severity::Info, "coverage/blind-spot", "",
          formatString("all %zu %s functions are observed by at least one "
                       "machine (%zu by a function-specific selector)",
                       N, Matrix.Universe->Name.c_str(),
                       Matrix.SpecificAny.count()));
    }
  }

  /// Consistency with Algorithm 1: every SynthesisStats count re-derived
  /// from the relevance matrix must equal what the synthesizer installed.
  void checkStats() {
    if (!Opts.Stats)
      return;
    RelevanceMatrix Matrix = buildRelevanceMatrix(Models);
    const synth::SynthesisStats &S = *Opts.Stats;
    auto Expect = [&](const char *What, size_t Derived, size_t Actual) {
      if (Derived == Actual)
        return;
      add(Severity::Error, "consistency/stats-mismatch", "",
          formatString("%s: the relevance matrix derives %zu but Algorithm "
                       "1 reported %zu",
                       What, Derived, Actual));
    };
    Expect("machine count", Models.size(), S.MachineCount);
    Expect("state transitions", Matrix.TotalTransitions,
           S.StateTransitionCount);
    Expect("JNI pre hooks", Matrix.TotalPreHooks, S.JniPreHooks);
    Expect("JNI post hooks", Matrix.TotalPostHooks, S.JniPostHooks);
    Expect("native entry actions", Matrix.TotalNativeEntry,
           S.NativeEntryActions);
    Expect("native exit actions", Matrix.TotalNativeExit,
           S.NativeExitActions);
    if (Opts.IncludeInfo && !Report.hasErrors())
      add(Severity::Info, "consistency/stats-match", "",
          formatString("all %zu instrumentation points re-derived from the "
                       "relevance matrix match Algorithm 1's output",
                       S.instrumentationPoints()));
  }

  const std::vector<MachineModel> &Models;
  const LintOptions &Opts;
  LintReport Report;
};

} // namespace

LintReport jinn::analysis::lintMachines(
    const std::vector<MachineModel> &Models, const LintOptions &Opts) {
  return Linter(Models, Opts).run();
}
