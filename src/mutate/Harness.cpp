//===- mutate/Harness.cpp - Kill-rate harness ----------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mutate/Harness.h"

#include "analysis/SpecLint.h"
#include "analysis/verify/Interp.h"
#include "analysis/verify/Lift.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Ops.h"
#include "jinn/JinnAgent.h"
#include "jinn/Report.h"
#include "pyc/PyRuntime.h"
#include "pyjinn/PyChecker.h"
#include "scenarios/PythonScenarios.h"
#include "scenarios/Scenarios.h"
#include "support/Format.h"

#include <algorithm>
#include <thread>
#include <map>
#include <set>

using namespace jinn;
using namespace jinn::mutate;
using namespace jinn::scenarios;

namespace {

/// Campaign seed: fixed so the fuzz section of the fingerprint is
/// deterministic and mutant-vs-baseline diffs are attributable.
constexpr uint64_t FuzzSeed = 0x6d757461; // "muta"

std::string reportLine(const agent::JinnReport &R) {
  return R.Machine + "|" + R.Function + "|" + R.Message;
}

std::string clip(const std::string &S, size_t Max = 160) {
  return S.size() <= Max ? S : S.substr(0, Max) + "...";
}

std::vector<std::string> sortedReports(const agent::JinnReporter &Rep) {
  std::vector<std::string> Lines;
  for (const agent::JinnReport &R : Rep.reports())
    Lines.push_back(reportLine(R));
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

//===----------------------------------------------------------------------===
// Section 1: Table-1 micro matrix under three worlds
//===----------------------------------------------------------------------===

void microLines(std::vector<std::string> &Out) {
  for (const MicroInfo &Info : allMicrobenchmarks()) {
    {
      WorldConfig Cfg;
      Cfg.Checker = CheckerKind::Jinn;
      ScenarioWorld W(Cfg);
      runMicrobenchmark(Info.Id, W);
      W.shutdown();
      Out.push_back(formatString("micro:%s:jinn=%s", Info.ClassName,
                                 outcomeName(classify(W))));
      for (const std::string &R : sortedReports(W.Jinn->reporter()))
        Out.push_back(formatString("micro:%s:jinn-report=%s", Info.ClassName,
                                   R.c_str()));
    }
    {
      WorldConfig Cfg; // bare production VM
      Out.push_back(formatString("micro:%s:bare=%s", Info.ClassName,
                                 outcomeName(runMicroToOutcome(Info.Id, Cfg))));
    }
    {
      WorldConfig Cfg;
      Cfg.Checker = CheckerKind::Xcheck;
      Out.push_back(
          formatString("micro:%s:xcheck=%s", Info.ClassName,
                       outcomeName(runMicroToOutcome(Info.Id, Cfg))));
    }
  }
}

//===----------------------------------------------------------------------===
// Section 2: direct API-contract probes
//===----------------------------------------------------------------------===

void probeLines(std::vector<std::string> &Out) {
  // Bare-world return-code contracts: EnsureLocalCapacity must reject a
  // negative request, and a MonitorExit on a monitor this thread does not
  // own must fail with a pending IllegalMonitorStateException while the
  // genuine matching exit still succeeds.
  {
    ScenarioWorld W((WorldConfig()));
    int NegRc = 999, EnterA = 999, ForeignB = 999, MatchingA = 999;
    bool Pending = false;
    W.runAsNative("MutateProbeContracts", [&](JNIEnv *Env) {
      NegRc = Env->functions->EnsureLocalCapacity(Env, -1);
      jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
      jobject A = Env->functions->AllocObject(Env, Object);
      jobject B = Env->functions->AllocObject(Env, Object);
      EnterA = Env->functions->MonitorEnter(Env, A);
      ForeignB = Env->functions->MonitorExit(Env, B);
      Pending = Env->functions->ExceptionCheck(Env) == JNI_TRUE;
      Env->functions->ExceptionClear(Env);
      MatchingA = Env->functions->MonitorExit(Env, A);
    });
    Out.push_back(formatString("probe:ensure-negative=%d", NegRc));
    Out.push_back(formatString(
        "probe:monitor-exit-foreign=enter:%d,foreign:%d,pending:%d,"
        "matching:%d",
        EnterA, ForeignB, Pending ? 1 : 0, MatchingA));
  }

  // EnsureLocalCapacity must actually grow the frame: 21 locals under an
  // ensured capacity of 24 must neither fail nor overflow the substrate.
  {
    ScenarioWorld W((WorldConfig()));
    int Rc = 999, Live = 0;
    W.runAsNative("MutateProbeEnsureGrows", [&](JNIEnv *Env) {
      Rc = Env->functions->EnsureLocalCapacity(Env, 24);
      jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
      for (int I = 0; I < 20; ++I)
        Live += Env->functions->AllocObject(Env, Object) != nullptr;
    });
    W.shutdown();
    Out.push_back(formatString("probe:ensure-grows=rc:%d,live:%d,outcome:%s",
                               Rc, Live, outcomeName(classify(W))));
  }

  // Attach-frame capacity boundary: a thread attached through the
  // invocation API gets one implicit frame of exactly
  // VmOptions::NativeFrameCapacity (16) locals, so FindClass plus 16
  // allocations is one over and must trip the substrate overflow flag
  // (classified Leak). Every native method invocation pushes its own
  // fresh frame, so only this embedding path observes the attach frame's
  // exact limit — the gap that let a +1-slack substrate mutant survive
  // the original battery.
  {
    ScenarioWorld W((WorldConfig()));
    int AttachRc = 999, Live = 0;
    std::thread Attached([&] {
      JavaVM *Jvm = W.Rt.javaVm();
      JNIEnv *Env = nullptr;
      AttachRc = Jvm->functions->AttachCurrentThread(
          Jvm, &Env, const_cast<char *>("mutate-probe"));
      if (AttachRc != JNI_OK || !Env)
        return;
      jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
      for (int I = 0; I < 16; ++I)
        Live += Env->functions->AllocObject(Env, Object) != nullptr;
      Jvm->functions->DetachCurrentThread(Jvm);
    });
    Attached.join();
    W.shutdown();
    Out.push_back(formatString(
        "probe:frame-boundary=attach:%d,live:%d,outcome:%s", AttachRc, Live,
        outcomeName(classify(W))));
  }

  // Jinn-world false-positive contract: a held monitor plus one rejected
  // foreign exit must stay report-free — the shadow tally must only pop
  // for exits the VM accepted. (The spec-monitorbalance-exit-gate-dropped
  // blind spot: before this probe no oracle sequence exercised a failing
  // MonitorExit at depth > 0.)
  {
    WorldConfig Cfg;
    Cfg.Checker = CheckerKind::Jinn;
    ScenarioWorld W(Cfg);
    W.runAsNative("MutateProbeForeignExit", [&](JNIEnv *Env) {
      jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
      jobject A = Env->functions->AllocObject(Env, Object);
      jobject B = Env->functions->AllocObject(Env, Object);
      Env->functions->MonitorEnter(Env, A);
      Env->functions->MonitorExit(Env, B); // rejected: B is not owned
      Env->functions->ExceptionClear(Env);
      Env->functions->MonitorExit(Env, A); // the legitimate matching exit
    });
    W.shutdown();
    std::vector<std::string> Reports = sortedReports(W.Jinn->reporter());
    std::string Joined;
    for (const std::string &R : Reports)
      Joined += (Joined.empty() ? "" : ";") + R;
    Out.push_back(formatString("probe:jinn-foreign-exit=reports:%zu[%s]",
                               Reports.size(), Joined.c_str()));
  }
}

//===----------------------------------------------------------------------===
// Section 3: Python/C domain (§7)
//===----------------------------------------------------------------------===

void pyUncheckedLines(std::vector<std::string> &Out, const char *Tag,
                      pyc::PyInterp &Interp) {
  for (const Incident &I : Interp.diags().incidents())
    Out.push_back(formatString("py:%s:bare=%s:%s:%s", Tag,
                               incidentKindName(I.Kind), I.Channel.c_str(),
                               clip(I.Message).c_str()));
}

void pyCheckedLines(std::vector<std::string> &Out, const char *Tag,
                    const pyjinn::PyChecker &Checker) {
  for (const pyjinn::PyViolation &V : Checker.violations())
    Out.push_back(formatString("py:%s:checked=%s:%s:%s", Tag,
                               V.Machine.c_str(), V.Function.c_str(),
                               clip(V.Message).c_str()));
}

void pyLines(std::vector<std::string> &Out) {
  // Unchecked: the interpreter's own incidents are the oracle (the
  // substrate mutants must not be maskable by the checker's suppression).
  {
    pyc::PyInterp I;
    runPyDangleBug(I);
    pyUncheckedLines(Out, "dangle", I);
  }
  {
    pyc::PyInterp I;
    pyc::PyObject *O = I.alloc(pyc::PyKind::Int);
    I.decref(O); // dies
    I.decref(O); // double free: the interpreter must simulate the crash
    pyUncheckedLines(Out, "double-decref", I);
  }
  // Checked: the §7 checker's violations are the oracle.
  struct {
    const char *Tag;
    void (*Run)(pyc::PyInterp &);
  } Checked[] = {
      {"gil", runPyGilBug},
      {"exception", runPyExceptionBug},
      {"clean", runPyCleanExtension},
  };
  for (const auto &S : Checked) {
    pyc::PyInterp I;
    pyjinn::PyChecker C(I);
    S.Run(I);
    pyCheckedLines(Out, S.Tag, C);
  }
  {
    pyc::PyInterp I;
    pyjinn::PyChecker C(I);
    runPyDangleBug(I);
    pyCheckedLines(Out, "dangle", C);
  }
}

//===----------------------------------------------------------------------===
// Sections 4+5: spec-structural oracles (op table, speclint)
//===----------------------------------------------------------------------===

void structuralLines(std::vector<std::string> &Out) {
  std::vector<analysis::MachineModel> Models = fuzz::jniMachineModels();
  for (const std::string &Issue : fuzz::validateJniOps(Models))
    Out.push_back("table:" + clip(Issue));
  analysis::LintOptions Opts;
  Opts.IncludeInfo = false;
  analysis::LintReport Lint = analysis::lintMachines(Models, Opts);
  for (const analysis::Finding &F : Lint.Findings)
    Out.push_back(formatString("lint:%s:%s:%s:%s",
                               analysis::severityName(F.S), F.Check.c_str(),
                               F.Machine.c_str(), clip(F.Detail).c_str()));
}

//===----------------------------------------------------------------------===
// Section 6: static-vs-dynamic agreement (jinn-verify)
//===----------------------------------------------------------------------===

void verifyLines(std::vector<std::string> &Out) {
  namespace av = analysis::verify;
  static const MicroId Subjects[] = {
      MicroId::PendingException,    MicroId::EnvMismatch,
      MicroId::LocalOverflow,       MicroId::GlobalRefDangling,
      MicroId::PopWithoutPush,      MicroId::MonitorExitUnmatched,
      MicroId::MonitorExitUnmatchedFixed, MicroId::CriticalNested,
  };
  std::vector<analysis::MachineModel> Models = av::verifierModels();
  auto Describe = [](const std::vector<agent::JinnReport> &Reports) {
    std::string S;
    for (const agent::JinnReport &R : Reports)
      S += (S.empty() ? "" : ";") + reportLine(R);
    return S;
  };
  for (MicroId Id : Subjects) {
    const MicroInfo &Info = microInfo(Id);
    av::LiftedProgram P = av::liftMicro(Id);
    av::Verdict V = av::verifyCfg(P.Cfg, Models);
    Out.push_back(formatString(
        "verify:%s=must[%s];may[%s];oracle[%s]", Info.ClassName,
        Describe(V.Must).c_str(), Describe(V.May).c_str(),
        Describe(P.Oracle).c_str()));
  }
}

//===----------------------------------------------------------------------===
// Section 7: the PR 5 differential fuzz campaign
//===----------------------------------------------------------------------===

void fuzzLines(std::vector<std::string> &Out) {
  fuzz::CampaignOptions Opts;
  Opts.Seed = FuzzSeed;
  Opts.CleanPerFocus = 1;
  Opts.Iterations = 0;
  Opts.RunXcheck = true;
  Opts.RunReplay = true;
  Opts.RunPython = true;
  fuzz::CampaignResult R = fuzz::runCampaign(Opts);
  Out.push_back(formatString("fuzz:pass=%d", R.Pass ? 1 : 0));
  for (const std::string &Issue : R.TableIssues)
    Out.push_back("fuzz:table-issue:" + clip(Issue));
  for (const fuzz::CampaignFinding &F : R.Findings)
    for (const std::string &Failure : F.Failures)
      Out.push_back(formatString("fuzz:finding:%s:%s",
                                 fuzz::failureClass(Failure).c_str(),
                                 clip(Failure).c_str()));
}

/// Maps a fingerprint line to the oracle it belongs to.
std::string oracleOf(const std::string &Line) {
  if (Line.rfind("micro:", 0) == 0) {
    if (Line.find(":jinn") != std::string::npos)
      return "micros-jinn";
    if (Line.find(":bare=") != std::string::npos)
      return "micros-bare";
    return "micros-xcheck";
  }
  if (Line.rfind("probe:", 0) == 0)
    return "probes";
  if (Line.rfind("py:", 0) == 0)
    return "python";
  if (Line.rfind("table:", 0) == 0 || Line.rfind("fuzz:table-issue", 0) == 0)
    return "table";
  if (Line.rfind("lint:", 0) == 0)
    return "speclint";
  if (Line.rfind("verify:", 0) == 0)
    return "verify";
  if (Line.rfind("fuzz:", 0) == 0)
    return "fuzz";
  return "unknown";
}

} // namespace

std::vector<std::string> jinn::mutate::runContractProbes() {
  std::vector<std::string> Lines;
  probeLines(Lines);
  return Lines;
}

std::vector<std::string> jinn::mutate::computeFingerprint() {
  std::vector<std::string> Lines;
  microLines(Lines);
  probeLines(Lines);
  pyLines(Lines);
  structuralLines(Lines);
  verifyLines(Lines);
  fuzzLines(Lines);
  return Lines;
}

std::vector<OracleKill>
jinn::mutate::diffFingerprints(const std::vector<std::string> &Base,
                               const std::vector<std::string> &Mutated) {
  // Multiset symmetric difference: a line appearing a different number of
  // times on the two sides is a disagreement charged to its oracle.
  std::map<std::string, int> Delta;
  for (const std::string &L : Base)
    ++Delta[L];
  for (const std::string &L : Mutated)
    --Delta[L];
  std::map<std::string, std::vector<std::string>> PerOracle;
  for (const auto &[Line, Count] : Delta) {
    if (Count == 0)
      continue;
    PerOracle[oracleOf(Line)].push_back((Count > 0 ? "-" : "+") + Line);
  }
  std::vector<OracleKill> Kills;
  for (auto &[Oracle, Lines] : PerOracle) {
    std::string Detail = Lines.front();
    if (Lines.size() > 1)
      Detail += formatString(" (+%zu more)", Lines.size() - 1);
    Kills.push_back({Oracle, Detail});
  }
  return Kills;
}

Verdict jinn::mutate::judgeMutant(int Id) {
  int Restore = activeMutant();
  setActiveMutant(0);
  std::vector<std::string> Base = computeFingerprint();
  setActiveMutant(Id);
  std::vector<std::string> Mutated = computeFingerprint();
  setActiveMutant(Restore);

  Verdict V;
  V.Id = Id;
  if (const MutantInfo *Info = findMutant(Id))
    V.Name = Info->Name;
  V.KilledBy = diffFingerprints(Base, Mutated);
  V.Status = V.KilledBy.empty() ? "survived" : "killed";
  return V;
}
