//===- mutate/Mutation.h - The mutation-campaign switchboard ---*- C++ -*-===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutant registry and activation switch behind jinn-mutate (DESIGN.md
/// §16). Every mutant in Mutants.def has a guarded site compiled into the
/// substrate or the machine specs; exactly one mutant (or none) is active
/// per process, selected by the JINN_MUTANT environment variable (id or
/// name), by setActiveMutant(), or — for build-pinned campaigns — by the
/// JINN_MUTANT cache variable, which defines JINN_MUTANT_PINNED and bakes
/// the choice in at compile time so the mutated branch is the only branch.
///
/// This library is a leaf below src/jvm: the check at a guarded site is a
/// single relaxed atomic load against a process-wide id (or a constant
/// compare under a pinned build), cheap enough to leave in production
/// binaries where it constant-folds to the untaken branch.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_MUTATE_MUTATION_H
#define JINN_MUTATE_MUTATION_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace jinn::mutate {

/// Stable mutant identifiers; numeric values are the JINN_MUTANT ids and
/// never change meaning (see Mutants.def).
enum class M : int {
  None = 0,
#define JINN_MUTANT_DEF(Id, EnumName, Name, OpClass, Target, Site, Expect,     \
                        Original, Mutated, Rationale)                          \
  EnumName = Id,
#include "mutate/Mutants.def"
};

/// The survivor policy each mutant is annotated with up front: a mutant
/// that must die, a documented equivalent mutant (no oracle *can* see the
/// difference), or a filed blind spot (an oracle *should* see it and the
/// gap is tracked).
enum class Expect : uint8_t { Killed, SurvivesEquivalent, SurvivesBlindSpot };

const char *expectName(Expect E);

/// One registry row, materialized from Mutants.def.
struct MutantInfo {
  int Id = 0;
  M Which = M::None;
  const char *Name = "";
  const char *OpClass = "";
  const char *Target = "";   ///< jvm | jni | pyc | spec | pyspec
  const char *Site = "";
  Expect Expected = Expect::Killed;
  const char *Original = "";
  const char *Mutated = "";
  const char *Rationale = "";
};

/// All registered mutants in id order.
const std::vector<MutantInfo> &allMutants();

/// Lookup by id; nullptr when unknown.
const MutantInfo *findMutant(int Id);
/// Lookup by name or decimal id string; nullptr when unknown.
const MutantInfo *findMutant(const std::string &NameOrId);

namespace detail {
/// The process-wide active mutant id (0 = none), initialized once from
/// the JINN_MUTANT environment variable.
std::atomic<int> &activeSlot();
} // namespace detail

/// Id of the active mutant (0 when running unmutated). Under a pinned
/// build (-DJINN_MUTANT=<id> at configure time) this is a compile-time
/// constant and every guarded site folds to its mutated branch.
inline int activeMutant() {
#ifdef JINN_MUTANT_PINNED
  return JINN_MUTANT_PINNED;
#else
  return detail::activeSlot().load(std::memory_order_relaxed);
#endif
}

/// Selects the active mutant for this process (0 deactivates). Overrides
/// the environment; ignored by guarded sites in a pinned build. The
/// harness toggles this around its baseline-vs-mutant runs, and tests use
/// it to drive a specific guarded site without re-execing.
void setActiveMutant(int Id);

/// The one call every guarded mutation site makes.
inline bool active(M Which) {
  return activeMutant() == static_cast<int>(Which);
}

} // namespace jinn::mutate

#endif // JINN_MUTATE_MUTATION_H
