//===- mutate/Mutation.cpp - Mutant registry + activation ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mutate/Mutation.h"

#include <cstdio>
#include <cstdlib>

using namespace jinn::mutate;

const char *jinn::mutate::expectName(Expect E) {
  switch (E) {
  case Expect::Killed:
    return "killed";
  case Expect::SurvivesEquivalent:
    return "survives-equivalent";
  case Expect::SurvivesBlindSpot:
    return "survives-blind-spot";
  }
  return "?";
}

const std::vector<MutantInfo> &jinn::mutate::allMutants() {
  static const std::vector<MutantInfo> Mutants = {
#define JINN_MUTANT_DEF(Id, EnumName, Name, OpClass, Target, Site, Expect_,    \
                        Original, Mutated, Rationale)                          \
  MutantInfo{Id,       M::EnumName, Name,    OpClass, Target,                  \
             Site,     Expect::Expect_, Original, Mutated, Rationale},
#include "mutate/Mutants.def"
  };
  return Mutants;
}

const MutantInfo *jinn::mutate::findMutant(int Id) {
  for (const MutantInfo &Info : allMutants())
    if (Info.Id == Id)
      return &Info;
  return nullptr;
}

const MutantInfo *jinn::mutate::findMutant(const std::string &NameOrId) {
  for (const MutantInfo &Info : allMutants())
    if (NameOrId == Info.Name)
      return &Info;
  char *End = nullptr;
  long Id = std::strtol(NameOrId.c_str(), &End, 10);
  if (End && *End == '\0' && !NameOrId.empty())
    return findMutant(static_cast<int>(Id));
  return nullptr;
}

namespace {

/// Parses JINN_MUTANT once at first use. An unknown selector is a hard
/// configuration error: silently running unmutated would record a
/// spurious "survived" verdict.
int initFromEnv() {
  const char *Env = std::getenv("JINN_MUTANT");
  if (!Env || !*Env)
    return 0;
  if (const MutantInfo *Info = jinn::mutate::findMutant(std::string(Env)))
    return Info->Id;
  std::fprintf(stderr, "jinn-mutate: unknown JINN_MUTANT \"%s\"\n", Env);
  std::abort();
}

} // namespace

std::atomic<int> &jinn::mutate::detail::activeSlot() {
  static std::atomic<int> Slot{initFromEnv()};
  return Slot;
}

void jinn::mutate::setActiveMutant(int Id) {
  detail::activeSlot().store(Id, std::memory_order_relaxed);
}
