//===- mutate/Harness.h - Kill-rate harness for the mutant corpus -*-C++-*-===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The jinn-mutate kill judge (DESIGN.md §16): a mutant dies iff at least
/// one oracle disagrees with the unmutated run. "Oracle" is the whole PR 5
/// battery plus the additions of this campaign, condensed into an ordered
/// textual fingerprint:
///
///   micro:*    the Table-1 matrix under Jinn (outcome + every report),
///              bare, and -Xcheck:jni worlds
///   probe:*    direct API-contract probes (the blind-spot killers:
///              ensure-capacity growth, negative capacity, foreign
///              monitor exit, error-state sinking)
///   py:*       §7 scenarios checked (violations) and unchecked
///              (interpreter incidents), plus a double-decref probe
///   table:*    fuzz op-table validation against the live machine models
///   lint:*     speclint error/warning findings over the live models
///   fuzz:*     a seeded differential campaign (verdict, replay, xcheck,
///              gating failure classes)
///
/// judgeMutant() computes the fingerprint with the mutant off and again
/// with it on, in one process; any line-level difference kills, and the
/// section prefix of the first differing lines names the killing oracles.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_MUTATE_HARNESS_H
#define JINN_MUTATE_HARNESS_H

#include "mutate/Mutation.h"

#include <string>
#include <vector>

namespace jinn::mutate {

/// The ordered oracle fingerprint of one configuration (see file comment).
/// Deterministic for a fixed build + active mutant.
std::vector<std::string> computeFingerprint();

/// Only the probe section — exported so regression tests can assert the
/// unmutated contracts directly.
std::vector<std::string> runContractProbes();

/// One oracle's disagreement with the baseline.
struct OracleKill {
  std::string Oracle; ///< "micros-jinn", "probes", "table", ...
  std::string Detail; ///< first differing line pair, human-readable
};

struct Verdict {
  int Id = 0;
  std::string Name;
  std::string Status; ///< "killed" | "survived"
  std::vector<OracleKill> KilledBy;
};

/// Line-level multiset diff of two fingerprints, grouped by the oracle
/// that owns each differing section prefix. Empty means "survived".
std::vector<OracleKill> diffFingerprints(const std::vector<std::string> &Base,
                                         const std::vector<std::string> &Mut);

/// Runs the judge for mutant \p Id in this process: fingerprint with the
/// mutant off, fingerprint with it on, diff. Restores the previously
/// active mutant before returning.
Verdict judgeMutant(int Id);

} // namespace jinn::mutate

#endif // JINN_MUTATE_HARNESS_H
