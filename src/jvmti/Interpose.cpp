//===- jvmti/Interpose.cpp - JNI function-table interposition ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvmti/Interpose.h"

#include "jni/EnvImplDetail.h"
#include "jvm/JThread.h"

#include <memory>

using namespace jinn;
using namespace jinn::jvmti;
using jinn::jni::ArgClass;
using jinn::jni::FnId;

//===----------------------------------------------------------------------===
// CapturedCall
//===----------------------------------------------------------------------===

jvm::MethodInfo *CapturedCall::methodArg() const {
  int Index = Traits->firstParam(ArgClass::MethodId);
  if (Index < 0)
    return nullptr;
  const void *Ptr = Args[Index].Ptr;
  // Under replay the registry may have changed since recording; trust the
  // validity bit snapshotted at crossing time instead.
  bool Valid = Snap ? Snap->MethodIdValid : (Ptr && vm().isMethodId(Ptr));
  if (!Ptr || !Valid)
    return nullptr;
  return const_cast<jvm::MethodInfo *>(
      static_cast<const jvm::MethodInfo *>(Ptr));
}

uint64_t CapturedCall::methodArgWord() const {
  int Index = Traits->firstParam(ArgClass::MethodId);
  return Index < 0 ? 0 : Args[Index].Word;
}

jvm::FieldInfo *CapturedCall::fieldArg() const {
  int Index = Traits->firstParam(ArgClass::FieldId);
  if (Index < 0)
    return nullptr;
  const void *Ptr = Args[Index].Ptr;
  bool Valid = Snap ? Snap->FieldIdValid : (Ptr && vm().isFieldId(Ptr));
  if (!Ptr || !Valid)
    return nullptr;
  return const_cast<jvm::FieldInfo *>(
      static_cast<const jvm::FieldInfo *>(Ptr));
}

uint64_t CapturedCall::fieldArgWord() const {
  int Index = Traits->firstParam(ArgClass::FieldId);
  return Index < 0 ? 0 : Args[Index].Word;
}

bool CapturedCall::returnFieldIdValid() const {
  if (Snap)
    return Snap->RetFieldIdValid;
  return RetPtr && vm().isFieldId(RetPtr);
}

bool CapturedCall::materializeCallArgs() {
  CallArgs.clear();
  if (Snap) {
    // The recorder materialized (and bounds-capped) the argument vector at
    // crossing time; the raw jvalue array pointer in the trace is dead.
    if (!Snap->HasCallArgs)
      return false;
    CallArgs.assign(Snap->CallArgs, Snap->CallArgs + Snap->NumCallArgs);
    return true;
  }
  int ArrIndex = Traits->firstParam(ArgClass::JvalueArray);
  if (ArrIndex < 0)
    return false;
  jvm::MethodInfo *M = methodArg();
  if (!M)
    return false;
  const jvalue *Raw = static_cast<const jvalue *>(Args[ArrIndex].Ptr);
  size_t N = M->Sig.Params.size();
  if (!Raw && N > 0)
    return false;
  CallArgs.assign(Raw, Raw + N);
  return true;
}

//===----------------------------------------------------------------------===
// InterposeDispatcher
//===----------------------------------------------------------------------===

void InterposeDispatcher::addPre(FnId Id, HookFn Hook) {
  Pre[static_cast<size_t>(Id)].push_back(std::move(Hook));
  HookMask[static_cast<size_t>(Id)] |= HasPre;
}

void InterposeDispatcher::addPost(FnId Id, HookFn Hook) {
  Post[static_cast<size_t>(Id)].push_back(std::move(Hook));
  HookMask[static_cast<size_t>(Id)] |= HasPost;
}

void InterposeDispatcher::addPreAll(HookFn Hook) {
  PreAll.push_back(std::move(Hook));
  AnyPreAll = true;
}

void InterposeDispatcher::addPostAll(HookFn Hook) {
  PostAll.push_back(std::move(Hook));
  AnyPostAll = true;
}

namespace {

/// Per-OS-thread cache of the sampling decision, keyed by the dispatcher's
/// sampler generation and the VM thread id. Thread ids are never reused,
/// so a worker that detaches and reattaches as a new request thread misses
/// the cache and re-evaluates the predicate for its new identity.
struct SampleCacheEntry {
  uint64_t Gen = 0;
  uint32_t ThreadId = 0;
  bool Sampled = true;
};
thread_local SampleCacheEntry LocalSampleCache;

std::atomic<uint64_t> NextSamplerGen{1};

} // namespace

void InterposeDispatcher::setSampler(SamplePredicate Fn) {
  Sampler = std::move(Fn);
  SamplerGen =
      Sampler ? NextSamplerGen.fetch_add(1, std::memory_order_relaxed) : 0;
}

bool InterposeDispatcher::checksThread(jvm::JThread &Thread) const {
  if (!SamplerGen)
    return true;
  SampleCacheEntry &Cache = LocalSampleCache;
  if (Cache.Gen == SamplerGen && Cache.ThreadId == Thread.id())
    return Cache.Sampled;
  bool Sampled = Sampler(Thread);
  Cache = {SamplerGen, Thread.id(), Sampled};
  return Sampled;
}

void InterposeDispatcher::runPre(CapturedCall &Call) const {
  // Sampled mode gates the whole boundary per thread: unsampled threads
  // neither record (all-function hooks) nor check (per-function machine
  // hooks). That is what makes 1-in-N sampling cheap — the only per-call
  // cost off the sample is this cached predicate — and it keeps the
  // replay contract exact: a sampled thread's full event stream is in the
  // trace, so its inline reports reproduce byte-for-byte offline.
  if (SamplerGen && Call.env() && !checksThread(*Call.env()->thread))
    return;
  for (const HookFn &Hook : PreAll) {
    Hook(Call);
    if (Call.aborted())
      return;
  }
  for (const HookFn &Hook : Pre[static_cast<size_t>(Call.id())]) {
    Hook(Call);
    if (Call.aborted())
      return;
  }
}

void InterposeDispatcher::runPost(CapturedCall &Call) const {
  if (SamplerGen && Call.env() && !checksThread(*Call.env()->thread))
    return;
  for (const HookFn &Hook : PostAll)
    Hook(Call);
  for (const HookFn &Hook : Post[static_cast<size_t>(Call.id())])
    Hook(Call);
}

size_t InterposeDispatcher::hookCount() const {
  size_t N = PreAll.size() + PostAll.size();
  for (const auto &V : Pre)
    N += V.size();
  for (const auto &V : Post)
    N += V.size();
  return N;
}

size_t InterposeDispatcher::preCount(FnId Id) const {
  return Pre[static_cast<size_t>(Id)].size();
}

size_t InterposeDispatcher::postCount(FnId Id) const {
  return Post[static_cast<size_t>(Id)].size();
}

void InterposeDispatcher::clear() {
  for (auto &V : Pre)
    V.clear();
  for (auto &V : Post)
    V.clear();
  PreAll.clear();
  PostAll.clear();
  HookMask.fill(0);
  AnyPreAll = false;
  AnyPostAll = false;
  Sampler = nullptr;
  SamplerGen = 0;
}

//===----------------------------------------------------------------------===
// Generated wrappers and the interposed table
//===----------------------------------------------------------------------===

namespace {

template <FnId Id, typename F, F Impl> struct MakeWrapper;

template <FnId Id, typename Ret, typename... Args,
          Ret (*Impl)(JNIEnv *, Args...)>
struct MakeWrapper<Id, Ret (*)(JNIEnv *, Args...), Impl> {
  static Ret fn(JNIEnv *Env, Args... As) {
    auto *Dispatcher =
        static_cast<InterposeDispatcher *>(Env->runtime->Dispatcher);
    // Static check elision: when the relevance analysis proved no machine
    // observes this function, skip capture and dispatch entirely.
    if (!Dispatcher || Dispatcher->elides(Id))
      return Impl(Env, As...);

    CapturedCall Call(Id, Env);
    (Call.captureOne(As), ...);
    Dispatcher->runPre(Call);
    if (Call.aborted()) {
      // The checker suppressed the call (paper Figure 4: "raise a JNI
      // exception" instead of executing the faulty call).
      if constexpr (!std::is_void_v<Ret>)
        return Ret{};
      else
        return;
    }
    if constexpr (std::is_void_v<Ret>) {
      Impl(Env, As...);
      if (Dispatcher->wantsPost(Id)) {
        Call.setReturnVoid();
        Dispatcher->runPost(Call);
      }
    } else {
      Ret Result = Impl(Env, As...);
      if (Dispatcher->wantsPost(Id)) {
        Call.setReturn(Result);
        Dispatcher->runPost(Call);
      }
      return Result;
    }
  }
};

// Variadic and va_list forms are not wrapped: they delegate (through the
// active table) to the A forms, where the checks run exactly once.
const JNINativeInterface_ InterposedTable = {
#define JNI_FN(Name, Ret, Params, Args)                                      \
  &MakeWrapper<FnId::Name, Ret(*) Params, &jinn::jni::impl_##Name>::fn,
#define JNI_FN_VA(Name, Ret, Params, Args) &jinn::jni::impl_##Name,
#define JNI_FN_VL(Name, Ret, Params, Args) &jinn::jni::impl_##Name,
#include "jni/JniFunctions.def"
#undef JNI_FN_VL
#undef JNI_FN_VA
#undef JNI_FN
};

} // namespace

const JNINativeInterface_ *jinn::jvmti::interposedTable() {
  return &InterposedTable;
}

InterposeDispatcher &jinn::jvmti::dispatcherFor(jni::JniRuntime &Runtime) {
  if (!Runtime.Dispatcher) {
    auto Owned = std::make_shared<InterposeDispatcher>();
    Runtime.Dispatcher = Owned.get();
    Runtime.DispatcherOwner = Owned;
    Runtime.setActiveTable(interposedTable());
  }
  return *static_cast<InterposeDispatcher *>(Runtime.Dispatcher);
}

void jinn::jvmti::removeInterposition(jni::JniRuntime &Runtime) {
  Runtime.Dispatcher = nullptr;
  Runtime.DispatcherOwner.reset();
  Runtime.setActiveTable(nullptr);
}
