//===- jvmti/Interpose.cpp - JNI function-table interposition ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvmti/Interpose.h"

#include "jni/EnvImplDetail.h"
#include "jvm/JThread.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace jinn;
using namespace jinn::jvmti;
using jinn::jni::ArgClass;
using jinn::jni::FnId;

//===----------------------------------------------------------------------===
// CapturedCall
//===----------------------------------------------------------------------===

jvm::MethodInfo *CapturedCall::methodArg() const {
  int Index = Traits->firstParam(ArgClass::MethodId);
  if (Index < 0)
    return nullptr;
  const void *Ptr = Args[Index].Ptr;
  // Under replay the registry may have changed since recording; trust the
  // validity bit snapshotted at crossing time instead.
  bool Valid = Snap ? Snap->MethodIdValid : (Ptr && vm().isMethodId(Ptr));
  if (!Ptr || !Valid)
    return nullptr;
  return const_cast<jvm::MethodInfo *>(
      static_cast<const jvm::MethodInfo *>(Ptr));
}

uint64_t CapturedCall::methodArgWord() const {
  int Index = Traits->firstParam(ArgClass::MethodId);
  return Index < 0 ? 0 : Args[Index].Word;
}

jvm::FieldInfo *CapturedCall::fieldArg() const {
  int Index = Traits->firstParam(ArgClass::FieldId);
  if (Index < 0)
    return nullptr;
  const void *Ptr = Args[Index].Ptr;
  bool Valid = Snap ? Snap->FieldIdValid : (Ptr && vm().isFieldId(Ptr));
  if (!Ptr || !Valid)
    return nullptr;
  return const_cast<jvm::FieldInfo *>(
      static_cast<const jvm::FieldInfo *>(Ptr));
}

uint64_t CapturedCall::fieldArgWord() const {
  int Index = Traits->firstParam(ArgClass::FieldId);
  return Index < 0 ? 0 : Args[Index].Word;
}

bool CapturedCall::returnFieldIdValid() const {
  if (Snap)
    return Snap->RetFieldIdValid;
  return RetPtr && vm().isFieldId(RetPtr);
}

bool CapturedCall::materializeCallArgs() {
  CallArgs.clear();
  if (Snap) {
    // The recorder materialized (and bounds-capped) the argument vector at
    // crossing time; the raw jvalue array pointer in the trace is dead.
    if (!Snap->HasCallArgs)
      return false;
    CallArgs.assign(Snap->CallArgs, Snap->CallArgs + Snap->NumCallArgs);
    return true;
  }
  int ArrIndex = Traits->firstParam(ArgClass::JvalueArray);
  if (ArrIndex < 0)
    return false;
  jvm::MethodInfo *M = methodArg();
  if (!M)
    return false;
  const jvalue *Raw = static_cast<const jvalue *>(Args[ArrIndex].Ptr);
  size_t N = M->Sig.Params.size();
  if (!Raw && N > 0)
    return false;
  CallArgs.assign(Raw, Raw + N);
  return true;
}

//===----------------------------------------------------------------------===
// HookList
//===----------------------------------------------------------------------===

void HookList::push(HookFn Hook) {
  uint32_t N = Count.load(std::memory_order_relaxed);
  if (N >= Capacity) {
    std::fprintf(stderr,
                 "jinn: HookList capacity (%zu) exceeded — raise "
                 "jvmti::HookList::Capacity\n",
                 Capacity);
    std::abort();
  }
  Slots[N] = std::move(Hook);
  // Publish after the slot is fully constructed: a concurrent crossing
  // either sees the old count (hook not yet active) or the new count with
  // a valid slot.
  Count.store(N + 1, std::memory_order_release);
}

void HookList::reset() {
  Count.store(0, std::memory_order_relaxed);
  for (HookFn &Slot : Slots)
    Slot = nullptr;
}

//===----------------------------------------------------------------------===
// InterposeDispatcher
//===----------------------------------------------------------------------===

void InterposeDispatcher::addPre(FnId Id, HookFn Hook) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  demoteToDynamic();
  Pre[static_cast<size_t>(Id)].push(std::move(Hook));
  HookMask[static_cast<size_t>(Id)].fetch_or(HasPre,
                                             std::memory_order_release);
}

void InterposeDispatcher::addPost(FnId Id, HookFn Hook) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  demoteToDynamic();
  Post[static_cast<size_t>(Id)].push(std::move(Hook));
  HookMask[static_cast<size_t>(Id)].fetch_or(HasPost,
                                             std::memory_order_release);
}

void InterposeDispatcher::addPreAll(HookFn Hook) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  demoteToDynamic();
  PreAll.push(std::move(Hook));
  AnyPreAll.store(true, std::memory_order_release);
}

void InterposeDispatcher::addPostAll(HookFn Hook) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  demoteToDynamic();
  PostAll.push(std::move(Hook));
  AnyPostAll.store(true, std::memory_order_release);
}

bool InterposeDispatcher::installFused(
    std::shared_ptr<const FusedTable> Table) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  if (!Table || !Table->Run)
    return false;
  // An all-function hook (the recorder) or a sampling predicate means the
  // dynamic surface already carries behavior the fused program does not
  // encode — stay dynamic.
  if (AnyPreAll.load(std::memory_order_relaxed) ||
      AnyPostAll.load(std::memory_order_relaxed) ||
      SamplerGen.load(std::memory_order_relaxed) != 0)
    return false;
  FusedOwner = std::move(Table);
  FusedPtr.store(FusedOwner.get(), std::memory_order_release);
  return true;
}

void InterposeDispatcher::demoteToDynamic() {
  // One-way: clear the tier pointer but keep the owner, so crossings that
  // already loaded it finish on a live program.
  if (FusedPtr.exchange(nullptr, std::memory_order_release))
    Demotions.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Per-OS-thread cache of the sampling decision, keyed by the dispatcher's
/// sampler generation and the VM thread id. Thread ids are never reused,
/// so a worker that detaches and reattaches as a new request thread misses
/// the cache and re-evaluates the predicate for its new identity.
struct SampleCacheEntry {
  uint64_t Gen = 0;
  uint32_t ThreadId = 0;
  bool Sampled = true;
};
thread_local SampleCacheEntry LocalSampleCache;

std::atomic<uint64_t> NextSamplerGen{1};

} // namespace

void InterposeDispatcher::setSampler(SamplePredicate Fn) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  // Sampling gates crossings the fused program would run unconditionally.
  demoteToDynamic();
  Sampler = std::move(Fn);
  SamplerGen.store(Sampler
                       ? NextSamplerGen.fetch_add(1, std::memory_order_relaxed)
                       : 0,
                   std::memory_order_release);
}

bool InterposeDispatcher::checksThread(jvm::JThread &Thread) const {
  uint64_t Gen = SamplerGen.load(std::memory_order_acquire);
  if (!Gen)
    return true;
  SampleCacheEntry &Cache = LocalSampleCache;
  if (Cache.Gen == Gen && Cache.ThreadId == Thread.id())
    return Cache.Sampled;
  bool Sampled = true;
  {
    // Cold path (once per thread per sampler generation): the predicate is
    // read under the install mutex so setSampler can swap it safely.
    std::lock_guard<std::mutex> Lock(
        const_cast<InterposeDispatcher *>(this)->InstallMu);
    if (Sampler)
      Sampled = Sampler(Thread);
  }
  Cache = {Gen, Thread.id(), Sampled};
  return Sampled;
}

void InterposeDispatcher::runPre(CapturedCall &Call) const {
  // Sampled mode gates the whole boundary per thread: unsampled threads
  // neither record (all-function hooks) nor check (per-function machine
  // hooks). That is what makes 1-in-N sampling cheap — the only per-call
  // cost off the sample is this cached predicate — and it keeps the
  // replay contract exact: a sampled thread's full event stream is in the
  // trace, so its inline reports reproduce byte-for-byte offline.
  if (SamplerGen.load(std::memory_order_relaxed) && Call.env() &&
      !checksThread(*Call.env()->thread))
    return;
  size_t NAll = PreAll.size();
  for (size_t I = 0; I < NAll; ++I) {
    PreAll[I](Call);
    if (Call.aborted())
      return;
  }
  const HookList &List = Pre[static_cast<size_t>(Call.id())];
  size_t N = List.size();
  for (size_t I = 0; I < N; ++I) {
    List[I](Call);
    if (Call.aborted())
      return;
  }
}

void InterposeDispatcher::runPost(CapturedCall &Call) const {
  if (SamplerGen.load(std::memory_order_relaxed) && Call.env() &&
      !checksThread(*Call.env()->thread))
    return;
  size_t NAll = PostAll.size();
  for (size_t I = 0; I < NAll; ++I)
    PostAll[I](Call);
  const HookList &List = Post[static_cast<size_t>(Call.id())];
  size_t N = List.size();
  for (size_t I = 0; I < N; ++I)
    List[I](Call);
}

size_t InterposeDispatcher::hookCount() const {
  size_t N = PreAll.size() + PostAll.size();
  for (const HookList &List : Pre)
    N += List.size();
  for (const HookList &List : Post)
    N += List.size();
  return N;
}

size_t InterposeDispatcher::preCount(FnId Id) const {
  return Pre[static_cast<size_t>(Id)].size();
}

size_t InterposeDispatcher::postCount(FnId Id) const {
  return Post[static_cast<size_t>(Id)].size();
}

void InterposeDispatcher::clear() {
  std::lock_guard<std::mutex> Lock(InstallMu);
  for (HookList &List : Pre)
    List.reset();
  for (HookList &List : Post)
    List.reset();
  PreAll.reset();
  PostAll.reset();
  for (auto &Mask : HookMask)
    Mask.store(0, std::memory_order_relaxed);
  AnyPreAll.store(false, std::memory_order_relaxed);
  AnyPostAll.store(false, std::memory_order_relaxed);
  Sampler = nullptr;
  SamplerGen.store(0, std::memory_order_relaxed);
  FusedPtr.store(nullptr, std::memory_order_relaxed);
  FusedOwner.reset();
  Demotions.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===
// Generated wrappers and the interposed table
//===----------------------------------------------------------------------===

namespace {

template <FnId Id, typename F, F Impl> struct MakeWrapper;

template <FnId Id, typename Ret, typename... Args,
          Ret (*Impl)(JNIEnv *, Args...)>
struct MakeWrapper<Id, Ret (*)(JNIEnv *, Args...), Impl> {
  /// Tier 1: a fused table is installed. The per-function record carries
  /// everything the crossing needs — slot extents and the hoisted traits
  /// pointer — so a check-free function costs one load and compare, and a
  /// checked function runs its straight-line slot program with no hook
  /// walk, mask test, or std::function dispatch.
  static Ret runFused(const FusedTable *Fused, JNIEnv *Env, Args... As) {
    const FusedTable::FnRec &Rec = Fused->Fns[static_cast<size_t>(Id)];
    if ((Rec.PreCount | Rec.PostCount) == 0)
      return Impl(Env, As...);
    CapturedCall Call(Id, Env, Rec.Traits);
    (Call.captureOne(As), ...);
    if (Rec.PreCount) {
      Fused->Run(Fused->Program, Rec, Call, /*IsPost=*/false);
      if (Call.aborted()) {
        // The checker suppressed the call (paper Figure 4: "raise a JNI
        // exception" instead of executing the faulty call).
        if constexpr (!std::is_void_v<Ret>)
          return Ret{};
        else
          return;
      }
    }
    if constexpr (std::is_void_v<Ret>) {
      Impl(Env, As...);
      if (Rec.PostCount) {
        Call.setReturnVoid();
        Fused->Run(Fused->Program, Rec, Call, /*IsPost=*/true);
      }
    } else {
      Ret Result = Impl(Env, As...);
      if (Rec.PostCount) {
        Call.setReturn(Result);
        Fused->Run(Fused->Program, Rec, Call, /*IsPost=*/true);
      }
      return Result;
    }
  }

  /// Tier 2: dynamic hook-list dispatch (sparse when elision is on, dense
  /// otherwise).
  static Ret runDynamic(InterposeDispatcher *Dispatcher, JNIEnv *Env,
                        Args... As) {
    CapturedCall Call(Id, Env);
    (Call.captureOne(As), ...);
    Dispatcher->runPre(Call);
    if (Call.aborted()) {
      if constexpr (!std::is_void_v<Ret>)
        return Ret{};
      else
        return;
    }
    if constexpr (std::is_void_v<Ret>) {
      Impl(Env, As...);
      if (Dispatcher->wantsPost(Id)) {
        Call.setReturnVoid();
        Dispatcher->runPost(Call);
      }
    } else {
      Ret Result = Impl(Env, As...);
      if (Dispatcher->wantsPost(Id)) {
        Call.setReturn(Result);
        Dispatcher->runPost(Call);
      }
      return Result;
    }
  }

  static Ret fn(JNIEnv *Env, Args... As) {
    auto *Dispatcher =
        static_cast<InterposeDispatcher *>(Env->runtime->Dispatcher);
    // Tier 3 (bare): no dispatcher on this runtime.
    if (!Dispatcher)
      return Impl(Env, As...);
    // The tier is picked once per crossing: a demotion that lands mid-call
    // finishes this crossing on the (still-live) fused program, which runs
    // the same machine checks the dynamic tier would.
    if (const FusedTable *Fused = Dispatcher->fused())
      return runFused(Fused, Env, As...);
    // Static check elision: when the relevance analysis proved no machine
    // observes this function, skip capture and dispatch entirely.
    if (Dispatcher->elides(Id))
      return Impl(Env, As...);
    return runDynamic(Dispatcher, Env, As...);
  }
};

// Variadic and va_list forms are not wrapped: they delegate (through the
// active table) to the A forms, where the checks run exactly once.
const JNINativeInterface_ InterposedTable = {
#define JNI_FN(Name, Ret, Params, Args)                                      \
  &MakeWrapper<FnId::Name, Ret(*) Params, &jinn::jni::impl_##Name>::fn,
#define JNI_FN_VA(Name, Ret, Params, Args) &jinn::jni::impl_##Name,
#define JNI_FN_VL(Name, Ret, Params, Args) &jinn::jni::impl_##Name,
#include "jni/JniFunctions.def"
#undef JNI_FN_VL
#undef JNI_FN_VA
#undef JNI_FN
};

} // namespace

const JNINativeInterface_ *jinn::jvmti::interposedTable() {
  return &InterposedTable;
}

InterposeDispatcher &jinn::jvmti::dispatcherFor(jni::JniRuntime &Runtime) {
  if (!Runtime.Dispatcher) {
    auto Owned = std::make_shared<InterposeDispatcher>();
    Runtime.Dispatcher = Owned.get();
    Runtime.DispatcherOwner = Owned;
    Runtime.setActiveTable(interposedTable());
  }
  return *static_cast<InterposeDispatcher *>(Runtime.Dispatcher);
}

void jinn::jvmti::removeInterposition(jni::JniRuntime &Runtime) {
  Runtime.Dispatcher = nullptr;
  Runtime.DispatcherOwner.reset();
  Runtime.setActiveTable(nullptr);
}
