//===- jvmti/Jvmti.cpp - JVM Tools Interface ------------------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "jvmti/Jvmti.h"

using namespace jinn;
using namespace jinn::jvmti;

Agent::~Agent() = default;

JvmtiEnv::JvmtiEnv(jni::JniRuntime &Runtime) : Runtime(Runtime) {
  Runtime.vm().addObserver(this);
  Runtime.addBindObserver(this);
}

JvmtiEnv::~JvmtiEnv() {
  Runtime.removeBindObserver(this);
  Runtime.vm().removeObserver(this);
}

void JvmtiEnv::setEventCallbacks(EventCallbacks NewCallbacks) {
  Callbacks = std::move(NewCallbacks);
}

int64_t JvmtiEnv::getObjectIdentity(jobject Ref) {
  jvm::Vm::PeekResult Peek =
      vm().peekHandle(jni::handleWord(Ref), /*Perspective=*/nullptr);
  if (Peek.S != jvm::Vm::PeekResult::Status::Live &&
      Peek.S != jvm::Vm::PeekResult::Status::WrongThreadLive)
    return 0;
  return static_cast<int64_t>(Peek.Target.raw());
}

void JvmtiEnv::onThreadStart(jvm::JThread &Thread) {
  if (Callbacks.ThreadStart)
    Callbacks.ThreadStart(Thread);
}

void JvmtiEnv::onThreadEnd(jvm::JThread &Thread) {
  if (Callbacks.ThreadEnd)
    Callbacks.ThreadEnd(Thread);
}

void JvmtiEnv::onVmDeath() {
  if (Callbacks.VmDeath)
    Callbacks.VmDeath();
}

void JvmtiEnv::onGcFinish() {
  if (Callbacks.GcFinish)
    Callbacks.GcFinish();
}

void JvmtiEnv::onNativeMethodBind(jvm::MethodInfo &Method,
                                  jni::JniNativeStdFn &Bound) {
  if (Callbacks.NativeMethodBind)
    Callbacks.NativeMethodBind(Method, Bound);
}

AgentHost::AgentHost(jni::JniRuntime &Runtime) : Runtime(Runtime) {}

Agent &AgentHost::load(std::unique_ptr<Agent> TheAgent) {
  auto Env = std::make_unique<JvmtiEnv>(Runtime);
  Agent &Ref = *TheAgent;
  Ref.onLoad(Runtime.javaVm(), *Env);
  Agents.emplace_back(std::move(TheAgent), std::move(Env));
  return Ref;
}

Agent *AgentHost::find(std::string_view Name) {
  for (const auto &Pair : Agents)
    if (Pair.first->name() == Name)
      return Pair.first.get();
  return nullptr;
}
