//===- jvmti/Interpose.h - JNI function-table interposition framework ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic interposition machinery every dynamic checker rides on:
///
///  - CapturedCall: a uniform view of one in-flight JNI call (function id,
///    classified arguments, decoded call arguments, return value) handed to
///    pre/post hooks. Hooks can abort the underlying call — that is how a
///    checker "throws instead of executing" (paper Figure 4).
///  - InterposeDispatcher: per-function lists of pre/post hooks. The paper's
///    synthesizer populates these lists from state-machine specifications
///    (Algorithm 1); the -Xcheck:jni emulations populate them by hand.
///  - interposedTable(): a complete alternative JNINativeInterface whose
///    entries wrap the default implementations with hook dispatch. The
///    wrappers are *generated* from the registry at compile time — the
///    runtime analogue of the paper's 22,000+ generated wrapper lines.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVMTI_INTERPOSE_H
#define JINN_JVMTI_INTERPOSE_H

#include "jni/JniFunctionId.h"
#include "jni/JniRuntime.h"
#include "jni/JniTraits.h"
#include "jni/Marshal.h"
#include "jvm/Vm.h"

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace jinn::jvmti {

/// One classified argument of an in-flight call.
struct CapturedArg {
  jni::ArgClass Cls = jni::ArgClass::Scalar;
  uint64_t Word = 0;         ///< handle bits, ID bits, or scalar payload
  const void *Ptr = nullptr; ///< cstring / jvalue array / out-pointer
};

/// One recorded handle observation: what Vm::peekHandle returned for a
/// handle word at the instant a boundary was crossed. Peeks are volatile
/// (a later DeleteLocalRef changes the answer), so the recorder snapshots
/// them per event and the replayer consults the snapshot instead of the
/// post-hoc VM state.
struct PeekFact {
  uint64_t Word = 0;
  uint64_t Target = 0; ///< ObjectId raw bits (0 when none)
  uint8_t Status = 0;  ///< jvm::Vm::PeekResult::Status
  uint8_t Kind = 0;    ///< jvm::RefKind
  uint32_t OwnerThread = 0;
};

/// Every VM observation a synthesized machine can make at one boundary
/// crossing, frozen at crossing time. POD with fixed capacity so trace
/// events serialize as flat records.
struct BoundarySnapshot {
  static constexpr size_t MaxPeeks = 8;
  static constexpr size_t MaxCallArgs = 8;

  uint32_t ThreadId = 0;    ///< thread the JNIEnv belongs to
  uint32_t CurThreadId = 0; ///< thread actually executing (0 when unknown)
  uint64_t EnvWord = 0;     ///< JNIEnv pointer identity
  uint8_t NumPeeks = 0;
  uint8_t NumCallArgs = 0;
  bool PeeksTruncated = false;
  bool ExceptionPending = false;
  bool MethodIdValid = false;    ///< jmethodID argument passed isMethodId
  bool FieldIdValid = false;     ///< jfieldID argument passed isFieldId
  bool RetFieldIdValid = false;  ///< returned jfieldID passed isFieldId
  bool BufferFound = false;      ///< released buffer had a pin record
  bool HasCallArgs = false;
  uint64_t BufferTarget = 0; ///< pinned target of the released buffer
  PeekFact Peeks[MaxPeeks];
  jvalue CallArgs[MaxCallArgs];

  void addPeek(uint64_t Word, uint64_t Target, uint8_t Status, uint8_t Kind,
               uint32_t OwnerThread) {
    if (!Word)
      return;
    for (size_t I = 0; I < NumPeeks; ++I)
      if (Peeks[I].Word == Word)
        return;
    if (NumPeeks == MaxPeeks) {
      PeeksTruncated = true;
      return;
    }
    Peeks[NumPeeks++] = {Word, Target, Status, Kind, OwnerThread};
  }
  const PeekFact *findPeek(uint64_t Word) const {
    for (size_t I = 0; I < NumPeeks; ++I)
      if (Peeks[I].Word == Word)
        return &Peeks[I];
    return nullptr;
  }
};

/// Everything a replayed trace needs from the surrounding process: the VM
/// the trace was recorded against (entity pointers in the trace are only
/// meaningful in-process) and the trace's own thread table.
struct ReplayEnvironment {
  jvm::Vm *Vm = nullptr;
  uint32_t NativeFrameCapacity = 16;
  std::function<std::string(uint32_t)> ThreadNameOf;

  std::string threadName(uint32_t Id) const {
    if (ThreadNameOf) {
      std::string Name = ThreadNameOf(Id);
      if (!Name.empty())
        return Name;
    }
    return "thread-" + std::to_string(Id);
  }
};

/// Observer of native-method entry/exit crossings (the Java->C direction).
/// Installed on the synthesizer so the trace recorder sees every bound
/// native method fire without depending on the synthesis layer.
class NativeBoundaryObserver {
public:
  virtual ~NativeBoundaryObserver() = default;
  virtual void onNativeEntry(jvm::MethodInfo &Method, JNIEnv *Env,
                             jobject Self, const jvalue *Args) = 0;
  virtual void onNativeExit(jvm::MethodInfo &Method, JNIEnv *Env,
                            jobject Self, const jvalue *Args,
                            const jvalue *Ret, bool EntryAborted) = 0;
};

/// A uniform view of one in-flight JNI call, passed to every hook.
///
/// Two modes share this type: live calls carry a JNIEnv and answer
/// observation queries against the running VM; replayed calls carry a
/// BoundarySnapshot recorded at crossing time plus a ReplayEnvironment,
/// and answer the same queries from the snapshot.
class CapturedCall {
public:
  CapturedCall(jni::FnId Id, JNIEnv *Env)
      : Id(Id), Env(Env), Traits(&jni::fnTraits(Id)) {}

  /// Fused-tier constructor: the wrapper already holds the traits pointer
  /// in its per-function record, so the fnTraits() table lookup (and its
  /// static-init guard) is hoisted out of the crossing entirely.
  CapturedCall(jni::FnId Id, JNIEnv *Env, const jni::FnTraits *Traits)
      : Id(Id), Env(Env), Traits(Traits) {}

  /// Replay-mode constructor: the call is reconstructed from a recorded
  /// trace event; restoreArg/restoreReturn fill in the operands.
  CapturedCall(jni::FnId Id, const BoundarySnapshot *Snap,
               const ReplayEnvironment *Renv)
      : Id(Id), Env(nullptr), Traits(&jni::fnTraits(Id)), Snap(Snap),
        Renv(Renv) {}

  jni::FnId id() const { return Id; }
  JNIEnv *env() const { return Env; }
  jvm::JThread &thread() const { return *Env->thread; }
  jvm::Vm &vm() const { return Env ? *Env->vm : *Renv->Vm; }
  jni::JniRuntime &runtime() const { return *Env->runtime; }
  const jni::FnTraits &traits() const { return *Traits; }

  bool isReplay() const { return Snap != nullptr; }
  const BoundarySnapshot *snapshot() const { return Snap; }
  const ReplayEnvironment *replayEnv() const { return Renv; }

  size_t numArgs() const { return NumArgs; }
  const CapturedArg &arg(size_t Index) const { return Args[Index]; }

  /// Reference argument \p Index as a handle word (0 when not a ref).
  uint64_t refWord(size_t Index) const {
    return Args[Index].Cls == jni::ArgClass::Ref ? Args[Index].Word : 0;
  }

  /// The jmethodID argument, validated against the VM registry (nullptr
  /// when absent or invalid).
  jvm::MethodInfo *methodArg() const;
  /// Raw bits of the jmethodID argument (even if invalid); 0 when absent.
  uint64_t methodArgWord() const;
  jvm::FieldInfo *fieldArg() const;
  uint64_t fieldArgWord() const;

  /// Decodes the jvalue-array argument against the method signature into
  /// callArgs(). Returns false when there is no decodable argument vector.
  bool materializeCallArgs();
  const std::vector<jvalue> &callArgs() const { return CallArgs; }

  //===------------------------------------------------------------------===
  // Return value (valid in post hooks)
  //===------------------------------------------------------------------===

  bool hasReturn() const { return HasReturn; }
  bool returnIsRef() const { return RetIsRef; }
  uint64_t returnWord() const { return RetWord; }
  const void *returnPtr() const { return RetPtr; }
  /// Whether the returned jfieldID is registered with the VM (snapshot-backed
  /// under replay).
  bool returnFieldIdValid() const;

  //===------------------------------------------------------------------===
  // Abort: a pre hook calls this to suppress the underlying call
  //===------------------------------------------------------------------===

  void abortCall() { Aborted = true; }
  bool aborted() const { return Aborted; }

  //===------------------------------------------------------------------===
  // Per-crossing memo: one (owner, value) slot that lives for the whole
  // pre+call+post crossing. Machines use it to hoist a thread-local
  // lookup (e.g. LocalRefMachine's instance-id -> thread-shadow cache)
  // to once per crossing instead of once per action.
  //===------------------------------------------------------------------===

  void *memo(const void *Owner) const {
    return MemoOwner == Owner ? MemoValue : nullptr;
  }
  void setMemo(const void *Owner, void *Value) {
    MemoOwner = Owner;
    MemoValue = Value;
  }

  //===------------------------------------------------------------------===
  // Capture plumbing (used by the generated wrappers)
  //===------------------------------------------------------------------===

  template <typename T>
  std::enable_if_t<std::is_base_of_v<_jobject, T>> captureOne(T *V) {
    push({jni::ArgClass::Ref, jni::handleWord(V), nullptr});
  }
  void captureOne(jmethodID V) {
    push({jni::ArgClass::MethodId,
          static_cast<uint64_t>(reinterpret_cast<uintptr_t>(V)), V});
  }
  void captureOne(jfieldID V) {
    push({jni::ArgClass::FieldId,
          static_cast<uint64_t>(reinterpret_cast<uintptr_t>(V)), V});
  }
  void captureOne(const char *V) {
    push({jni::ArgClass::CString, 0, V});
  }
  void captureOne(const jvalue *V) {
    push({jni::ArgClass::JvalueArray, 0, V});
  }
  template <typename T>
  std::enable_if_t<std::is_arithmetic_v<T> || std::is_enum_v<T>>
  captureOne(T V) {
    push({jni::ArgClass::Scalar, static_cast<uint64_t>(V), nullptr});
  }
  template <typename T>
  std::enable_if_t<!std::is_base_of_v<_jobject, T>> captureOne(T *V) {
    push({jni::ArgClass::OutPtr,
          static_cast<uint64_t>(reinterpret_cast<uintptr_t>(V)), V});
  }

  template <typename T> void setReturn(T V) {
    HasReturn = true;
    if constexpr (std::is_pointer_v<T> &&
                  std::is_base_of_v<_jobject, std::remove_pointer_t<T>>) {
      RetIsRef = true;
      RetWord = jni::handleWord(V);
    } else if constexpr (std::is_pointer_v<T>) {
      RetPtr = V;
      RetWord = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(V));
    } else if constexpr (std::is_floating_point_v<T>) {
      RetWord = 0;
      RetDouble = static_cast<double>(V);
    } else {
      RetWord = static_cast<uint64_t>(V);
    }
  }
  void setReturnVoid() { HasReturn = true; }

  //===------------------------------------------------------------------===
  // Replay plumbing (used by the trace replayer)
  //===------------------------------------------------------------------===

  void restoreArg(jni::ArgClass Cls, uint64_t Word, uint64_t PtrWord) {
    push({Cls, Word,
          reinterpret_cast<const void *>(static_cast<uintptr_t>(PtrWord))});
  }
  void restoreReturn(bool HasRet, bool IsRef, uint64_t Word,
                     uint64_t PtrWord) {
    HasReturn = HasRet;
    RetIsRef = IsRef;
    RetWord = Word;
    RetPtr = reinterpret_cast<const void *>(static_cast<uintptr_t>(PtrWord));
  }

private:
  void push(CapturedArg Arg) { Args[NumArgs++] = Arg; }

  jni::FnId Id;
  JNIEnv *Env;
  const jni::FnTraits *Traits;
  const BoundarySnapshot *Snap = nullptr;
  const ReplayEnvironment *Renv = nullptr;
  std::array<CapturedArg, 5> Args;
  size_t NumArgs = 0;
  std::vector<jvalue> CallArgs;
  bool HasReturn = false;
  bool RetIsRef = false;
  uint64_t RetWord = 0;
  double RetDouble = 0.0;
  const void *RetPtr = nullptr;
  bool Aborted = false;
  const void *MemoOwner = nullptr;
  void *MemoValue = nullptr;
};

/// Hook invoked before (pre) or after (post) a JNI function executes.
using HookFn = std::function<void(CapturedCall &)>;

/// The fused (tier-1) dispatch table: one straight-line check program per
/// JNI function, compiled at agent-load time from the machine specs by
/// synth/FusedChecks — the runtime analogue of the paper's 22k lines of
/// generated specialized wrapper code. This layer stores it type-erased
/// (jvmti cannot depend on spec/synth): the wrapper only needs the
/// per-function record — slot extents, plus the FnTraits pointer hoisted
/// into the prologue — and one phase-runner function pointer that the
/// compiler provides. Crossings whose record is empty skip interposition
/// with a single load and compare; crossings with checks run them as raw
/// indirect calls over a flat slot array, with no hook-list walk, no
/// mask test, and no std::function dispatch.
class FusedTable {
public:
  struct FnRec {
    uint32_t PreBegin = 0;
    uint32_t PostBegin = 0;
    uint16_t PreCount = 0;
    uint16_t PostCount = 0;
    const jni::FnTraits *Traits = nullptr;
  };

  /// Runs the pre or post slot sequence of \p Rec against \p Call.
  using PhaseRunner = void (*)(const void *Program, const FnRec &Rec,
                               CapturedCall &Call, bool IsPost);

  const void *Program = nullptr;
  PhaseRunner Run = nullptr;
  std::array<FnRec, jni::NumJniFunctions> Fns{};
};

/// A fixed-capacity hook list with a release-published count, so hook
/// installation is safe against concurrent crossings: a reader sees either
/// the old count (hook not yet active) or the new count with the slot
/// fully constructed. Writers are serialized by the dispatcher's install
/// mutex. The capacity comfortably covers the worst synthesized density
/// (~a dozen machine hooks on the busiest call functions) plus
/// hand-registered test hooks; overflow aborts loudly rather than
/// dropping a check.
class HookList {
public:
  static constexpr size_t Capacity = 32;

  void push(HookFn Hook);
  size_t size() const { return Count.load(std::memory_order_acquire); }
  const HookFn &operator[](size_t I) const { return Slots[I]; }
  void reset();

private:
  std::atomic<uint32_t> Count{0};
  std::array<HookFn, Capacity> Slots;
};

/// Per-function hook lists. One dispatcher serves all installed agents;
/// each agent appends its own hooks.
///
/// Three dispatch tiers, selected per crossing by the generated wrappers:
///
///   1. *Fused* — an installed FusedTable: per-function straight-line
///      check programs with everything else compiled out. Active only
///      while the dispatcher's dynamic surface is untouched beyond the
///      synthesized machine hooks it was compiled from.
///   2. *Dynamic* — the hook lists below, with the sparse per-function
///      mask byte (kept in sync by the add* methods) eliding functions no
///      hook observes when elision is enabled; with elision off this is
///      the dense legacy path (the Table 3 "interposing only" shape pays
///      full capture cost).
///   3. *Bare* — no dispatcher on the runtime at all.
///
/// Any dynamic mutation — addPre/addPost, an all-function hook (the trace
/// recorder), a sampling predicate — *demotes* the dispatcher from fused
/// to dynamic first (one-way, atomic pointer store), so recording,
/// sampled checking, and hand-registered hooks work unchanged: crossings
/// already past the tier check finish on the still-live fused program
/// (same machine checks), later crossings take the dynamic path and see
/// the new hook.
class InterposeDispatcher {
public:
  void addPre(jni::FnId Id, HookFn Hook);
  void addPost(jni::FnId Id, HookFn Hook);
  /// Hooks that run on *every* function (prepended to per-function lists).
  void addPreAll(HookFn Hook);
  void addPostAll(HookFn Hook);

  //===------------------------------------------------------------------===
  // Fused (tier-1) dispatch
  //===------------------------------------------------------------------===

  /// Installs the fused table. Refuses (returns false) when the dynamic
  /// surface is already incompatible — an all-function hook or a sampling
  /// predicate is present. The caller (the Jinn agent) must install
  /// immediately after synthesis, while the dispatcher holds exactly the
  /// hooks the table was compiled from.
  bool installFused(std::shared_ptr<const FusedTable> Table);

  /// The active fused table, or nullptr when dispatch is dynamic. Read
  /// once per crossing by the generated wrappers.
  const FusedTable *fused() const {
    return FusedPtr.load(std::memory_order_acquire);
  }
  bool fusedActive() const { return fused() != nullptr; }

  /// One-way fused -> dynamic fallback. The table owner is retained so
  /// crossings that already picked the fused tier finish safely.
  void demoteToDynamic();
  /// Number of installFused -> dynamic demotions (test/diagnostic aid).
  uint64_t demotionCount() const {
    return Demotions.load(std::memory_order_relaxed);
  }

  void runPre(CapturedCall &Call) const;
  void runPost(CapturedCall &Call) const;

  /// Total number of registered hook attachment points (census support).
  size_t hookCount() const;
  /// Number of pre hooks for one function.
  size_t preCount(jni::FnId Id) const;
  /// Number of post hooks for one function.
  size_t postCount(jni::FnId Id) const;

  /// Enables/disables static check elision in the generated wrappers.
  void setElisionEnabled(bool Enabled) {
    ElisionEnabled.store(Enabled, std::memory_order_relaxed);
  }
  bool elisionEnabled() const {
    return ElisionEnabled.load(std::memory_order_relaxed);
  }

  /// True when the wrapper for \p Id may skip interposition entirely: no
  /// per-function hook and no all-function hook observes it. Any
  /// all-function hook (the trace recorder) defeats elision for every
  /// function, which is what keeps recording modes lossless.
  bool elides(jni::FnId Id) const {
    return ElisionEnabled.load(std::memory_order_relaxed) &&
           !AnyPreAll.load(std::memory_order_relaxed) &&
           !AnyPostAll.load(std::memory_order_relaxed) &&
           HookMask[static_cast<size_t>(Id)].load(
               std::memory_order_relaxed) == 0;
  }

  /// True when the wrapper must capture the return value and run the post
  /// list. Always true while elision is disabled (legacy dense dispatch).
  bool wantsPost(jni::FnId Id) const {
    return !ElisionEnabled.load(std::memory_order_relaxed) ||
           AnyPostAll.load(std::memory_order_relaxed) ||
           (HookMask[static_cast<size_t>(Id)].load(
                std::memory_order_relaxed) &
            HasPost);
  }

  //===------------------------------------------------------------------===
  // Deterministic sampled checking (production monitoring mode)
  //===------------------------------------------------------------------===

  /// Per-thread sampling decision: called once per thread (result cached
  /// in a thread-local keyed by thread id), it decides whether this
  /// thread's crossings run boundary hooks at all — the all-function
  /// hooks (the trace recorder) and the per-function machine hooks alike.
  /// An unsampled thread pays only this cached lookup per crossing; a
  /// sampled thread is fully recorded and fully checked, which is what
  /// keeps its reports byte-replayable from the retained trace.
  /// The predicate must be pure and deterministic (the Jinn agent derives
  /// it from a seeded SplitMix64 stream over the thread identity).
  using SamplePredicate = std::function<bool(jvm::JThread &)>;

  /// Installs (or, with nullptr, removes) the sampling predicate.
  void setSampler(SamplePredicate Fn);
  bool samplingEnabled() const {
    return SamplerGen.load(std::memory_order_relaxed) != 0;
  }

  /// Whether \p Thread's crossings are recorded and checked. Always true
  /// without a sampler. Used by runPre/runPost and by the synthesized
  /// native wrapper to gate the whole boundary.
  bool checksThread(jvm::JThread &Thread) const;

  /// Teardown-only (not safe against concurrent crossings, unlike the
  /// add* installers): drops every hook, the sampler, and the fused table.
  void clear();

private:
  static constexpr uint8_t HasPre = 1;
  static constexpr uint8_t HasPost = 2;

  std::array<HookList, jni::NumJniFunctions> Pre;
  std::array<HookList, jni::NumJniFunctions> Post;
  HookList PreAll;
  HookList PostAll;
  /// HasPre/HasPost bits per function, maintained incrementally by addPre
  /// and addPost — the sparse hook table the wrapper fast path reads.
  std::array<std::atomic<uint8_t>, jni::NumJniFunctions> HookMask{};
  std::atomic<bool> AnyPreAll{false};
  std::atomic<bool> AnyPostAll{false};
  std::atomic<bool> ElisionEnabled{false};
  /// Serializes hook/sampler installation (installation is rare; crossings
  /// never take this lock).
  std::mutex InstallMu;
  /// Sampling predicate plus its generation tag: the thread-local decision
  /// cache is keyed by (generation, thread id), so replacing the sampler
  /// or reattaching an OS thread under a new VM thread id invalidates the
  /// cache without any cross-thread bookkeeping. The predicate itself is
  /// only read under InstallMu, on a cache miss.
  SamplePredicate Sampler;
  std::atomic<uint64_t> SamplerGen{0};
  /// Fused tier state: the atomic pointer is the per-crossing tier check;
  /// the owner keeps the table (and its compiled program) alive across
  /// demotion for crossings already running fused.
  std::atomic<const FusedTable *> FusedPtr{nullptr};
  std::shared_ptr<const FusedTable> FusedOwner;
  std::atomic<uint64_t> Demotions{0};
};

/// The generated interposed function table (shared, immutable).
const JNINativeInterface_ *interposedTable();

/// Returns the dispatcher of \p Runtime, creating and installing the
/// interposed table on first use.
InterposeDispatcher &dispatcherFor(jni::JniRuntime &Runtime);

/// Removes interposition from \p Runtime (restores the default table).
void removeInterposition(jni::JniRuntime &Runtime);

} // namespace jinn::jvmti

#endif // JINN_JVMTI_INTERPOSE_H
