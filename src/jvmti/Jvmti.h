//===- jvmti/Jvmti.h - JVM Tools Interface (events, agents) --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vendor-neutral tools interface Jinn relies on (paper §1, §4): agents
/// are loaded with the VM, receive thread/VM-death/GC/native-bind events,
/// may interpose on the JNI function table, and can inspect references
/// without perturbing the program. "To the JVM, Jinn looks like normal user
/// code, whereas to user code Jinn is invisible."
///
//===----------------------------------------------------------------------===//

#ifndef JINN_JVMTI_JVMTI_H
#define JINN_JVMTI_JVMTI_H

#include "jvmti/Interpose.h"

#include <functional>
#include <memory>
#include <vector>

namespace jinn::jvmti {

/// Event callbacks an agent can register (SetEventCallbacks analogue).
struct EventCallbacks {
  std::function<void(jvm::JThread &)> ThreadStart;
  std::function<void(jvm::JThread &)> ThreadEnd;
  std::function<void()> VmDeath;
  std::function<void()> GcFinish;
  /// NativeMethodBind: may replace the bound function with a wrapper.
  std::function<void(jvm::MethodInfo &, jni::JniNativeStdFn &)>
      NativeMethodBind;
};

/// One agent's tools-interface environment.
class JvmtiEnv : public jvm::VmEventObserver, public jni::NativeBindObserver {
public:
  explicit JvmtiEnv(jni::JniRuntime &Runtime);
  ~JvmtiEnv() override;
  JvmtiEnv(const JvmtiEnv &) = delete;
  JvmtiEnv &operator=(const JvmtiEnv &) = delete;

  jvm::Vm &vm() { return Runtime.vm(); }
  jni::JniRuntime &runtime() { return Runtime; }

  void setEventCallbacks(EventCallbacks Callbacks);

  /// The shared hook dispatcher; first use installs the interposed table
  /// (SetJNIFunctionTable analogue).
  InterposeDispatcher &dispatcher() { return dispatcherFor(Runtime); }

  /// Canonical object identity of a reference (tag analogue): stable for
  /// an object's lifetime, 0 for null/invalid handles. Never trips the
  /// undefined-behavior policy.
  int64_t getObjectIdentity(jobject Ref);

  /// Policy-free handle inspection from \p Perspective's point of view.
  jvm::Vm::PeekResult peek(uint64_t Word, const jvm::JThread *Perspective) {
    return vm().peekHandle(Word, Perspective);
  }

  void forceGarbageCollection() { vm().gc(); }

  // VmEventObserver
  void onThreadStart(jvm::JThread &Thread) override;
  void onThreadEnd(jvm::JThread &Thread) override;
  void onVmDeath() override;
  void onGcFinish() override;
  // NativeBindObserver
  void onNativeMethodBind(jvm::MethodInfo &Method,
                          jni::JniNativeStdFn &Bound) override;

private:
  jni::JniRuntime &Runtime;
  EventCallbacks Callbacks;
};

/// A dynamic-analysis agent (-agentlib analogue). The host constructs a
/// JvmtiEnv for each agent and calls onLoad.
class Agent {
public:
  virtual ~Agent();
  virtual const char *name() const = 0;
  virtual void onLoad(JavaVM *Vm, JvmtiEnv &Jvmti) = 0;
};

/// Loads and owns agents for one VM, mirroring the JVM's -agentlib
/// start-up path.
class AgentHost {
public:
  explicit AgentHost(jni::JniRuntime &Runtime);

  /// Loads \p TheAgent (fires its onLoad) and takes ownership.
  Agent &load(std::unique_ptr<Agent> TheAgent);

  Agent *find(std::string_view Name);

private:
  jni::JniRuntime &Runtime;
  std::vector<std::pair<std::unique_ptr<Agent>, std::unique_ptr<JvmtiEnv>>>
      Agents;
};

} // namespace jinn::jvmti

#endif // JINN_JVMTI_JVMTI_H
