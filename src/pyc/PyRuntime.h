//===- pyc/PyRuntime.h - Miniature Python/C API substrate ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature Python 2.6-era interpreter core and its C API, sufficient
/// for the paper's §7 generalization: reference-counted objects (ints,
/// strings, lists, tuples, None), a pending-exception slot, the Global
/// Interpreter Lock, and the C API functions the Figure 11 bug exercises.
///
/// Substitution note (paper §7.2): real Python/C has no JVMTI equivalent —
/// the authors replaced C macros with functions, copied interpreter-internal
/// entry points, and wrapped variadic functions to interpose. This
/// reproduction routes every extension-level call through a function table
/// (PyApi), so a checker interposes by table swap exactly as for JNI; the
/// interpreter's internal operations do not go through the table, matching
/// the authors' interpreter-only copies.
///
/// Dangling references are *observable*: deallocated objects go on a free
/// list and are recycled by later allocations, so a stale PyObject* really
/// does alias a different (or dead) object, as in CPython.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_PYC_PYRUNTIME_H
#define JINN_PYC_PYRUNTIME_H

#include "support/Diagnostics.h"

#include <cstdarg>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jinn::pyc {

struct PyApi;

/// Object kinds (CPython type objects reduced to an enum).
enum class PyKind : uint8_t { None, Bool, Int, Str, List, Tuple, ExcType };

const char *pyKindName(PyKind Kind);

/// A Python object. Extensions hold raw PyObject* — exactly the unsafe
/// currency of the real Python/C API.
struct PyObject {
  int64_t RefCnt = 0;
  PyKind Kind = PyKind::None;
  bool Freed = true;
  uint32_t Gen = 0; ///< bumped on every (re)allocation of this slot

  int64_t IntVal = 0;
  std::string StrVal;
  std::vector<PyObject *> Items; ///< List/Tuple payload (owned references)
};

/// Interpreter statistics.
struct PyStats {
  uint64_t Allocated = 0;
  uint64_t Deallocated = 0;
  uint64_t SlotReuses = 0;
};

/// The interpreter instance.
class PyInterp {
public:
  PyInterp();
  ~PyInterp();
  PyInterp(const PyInterp &) = delete;
  PyInterp &operator=(const PyInterp &) = delete;

  //===--------------------------------------------------------------------===
  // Allocation / reference counting (interpreter-internal entry points)
  //===--------------------------------------------------------------------===

  /// Allocates an object with refcount 1, reusing freed slots.
  PyObject *alloc(PyKind Kind);
  void incref(PyObject *Obj);
  /// Decrements; deallocates at zero (recursively releasing container
  /// items) and returns true when the object died.
  bool decref(PyObject *Obj);

  /// True when \p Obj is a live object of this interpreter.
  bool isLive(const PyObject *Obj) const;

  //===--------------------------------------------------------------------===
  // Singletons and exception state
  //===--------------------------------------------------------------------===

  PyObject *none() { return &NoneObj; }
  PyObject *excRuntimeError() { return &RuntimeErrorType; }
  PyObject *excTypeError() { return &TypeErrorType; }
  PyObject *excSystemError() { return &SystemErrorType; }

  /// Pending-exception slot (type + message), as in CPython's thread state.
  PyObject *PendingType = nullptr;
  std::string PendingMessage;

  //===--------------------------------------------------------------------===
  // The GIL
  //===--------------------------------------------------------------------===

  /// Nesting depth of GIL acquisition by the (single simulated) thread.
  int GilDepth = 1;

  DiagnosticSink &diags() { return Diags; }
  const PyStats &stats() const { return Stats; }

  /// Live object count (excluding singletons).
  size_t liveCount() const;

  /// Opaque backpointer for the checker (see pyjinn).
  void *CheckerHandle = nullptr;

  /// The function table extension calls go through (swapped by checkers).
  const PyApi *ActiveApi = nullptr;

private:
  std::vector<std::unique_ptr<PyObject>> Arena;
  std::vector<PyObject *> FreeList;
  PyObject NoneObj;
  PyObject RuntimeErrorType;
  PyObject TypeErrorType;
  PyObject SystemErrorType;
  DiagnosticSink Diags;
  PyStats Stats;
};

//===----------------------------------------------------------------------===
// The extension-facing C API (function table)
//===----------------------------------------------------------------------===

using Py_ssize_t = int64_t;

/// The Python/C function table extensions call through. A checker
/// interposes by replacing the table (cf. JNIEnv function table).
struct PyApi {
  // Reference counting (Py_INCREF / Py_DECREF as functions, paper §7.2).
  void (*Py_IncRef)(PyInterp *, PyObject *);
  void (*Py_DecRef)(PyInterp *, PyObject *);

  // Scalars and strings.
  PyObject *(*PyInt_FromLong)(PyInterp *, long);          // new ref
  long (*PyInt_AsLong)(PyInterp *, PyObject *);
  PyObject *(*PyString_FromString)(PyInterp *, const char *); // new ref
  const char *(*PyString_AsString)(PyInterp *, PyObject *);   // borrowed buf

  // Lists.
  PyObject *(*PyList_New)(PyInterp *, Py_ssize_t);        // new ref
  Py_ssize_t (*PyList_Size)(PyInterp *, PyObject *);
  PyObject *(*PyList_GetItem)(PyInterp *, PyObject *, Py_ssize_t); // BORROWED
  int (*PyList_SetItem)(PyInterp *, PyObject *, Py_ssize_t,
                        PyObject *);                      // steals item
  int (*PyList_Append)(PyInterp *, PyObject *, PyObject *);

  // Tuples.
  PyObject *(*PyTuple_New)(PyInterp *, Py_ssize_t);       // new ref
  PyObject *(*PyTuple_GetItem)(PyInterp *, PyObject *, Py_ssize_t); // BORROWED
  int (*PyTuple_SetItem)(PyInterp *, PyObject *, Py_ssize_t,
                         PyObject *);                     // steals item

  // Py_BuildValue subset: "i", "s", "[s...]", "(...)" of i/s. The variadic
  // form delegates through the active table's non-variadic Py_VaBuildValue
  // — the same treatment the paper gave Python's variadic functions (§7.2).
  PyObject *(*Py_BuildValue)(PyInterp *, const char *, ...); // new ref
  PyObject *(*Py_VaBuildValue)(PyInterp *, const char *, va_list);

  // Exceptions.
  void (*PyErr_SetString)(PyInterp *, PyObject *Type, const char *Message);
  PyObject *(*PyErr_Occurred)(PyInterp *); // borrowed
  void (*PyErr_Clear)(PyInterp *);

  // The GIL.
  int (*PyGILState_Ensure)(PyInterp *);
  void (*PyGILState_Release)(PyInterp *, int Handle);
  void *(*PyEval_SaveThread)(PyInterp *);   // releases the GIL
  void (*PyEval_RestoreThread)(PyInterp *, void *State);
};

/// The default (unchecked, production) API table.
const PyApi *defaultPyApi();

/// Per-interpreter active table (checkers swap it).
const PyApi *activePyApi(PyInterp &Interp);
void setActivePyApi(PyInterp &Interp, const PyApi *Table);

} // namespace jinn::pyc

#endif // JINN_PYC_PYRUNTIME_H
