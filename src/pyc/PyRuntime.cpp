//===- pyc/PyRuntime.cpp - Miniature Python/C API substrate --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pyc/PyRuntime.h"

#include "mutate/Mutation.h"

#include "support/Compiler.h"
#include "support/Format.h"

#include <cassert>

using namespace jinn;
using namespace jinn::pyc;

const char *jinn::pyc::pyKindName(PyKind Kind) {
  switch (Kind) {
  case PyKind::None:
    return "NoneType";
  case PyKind::Bool:
    return "bool";
  case PyKind::Int:
    return "int";
  case PyKind::Str:
    return "str";
  case PyKind::List:
    return "list";
  case PyKind::Tuple:
    return "tuple";
  case PyKind::ExcType:
    return "type";
  }
  JINN_UNREACHABLE("invalid PyKind");
}

PyInterp::PyInterp() {
  auto InitSingleton = [](PyObject &Obj, PyKind Kind, const char *Name) {
    Obj.RefCnt = 1;
    Obj.Kind = Kind;
    Obj.Freed = false;
    Obj.Gen = 1;
    Obj.StrVal = Name;
  };
  InitSingleton(NoneObj, PyKind::None, "None");
  InitSingleton(RuntimeErrorType, PyKind::ExcType, "RuntimeError");
  InitSingleton(TypeErrorType, PyKind::ExcType, "TypeError");
  InitSingleton(SystemErrorType, PyKind::ExcType, "SystemError");
  ActiveApi = defaultPyApi();
}

PyInterp::~PyInterp() = default;

PyObject *PyInterp::alloc(PyKind Kind) {
  PyObject *Obj;
  if (!FreeList.empty()) {
    Obj = FreeList.back();
    FreeList.pop_back();
    ++Stats.SlotReuses;
  } else {
    Arena.push_back(std::make_unique<PyObject>());
    Obj = Arena.back().get();
  }
  Obj->RefCnt = 1;
  Obj->Kind = Kind;
  Obj->Freed = false;
  Obj->Gen += 1;
  Obj->IntVal = 0;
  Obj->StrVal.clear();
  Obj->Items.clear();
  ++Stats.Allocated;
  return Obj;
}

void PyInterp::incref(PyObject *Obj) {
  if (!Obj)
    return;
  if (Obj->Freed) {
    Diags.report(IncidentKind::UndefinedState, "pyc",
                 "Py_INCREF on a deallocated object");
    return;
  }
  Obj->RefCnt += 1;
}

bool PyInterp::decref(PyObject *Obj) {
  if (!Obj)
    return false;
  if (Obj->Freed) {
    if (mutate::active(mutate::M::PycDecrefFreedUnchecked))
      return false; // mutant: the double free goes unnoticed
    Diags.report(IncidentKind::SimulatedCrash, "pyc",
                 "Py_DECREF on a deallocated object (double free)");
    return false;
  }
  Obj->RefCnt -= 1;
  if (Obj->RefCnt > 0)
    return false;
  if (Obj == &NoneObj || Obj->Kind == PyKind::ExcType) {
    Diags.report(IncidentKind::SimulatedCrash, "pyc",
                 "refcount of an immortal object dropped to zero");
    Obj->RefCnt = 1;
    return false;
  }
  // Deallocate: container items lose one reference each; the slot becomes
  // recyclable (real memory reuse is what makes dangling pointers bite).
  std::vector<PyObject *> Children = std::move(Obj->Items);
  Obj->Items.clear();
  Obj->Freed = true;
  Obj->StrVal = "<freed>";
  FreeList.push_back(Obj);
  ++Stats.Deallocated;
  for (PyObject *Child : Children)
    decref(Child);
  return true;
}

bool PyInterp::isLive(const PyObject *Obj) const {
  return Obj && !Obj->Freed;
}

size_t PyInterp::liveCount() const {
  size_t N = 0;
  for (const auto &Obj : Arena)
    if (!Obj->Freed)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===
// Default API implementation
//===----------------------------------------------------------------------===

namespace {

void raiseSystemError(PyInterp *I, const std::string &Message) {
  I->PendingType = I->excSystemError();
  I->PendingMessage = Message;
  I->diags().report(IncidentKind::UndefinedState, "pyc", Message);
}

/// Production behavior for using a freed object: CPython reads reused
/// memory — undefined state, sometimes a crash.
bool checkLiveProduction(PyInterp *I, PyObject *Obj, const char *Fn) {
  if (!Obj) {
    I->diags().report(IncidentKind::SimulatedCrash, "pyc",
                      formatString("%s called with NULL", Fn));
    return false;
  }
  if (Obj->Freed) {
    I->diags().report(
        IncidentKind::UndefinedState, "pyc",
        formatString("%s read a deallocated object (reused slot)", Fn));
    // Execution continues with garbage, as in a real interpreter.
  }
  return true;
}

void apiIncRef(PyInterp *I, PyObject *Obj) { I->incref(Obj); }
void apiDecRef(PyInterp *I, PyObject *Obj) { I->decref(Obj); }

PyObject *apiIntFromLong(PyInterp *I, long Value) {
  PyObject *Obj = I->alloc(PyKind::Int);
  Obj->IntVal = Value;
  return Obj;
}

long apiIntAsLong(PyInterp *I, PyObject *Obj) {
  if (!checkLiveProduction(I, Obj, "PyInt_AsLong"))
    return -1;
  if (Obj->Kind != PyKind::Int) {
    raiseSystemError(I, "PyInt_AsLong on a non-int");
    return -1;
  }
  return static_cast<long>(Obj->IntVal);
}

PyObject *apiStringFromString(PyInterp *I, const char *Value) {
  if (!Value) {
    raiseSystemError(I, "PyString_FromString(NULL)");
    return nullptr;
  }
  PyObject *Obj = I->alloc(PyKind::Str);
  Obj->StrVal = Value;
  return Obj;
}

const char *apiStringAsString(PyInterp *I, PyObject *Obj) {
  if (!checkLiveProduction(I, Obj, "PyString_AsString"))
    return nullptr;
  if (Obj->Freed)
    return Obj->StrVal.c_str(); // "<freed>" — garbage, but readable
  if (Obj->Kind != PyKind::Str) {
    raiseSystemError(I, "PyString_AsString on a non-string");
    return nullptr;
  }
  return Obj->StrVal.c_str();
}

PyObject *apiListNew(PyInterp *I, Py_ssize_t Size) {
  PyObject *Obj = I->alloc(PyKind::List);
  Obj->Items.assign(Size > 0 ? static_cast<size_t>(Size) : 0, nullptr);
  return Obj;
}

Py_ssize_t apiListSize(PyInterp *I, PyObject *List) {
  if (!checkLiveProduction(I, List, "PyList_Size") ||
      List->Kind != PyKind::List)
    return -1;
  return static_cast<Py_ssize_t>(List->Items.size());
}

PyObject *apiListGetItem(PyInterp *I, PyObject *List, Py_ssize_t Index) {
  if (!checkLiveProduction(I, List, "PyList_GetItem"))
    return nullptr;
  if (List->Kind != PyKind::List || Index < 0 ||
      static_cast<size_t>(Index) >= List->Items.size()) {
    raiseSystemError(I, "PyList_GetItem index out of range");
    return nullptr;
  }
  return List->Items[Index]; // borrowed reference
}

int apiListSetItem(PyInterp *I, PyObject *List, Py_ssize_t Index,
                   PyObject *Item) {
  if (!checkLiveProduction(I, List, "PyList_SetItem"))
    return -1;
  if (List->Kind != PyKind::List || Index < 0 ||
      static_cast<size_t>(Index) >= List->Items.size()) {
    raiseSystemError(I, "PyList_SetItem index out of range");
    if (Item)
      I->decref(Item); // SetItem steals even on failure, per CPython
    return -1;
  }
  if (PyObject *Old = List->Items[Index])
    I->decref(Old);
  List->Items[Index] = Item; // steals the reference
  return 0;
}

int apiListAppend(PyInterp *I, PyObject *List, PyObject *Item) {
  if (!checkLiveProduction(I, List, "PyList_Append") || !Item)
    return -1;
  if (List->Kind != PyKind::List) {
    raiseSystemError(I, "PyList_Append on a non-list");
    return -1;
  }
  I->incref(Item); // Append borrows the argument and takes its own ref
  List->Items.push_back(Item);
  return 0;
}

PyObject *apiTupleNew(PyInterp *I, Py_ssize_t Size) {
  PyObject *Obj = I->alloc(PyKind::Tuple);
  Obj->Items.assign(Size > 0 ? static_cast<size_t>(Size) : 0, nullptr);
  return Obj;
}

PyObject *apiTupleGetItem(PyInterp *I, PyObject *Tuple, Py_ssize_t Index) {
  if (!checkLiveProduction(I, Tuple, "PyTuple_GetItem"))
    return nullptr;
  if (Tuple->Kind != PyKind::Tuple || Index < 0 ||
      static_cast<size_t>(Index) >= Tuple->Items.size()) {
    raiseSystemError(I, "PyTuple_GetItem index out of range");
    return nullptr;
  }
  return Tuple->Items[Index]; // borrowed
}

int apiTupleSetItem(PyInterp *I, PyObject *Tuple, Py_ssize_t Index,
                    PyObject *Item) {
  if (!checkLiveProduction(I, Tuple, "PyTuple_SetItem"))
    return -1;
  if (Tuple->Kind != PyKind::Tuple || Index < 0 ||
      static_cast<size_t>(Index) >= Tuple->Items.size()) {
    raiseSystemError(I, "PyTuple_SetItem index out of range");
    if (Item)
      I->decref(Item);
    return -1;
  }
  if (PyObject *Old = Tuple->Items[Index])
    I->decref(Old);
  Tuple->Items[Index] = Item; // steals
  return 0;
}

PyObject *apiVaBuildValue(PyInterp *I, const char *Fmt, va_list Args) {
  if (!Fmt)
    return nullptr;
  // Subset parser: i, s, [..], (..). Containers may nest.
  struct Parser {
    PyInterp *I;
    const char *P;
    va_list Args; // va_copy'd; consumed across recursive calls
    PyObject *one() {
      switch (*P) {
      case 'i': {
        ++P;
        return apiIntFromLong(I, va_arg(Args, long));
      }
      case 's': {
        ++P;
        return apiStringFromString(I, va_arg(Args, const char *));
      }
      case '[':
      case '(': {
        char Close = *P == '[' ? ']' : ')';
        ++P;
        PyObject *Out = I->alloc(Close == ']' ? PyKind::List : PyKind::Tuple);
        while (*P && *P != Close) {
          PyObject *Item = one();
          if (!Item) {
            I->decref(Out);
            return nullptr;
          }
          Out->Items.push_back(Item); // container owns the new reference
        }
        if (*P == Close)
          ++P;
        return Out;
      }
      default:
        raiseSystemError(I, formatString("Py_BuildValue: bad format "
                                         "character '%c'",
                                         *P));
        return nullptr;
      }
    }
  };
  Parser Parse;
  Parse.I = I;
  Parse.P = Fmt;
  va_copy(Parse.Args, Args);
  PyObject *Out = Parse.one();
  va_end(Parse.Args);
  return Out;
}

PyObject *apiBuildValue(PyInterp *I, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  PyObject *Out = I->ActiveApi->Py_VaBuildValue(I, Fmt, Args);
  va_end(Args);
  return Out;
}

void apiErrSetString(PyInterp *I, PyObject *Type, const char *Message) {
  I->PendingType = Type;
  I->PendingMessage = Message ? Message : "";
}

PyObject *apiErrOccurred(PyInterp *I) { return I->PendingType; }

void apiErrClear(PyInterp *I) {
  I->PendingType = nullptr;
  I->PendingMessage.clear();
}

int apiGilEnsure(PyInterp *I) {
  I->GilDepth += 1;
  return I->GilDepth;
}

void apiGilRelease(PyInterp *I, int Handle) {
  (void)Handle;
  if (I->GilDepth <= 0) {
    I->diags().report(IncidentKind::SimulatedCrash, "pyc",
                      "PyGILState_Release without the GIL");
    return;
  }
  I->GilDepth -= 1;
}

void *apiEvalSaveThread(PyInterp *I) {
  if (I->GilDepth <= 0) {
    I->diags().report(IncidentKind::SimulatedCrash, "pyc",
                      "PyEval_SaveThread without the GIL");
    return nullptr;
  }
  I->GilDepth -= 1;
  return I;
}

void apiEvalRestoreThread(PyInterp *I, void *State) {
  (void)State;
  I->GilDepth += 1;
}

const PyApi DefaultApi = {
    apiIncRef,        apiDecRef,       apiIntFromLong,  apiIntAsLong,
    apiStringFromString, apiStringAsString, apiListNew,  apiListSize,
    apiListGetItem,   apiListSetItem,  apiListAppend,   apiTupleNew,
    apiTupleGetItem,  apiTupleSetItem, apiBuildValue,   apiVaBuildValue,
    apiErrSetString,  apiErrOccurred,  apiErrClear,     apiGilEnsure,
    apiGilRelease,    apiEvalSaveThread, apiEvalRestoreThread,
};

} // namespace

const PyApi *jinn::pyc::defaultPyApi() { return &DefaultApi; }

const PyApi *jinn::pyc::activePyApi(PyInterp &Interp) {
  return Interp.ActiveApi;
}

void jinn::pyc::setActivePyApi(PyInterp &Interp, const PyApi *Table) {
  Interp.ActiveApi = Table ? Table : &DefaultApi;
}
