//===- support/Rng.h - Deterministic pseudo-random numbers ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 generator used by workloads and property tests. Deterministic
/// by construction so every experiment is reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SUPPORT_RNG_H
#define JINN_SUPPORT_RNG_H

#include <cstdint>

namespace jinn {

/// SplitMix64: tiny, fast, and statistically adequate for workload shuffling
/// and property-test case generation.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  uint64_t State;
};

} // namespace jinn

#endif // JINN_SUPPORT_RNG_H
