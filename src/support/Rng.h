//===- support/Rng.h - Deterministic pseudo-random numbers ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 generator used by workloads and property tests. Deterministic
/// by construction so every experiment is reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SUPPORT_RNG_H
#define JINN_SUPPORT_RNG_H

#include <cstdint>

namespace jinn {

/// SplitMix64: tiny, fast, and statistically adequate for workload shuffling
/// and property-test case generation.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    return mix(State);
  }

  /// Derives the seed of child stream \p StreamId without advancing this
  /// generator: two mix rounds over (state, stream id) so sibling streams
  /// are decorrelated even for adjacent ids, and a re-derived stream is
  /// bit-identical as long as the parent has not been advanced in between.
  uint64_t streamSeed(uint64_t StreamId) const {
    uint64_t Z = mix(State + 0x9e3779b97f4a7c15ULL * (StreamId + 1));
    return mix(Z ^ 0xd6e8feb86659fd93ULL);
  }

  /// Child generator for stream \p StreamId (per machine, per worker, per
  /// sequence...). Derivation is const: splitting never perturbs the
  /// parent, so split order cannot change what any stream produces.
  SplitMix64 split(uint64_t StreamId) const {
    return SplitMix64(streamSeed(StreamId));
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  /// The SplitMix64 output function over an arbitrary word.
  static uint64_t mix(uint64_t Z) {
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  uint64_t State;
};

} // namespace jinn

#endif // JINN_SUPPORT_RNG_H
