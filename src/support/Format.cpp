//===- support/Format.cpp - printf-style formatting into std::string -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>
#include <vector>

using namespace jinn;

std::string jinn::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string jinn::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatStringV(Fmt, Args);
  va_end(Args);
  return Out;
}
