//===- support/Compiler.h - Small portability and invariant helpers ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal compiler helpers shared by every library in the project. The
/// project follows LLVM conventions: programmatic errors abort through
/// jinnUnreachable, recoverable conditions travel through explicit status
/// values (never C++ exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SUPPORT_COMPILER_H
#define JINN_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace jinn {

/// Aborts the process after printing \p Msg. Marks code paths that are
/// impossible when the program's invariants hold (LLVM's llvm_unreachable).
[[noreturn]] inline void jinnUnreachable(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace jinn

#define JINN_UNREACHABLE(MSG) ::jinn::jinnUnreachable(MSG, __FILE__, __LINE__)

#endif // JINN_SUPPORT_COMPILER_H
