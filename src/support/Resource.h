//===- support/Resource.h - Process resource measurements ----------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small process-level resource probes for the production-monitoring
/// subsystem and its benches: currently the resident set size, read from
/// /proc/self/statm. Header-only so harnesses outside the core libraries
/// (benches, tools) can use it without extra link edges.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SUPPORT_RESOURCE_H
#define JINN_SUPPORT_RESOURCE_H

#include <cstdint>
#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace jinn {

/// Current resident set size in bytes. Returns 0 where the probe is
/// unavailable (non-Linux); callers must treat 0 as "unknown", not "tiny".
inline uint64_t currentRssBytes() {
#if defined(__linux__)
  if (std::FILE *File = std::fopen("/proc/self/statm", "r")) {
    unsigned long long TotalPages = 0, ResidentPages = 0;
    int Fields = std::fscanf(File, "%llu %llu", &TotalPages, &ResidentPages);
    std::fclose(File);
    if (Fields == 2) {
      long PageSize = ::sysconf(_SC_PAGESIZE);
      if (PageSize <= 0)
        PageSize = 4096;
      return static_cast<uint64_t>(ResidentPages) *
             static_cast<uint64_t>(PageSize);
    }
  }
#endif
  return 0;
}

} // namespace jinn

#endif // JINN_SUPPORT_RESOURCE_H
