//===- support/Diagnostics.cpp - Incident recording ----------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/Compiler.h"

#include <cstdio>

using namespace jinn;

const char *jinn::incidentKindName(IncidentKind Kind) {
  switch (Kind) {
  case IncidentKind::Note:
    return "note";
  case IncidentKind::Warning:
    return "warning";
  case IncidentKind::FatalError:
    return "error";
  case IncidentKind::SimulatedCrash:
    return "crash";
  case IncidentKind::UndefinedState:
    return "running";
  case IncidentKind::LeakReport:
    return "leak";
  case IncidentKind::PotentialDeadlock:
    return "deadlock";
  }
  JINN_UNREACHABLE("invalid IncidentKind");
}

DiagnosticSink::Output::~Output() = default;

void DiagnosticSink::StderrOutput::write(const Incident &Incident) {
  std::fprintf(stderr, "[%s] %s: %s\n", Incident.Channel.c_str(),
               incidentKindName(Incident.Kind), Incident.Message.c_str());
}

void DiagnosticSink::report(IncidentKind Kind, std::string Channel,
                            std::string Message) {
  Incident Event{Kind, std::move(Channel), std::move(Message)};
  if (Plugged) {
    Plugged->write(Event);
  } else if (Echo) {
    static StderrOutput Stderr;
    Stderr.write(Event);
  }
  std::lock_guard<std::mutex> Lock(Mu);
  Incidents.push_back(std::move(Event));
}

size_t DiagnosticSink::count(IncidentKind Kind) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const Incident &I : Incidents)
    if (I.Kind == Kind)
      ++N;
  return N;
}

size_t DiagnosticSink::count(IncidentKind Kind,
                             const std::string &Channel) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const Incident &I : Incidents)
    if (I.Kind == Kind && I.Channel == Channel)
      ++N;
  return N;
}
