//===- support/Diagnostics.h - Incident recording for experiments --------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation classifies what happens when a buggy program runs:
/// silent undefined execution, a crash, a printed warning, a fatal error, a
/// leak report, a deadlock risk, or a thrown checker exception (Table 1).
/// Production JVMs abort the process for several of these; this reproduction
/// must observe them from a test harness instead, so every such event is
/// recorded as an Incident in a DiagnosticSink rather than performed for
/// real. A "simulated crash" therefore never calls abort(); it poisons the
/// faulting thread and leaves a record the harness can classify.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SUPPORT_DIAGNOSTICS_H
#define JINN_SUPPORT_DIAGNOSTICS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace jinn {

/// What kind of observable event a runtime component recorded.
enum class IncidentKind {
  Note,              ///< informational trace
  Warning,           ///< diagnosis printed, execution continues
  FatalError,        ///< diagnosis printed, execution aborted (simulated)
  SimulatedCrash,    ///< undefined behavior tripped a (simulated) SIGSEGV
  UndefinedState,    ///< undefined behavior silently continued ("running")
  LeakReport,        ///< unreleased resource reported at VM death
  PotentialDeadlock, ///< blocking operation in a forbidden context
};

/// Returns a stable short name for \p Kind ("warning", "crash", ...).
const char *incidentKindName(IncidentKind Kind);

/// One recorded event. \c Channel identifies the reporting component
/// ("jvm", "xcheck:hotspot", "jinn", "pyc", ...).
struct Incident {
  IncidentKind Kind;
  std::string Channel;
  std::string Message;
};

/// Accumulates incidents for later classification by tests and benchmark
/// harnesses. Optionally echoes each incident to stderr as it arrives.
/// Recording is thread-safe; incidents() returns a reference the caller
/// must only traverse once reporting threads have quiesced (tests join
/// their workers before classifying).
class DiagnosticSink {
public:
  /// Where incidents are delivered as they arrive. The built-in default
  /// prints to stderr (gated on setEcho); harnesses and tools plug in
  /// their own to capture or reroute diagnostics in-process.
  class Output {
  public:
    virtual ~Output();
    virtual void write(const Incident &Incident) = 0;
  };

  /// The default Output: "[channel] kind: message" on stderr.
  class StderrOutput : public Output {
  public:
    void write(const Incident &Incident) override;
  };

  /// Records one incident and delivers it to the output: a plugged-in
  /// Output sees every incident; the default stderr output only fires
  /// when echoing is enabled.
  void report(IncidentKind Kind, std::string Channel, std::string Message);

  /// Routes incidents to \p Out (nullptr restores the stderr default).
  /// \p Out must outlive the sink or be reset before it dies; delivery
  /// happens outside the sink's lock, so Out must be thread-safe if
  /// reporting is concurrent.
  void setOutput(Output *Out) { Plugged = Out; }

  /// All incidents in arrival order.
  const std::vector<Incident> &incidents() const { return Incidents; }

  /// Number of incidents of kind \p Kind.
  size_t count(IncidentKind Kind) const;

  /// Number of incidents of kind \p Kind reported on \p Channel.
  size_t count(IncidentKind Kind, const std::string &Channel) const;

  /// True if any incident of kind \p Kind was recorded.
  bool has(IncidentKind Kind) const { return count(Kind) != 0; }

  /// Drops all recorded incidents (named counters are kept).
  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Incidents.clear();
  }

  /// Publishes the latest value of named counter \p Name (overwriting any
  /// previous value). Used for machine-level contention proxies such as
  /// per-machine lock-acquire totals.
  void setCounter(const std::string &Name, uint64_t Value) {
    std::lock_guard<std::mutex> Lock(Mu);
    Counters[Name] = Value;
  }

  /// Latest published value of counter \p Name (0 when never set).
  uint64_t counter(const std::string &Name) const {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Counters.find(Name);
    return It != Counters.end() ? It->second : 0;
  }

  /// All named counters, sorted by name. Same quiesce rule as incidents().
  const std::map<std::string, uint64_t> &counters() const { return Counters; }

  /// Controls stderr echoing (off by default; tests keep it off).
  void setEcho(bool Value) { Echo = Value; }

private:
  mutable std::mutex Mu;
  std::vector<Incident> Incidents;
  std::map<std::string, uint64_t> Counters;
  Output *Plugged = nullptr;
  bool Echo = false;
};

} // namespace jinn

#endif // JINN_SUPPORT_DIAGNOSTICS_H
