//===- support/Format.h - printf-style formatting into std::string -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// formatString renders a printf-style format into an owned std::string.
/// Diagnostic messages throughout the project are built with it so that
/// library code never touches iostreams.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SUPPORT_FORMAT_H
#define JINN_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>

namespace jinn {

/// Renders \p Fmt with printf semantics into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list flavor of formatString.
std::string formatStringV(const char *Fmt, va_list Args);

} // namespace jinn

#endif // JINN_SUPPORT_FORMAT_H
