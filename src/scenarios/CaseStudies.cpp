//===- scenarios/CaseStudies.cpp - §6.4 open-source bug reproductions ----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "scenarios/CaseStudies.h"

using namespace jinn;
using namespace jinn::scenarios;

std::vector<size_t> jinn::scenarios::subversionLocalRefSeries(bool Fixed,
                                                              size_t Entries) {
  WorldConfig Config;
  Config.Checker = CheckerKind::Jinn;
  ScenarioWorld World(Config);

  std::vector<size_t> Series;
  World.runAsNative("Outputer", [&](JNIEnv *Env) {
    // A few long-lived references a real status walk keeps around.
    for (int I = 0; I < 4; ++I)
      Env->functions->NewStringUTF(Env, "column header");
    for (size_t Entry = 0; Entry < Entries; ++Entry) {
      // jstring jreportUUID = JNIUtil::makeJString(info->reposUUID);
      jstring ReportUuid =
          Env->functions->NewStringUTF(Env, "8e9c-4f2a-entry-uuid");
      Env->functions->GetStringUTFLength(Env, ReportUuid);
      if (Fixed) {
        // The fix the Subversion developers applied (§6.4.1):
        //   env->DeleteLocalRef(jreportUUID);
        Env->functions->DeleteLocalRef(Env, ReportUuid);
      }
      // Jinn throws on the overflowing acquisition; the original C code
      // has no exception check here, so execution continues — clear the
      // failure the way a real harness rerunning the loop would observe.
      if (Env->functions->ExceptionCheck(Env))
        Env->functions->ExceptionClear(Env);
      Series.push_back(World.Jinn->machines().LocalRef.liveCount(
          Env->thread->id()));
    }
  });
  World.shutdown();
  return Series;
}

void jinn::scenarios::runSubversionDestructorBug(ScenarioWorld &World) {
  World.runAsNative("CopySources", [](JNIEnv *Env) {
    // { JNIStringHolder path(jpath);
    jstring JPath = Env->functions->NewStringUTF(Env, "/trunk/copy.c");
    jstring MJtext = JPath; // path::m_jtext
    const char *MStr =
        Env->functions->GetStringUTFChars(Env, JPath, nullptr);
    //   env->DeleteLocalRef(jpath); }
    Env->functions->DeleteLocalRef(Env, JPath);
    // ~JNIStringHolder(): m_env->ReleaseStringUTFChars(m_jtext, m_str);
    // BUG: m_jtext is dead. Production VMs ignore it (Jikes RVM-style),
    // so the bug is a time bomb only a checker reports.
    Env->functions->ReleaseStringUTFChars(Env, MJtext, MStr);
  });
}

void jinn::scenarios::runJavaGnomeNullness(ScenarioWorld &World) {
  World.runAsNative("JavaGnomeSignal", [](JNIEnv *Env) {
    jclass Cls = Env->functions->FindClass(Env, "java/lang/Object");
    // BUG: a null method name reaches GetMethodID.
    Env->functions->GetMethodID(Env, Cls, nullptr, "()V");
  });
}

void jinn::scenarios::runJavaGnomeCallbackBug(ScenarioWorld &World) {
  runMicrobenchmark(MicroId::LocalDangling, World);
}

void jinn::scenarios::runEclipseSwtBug(ScenarioWorld &World) {
  runMicrobenchmark(MicroId::EntityTypeMismatch, World);
}
