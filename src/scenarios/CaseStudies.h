//===- scenarios/CaseStudies.h - §6.4 open-source bug reproductions ------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ports of the real-world bugs the paper's usability section found with
/// Jinn: Subversion's local-reference overflow and destructor
/// use-after-release (§6.4.1), Java-gnome's nullness and dangling-callback
/// bugs (§6.4.2), and Eclipse/SWT's entity-typing violation (§6.4.3).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SCENARIOS_CASESTUDIES_H
#define JINN_SCENARIOS_CASESTUDIES_H

#include "scenarios/Scenarios.h"

#include <vector>

namespace jinn::scenarios {

/// §6.4.1 / Figure 10: runs a Subversion-like status walk that creates one
/// jstring per repository entry under Jinn, sampling the live
/// local-reference count after each entry. \p Fixed inserts the
/// DeleteLocalRef the Subversion developers added. Returns one sample per
/// entry.
std::vector<size_t> subversionLocalRefSeries(bool Fixed, size_t Entries = 32);

/// §6.4.1: the JNIStringHolder destructor releasing through a dangling
/// local reference (CopySources.cpp). Benign on production VMs that ignore
/// the object parameter of ReleaseStringUTFChars — a time bomb.
void runSubversionDestructorBug(ScenarioWorld &World);

/// §6.4.2: Java-gnome's nullness bug (also found by the Blink debugger).
void runJavaGnomeNullness(ScenarioWorld &World);

/// §6.4.2: Java-gnome bug 576111 — the dangling callback receiver of
/// Figure 1 (same shape as the LocalDangling microbenchmark).
void runJavaGnomeCallbackBug(ScenarioWorld &World);

/// §6.4.3: Eclipse/SWT — CallStatic through a class that merely inherits
/// the method (same shape as the EntityTypeMismatch microbenchmark).
void runEclipseSwtBug(ScenarioWorld &World);

} // namespace jinn::scenarios

#endif // JINN_SCENARIOS_CASESTUDIES_H
