//===- scenarios/Scenarios.h - Microbenchmarks and the scenario runner ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation scenarios of paper §6: a suite of small JNI programs,
/// each designed to trigger one error state of the fourteen state machines
/// (the paper's 16 microbenchmarks; this reproduction has 17 detectable
/// ones because ID/reference confusion is split from dangling references,
/// plus the boundary-undetectable pitfall 8). The ScenarioWorld runs each
/// program under a configurable VM flavor and checker, and classify()
/// reduces what happened to a Table 1 cell.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SCENARIOS_SCENARIOS_H
#define JINN_SCENARIOS_SCENARIOS_H

#include "checkjni/XcheckAgent.h"
#include "jinn/JinnAgent.h"
#include "jni/JniRuntime.h"
#include "jvm/Vm.h"
#include "jvmti/Jvmti.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace jinn::scenarios {

/// One microbenchmark per machine error state (paper §6.1).
enum class MicroId : uint8_t {
  EnvMismatch,        ///< pitfall 14: JNIEnv used across threads
  PendingException,   ///< pitfall 1: sensitive call with exception pending
  CriticalViolation,  ///< pitfall 16: JNI call inside a critical region
  FixedTypeMismatch,  ///< pitfall 3: jobject passed where jclass expected
  EntityTypeMismatch, ///< §6.4.3: static call via non-declaring class
  FinalFieldWrite,    ///< pitfall 9: SetStaticIntField on a final field
  NullArgument,       ///< pitfall 2: null where non-null required
  PinLeak,            ///< pitfall 11: Get<T>ArrayElements never released
  PinDoubleFree,      ///< pitfall 11: released twice
  MonitorLeak,        ///< pitfall 11: MonitorEnter never exited
  GlobalRefLeak,      ///< pitfall 11: NewGlobalRef never deleted
  GlobalRefDangling,  ///< use of a deleted global reference
  LocalOverflow,      ///< pitfall 12: >16 local references
  LocalFrameLeak,     ///< PushLocalFrame never popped
  LocalDangling,      ///< pitfall 13: the GNOME bug of Figure 1
  LocalDoubleFree,    ///< pitfall 13: DeleteLocalRef twice
  IdRefConfusion,     ///< pitfall 6: jmethodID used as a reference
  CrossThreadLocalUse, ///< pitfall 13: a local ref used from another thread
  UnterminatedString, ///< pitfall 8: undetectable at the language boundary
  PopWithoutPush,     ///< PopLocalFrame with no frame left to pop
  PopWithoutPushFixed, ///< the same nest, balanced (fixed variant)
  MonitorExitUnmatched, ///< MonitorExit with no outstanding JNI MonitorEnter
  MonitorExitUnmatchedFixed, ///< reentrant enter/exit, balanced (fixed)
  CriticalNested,     ///< Get*Critical inside an open critical section
  CriticalNestedFixed, ///< sequential critical sections (fixed variant)
  Count,
};

/// Metadata of one microbenchmark.
struct MicroInfo {
  MicroId Id;
  const char *ClassName;  ///< the scenario's Java class name
  const char *Machine;    ///< state machine expected to fire
  int Pitfall;            ///< Liang's pitfall number (0 when unnumbered)
  const char *Description;
  bool DetectableAtBoundary; ///< false only for pitfall 8
};

const std::vector<MicroInfo> &allMicrobenchmarks();
const MicroInfo &microInfo(MicroId Id);

/// Which dynamic checker a run uses. InterposeOnly installs the wrapped
/// function table with an empty dispatcher — the paper's "Interposing"
/// column of Table 3, isolating interposition cost from check cost.
enum class CheckerKind : uint8_t { None, Xcheck, Jinn, InterposeOnly };

/// Configuration of one scenario run.
struct WorldConfig {
  jvm::VmFlavor Flavor = jvm::VmFlavor::HotSpotLike;
  CheckerKind Checker = CheckerKind::None;
  bool EchoDiagnostics = false;
  /// Boundary treatment of the Jinn agent (ignored for other checkers):
  /// inline checking, record-only, or record+replay.
  agent::TraceMode JinnMode = agent::TraceMode::InlineCheck;
  /// Recorder tuning when JinnMode records.
  trace::TraceRecorderOptions JinnRecorder;
  /// Machine-name filter forwarded to JinnOptions::EnabledMachines.
  std::vector<std::string> JinnEnabledMachines;
  /// Static check elision, forwarded to JinnOptions::SparseDispatch.
  bool JinnSparseDispatch = true;
  /// Fused tier-1 dispatch, forwarded to JinnOptions::FusedDispatch.
  bool JinnFusedDispatch = true;
  /// Lock stripes per global shadow table, forwarded to
  /// JinnOptions::ShardCount.
  unsigned JinnShardCount = agent::DefaultShardCount;
  /// Per-thread report buffer capacity, forwarded to
  /// JinnOptions::ReportBufferSize.
  size_t JinnReportBuffer = 64;
  /// Deterministic sampled checking (production monitoring), forwarded to
  /// JinnOptions::SampleRate: check 1-in-N threads; 1 checks everything.
  uint32_t JinnSampleRate = 1;
  /// Root sampling seed, forwarded to JinnOptions::SampleSeed.
  uint64_t JinnSampleSeed = 0x6a696e6e5eedULL;
  /// GC pause shape, forwarded to VmOptions::IncrementalMark: spread the
  /// mark over budgeted stop-the-world increments instead of one pause.
  bool IncrementalMark = true;
  /// Objects traced per mark increment (VmOptions::GcMarkStepBudget).
  uint32_t GcMarkStepBudget = 2048;
  /// Slots reserved per TLAB refill (VmOptions::TlabSlots).
  uint32_t TlabSlots = 64;
};

/// A fresh VM + JNI runtime + (optionally) a checker agent, plus helpers
/// to run scenario code as a native method called from Java.
class ScenarioWorld {
public:
  explicit ScenarioWorld(WorldConfig Config);

  WorldConfig Config;
  jvm::Vm Vm;
  jni::JniRuntime Rt;
  jvmti::AgentHost Host;
  agent::JinnAgent *Jinn = nullptr;
  checkjni::XcheckAgent *Xcheck = nullptr;

  JNIEnv *env() { return Rt.mainEnv(); }

  /// Defines class \p ClassName with a Java `main` (at "<Class>.java:5")
  /// that invokes a static native `call` bound to \p Body, then runs main.
  void runAsNative(const std::string &ClassName,
                   std::function<void(JNIEnv *)> Body);

  /// Defines (once) class \p ClassName with a static native
  /// `get()Ljava/lang/Object;` bound to \p Body: a nested native callee
  /// for scenarios that need the Return:C->Java checks applied to a
  /// second native frame's returned reference (dangling-return paths).
  void defineRefSupplier(const std::string &ClassName,
                         std::function<jobject(JNIEnv *)> Body);

  /// Fires VM-death events (leak checks). Idempotent.
  void shutdown() { Vm.shutdown(); }
};

/// The outcome classes of Table 1.
enum class Outcome : uint8_t {
  Running,       ///< completed (possibly in a silently-undefined state)
  Crash,         ///< simulated crash without diagnosis
  Warning,       ///< checker printed a diagnosis and continued
  Error,         ///< checker printed a diagnosis and aborted
  Npe,           ///< a NullPointerException surfaced
  Leak,          ///< a VM resource was retained at termination
  Deadlock,      ///< simulated deadlock
  JinnException, ///< jinn.JNIAssertionFailure thrown / reported
};

const char *outcomeName(Outcome O);

/// True when \p O counts as a valid bug report in the coverage metric of
/// §6.3 (exception, warning, or error).
bool isValidBugReport(Outcome O);

/// Classifies what happened in \p World (after the scenario and shutdown).
Outcome classify(ScenarioWorld &World);

/// Runs microbenchmark \p Id in \p World (does not shut down).
void runMicrobenchmark(MicroId Id, ScenarioWorld &World);

/// Convenience: fresh world, run, shutdown, classify.
Outcome runMicroToOutcome(MicroId Id, const WorldConfig &Config);

} // namespace jinn::scenarios

#endif // JINN_SCENARIOS_SCENARIOS_H
