//===- scenarios/Micros.cpp - The microbenchmark bodies -------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One small JNI program per machine error state (paper §6.1). Each runs
/// as a static native method invoked from a Java `main`, exactly like the
/// paper's microbenchmarks, and each contains precisely one bug.
///
//===----------------------------------------------------------------------===//

#include "scenarios/Scenarios.h"

#include "support/Compiler.h"

#include <thread>

using namespace jinn;
using namespace jinn::scenarios;

namespace {

//===----------------------------------------------------------------------===
// JVM state constraints
//===----------------------------------------------------------------------===

void microEnvMismatch(ScenarioWorld &W) {
  W.runAsNative("JNIEnvMismatch", [&W](JNIEnv *) {
    // BUG: use a freshly attached worker thread's JNIEnv while executing
    // on the main thread (pitfall 14).
    jvm::JThread &Worker = W.Vm.attachThread("worker");
    JNIEnv *WorkerEnv = W.Rt.envFor(Worker);
    WorkerEnv->functions->FindClass(WorkerEnv, "java/lang/String");
  });
}

void microPendingException(ScenarioWorld &W) {
  // The Figure 9 microbenchmark: Java foo() throws; the native code
  // ignores the pending exception and calls two more JNI functions.
  jvm::ClassDef Def;
  Def.Name = "ExceptionState";
  Def.nativeMethod("call", "()V", /*IsStatic=*/true);
  Def.method(
      "main", "()V",
      [](jvm::Vm &V, jvm::JThread &T, const jvm::Value &,
         const std::vector<jvm::Value> &) {
        V.invokeByName(T, "ExceptionState", "call", "()V",
                       jvm::Value::makeNull(), {});
        return jvm::Value::makeVoid();
      },
      /*IsStatic=*/true, "ExceptionState.java:5");
  Def.method(
      "foo", "()V",
      [](jvm::Vm &V, jvm::JThread &T, const jvm::Value &,
         const std::vector<jvm::Value> &) {
        V.throwNew(T, "java/lang/RuntimeException", "checked by native code");
        return jvm::Value::makeVoid();
      },
      /*IsStatic=*/false, "ExceptionState.java:9");
  W.Vm.defineClass(Def);

  W.Rt.registerNative(
      W.Vm.findClass("ExceptionState"), "call", "()V",
      [](JNIEnv *Env, jobject Self, const jvalue *) -> jvalue {
        jclass Cls = static_cast<jclass>(Self);
        jobject Obj = Env->functions->AllocObject(Env, Cls);
        jmethodID Foo = Env->functions->GetMethodID(Env, Cls, "foo", "()V");
        // Raise the Java exception...
        Env->functions->CallVoidMethodA(Env, Obj, Foo, nullptr);
        // BUG: ...and ignore it. Both calls below are exception-sensitive
        // (the two illegal calls of Figure 9).
        jmethodID Again =
            Env->functions->GetMethodID(Env, Cls, "foo", "()V");
        Env->functions->CallVoidMethodA(Env, Obj, Again, nullptr);
        jvalue R;
        R.j = 0;
        return R;
      });
  W.Vm.invokeByName(W.Vm.mainThread(), "ExceptionState", "main", "()V",
                    jvm::Value::makeNull(), {});
}

void microCriticalViolation(ScenarioWorld &W) {
  W.runAsNative("CriticalRegion", [](JNIEnv *Env) {
    jintArray Arr = Env->functions->NewIntArray(Env, 8);
    void *Carray =
        Env->functions->GetPrimitiveArrayCritical(Env, Arr, nullptr);
    // BUG: FindClass is critical-section sensitive (pitfall 16).
    Env->functions->FindClass(Env, "java/lang/String");
    Env->functions->ReleasePrimitiveArrayCritical(Env, Arr, Carray, 0);
  });
}

//===----------------------------------------------------------------------===
// Type constraints
//===----------------------------------------------------------------------===

void microFixedTypeMismatch(ScenarioWorld &W) {
  W.runAsNative("ClassConfusion", [](JNIEnv *Env) {
    jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
    jobject Plain = Env->functions->AllocObject(Env, Object);
    // BUG: a plain object is not a java.lang.Class (pitfall 3).
    Env->functions->GetMethodID(Env, reinterpret_cast<jclass>(Plain),
                                "toString", "()Ljava/lang/String;");
  });
}

void microEntityTypeMismatch(ScenarioWorld &W) {
  // The Eclipse/SWT shape (paper §6.4.3): the method is declared by the
  // superclass; the subclass merely inherits it.
  jvm::ClassDef Base;
  Base.Name = "swt/Base";
  Base.method(
      "handler", "()V",
      [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
         const std::vector<jvm::Value> &) { return jvm::Value::makeVoid(); },
      /*IsStatic=*/true, "Base.java:10");
  W.Vm.defineClass(Base);
  jvm::ClassDef Sub;
  Sub.Name = "swt/Widget";
  Sub.Super = "swt/Base";
  W.Vm.defineClass(Sub);

  W.runAsNative("EntityType", [](JNIEnv *Env) {
    jclass Widget = Env->functions->FindClass(Env, "swt/Widget");
    jmethodID Mid =
        Env->functions->GetStaticMethodID(Env, Widget, "handler", "()V");
    // BUG: swt/Widget does not declare the static method.
    Env->functions->CallStaticVoidMethodA(Env, Widget, Mid, nullptr);
  });
}

void microFinalFieldWrite(ScenarioWorld &W) {
  jvm::ClassDef Def;
  Def.Name = "Config";
  Def.field("LIMIT", "I", /*IsStatic=*/true, /*IsFinal=*/true);
  W.Vm.defineClass(Def);

  W.runAsNative("FinalField", [](JNIEnv *Env) {
    jclass Config = Env->functions->FindClass(Env, "Config");
    jfieldID Limit =
        Env->functions->GetStaticFieldID(Env, Config, "LIMIT", "I");
    // BUG: assignment to a final field (pitfall 9).
    Env->functions->SetStaticIntField(Env, Config, Limit, 42);
  });
}

void microNullArgument(ScenarioWorld &W) {
  W.runAsNative("NullArg", [](JNIEnv *Env) {
    // BUG: the string must not be null (pitfall 2).
    Env->functions->GetStringUTFChars(Env, nullptr, nullptr);
  });
}

//===----------------------------------------------------------------------===
// Resource constraints
//===----------------------------------------------------------------------===

void microPinLeak(ScenarioWorld &W) {
  W.runAsNative("PinLeak", [](JNIEnv *Env) {
    jintArray Arr = Env->functions->NewIntArray(Env, 16);
    // BUG: the elements buffer is never released (pitfall 11).
    Env->functions->GetIntArrayElements(Env, Arr, nullptr);
  });
}

void microPinDoubleFree(ScenarioWorld &W) {
  W.runAsNative("PinDoubleFree", [](JNIEnv *Env) {
    jintArray Arr = Env->functions->NewIntArray(Env, 16);
    jint *Elems = Env->functions->GetIntArrayElements(Env, Arr, nullptr);
    Env->functions->ReleaseIntArrayElements(Env, Arr, Elems, 0);
    // BUG: second release of the same buffer.
    Env->functions->ReleaseIntArrayElements(Env, Arr, Elems, 0);
  });
}

void microMonitorLeak(ScenarioWorld &W) {
  W.runAsNative("MonitorLeak", [](JNIEnv *Env) {
    jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
    jobject Lock = Env->functions->AllocObject(Env, Object);
    // BUG: the monitor is never exited (pitfall 11 / deadlock risk).
    Env->functions->MonitorEnter(Env, Lock);
  });
}

void microGlobalRefLeak(ScenarioWorld &W) {
  W.runAsNative("GlobalLeak", [](JNIEnv *Env) {
    jstring S = Env->functions->NewStringUTF(Env, "retained");
    // BUG: the global reference is never deleted (pitfall 11).
    Env->functions->NewGlobalRef(Env, S);
  });
}

void microGlobalRefDangling(ScenarioWorld &W) {
  W.runAsNative("GlobalDangling", [](JNIEnv *Env) {
    jstring S = Env->functions->NewStringUTF(Env, "shortlived");
    jobject Global = Env->functions->NewGlobalRef(Env, S);
    Env->functions->DeleteGlobalRef(Env, Global);
    // BUG: use after delete.
    Env->functions->GetStringUTFLength(Env,
                                       static_cast<jstring>(Global));
  });
}

void microLocalOverflow(ScenarioWorld &W) {
  W.runAsNative("LocalOverflow", [](JNIEnv *Env) {
    // BUG: creates 24 local references without EnsureLocalCapacity; the
    // JNI specification only guarantees 16 (pitfall 12, and the
    // Subversion overflow of §6.4.1).
    for (int I = 0; I < 24; ++I)
      Env->functions->NewStringUTF(Env, "yet another local reference");
  });
}

void microLocalFrameLeak(ScenarioWorld &W) {
  W.runAsNative("LocalFrameLeak", [](JNIEnv *Env) {
    Env->functions->PushLocalFrame(Env, 32);
    Env->functions->NewStringUTF(Env, "inside the pushed frame");
    // BUG: returns to Java without PopLocalFrame.
  });
}

void microLocalDangling(ScenarioWorld &W) {
  // The GNOME bug of Figure 1: a native method stores a local reference
  // into C heap state; a later call-back uses it after its frame died.
  static jobject EscapedReceiver;
  EscapedReceiver = nullptr;

  jvm::ClassDef Def;
  Def.Name = "Callback";
  Def.nativeMethod("bind", "(Ljava/lang/String;)V", /*IsStatic=*/true);
  Def.nativeMethod("fire", "()V", /*IsStatic=*/true);
  Def.method(
      "main", "()V",
      [](jvm::Vm &V, jvm::JThread &T, const jvm::Value &,
         const std::vector<jvm::Value> &) {
        jvm::Vm::TempRoots Scope(T);
        jvm::ObjectId Receiver = V.newString("receiver");
        Scope.add(Receiver);
        V.invokeByName(T, "Callback", "bind", "(Ljava/lang/String;)V",
                       jvm::Value::makeNull(),
                       {jvm::Value::makeRef(Receiver)});
        V.invokeByName(T, "Callback", "fire", "()V", jvm::Value::makeNull(),
                       {});
        return jvm::Value::makeVoid();
      },
      /*IsStatic=*/true, "Callback.java:5");
  W.Vm.defineClass(Def);

  W.Rt.registerNative(W.Vm.findClass("Callback"), "bind",
                      "(Ljava/lang/String;)V",
                      [](JNIEnv *, jobject, const jvalue *Args) -> jvalue {
                        // cb->receiver = receiver; (Figure 1, line 6)
                        EscapedReceiver = Args[0].l;
                        jvalue R;
                        R.j = 0;
                        return R;
                      });
  W.Rt.registerNative(
      W.Vm.findClass("Callback"), "fire", "()V",
      [](JNIEnv *Env, jobject, const jvalue *) -> jvalue {
        // BUG: dereference of the now-invalid cb->receiver (line 15).
        Env->functions->GetStringUTFLength(
            Env, static_cast<jstring>(EscapedReceiver));
        jvalue R;
        R.j = 0;
        return R;
      });
  W.Vm.invokeByName(W.Vm.mainThread(), "Callback", "main", "()V",
                    jvm::Value::makeNull(), {});
}

void microLocalDoubleFree(ScenarioWorld &W) {
  W.runAsNative("LocalDoubleFree", [](JNIEnv *Env) {
    jstring S = Env->functions->NewStringUTF(Env, "deleted twice");
    Env->functions->DeleteLocalRef(Env, S);
    // BUG: second delete of the same local reference (pitfall 13).
    Env->functions->DeleteLocalRef(Env, S);
  });
}

void microIdRefConfusion(ScenarioWorld &W) {
  jvm::ClassDef Def;
  Def.Name = "IdHolder";
  Def.method(
      "id", "()V",
      [](jvm::Vm &, jvm::JThread &, const jvm::Value &,
         const std::vector<jvm::Value> &) { return jvm::Value::makeVoid(); },
      /*IsStatic=*/true, "IdHolder.java:3");
  W.Vm.defineClass(Def);

  W.runAsNative("IdConfusion", [](JNIEnv *Env) {
    jclass Holder = Env->functions->FindClass(Env, "IdHolder");
    jmethodID Mid =
        Env->functions->GetStaticMethodID(Env, Holder, "id", "()V");
    // BUG: a jmethodID is not a reference (pitfall 6).
    Env->functions->IsSameObject(Env, reinterpret_cast<jobject>(Mid),
                                 nullptr);
  });
}

void microCrossThreadLocalUse(ScenarioWorld &W) {
  W.runAsNative("CrossThreadLocal", [&W](JNIEnv *Env) {
    jstring Local = Env->functions->NewStringUTF(Env, "thread-confined");
    JavaVM *Jvm = W.Rt.javaVm();
    // A real OS thread attaches through the invocation interface, so its
    // JNIEnv legitimately belongs to it — only the reference is foreign.
    std::thread Worker([Jvm, Local] {
      JNIEnv *WorkerEnv = nullptr;
      if (Jvm->functions->AttachCurrentThread(Jvm, &WorkerEnv, nullptr) !=
          JNI_OK)
        return;
      // BUG: local references are thread-confined (pitfall 13); this one
      // belongs to the main thread.
      WorkerEnv->functions->GetStringUTFLength(WorkerEnv, Local);
      WorkerEnv->functions->ExceptionClear(WorkerEnv);
      Jvm->functions->DetachCurrentThread(Jvm);
    });
    Worker.join();
  });
}

void microUnterminatedString(ScenarioWorld &W) {
  W.runAsNative("UnterminatedString", [](JNIEnv *Env) {
    jstring S = Env->functions->NewStringUTF(Env, "no terminator");
    jsize Len = Env->functions->GetStringLength(Env, S);
    const jchar *Chars = Env->functions->GetStringChars(Env, S, nullptr);
    // BUG: scans for a NUL terminator that GetStringChars does not
    // guarantee (pitfall 8). Reading past the end is C-level undefined
    // behavior the simulator surfaces through the production policy; no
    // JNI function is involved, so boundary checking cannot see it.
    bool FoundTerminator = false;
    for (jsize I = 0; I < Len; ++I)
      FoundTerminator |= Chars[I] == 0;
    if (!FoundTerminator)
      Env->vm->undefined(*Env->thread,
                         jvm::UndefinedOp::UnterminatedString,
                         "scan ran past the unterminated buffer");
    Env->functions->ReleaseStringChars(Env, S, Chars);
  });
}

void microPopWithoutPush(ScenarioWorld &W) {
  W.runAsNative("PopWithoutPush", [](JNIEnv *Env) {
    Env->functions->PushLocalFrame(Env, 8);
    Env->functions->PopLocalFrame(Env, nullptr);
    // BUG: a second pop with no explicitly pushed frame left.
    Env->functions->PopLocalFrame(Env, nullptr);
  });
}

void microPopWithoutPushFixed(ScenarioWorld &W) {
  W.runAsNative("PopWithoutPushFixed", [](JNIEnv *Env) {
    Env->functions->PushLocalFrame(Env, 8);
    Env->functions->PushLocalFrame(Env, 8);
    Env->functions->NewStringUTF(Env, "inside the nested frame");
    Env->functions->PopLocalFrame(Env, nullptr);
    Env->functions->PopLocalFrame(Env, nullptr);
  });
}

void microMonitorExitUnmatched(ScenarioWorld &W) {
  W.runAsNative("MonitorExitUnmatched", [](JNIEnv *Env) {
    jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
    jobject Lock = Env->functions->AllocObject(Env, Object);
    Env->functions->MonitorEnter(Env, Lock);
    Env->functions->MonitorExit(Env, Lock);
    // BUG: exits a monitor this thread no longer holds through JNI.
    Env->functions->MonitorExit(Env, Lock);
  });
}

void microMonitorExitUnmatchedFixed(ScenarioWorld &W) {
  W.runAsNative("MonitorExitUnmatchedFixed", [](JNIEnv *Env) {
    jclass Object = Env->functions->FindClass(Env, "java/lang/Object");
    jobject Lock = Env->functions->AllocObject(Env, Object);
    // Reentrant entry is legal as long as every entry is matched.
    Env->functions->MonitorEnter(Env, Lock);
    Env->functions->MonitorEnter(Env, Lock);
    Env->functions->MonitorExit(Env, Lock);
    Env->functions->MonitorExit(Env, Lock);
  });
}

void microCriticalNested(ScenarioWorld &W) {
  W.runAsNative("CriticalNested", [](JNIEnv *Env) {
    jintArray Arr = Env->functions->NewIntArray(Env, 16);
    void *Outer =
        Env->functions->GetPrimitiveArrayCritical(Env, Arr, nullptr);
    // BUG: opens a second critical section inside the first; the JNI
    // specification forbids nesting them.
    void *Inner =
        Env->functions->GetPrimitiveArrayCritical(Env, Arr, nullptr);
    if (Inner)
      Env->functions->ReleasePrimitiveArrayCritical(Env, Arr, Inner, 0);
    Env->functions->ReleasePrimitiveArrayCritical(Env, Arr, Outer, 0);
  });
}

void microCriticalNestedFixed(ScenarioWorld &W) {
  W.runAsNative("CriticalNestedFixed", [](JNIEnv *Env) {
    jintArray Arr = Env->functions->NewIntArray(Env, 16);
    jstring Str = Env->functions->NewStringUTF(Env, "sequential");
    void *A = Env->functions->GetPrimitiveArrayCritical(Env, Arr, nullptr);
    Env->functions->ReleasePrimitiveArrayCritical(Env, Arr, A, 0);
    const jchar *S = Env->functions->GetStringCritical(Env, Str, nullptr);
    Env->functions->ReleaseStringCritical(Env, Str, S);
  });
}

} // namespace

void jinn::scenarios::runMicrobenchmark(MicroId Id, ScenarioWorld &World) {
  switch (Id) {
  case MicroId::EnvMismatch:
    return microEnvMismatch(World);
  case MicroId::PendingException:
    return microPendingException(World);
  case MicroId::CriticalViolation:
    return microCriticalViolation(World);
  case MicroId::FixedTypeMismatch:
    return microFixedTypeMismatch(World);
  case MicroId::EntityTypeMismatch:
    return microEntityTypeMismatch(World);
  case MicroId::FinalFieldWrite:
    return microFinalFieldWrite(World);
  case MicroId::NullArgument:
    return microNullArgument(World);
  case MicroId::PinLeak:
    return microPinLeak(World);
  case MicroId::PinDoubleFree:
    return microPinDoubleFree(World);
  case MicroId::MonitorLeak:
    return microMonitorLeak(World);
  case MicroId::GlobalRefLeak:
    return microGlobalRefLeak(World);
  case MicroId::GlobalRefDangling:
    return microGlobalRefDangling(World);
  case MicroId::LocalOverflow:
    return microLocalOverflow(World);
  case MicroId::LocalFrameLeak:
    return microLocalFrameLeak(World);
  case MicroId::LocalDangling:
    return microLocalDangling(World);
  case MicroId::LocalDoubleFree:
    return microLocalDoubleFree(World);
  case MicroId::IdRefConfusion:
    return microIdRefConfusion(World);
  case MicroId::CrossThreadLocalUse:
    return microCrossThreadLocalUse(World);
  case MicroId::UnterminatedString:
    return microUnterminatedString(World);
  case MicroId::PopWithoutPush:
    return microPopWithoutPush(World);
  case MicroId::PopWithoutPushFixed:
    return microPopWithoutPushFixed(World);
  case MicroId::MonitorExitUnmatched:
    return microMonitorExitUnmatched(World);
  case MicroId::MonitorExitUnmatchedFixed:
    return microMonitorExitUnmatchedFixed(World);
  case MicroId::CriticalNested:
    return microCriticalNested(World);
  case MicroId::CriticalNestedFixed:
    return microCriticalNestedFixed(World);
  case MicroId::Count:
    break;
  }
  JINN_UNREACHABLE("invalid MicroId");
}
