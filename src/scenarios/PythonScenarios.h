//===- scenarios/PythonScenarios.h - Python/C evaluation scenarios -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Python/C scenarios of paper §7: Figure 11's dangle_bug (a borrowed
/// list item used after the co-owning list is released) plus GIL and
/// exception-state mistakes, runnable with or without the synthesized
/// checker.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SCENARIOS_PYTHONSCENARIOS_H
#define JINN_SCENARIOS_PYTHONSCENARIOS_H

#include "pyc/PyRuntime.h"

#include <string>
#include <utility>

namespace jinn::scenarios {

/// Figure 11: builds ["Eric","Graham","John","Michael","Terry","Terry"],
/// borrows the first element, releases the list, then uses the borrowed
/// reference. Returns the two strings the printf calls observed (the
/// second is garbage or missing in a production run, and suppressed by the
/// checker).
std::pair<std::string, std::string> runPyDangleBug(pyc::PyInterp &Interp);

/// GIL misuse: releases the GIL around "blocking I/O" and then calls the
/// API before re-acquiring (double-save shape, §7.1).
void runPyGilBug(pyc::PyInterp &Interp);

/// Exception misuse: raises via PyErr_SetString, then keeps calling
/// exception-sensitive API functions.
void runPyExceptionBug(pyc::PyInterp &Interp);

/// A correct extension function (no checker reports expected).
void runPyCleanExtension(pyc::PyInterp &Interp);

} // namespace jinn::scenarios

#endif // JINN_SCENARIOS_PYTHONSCENARIOS_H
