//===- scenarios/Scenarios.cpp - World, runner, classification -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "scenarios/Scenarios.h"

#include "support/Compiler.h"

using namespace jinn;
using namespace jinn::scenarios;

const std::vector<MicroInfo> &jinn::scenarios::allMicrobenchmarks() {
  static const std::vector<MicroInfo> Micros = {
      {MicroId::EnvMismatch, "JNIEnvMismatch", "JNIEnv* state", 14,
       "uses another thread's JNIEnv", true},
      {MicroId::PendingException, "ExceptionState", "Exception state", 1,
       "ignores a pending exception and keeps calling JNI", true},
      {MicroId::CriticalViolation, "CriticalRegion",
       "Critical-section state", 16, "calls JNI inside a critical region",
       true},
      {MicroId::FixedTypeMismatch, "ClassConfusion", "Fixed typing", 3,
       "passes a plain object where a jclass is expected", true},
      {MicroId::EntityTypeMismatch, "EntityType", "Entity-specific typing",
       2, "static call through a class that only inherits the method",
       true},
      {MicroId::FinalFieldWrite, "FinalField", "Access control", 9,
       "writes a final field through SetStaticIntField", true},
      {MicroId::NullArgument, "NullArg", "Nullness", 2,
       "passes null where JNI requires non-null", true},
      {MicroId::PinLeak, "PinLeak", "Pinned or copied string or array", 11,
       "never releases Get<T>ArrayElements", true},
      {MicroId::PinDoubleFree, "PinDoubleFree",
       "Pinned or copied string or array", 11,
       "releases an array buffer twice", true},
      {MicroId::MonitorLeak, "MonitorLeak", "Monitor", 11,
       "MonitorEnter without MonitorExit", true},
      {MicroId::GlobalRefLeak, "GlobalLeak",
       "Global or weak global reference", 11,
       "NewGlobalRef never deleted", true},
      {MicroId::GlobalRefDangling, "GlobalDangling",
       "Global or weak global reference", 13,
       "uses a deleted global reference", true},
      {MicroId::LocalOverflow, "LocalOverflow", "Local reference", 12,
       "creates more than 16 local references", true},
      {MicroId::LocalFrameLeak, "LocalFrameLeak", "Local reference", 12,
       "PushLocalFrame without PopLocalFrame", true},
      {MicroId::LocalDangling, "LocalDangling", "Local reference", 13,
       "uses a local reference after its frame was popped (GNOME bug)",
       true},
      {MicroId::LocalDoubleFree, "LocalDoubleFree", "Local reference", 13,
       "DeleteLocalRef twice on the same reference", true},
      {MicroId::IdRefConfusion, "IdConfusion", "Local reference", 6,
       "passes a jmethodID where a reference is expected", true},
      {MicroId::CrossThreadLocalUse, "CrossThreadLocal", "Local reference",
       13, "uses one thread's local reference from another thread", true},
      {MicroId::UnterminatedString, "UnterminatedString", "(none)", 8,
       "reads past a non-NUL-terminated Unicode buffer", false},
      {MicroId::PopWithoutPush, "PopWithoutPush", "Local-frame nesting", 12,
       "PopLocalFrame with no frame left to pop", true},
      {MicroId::PopWithoutPushFixed, "PopWithoutPushFixed", "(none)", 0,
       "fixed variant: every PopLocalFrame matches a PushLocalFrame",
       false},
      {MicroId::MonitorExitUnmatched, "MonitorExitUnmatched",
       "Monitor balance", 11,
       "MonitorExit with no outstanding JNI MonitorEnter", true},
      {MicroId::MonitorExitUnmatchedFixed, "MonitorExitUnmatchedFixed",
       "(none)", 0, "fixed variant: reentrant enter/exit kept balanced",
       false},
      {MicroId::CriticalNested, "CriticalNested", "Critical-section nesting",
       16, "opens a critical section inside an open critical section", true},
      {MicroId::CriticalNestedFixed, "CriticalNestedFixed", "(none)", 0,
       "fixed variant: the two critical sections run sequentially", false},
  };
  return Micros;
}

const MicroInfo &jinn::scenarios::microInfo(MicroId Id) {
  return allMicrobenchmarks()[static_cast<size_t>(Id)];
}

ScenarioWorld::ScenarioWorld(WorldConfig Config)
    : Config(Config),
      Vm([&Config] {
        jvm::VmOptions Options;
        Options.Flavor = Config.Flavor;
        Options.EchoDiagnostics = Config.EchoDiagnostics;
        Options.IncrementalMark = Config.IncrementalMark;
        Options.GcMarkStepBudget = Config.GcMarkStepBudget;
        Options.TlabSlots = Config.TlabSlots;
        return Options;
      }()),
      Rt(Vm), Host(Rt) {
  switch (Config.Checker) {
  case CheckerKind::None:
    break;
  case CheckerKind::InterposeOnly:
    jvmti::dispatcherFor(Rt); // wrapped table, no hooks
    break;
  case CheckerKind::Jinn: {
    agent::JinnOptions Options;
    Options.Mode = Config.JinnMode;
    Options.Recorder = Config.JinnRecorder;
    Options.EnabledMachines = Config.JinnEnabledMachines;
    Options.SparseDispatch = Config.JinnSparseDispatch;
    Options.FusedDispatch = Config.JinnFusedDispatch;
    Options.ShardCount = Config.JinnShardCount;
    Options.ReportBufferSize = Config.JinnReportBuffer;
    Options.SampleRate = Config.JinnSampleRate;
    Options.SampleSeed = Config.JinnSampleSeed;
    Jinn = static_cast<agent::JinnAgent *>(
        &Host.load(std::make_unique<agent::JinnAgent>(std::move(Options))));
    break;
  }
  case CheckerKind::Xcheck:
    Xcheck = static_cast<checkjni::XcheckAgent *>(
        &Host.load(std::make_unique<checkjni::XcheckAgent>(
            Config.Flavor == jvm::VmFlavor::HotSpotLike
                ? checkjni::Vendor::HotSpot
                : checkjni::Vendor::J9)));
    break;
  }
}

void ScenarioWorld::runAsNative(const std::string &ClassName,
                                std::function<void(JNIEnv *)> Body) {
  if (!Vm.findClass(ClassName)) {
    jvm::ClassDef Def;
    Def.Name = ClassName;
    Def.nativeMethod("call", "()V", /*IsStatic=*/true);
    std::string Name = ClassName;
    Def.method(
        "main", "()V",
        [Name](jvm::Vm &V, jvm::JThread &T, const jvm::Value &,
               const std::vector<jvm::Value> &) {
          V.invokeByName(T, Name.c_str(), "call", "()V",
                         jvm::Value::makeNull(), {});
          return jvm::Value::makeVoid();
        },
        /*IsStatic=*/true, ClassName + ".java:5");
    Vm.defineClass(Def);
  }
  Rt.registerNative(Vm.findClass(ClassName), "call", "()V",
                    [Body = std::move(Body)](JNIEnv *Env, jobject,
                                             const jvalue *) -> jvalue {
                      Body(Env);
                      jvalue R;
                      R.j = 0;
                      return R;
                    });
  Vm.invokeByName(Vm.mainThread(), ClassName.c_str(), "main", "()V",
                  jvm::Value::makeNull(), {});
}

void ScenarioWorld::defineRefSupplier(const std::string &ClassName,
                                      std::function<jobject(JNIEnv *)> Body) {
  if (!Vm.findClass(ClassName)) {
    jvm::ClassDef Def;
    Def.Name = ClassName;
    Def.nativeMethod("get", "()Ljava/lang/Object;", /*IsStatic=*/true);
    Vm.defineClass(Def);
  }
  Rt.registerNative(Vm.findClass(ClassName), "get", "()Ljava/lang/Object;",
                    [Body = std::move(Body)](JNIEnv *Env, jobject,
                                             const jvalue *) -> jvalue {
                      jvalue R;
                      R.l = Body(Env);
                      return R;
                    });
}

const char *jinn::scenarios::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Running:
    return "running";
  case Outcome::Crash:
    return "crash";
  case Outcome::Warning:
    return "warning";
  case Outcome::Error:
    return "error";
  case Outcome::Npe:
    return "NPE";
  case Outcome::Leak:
    return "leak";
  case Outcome::Deadlock:
    return "deadlock";
  case Outcome::JinnException:
    return "exception";
  }
  JINN_UNREACHABLE("invalid Outcome");
}

bool jinn::scenarios::isValidBugReport(Outcome O) {
  return O == Outcome::Warning || O == Outcome::Error ||
         O == Outcome::JinnException;
}

Outcome jinn::scenarios::classify(ScenarioWorld &World) {
  // Jinn's exception takes precedence: it is the run's visible failure.
  if (World.Jinn && !World.Jinn->reporter().reports().empty())
    return Outcome::JinnException;

  if (World.Xcheck) {
    bool SawError = false, SawWarning = false;
    for (const checkjni::XcheckDetection &Detection :
         World.Xcheck->reporter().detections()) {
      SawError |= Detection.Behavior == checkjni::CheckerBehavior::Error;
      SawWarning |= Detection.Behavior == checkjni::CheckerBehavior::Warning;
    }
    if (SawError)
      return Outcome::Error;
    if (SawWarning)
      return Outcome::Warning;
  }

  const DiagnosticSink &Diags = World.Vm.diags();
  if (Diags.has(IncidentKind::SimulatedCrash))
    return Outcome::Crash;
  if (Diags.has(IncidentKind::PotentialDeadlock))
    return Outcome::Deadlock;

  for (const auto &Thread : World.Vm.threads()) {
    if (Thread->Pending.isNull())
      continue;
    jvm::Klass *Kl = World.Vm.klassOf(Thread->Pending);
    if (Kl && Kl->name() == "java/lang/NullPointerException")
      return Outcome::Npe;
  }

  // Retained resources at termination.
  bool Leaked = !World.Vm.pins().empty() ||
                World.Vm.heldMonitorCount() > 0 ||
                World.Vm.liveGlobalCount(false) > 0 ||
                World.Vm.liveGlobalCount(true) > 0;
  for (const auto &Thread : World.Vm.threads())
    Leaked |= Thread->everOverflowedCapacity();
  if (Leaked)
    return Outcome::Leak;

  return Outcome::Running;
}

Outcome jinn::scenarios::runMicroToOutcome(MicroId Id,
                                           const WorldConfig &Config) {
  ScenarioWorld World(Config);
  runMicrobenchmark(Id, World);
  World.shutdown();
  return classify(World);
}
