//===- scenarios/PythonScenarios.cpp - Python/C evaluation scenarios -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "scenarios/PythonScenarios.h"

using namespace jinn;
using namespace jinn::scenarios;
using pyc::PyInterp;
using pyc::PyObject;

std::pair<std::string, std::string>
jinn::scenarios::runPyDangleBug(PyInterp &I) {
  const pyc::PyApi *Api = pyc::activePyApi(I);
  std::pair<std::string, std::string> Printed;

  // static PyObject* dangle_bug(PyObject* self, PyObject* args)  (Fig. 11)
  PyObject *Pythons =
      Api->Py_BuildValue(&I, "[ssssss]", "Eric", "Graham", "John", "Michael",
                         "Terry", "Terry");
  PyObject *First = Api->PyList_GetItem(&I, Pythons, 0); // borrowed
  if (const char *S = Api->PyString_AsString(&I, First))
    Printed.first = S; // printf("1. first = %s.\n", ...)
  Api->Py_DecRef(&I, Pythons); // the co-owner relinquishes; First dies
  // BUG: use of the dangling borrowed reference (Fig. 11 line 10).
  if (const char *S = Api->PyString_AsString(&I, First))
    Printed.second = S; // printf("2. first = %s.\n", ...)
  // return Py_None with ownership transferred.
  Api->Py_IncRef(&I, I.none());
  return Printed;
}

void jinn::scenarios::runPyGilBug(PyInterp &I) {
  const pyc::PyApi *Api = pyc::activePyApi(I);
  void *State = Api->PyEval_SaveThread(&I); // release the GIL for "I/O"
  // BUG: calls the API without re-acquiring the GIL first.
  PyObject *Obj = Api->PyInt_FromLong(&I, 42);
  Api->PyEval_RestoreThread(&I, State);
  if (Obj)
    Api->Py_DecRef(&I, Obj);
}

void jinn::scenarios::runPyExceptionBug(PyInterp &I) {
  const pyc::PyApi *Api = pyc::activePyApi(I);
  Api->PyErr_SetString(&I, I.excTypeError(), "argument must be a string");
  // BUG: continues calling exception-sensitive functions instead of
  // propagating or clearing the exception.
  PyObject *Obj = Api->PyString_FromString(&I, "ignored failure");
  if (Obj)
    Api->Py_DecRef(&I, Obj);
}

void jinn::scenarios::runPyCleanExtension(PyInterp &I) {
  const pyc::PyApi *Api = pyc::activePyApi(I);
  PyObject *List = Api->PyList_New(&I, 0);
  for (long K = 0; K < 8; ++K) {
    PyObject *Item = Api->PyInt_FromLong(&I, K * K);
    Api->PyList_Append(&I, List, Item);
    Api->Py_DecRef(&I, Item); // Append took its own reference
  }
  long Sum = 0;
  for (pyc::Py_ssize_t K = 0; K < Api->PyList_Size(&I, List); ++K)
    Sum += Api->PyInt_AsLong(&I, Api->PyList_GetItem(&I, List, K));
  (void)Sum;
  Api->Py_DecRef(&I, List);
}
