//===- trace/Recorder.h - Per-thread lock-free boundary recorder ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace recorder: captures every boundary transition into per-thread
/// ring buffers. The hot path takes no locks and shares no cache lines —
/// each OS thread writes only its own buffer (found through a thread-local
/// cache) and stamps events with the monotonic clock plus a per-thread
/// sequence number. Full rings are sealed into chunks owned by the same
/// thread; when bounded, the oldest chunk is dropped and counted.
///
/// collect() merges all buffers into one epoch-ordered Trace. It must only
/// be called when recording threads are quiesced (joined), which gives the
/// necessary happens-before edge without any locking on the record path.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_TRACE_RECORDER_H
#define JINN_TRACE_RECORDER_H

#include "trace/TraceEvent.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace jinn::trace {

struct TraceRecorderOptions {
  /// Events per ring before sealing a chunk. The default keeps one ring
  /// under glibc's 128 KiB mmap threshold so ring churn stays in the
  /// (per-thread, lock-free) malloc arenas — large rings turn every seal
  /// into an mmap/munmap pair, which serializes recording threads on the
  /// kernel's address-space lock and pays a page fault per touched page.
  size_t RingCapacity = 128;
  /// Sealed chunks kept per thread; 0 = unbounded (full-fidelity traces).
  /// When bounded, the oldest chunk is dropped and counted, which keeps
  /// long benchmark runs from holding the entire event stream in memory.
  size_t MaxChunksPerThread = 0;
};

/// Records boundary crossings. One recorder per agent; installJniHooks()
/// attaches it to the interposed table, setBoundaryObserver() on the
/// synthesizer routes native-method crossings here.
class TraceRecorder : public jvmti::NativeBoundaryObserver {
public:
  explicit TraceRecorder(jvm::Vm &Vm, TraceRecorderOptions Opts = {});
  ~TraceRecorder() override;

  /// Installs the recording pre/post hooks on \p Dispatcher. They are
  /// all-function hooks, which the dispatcher runs before any per-function
  /// machine hook — so each snapshot freezes the state the machines were
  /// about to observe.
  void installJniHooks(jvmti::InterposeDispatcher &Dispatcher);

  void recordThreadAttach(jvm::JThread &Thread);
  void recordThreadDetach(jvm::JThread &Thread);
  void recordGcEpoch();
  void recordVmDeath();
  void recordNativeBind(jvm::MethodInfo &Method);

  // NativeBoundaryObserver: the synthesized native-method wrapper fires
  // these around the original body.
  void onNativeEntry(jvm::MethodInfo &Method, JNIEnv *Env, jobject Self,
                     const jvalue *Args) override;
  void onNativeExit(jvm::MethodInfo &Method, JNIEnv *Env, jobject Self,
                    const jvalue *Args, const jvalue *Ret,
                    bool EntryAborted) override;

  /// Merges every per-thread buffer into one trace and assigns the global
  /// epoch: events sort by (TimeNs, ThreadId, Seq) — a deterministic total
  /// order that follows real time and breaks clock ties stably — and the
  /// merged index becomes the epoch. Non-destructive (events are copied);
  /// recording may continue after. Caller must ensure other recording
  /// threads are quiesced.
  Trace collect();

  /// Events lost to bounded recording so far (quiesced threads only).
  uint64_t droppedEvents();

private:
  struct ThreadBuffer;

  ThreadBuffer &localBuffer();
  TraceEvent &beginEvent(ThreadBuffer &Buffer, EventKind Kind);
  void recordJni(jvmti::CapturedCall &Call, bool IsPost);
  void capturePeek(jvmti::BoundarySnapshot &Snap, uint64_t Word,
                   const jvm::JThread *Perspective);
  void captureCommon(jvmti::BoundarySnapshot &Snap, JNIEnv *Env);
  void captureJniSnapshot(jvmti::BoundarySnapshot &Snap,
                          jvmti::CapturedCall &Call, bool IsPost);

  jvm::Vm &Vm;
  TraceRecorderOptions Opts;
  uint64_t InstanceId; ///< tags the thread-local buffer cache
  // Events are stamped with raw timestamp-counter ticks on the hot path
  // (one rdtsc instead of a clock_gettime per event); collect() converts
  // to nanoseconds with a calibration measured between these anchors and
  // the collect time.
  std::chrono::steady_clock::time_point Start;
  uint64_t StartTicks;
  std::mutex RegistryMu; ///< guards Buffers (growth only)
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
};

} // namespace jinn::trace

#endif // JINN_TRACE_RECORDER_H
