//===- trace/Recorder.h - Per-thread lock-free boundary recorder ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace recorder: captures every boundary transition into per-thread
/// ring buffers. The hot path takes no locks and shares no cache lines —
/// each OS thread writes only its own buffer (found through a thread-local
/// cache) and stamps events with the monotonic clock plus a per-thread
/// sequence number. Full rings are sealed into chunks owned by the same
/// thread; when bounded, the oldest chunk is dropped and counted.
///
/// Two consumption models:
///
///  - Batch (the default): collect() merges all buffers into one
///    epoch-ordered Trace. It must only be called when recording threads
///    are quiesced (joined), which gives the necessary happens-before edge
///    without any locking on the record path.
///  - Streaming (StreamChunks): sealed chunks are published to a bounded
///    recorder-level queue (one short lock per RingCapacity events), and a
///    monitor thread drains them incrementally with drainSealed() while
///    recording continues — the production-monitoring mode. Queue overflow
///    drops the oldest chunk and counts it.
///
/// Short-lived threads call retireLocalBuffer() at detach: the partial
/// ring is sealed into the queue and the buffer storage returns to a free
/// pool for the next attaching thread, so a server that churns through
/// thousands of request threads holds a bounded number of buffers.
///
/// Every dropped event (per-thread chunk bound, queue bound, or retirement
/// overflow) is surfaced through the VM's "jinn.trace.dropped_events"
/// diagnostics counter.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_TRACE_RECORDER_H
#define JINN_TRACE_RECORDER_H

#include "trace/TraceEvent.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>

namespace jinn::trace {

struct TraceRecorderOptions {
  /// Events per ring before sealing a chunk. The default keeps one ring
  /// under glibc's 128 KiB mmap threshold so ring churn stays in the
  /// (per-thread, lock-free) malloc arenas — large rings turn every seal
  /// into an mmap/munmap pair, which serializes recording threads on the
  /// kernel's address-space lock and pays a page fault per touched page.
  size_t RingCapacity = 128;
  /// Sealed chunks kept per thread; 0 = full-fidelity traces, still
  /// backstopped by HardChunkCap. When the bound is hit, the oldest chunk
  /// is dropped and counted, which keeps long runs from holding the entire
  /// event stream in memory.
  size_t MaxChunksPerThread = 0;
  /// Hard per-thread backstop applied when MaxChunksPerThread is 0: no
  /// thread may retain more than this many sealed chunks, ever. A thread
  /// that records forever without a flush previously grew without bound;
  /// now it recycles the oldest chunk past this cap (drops are counted and
  /// published). Large enough (1M events at the default ring size) that
  /// full-fidelity replay runs never hit it.
  size_t HardChunkCap = 8192;
  /// Streaming mode: publish sealed chunks to the recorder-level queue for
  /// incremental drainSealed() consumption instead of accumulating them
  /// per thread.
  bool StreamChunks = false;
  /// Sealed chunks the streaming queue holds before dropping the oldest
  /// (counted). Bounds recorder memory when the monitor falls behind.
  size_t MaxQueuedChunks = 256;
};

/// Records boundary crossings. One recorder per agent; installJniHooks()
/// attaches it to the interposed table, setBoundaryObserver() on the
/// synthesizer routes native-method crossings here.
class TraceRecorder : public jvmti::NativeBoundaryObserver {
public:
  explicit TraceRecorder(jvm::Vm &Vm, TraceRecorderOptions Opts = {});
  ~TraceRecorder() override;

  /// Installs the recording pre/post hooks on \p Dispatcher. They are
  /// all-function hooks, which the dispatcher runs before any per-function
  /// machine hook — so each snapshot freezes the state the machines were
  /// about to observe.
  void installJniHooks(jvmti::InterposeDispatcher &Dispatcher);

  void recordThreadAttach(jvm::JThread &Thread);
  void recordThreadDetach(jvm::JThread &Thread);
  void recordGcEpoch();
  void recordVmDeath();
  void recordNativeBind(jvm::MethodInfo &Method);

  // NativeBoundaryObserver: the synthesized native-method wrapper fires
  // these around the original body.
  void onNativeEntry(jvm::MethodInfo &Method, JNIEnv *Env, jobject Self,
                     const jvalue *Args) override;
  void onNativeExit(jvm::MethodInfo &Method, JNIEnv *Env, jobject Self,
                    const jvalue *Args, const jvalue *Ret,
                    bool EntryAborted) override;

  /// Merges every per-thread buffer, retired/queued chunk, into one trace
  /// and assigns the global epoch: events sort by (TimeNs, ThreadId, Seq)
  /// — a deterministic total order that follows real time and breaks clock
  /// ties stably — and the merged index becomes the epoch. Non-destructive
  /// (events are copied); recording may continue after. Caller must ensure
  /// other recording threads are quiesced.
  Trace collect();

  /// Streaming harvest: destructively pops every chunk currently in the
  /// sealed queue and returns them as one merged, epoch-ordered segment.
  /// Safe to call concurrently with recording threads (this is the
  /// monitor's tick path). The segment header's DroppedEvents carries the
  /// drops since the previous drain.
  Trace drainSealed();

  /// Seals the calling OS thread's partial ring into the queue and retires
  /// its buffer to the free pool (reused by the next attaching thread).
  /// Called from the agent's ThreadEnd callback — which runs on the
  /// detaching thread — so short-lived request threads leave no buffered
  /// state behind.
  void retireLocalBuffer();

  /// Number of live (non-retired) per-thread buffers.
  size_t liveThreadBuffers();

  /// Events lost to bounded recording so far, across live buffers, retired
  /// buffers, and the streaming queue.
  uint64_t droppedEvents();

private:
  struct ThreadBuffer;

  ThreadBuffer &localBuffer();
  TraceEvent &beginEvent(ThreadBuffer &Buffer, EventKind Kind);
  void recordJni(jvmti::CapturedCall &Call, bool IsPost);
  void capturePeek(jvmti::BoundarySnapshot &Snap, uint64_t Word,
                   const jvm::JThread *Perspective);
  void captureCommon(jvmti::BoundarySnapshot &Snap, JNIEnv *Env);
  void captureJniSnapshot(jvmti::BoundarySnapshot &Snap,
                          jvmti::CapturedCall &Call, bool IsPost);
  /// Publishes a sealed (full or partial) chunk to the streaming queue,
  /// enforcing MaxQueuedChunks. Returns recycled storage for the caller's
  /// next ring when the bound evicted a chunk. Caller must not hold
  /// QueueMu.
  std::vector<TraceEvent> pushSealedChunk(std::vector<TraceEvent> Chunk);
  /// Tick-to-nanosecond factor, calibrated once against the monotonic
  /// clock and cached so every segment of one recording uses the same
  /// monotonic scaling (per-drain factors could reorder events across
  /// segments).
  double nsPerTick();
  void convertTicks(std::vector<TraceEvent> &Events);
  static void finalizeOrder(Trace &Out);
  void noteDrop(uint64_t Events);

  jvm::Vm &Vm;
  TraceRecorderOptions Opts;
  uint64_t InstanceId; ///< tags the thread-local buffer cache
  // Events are stamped with raw timestamp-counter ticks on the hot path
  // (one rdtsc instead of a clock_gettime per event); consumers convert
  // to nanoseconds with a calibration measured between these anchors and
  // the first conversion point.
  std::chrono::steady_clock::time_point Start;
  uint64_t StartTicks;
  std::mutex CalibMu;
  double CachedNsPerTick = 0.0;
  std::mutex RegistryMu; ///< guards Buffers and FreeBuffers
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  std::vector<std::unique_ptr<ThreadBuffer>> FreeBuffers;
  /// Sealed chunks not owned by any live thread buffer: the streaming
  /// queue (StreamChunks) plus everything retired threads left behind.
  std::mutex QueueMu;
  std::deque<std::vector<TraceEvent>> SealedQueue;
  std::vector<std::vector<TraceEvent>> FreeChunks; ///< recycled storage
  uint64_t QueueDropped = 0;   ///< events evicted from the queue
  uint64_t RetiredDropped = 0; ///< drops carried over from retired buffers
  uint64_t DrainReportedDropped = 0; ///< drops already reported by drains
  /// Running total of every dropped event, mirrored into the
  /// "jinn.trace.dropped_events" diagnostics counter.
  std::atomic<uint64_t> DroppedTotal{0};
};

} // namespace jinn::trace

#endif // JINN_TRACE_RECORDER_H
