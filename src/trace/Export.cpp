//===- trace/Export.cpp - Chrome-trace and counters exporters ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Export.h"

#include "jni/JniFunctionId.h"

#include <cinttypes>
#include <memory>
#include <vector>

using namespace jinn;
using namespace jinn::trace;

namespace {

std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += ' ';
      else
        Out += C;
    }
  }
  return Out;
}

struct FileCloser {
  void operator()(std::FILE *File) const {
    if (File)
      std::fclose(File);
  }
};

/// One open duration on a thread's crossing stack.
struct OpenSpan {
  EventKind Kind;
  uint16_t Fn;
  uint64_t MethodWord;
  uint64_t TimeNs;
};

std::string spanName(const OpenSpan &Span) {
  if (Span.Kind == EventKind::JniPre)
    return jni::fnName(static_cast<jni::FnId>(Span.Fn));
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "native@0x%" PRIx64, Span.MethodWord);
  return Buf;
}

class ChromeWriter {
public:
  explicit ChromeWriter(std::FILE *File) : File(File) {}

  void begin() { std::fprintf(File, "{\"traceEvents\":[\n"); }
  void end() { std::fprintf(File, "\n]}\n"); }

  void emitDuration(uint32_t Tid, const std::string &Name, uint64_t StartNs,
                    uint64_t EndNs) {
    emitPrefix();
    std::fprintf(File,
                 "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
                 "\"ts\":%.3f,\"dur\":%.3f}",
                 Tid, jsonEscape(Name).c_str(), StartNs / 1000.0,
                 (EndNs - StartNs) / 1000.0);
  }

  void emitInstant(uint32_t Tid, const std::string &Name, uint64_t TimeNs,
                   char Scope) {
    emitPrefix();
    std::fprintf(File,
                 "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
                 "\"ts\":%.3f,\"s\":\"%c\"}",
                 Tid, jsonEscape(Name).c_str(), TimeNs / 1000.0, Scope);
  }

  void emitThreadName(uint32_t Tid, const std::string &Name) {
    emitPrefix();
    std::fprintf(File,
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 Tid, jsonEscape(Name).c_str());
  }

private:
  void emitPrefix() {
    if (!First)
      std::fprintf(File, ",\n");
    First = false;
  }

  std::FILE *File;
  bool First = true;
};

} // namespace

bool jinn::trace::writeChromeTrace(const Trace &T, const std::string &Path,
                                   std::string *Err) {
  std::unique_ptr<std::FILE, FileCloser> File(
      std::fopen(Path.c_str(), "w"));
  if (!File) {
    if (Err)
      *Err = "cannot open " + Path + " for writing";
    return false;
  }

  ChromeWriter Writer(File.get());
  Writer.begin();
  for (const auto &[Id, Name] : T.ThreadNames)
    Writer.emitThreadName(Id, Name);

  std::unordered_map<uint32_t, std::vector<OpenSpan>> Stacks;
  uint64_t LastTime = 0;
  for (const TraceEvent &Ev : T.Events) {
    LastTime = std::max(LastTime, Ev.TimeNs);
    std::vector<OpenSpan> &Stack = Stacks[Ev.ThreadId];

    // A JniPre left on top when anything but its matching JniPost arrives
    // was suppressed by a checker (the wrapper skipped the call and the
    // post hooks); render it as a zero-length span.
    bool Matches = Ev.Kind == EventKind::JniPost && !Stack.empty() &&
                   Stack.back().Kind == EventKind::JniPre &&
                   Stack.back().Fn == Ev.Fn;
    if (!Stack.empty() && Stack.back().Kind == EventKind::JniPre &&
        !Matches) {
      OpenSpan Open = Stack.back();
      Stack.pop_back();
      Writer.emitDuration(Ev.ThreadId, spanName(Open) + " (suppressed)",
                          Open.TimeNs, Open.TimeNs);
    }

    switch (Ev.Kind) {
    case EventKind::JniPre:
      Stack.push_back({Ev.Kind, Ev.Fn, 0, Ev.TimeNs});
      break;
    case EventKind::JniPost:
      if (Matches) {
        OpenSpan Open = Stack.back();
        Stack.pop_back();
        Writer.emitDuration(Ev.ThreadId, spanName(Open), Open.TimeNs,
                            Ev.TimeNs);
      }
      break;
    case EventKind::NativeEntry:
      Stack.push_back({Ev.Kind, 0, Ev.MethodWord, Ev.TimeNs});
      break;
    case EventKind::NativeExit:
      if (!Stack.empty() && Stack.back().Kind == EventKind::NativeEntry &&
          Stack.back().MethodWord == Ev.MethodWord) {
        OpenSpan Open = Stack.back();
        Stack.pop_back();
        Writer.emitDuration(Ev.ThreadId, spanName(Open), Open.TimeNs,
                            Ev.TimeNs);
      }
      break;
    case EventKind::GcEpoch:
      Writer.emitInstant(Ev.ThreadId, "GC epoch", Ev.TimeNs, 'g');
      break;
    case EventKind::VmDeath:
      Writer.emitInstant(Ev.ThreadId, "VM death", Ev.TimeNs, 'g');
      break;
    case EventKind::ThreadAttach:
      Writer.emitInstant(Ev.ThreadId, "thread attach", Ev.TimeNs, 't');
      break;
    case EventKind::ThreadDetach:
      Writer.emitInstant(Ev.ThreadId, "thread detach", Ev.TimeNs, 't');
      break;
    case EventKind::NativeBind:
      break; // bookkeeping, not a timeline item
    }
  }

  // Flush spans the trace never closed (cut-off recordings).
  for (auto &[Tid, Stack] : Stacks)
    while (!Stack.empty()) {
      OpenSpan Open = Stack.back();
      Stack.pop_back();
      Writer.emitDuration(Tid, spanName(Open) + " (unclosed)", Open.TimeNs,
                          LastTime);
    }

  Writer.end();
  return true;
}

TraceCounters jinn::trace::computeCounters(const Trace &T) {
  TraceCounters Counters;
  Counters.TotalEvents = T.Events.size();
  Counters.DroppedEvents = T.Head.DroppedEvents;
  for (const TraceEvent &Ev : T.Events) {
    ++Counters.KindCounts[static_cast<size_t>(Ev.Kind)];
    if (Ev.Kind == EventKind::JniPre || Ev.Kind == EventKind::JniPost)
      ++Counters.PerJniFunction[jni::fnName(static_cast<jni::FnId>(Ev.Fn))];
    if (Ev.Kind == EventKind::NativeEntry)
      ++Counters.NativeEntries;
    ++Counters.PerThread[T.threadName(Ev.ThreadId)];
  }
  uint64_t Pres = Counters.KindCounts[static_cast<size_t>(EventKind::JniPre)];
  uint64_t Posts =
      Counters.KindCounts[static_cast<size_t>(EventKind::JniPost)];
  Counters.SuppressedJniCalls = Pres > Posts ? Pres - Posts : 0;
  return Counters;
}

void jinn::trace::printCountersReport(
    std::FILE *Out, const TraceCounters &Counters,
    const std::map<std::string, uint64_t> *MachineTransitions,
    const std::map<std::string, uint64_t> *ViolationsPerMachine) {
  std::fprintf(Out, "trace counters\n");
  std::fprintf(Out, "  total events          %" PRIu64 "\n",
               Counters.TotalEvents);
  std::fprintf(Out, "  dropped (bounded)     %" PRIu64 "\n",
               Counters.DroppedEvents);
  std::fprintf(Out, "  suppressed JNI calls  %" PRIu64 "\n",
               Counters.SuppressedJniCalls);
  std::fprintf(Out, "  native entries        %" PRIu64 "\n",
               Counters.NativeEntries);
  std::fprintf(Out, "\n  events by kind\n");
  for (size_t I = 0; I < NumEventKinds; ++I)
    if (Counters.KindCounts[I])
      std::fprintf(Out, "    %-16s %" PRIu64 "\n",
                   eventKindName(static_cast<EventKind>(I)),
                   Counters.KindCounts[I]);
  std::fprintf(Out, "\n  events by thread\n");
  for (const auto &[Name, Count] : Counters.PerThread)
    std::fprintf(Out, "    %-24s %" PRIu64 "\n", Name.c_str(), Count);
  std::fprintf(Out, "\n  events by JNI function\n");
  for (const auto &[Name, Count] : Counters.PerJniFunction)
    std::fprintf(Out, "    %-32s %" PRIu64 "\n", Name.c_str(), Count);
  if (MachineTransitions) {
    std::fprintf(Out, "\n  transitions by machine\n");
    for (const auto &[Name, Count] : *MachineTransitions)
      std::fprintf(Out, "    %-32s %" PRIu64 "\n", Name.c_str(), Count);
  }
  if (ViolationsPerMachine) {
    std::fprintf(Out, "\n  violations by machine\n");
    for (const auto &[Name, Count] : *ViolationsPerMachine)
      std::fprintf(Out, "    %-32s %" PRIu64 "\n", Name.c_str(), Count);
  }
}
