//===- trace/Recorder.cpp - Per-thread lock-free boundary recorder -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Recorder.h"

#include "jni/JniRuntime.h"
#include "jvm/JThread.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#define JINN_TRACE_HAVE_RDTSC 1
#endif

using namespace jinn;
using namespace jinn::trace;

const char *jinn::trace::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::JniPre:
    return "jni-pre";
  case EventKind::JniPost:
    return "jni-post";
  case EventKind::NativeEntry:
    return "native-entry";
  case EventKind::NativeExit:
    return "native-exit";
  case EventKind::NativeBind:
    return "native-bind";
  case EventKind::ThreadAttach:
    return "thread-attach";
  case EventKind::ThreadDetach:
    return "thread-detach";
  case EventKind::GcEpoch:
    return "gc-epoch";
  case EventKind::VmDeath:
    return "vm-death";
  }
  return "unknown";
}

std::string Trace::threadName(uint32_t Id) const {
  auto It = ThreadNames.find(Id);
  if (It != ThreadNames.end() && !It->second.empty())
    return It->second;
  return "thread-" + std::to_string(Id);
}

void Trace::rebuildThreadNames() {
  ThreadNames.clear();
  for (const TraceEvent &Ev : Events)
    if (Ev.Kind == EventKind::ThreadAttach)
      ThreadNames[Ev.ThreadId] = Ev.Name;
}

//===----------------------------------------------------------------------===
// Per-thread buffers
//===----------------------------------------------------------------------===

/// Owned and written by exactly one OS thread; collect() reads it only
/// after that thread quiesced (the join provides the happens-before edge).
struct TraceRecorder::ThreadBuffer {
  std::vector<TraceEvent> Ring;
  size_t Count = 0; ///< valid events in Ring
  uint64_t NextSeq = 0;
  uint64_t Dropped = 0;
  std::vector<std::vector<TraceEvent>> Chunks; ///< sealed full rings
};

namespace {

/// Thread-local pointer to this thread's buffer in the recorder it last
/// recorded into, tagged with the recorder's instance id so a stale cache
/// from a destroyed recorder is never followed.
struct BufferCache {
  uint64_t RecorderId = 0;
  void *Buffer = nullptr;
};
thread_local BufferCache LocalCache;

std::atomic<uint64_t> NextRecorderId{1};

} // namespace

namespace {

/// Raw event timestamp. On x86 this is one rdtsc — a fraction of a
/// clock_gettime, which matters at one stamp per boundary crossing
/// direction. The tick unit is converted to nanoseconds at collect time;
/// elsewhere it falls back to the monotonic clock (ticks == ns).
inline uint64_t readTicks() {
#ifdef JINN_TRACE_HAVE_RDTSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

} // namespace

TraceRecorder::TraceRecorder(jvm::Vm &Vm, TraceRecorderOptions Opts)
    : Vm(Vm), Opts(Opts),
      InstanceId(NextRecorderId.fetch_add(1, std::memory_order_relaxed)),
      Start(std::chrono::steady_clock::now()), StartTicks(readTicks()) {
  if (this->Opts.RingCapacity == 0)
    this->Opts.RingCapacity = 1;
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer &TraceRecorder::localBuffer() {
  if (LocalCache.RecorderId == InstanceId)
    return *static_cast<ThreadBuffer *>(LocalCache.Buffer);
  std::lock_guard<std::mutex> Lock(RegistryMu);
  Buffers.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer &Buffer = *Buffers.back();
  Buffer.Ring.resize(Opts.RingCapacity);
  LocalCache = {InstanceId, &Buffer};
  return Buffer;
}

TraceEvent &TraceRecorder::beginEvent(ThreadBuffer &Buffer, EventKind Kind) {
  if (Buffer.Count == Buffer.Ring.size()) {
    // Seal the full ring into a chunk and start a fresh one. When bounded
    // recording drops the oldest chunk, its storage is recycled as the new
    // ring — steady state then records with no allocation at all, which is
    // what keeps the record-only mode cheap (a 2+ MB allocate/zero/free
    // per seal costs page faults and, across threads, the mmap lock).
    std::vector<TraceEvent> Fresh;
    if (Opts.MaxChunksPerThread &&
        Buffer.Chunks.size() >= Opts.MaxChunksPerThread) {
      Buffer.Dropped += Buffer.Chunks.front().size();
      Fresh = std::move(Buffer.Chunks.front());
      Buffer.Chunks.erase(Buffer.Chunks.begin());
    } else {
      Fresh.resize(Opts.RingCapacity);
    }
    Buffer.Chunks.push_back(std::move(Buffer.Ring));
    Buffer.Ring = std::move(Fresh);
    Buffer.Count = 0;
  }
  TraceEvent &Ev = Buffer.Ring[Buffer.Count++];
  // Clear only the scalar prefixes (TraceEvent's layout contract): the
  // payload arrays are governed by counts in the prefix, and not touching
  // them keeps the per-event cost at ~140 bytes of stores instead of 600.
  std::memset(static_cast<void *>(&Ev), 0, offsetof(TraceEvent, Args));
  std::memset(static_cast<void *>(&Ev.Snap), 0,
              offsetof(jvmti::BoundarySnapshot, Peeks));
  Ev.Kind = Kind;
  Ev.Fn = 0xFFFF;
  // The merge key is (TimeNs, ThreadId, Seq); collect() assigns the global
  // epoch from it. No cross-thread coordination here — a shared atomic
  // counter would put one cache line between every recording thread.
  Ev.Seq = Buffer.NextSeq++;
  Ev.TimeNs = readTicks() - StartTicks; // raw ticks until collect()
  return Ev;
}

//===----------------------------------------------------------------------===
// Snapshot capture
//===----------------------------------------------------------------------===

void TraceRecorder::capturePeek(jvmti::BoundarySnapshot &Snap, uint64_t Word,
                                const jvm::JThread *Perspective) {
  if (!Word || Snap.findPeek(Word))
    return;
  jvm::Vm::PeekResult Peek = Vm.peekHandle(Word, Perspective);
  Snap.addPeek(Word, Peek.Target.raw(), static_cast<uint8_t>(Peek.S),
               static_cast<uint8_t>(Peek.Kind), Peek.OwnerThread);
}

void TraceRecorder::captureCommon(jvmti::BoundarySnapshot &Snap,
                                  JNIEnv *Env) {
  jvm::JThread *Thread = Env->thread;
  Snap.ThreadId = Thread->id();
  jvm::JThread *Current = Env->runtime->currentThread();
  Snap.CurThreadId = Current ? Current->id() : 0;
  Snap.EnvWord = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Env));
  Snap.ExceptionPending = !Thread->Pending.isNull();
}

void TraceRecorder::captureJniSnapshot(jvmti::BoundarySnapshot &Snap,
                                       jvmti::CapturedCall &Call,
                                       bool IsPost) {
  JNIEnv *Env = Call.env();
  jvm::JThread *Thread = Env->thread;
  captureCommon(Snap, Env);

  const jni::FnTraits &Traits = Call.traits();

  // Every nonzero reference argument, as the machines would peek it.
  for (size_t I = 0; I < Call.numArgs(); ++I)
    if (uint64_t Word = Call.refWord(I))
      capturePeek(Snap, Word, Thread);
  if (IsPost && Call.returnIsRef() && Call.returnWord())
    capturePeek(Snap, Call.returnWord(), Thread);

  // Entity-ID registry checks.
  int MethodIdx = Traits.firstParam(jni::ArgClass::MethodId);
  if (MethodIdx >= 0) {
    const void *Ptr = Call.arg(MethodIdx).Ptr;
    Snap.MethodIdValid = Ptr && Vm.isMethodId(Ptr);
  }
  int FieldIdx = Traits.firstParam(jni::ArgClass::FieldId);
  if (FieldIdx >= 0) {
    const void *Ptr = Call.arg(FieldIdx).Ptr;
    Snap.FieldIdValid = Ptr && Vm.isFieldId(Ptr);
  }
  if (IsPost && Traits.ProducesFieldId)
    Snap.RetFieldIdValid =
        Call.returnPtr() && Vm.isFieldId(Call.returnPtr());

  // Pin-release buffer lookup (the released pointer is matched against the
  // runtime's outstanding pin records at call time).
  if (!IsPost && Traits.Resource == jni::ResourceRole::PinRelease) {
    int BufIdx = Traits.firstParam(jni::ArgClass::OutPtr);
    if (BufIdx < 0)
      BufIdx = Traits.firstParam(jni::ArgClass::CString);
    const void *Buf = BufIdx >= 0 ? Call.arg(BufIdx).Ptr : nullptr;
    if (const jni::BufferRecord *Record =
            Buf ? Env->runtime->findBuffer(Buf) : nullptr) {
      Snap.BufferFound = true;
      Snap.BufferTarget = Record->Target.raw();
    }
  }

  // Decoded call-argument vectors (CallXMethodA family) plus peeks of the
  // reference formals the entity-typing machine conforms.
  if (!IsPost && Traits.hasParam(jni::ArgClass::JvalueArray) &&
      Call.materializeCallArgs()) {
    const std::vector<jvalue> &CallArgs = Call.callArgs();
    if (CallArgs.size() <= jvmti::BoundarySnapshot::MaxCallArgs) {
      Snap.HasCallArgs = true;
      Snap.NumCallArgs = static_cast<uint8_t>(CallArgs.size());
      std::copy(CallArgs.begin(), CallArgs.end(), Snap.CallArgs);
      if (jvm::MethodInfo *Method = Call.methodArg())
        for (size_t I = 0;
             I < CallArgs.size() && I < Method->Sig.Params.size(); ++I)
          if (Method->Sig.Params[I].isReference())
            capturePeek(Snap, jni::handleWord(CallArgs[I].l), Thread);
    }
  }
}

//===----------------------------------------------------------------------===
// Event recording
//===----------------------------------------------------------------------===

void TraceRecorder::recordJni(jvmti::CapturedCall &Call, bool IsPost) {
  ThreadBuffer &Buffer = localBuffer();
  TraceEvent &Ev =
      beginEvent(Buffer, IsPost ? EventKind::JniPost : EventKind::JniPre);
  Ev.Fn = static_cast<uint16_t>(Call.id());
  Ev.ThreadId = Call.env()->thread->id();
  Ev.NumArgs = static_cast<uint8_t>(Call.numArgs());
  for (size_t I = 0; I < Call.numArgs(); ++I) {
    const jvmti::CapturedArg &Arg = Call.arg(I);
    Ev.Args[I] = {static_cast<uint8_t>(Arg.Cls), Arg.Word,
                  static_cast<uint64_t>(
                      reinterpret_cast<uintptr_t>(Arg.Ptr))};
  }
  if (IsPost) {
    Ev.HasReturn = Call.hasReturn();
    Ev.RetIsRef = Call.returnIsRef();
    Ev.RetWord = Call.returnWord();
    Ev.RetPtrWord = static_cast<uint64_t>(
        reinterpret_cast<uintptr_t>(Call.returnPtr()));
  }
  captureJniSnapshot(Ev.Snap, Call, IsPost);
}

void TraceRecorder::installJniHooks(jvmti::InterposeDispatcher &Dispatcher) {
  Dispatcher.addPreAll(
      [this](jvmti::CapturedCall &Call) { recordJni(Call, false); });
  Dispatcher.addPostAll(
      [this](jvmti::CapturedCall &Call) { recordJni(Call, true); });
}

void TraceRecorder::recordThreadAttach(jvm::JThread &Thread) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::ThreadAttach);
  Ev.ThreadId = Thread.id();
  std::snprintf(Ev.Name, sizeof(Ev.Name), "%s", Thread.name().c_str());
  Ev.Snap.ThreadId = Thread.id();
  Ev.Snap.EnvWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Thread.EnvPtr));
}

void TraceRecorder::recordThreadDetach(jvm::JThread &Thread) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::ThreadDetach);
  Ev.ThreadId = Thread.id();
  Ev.Snap.ThreadId = Thread.id();
}

void TraceRecorder::recordGcEpoch() {
  beginEvent(localBuffer(), EventKind::GcEpoch);
}

void TraceRecorder::recordVmDeath() {
  beginEvent(localBuffer(), EventKind::VmDeath);
}

void TraceRecorder::recordNativeBind(jvm::MethodInfo &Method) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::NativeBind);
  Ev.MethodWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&Method));
}

void TraceRecorder::onNativeEntry(jvm::MethodInfo &Method, JNIEnv *Env,
                                  jobject Self, const jvalue *Args) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::NativeEntry);
  Ev.ThreadId = Env->thread->id();
  Ev.MethodWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&Method));
  Ev.SelfWord = jni::handleWord(Self);
  size_t NumParams = Method.Sig.Params.size();
  if (NumParams > TraceEvent::MaxNativeArgs) {
    Ev.NativeArgsTruncated = true;
    NumParams = TraceEvent::MaxNativeArgs;
  }
  if (Args) {
    Ev.NumNativeArgs = static_cast<uint8_t>(NumParams);
    std::copy(Args, Args + NumParams, Ev.NativeArgs);
  }
  captureCommon(Ev.Snap, Env);
}

void TraceRecorder::onNativeExit(jvm::MethodInfo &Method, JNIEnv *Env,
                                 jobject Self, const jvalue *Args,
                                 const jvalue *Ret, bool EntryAborted) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::NativeExit);
  Ev.ThreadId = Env->thread->id();
  Ev.MethodWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&Method));
  Ev.SelfWord = jni::handleWord(Self);
  Ev.Aborted = EntryAborted;
  size_t NumParams = Method.Sig.Params.size();
  if (NumParams > TraceEvent::MaxNativeArgs) {
    Ev.NativeArgsTruncated = true;
    NumParams = TraceEvent::MaxNativeArgs;
  }
  if (Args) {
    Ev.NumNativeArgs = static_cast<uint8_t>(NumParams);
    std::copy(Args, Args + NumParams, Ev.NativeArgs);
  }
  if (Ret) {
    Ev.HasReturn = true;
    Ev.NativeRet = *Ret;
  }
  captureCommon(Ev.Snap, Env);
  // The local-ref and global-ref machines peek a returned reference.
  if (Ret && Method.Sig.Ret.isReference())
    capturePeek(Ev.Snap, jni::handleWord(Ret->l), Env->thread);
}

//===----------------------------------------------------------------------===
// Collection
//===----------------------------------------------------------------------===

Trace TraceRecorder::collect() {
  // Calibrate the tick unit against the monotonic clock over the whole
  // recording span, then convert every stamped tick count to nanoseconds.
  // The conversion is a monotonic scaling, so it cannot perturb the merge
  // order.
  uint64_t ElapsedTicks = readTicks() - StartTicks;
  uint64_t ElapsedNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  double NsPerTick =
      ElapsedTicks ? static_cast<double>(ElapsedNs) /
                         static_cast<double>(ElapsedTicks)
                   : 1.0;

  Trace Out;
  Out.Head.NativeFrameCapacity = Vm.options().NativeFrameCapacity;
  {
    std::lock_guard<std::mutex> Lock(RegistryMu);
    for (const std::unique_ptr<ThreadBuffer> &Buffer : Buffers) {
      for (const std::vector<TraceEvent> &Chunk : Buffer->Chunks)
        Out.Events.insert(Out.Events.end(), Chunk.begin(), Chunk.end());
      Out.Events.insert(Out.Events.end(), Buffer->Ring.begin(),
                        Buffer->Ring.begin() +
                            static_cast<ptrdiff_t>(Buffer->Count));
      Out.Head.DroppedEvents += Buffer->Dropped;
    }
  }
  for (TraceEvent &Ev : Out.Events)
    Ev.TimeNs = static_cast<uint64_t>(static_cast<double>(Ev.TimeNs) *
                                      NsPerTick);
  std::sort(Out.Events.begin(), Out.Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.TimeNs != B.TimeNs)
                return A.TimeNs < B.TimeNs;
              if (A.ThreadId != B.ThreadId)
                return A.ThreadId < B.ThreadId;
              return A.Seq < B.Seq;
            });
  for (size_t I = 0; I < Out.Events.size(); ++I)
    Out.Events[I].Epoch = I;
  Out.rebuildThreadNames();
  return Out;
}

uint64_t TraceRecorder::droppedEvents() {
  uint64_t Dropped = 0;
  std::lock_guard<std::mutex> Lock(RegistryMu);
  for (const std::unique_ptr<ThreadBuffer> &Buffer : Buffers)
    Dropped += Buffer->Dropped;
  return Dropped;
}
