//===- trace/Recorder.cpp - Per-thread lock-free boundary recorder -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Recorder.h"

#include "jni/JniRuntime.h"
#include "jvm/JThread.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#define JINN_TRACE_HAVE_RDTSC 1
#endif

using namespace jinn;
using namespace jinn::trace;

const char *jinn::trace::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::JniPre:
    return "jni-pre";
  case EventKind::JniPost:
    return "jni-post";
  case EventKind::NativeEntry:
    return "native-entry";
  case EventKind::NativeExit:
    return "native-exit";
  case EventKind::NativeBind:
    return "native-bind";
  case EventKind::ThreadAttach:
    return "thread-attach";
  case EventKind::ThreadDetach:
    return "thread-detach";
  case EventKind::GcEpoch:
    return "gc-epoch";
  case EventKind::VmDeath:
    return "vm-death";
  }
  return "unknown";
}

std::string Trace::threadName(uint32_t Id) const {
  auto It = ThreadNames.find(Id);
  if (It != ThreadNames.end() && !It->second.empty())
    return It->second;
  return "thread-" + std::to_string(Id);
}

void Trace::rebuildThreadNames() {
  ThreadNames.clear();
  for (const TraceEvent &Ev : Events)
    if (Ev.Kind == EventKind::ThreadAttach)
      ThreadNames[Ev.ThreadId] = Ev.Name;
}

//===----------------------------------------------------------------------===
// Per-thread buffers
//===----------------------------------------------------------------------===

/// Owned and written by exactly one OS thread; collect() reads it only
/// after that thread quiesced (the join provides the happens-before edge),
/// and retireLocalBuffer() moves it to the free pool from its own owner
/// thread. NextSeq survives retirement so a recycled buffer keeps strictly
/// increasing sequence numbers.
struct TraceRecorder::ThreadBuffer {
  std::vector<TraceEvent> Ring;
  size_t Count = 0; ///< valid events in Ring
  uint64_t NextSeq = 0;
  std::vector<std::vector<TraceEvent>> Chunks; ///< sealed full rings
};

namespace {

/// Thread-local pointer to this thread's buffer in the recorder it last
/// recorded into, tagged with the recorder's instance id so a stale cache
/// from a destroyed recorder is never followed.
struct BufferCache {
  uint64_t RecorderId = 0;
  void *Buffer = nullptr;
};
thread_local BufferCache LocalCache;

std::atomic<uint64_t> NextRecorderId{1};

} // namespace

namespace {

/// Raw event timestamp. On x86 this is one rdtsc — a fraction of a
/// clock_gettime, which matters at one stamp per boundary crossing
/// direction. The tick unit is converted to nanoseconds at collect time;
/// elsewhere it falls back to the monotonic clock (ticks == ns).
inline uint64_t readTicks() {
#ifdef JINN_TRACE_HAVE_RDTSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

} // namespace

TraceRecorder::TraceRecorder(jvm::Vm &Vm, TraceRecorderOptions Opts)
    : Vm(Vm), Opts(Opts),
      InstanceId(NextRecorderId.fetch_add(1, std::memory_order_relaxed)),
      Start(std::chrono::steady_clock::now()), StartTicks(readTicks()) {
  if (this->Opts.RingCapacity == 0)
    this->Opts.RingCapacity = 1;
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer &TraceRecorder::localBuffer() {
  if (LocalCache.RecorderId == InstanceId)
    return *static_cast<ThreadBuffer *>(LocalCache.Buffer);
  std::lock_guard<std::mutex> Lock(RegistryMu);
  // Prefer a buffer a retired thread left behind: attach/detach churn in a
  // server workload then reuses a bounded buffer pool instead of growing
  // the registry by ~RingCapacity events per short-lived thread.
  std::unique_ptr<ThreadBuffer> Recycled;
  if (!FreeBuffers.empty()) {
    Recycled = std::move(FreeBuffers.back());
    FreeBuffers.pop_back();
  } else {
    Recycled = std::make_unique<ThreadBuffer>();
  }
  Buffers.push_back(std::move(Recycled));
  ThreadBuffer &Buffer = *Buffers.back();
  Buffer.Ring.resize(Opts.RingCapacity);
  Buffer.Count = 0;
  LocalCache = {InstanceId, &Buffer};
  return Buffer;
}

void TraceRecorder::noteDrop(uint64_t Events) {
  if (!Events)
    return;
  uint64_t Total =
      DroppedTotal.fetch_add(Events, std::memory_order_relaxed) + Events;
  // Surface the loss where operators look: the VM diagnostics counters.
  // Amortized — drops happen at most once per sealed chunk.
  Vm.diags().setCounter("jinn.trace.dropped_events", Total);
}

std::vector<TraceEvent>
TraceRecorder::pushSealedChunk(std::vector<TraceEvent> Chunk) {
  std::vector<TraceEvent> Recycled;
  uint64_t Evicted = 0;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    // The queue bound protects streaming runs from a stalled monitor; in
    // batch mode the queue only holds retired threads' chunks (already
    // bounded per thread) and collect() must still see all of them.
    if (Opts.StreamChunks && Opts.MaxQueuedChunks &&
        SealedQueue.size() >= Opts.MaxQueuedChunks) {
      Evicted = SealedQueue.front().size();
      QueueDropped += Evicted;
      Recycled = std::move(SealedQueue.front());
      SealedQueue.pop_front();
    } else if (!FreeChunks.empty()) {
      Recycled = std::move(FreeChunks.back());
      FreeChunks.pop_back();
    }
    SealedQueue.push_back(std::move(Chunk));
  }
  noteDrop(Evicted);
  return Recycled;
}

TraceEvent &TraceRecorder::beginEvent(ThreadBuffer &Buffer, EventKind Kind) {
  if (Buffer.Count == Buffer.Ring.size()) {
    std::vector<TraceEvent> Fresh;
    if (Opts.StreamChunks) {
      // Streaming: publish the full ring to the recorder-level queue (one
      // short lock per RingCapacity events) and reuse whatever storage the
      // queue handed back.
      Fresh = pushSealedChunk(std::move(Buffer.Ring));
      Fresh.resize(Opts.RingCapacity);
    } else {
      // Batch: seal the full ring into a per-thread chunk. When bounded
      // recording drops the oldest chunk, its storage is recycled as the
      // new ring — steady state then records with no allocation at all,
      // which is what keeps the record-only mode cheap (a 2+ MB
      // allocate/zero/free per seal costs page faults and, across threads,
      // the mmap lock). A thread that never flushes is backstopped by
      // HardChunkCap even in "unbounded" mode.
      size_t Cap = Opts.MaxChunksPerThread
                       ? Opts.MaxChunksPerThread
                       : (Opts.HardChunkCap ? Opts.HardChunkCap : 1);
      if (Buffer.Chunks.size() >= Cap) {
        noteDrop(Buffer.Chunks.front().size());
        Fresh = std::move(Buffer.Chunks.front());
        Buffer.Chunks.erase(Buffer.Chunks.begin());
      } else {
        Fresh.resize(Opts.RingCapacity);
      }
      Buffer.Chunks.push_back(std::move(Buffer.Ring));
    }
    Buffer.Ring = std::move(Fresh);
    Buffer.Count = 0;
  }
  TraceEvent &Ev = Buffer.Ring[Buffer.Count++];
  // Clear only the scalar prefixes (TraceEvent's layout contract): the
  // payload arrays are governed by counts in the prefix, and not touching
  // them keeps the per-event cost at ~140 bytes of stores instead of 600.
  std::memset(static_cast<void *>(&Ev), 0, offsetof(TraceEvent, Args));
  std::memset(static_cast<void *>(&Ev.Snap), 0,
              offsetof(jvmti::BoundarySnapshot, Peeks));
  Ev.Kind = Kind;
  Ev.Fn = 0xFFFF;
  // The merge key is (TimeNs, ThreadId, Seq); collect() assigns the global
  // epoch from it. No cross-thread coordination here — a shared atomic
  // counter would put one cache line between every recording thread.
  Ev.Seq = Buffer.NextSeq++;
  Ev.TimeNs = readTicks() - StartTicks; // raw ticks until collect()
  return Ev;
}

//===----------------------------------------------------------------------===
// Snapshot capture
//===----------------------------------------------------------------------===

void TraceRecorder::capturePeek(jvmti::BoundarySnapshot &Snap, uint64_t Word,
                                const jvm::JThread *Perspective) {
  if (!Word || Snap.findPeek(Word))
    return;
  jvm::Vm::PeekResult Peek = Vm.peekHandle(Word, Perspective);
  Snap.addPeek(Word, Peek.Target.raw(), static_cast<uint8_t>(Peek.S),
               static_cast<uint8_t>(Peek.Kind), Peek.OwnerThread);
}

void TraceRecorder::captureCommon(jvmti::BoundarySnapshot &Snap,
                                  JNIEnv *Env) {
  jvm::JThread *Thread = Env->thread;
  Snap.ThreadId = Thread->id();
  jvm::JThread *Current = Env->runtime->currentThread();
  Snap.CurThreadId = Current ? Current->id() : 0;
  Snap.EnvWord = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Env));
  Snap.ExceptionPending = !Thread->Pending.isNull();
}

void TraceRecorder::captureJniSnapshot(jvmti::BoundarySnapshot &Snap,
                                       jvmti::CapturedCall &Call,
                                       bool IsPost) {
  JNIEnv *Env = Call.env();
  jvm::JThread *Thread = Env->thread;
  captureCommon(Snap, Env);

  const jni::FnTraits &Traits = Call.traits();

  // Every nonzero reference argument, as the machines would peek it.
  for (size_t I = 0; I < Call.numArgs(); ++I)
    if (uint64_t Word = Call.refWord(I))
      capturePeek(Snap, Word, Thread);
  if (IsPost && Call.returnIsRef() && Call.returnWord())
    capturePeek(Snap, Call.returnWord(), Thread);

  // Entity-ID registry checks.
  int MethodIdx = Traits.firstParam(jni::ArgClass::MethodId);
  if (MethodIdx >= 0) {
    const void *Ptr = Call.arg(MethodIdx).Ptr;
    Snap.MethodIdValid = Ptr && Vm.isMethodId(Ptr);
  }
  int FieldIdx = Traits.firstParam(jni::ArgClass::FieldId);
  if (FieldIdx >= 0) {
    const void *Ptr = Call.arg(FieldIdx).Ptr;
    Snap.FieldIdValid = Ptr && Vm.isFieldId(Ptr);
  }
  if (IsPost && Traits.ProducesFieldId)
    Snap.RetFieldIdValid =
        Call.returnPtr() && Vm.isFieldId(Call.returnPtr());

  // Pin-release buffer lookup (the released pointer is matched against the
  // runtime's outstanding pin records at call time).
  if (!IsPost && Traits.Resource == jni::ResourceRole::PinRelease) {
    int BufIdx = Traits.firstParam(jni::ArgClass::OutPtr);
    if (BufIdx < 0)
      BufIdx = Traits.firstParam(jni::ArgClass::CString);
    const void *Buf = BufIdx >= 0 ? Call.arg(BufIdx).Ptr : nullptr;
    if (const jni::BufferRecord *Record =
            Buf ? Env->runtime->findBuffer(Buf) : nullptr) {
      Snap.BufferFound = true;
      Snap.BufferTarget = Record->Target.raw();
    }
  }

  // Decoded call-argument vectors (CallXMethodA family) plus peeks of the
  // reference formals the entity-typing machine conforms.
  if (!IsPost && Traits.hasParam(jni::ArgClass::JvalueArray) &&
      Call.materializeCallArgs()) {
    const std::vector<jvalue> &CallArgs = Call.callArgs();
    if (CallArgs.size() <= jvmti::BoundarySnapshot::MaxCallArgs) {
      Snap.HasCallArgs = true;
      Snap.NumCallArgs = static_cast<uint8_t>(CallArgs.size());
      std::copy(CallArgs.begin(), CallArgs.end(), Snap.CallArgs);
      if (jvm::MethodInfo *Method = Call.methodArg())
        for (size_t I = 0;
             I < CallArgs.size() && I < Method->Sig.Params.size(); ++I)
          if (Method->Sig.Params[I].isReference())
            capturePeek(Snap, jni::handleWord(CallArgs[I].l), Thread);
    }
  }
}

//===----------------------------------------------------------------------===
// Event recording
//===----------------------------------------------------------------------===

void TraceRecorder::recordJni(jvmti::CapturedCall &Call, bool IsPost) {
  ThreadBuffer &Buffer = localBuffer();
  TraceEvent &Ev =
      beginEvent(Buffer, IsPost ? EventKind::JniPost : EventKind::JniPre);
  Ev.Fn = static_cast<uint16_t>(Call.id());
  Ev.ThreadId = Call.env()->thread->id();
  Ev.NumArgs = static_cast<uint8_t>(Call.numArgs());
  for (size_t I = 0; I < Call.numArgs(); ++I) {
    const jvmti::CapturedArg &Arg = Call.arg(I);
    Ev.Args[I] = {static_cast<uint8_t>(Arg.Cls), Arg.Word,
                  static_cast<uint64_t>(
                      reinterpret_cast<uintptr_t>(Arg.Ptr))};
  }
  if (IsPost) {
    Ev.HasReturn = Call.hasReturn();
    Ev.RetIsRef = Call.returnIsRef();
    Ev.RetWord = Call.returnWord();
    Ev.RetPtrWord = static_cast<uint64_t>(
        reinterpret_cast<uintptr_t>(Call.returnPtr()));
  }
  captureJniSnapshot(Ev.Snap, Call, IsPost);
}

void TraceRecorder::installJniHooks(jvmti::InterposeDispatcher &Dispatcher) {
  Dispatcher.addPreAll(
      [this](jvmti::CapturedCall &Call) { recordJni(Call, false); });
  Dispatcher.addPostAll(
      [this](jvmti::CapturedCall &Call) { recordJni(Call, true); });
}

void TraceRecorder::recordThreadAttach(jvm::JThread &Thread) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::ThreadAttach);
  Ev.ThreadId = Thread.id();
  std::snprintf(Ev.Name, sizeof(Ev.Name), "%s", Thread.name().c_str());
  Ev.Snap.ThreadId = Thread.id();
  Ev.Snap.EnvWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Thread.EnvPtr));
}

void TraceRecorder::recordThreadDetach(jvm::JThread &Thread) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::ThreadDetach);
  Ev.ThreadId = Thread.id();
  Ev.Snap.ThreadId = Thread.id();
}

void TraceRecorder::recordGcEpoch() {
  beginEvent(localBuffer(), EventKind::GcEpoch);
}

void TraceRecorder::recordVmDeath() {
  beginEvent(localBuffer(), EventKind::VmDeath);
}

void TraceRecorder::recordNativeBind(jvm::MethodInfo &Method) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::NativeBind);
  Ev.MethodWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&Method));
}

void TraceRecorder::onNativeEntry(jvm::MethodInfo &Method, JNIEnv *Env,
                                  jobject Self, const jvalue *Args) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::NativeEntry);
  Ev.ThreadId = Env->thread->id();
  Ev.MethodWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&Method));
  Ev.SelfWord = jni::handleWord(Self);
  size_t NumParams = Method.Sig.Params.size();
  if (NumParams > TraceEvent::MaxNativeArgs) {
    Ev.NativeArgsTruncated = true;
    NumParams = TraceEvent::MaxNativeArgs;
  }
  if (Args) {
    Ev.NumNativeArgs = static_cast<uint8_t>(NumParams);
    std::copy(Args, Args + NumParams, Ev.NativeArgs);
  }
  captureCommon(Ev.Snap, Env);
}

void TraceRecorder::onNativeExit(jvm::MethodInfo &Method, JNIEnv *Env,
                                 jobject Self, const jvalue *Args,
                                 const jvalue *Ret, bool EntryAborted) {
  TraceEvent &Ev = beginEvent(localBuffer(), EventKind::NativeExit);
  Ev.ThreadId = Env->thread->id();
  Ev.MethodWord =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&Method));
  Ev.SelfWord = jni::handleWord(Self);
  Ev.Aborted = EntryAborted;
  size_t NumParams = Method.Sig.Params.size();
  if (NumParams > TraceEvent::MaxNativeArgs) {
    Ev.NativeArgsTruncated = true;
    NumParams = TraceEvent::MaxNativeArgs;
  }
  if (Args) {
    Ev.NumNativeArgs = static_cast<uint8_t>(NumParams);
    std::copy(Args, Args + NumParams, Ev.NativeArgs);
  }
  if (Ret) {
    Ev.HasReturn = true;
    Ev.NativeRet = *Ret;
  }
  captureCommon(Ev.Snap, Env);
  // The local-ref and global-ref machines peek a returned reference.
  if (Ret && Method.Sig.Ret.isReference())
    capturePeek(Ev.Snap, jni::handleWord(Ret->l), Env->thread);
}

//===----------------------------------------------------------------------===
// Collection
//===----------------------------------------------------------------------===

double TraceRecorder::nsPerTick() {
  // Calibrate the tick unit against the monotonic clock over the span
  // recorded so far, once, and cache the factor: every segment of one
  // recording (incremental drains and the final collect) must use the
  // *same* monotonic scaling, or cross-segment merge order could invert.
  std::lock_guard<std::mutex> Lock(CalibMu);
  if (CachedNsPerTick == 0.0) {
    uint64_t ElapsedTicks = readTicks() - StartTicks;
    uint64_t ElapsedNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    CachedNsPerTick = ElapsedTicks
                          ? static_cast<double>(ElapsedNs) /
                                static_cast<double>(ElapsedTicks)
                          : 1.0;
  }
  return CachedNsPerTick;
}

void TraceRecorder::convertTicks(std::vector<TraceEvent> &Events) {
  double Factor = nsPerTick();
  for (TraceEvent &Ev : Events)
    Ev.TimeNs =
        static_cast<uint64_t>(static_cast<double>(Ev.TimeNs) * Factor);
}

void TraceRecorder::finalizeOrder(Trace &Out) {
  std::sort(Out.Events.begin(), Out.Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.TimeNs != B.TimeNs)
                return A.TimeNs < B.TimeNs;
              if (A.ThreadId != B.ThreadId)
                return A.ThreadId < B.ThreadId;
              return A.Seq < B.Seq;
            });
  for (size_t I = 0; I < Out.Events.size(); ++I)
    Out.Events[I].Epoch = I;
  Out.rebuildThreadNames();
}

Trace TraceRecorder::collect() {
  Trace Out;
  Out.Head.NativeFrameCapacity = Vm.options().NativeFrameCapacity;
  {
    std::lock_guard<std::mutex> Lock(RegistryMu);
    for (const std::unique_ptr<ThreadBuffer> &Buffer : Buffers) {
      for (const std::vector<TraceEvent> &Chunk : Buffer->Chunks)
        Out.Events.insert(Out.Events.end(), Chunk.begin(), Chunk.end());
      Out.Events.insert(Out.Events.end(), Buffer->Ring.begin(),
                        Buffer->Ring.begin() +
                            static_cast<ptrdiff_t>(Buffer->Count));
    }
  }
  {
    // Queued-but-undrained chunks (streaming mode, retired threads) are
    // part of the recording too; copy them non-destructively so a final
    // "drain then collect" harvest sees each event exactly once and a
    // collect() without drains still sees everything.
    std::lock_guard<std::mutex> Lock(QueueMu);
    for (const std::vector<TraceEvent> &Chunk : SealedQueue)
      Out.Events.insert(Out.Events.end(), Chunk.begin(), Chunk.end());
  }
  Out.Head.DroppedEvents = DroppedTotal.load(std::memory_order_relaxed);
  convertTicks(Out.Events);
  finalizeOrder(Out);
  return Out;
}

Trace TraceRecorder::drainSealed() {
  Trace Out;
  Out.Head.NativeFrameCapacity = Vm.options().NativeFrameCapacity;
  std::deque<std::vector<TraceEvent>> Popped;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Popped.swap(SealedQueue);
    uint64_t Total = DroppedTotal.load(std::memory_order_relaxed);
    Out.Head.DroppedEvents = Total - DrainReportedDropped;
    DrainReportedDropped = Total;
  }
  size_t TotalEvents = 0;
  for (const std::vector<TraceEvent> &Chunk : Popped)
    TotalEvents += Chunk.size();
  Out.Events.reserve(TotalEvents);
  for (std::vector<TraceEvent> &Chunk : Popped)
    Out.Events.insert(Out.Events.end(), Chunk.begin(), Chunk.end());
  {
    // Return the drained storage to the recycle pool; sealing threads pick
    // it up instead of allocating fresh rings.
    std::lock_guard<std::mutex> Lock(QueueMu);
    for (std::vector<TraceEvent> &Chunk : Popped)
      if (FreeChunks.size() < Opts.MaxQueuedChunks)
        FreeChunks.push_back(std::move(Chunk));
  }
  convertTicks(Out.Events);
  finalizeOrder(Out);
  return Out;
}

void TraceRecorder::retireLocalBuffer() {
  if (LocalCache.RecorderId != InstanceId)
    return;
  auto *Buffer = static_cast<ThreadBuffer *>(LocalCache.Buffer);
  LocalCache = {};
  std::unique_ptr<ThreadBuffer> Owned;
  {
    std::lock_guard<std::mutex> Lock(RegistryMu);
    for (auto It = Buffers.begin(); It != Buffers.end(); ++It)
      if (It->get() == Buffer) {
        Owned = std::move(*It);
        Buffers.erase(It);
        break;
      }
  }
  if (!Owned)
    return;
  // Everything the thread buffered moves to the recorder-level queue: the
  // batch-mode chunks and the partial ring (trimmed to its live prefix).
  for (std::vector<TraceEvent> &Chunk : Owned->Chunks)
    pushSealedChunk(std::move(Chunk));
  Owned->Chunks.clear();
  if (Owned->Count) {
    Owned->Ring.resize(Owned->Count);
    pushSealedChunk(std::move(Owned->Ring));
    Owned->Ring = {};
  }
  Owned->Count = 0;
  {
    std::lock_guard<std::mutex> Lock(RegistryMu);
    FreeBuffers.push_back(std::move(Owned));
  }
}

size_t TraceRecorder::liveThreadBuffers() {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  return Buffers.size();
}

uint64_t TraceRecorder::droppedEvents() {
  return DroppedTotal.load(std::memory_order_relaxed);
}
