//===- trace/Replay.cpp - Offline replay of boundary-crossing traces -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Replay.h"

#include "jinn/Machines.h"
#include "support/Format.h"
#include "synth/Synthesizer.h"

using namespace jinn;
using namespace jinn::trace;

std::map<std::string, uint64_t> ReplayResult::violationsPerMachine() const {
  std::map<std::string, uint64_t> Out;
  for (const agent::JinnReport &Report : Reports)
    if (!Report.EndOfRun)
      ++Out[Report.Machine];
  return Out;
}

void CollectingReporter::violation(spec::TransitionContext &Ctx,
                                   const spec::StateMachineSpec &Machine,
                                   const std::string &Message) {
  // Mirrors JinnReporter::violation exactly, minus the VM mutation (the
  // throwable and its effects are already baked into the trace snapshots):
  // same message text, same report record, same faulting-call suppression.
  std::string Full =
      formatString("%s in %s.", Message.c_str(), Ctx.siteName().c_str());
  Reports.push_back({Machine.Name, Ctx.siteName(), Full, false});
  Ctx.abortCall();
}

void CollectingReporter::endOfRun(const spec::StateMachineSpec &Machine,
                                  const std::string &Message) {
  Reports.push_back({Machine.Name, "<program termination>", Message, true});
}

ReplayResult jinn::trace::replayTrace(const Trace &T, jvm::Vm &Vm,
                                      const ReplayOptions &Opts) {
  ReplayResult Result;

  // A fresh machine set, filtered exactly as JinnAgent filters.
  agent::MachineSet Machines;
  std::vector<spec::MachineBase *> Active;
  for (spec::MachineBase *Machine : Machines.all()) {
    bool Enabled = Opts.EnabledMachines.empty();
    for (const std::string &Name : Opts.EnabledMachines)
      Enabled |= Machine->spec().Name == Name;
    if (Enabled)
      Active.push_back(Machine);
  }

  CollectingReporter Reporter;
  synth::Synthesizer Synth(Active, Reporter);
  Synth.OnActionRun = [&Result](const spec::StateMachineSpec &Spec) {
    ++Result.MachineTransitions[Spec.Name];
  };
  // A standalone dispatcher: the synthesized hooks run against replayed
  // calls, not against any live runtime's interposed table.
  jvmti::InterposeDispatcher Dispatcher;
  Synth.installInto(Dispatcher);

  jvmti::ReplayEnvironment Renv;
  Renv.Vm = &Vm;
  Renv.NativeFrameCapacity = T.Head.NativeFrameCapacity;
  Renv.ThreadNameOf = [&T](uint32_t Id) { return T.threadName(Id); };

  size_t Reported = 0;
  for (size_t EvIndex = 0; EvIndex < T.Events.size(); ++EvIndex) {
    const TraceEvent &Ev = T.Events[EvIndex];
    ++Result.EventsReplayed;
    switch (Ev.Kind) {
    case EventKind::ThreadAttach: {
      spec::ThreadStartInfo Info;
      Info.Id = Ev.ThreadId;
      Info.Name = Ev.Name;
      Info.EnvWord = Ev.Snap.EnvWord;
      Info.FrameCapacity = T.Head.NativeFrameCapacity;
      for (spec::MachineBase *Machine : Active)
        Machine->onThreadStart(Info);
      break;
    }

    case EventKind::JniPre:
    case EventKind::JniPost: {
      jvmti::CapturedCall Call(static_cast<jni::FnId>(Ev.Fn), &Ev.Snap,
                               &Renv);
      for (size_t I = 0; I < Ev.NumArgs; ++I)
        Call.restoreArg(static_cast<jni::ArgClass>(Ev.Args[I].Cls),
                        Ev.Args[I].Word, Ev.Args[I].PtrWord);
      if (Ev.Kind == EventKind::JniPost) {
        Call.restoreReturn(Ev.HasReturn, Ev.RetIsRef, Ev.RetWord,
                           Ev.RetPtrWord);
        Dispatcher.runPost(Call);
      } else {
        Dispatcher.runPre(Call);
      }
      break;
    }

    case EventKind::NativeEntry: {
      auto *Method = reinterpret_cast<jvm::MethodInfo *>(
          static_cast<uintptr_t>(Ev.MethodWord));
      if (!Method)
        break;
      spec::TransitionContext Ctx = spec::TransitionContext::nativeReplaySite(
          spec::TransitionContext::Site::NativeEntry, *Method, Ev.Snap, Renv,
          jni::wordToRef(Ev.SelfWord), Ev.NativeArgs, nullptr, Reporter);
      for (const synth::Synthesizer::MachineAction &Action :
           Synth.entryActions()) {
        ++Result.MachineTransitions[Action.first->Name];
        Action.second(Ctx);
        if (Ctx.aborted())
          break;
      }
      break;
    }

    case EventKind::NativeExit: {
      auto *Method = reinterpret_cast<jvm::MethodInfo *>(
          static_cast<uintptr_t>(Ev.MethodWord));
      if (!Method)
        break;
      jvalue Ret = Ev.NativeRet;
      spec::TransitionContext Ctx = spec::TransitionContext::nativeReplaySite(
          spec::TransitionContext::Site::NativeExit, *Method, Ev.Snap, Renv,
          jni::wordToRef(Ev.SelfWord), Ev.NativeArgs,
          Ev.HasReturn ? &Ret : nullptr, Reporter);
      for (const synth::Synthesizer::MachineAction &Action :
           Synth.exitActions()) {
        ++Result.MachineTransitions[Action.first->Name];
        Action.second(Ctx);
      }
      break;
    }

    case EventKind::VmDeath:
      for (spec::MachineBase *Machine : Active)
        Machine->onVmDeath(Reporter, Vm);
      break;

    case EventKind::NativeBind:
    case EventKind::ThreadDetach:
    case EventKind::GcEpoch:
      break; // bookkeeping events; nothing for the machines to check
    }
    if (Opts.OnReport)
      for (; Reported < Reporter.Reports.size(); ++Reported)
        Opts.OnReport(EvIndex, Reporter.Reports[Reported]);
  }

  Result.Reports = std::move(Reporter.Reports);
  return Result;
}
