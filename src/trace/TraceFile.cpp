//===- trace/TraceFile.cpp - Compact binary trace file format ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceFile.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <type_traits>

using namespace jinn;
using namespace jinn::trace;

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "trace events are written to disk as raw records");

namespace {

constexpr char FileMagic[8] = {'J', 'I', 'N', 'N', 'T', 'R', 'C', '1'};
constexpr uint32_t FileVersion = 1;

struct FileHeader {
  char Magic[8];
  uint32_t Version;
  uint32_t EventSize; ///< sizeof(TraceEvent) at write time
  uint32_t NativeFrameCapacity;
  uint32_t ThreadCount;
  uint64_t EventCount;
  uint64_t DroppedEvents;
};

struct ThreadEntry {
  uint32_t Id;
  char Name[32];
};

bool fail(std::string *Err, const std::string &Message) {
  if (Err)
    *Err = Message;
  return false;
}

struct FileCloser {
  void operator()(std::FILE *File) const {
    if (File)
      std::fclose(File);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool jinn::trace::writeTraceFile(const Trace &T, const std::string &Path,
                                 std::string *Err) {
  FilePtr File(std::fopen(Path.c_str(), "wb"));
  if (!File)
    return fail(Err, "cannot open " + Path + " for writing");

  FileHeader Header = {};
  std::memcpy(Header.Magic, FileMagic, sizeof(FileMagic));
  Header.Version = FileVersion;
  Header.EventSize = static_cast<uint32_t>(sizeof(TraceEvent));
  Header.NativeFrameCapacity = T.Head.NativeFrameCapacity;
  Header.ThreadCount = static_cast<uint32_t>(T.ThreadNames.size());
  Header.EventCount = T.Events.size();
  Header.DroppedEvents = T.Head.DroppedEvents;
  if (std::fwrite(&Header, sizeof(Header), 1, File.get()) != 1)
    return fail(Err, "short write on header");

  for (const auto &[Id, Name] : T.ThreadNames) {
    ThreadEntry Entry = {};
    Entry.Id = Id;
    std::snprintf(Entry.Name, sizeof(Entry.Name), "%s", Name.c_str());
    if (std::fwrite(&Entry, sizeof(Entry), 1, File.get()) != 1)
      return fail(Err, "short write on thread table");
  }

  if (!T.Events.empty() &&
      std::fwrite(T.Events.data(), sizeof(TraceEvent), T.Events.size(),
                  File.get()) != T.Events.size())
    return fail(Err, "short write on events");
  return true;
}

bool jinn::trace::readTraceFile(Trace &Out, const std::string &Path,
                                std::string *Err) {
  FilePtr File(std::fopen(Path.c_str(), "rb"));
  if (!File)
    return fail(Err, "cannot open " + Path);

  FileHeader Header = {};
  if (std::fread(&Header, sizeof(Header), 1, File.get()) != 1)
    return fail(Err, "truncated header in " + Path);
  if (std::memcmp(Header.Magic, FileMagic, sizeof(FileMagic)) != 0)
    return fail(Err, Path + " is not a Jinn trace (bad magic)");
  if (Header.Version != FileVersion)
    return fail(Err, "unsupported trace version in " + Path);
  if (Header.EventSize != sizeof(TraceEvent))
    return fail(Err, "trace record layout mismatch in " + Path +
                         " (written by a different build)");

  Out = Trace();
  Out.Head.Version = Header.Version;
  Out.Head.NativeFrameCapacity = Header.NativeFrameCapacity;
  Out.Head.DroppedEvents = Header.DroppedEvents;

  for (uint32_t I = 0; I < Header.ThreadCount; ++I) {
    ThreadEntry Entry = {};
    if (std::fread(&Entry, sizeof(Entry), 1, File.get()) != 1)
      return fail(Err, "truncated thread table in " + Path);
    Entry.Name[sizeof(Entry.Name) - 1] = '\0';
    Out.ThreadNames[Entry.Id] = Entry.Name;
  }

  Out.Events.resize(Header.EventCount);
  if (Header.EventCount &&
      std::fread(Out.Events.data(), sizeof(TraceEvent), Header.EventCount,
                 File.get()) != Header.EventCount)
    return fail(Err, "truncated event stream in " + Path);
  return true;
}
