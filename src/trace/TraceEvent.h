//===- trace/TraceEvent.h - Boundary-crossing trace events ---------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event model of the boundary-crossing trace subsystem. One TraceEvent
/// is recorded per language transition (JNI call/return, native-method
/// entry/exit/bind) plus VM lifecycle points (thread attach/detach, GC
/// epochs, VM death). Events are flat, fixed-size PODs so a trace
/// serializes as a raw record stream; every volatile VM observation a
/// synthesized machine could make at the crossing is frozen into the
/// embedded BoundarySnapshot, which is what makes offline replay reproduce
/// the inline checker's verdicts deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_TRACE_TRACEEVENT_H
#define JINN_TRACE_TRACEEVENT_H

#include "jvmti/Interpose.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace jinn::trace {

/// What kind of boundary crossing (or lifecycle point) an event records.
enum class EventKind : uint8_t {
  JniPre,       ///< C about to call a JNI function (C -> Java)
  JniPost,      ///< JNI function returned (Java -> C); absent if suppressed
  NativeEntry,  ///< Java called into a bound native method (Java -> C)
  NativeExit,   ///< native method returned to Java (C -> Java)
  NativeBind,   ///< a native method implementation was bound
  ThreadAttach, ///< a thread became known to the VM
  ThreadDetach, ///< a thread ended
  GcEpoch,      ///< a garbage collection finished
  VmDeath,      ///< VM shutdown (machines emit leak reports here)
};

inline constexpr size_t NumEventKinds = 9;

/// Readable name of \p Kind ("jni-pre", "native-entry", ...).
const char *eventKindName(EventKind Kind);

/// One classified JNI argument, as captured by the interposed wrapper.
struct ArgRecord {
  uint8_t Cls = 0;      ///< jni::ArgClass
  uint64_t Word = 0;    ///< handle bits, ID bits, or scalar payload
  uint64_t PtrWord = 0; ///< pointer operand identity (cstring, jvalue*, ...)
};

/// One recorded boundary crossing. Fixed-size POD: the trace file writes
/// these records verbatim.
///
/// Layout contract: every scalar comes before the payload arrays, and each
/// array's valid extent is governed by a count/flag in that scalar prefix
/// (NumArgs, NumNativeArgs, HasReturn, Kind for Name). The recorder's hot
/// path clears only the prefix — slack bytes in the arrays of a recorded
/// event are indeterminate and must never be read past their counts.
struct TraceEvent {
  static constexpr size_t MaxArgs = 5;       ///< JNI functions take <= 5
  static constexpr size_t MaxNativeArgs = 8; ///< native formals kept per event
  static constexpr size_t MaxNameLen = 31;   ///< thread name at attach

  uint64_t Epoch = 0;  ///< global order across threads (merge key)
  uint64_t Seq = 0;    ///< per-recording-thread sequence number
  uint64_t TimeNs = 0; ///< nanoseconds since the recorder started
  uint32_t ThreadId = 0; ///< VM thread the crossing belongs to
  EventKind Kind = EventKind::JniPre;
  uint8_t NumArgs = 0;
  uint16_t Fn = 0xFFFF; ///< jni::FnId for JniPre/JniPost events

  bool HasReturn = false; ///< JniPost/NativeExit carries a return value
  bool RetIsRef = false;
  bool Aborted = false; ///< NativeExit: entry actions suppressed the body
  bool NativeArgsTruncated = false; ///< more formals than MaxNativeArgs
  uint8_t NumNativeArgs = 0;
  uint64_t RetWord = 0;
  uint64_t RetPtrWord = 0;

  uint64_t MethodWord = 0; ///< MethodInfo identity at native sites / binds
  uint64_t SelfWord = 0;   ///< receiver handle word at native sites

  ArgRecord Args[MaxArgs];          ///< classified JNI arguments
  jvalue NativeArgs[MaxNativeArgs]; ///< native-method actuals
  jvalue NativeRet;                 ///< NativeExit return value

  char Name[MaxNameLen + 1]; ///< thread name (ThreadAttach only)

  jvmti::BoundarySnapshot Snap; ///< frozen VM observations
};

/// A complete recording: header facts, epoch-ordered events, and the
/// thread-name table rebuilt from attach events.
struct Trace {
  struct Header {
    uint32_t Version = 1;
    uint32_t NativeFrameCapacity = 16; ///< VM option at record time
    uint64_t DroppedEvents = 0; ///< lost to bounded recording, oldest first
  };

  Header Head;
  std::vector<TraceEvent> Events; ///< in Epoch order
  std::unordered_map<uint32_t, std::string> ThreadNames;

  /// Name of thread \p Id from the attach table ("thread-<id>" fallback).
  std::string threadName(uint32_t Id) const;

  /// Repopulates ThreadNames from ThreadAttach events.
  void rebuildThreadNames();
};

} // namespace jinn::trace

#endif // JINN_TRACE_TRACEEVENT_H
