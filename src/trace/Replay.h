//===- trace/Replay.h - Offline replay of boundary-crossing traces -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline replay checking: feed a recorded trace back through a freshly
/// synthesized set of state machines and reproduce the reports the inline
/// checker would have produced. Replay runs in the same process as the
/// recording (entity identities in the trace are process addresses),
/// against the quiesced VM; volatile observations come from each event's
/// BoundarySnapshot, so the machines see exactly what they saw inline.
///
/// Determinism guarantee: replaying a trace recorded in record+replay mode
/// yields a report list byte-identical to the inline checker's, because
/// the snapshots embed every effect inline checking had on the execution
/// (suppressed calls have no post event; reporter-thrown exceptions appear
/// as ExceptionPending in subsequent snapshots).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_TRACE_REPLAY_H
#define JINN_TRACE_REPLAY_H

#include "jinn/Report.h"
#include "trace/TraceEvent.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace jinn::trace {

struct ReplayOptions {
  /// Machine-name filter, same semantics as JinnOptions::EnabledMachines
  /// (empty = all fourteen).
  std::vector<std::string> EnabledMachines;
  /// When set, invoked once per report as it is produced, with the index
  /// into Trace::Events of the event being replayed. The static verifier's
  /// trace lifter uses this to pin each witnessed violation to its
  /// crossing.
  std::function<void(size_t, const agent::JinnReport &)> OnReport;
};

struct ReplayResult {
  std::vector<agent::JinnReport> Reports; ///< inline-equivalent verdicts
  uint64_t EventsReplayed = 0;
  std::map<std::string, uint64_t> MachineTransitions;

  /// Violation (non-end-of-run) report counts keyed by machine name.
  std::map<std::string, uint64_t> violationsPerMachine() const;
};

/// Reporter that reproduces JinnReporter's report list byte-for-byte —
/// same message text, same faulting-call suppression — without touching
/// the VM (no throwable is constructed, no diagnostics emitted).
class CollectingReporter : public spec::Reporter {
public:
  void violation(spec::TransitionContext &Ctx,
                 const spec::StateMachineSpec &Machine,
                 const std::string &Message) override;
  void endOfRun(const spec::StateMachineSpec &Machine,
                const std::string &Message) override;

  std::vector<agent::JinnReport> Reports;
};

/// Replays \p T through a fresh machine set against \p Vm.
ReplayResult replayTrace(const Trace &T, jvm::Vm &Vm,
                         const ReplayOptions &Opts = {});

} // namespace jinn::trace

#endif // JINN_TRACE_REPLAY_H
