//===- trace/TraceFile.h - Compact binary trace file format --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk format for boundary-crossing traces:
///
///   [FileHeader]            magic "JINNTRC1", version, record size,
///                           native frame capacity, counts
///   [ThreadEntry x N]       thread id + fixed 32-byte name
///   [TraceEvent x M]        raw fixed-size records, epoch order
///
/// Records are written verbatim (host endianness, host layout); the header
/// stores sizeof(TraceEvent) and readers refuse a mismatch, so a file is
/// valid exactly where its pointers are — the same process, which is also
/// the only place replay is meaningful (entity identities are process
/// addresses).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_TRACE_TRACEFILE_H
#define JINN_TRACE_TRACEFILE_H

#include "trace/TraceEvent.h"

#include <string>

namespace jinn::trace {

/// Serializes \p T to \p Path. Returns false and sets \p Err on failure.
bool writeTraceFile(const Trace &T, const std::string &Path,
                    std::string *Err = nullptr);

/// Deserializes \p Path into \p Out (replacing its contents). Returns
/// false and sets \p Err on malformed input or layout mismatch.
bool readTraceFile(Trace &Out, const std::string &Path,
                   std::string *Err = nullptr);

} // namespace jinn::trace

#endif // JINN_TRACE_TRACEFILE_H
