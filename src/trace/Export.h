//===- trace/Export.h - Chrome-trace and counters exporters --------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability exporters over recorded traces:
///
///  - writeChromeTrace(): chrome://tracing / Perfetto JSON. JNI calls and
///    native-method activations become per-thread duration events (nested
///    by the natural stacking of boundary crossings), GC epochs become
///    instants, thread names become metadata.
///  - computeCounters() / printCountersReport(): aggregated statistics —
///    events per kind, events per JNI function, native-method entries —
///    optionally joined with per-machine transition and violation counts
///    from a replay.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_TRACE_EXPORT_H
#define JINN_TRACE_EXPORT_H

#include "trace/TraceEvent.h"

#include <cstdio>
#include <map>
#include <string>

namespace jinn::trace {

/// Writes \p T as a Chrome trace-event JSON file loadable in
/// chrome://tracing or https://ui.perfetto.dev. Returns false + \p Err on
/// I/O failure.
bool writeChromeTrace(const Trace &T, const std::string &Path,
                      std::string *Err = nullptr);

/// Aggregated statistics of one trace.
struct TraceCounters {
  uint64_t TotalEvents = 0;
  uint64_t KindCounts[NumEventKinds] = {};
  std::map<std::string, uint64_t> PerJniFunction; ///< pre+post per function
  std::map<std::string, uint64_t> PerThread;      ///< events per thread name
  uint64_t NativeEntries = 0;
  uint64_t SuppressedJniCalls = 0; ///< JniPre with no matching JniPost
  uint64_t DroppedEvents = 0;
};

TraceCounters computeCounters(const Trace &T);

/// Prints \p Counters as a text report. \p MachineTransitions and
/// \p ViolationsPerMachine (both optional) come from a replay and add the
/// per-machine sections.
void printCountersReport(
    std::FILE *Out, const TraceCounters &Counters,
    const std::map<std::string, uint64_t> *MachineTransitions = nullptr,
    const std::map<std::string, uint64_t> *ViolationsPerMachine = nullptr);

} // namespace jinn::trace

#endif // JINN_TRACE_EXPORT_H
