//===- pyjinn/PyChecker.h - Synthesized Python/C dynamic checker ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §7 generalization: the same three constraint classes applied
/// to Python/C, synthesized from a specification of which API functions
/// return new vs. borrowed references (RefSpec). The generated checker
/// tracks co-owned references and their borrowers; when a co-owner
/// relinquishes an object (Py_DECREF dropping it to zero), its borrowers
/// become invalid, and any use of an invalid reference is reported
/// (Figure 11's dangle_bug). Interpreter-state machines (GIL, pending
/// exception) round out the three classes of §7.1.
///
/// Interposition is a PyApi table swap (see pyc/PyRuntime.h for the
/// substitution note).
///
//===----------------------------------------------------------------------===//

#ifndef JINN_PYJINN_PYCHECKER_H
#define JINN_PYJINN_PYCHECKER_H

#include "pyc/PyRuntime.h"

#include <map>
#include <string>
#include <vector>

namespace jinn::pyjinn {

/// How a Python/C function treats references (the specification file the
/// synthesizer consumes, paper §7.2).
enum class RefReturn : uint8_t { NoRef, New, Borrowed };

struct PyFnSpec {
  const char *Name;
  RefReturn Return = RefReturn::NoRef;
  int BorrowSourceParam = -1; ///< which parameter owns the borrowed result
  int StealsParam = -1;       ///< parameter whose reference is stolen
  bool ExceptionOblivious = false;
  bool GilFunction = false; ///< manipulates the GIL itself
  /// Dynamic type constraint on the primary object parameter (§7.1 "type
  /// constraints"): the interpreter sometimes forgoes this check for
  /// performance; the checker always performs it. None = unconstrained.
  pyc::PyKind Param0Kind = pyc::PyKind::None;
  bool Param0Typed = false;
};

/// The reference specification of every covered API function.
const std::vector<PyFnSpec> &pyFnSpecs();
const PyFnSpec *pyFnSpec(const char *Name);

/// One checker report.
struct PyViolation {
  std::string Machine;  ///< "Reference ownership" / "GIL state" /
                        ///< "Exception state"
  std::string Function; ///< API function at fault
  std::string Message;
};

/// The synthesized dynamic checker. Construction interposes on the
/// interpreter's API table; destruction restores it.
class PyChecker {
public:
  explicit PyChecker(pyc::PyInterp &Interp);
  ~PyChecker();
  PyChecker(const PyChecker &) = delete;
  PyChecker &operator=(const PyChecker &) = delete;

  const std::vector<PyViolation> &violations() const { return Violations; }
  void clearViolations() { Violations.clear(); }
  size_t countFor(const std::string &Machine) const;

  /// End-of-run leak check: live non-singleton objects beyond the count at
  /// checker construction.
  size_t leakedObjects() const;

  //===--------------------------------------------------------------------===
  // Internal interface used by the generated wrappers
  //===--------------------------------------------------------------------===

  /// Records a reference handed to extension code (owner or borrower).
  void trackHandout(pyc::PyObject *Obj, pyc::PyObject *Owner);

  /// Returns false (and reports) when \p Obj is dangling/invalidated.
  bool checkUse(const char *Fn, pyc::PyObject *Obj);

  /// §7.1 type constraints: \p Obj must be a live object of \p Kind.
  bool checkKind(const char *Fn, pyc::PyObject *Obj, pyc::PyKind Kind);

  /// Pre-call checks shared by every wrapper: GIL held, no pending
  /// exception (unless oblivious), every pointer argument valid. Returns
  /// false when the call must be suppressed.
  bool preCall(const char *Fn, std::initializer_list<pyc::PyObject *> Refs);

  /// Bookkeeping for Py_DecRef (invalidates borrowers of a dying owner).
  void onDecRef(pyc::PyObject *Obj, bool Died);

  void report(const char *Machine, const char *Fn, std::string Message);

  pyc::PyInterp &interp() { return Interp; }
  int ShadowGilDepth = 1;

private:
  pyc::PyInterp &Interp;
  const pyc::PyApi *SavedTable;
  size_t BaselineLive;
  std::vector<PyViolation> Violations;

  /// Pointer -> generation at hand-out; a mismatch means the slot was
  /// recycled and the extension's pointer dangles.
  std::map<const pyc::PyObject *, uint32_t> HandoutGen;
};

/// Retrieves the checker installed on \p Interp (null when none).
PyChecker *checkerOf(pyc::PyInterp &Interp);

} // namespace jinn::pyjinn

#endif // JINN_PYJINN_PYCHECKER_H
