//===- pyjinn/PyChecker.cpp - Synthesized Python/C dynamic checker -------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pyjinn/PyChecker.h"

#include "mutate/Mutation.h"

#include "support/Format.h"

#include <cstring>

using namespace jinn;
using namespace jinn::pyjinn;
using pyc::PyInterp;
using pyc::PyObject;
using pyc::Py_ssize_t;

//===----------------------------------------------------------------------===
// The reference specification (the synthesizer's input file, §7.2)
//===----------------------------------------------------------------------===

const std::vector<PyFnSpec> &jinn::pyjinn::pyFnSpecs() {
  static const std::vector<PyFnSpec> Specs = {
      {"Py_IncRef", RefReturn::NoRef, -1, -1, true, false},
      {"Py_DecRef", RefReturn::NoRef, -1, -1, true, false},
      {"PyInt_FromLong", RefReturn::New, -1, -1, false, false},
      {"PyInt_AsLong", RefReturn::NoRef, -1, -1, false, false,
       pyc::PyKind::Int, true},
      {"PyString_FromString", RefReturn::New, -1, -1, false, false},
      {"PyString_AsString", RefReturn::NoRef, -1, -1, false, false,
       pyc::PyKind::Str, true},
      {"PyList_New", RefReturn::New, -1, -1, false, false},
      {"PyList_Size", RefReturn::NoRef, -1, -1, false, false,
       pyc::PyKind::List, true},
      {"PyList_GetItem", RefReturn::Borrowed, 0, -1, false, false,
       pyc::PyKind::List, true},
      {"PyList_SetItem", RefReturn::NoRef, -1, 2, false, false,
       pyc::PyKind::List, true},
      {"PyList_Append", RefReturn::NoRef, -1, -1, false, false,
       pyc::PyKind::List, true},
      {"PyTuple_New", RefReturn::New, -1, -1, false, false},
      {"PyTuple_GetItem", RefReturn::Borrowed, 0, -1, false, false,
       pyc::PyKind::Tuple, true},
      {"PyTuple_SetItem", RefReturn::NoRef, -1, 2, false, false,
       pyc::PyKind::Tuple, true},
      {"Py_BuildValue", RefReturn::New, -1, -1, false, false},
      {"Py_VaBuildValue", RefReturn::New, -1, -1, false, false},
      {"PyErr_SetString", RefReturn::NoRef, -1, -1, true, false,
       pyc::PyKind::ExcType, true},
      {"PyErr_Occurred", RefReturn::Borrowed, -1, -1, true, false},
      {"PyErr_Clear", RefReturn::NoRef, -1, -1, true, false},
      {"PyGILState_Ensure", RefReturn::NoRef, -1, -1, true, true},
      {"PyGILState_Release", RefReturn::NoRef, -1, -1, true, true},
      {"PyEval_SaveThread", RefReturn::NoRef, -1, -1, true, true},
      {"PyEval_RestoreThread", RefReturn::NoRef, -1, -1, true, true},
  };
  return Specs;
}

const PyFnSpec *jinn::pyjinn::pyFnSpec(const char *Name) {
  for (const PyFnSpec &Spec : pyFnSpecs())
    if (std::strcmp(Spec.Name, Name) == 0)
      return &Spec;
  return nullptr;
}

//===----------------------------------------------------------------------===
// Checker core
//===----------------------------------------------------------------------===

PyChecker *jinn::pyjinn::checkerOf(PyInterp &Interp) {
  return static_cast<PyChecker *>(Interp.CheckerHandle);
}

void PyChecker::report(const char *Machine, const char *Fn,
                       std::string Message) {
  Violations.push_back({Machine, Fn, Message});
  Interp.diags().report(IncidentKind::Note, "pyjinn",
                        formatString("[%s] %s in %s", Machine,
                                     Message.c_str(), Fn));
  // Signal the error the Python way: a pending exception at the fault.
  Interp.PendingType = Interp.excRuntimeError();
  Interp.PendingMessage = formatString("pyjinn: %s in %s", Message.c_str(),
                                       Fn);
}

void PyChecker::trackHandout(PyObject *Obj, PyObject *Owner) {
  if (!Obj)
    return;
  HandoutGen[Obj] = Obj->Gen;
  (void)Owner; // the owner relationship is implicit: when the owner dies,
               // the borrowed object's slot dies/recycles with it
}

bool PyChecker::checkUse(const char *Fn, PyObject *Obj) {
  if (!Obj)
    return true; // null arguments are a different (production) concern
  auto It = HandoutGen.find(Obj);
  bool Dangling = Obj->Freed || (It != HandoutGen.end() &&
                                 It->second != Obj->Gen);
  if (!Dangling)
    return true;
  report("Reference ownership", Fn,
         "use of a dangling reference (the co-owned object was released; "
         "borrowed references to it are invalid)");
  return false;
}

bool PyChecker::checkKind(const char *Fn, PyObject *Obj,
                          pyc::PyKind Kind) {
  if (!Obj || Obj->Freed)
    return true; // nullness/danglingness are other machines' errors
  if (Obj->Kind == Kind)
    return true;
  report("Type constraints", Fn,
         formatString("argument has type %s where %s is required",
                      pyc::pyKindName(Obj->Kind), pyc::pyKindName(Kind)));
  return false;
}

bool PyChecker::preCall(const char *Fn,
                        std::initializer_list<PyObject *> Refs) {
  const PyFnSpec *Spec = pyFnSpec(Fn);
  if (!mutate::active(mutate::M::PySpecGilCheckDropped) &&
      ShadowGilDepth <= 0 && (!Spec || !Spec->GilFunction)) {
    report("GIL state", Fn, "Python/C API call without holding the GIL");
    return false;
  }
  if (Interp.PendingType && (!Spec || !Spec->ExceptionOblivious)) {
    report("Exception state", Fn,
           "Python/C API call while an exception is pending");
    return false;
  }
  for (PyObject *Ref : Refs)
    if (!checkUse(Fn, Ref))
      return false;
  if (Spec && Spec->Param0Typed && Refs.size() > 0 &&
      !checkKind(Fn, *Refs.begin(), Spec->Param0Kind))
    return false;
  return true;
}

void PyChecker::onDecRef(PyObject *Obj, bool Died) {
  if (!Died || !Obj)
    return;
  // The co-owner relinquished the object; the object (and any container
  // items it held) may now be recycled. Stale HandoutGen entries keep their
  // recorded generation, so any later use through an old pointer reports.
  (void)Obj;
}

size_t PyChecker::leakedObjects() const {
  size_t Live = Interp.liveCount();
  return Live > BaselineLive ? Live - BaselineLive : 0;
}

size_t PyChecker::countFor(const std::string &Machine) const {
  size_t N = 0;
  for (const PyViolation &V : Violations)
    if (V.Machine == Machine)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===
// The generated wrappers (cf. the JNI interposed table)
//===----------------------------------------------------------------------===

namespace {

const pyc::PyApi *realApi() { return pyc::defaultPyApi(); }

void wIncRef(PyInterp *I, PyObject *Obj) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("Py_IncRef", {Obj}))
    return;
  realApi()->Py_IncRef(I, Obj);
}

void wDecRef(PyInterp *I, PyObject *Obj) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("Py_DecRef", {Obj}))
    return;
  bool WasLive = I->isLive(Obj);
  realApi()->Py_DecRef(I, Obj);
  C->onDecRef(Obj, WasLive && !I->isLive(Obj));
}

PyObject *wIntFromLong(PyInterp *I, long V) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyInt_FromLong", {}))
    return nullptr;
  PyObject *Out = realApi()->PyInt_FromLong(I, V);
  C->trackHandout(Out, nullptr);
  return Out;
}

long wIntAsLong(PyInterp *I, PyObject *Obj) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyInt_AsLong", {Obj}))
    return -1;
  return realApi()->PyInt_AsLong(I, Obj);
}

PyObject *wStringFromString(PyInterp *I, const char *V) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyString_FromString", {}))
    return nullptr;
  PyObject *Out = realApi()->PyString_FromString(I, V);
  C->trackHandout(Out, nullptr);
  return Out;
}

const char *wStringAsString(PyInterp *I, PyObject *Obj) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyString_AsString", {Obj}))
    return nullptr;
  return realApi()->PyString_AsString(I, Obj);
}

PyObject *wListNew(PyInterp *I, Py_ssize_t N) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyList_New", {}))
    return nullptr;
  PyObject *Out = realApi()->PyList_New(I, N);
  C->trackHandout(Out, nullptr);
  return Out;
}

Py_ssize_t wListSize(PyInterp *I, PyObject *L) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyList_Size", {L}))
    return -1;
  return realApi()->PyList_Size(I, L);
}

PyObject *wListGetItem(PyInterp *I, PyObject *L, Py_ssize_t Index) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyList_GetItem", {L}))
    return nullptr;
  PyObject *Out = realApi()->PyList_GetItem(I, L, Index);
  // A borrowed reference: valid only while the co-owner keeps the item.
  C->trackHandout(Out, L);
  return Out;
}

int wListSetItem(PyInterp *I, PyObject *L, Py_ssize_t Index, PyObject *Item) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyList_SetItem", {L, Item}))
    return -1;
  return realApi()->PyList_SetItem(I, L, Index, Item);
}

int wListAppend(PyInterp *I, PyObject *L, PyObject *Item) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyList_Append", {L, Item}))
    return -1;
  return realApi()->PyList_Append(I, L, Item);
}

PyObject *wTupleNew(PyInterp *I, Py_ssize_t N) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyTuple_New", {}))
    return nullptr;
  PyObject *Out = realApi()->PyTuple_New(I, N);
  C->trackHandout(Out, nullptr);
  return Out;
}

PyObject *wTupleGetItem(PyInterp *I, PyObject *T, Py_ssize_t Index) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyTuple_GetItem", {T}))
    return nullptr;
  PyObject *Out = realApi()->PyTuple_GetItem(I, T, Index);
  C->trackHandout(Out, T);
  return Out;
}

int wTupleSetItem(PyInterp *I, PyObject *T, Py_ssize_t Index,
                  PyObject *Item) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyTuple_SetItem", {T, Item}))
    return -1;
  return realApi()->PyTuple_SetItem(I, T, Index, Item);
}

PyObject *wVaBuildValue(PyInterp *I, const char *Fmt, va_list Args) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("Py_VaBuildValue", {}))
    return nullptr;
  PyObject *Out = realApi()->Py_VaBuildValue(I, Fmt, Args);
  C->trackHandout(Out, nullptr);
  // Track the container's items too: extensions commonly borrow them.
  if (Out)
    for (PyObject *Item : Out->Items)
      C->trackHandout(Item, Out);
  return Out;
}

PyObject *wBuildValue(PyInterp *I, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  PyObject *Out = I->ActiveApi->Py_VaBuildValue(I, Fmt, Args);
  va_end(Args);
  return Out;
}

void wErrSetString(PyInterp *I, PyObject *Type, const char *Message) {
  PyChecker *C = checkerOf(*I);
  if (!C->preCall("PyErr_SetString", {Type}))
    return;
  realApi()->PyErr_SetString(I, Type, Message);
}

PyObject *wErrOccurred(PyInterp *I) {
  checkerOf(*I)->preCall("PyErr_Occurred", {});
  return realApi()->PyErr_Occurred(I);
}

void wErrClear(PyInterp *I) {
  checkerOf(*I)->preCall("PyErr_Clear", {});
  realApi()->PyErr_Clear(I);
}

int wGilEnsure(PyInterp *I) {
  PyChecker *C = checkerOf(*I);
  C->ShadowGilDepth += 1;
  return realApi()->PyGILState_Ensure(I);
}

void wGilRelease(PyInterp *I, int Handle) {
  PyChecker *C = checkerOf(*I);
  if (C->ShadowGilDepth <= 0) {
    C->report("GIL state", "PyGILState_Release",
              "release of a GIL this thread does not hold");
    return;
  }
  C->ShadowGilDepth -= 1;
  realApi()->PyGILState_Release(I, Handle);
}

void *wEvalSaveThread(PyInterp *I) {
  PyChecker *C = checkerOf(*I);
  if (C->ShadowGilDepth <= 0) {
    C->report("GIL state", "PyEval_SaveThread",
              "the GIL is not held (double save would deadlock)");
    return nullptr;
  }
  C->ShadowGilDepth -= 1;
  return realApi()->PyEval_SaveThread(I);
}

void wEvalRestoreThread(PyInterp *I, void *State) {
  PyChecker *C = checkerOf(*I);
  C->ShadowGilDepth += 1;
  realApi()->PyEval_RestoreThread(I, State);
}

const pyc::PyApi CheckedApi = {
    wIncRef,        wDecRef,       wIntFromLong,  wIntAsLong,
    wStringFromString, wStringAsString, wListNew,  wListSize,
    wListGetItem,   wListSetItem,  wListAppend,   wTupleNew,
    wTupleGetItem,  wTupleSetItem, wBuildValue,   wVaBuildValue,
    wErrSetString,  wErrOccurred,  wErrClear,     wGilEnsure,
    wGilRelease,    wEvalSaveThread, wEvalRestoreThread,
};

} // namespace

PyChecker::PyChecker(PyInterp &Interp)
    : Interp(Interp), SavedTable(Interp.ActiveApi),
      BaselineLive(Interp.liveCount()) {
  Interp.CheckerHandle = this;
  pyc::setActivePyApi(Interp, &CheckedApi);
  ShadowGilDepth = Interp.GilDepth;
}

PyChecker::~PyChecker() {
  pyc::setActivePyApi(Interp, SavedTable);
  Interp.CheckerHandle = nullptr;
}
