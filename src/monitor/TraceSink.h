//===- monitor/TraceSink.h - Bounded-memory trace destinations -----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pluggable destinations for streamed trace segments (production
/// monitoring mode). The recorder's drainSealed() produces epoch-ordered
/// segments; a TraceSink retains a bounded window of them — newest first
/// out, oldest dropped and counted — and can hand back the merged retained
/// trace, which is what a sampled report is replayed from.
///
/// Two implementations:
///
///  - RingSink keeps the last N segments in memory (bounded by segment
///    count and total bytes) — the default for tests and short soaks.
///  - RotatingFileSink spools segments into numbered .jinntrace files in a
///    directory, rotating a new file once the pending bytes exceed
///    RotateBytes and unlinking the oldest past MaxSegments (or older than
///    MaxAgeMs) — the "flight recorder" shape a production deployment
///    would use.
///
/// Both are thread-safe: the monitor thread appends while harness threads
/// read stats() or retained().
///
//===----------------------------------------------------------------------===//

#ifndef JINN_MONITOR_TRACESINK_H
#define JINN_MONITOR_TRACESINK_H

#include "trace/TraceEvent.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace jinn::monitor {

/// Counters a sink maintains; all monotonically non-decreasing except the
/// Retained* gauges.
struct SinkStats {
  uint64_t AppendedSegments = 0; ///< segments ever appended
  uint64_t AppendedEvents = 0;   ///< events ever appended
  uint64_t RetainedSegments = 0; ///< segments currently retained
  uint64_t RetainedEvents = 0;   ///< events currently retained
  uint64_t RetainedBytes = 0;    ///< approximate bytes currently retained
  uint64_t DroppedSegments = 0;  ///< segments rotated out of retention
  uint64_t DroppedEvents = 0;    ///< events inside those segments
};

/// A bounded-memory destination for trace segments.
class TraceSink {
public:
  virtual ~TraceSink() = default;

  /// Appends one merged segment (from TraceRecorder::drainSealed or the
  /// final collect). Thread-safe; may drop the oldest retained segment to
  /// stay within bounds.
  virtual void append(trace::Trace Segment) = 0;

  /// The merged view of everything currently retained, re-sorted into one
  /// (TimeNs, ThreadId, Seq) order with fresh epochs — the trace a sampled
  /// report is replayed from.
  virtual trace::Trace retained() = 0;

  virtual SinkStats stats() const = 0;
};

/// Merges \p Segments into one trace: concatenates events, restores the
/// global (TimeNs, ThreadId, Seq) order, reassigns epochs, rebuilds the
/// thread-name table, and sums header drop counts. Valid because every
/// segment of one recording shares the recorder's cached tick calibration.
trace::Trace mergeSegments(std::vector<trace::Trace> Segments);

/// In-memory sink: a deque of the most recent segments.
class RingSink : public TraceSink {
public:
  struct Options {
    size_t MaxSegments = 64;        ///< retained segment count bound
    size_t MaxBytes = 64ull << 20;  ///< retained byte bound (approximate)
  };

  RingSink() : RingSink(Options()) {}
  explicit RingSink(Options Opts);

  void append(trace::Trace Segment) override;
  trace::Trace retained() override;
  SinkStats stats() const override;

private:
  void pruneLocked();

  mutable std::mutex Mu;
  Options Opts;
  std::deque<trace::Trace> Segments;
  SinkStats Stats;
};

/// On-disk sink: numbered segment files in a directory, rotated by size
/// and pruned by count and age. Appended segments accumulate in a pending
/// in-memory buffer until RotateBytes worth of events arrive, then the
/// buffer is merged and written as seg-<n>.jinntrace.
class RotatingFileSink : public TraceSink {
public:
  struct Options {
    std::string Directory;         ///< created if missing
    size_t RotateBytes = 4u << 20; ///< pending bytes before a file rotates
    size_t MaxSegments = 8;        ///< segment files kept
    uint64_t MaxAgeMs = 0;         ///< prune files older than this; 0 = never
  };

  explicit RotatingFileSink(Options Opts);

  void append(trace::Trace Segment) override;
  trace::Trace retained() override;
  SinkStats stats() const override;

  /// Forces the pending buffer into a segment file (e.g. at shutdown so
  /// retained() covers the whole run from disk).
  void rotate();

  /// Paths of the currently retained segment files, oldest first.
  std::vector<std::string> segmentFiles() const;

  /// Last write error, if any ("" when healthy).
  std::string lastError() const;

private:
  struct SegmentFile {
    std::string Path;
    uint64_t Events = 0;
    uint64_t Bytes = 0;
    std::chrono::steady_clock::time_point Born;
  };

  void rotateLocked();
  void pruneLocked();

  mutable std::mutex Mu;
  Options Opts;
  std::vector<trace::Trace> Pending;
  size_t PendingBytes = 0;
  uint64_t PendingEvents = 0;
  std::vector<SegmentFile> Files; ///< oldest first
  uint64_t NextSegment = 0;
  SinkStats Stats;
  std::string WriteError;
};

} // namespace jinn::monitor

#endif // JINN_MONITOR_TRACESINK_H
