//===- monitor/Monitor.h - Production monitoring loop --------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production-monitoring loop: a JinnMonitor owns the periodic tick
/// that drains the recorder's streaming queue, folds each drained segment
/// into online aggregates (crossings/s, p50/p99 crossing latency, report
/// counts, drop counts, RSS peak), appends the segment to a bounded
/// TraceSink, and emits one JSON snapshot line per tick — the stream a
/// fleet-metrics pipeline would scrape.
///
/// Crossing latency is measured from the trace itself: each thread's
/// JniPre..JniPost (and NativeEntry..NativeExit) pairs are matched with a
/// per-thread stack carried across ticks, and the deltas feed a log-bucket
/// histogram, so percentiles cost O(64) memory regardless of run length.
///
/// Lifecycle: construct over a running agent (the agent must be in a
/// recording mode with StreamChunks on), then either call tick() manually
/// or start()/stop() the background thread; finish() performs the final
/// harvest once mutator threads are quiesced — it drains the queue, then
/// collect()s ring remnants, so the sink ends up with every event exactly
/// once.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_MONITOR_MONITOR_H
#define JINN_MONITOR_MONITOR_H

#include "jinn/JinnAgent.h"
#include "monitor/TraceSink.h"

#include <array>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <thread>

namespace jinn::monitor {

struct MonitorOptions {
  /// Background tick period (start()/stop() mode).
  uint64_t IntervalMs = 250;
  /// When non-empty, every tick appends one snapshot JSON line here.
  std::string SnapshotPath;
  /// Advisory RSS ceiling recorded into snapshots (gates alert on it);
  /// 0 = none.
  uint64_t RssCeilingBytes = 0;
};

/// One point-in-time aggregate view. All counters are cumulative since
/// monitor construction.
struct MonitorSnapshot {
  uint64_t UptimeMs = 0;
  uint64_t Ticks = 0;
  uint64_t Events = 0;          ///< trace events aggregated so far
  uint64_t Crossings = 0;       ///< boundary crossings (JNI calls + native entries)
  double CrossingsPerSec = 0.0; ///< Crossings over uptime
  uint64_t Reports = 0;         ///< reporter's merged violation count
  uint64_t DroppedEvents = 0;   ///< recorder-side drops observed in segments
  uint64_t P50CrossingNs = 0;   ///< median crossing latency (log-bucket approx)
  uint64_t P99CrossingNs = 0;
  uint64_t LatencySamples = 0;
  uint64_t RssBytes = 0;
  uint64_t PeakRssBytes = 0;
  uint64_t RssCeilingBytes = 0;
  SinkStats Sink;
  std::map<std::string, uint64_t> ReportsByMachine;

  /// Single-line JSON rendering (the JSONL snapshot format).
  std::string toJson() const;
};

/// Drives periodic drain -> aggregate -> sink ticks over a running agent.
class JinnMonitor {
public:
  /// \p Agent must outlive the monitor and be in a recording mode.
  JinnMonitor(jvm::Vm &Vm, agent::JinnAgent &Agent, TraceSink &Sink,
              MonitorOptions Opts = {});
  ~JinnMonitor();

  /// One monitoring step: drain the recorder's streaming queue, aggregate,
  /// append to the sink, emit a snapshot line. Thread-safe (the background
  /// thread and a harness may both call it).
  void tick();

  /// Starts/stops the background tick thread. Idempotent.
  void start();
  void stop();

  /// Final harvest, to be called once mutator threads are quiesced: stops
  /// the background thread, drains the queue, then collect()s whatever the
  /// still-attached threads (e.g. main) hold in partial rings, appending
  /// both to the sink, and emits a last snapshot.
  void finish();

  MonitorSnapshot snapshot() const;

private:
  void aggregateLocked(const trace::Trace &Segment);
  MonitorSnapshot snapshotLocked() const;
  void emitSnapshotLocked();
  uint64_t percentileLocked(double Fraction) const;

  jvm::Vm &Vm;
  agent::JinnAgent &Agent;
  TraceSink &Sink;
  MonitorOptions Opts;
  std::chrono::steady_clock::time_point Start;

  mutable std::mutex Mu;
  uint64_t Ticks = 0;
  uint64_t Events = 0;
  uint64_t Crossings = 0;
  uint64_t DroppedEvents = 0;
  uint64_t PeakRss = 0;
  uint64_t LastRss = 0;
  /// log2-bucketed crossing latencies (bucket k covers [2^k, 2^(k+1)) ns).
  std::array<uint64_t, 64> LatencyBuckets{};
  uint64_t LatencySamples = 0;
  /// Per-thread stack of open crossing start times, carried across ticks
  /// (a crossing can span a segment boundary). Erased at thread detach.
  std::map<uint32_t, std::vector<std::pair<uint8_t, uint64_t>>> OpenCrossings;
  std::FILE *SnapshotFile = nullptr;
  bool FinalHarvestDone = false;

  std::thread Worker;
  std::mutex CvMu;
  std::condition_variable Cv;
  bool StopFlag = false;
  bool Running = false;
};

} // namespace jinn::monitor

#endif // JINN_MONITOR_MONITOR_H
