//===- monitor/Monitor.cpp - Production monitoring loop ------------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "monitor/Monitor.h"

#include "support/Format.h"
#include "support/Resource.h"

#include <algorithm>

using namespace jinn;
using namespace jinn::monitor;

namespace {

/// Crossing-kind tags for the open-crossing stacks.
constexpr uint8_t JniCrossing = 0;
constexpr uint8_t NativeCrossing = 1;

} // namespace

std::string MonitorSnapshot::toJson() const {
  std::string Json = formatString(
      "{\"uptime_ms\":%llu,\"ticks\":%llu,\"events\":%llu,"
      "\"crossings\":%llu,\"crossings_per_sec\":%.1f,\"reports\":%llu,"
      "\"dropped_events\":%llu,\"p50_crossing_ns\":%llu,"
      "\"p99_crossing_ns\":%llu,\"latency_samples\":%llu,"
      "\"rss_bytes\":%llu,\"peak_rss_bytes\":%llu,\"rss_ceiling_bytes\":%llu",
      static_cast<unsigned long long>(UptimeMs),
      static_cast<unsigned long long>(Ticks),
      static_cast<unsigned long long>(Events),
      static_cast<unsigned long long>(Crossings), CrossingsPerSec,
      static_cast<unsigned long long>(Reports),
      static_cast<unsigned long long>(DroppedEvents),
      static_cast<unsigned long long>(P50CrossingNs),
      static_cast<unsigned long long>(P99CrossingNs),
      static_cast<unsigned long long>(LatencySamples),
      static_cast<unsigned long long>(RssBytes),
      static_cast<unsigned long long>(PeakRssBytes),
      static_cast<unsigned long long>(RssCeilingBytes));
  Json += formatString(
      ",\"sink\":{\"appended_segments\":%llu,\"appended_events\":%llu,"
      "\"retained_segments\":%llu,\"retained_events\":%llu,"
      "\"retained_bytes\":%llu,\"dropped_segments\":%llu,"
      "\"dropped_events\":%llu}",
      static_cast<unsigned long long>(Sink.AppendedSegments),
      static_cast<unsigned long long>(Sink.AppendedEvents),
      static_cast<unsigned long long>(Sink.RetainedSegments),
      static_cast<unsigned long long>(Sink.RetainedEvents),
      static_cast<unsigned long long>(Sink.RetainedBytes),
      static_cast<unsigned long long>(Sink.DroppedSegments),
      static_cast<unsigned long long>(Sink.DroppedEvents));
  Json += ",\"reports_by_machine\":{";
  bool First = true;
  for (const auto &[Machine, Count] : ReportsByMachine) {
    Json += formatString("%s\"%s\":%llu", First ? "" : ",", Machine.c_str(),
                         static_cast<unsigned long long>(Count));
    First = false;
  }
  Json += "}}";
  return Json;
}

JinnMonitor::JinnMonitor(jvm::Vm &Vm, agent::JinnAgent &Agent, TraceSink &Sink,
                         MonitorOptions Opts)
    : Vm(Vm), Agent(Agent), Sink(Sink), Opts(std::move(Opts)),
      Start(std::chrono::steady_clock::now()) {
  if (!this->Opts.SnapshotPath.empty())
    SnapshotFile = std::fopen(this->Opts.SnapshotPath.c_str(), "w");
}

JinnMonitor::~JinnMonitor() {
  stop();
  if (SnapshotFile)
    std::fclose(SnapshotFile);
}

void JinnMonitor::aggregateLocked(const trace::Trace &Segment) {
  Events += Segment.Events.size();
  DroppedEvents += Segment.Head.DroppedEvents;
  for (const trace::TraceEvent &Event : Segment.Events) {
    switch (Event.Kind) {
    case trace::EventKind::JniPre:
      Crossings += 1;
      OpenCrossings[Event.ThreadId].push_back({JniCrossing, Event.TimeNs});
      break;
    case trace::EventKind::NativeEntry:
      Crossings += 1;
      OpenCrossings[Event.ThreadId].push_back({NativeCrossing, Event.TimeNs});
      break;
    case trace::EventKind::JniPost:
    case trace::EventKind::NativeExit: {
      uint8_t Want = Event.Kind == trace::EventKind::JniPost ? JniCrossing
                                                             : NativeCrossing;
      auto It = OpenCrossings.find(Event.ThreadId);
      if (It == OpenCrossings.end())
        break;
      auto &Stack = It->second;
      // A suppressed JNI call records a pre without a post; such stale
      // entries are discarded when the enclosing crossing closes over
      // them (kind mismatch).
      while (!Stack.empty() && Stack.back().first != Want)
        Stack.pop_back();
      if (Stack.empty())
        break;
      uint64_t Delta = Event.TimeNs >= Stack.back().second
                           ? Event.TimeNs - Stack.back().second
                           : 0;
      Stack.pop_back();
      unsigned Bucket = 0;
      for (uint64_t V = Delta; V >>= 1;)
        ++Bucket;
      LatencyBuckets[Bucket] += 1;
      LatencySamples += 1;
      break;
    }
    case trace::EventKind::ThreadDetach:
      OpenCrossings.erase(Event.ThreadId);
      break;
    default:
      break;
    }
  }
  LastRss = currentRssBytes();
  PeakRss = std::max(PeakRss, LastRss);
}

uint64_t JinnMonitor::percentileLocked(double Fraction) const {
  if (!LatencySamples)
    return 0;
  uint64_t Target = static_cast<uint64_t>(Fraction *
                                          static_cast<double>(LatencySamples));
  if (Target >= LatencySamples)
    Target = LatencySamples - 1;
  uint64_t Seen = 0;
  for (size_t K = 0; K < LatencyBuckets.size(); ++K) {
    Seen += LatencyBuckets[K];
    if (Seen > Target)
      return (1ULL << K) + (1ULL << K) / 2; // bucket midpoint
  }
  return 0;
}

MonitorSnapshot JinnMonitor::snapshotLocked() const {
  MonitorSnapshot Snap;
  auto Now = std::chrono::steady_clock::now();
  Snap.UptimeMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Now - Start)
          .count());
  Snap.Ticks = Ticks;
  Snap.Events = Events;
  Snap.Crossings = Crossings;
  double Seconds = static_cast<double>(Snap.UptimeMs) / 1000.0;
  Snap.CrossingsPerSec =
      Seconds > 0 ? static_cast<double>(Crossings) / Seconds : 0.0;
  Snap.Reports = Agent.reporter().reportCount();
  Snap.ReportsByMachine = Agent.reporter().reportCountsByMachine();
  Snap.DroppedEvents = DroppedEvents;
  Snap.P50CrossingNs = percentileLocked(0.50);
  Snap.P99CrossingNs = percentileLocked(0.99);
  Snap.LatencySamples = LatencySamples;
  Snap.RssBytes = LastRss;
  Snap.PeakRssBytes = PeakRss;
  Snap.RssCeilingBytes = Opts.RssCeilingBytes;
  Snap.Sink = Sink.stats();
  return Snap;
}

void JinnMonitor::emitSnapshotLocked() {
  if (!SnapshotFile)
    return;
  std::string Line = snapshotLocked().toJson();
  std::fprintf(SnapshotFile, "%s\n", Line.c_str());
  std::fflush(SnapshotFile);
}

void JinnMonitor::tick() {
  trace::Trace Segment;
  if (trace::TraceRecorder *Recorder = Agent.recorder())
    Segment = Recorder->drainSealed();
  std::lock_guard<std::mutex> Lock(Mu);
  Ticks += 1;
  aggregateLocked(Segment);
  if (!Segment.Events.empty())
    Sink.append(std::move(Segment));
  Vm.diags().setCounter("jinn.monitor.crossings", Crossings);
  Vm.diags().setCounter("jinn.monitor.events", Events);
  emitSnapshotLocked();
}

void JinnMonitor::start() {
  {
    std::lock_guard<std::mutex> Lock(CvMu);
    if (Running)
      return;
    Running = true;
    StopFlag = false;
  }
  Worker = std::thread([this] {
    std::unique_lock<std::mutex> Lock(CvMu);
    while (!StopFlag) {
      Cv.wait_for(Lock, std::chrono::milliseconds(Opts.IntervalMs),
                  [this] { return StopFlag; });
      if (StopFlag)
        break;
      Lock.unlock();
      tick();
      Lock.lock();
    }
  });
}

void JinnMonitor::stop() {
  {
    std::lock_guard<std::mutex> Lock(CvMu);
    if (!Running)
      return;
    StopFlag = true;
  }
  Cv.notify_all();
  if (Worker.joinable())
    Worker.join();
  std::lock_guard<std::mutex> Lock(CvMu);
  Running = false;
}

void JinnMonitor::finish() {
  stop();
  tick(); // drain everything queued up to quiescence
  trace::TraceRecorder *Recorder = Agent.recorder();
  std::lock_guard<std::mutex> Lock(Mu);
  if (FinalHarvestDone || !Recorder) {
    emitSnapshotLocked();
    return;
  }
  FinalHarvestDone = true;
  // Ring remnants of still-attached threads (e.g. main) were never sealed
  // into the queue; a full collect picks them up. The queue is empty after
  // the tick above, so nothing is duplicated.
  trace::Trace Rest = Recorder->collect();
  // collect() reports the recorder's *total* drop count; earlier drains
  // already accounted for part of it, so fold in only the remainder.
  uint64_t Total = Rest.Head.DroppedEvents;
  Rest.Head.DroppedEvents = Total > DroppedEvents ? Total - DroppedEvents : 0;
  Ticks += 1;
  aggregateLocked(Rest);
  if (!Rest.Events.empty())
    Sink.append(std::move(Rest));
  emitSnapshotLocked();
}

MonitorSnapshot JinnMonitor::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return snapshotLocked();
}
