//===- monitor/TraceSink.cpp - Bounded-memory trace destinations ---------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "monitor/TraceSink.h"

#include "support/Format.h"
#include "trace/TraceFile.h"

#include <algorithm>
#include <filesystem>

using namespace jinn;
using namespace jinn::monitor;

namespace {

uint64_t traceBytes(const trace::Trace &T) {
  return static_cast<uint64_t>(T.Events.size()) * sizeof(trace::TraceEvent);
}

} // namespace

trace::Trace monitor::mergeSegments(std::vector<trace::Trace> Segments) {
  trace::Trace Out;
  size_t Total = 0;
  for (const trace::Trace &Seg : Segments)
    Total += Seg.Events.size();
  Out.Events.reserve(Total);
  for (trace::Trace &Seg : Segments) {
    Out.Head.Version = Seg.Head.Version;
    Out.Head.NativeFrameCapacity = Seg.Head.NativeFrameCapacity;
    Out.Head.DroppedEvents += Seg.Head.DroppedEvents;
    Out.Events.insert(Out.Events.end(),
                      std::make_move_iterator(Seg.Events.begin()),
                      std::make_move_iterator(Seg.Events.end()));
  }
  // Same order collect() establishes: real time, thread, per-thread
  // sequence. All segments share one tick calibration, so concatenating
  // and re-sorting cannot invert any per-thread order.
  std::sort(Out.Events.begin(), Out.Events.end(),
            [](const trace::TraceEvent &A, const trace::TraceEvent &B) {
              if (A.TimeNs != B.TimeNs)
                return A.TimeNs < B.TimeNs;
              if (A.ThreadId != B.ThreadId)
                return A.ThreadId < B.ThreadId;
              return A.Seq < B.Seq;
            });
  for (size_t I = 0; I < Out.Events.size(); ++I)
    Out.Events[I].Epoch = I;
  Out.rebuildThreadNames();
  return Out;
}

//===----------------------------------------------------------------------===//
// RingSink
//===----------------------------------------------------------------------===//

RingSink::RingSink(Options Opts) : Opts(Opts) {}

void RingSink::append(trace::Trace Segment) {
  if (Segment.Events.empty())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Stats.AppendedSegments += 1;
  Stats.AppendedEvents += Segment.Events.size();
  Stats.RetainedSegments += 1;
  Stats.RetainedEvents += Segment.Events.size();
  Stats.RetainedBytes += traceBytes(Segment);
  Segments.push_back(std::move(Segment));
  pruneLocked();
}

void RingSink::pruneLocked() {
  while (!Segments.empty() &&
         ((Opts.MaxSegments && Segments.size() > Opts.MaxSegments) ||
          (Opts.MaxBytes && Stats.RetainedBytes > Opts.MaxBytes &&
           Segments.size() > 1))) {
    const trace::Trace &Oldest = Segments.front();
    Stats.DroppedSegments += 1;
    Stats.DroppedEvents += Oldest.Events.size();
    Stats.RetainedSegments -= 1;
    Stats.RetainedEvents -= Oldest.Events.size();
    Stats.RetainedBytes -= traceBytes(Oldest);
    Segments.pop_front();
  }
}

trace::Trace RingSink::retained() {
  std::vector<trace::Trace> Copy;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Copy.assign(Segments.begin(), Segments.end());
  }
  return mergeSegments(std::move(Copy));
}

SinkStats RingSink::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

//===----------------------------------------------------------------------===//
// RotatingFileSink
//===----------------------------------------------------------------------===//

RotatingFileSink::RotatingFileSink(Options Opts) : Opts(std::move(Opts)) {
  std::error_code Ec;
  std::filesystem::create_directories(this->Opts.Directory, Ec);
  if (Ec)
    WriteError = "create_directories: " + Ec.message();
}

void RotatingFileSink::append(trace::Trace Segment) {
  if (Segment.Events.empty())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Stats.AppendedSegments += 1;
  Stats.AppendedEvents += Segment.Events.size();
  PendingBytes += traceBytes(Segment);
  PendingEvents += Segment.Events.size();
  Pending.push_back(std::move(Segment));
  if (Opts.RotateBytes && PendingBytes >= Opts.RotateBytes)
    rotateLocked();
  pruneLocked();
}

void RotatingFileSink::rotate() {
  std::lock_guard<std::mutex> Lock(Mu);
  rotateLocked();
  pruneLocked();
}

void RotatingFileSink::rotateLocked() {
  if (Pending.empty())
    return;
  trace::Trace Merged = mergeSegments(std::move(Pending));
  Pending.clear();
  SegmentFile File;
  File.Path = Opts.Directory + "/" +
              formatString("seg-%06llu.jinntrace",
                           static_cast<unsigned long long>(NextSegment++));
  File.Events = Merged.Events.size();
  File.Bytes = traceBytes(Merged);
  File.Born = std::chrono::steady_clock::now();
  PendingBytes = 0;
  PendingEvents = 0;
  std::string Err;
  if (!trace::writeTraceFile(Merged, File.Path, &Err)) {
    // The events in this rotation are lost; count them as dropped rather
    // than pretending the file exists.
    WriteError = Err;
    Stats.DroppedSegments += 1;
    Stats.DroppedEvents += File.Events;
    return;
  }
  Files.push_back(std::move(File));
}

void RotatingFileSink::pruneLocked() {
  auto DropFront = [this] {
    const SegmentFile &Oldest = Files.front();
    Stats.DroppedSegments += 1;
    Stats.DroppedEvents += Oldest.Events;
    std::error_code Ec;
    std::filesystem::remove(Oldest.Path, Ec);
    Files.erase(Files.begin());
  };
  while (Opts.MaxSegments && Files.size() > Opts.MaxSegments)
    DropFront();
  if (Opts.MaxAgeMs) {
    auto Cutoff = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(Opts.MaxAgeMs);
    while (!Files.empty() && Files.front().Born < Cutoff)
      DropFront();
  }
  uint64_t RetainedEvents = PendingEvents;
  uint64_t RetainedBytes = PendingBytes;
  for (const SegmentFile &File : Files) {
    RetainedEvents += File.Events;
    RetainedBytes += File.Bytes;
  }
  Stats.RetainedSegments = Files.size() + (Pending.empty() ? 0 : 1);
  Stats.RetainedEvents = RetainedEvents;
  Stats.RetainedBytes = RetainedBytes;
}

trace::Trace RotatingFileSink::retained() {
  std::vector<std::string> Paths;
  std::vector<trace::Trace> Parts;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const SegmentFile &File : Files)
      Paths.push_back(File.Path);
    // Pending (not yet rotated) segments participate too, so retained()
    // is complete at any instant, not just after rotate().
    Parts.assign(Pending.begin(), Pending.end());
  }
  for (const std::string &Path : Paths) {
    trace::Trace Part;
    std::string Err;
    if (trace::readTraceFile(Part, Path, &Err))
      Parts.push_back(std::move(Part));
  }
  return mergeSegments(std::move(Parts));
}

SinkStats RotatingFileSink::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

std::vector<std::string> RotatingFileSink::segmentFiles() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Paths;
  for (const SegmentFile &File : Files)
    Paths.push_back(File.Path);
  return Paths;
}

std::string RotatingFileSink::lastError() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return WriteError;
}
