//===- spec/StateMachine.cpp - FFI state machine specifications ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "spec/StateMachine.h"

#include "jvm/JThread.h"
#include "support/Compiler.h"

using namespace jinn;
using namespace jinn::spec;

Reporter::~Reporter() = default;

const char *jinn::spec::directionName(Direction Dir) {
  switch (Dir) {
  case Direction::CallJavaToC:
    return "Call:Java->C";
  case Direction::ReturnCToJava:
    return "Return:C->Java";
  case Direction::CallCToJava:
    return "Call:C->Java";
  case Direction::ReturnJavaToC:
    return "Return:Java->C";
  }
  JINN_UNREACHABLE("invalid Direction");
}

const char *jinn::spec::counterOpName(CounterOp Op) {
  switch (Op) {
  case CounterOp::None:
    return "none";
  case CounterOp::Push:
    return "push";
  case CounterOp::Pop:
    return "pop";
  }
  JINN_UNREACHABLE("invalid CounterOp");
}

FunctionSelector FunctionSelector::all(std::string Description) {
  FunctionSelector Out;
  Out.K = Kind::AllJniFunctions;
  Out.Description = std::move(Description);
  return Out;
}

FunctionSelector FunctionSelector::one(jni::FnId Fn) {
  FunctionSelector Out;
  Out.K = Kind::OneJniFunction;
  Out.Fn = Fn;
  Out.Description = jni::fnName(Fn);
  return Out;
}

FunctionSelector FunctionSelector::matching(
    std::string Description,
    std::function<bool(const jni::FnTraits &)> Pred) {
  FunctionSelector Out;
  Out.K = Kind::JniPredicate;
  Out.Pred = std::move(Pred);
  Out.Description = std::move(Description);
  return Out;
}

FunctionSelector FunctionSelector::nativeMethods(std::string Description) {
  FunctionSelector Out;
  Out.K = Kind::AnyNativeMethod;
  Out.Description = std::move(Description);
  return Out;
}

bool FunctionSelector::matches(jni::FnId Id) const {
  if (Id >= jni::FnId::Count)
    return false; // FnId::Count is the "no function" sentinel
  switch (K) {
  case Kind::AllJniFunctions:
    return true;
  case Kind::OneJniFunction:
    return Fn < jni::FnId::Count && Id == Fn;
  case Kind::JniPredicate:
    return Pred && Pred(jni::fnTraits(Id));
  case Kind::AnyNativeMethod:
    return false;
  }
  JINN_UNREACHABLE("invalid FunctionSelector kind");
}

std::vector<jni::FnId>
jinn::spec::matchedFunctions(const FunctionSelector &Fns) {
  std::vector<jni::FnId> Out;
  for (size_t I = 0; I < jni::NumJniFunctions; ++I) {
    jni::FnId Id = static_cast<jni::FnId>(I);
    if (Fns.matches(Id))
      Out.push_back(Id);
  }
  return Out;
}

uint32_t TransitionContext::threadId() const {
  if (Snap)
    return Snap->ThreadId;
  return Env->thread->id();
}

std::string TransitionContext::threadName() const {
  if (Snap)
    return Renv->threadName(Snap->ThreadId);
  return Env->thread->name();
}

uint32_t TransitionContext::currentThreadId() const {
  if (Snap)
    return Snap->CurThreadId;
  jvm::JThread *Cur = Env->runtime->currentThread();
  return Cur ? Cur->id() : 0;
}

std::string TransitionContext::currentThreadName() const {
  if (Snap)
    return Renv->threadName(Snap->CurThreadId);
  jvm::JThread *Cur = Env->runtime->currentThread();
  return Cur ? Cur->name() : std::string();
}

uint64_t TransitionContext::envWord() const {
  if (Snap)
    return Snap->EnvWord;
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Env));
}

bool TransitionContext::exceptionPending() const {
  if (Snap)
    return Snap->ExceptionPending;
  return !Env->thread->Pending.isNull();
}

jvm::Vm::PeekResult TransitionContext::peek(uint64_t Word) const {
  if (Snap) {
    if (const jvmti::PeekFact *F = Snap->findPeek(Word)) {
      jvm::Vm::PeekResult R;
      R.S = static_cast<jvm::Vm::PeekResult::Status>(F->Status);
      R.Target = jvm::ObjectId::fromRaw(F->Target);
      R.Kind = static_cast<jvm::RefKind>(F->Kind);
      R.OwnerThread = F->OwnerThread;
      return R;
    }
    // Not snapshotted (capacity overflow or an unusual query): fall back to
    // the live VM, judged from the recorded thread's perspective.
    return Renv->Vm->peekHandle(Word, Renv->Vm->threadById(Snap->ThreadId));
  }
  return Env->vm->peekHandle(Word, Env->thread);
}

bool TransitionContext::releasedBuffer(const void *Buf,
                                       uint64_t &TargetRaw) const {
  if (Snap) {
    TargetRaw = Snap->BufferTarget;
    return Snap->BufferFound;
  }
  const jni::BufferRecord *Rec = Env->runtime->findBuffer(Buf);
  if (!Rec)
    return false;
  TargetRaw = Rec->Target.raw();
  return true;
}

uint32_t TransitionContext::nativeFrameCapacity() const {
  if (Snap)
    return Renv->NativeFrameCapacity;
  return Env->vm->options().NativeFrameCapacity;
}

void TransitionContext::abortCall() {
  if (isJniSite())
    Call->abortCall();
  else
    NativeAborted = true;
}

bool TransitionContext::aborted() const {
  if (isJniSite())
    return Call->aborted();
  return NativeAborted;
}

std::string TransitionContext::siteName() const {
  if (isJniSite())
    return jni::fnName(Call->id());
  return Method->qualifiedName();
}

MachineBase::~MachineBase() = default;
