//===- spec/StateMachine.cpp - FFI state machine specifications ----------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "spec/StateMachine.h"

#include "support/Compiler.h"

using namespace jinn;
using namespace jinn::spec;

Reporter::~Reporter() = default;

const char *jinn::spec::directionName(Direction Dir) {
  switch (Dir) {
  case Direction::CallJavaToC:
    return "Call:Java->C";
  case Direction::ReturnCToJava:
    return "Return:C->Java";
  case Direction::CallCToJava:
    return "Call:C->Java";
  case Direction::ReturnJavaToC:
    return "Return:Java->C";
  }
  JINN_UNREACHABLE("invalid Direction");
}

FunctionSelector FunctionSelector::all(std::string Description) {
  FunctionSelector Out;
  Out.K = Kind::AllJniFunctions;
  Out.Description = std::move(Description);
  return Out;
}

FunctionSelector FunctionSelector::one(jni::FnId Fn) {
  FunctionSelector Out;
  Out.K = Kind::OneJniFunction;
  Out.Fn = Fn;
  Out.Description = jni::fnName(Fn);
  return Out;
}

FunctionSelector FunctionSelector::matching(
    std::string Description,
    std::function<bool(const jni::FnTraits &)> Pred) {
  FunctionSelector Out;
  Out.K = Kind::JniPredicate;
  Out.Pred = std::move(Pred);
  Out.Description = std::move(Description);
  return Out;
}

FunctionSelector FunctionSelector::nativeMethods(std::string Description) {
  FunctionSelector Out;
  Out.K = Kind::AnyNativeMethod;
  Out.Description = std::move(Description);
  return Out;
}

bool FunctionSelector::matches(jni::FnId Id) const {
  switch (K) {
  case Kind::AllJniFunctions:
    return true;
  case Kind::OneJniFunction:
    return Id == Fn;
  case Kind::JniPredicate:
    return Pred(jni::fnTraits(Id));
  case Kind::AnyNativeMethod:
    return false;
  }
  JINN_UNREACHABLE("invalid FunctionSelector kind");
}

void TransitionContext::abortCall() {
  if (isJniSite())
    Call->abortCall();
  else
    NativeAborted = true;
}

bool TransitionContext::aborted() const {
  if (isJniSite())
    return Call->aborted();
  return NativeAborted;
}

std::string TransitionContext::siteName() const {
  if (isJniSite())
    return jni::fnName(Call->id());
  return Method->qualifiedName();
}

MachineBase::~MachineBase() = default;
