//===- spec/StateMachine.h - FFI state machine specifications ------------===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specification formalism of the paper (§4): an FFI constraint is a
/// state machine over program entities (threads, references, IDs); each
/// state transition is mapped to the *language transitions* that may
/// trigger it (calls and returns crossing the Java/C boundary, in both
/// directions); the transition carries the code that checks whether it
/// fired and updates the machine encoding. The synthesizer (src/synth)
/// computes the cross product of state transitions and FFI functions and
/// attaches the instrumentation to wrappers — Algorithm 1 verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_SPEC_STATEMACHINE_H
#define JINN_SPEC_STATEMACHINE_H

#include "jvmti/Interpose.h"

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace jinn::spec {

/// The four kinds of language transitions (paper §3.2 and Figures 2/6/7/8).
enum class Direction : uint8_t {
  CallJavaToC,   ///< entry into a native method
  ReturnCToJava, ///< return from a native method
  CallCToJava,   ///< a JNI function is about to execute
  ReturnJavaToC, ///< a JNI function has just returned to C
};

const char *directionName(Direction Dir);

/// Selects the FFI functions a language transition applies to.
struct FunctionSelector {
  enum class Kind : uint8_t {
    AllJniFunctions,
    OneJniFunction,
    JniPredicate,
    AnyNativeMethod,
  };
  Kind K = Kind::AllJniFunctions;
  jni::FnId Fn = jni::FnId::Count;
  std::function<bool(const jni::FnTraits &)> Pred;
  /// Human-readable description, used by the code emitter and docs
  /// (e.g. "any JNI function taking a reference").
  std::string Description;

  static FunctionSelector all(std::string Description);
  static FunctionSelector one(jni::FnId Fn);
  static FunctionSelector matching(std::string Description,
                                   std::function<bool(const jni::FnTraits &)>
                                       Pred);
  static FunctionSelector nativeMethods(std::string Description);

  /// True when this selector matches JNI function \p Id. Out-of-range ids
  /// (FnId::Count and beyond) and selectors without a predicate never
  /// match, so a malformed selector degrades to "matches nothing" instead
  /// of crashing — the speclint analyzer reports it as a zero-match error.
  bool matches(jni::FnId Id) const;
};

/// Every JNI function \p Fns matches, in FnId order. AnyNativeMethod
/// selectors match no JNI function. Shared by Algorithm 1 (which installs
/// one hook per matched function) and the static analyzer (which builds
/// the relevance matrix from the same sets), so the two can never drift.
std::vector<jni::FnId> matchedFunctions(const FunctionSelector &Fns);

/// A language transition point: function set x direction.
struct LanguageTransition {
  FunctionSelector Fns;
  Direction Dir;
};

class StateMachineSpec;
class Reporter;

/// Thread-lifecycle information handed to machines at thread start. Live
/// runs build it from the attaching JThread; replay builds it from the
/// recorded ThreadAttach event.
struct ThreadStartInfo {
  uint32_t Id = 0;
  std::string Name;
  uint64_t EnvWord = 0; ///< JNIEnv identity at attach (0 when not created)
  uint32_t FrameCapacity = 16;
};

/// Context handed to a transition action: either a JNI call site (wrapping
/// the CapturedCall) or a native method boundary.
class TransitionContext {
public:
  enum class Site : uint8_t { JniPre, JniPost, NativeEntry, NativeExit };

  static TransitionContext jniSite(Site S, jvmti::CapturedCall &Call,
                                   Reporter &Rep) {
    TransitionContext Ctx;
    Ctx.TheSite = S;
    Ctx.Call = &Call;
    Ctx.Env = Call.env();
    Ctx.Snap = Call.snapshot();
    Ctx.Renv = Call.replayEnv();
    Ctx.Rep = &Rep;
    return Ctx;
  }

  static TransitionContext nativeSite(Site S, jvm::MethodInfo &Method,
                                      JNIEnv *Env, jobject Self,
                                      const jvalue *Args, jvalue *Ret,
                                      Reporter &Rep) {
    TransitionContext Ctx;
    Ctx.TheSite = S;
    Ctx.Method = &Method;
    Ctx.Env = Env;
    Ctx.Self = Self;
    Ctx.Args = Args;
    Ctx.Ret = Ret;
    Ctx.Rep = &Rep;
    return Ctx;
  }

  /// Native-method boundary reconstructed from a recorded trace event:
  /// observations answer from \p Snap, the VM comes from \p Renv.
  static TransitionContext
  nativeReplaySite(Site S, jvm::MethodInfo &Method,
                   const jvmti::BoundarySnapshot &Snap,
                   const jvmti::ReplayEnvironment &Renv, jobject Self,
                   const jvalue *Args, jvalue *Ret, Reporter &Rep) {
    TransitionContext Ctx;
    Ctx.TheSite = S;
    Ctx.Method = &Method;
    Ctx.Self = Self;
    Ctx.Args = Args;
    Ctx.Ret = Ret;
    Ctx.Snap = &Snap;
    Ctx.Renv = &Renv;
    Ctx.Rep = &Rep;
    return Ctx;
  }

  Site site() const { return TheSite; }
  bool isJniSite() const {
    return TheSite == Site::JniPre || TheSite == Site::JniPost;
  }

  /// JNI sites only.
  jvmti::CapturedCall &call() const { return *Call; }

  /// Native-method sites only.
  jvm::MethodInfo &method() const { return *Method; }
  jobject self() const { return Self; }
  const jvalue *args() const { return Args; }
  jvalue *ret() const { return Ret; }

  JNIEnv *env() const { return Env; }
  jvm::JThread &thread() const { return *Env->thread; }
  jvm::Vm &vm() const { return Env ? *Env->vm : *Renv->Vm; }
  bool isReplay() const { return Snap != nullptr; }

  //===------------------------------------------------------------------===
  // Observation accessors. Live sites answer from the running VM; replayed
  // sites answer from the BoundarySnapshot frozen at crossing time. Machine
  // actions must observe the VM only through these (plus vm() queries over
  // stable entities: klasses, method/field infos, the heap).
  //===------------------------------------------------------------------===

  /// Id/name of the thread the JNIEnv at this site belongs to.
  uint32_t threadId() const;
  std::string threadName() const;
  /// Id/name of the thread actually executing the call (0/"" unknown); only
  /// differs from threadId() when code uses another thread's JNIEnv.
  uint32_t currentThreadId() const;
  std::string currentThreadName() const;
  /// Identity of the JNIEnv pointer used at this site.
  uint64_t envWord() const;
  /// Whether an exception is pending on the site's thread.
  bool exceptionPending() const;
  /// Handle inspection as of crossing time (Vm::peekHandle semantics).
  jvm::Vm::PeekResult peek(uint64_t Word) const;
  /// For pin-release sites: whether \p Buf had a pin record, and the pinned
  /// target's raw ObjectId in \p TargetRaw.
  bool releasedBuffer(const void *Buf, uint64_t &TargetRaw) const;
  /// The VM's ensured local-reference frame capacity.
  uint32_t nativeFrameCapacity() const;

  Reporter &reporter() const { return *Rep; }

  /// Suppresses the underlying call (JNI pre sites and native entries).
  void abortCall();
  bool aborted() const;

  /// Name of the FFI function / native method at this site.
  std::string siteName() const;

private:
  TransitionContext() = default;
  Site TheSite = Site::JniPre;
  jvmti::CapturedCall *Call = nullptr;
  jvm::MethodInfo *Method = nullptr;
  JNIEnv *Env = nullptr;
  jobject Self = nullptr;
  const jvalue *Args = nullptr;
  jvalue *Ret = nullptr;
  const jvmti::BoundarySnapshot *Snap = nullptr;
  const jvmti::ReplayEnvironment *Renv = nullptr;
  Reporter *Rep = nullptr;
  bool NativeAborted = false;
};

/// Code attached to one state transition: decides whether the transition
/// fired for the entities at this site, updates the machine encoding, and
/// reports violations through the context's Reporter.
///
/// Deliberately not a std::function: the action is stored as a shared
/// callable plus a raw trampoline pointer so the fused dispatch tier
/// (synth/FusedChecks) can copy `(rawInvoke, rawObject)` pairs into a flat
/// per-FnId slot array and run each check as one plain indirect call —
/// no std::function dispatch on the crossing hot path. The dynamic tier
/// calls through operator(), which is the same indirect call.
class TransitionAction {
public:
  using RawFn = void (*)(void *, TransitionContext &);

  TransitionAction() = default;
  TransitionAction(std::nullptr_t) {}

  template <typename Callable,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Callable>, TransitionAction>>>
  TransitionAction(Callable &&Fn)
      : Obj(std::make_shared<std::decay_t<Callable>>(
            std::forward<Callable>(Fn))),
        Invoke(&trampoline<std::decay_t<Callable>>) {}

  void operator()(TransitionContext &Ctx) const { Invoke(Obj.get(), Ctx); }
  explicit operator bool() const { return Invoke != nullptr; }

  /// Fused-tier binding: the trampoline and the callable's address. Any
  /// slot array built from these must keep a copy of the action (or its
  /// owning spec) alive; the callable is shared, not copied.
  RawFn rawInvoke() const { return Invoke; }
  void *rawObject() const { return Obj.get(); }

private:
  template <typename Callable>
  static void trampoline(void *ObjPtr, TransitionContext &Ctx) {
    (*static_cast<Callable *>(ObjPtr))(Ctx);
  }

  std::shared_ptr<void> Obj;
  RawFn Invoke = nullptr;
};

/// The pushdown extension (ROADMAP item 3, after Ferles et al.): some JNI
/// rules are stack-shaped — Push/PopLocalFrame nesting, MonitorEnter/Exit
/// balance, nested critical sections — and cannot be expressed by a finite
/// state machine alone. A machine may declare one bounded counter (an
/// abstraction of a stack whose symbols are indistinguishable); transitions
/// then declare how they move it. The *dynamic* encoding stays inside the
/// machine's action code (a wait-free per-thread depth word); the
/// declaration is what makes the rule analyzable: speclint checks
/// push/pop reachability and boundedness, and the static verifier
/// (analysis/verify) interprets the counter abstractly with widening to
/// [0, Bound].
enum class CounterOp : uint8_t {
  None, ///< the transition does not touch the counter
  Push, ///< increments; a Push into an error state fires *at* the bound
  Pop,  ///< decrements; a Pop into an error state fires at zero (underflow)
};

const char *counterOpName(CounterOp Op);

/// A machine's declared counter. A default-constructed CounterSpec (empty
/// name) means "no counter" — the machine is a plain FSM.
struct CounterSpec {
  std::string Name; ///< "local-frame depth"
  /// Static widening cap: the abstract interval domain widens the counter
  /// to [0, Bound]. 0 declares the counter unbounded, which speclint
  /// reports as a warning (the abstraction then widens to [0, +inf) and
  /// loses must-bug precision above zero).
  uint32_t Bound = 0;

  bool declared() const { return !Name.empty(); }
};

/// One state transition (sa -> sb) of a machine, with its mapping to
/// language transitions (Mi.languageTransitionsFor) and its action.
struct StateTransition {
  std::string From;
  std::string To;
  std::vector<LanguageTransition> At;
  TransitionAction Action;
  /// How this transition moves the machine's declared counter. The guard
  /// is implicit in the target state: ops into an error state are the
  /// boundary violations (Pop at zero, Push at the bound); ops into a
  /// non-error state are the ordinary moves (Pop when positive, Push below
  /// the bound).
  CounterOp Counter = CounterOp::None;
  /// Violation text for spec-decidable error transitions (the
  /// counter-guarded checks): the exact message the action passes to
  /// Reporter::violation. Declaring it here lets the static verifier
  /// (analysis/verify) synthesize byte-identical reports from the interval
  /// domain alone. Empty for value-dependent checks, whose messages only
  /// the action can produce.
  std::string Violation = {};
};

/// A full state machine specification.
class StateMachineSpec {
public:
  std::string Name;           ///< "Local reference"
  std::string ObservedEntity; ///< "A local JNI reference"
  std::string Errors;         ///< "Overflow, leak, dangling, double-free"
  std::string Encoding;       ///< description of the runtime encoding
  std::vector<std::string> States;
  std::vector<StateTransition> Transitions;
  CounterSpec Counter; ///< the pushdown extension; empty name = no counter
};

/// How violations are surfaced. Jinn throws jinn.JNIAssertionFailure; the
/// -Xcheck:jni emulations print warnings or abort; tests count reports.
class Reporter {
public:
  virtual ~Reporter();

  /// Report that \p Machine detected a constraint violation at \p Ctx.
  /// Implementations may set a pending exception and abort the call.
  virtual void violation(TransitionContext &Ctx,
                         const StateMachineSpec &Machine,
                         const std::string &Message) = 0;

  /// Report an end-of-run finding (leaks at VM death) — there is no call
  /// context or thread to throw into at that point.
  virtual void endOfRun(const StateMachineSpec &Machine,
                        const std::string &Message) = 0;
};

/// Base class for concrete machines: owns the spec (with actions bound to
/// the machine's mutable encoding) plus lifecycle hooks for end-of-run
/// checks (leak reports at VM death) and per-thread setup.
class MachineBase {
public:
  virtual ~MachineBase();
  const StateMachineSpec &spec() const { return Spec; }

  /// End-of-run checks (leaks at program termination, Figure 8's
  /// "program termination / JVMTI callback" transitions).
  virtual void onVmDeath(Reporter &Rep, jvm::Vm &Vm) {
    (void)Rep;
    (void)Vm;
  }
  virtual void onThreadStart(const ThreadStartInfo &Info) { (void)Info; }

protected:
  StateMachineSpec Spec;
};

} // namespace jinn::spec

#endif // JINN_SPEC_STATEMACHINE_H
