//===- fuzz/PyFuzz.cpp - Python/C-domain fuzzing (§7 generalization) -----===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/PyFuzz.h"

#include "pyjinn/PyChecker.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <functional>

using namespace jinn;
using namespace jinn::fuzz;

static const char RefM[] = "Reference ownership";
static const char GilM[] = "GIL state";
static const char PyExcM[] = "Exception state";

namespace {

struct PyState {
  pyc::PyInterp &I;
  const pyc::PyApi *Api;
  std::vector<pyc::PyObject *> Owned; ///< we hold one reference each
  pyc::PyObject *List = nullptr;      ///< owned workhorse list
  pyc::PyObject *Borrowed = nullptr;  ///< borrowed item of List
};

struct PyOp {
  const char *Name;
  bool Bug = false;
  const char *ExpectMachine = nullptr;
  const char *ExpectPart = nullptr;
  /// (machine, transition index) pairs over buildPythonModels().
  std::vector<std::pair<const char *, size_t>> Edges;
  std::vector<const char *> Setup;
  std::function<bool(const PyState &)> Ready;
  std::function<void(PyState &)> Apply;
};

std::vector<PyOp> buildPyOps() {
  std::vector<PyOp> Ops;

  {
    PyOp Op;
    Op.Name = "py_int_new";
    Op.Edges = {{RefM, 0}};
    Op.Ready = [](const PyState &) { return true; };
    Op.Apply = [](PyState &S) {
      if (pyc::PyObject *O = S.Api->PyInt_FromLong(&S.I, 7))
        S.Owned.push_back(O);
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_str_new";
    Op.Edges = {{RefM, 0}};
    Op.Ready = [](const PyState &) { return true; };
    Op.Apply = [](PyState &S) {
      if (pyc::PyObject *O = S.Api->PyString_FromString(&S.I, "fuzz"))
        S.Owned.push_back(O);
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_list_new";
    Op.Edges = {{RefM, 0}};
    Op.Ready = [](const PyState &S) { return !S.List; };
    Op.Apply = [](PyState &S) {
      S.List = S.Api->Py_BuildValue(&S.I, "[sss]", "a", "b", "c");
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_borrow";
    Op.Setup = {"py_list_new"};
    Op.Edges = {{RefM, 1}};
    Op.Ready = [](const PyState &S) { return S.List && !S.Borrowed; };
    Op.Apply = [](PyState &S) {
      S.Borrowed = S.Api->PyList_GetItem(&S.I, S.List, 1);
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_use_borrow";
    Op.Setup = {"py_borrow"};
    Op.Ready = [](const PyState &S) { return S.List && S.Borrowed; };
    Op.Apply = [](PyState &S) {
      S.Api->PyString_AsString(&S.I, S.Borrowed);
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_decref_owned";
    Op.Edges = {{RefM, 2}};
    Op.Ready = [](const PyState &S) { return !S.Owned.empty(); };
    Op.Apply = [](PyState &S) {
      S.Api->Py_DecRef(&S.I, S.Owned.back());
      S.Owned.pop_back();
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_list_drop";
    Op.Edges = {{RefM, 2}};
    Op.Ready = [](const PyState &S) { return S.List != nullptr; };
    Op.Apply = [](PyState &S) {
      S.Api->Py_DecRef(&S.I, S.List);
      S.List = nullptr;
      S.Borrowed = nullptr; // died with its owner; never used again
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_gil_roundtrip";
    Op.Edges = {{GilM, 0}, {GilM, 1}};
    Op.Ready = [](const PyState &) { return true; };
    Op.Apply = [](PyState &S) {
      void *St = S.Api->PyEval_SaveThread(&S.I);
      S.Api->PyEval_RestoreThread(&S.I, St);
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_err_roundtrip";
    Op.Ready = [](const PyState &) { return true; };
    Op.Apply = [](PyState &S) {
      S.Api->PyErr_SetString(&S.I, S.I.excTypeError(), "fuzz probe");
      S.Api->PyErr_Clear(&S.I);
    };
    Ops.push_back(std::move(Op));
  }

  {
    PyOp Op;
    Op.Name = "py_bug_dangling_borrow";
    Op.Bug = true;
    Op.ExpectMachine = RefM;
    Op.ExpectPart = "use of a dangling reference";
    Op.Setup = {"py_list_new", "py_borrow"};
    Op.Edges = {{RefM, 3}, {RefM, 2}};
    Op.Ready = [](const PyState &S) { return S.List && S.Borrowed; };
    Op.Apply = [](PyState &S) {
      S.Api->Py_DecRef(&S.I, S.List); // the borrow dies with its owner
      S.List = nullptr;
      S.Api->PyString_AsString(&S.I, S.Borrowed); // BUG: dangling use
      S.Borrowed = nullptr;
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_bug_no_gil";
    Op.Bug = true;
    Op.ExpectMachine = GilM;
    Op.ExpectPart = "without holding the GIL";
    Op.Edges = {{GilM, 2}, {GilM, 0}, {GilM, 1}};
    Op.Ready = [](const PyState &) { return true; };
    Op.Apply = [](PyState &S) {
      void *St = S.Api->PyEval_SaveThread(&S.I);
      S.Api->PyList_New(&S.I, 0); // BUG: API call with the GIL released
      S.Api->PyEval_RestoreThread(&S.I, St);
    };
    Ops.push_back(std::move(Op));
  }
  {
    PyOp Op;
    Op.Name = "py_bug_exc_pending";
    Op.Bug = true;
    Op.ExpectMachine = PyExcM;
    Op.ExpectPart = "while an exception is pending";
    Op.Edges = {{PyExcM, 2}};
    Op.Ready = [](const PyState &) { return true; };
    Op.Apply = [](PyState &S) {
      S.Api->PyErr_SetString(&S.I, S.I.excTypeError(), "fuzz probe");
      S.Api->PyList_New(&S.I, 0); // BUG: exception-sensitive call
      S.Api->PyErr_Clear(&S.I);
    };
    Ops.push_back(std::move(Op));
  }

  return Ops;
}

const std::vector<PyOp> &pyOps() {
  static const std::vector<PyOp> Ops = buildPyOps();
  return Ops;
}

const PyOp *findPyOp(const std::string &Name) {
  for (const PyOp &Op : pyOps())
    if (Name == Op.Name)
      return &Op;
  return nullptr;
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

void emitPyWithSetup(const PyOp &Op, std::vector<std::string> &Out) {
  for (const char *Dep : Op.Setup)
    if (const PyOp *D = findPyOp(Dep))
      emitPyWithSetup(*D, Out);
  Out.push_back(Op.Name);
}

} // namespace

const std::vector<std::string> &jinn::fuzz::pyOpNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const PyOp &Op : pyOps())
      N.push_back(Op.Name);
    return N;
  }();
  return Names;
}

bool jinn::fuzz::isPyBugOp(const std::string &Name) {
  const PyOp *Op = findPyOp(Name);
  return Op && Op->Bug;
}

std::vector<std::string> jinn::fuzz::pyBugOpNames() {
  std::vector<std::string> Names;
  for (const PyOp &Op : pyOps())
    if (Op.Bug)
      Names.push_back(Op.Name);
  return Names;
}

PyExecResult jinn::fuzz::runPySequence(const Sequence &Seq) {
  PyExecResult R;
  pyc::PyInterp I;
  pyjinn::PyChecker Checker(I);
  PyState S{I, pyc::activePyApi(I), {}, nullptr, nullptr};

  const PyOp *Bug = nullptr;
  for (const std::string &Name : Seq.OpNames) {
    const PyOp *Op = findPyOp(Name);
    if (!Op) {
      R.Failures.push_back("unknown py op " + Name);
      continue;
    }
    if (!Op->Ready(S))
      continue;
    Op->Apply(S);
    R.ExecutedOps.push_back(Name);
    if (Op->Bug) {
      Bug = Op;
      break;
    }
  }

  // Protocol-correct teardown: release everything still owned.
  for (pyc::PyObject *Obj : S.Owned)
    S.Api->Py_DecRef(&I, Obj);
  if (S.List)
    S.Api->Py_DecRef(&I, S.List);

  const std::vector<pyjinn::PyViolation> &Violations = Checker.violations();
  if (!Bug) {
    for (const pyjinn::PyViolation &V : Violations)
      R.Failures.push_back(formatString("clean py path reported [%s] %s: %s",
                                        V.Machine.c_str(),
                                        V.Function.c_str(),
                                        V.Message.c_str()));
  } else if (Violations.size() != 1) {
    R.Failures.push_back(formatString(
        "py bug path must produce exactly one violation, got %zu",
        Violations.size()));
  } else {
    const pyjinn::PyViolation &V = Violations.front();
    if (V.Machine != Bug->ExpectMachine)
      R.Failures.push_back(formatString(
          "wrong py machine: predicted \"%s\", got \"%s\"",
          Bug->ExpectMachine, V.Machine.c_str()));
    if (V.Message.find(Bug->ExpectPart) == std::string::npos)
      R.Failures.push_back(formatString("py message lacks \"%s\": got %s",
                                        Bug->ExpectPart,
                                        V.Message.c_str()));
  }
  if (size_t Leaked = Checker.leakedObjects())
    R.Failures.push_back(
        formatString("py path leaked %zu object(s)", Leaked));

  R.Pass = R.Failures.empty();
  return R;
}

void jinn::fuzz::coverPySequence(const PyExecResult &Result, Coverage &Cov) {
  for (const std::string &Name : Result.ExecutedOps)
    if (const PyOp *Op = findPyOp(Name))
      for (const auto &[Machine, Index] : Op->Edges)
        Cov.cover(Machine, Index);
}

Sequence jinn::fuzz::cleanPySequence(uint64_t Seed, uint64_t Index) {
  SplitMix64 Rng = SplitMix64(Seed).split(fnv1a("py-clean")).split(Index);
  std::vector<const PyOp *> Clean;
  for (const PyOp &Op : pyOps())
    if (!Op.Bug)
      Clean.push_back(&Op);
  Sequence Seq;
  Seq.Domain = "py";
  size_t Len = 5 + Rng.nextBelow(8);
  for (size_t I = 0; I < Len; ++I)
    emitPyWithSetup(*Clean[Rng.nextBelow(Clean.size())], Seq.OpNames);
  return Seq;
}

Sequence jinn::fuzz::bugPySequence(uint64_t Seed, const std::string &BugOpName,
                                   uint64_t Index) {
  Sequence Seq;
  Seq.Domain = "py";
  const PyOp *Bug = findPyOp(BugOpName);
  if (!Bug || !Bug->Bug)
    return Seq;
  SplitMix64 Rng =
      SplitMix64(Seed).split(fnv1a("py-bug:" + BugOpName)).split(Index);
  std::vector<const PyOp *> Clean;
  for (const PyOp &Op : pyOps())
    if (!Op.Bug)
      Clean.push_back(&Op);
  size_t PrefixLen = Rng.nextBelow(4);
  for (size_t I = 0; I < PrefixLen; ++I)
    emitPyWithSetup(*Clean[Rng.nextBelow(Clean.size())], Seq.OpNames);
  emitPyWithSetup(*Bug, Seq.OpNames);
  return Seq;
}
