//===- fuzz/Executor.h - Differential execution under the oracle stack ---===//
//
// Part of the Jinn reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one generated sequence against the real VM/JNI layer and judges it
/// with three mutually checking oracles:
///
///  1. The spec verdict: a clean path must produce zero reports; a bug
///     path must produce exactly the report its bug op declares (machine,
///     message fragment, faulting function, end-of-run flag) — known by
///     construction from the spec, never inferred from the checker.
///  2. Record+replay: the boundary trace replayed offline must reproduce
///     the inline report list byte-for-byte.
///  3. -Xcheck:jni: the same sequence rerun under the baseline agent must
///     detect the bug where its documented coverage overlaps
///     (FuzzOp::XcheckDetects) and stay silent everywhere else.
///
/// Any disagreement is a finding: either a checker bug or a wrong op
/// declaration, and the minimizer shrinks the sequence either way.
/// SeededDefect deliberately corrupts one oracle so the harness (and its
/// tests) can prove disagreements are caught and shrunk.
///
//===----------------------------------------------------------------------===//

#ifndef JINN_FUZZ_EXECUTOR_H
#define JINN_FUZZ_EXECUTOR_H

#include "fuzz/Coverage.h"
#include "fuzz/Generator.h"
#include "jinn/Report.h"
#include "trace/TraceEvent.h"

#include <functional>
#include <string>
#include <vector>

namespace jinn::jvm {
class Vm;
}

namespace jinn::fuzz {

/// Deliberately planted oracle defects, for harness self-tests.
enum class SeededDefect : uint8_t {
  None,
  /// The replay oracle silently drops dangling-reference reports.
  ReplayDropsDangling,
};

struct ExecutorOptions {
  bool RunXcheck = true;
  bool RunReplay = true;
  /// Dispatch-tier knobs for the Jinn world, so the fused-parity suite can
  /// run the same sequence under dense, sparse, and fused dispatch.
  bool JinnSparseDispatch = true;
  bool JinnFusedDispatch = true;
  SeededDefect Defect = SeededDefect::None;
};

struct ExecResult {
  bool Pass = false;
  /// Oracle disagreements, human-readable; empty iff Pass.
  std::vector<std::string> Failures;
  /// Ops whose Apply actually ran (precondition-skipped ops excluded).
  std::vector<std::string> ExecutedOps;
  /// The Jinn world's merged report list (after shutdown).
  std::vector<agent::JinnReport> Inline;
};

/// Runs one JNI-domain sequence under the oracle stack.
ExecResult runJniSequence(const Sequence &Seq,
                          const ExecutorOptions &Opts = {});

/// Runs \p Seq once in a fresh Jinn world in record+replay mode and hands
/// the recorded boundary trace, the still-live VM, and the inline report
/// list to \p Consume before the world is torn down (trace entity
/// identities are process addresses into that world, so the trace must be
/// consumed — e.g. lifted by the static verifier — while the world
/// exists).
void runJniSequenceRecorded(
    const Sequence &Seq,
    const std::function<void(const trace::Trace &, jvm::Vm &,
                             const std::vector<agent::JinnReport> &)>
        &Consume);

/// Stable category of one failure line: "replay" (record+replay
/// disagreement), "xcheck" (baseline-agent disagreement), "gating" (op
/// skipping diverged between worlds), "verdict" (spec-predicted verdict
/// missed). The minimizer shrinks against the category, not bare failure,
/// so dropping a setup op (which merely skips the bug) never counts as
/// "still failing".
std::string failureClass(const std::string &Failure);

/// True when some failure in \p A shares a class with some failure in \p B.
bool sharesFailureClass(const std::vector<std::string> &A,
                        const std::vector<std::string> &B);

/// Credits the implicit native-boundary edges plus every executed op's
/// declared edges. Call only for passing runs: coverage counts validated
/// drives, so an error edge is covered only when its predicted report was
/// actually observed.
void coverJniSequence(const ExecResult &Result, Coverage &Cov);

} // namespace jinn::fuzz

#endif // JINN_FUZZ_EXECUTOR_H
